package distinct_test

import (
	"fmt"

	"distinct"
)

// buildMiniDB constructs the tiny publication database used by the
// documentation examples: two authors named "J. Lee" working in disjoint
// collaboration circles.
func buildMiniDB() *distinct.Database {
	schema := distinct.MustSchema(
		distinct.MustRelationSchema("Authors",
			distinct.Attribute{Name: "author", Key: true}),
		distinct.MustRelationSchema("Publish",
			distinct.Attribute{Name: "author", FK: "Authors"},
			distinct.Attribute{Name: "paper", FK: "Papers"}),
		distinct.MustRelationSchema("Papers",
			distinct.Attribute{Name: "paper", Key: true},
			distinct.Attribute{Name: "venue"}),
	)
	db := distinct.NewDatabase(schema)
	papers := []struct {
		key, venue string
		authors    []string
	}{
		{"p1", "DB-Conf", []string{"J. Lee", "Ada Alpha"}},
		{"p2", "DB-Conf", []string{"J. Lee", "Ada Alpha", "Bob Beta"}},
		{"p3", "DB-Conf", []string{"Ada Alpha", "Bob Beta"}},
		{"p4", "ML-Conf", []string{"J. Lee", "Carl Gamma"}},
		{"p5", "ML-Conf", []string{"J. Lee", "Carl Gamma", "Dora Delta"}},
	}
	seen := map[string]bool{}
	for _, p := range papers {
		db.MustInsert("Papers", p.key, p.venue)
		for _, a := range p.authors {
			if !seen[a] {
				db.MustInsert("Authors", a)
				seen[a] = true
			}
			db.MustInsert("Publish", a, p.key)
		}
	}
	return db
}

// Example demonstrates the minimal path from a relational database to
// disambiguated reference groups.
func Example() {
	db := buildMiniDB()
	eng, err := distinct.Open(db, distinct.Config{
		RefRelation:  "Publish",
		RefAttr:      "author",
		Unsupervised: true, // five papers cannot feed an SVM
		MinSim:       0.01,
	})
	if err != nil {
		panic(err)
	}
	groups, err := eng.Disambiguate("J. Lee")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d references in %d groups\n", len(eng.Refs("J. Lee")), len(groups))
	for i, g := range groups {
		fmt.Printf("group %d:", i+1)
		for _, r := range g {
			fmt.Printf(" %s", eng.DB().Tuple(r).Val("paper"))
		}
		fmt.Println()
	}
	// Output:
	// 4 references in 2 groups
	// group 1: p1 p2
	// group 2: p4 p5
}

// ExampleEngine_Explain shows the per-path breakdown of why two references
// look like the same object.
func ExampleEngine_Explain() {
	db := buildMiniDB()
	eng, err := distinct.Open(db, distinct.Config{
		RefRelation:  "Publish",
		RefAttr:      "author",
		Unsupervised: true,
		MinSim:       0.01,
	})
	if err != nil {
		panic(err)
	}
	refs := eng.Refs("J. Lee")
	ex := eng.Explain(refs[0], refs[1]) // p1 and p2: shared coauthor + venue
	fmt.Printf("contributing join paths: %d\n", len(ex.Contributions))
	fmt.Printf("strongest: %s\n", ex.Contributions[0].Path.Describe(eng.DB().Schema))
	// Under uniform (unsupervised) weights the shared-venue path outranks
	// the shared-coauthor path — the misleading ranking that the SVM
	// weighting of Engine.Train corrects on real data.

	// Output:
	// contributing join paths: 5
	// strongest: Publish >paper> Papers >venue> Papers.venue#values
}
