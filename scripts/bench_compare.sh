#!/usr/bin/env bash
# bench_compare.sh — regression gate over the perf baseline.
#
# Runs the benchmark suite (the bench.sh set) -count times, takes the
# per-benchmark median ns/op, writes the snapshot, and compares it against
# the committed baseline: any benchmark whose median regresses by more than
# the threshold fails the script.
#
# Usage:  scripts/bench_compare.sh [BASELINE.json] [OUT.json]
#           BASELINE  default BENCH_3.json (the compiled-plan baseline)
#           OUT       default BENCH_4.json
#   env:  BENCH_COUNT      runs per benchmark for the median (default 3)
#         BENCH_THRESHOLD  allowed regression in percent (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_3.json}"
out="${2:-BENCH_4.json}"
count="${BENCH_COUNT:-3}"
threshold="${BENCH_THRESHOLD:-10}"

if [[ ! -e "$baseline" ]]; then
  echo "bench_compare: baseline $baseline not found" >&2
  exit 1
fi

benchre='^(BenchmarkSetResemblance|BenchmarkRandomWalk|BenchmarkSimilarityMatrix|BenchmarkDisambiguateAll|BenchmarkClustering|BenchmarkPropagate|BenchmarkPlanCompile)$'
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run='^$' -bench="$benchre" -benchmem -count="$count" . | tee "$raw"

# Median ns/op (and last-seen B/op, allocs/op, metrics) per benchmark,
# emitted in the bench.sh JSON layout so the snapshots stay comparable.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function median(name,   m, k, tmp, i, j, t) {
  m = nsamp[name]
  for (i = 1; i <= m; i++) tmp[i] = samp[name, i]
  for (i = 1; i <= m; i++)                       # insertion sort; m is tiny
    for (j = i; j > 1 && tmp[j] < tmp[j-1]; j--) { t = tmp[j]; tmp[j] = tmp[j-1]; tmp[j-1] = t }
  if (m % 2) return tmp[(m + 1) / 2]
  return (tmp[m / 2] + tmp[m / 2 + 1]) / 2
}
/^(goos|goarch|pkg|cpu):/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  if (!(name in nsamp)) order[norder++] = name
  iters[name] = $2
  metrics = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; u = $(i + 1)
    if (u == "ns/op") { nsamp[name]++; samp[name, nsamp[name]] = v }
    else if (u == "B/op") bytes[name] = v
    else if (u == "allocs/op") allocs[name] = v
    else {
      gsub(/"/, "\\\"", u)
      metrics = metrics (metrics == "" ? "" : ", ") "\"" u "\": " v
    }
  }
  if (metrics != "") met[name] = metrics
  next
}
END {
  printf "{\n"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"]
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < norder; i++) {
    name = order[i]
    row = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %d", name, iters[name], median(name))
    if (name in bytes)  row = row sprintf(", \"bytes_per_op\": %s", bytes[name])
    if (name in allocs) row = row sprintf(", \"allocs_per_op\": %s", allocs[name])
    if (name in met)    row = row ", \"metrics\": {" met[name] "}"
    row = row "}"
    printf "  %s%s\n", row, (i < norder - 1 ? "," : "")
  }
  printf "  ]\n}\n"
}' "$raw" > "$out"
echo "wrote $out (median of $count runs)"

# Compare: baseline vs new median, fail on > threshold% regression.
fail=0
while IFS=$'\t' read -r name base new; do
  pct=$(awk -v b="$base" -v n="$new" 'BEGIN { printf "%+.1f", (n - b) * 100 / b }')
  verdict="ok"
  if awk -v b="$base" -v n="$new" -v t="$threshold" 'BEGIN { exit !(n > b * (1 + t / 100)) }'; then
    verdict="REGRESSION (> ${threshold}%)"
    fail=1
  fi
  printf '%-36s %14d -> %14d ns/op  %s%%  %s\n' "$name" "$base" "$new" "$pct" "$verdict"
done < <(awk '
  FNR == 1 { file++ }
  match($0, /"name": "[^"]+"/) {
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"ns_per_op": [0-9]+/))
      ns[file, name] = substr($0, RSTART + 13, RLENGTH - 13)
    if (file == 1) order[n++] = name
  }
  END {
    for (i = 0; i < n; i++) {
      name = order[i]
      if ((2, name) in ns)
        printf "%s\t%s\t%s\n", name, ns[1, name], ns[2, name]
    }
  }' "$baseline" "$out")

if [[ "$fail" -ne 0 ]]; then
  echo "bench_compare: median regression beyond ${threshold}% vs $baseline" >&2
  exit 1
fi
echo "bench_compare: all medians within ${threshold}% of $baseline"
