#!/usr/bin/env bash
# bench_compare.sh — regression gate over the perf baseline.
#
# Runs the benchmark suite (the bench.sh set) -count times, takes the
# per-benchmark median ns/op, writes the snapshot, and compares it against
# the committed baseline on three axes: median ns/op (tight threshold),
# and last-seen B/op and allocs/op (looser threshold — the allocator is
# deterministic but GC-visible sizes wobble with Go releases).
#
# Usage:  scripts/bench_compare.sh [BASELINE.json] [OUT.json]
#           BASELINE  default BENCH_6.json (the flat-agglomeration baseline)
#           OUT       default BENCH_7.json
#   env:  BENCH_COUNT          runs per benchmark for the median (default 3)
#         BENCH_THRESHOLD      allowed ns/op regression in percent (default 10)
#         BENCH_MEM_THRESHOLD  allowed B/op + allocs/op regression in percent
#                              (default 25)
#         BENCH_CLUSTER_ALLOC_MAX  absolute allocs/op ceiling for the warm
#                              BenchmarkClustering path (default 16) — the
#                              flat-state merge loop promises an alloc-free
#                              steady state, so this gate is absolute, not
#                              relative to the baseline
#         BENCH_PPROF          directory to drop cpu.pprof / mem.pprof into
#                              (default off; CI uploads them as artifacts)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_6.json}"
out="${2:-BENCH_7.json}"
count="${BENCH_COUNT:-3}"
threshold="${BENCH_THRESHOLD:-10}"
mem_threshold="${BENCH_MEM_THRESHOLD:-25}"

if [[ ! -e "$baseline" ]]; then
  echo "bench_compare: baseline $baseline not found" >&2
  exit 1
fi

benchre='^(BenchmarkSetResemblance|BenchmarkRandomWalk|BenchmarkSimilarityMatrix|BenchmarkDisambiguateAll|BenchmarkClustering|BenchmarkClusteringLarge|BenchmarkTuneMinSim|BenchmarkPropagate|BenchmarkPlanCompile|BenchmarkServeThroughput)$'
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

profileargs=()
if [[ -n "${BENCH_PPROF:-}" ]]; then
  mkdir -p "$BENCH_PPROF"
  profileargs=(-cpuprofile "$BENCH_PPROF/cpu.pprof" -memprofile "$BENCH_PPROF/mem.pprof")
fi

go test -run='^$' -bench="$benchre" -benchmem -count="$count" "${profileargs[@]}" . | tee "$raw"
if [[ -n "${BENCH_PPROF:-}" ]]; then
  echo "bench_compare: profiles in $BENCH_PPROF (cpu.pprof, mem.pprof)"
fi

# Median ns/op (and last-seen B/op, allocs/op, metrics) per benchmark,
# emitted in the bench.sh JSON layout so the snapshots stay comparable.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function median(name,   m, k, tmp, i, j, t) {
  m = nsamp[name]
  for (i = 1; i <= m; i++) tmp[i] = samp[name, i]
  for (i = 1; i <= m; i++)                       # insertion sort; m is tiny
    for (j = i; j > 1 && tmp[j] < tmp[j-1]; j--) { t = tmp[j]; tmp[j] = tmp[j-1]; tmp[j-1] = t }
  if (m % 2) return tmp[(m + 1) / 2]
  return (tmp[m / 2] + tmp[m / 2 + 1]) / 2
}
/^(goos|goarch|pkg|cpu):/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  if (!(name in nsamp)) order[norder++] = name
  iters[name] = $2
  metrics = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; u = $(i + 1)
    if (u == "ns/op") { nsamp[name]++; samp[name, nsamp[name]] = v }
    else if (u == "B/op") bytes[name] = v
    else if (u == "allocs/op") allocs[name] = v
    else {
      gsub(/"/, "\\\"", u)
      metrics = metrics (metrics == "" ? "" : ", ") "\"" u "\": " v
    }
  }
  if (metrics != "") met[name] = metrics
  next
}
END {
  printf "{\n"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"]
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < norder; i++) {
    name = order[i]
    row = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %d", name, iters[name], median(name))
    if (name in bytes)  row = row sprintf(", \"bytes_per_op\": %s", bytes[name])
    if (name in allocs) row = row sprintf(", \"allocs_per_op\": %s", allocs[name])
    if (name in met)    row = row ", \"metrics\": {" met[name] "}"
    row = row "}"
    printf "  %s%s\n", row, (i < norder - 1 ? "," : "")
  }
  printf "  ]\n}\n"
}' "$raw" > "$out"
echo "wrote $out (median of $count runs)"

# Compare one axis of baseline vs new, failing on > $3 % regression.
# Rows: name <tab> base <tab> new, extracted per axis from both JSONs.
compare_axis() {
  local field="$1" unit="$2" tol="$3"
  while IFS=$'\t' read -r name base new; do
    [[ "$base" == "0" ]] && continue  # zero-alloc benchmarks: nothing to gate
    pct=$(awk -v b="$base" -v n="$new" 'BEGIN { printf "%+.1f", (n - b) * 100 / b }')
    verdict="ok"
    if awk -v b="$base" -v n="$new" -v t="$tol" 'BEGIN { exit !(n > b * (1 + t / 100)) }'; then
      verdict="REGRESSION (> ${tol}%)"
      fail=1
    fi
    printf '%-36s %14d -> %14d %s  %s%%  %s\n' "$name" "$base" "$new" "$unit" "$pct" "$verdict"
  done < <(awk -v field="$field" '
    FNR == 1 { file++ }
    match($0, /"name": "[^"]+"/) {
      name = substr($0, RSTART + 9, RLENGTH - 10)
      if (match($0, "\"" field "\": [0-9]+"))
        val[file, name] = substr($0, RSTART + length(field) + 4, RLENGTH - length(field) - 4)
      if (file == 1) order[n++] = name
    }
    END {
      for (i = 0; i < n; i++) {
        name = order[i]
        if ((1, name) in val && (2, name) in val)
          printf "%s\t%s\t%s\n", name, val[1, name], val[2, name]
      }
    }' "$baseline" "$out")
}

fail=0
echo "-- ns/op medians (threshold ${threshold}%)"
compare_axis ns_per_op "ns/op" "$threshold"
echo "-- bytes/op (threshold ${mem_threshold}%)"
compare_axis bytes_per_op "B/op" "$mem_threshold"
echo "-- allocs/op (threshold ${mem_threshold}%)"
compare_axis allocs_per_op "allocs/op" "$mem_threshold"

# Absolute gate: the pooled flat-state engine must keep the warm clustering
# path at a handful of allocations per run (the output partition plus pool
# bookkeeping), independent of what the baseline recorded.
alloc_max="${BENCH_CLUSTER_ALLOC_MAX:-16}"
cluster_allocs=$(awk '
  /"name": "BenchmarkClustering",/ {
    if (match($0, /"allocs_per_op": [0-9]+/))
      print substr($0, RSTART + 17, RLENGTH - 17)
  }' "$out")
if [[ -z "$cluster_allocs" ]]; then
  echo "bench_compare: BenchmarkClustering allocs/op missing from $out" >&2
  fail=1
elif [[ "$cluster_allocs" -gt "$alloc_max" ]]; then
  echo "bench_compare: BenchmarkClustering allocs/op ${cluster_allocs} exceeds absolute gate ${alloc_max}" >&2
  fail=1
else
  echo "-- BenchmarkClustering allocs/op ${cluster_allocs} <= ${alloc_max} (absolute gate)"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "bench_compare: regression beyond threshold vs $baseline" >&2
  exit 1
fi
echo "bench_compare: all medians within ${threshold}% (mem ${mem_threshold}%) of $baseline"
