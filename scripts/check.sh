#!/usr/bin/env bash
# check.sh — the tier-1+ gate: build, vet, race-test the concurrency-bearing
# packages (the extractor cache and the parallel pairwise stages), then run
# the full test suite. Run before sending any PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./internal/sim/... ./internal/core/..."
go test -race ./internal/sim/... ./internal/core/...
echo "== go test ./..."
go test ./...
echo "check.sh: all green"
