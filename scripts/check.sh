#!/usr/bin/env bash
# check.sh — the tier-1+ gate: formatting, vet, build, the full test suite,
# and a race-detector pass over every package (the extractor cache, the
# parallel pairwise stages, and the obs registry are all concurrency-bearing,
# and tests elsewhere drive them through the facade). Run before sending any
# PR; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race ./..."
go test -race ./...
echo "== chaos quick tier (fault injection, -race, seed 1)"
go test -race -count=1 -run '^TestChaos' .
echo "== serving concurrency tier (coalescing + chaos, -race, count=2)"
go test -race -count=2 -run '^TestCoalesce|^TestChaos|^TestDrain' ./internal/serve
echo "check.sh: all green"
