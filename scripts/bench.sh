#!/usr/bin/env bash
# bench.sh — run the key benchmarks and emit a machine-readable perf
# baseline (ns/op, B/op, allocs/op) for cross-PR trajectory tracking.
#
# Usage:  scripts/bench.sh [OUT.json]        (default BENCH_<n>.json, where
#                                             n = 1 + highest existing)
#
# The JSON is a list of {name, iterations, ns_per_op, bytes_per_op,
# allocs_per_op, metrics{...}} objects; extra b.ReportMetric columns land
# in metrics. Compare two files with e.g.:
#   jq -s '[.[0][] as $a | .[1][] | select(.name == $a.name)
#           | {name, speedup: ($a.ns_per_op / .ns_per_op)}]' OLD.json NEW.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-}"
if [[ -z "$out" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  out="BENCH_${n}.json"
fi

benchre='^(BenchmarkSetResemblance|BenchmarkRandomWalk|BenchmarkSimilarityMatrix|BenchmarkDisambiguateAll|BenchmarkClustering)$'
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run='^$' -bench="$benchre" -benchmem -count=1 . | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^(goos|goarch|pkg|cpu):/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2
  ns = ""; bytes = ""; allocs = ""; metrics = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; u = $(i + 1)
    if (u == "ns/op") ns = v
    else if (u == "B/op") bytes = v
    else if (u == "allocs/op") allocs = v
    else {
      gsub(/"/, "\\\"", u)
      metrics = metrics (metrics == "" ? "" : ", ") "\"" u "\": " v
    }
  }
  row = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, iters)
  if (ns != "")     row = row sprintf(", \"ns_per_op\": %s", ns)
  if (bytes != "")  row = row sprintf(", \"bytes_per_op\": %s", bytes)
  if (allocs != "") row = row sprintf(", \"allocs_per_op\": %s", allocs)
  if (metrics != "") row = row ", \"metrics\": {" metrics "}"
  row = row "}"
  rows[nrows++] = row
  next
}
END {
  printf "{\n"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"]
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < nrows; i++) printf "  %s%s\n", rows[i], (i < nrows - 1 ? "," : "")
  printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out"
