#!/usr/bin/env bash
# bench.sh — run the key benchmarks and emit a machine-readable perf
# baseline (ns/op, B/op, allocs/op) for cross-PR trajectory tracking.
#
# Usage:  scripts/bench.sh [OUT.json]        (default BENCH_<n>.json, where
#                                             n = 1 + highest existing)
#   env:  BENCH_COUNT  runs per benchmark; ns/op is the per-benchmark
#                      median, B/op and allocs/op the last run (default 1)
#         BENCH_PPROF  directory to capture CPU + heap profiles into
#                      (cpu.pprof / mem.pprof, created if needed; off when
#                      empty). Inspect with `go tool pprof <file>`.
#
# The JSON is a list of {name, iterations, ns_per_op, bytes_per_op,
# allocs_per_op, metrics{...}} objects; extra b.ReportMetric columns land
# in metrics. Compare two files with e.g.:
#   jq -s '[.[0][] as $a | .[1][] | select(.name == $a.name)
#           | {name, speedup: ($a.ns_per_op / .ns_per_op)}]' OLD.json NEW.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-}"
if [[ -z "$out" ]]; then
  n=1
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  out="BENCH_${n}.json"
fi
count="${BENCH_COUNT:-1}"

benchre='^(BenchmarkSetResemblance|BenchmarkRandomWalk|BenchmarkSimilarityMatrix|BenchmarkDisambiguateAll|BenchmarkClustering|BenchmarkClusteringLarge|BenchmarkTuneMinSim|BenchmarkPropagate|BenchmarkPlanCompile|BenchmarkServeThroughput)$'
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

profargs=()
if [[ -n "${BENCH_PPROF:-}" ]]; then
  mkdir -p "$BENCH_PPROF"
  profargs=(-cpuprofile "$BENCH_PPROF/cpu.pprof" -memprofile "$BENCH_PPROF/mem.pprof")
fi

go test -run='^$' -bench="$benchre" -benchmem -count="$count" "${profargs[@]}" . | tee "$raw"

# One JSON row per benchmark: median ns/op over the BENCH_COUNT runs,
# last-seen B/op, allocs/op, and b.ReportMetric columns.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function median(name,   m, k, tmp, i, j, t) {
  m = nsamp[name]
  for (i = 1; i <= m; i++) tmp[i] = samp[name, i]
  for (i = 1; i <= m; i++)                       # insertion sort; m is tiny
    for (j = i; j > 1 && tmp[j] < tmp[j-1]; j--) { t = tmp[j]; tmp[j] = tmp[j-1]; tmp[j-1] = t }
  if (m % 2) return tmp[(m + 1) / 2]
  return (tmp[m / 2] + tmp[m / 2 + 1]) / 2
}
/^(goos|goarch|pkg|cpu):/ { meta[$1] = substr($0, index($0, $2)); next }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  if (!(name in nsamp)) order[norder++] = name
  iters[name] = $2
  metrics = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; u = $(i + 1)
    if (u == "ns/op") { nsamp[name]++; samp[name, nsamp[name]] = v }
    else if (u == "B/op") bytes[name] = v
    else if (u == "allocs/op") allocs[name] = v
    else {
      gsub(/"/, "\\\"", u)
      metrics = metrics (metrics == "" ? "" : ", ") "\"" u "\": " v
    }
  }
  if (metrics != "") met[name] = metrics
  next
}
END {
  printf "{\n"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", meta["goos:"], meta["goarch:"], meta["cpu:"]
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < norder; i++) {
    name = order[i]
    row = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, iters[name])
    if (nsamp[name])    row = row sprintf(", \"ns_per_op\": %d", median(name))
    if (name in bytes)  row = row sprintf(", \"bytes_per_op\": %s", bytes[name])
    if (name in allocs) row = row sprintf(", \"allocs_per_op\": %s", allocs[name])
    if (name in met)    row = row ", \"metrics\": {" met[name] "}"
    row = row "}"
    printf "  %s%s\n", row, (i < norder - 1 ? "," : "")
  }
  printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out (median of $count run(s))"
