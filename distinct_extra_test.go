package distinct_test

import (
	"bytes"
	"math"
	"testing"

	"distinct"
	"distinct/internal/dblp"
)

func trainedEngine(t *testing.T, w *dblp.World) *distinct.Engine {
	t.Helper()
	eng, err := distinct.Open(w.DB, distinct.Config{
		RefRelation: "Publish",
		RefAttr:     "author",
		SkipExpand:  []string{"Publications.title"},
		MinSim:      0.005,
		Train: distinct.TrainOptions{
			NumPositive: 100, NumNegative: 100, Seed: 1,
			Exclude: w.AmbiguousNames(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestPublicBatchDisambiguation(t *testing.T) {
	w := publicWorld(t)
	eng := trainedEngine(t, w)
	res, err := eng.DisambiguateAll(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NamesExamined == 0 {
		t.Fatal("batch pass examined nothing")
	}
	found := false
	for _, s := range res.Split {
		if s.Name == "Wei Wang" {
			found = true
		}
	}
	if !found {
		t.Error("batch pass missed the injected homonym")
	}
}

func TestPublicTuneMinSim(t *testing.T) {
	w := publicWorld(t)
	eng := trainedEngine(t, w)
	res, err := eng.TuneMinSim(nil, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eng.MinSim() != res.MinSim {
		t.Error("tuned threshold not installed")
	}
	eng.SetMinSim(0.42)
	if eng.MinSim() != 0.42 {
		t.Error("SetMinSim did not stick")
	}
	eng.SetMeasure(distinct.ResemblanceOnly)
}

func TestPublicModelPersistence(t *testing.T) {
	w := publicWorld(t)
	eng := trainedEngine(t, w)
	var buf bytes.Buffer
	if err := eng.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := distinct.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A second engine over the same world adopts the trained weights
	// without retraining.
	eng2, err := distinct.Open(w.DB, distinct.Config{
		RefRelation: "Publish",
		RefAttr:     "author",
		SkipExpand:  []string{"Publications.title"},
		MinSim:      0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.ApplyModel(m); err != nil {
		t.Fatal(err)
	}
	r1, _ := eng.Weights()
	r2, _ := eng2.Weights()
	for i := range r1 {
		// ApplyModel re-normalises defensively (model files are editable),
		// which can perturb the last bits; demand near-exact equality.
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			t.Fatalf("model transfer changed weight %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	if m2 := eng.ExportModel(); len(m2.Paths) != len(eng.Paths()) {
		t.Error("exported model path count mismatch")
	}
}

func TestPublicWorkersConfig(t *testing.T) {
	w := publicWorld(t)
	eng, err := distinct.Open(w.DB, distinct.Config{
		RefRelation:  "Publish",
		RefAttr:      "author",
		SkipExpand:   []string{"Publications.title"},
		Workers:      4,
		MinSim:       0.005,
		Unsupervised: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := eng.Disambiguate("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
}
