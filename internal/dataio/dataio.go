// Package dataio serializes generated bibliographic worlds — the relational
// database plus its ground truth — as a single JSON document, so a dataset
// generated once (cmd/dblpgen) can be re-analyzed (cmd/distinct) or shared
// without regenerating it.
package dataio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"distinct/internal/dblp"
	"distinct/internal/reldb"
)

// fileFormat is bumped on incompatible layout changes.
const fileFormat = 1

type attrJSON struct {
	Name string `json:"name"`
	Key  bool   `json:"key,omitempty"`
	FK   string `json:"fk,omitempty"`
}

type relationJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
}

type identityJSON struct {
	ID          dblp.AuthorID `json:"id"`
	Name        string        `json:"name"`
	First       string        `json:"first"`
	Last        string        `json:"last"`
	Affiliation string        `json:"affiliation"`
	Community   int           `json:"community"`
	Ambiguous   bool          `json:"ambiguous,omitempty"`
}

type worldJSON struct {
	Format int            `json:"format"`
	Config dblp.Config    `json:"config"`
	Schema []relationJSON `json:"schema"`
	// Tuples holds, per relation name, the tuple values in insertion order.
	Tuples map[string][][]string `json:"tuples"`
	// Identities is the ground-truth author list.
	Identities []identityJSON `json:"identities"`
	// RefAuthor maps each tuple of the reference relation (by its position
	// in insertion order) to the true author identity.
	RefAuthor []dblp.AuthorID `json:"refAuthor"`
}

// SaveWorld writes the world to w as JSON.
func SaveWorld(world *dblp.World, w io.Writer) error {
	doc := worldJSON{
		Format: fileFormat,
		Config: world.Config,
		Tuples: make(map[string][][]string),
	}
	for _, rs := range world.DB.Schema.Relations() {
		rj := relationJSON{Name: rs.Name}
		for _, a := range rs.Attrs {
			rj.Attrs = append(rj.Attrs, attrJSON{Name: a.Name, Key: a.Key, FK: a.FK})
		}
		doc.Schema = append(doc.Schema, rj)
		rel := world.DB.Relation(rs.Name)
		rows := make([][]string, 0, rel.Size())
		for _, id := range rel.TupleIDs() {
			rows = append(rows, world.DB.Tuple(id).Vals)
		}
		doc.Tuples[rs.Name] = rows
	}
	for _, ident := range world.Identities {
		doc.Identities = append(doc.Identities, identityJSON{
			ID: ident.ID, Name: ident.Name, First: ident.First, Last: ident.Last,
			Affiliation: ident.Affiliation, Community: ident.Community,
			Ambiguous: ident.Ambiguous,
		})
	}
	for _, id := range world.DB.Relation(dblp.ReferenceRelation).TupleIDs() {
		aid, ok := world.RefAuthor[id]
		if !ok {
			return fmt.Errorf("dataio: reference tuple %d has no ground truth", id)
		}
		doc.RefAuthor = append(doc.RefAuthor, aid)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// SaveWorldFile writes the world to a file path.
func SaveWorldFile(world *dblp.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveWorld(world, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadWorld reads a world written by SaveWorld.
func LoadWorld(r io.Reader) (*dblp.World, error) {
	var doc worldJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataio: decoding world: %w", err)
	}
	if doc.Format != fileFormat {
		return nil, fmt.Errorf("dataio: unsupported format %d (want %d)", doc.Format, fileFormat)
	}
	var rels []*reldb.RelationSchema
	for _, rj := range doc.Schema {
		attrs := make([]reldb.Attribute, len(rj.Attrs))
		for i, a := range rj.Attrs {
			attrs[i] = reldb.Attribute{Name: a.Name, Key: a.Key, FK: a.FK}
		}
		rs, err := reldb.NewRelationSchema(rj.Name, attrs...)
		if err != nil {
			return nil, fmt.Errorf("dataio: schema: %w", err)
		}
		rels = append(rels, rs)
	}
	schema, err := reldb.NewSchema(rels...)
	if err != nil {
		return nil, fmt.Errorf("dataio: schema: %w", err)
	}
	db := reldb.NewDatabase(schema)
	refAuthor := make(map[reldb.TupleID]dblp.AuthorID)
	for _, rj := range doc.Schema {
		rows := doc.Tuples[rj.Name]
		for ri, row := range rows {
			id, err := db.Insert(rj.Name, row...)
			if err != nil {
				return nil, fmt.Errorf("dataio: inserting into %s: %w", rj.Name, err)
			}
			if rj.Name == dblp.ReferenceRelation {
				if ri >= len(doc.RefAuthor) {
					return nil, fmt.Errorf("dataio: ground truth shorter than reference relation")
				}
				refAuthor[id] = doc.RefAuthor[ri]
			}
		}
	}
	idents := make([]dblp.Identity, len(doc.Identities))
	for i, ij := range doc.Identities {
		if int(ij.ID) != i {
			return nil, fmt.Errorf("dataio: identity %d has id %d; ids must be dense", i, ij.ID)
		}
		idents[i] = dblp.Identity{
			ID: ij.ID, Name: ij.Name, First: ij.First, Last: ij.Last,
			Affiliation: ij.Affiliation, Community: ij.Community,
			Ambiguous: ij.Ambiguous,
		}
	}
	world, err := dblp.Assemble(doc.Config, db, idents, refAuthor)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	return world, nil
}

// LoadWorldFile reads a world from a file path.
func LoadWorldFile(path string) (*dblp.World, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWorld(f)
}
