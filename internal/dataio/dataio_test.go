package dataio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"distinct/internal/dblp"
	"distinct/internal/reldb"
)

func testWorld(t testing.TB) *dblp.World {
	t.Helper()
	cfg := dblp.DefaultConfig()
	cfg.Communities = 3
	cfg.AuthorsPerCommunity = 20
	cfg.PapersPerAuthor = 2
	cfg.Ambiguous = []dblp.AmbiguousName{
		{Name: "Wei Wang", RefsPerAuthor: []int{5, 4}},
	}
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w := testWorld(t)
	var buf bytes.Buffer
	if err := SaveWorld(w, &buf); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumPapers() != w.NumPapers() || w2.NumReferences() != w.NumReferences() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			w2.NumPapers(), w2.NumReferences(), w.NumPapers(), w.NumReferences())
	}
	if len(w2.Identities) != len(w.Identities) {
		t.Fatal("identities differ")
	}
	// Ground truth round-trips.
	refs1, refs2 := w.Refs("Wei Wang"), w2.Refs("Wei Wang")
	if len(refs1) != len(refs2) {
		t.Fatalf("refs %d vs %d", len(refs1), len(refs2))
	}
	g1, g2 := w.GoldClusters("Wei Wang"), w2.GoldClusters("Wei Wang")
	if len(g1) != len(g2) {
		t.Fatal("gold clusters differ")
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) {
			t.Fatal("gold cluster sizes differ")
		}
	}
	// Tuple contents identical relation by relation.
	for _, rs := range w.DB.Schema.Relations() {
		r1, r2 := w.DB.Relation(rs.Name), w2.DB.Relation(rs.Name)
		if r1.Size() != r2.Size() {
			t.Fatalf("%s: %d vs %d tuples", rs.Name, r1.Size(), r2.Size())
		}
		for i := range r1.TupleIDs() {
			v1 := w.DB.Tuple(r1.TupleIDs()[i]).Vals
			v2 := w2.DB.Tuple(r2.TupleIDs()[i]).Vals
			if !reflect.DeepEqual(v1, v2) {
				t.Fatalf("%s tuple %d: %v vs %v", rs.Name, i, v1, v2)
			}
		}
	}
	// Config round-trips (drives AmbiguousNames).
	if !reflect.DeepEqual(w2.AmbiguousNames(), w.AmbiguousNames()) {
		t.Error("ambiguous names differ")
	}
}

func TestSaveLoadFile(t *testing.T) {
	w := testWorld(t)
	path := t.TempDir() + "/world.json"
	if err := SaveWorldFile(w, path); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadWorldFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumReferences() != w.NumReferences() {
		t.Error("file round trip lost references")
	}
	if _, err := LoadWorldFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadWorld(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadWorld(strings.NewReader(`{"format": 999}`)); err == nil {
		t.Error("wrong format version accepted")
	}
	// Valid JSON but inconsistent ground truth.
	if _, err := LoadWorld(strings.NewReader(`{
		"format": 1,
		"config": {},
		"schema": [
			{"name":"Authors","attrs":[{"name":"author","key":true}]},
			{"name":"Publish","attrs":[{"name":"author","fk":"Authors"},{"name":"paper-key","fk":"Publications"}]},
			{"name":"Publications","attrs":[{"name":"paper-key","key":true},{"name":"title"},{"name":"proc-key","fk":"Proceedings"}]},
			{"name":"Proceedings","attrs":[{"name":"proc-key","key":true},{"name":"conference","fk":"Conferences"},{"name":"year"},{"name":"location"}]},
			{"name":"Conferences","attrs":[{"name":"conference","key":true},{"name":"publisher"}]}
		],
		"tuples": {"Authors": [["a"]], "Publish": [["a","p"]], "Publications": [["p","t","pr"]], "Proceedings": [["pr","c","2000","x"]], "Conferences": [["c","ACM"]]},
		"identities": [],
		"refAuthor": [0]
	}`)); err == nil {
		t.Error("reference naming a missing identity accepted")
	}
}

func TestAssembleValidation(t *testing.T) {
	w := testWorld(t)
	// Missing ground truth entry.
	if _, err := dblp.Assemble(w.Config, w.DB, w.Identities, map[reldb.TupleID]dblp.AuthorID{}); err == nil {
		t.Error("missing ground truth accepted")
	}
	// Name mismatch: point every reference at identity 0.
	ra := make(map[reldb.TupleID]dblp.AuthorID, len(w.RefAuthor))
	for k := range w.RefAuthor {
		ra[k] = 0
	}
	if _, err := dblp.Assemble(w.Config, w.DB, w.Identities, ra); err == nil {
		t.Error("ground truth with wrong names accepted")
	}
	// Out-of-range identity.
	for k := range w.RefAuthor {
		ra[k] = dblp.AuthorID(len(w.Identities) + 5)
	}
	if _, err := dblp.Assemble(w.Config, w.DB, w.Identities, ra); err == nil {
		t.Error("out-of-range identity accepted")
	}
}
