package dataio

import (
	"bytes"
	"strings"
	"testing"

	"distinct/internal/reldb"
)

const schemaDoc = `[
  {"name": "Authors", "attrs": [{"name": "author", "key": true}]},
  {"name": "Publish", "attrs": [
    {"name": "author", "fk": "Authors"},
    {"name": "paper", "fk": "Papers"}]},
  {"name": "Papers", "attrs": [
    {"name": "paper", "key": true},
    {"name": "year"}]}
]`

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema(strings.NewReader(schemaDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Relation("Publish") == nil || s.Relation("Papers").KeyIndex() != 0 {
		t.Error("schema not parsed correctly")
	}
	pub := s.Relation("Publish")
	if pub.Attrs[0].FK != "Authors" || pub.Attrs[1].FK != "Papers" {
		t.Error("foreign keys lost")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"not json",
		"[]",
		`[{"name": "", "attrs": [{"name": "x"}]}]`,
		`[{"name": "R", "attrs": [{"name": "x", "fk": "Missing"}]}]`,
	}
	for _, c := range cases {
		if _, err := ParseSchema(strings.NewReader(c)); err == nil {
			t.Errorf("schema %q accepted", c)
		}
	}
}

func TestLoadTSVRoundTrip(t *testing.T) {
	s, err := ParseSchema(strings.NewReader(schemaDoc))
	if err != nil {
		t.Fatal(err)
	}
	db := reldb.NewDatabase(s)
	if n, err := LoadTSV(db, "Authors", strings.NewReader("author\nalice\nbob\n")); err != nil || n != 2 {
		t.Fatalf("authors: n=%d err=%v", n, err)
	}
	// Columns out of schema order.
	if n, err := LoadTSV(db, "Papers", strings.NewReader("year\tpaper\n1999\tp1\n2004\tp2\n")); err != nil || n != 2 {
		t.Fatalf("papers: n=%d err=%v", n, err)
	}
	if n, err := LoadTSV(db, "Publish", strings.NewReader("author\tpaper\nalice\tp1\nbob\tp1\nalice\tp2\n")); err != nil || n != 3 {
		t.Fatalf("publish: n=%d err=%v", n, err)
	}
	// The out-of-order columns landed correctly.
	p1 := db.LookupKey("Papers", "p1")
	if db.Tuple(p1).Val("year") != "1999" {
		t.Errorf("p1 year = %q", db.Tuple(p1).Val("year"))
	}
	if len(db.Referencing("Publish", "author", "alice")) != 2 {
		t.Error("alice references wrong")
	}

	// SaveTSV inverts LoadTSV.
	var buf bytes.Buffer
	if err := SaveTSV(db, "Papers", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := reldb.NewDatabase(s)
	if n, err := LoadTSV(db2, "Papers", &buf); err != nil || n != 2 {
		t.Fatalf("reload: n=%d err=%v", n, err)
	}
	p1b := db2.LookupKey("Papers", "p1")
	if db2.Tuple(p1b).Val("year") != "1999" {
		t.Error("round trip lost values")
	}
}

func TestLoadTSVErrors(t *testing.T) {
	s, _ := ParseSchema(strings.NewReader(schemaDoc))
	db := reldb.NewDatabase(s)
	if _, err := LoadTSV(db, "Nope", strings.NewReader("x\n")); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := LoadTSV(db, "Papers", strings.NewReader("")); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := LoadTSV(db, "Papers", strings.NewReader("paper\tbogus\np1\tx\n")); err == nil {
		t.Error("unknown header column accepted")
	}
	if _, err := LoadTSV(db, "Papers", strings.NewReader("paper\tpaper\np1\tp1\n")); err == nil {
		t.Error("duplicate header column accepted")
	}
	if _, err := LoadTSV(db, "Papers", strings.NewReader("paper\np1\n")); err == nil {
		t.Error("short header accepted")
	}
	// Duplicate key row fails mid-load with the row number in the error.
	_, err := LoadTSV(db, "Papers", strings.NewReader("paper\tyear\np1\t1999\np1\t2000\n"))
	if err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Errorf("duplicate key error = %v", err)
	}
	if err := SaveTSV(db, "Nope", &bytes.Buffer{}); err == nil {
		t.Error("SaveTSV accepted unknown relation")
	}
}

func TestLoadTSVDrivesEngineSchema(t *testing.T) {
	// End to end: schema + TSV -> attribute expansion works.
	s, _ := ParseSchema(strings.NewReader(schemaDoc))
	db := reldb.NewDatabase(s)
	if _, err := LoadTSV(db, "Authors", strings.NewReader("author\na\nb\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTSV(db, "Papers", strings.NewReader("paper\tyear\np1\t2000\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTSV(db, "Publish", strings.NewReader("author\tpaper\na\tp1\nb\tp1\n")); err != nil {
		t.Fatal(err)
	}
	ex, _, err := reldb.ExpandAttributes(db)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Relation(reldb.ValueRelationName("Papers", "year")) == nil {
		t.Error("expansion failed on TSV-loaded data")
	}
}
