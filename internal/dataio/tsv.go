package dataio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"distinct/internal/reldb"
)

// Generic data loading: a schema described in JSON plus one TSV file per
// relation lets users run DISTINCT on their own data without writing Go.
//
// The schema document is a JSON array of relations:
//
//	[
//	  {"name": "Authors", "attrs": [{"name": "author", "key": true}]},
//	  {"name": "Publish", "attrs": [
//	    {"name": "author", "fk": "Authors"},
//	    {"name": "paper",  "fk": "Publications"}]},
//	  ...
//	]
//
// Each relation's TSV file carries a header row naming the columns; columns
// may appear in any order but must cover every attribute exactly once.

// ParseSchema reads a JSON schema document.
func ParseSchema(r io.Reader) (*reldb.Schema, error) {
	var doc []relationJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataio: decoding schema: %w", err)
	}
	if len(doc) == 0 {
		return nil, fmt.Errorf("dataio: schema document has no relations")
	}
	var rels []*reldb.RelationSchema
	for _, rj := range doc {
		attrs := make([]reldb.Attribute, len(rj.Attrs))
		for i, a := range rj.Attrs {
			attrs[i] = reldb.Attribute{Name: a.Name, Key: a.Key, FK: a.FK}
		}
		rs, err := reldb.NewRelationSchema(rj.Name, attrs...)
		if err != nil {
			return nil, fmt.Errorf("dataio: %w", err)
		}
		rels = append(rels, rs)
	}
	schema, err := reldb.NewSchema(rels...)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	return schema, nil
}

// LoadTSV inserts the tab-separated rows of r into the named relation and
// returns the number of tuples inserted. The first row is a header naming
// the columns; it must cover the relation's attributes exactly (any order).
func LoadTSV(db *reldb.Database, relation string, r io.Reader) (int, error) {
	rs := db.Schema.Relation(relation)
	if rs == nil {
		return 0, fmt.Errorf("dataio: unknown relation %q", relation)
	}
	cr := csv.NewReader(r)
	cr.Comma = '\t'
	cr.FieldsPerRecord = len(rs.Attrs)
	cr.LazyQuotes = true

	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("dataio: %s: reading header: %w", relation, err)
	}
	// Map file columns onto attribute positions.
	colOf := make([]int, len(rs.Attrs)) // attr index -> column index
	for i := range colOf {
		colOf[i] = -1
	}
	for col, name := range header {
		ai := rs.AttrIndex(name)
		if ai < 0 {
			return 0, fmt.Errorf("dataio: %s: header column %q is not an attribute", relation, name)
		}
		if colOf[ai] != -1 {
			return 0, fmt.Errorf("dataio: %s: duplicate header column %q", relation, name)
		}
		colOf[ai] = col
	}
	for ai, col := range colOf {
		if col == -1 {
			return 0, fmt.Errorf("dataio: %s: header misses attribute %q", relation, rs.Attrs[ai].Name)
		}
	}

	n := 0
	vals := make([]reldb.Value, len(rs.Attrs))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("dataio: %s: row %d: %w", relation, n+2, err)
		}
		for ai, col := range colOf {
			vals[ai] = rec[col]
		}
		if _, err := db.Insert(relation, vals...); err != nil {
			return n, fmt.Errorf("dataio: %s: row %d: %w", relation, n+2, err)
		}
		n++
	}
	return n, nil
}

// SaveTSV writes the relation as TSV with a header row, the inverse of
// LoadTSV (columns in schema order).
func SaveTSV(db *reldb.Database, relation string, w io.Writer) error {
	rs := db.Schema.Relation(relation)
	if rs == nil {
		return fmt.Errorf("dataio: unknown relation %q", relation)
	}
	cw := csv.NewWriter(w)
	cw.Comma = '\t'
	header := make([]string, len(rs.Attrs))
	for i, a := range rs.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, id := range db.Relation(relation).TupleIDs() {
		if err := cw.Write(db.Tuple(id).Vals); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
