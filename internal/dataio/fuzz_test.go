package dataio

import (
	"strings"
	"testing"

	"distinct/internal/reldb"
)

// FuzzTSV feeds arbitrary bytes through both halves of the generic loader:
// the JSON schema parser and the TSV row reader (against a small fixed
// schema). Both take user-authored files, so any input must produce an error
// or a usable database — never a panic. A row count that disagrees with the
// database is also a bug: callers size downstream work from it.
func FuzzTSV(f *testing.F) {
	// Valid schema + valid TSV.
	f.Add(`[{"name":"Authors","attrs":[{"name":"author","key":true}]}]`,
		"author\nWei Wang\nJiong Yang\n")
	// Reordered columns, quoting, and a trailing bare CR.
	f.Add(`[{"name":"Publish","attrs":[{"name":"author"},{"name":"paper"}]}]`,
		"paper\tauthor\np1\t\"Wei\tWang\"\r\n")
	// Header errors: unknown column, duplicate column, missing attribute.
	f.Add(`[]`, "nope\nx\n")
	f.Add(`[{"name":"R","attrs":[{"name":"a"},{"name":"b"}]}]`, "a\ta\n1\t2\n")
	f.Add(`[{"name":"R","attrs":[{"name":"a"},{"name":"b"}]}]`, "a\n1\n")
	// Schema errors: not JSON, empty doc, duplicate relation, self-FK.
	f.Add(`{`, "")
	f.Add(`[{"name":"R","attrs":[]},{"name":"R","attrs":[]}]`, "")
	f.Add(`[{"name":"R","attrs":[{"name":"a","fk":"Missing"}]}]`, "a\nx\n")

	f.Fuzz(func(t *testing.T, schemaDoc, tsv string) {
		if schema, err := ParseSchema(strings.NewReader(schemaDoc)); err == nil {
			// A parsed schema must be able to back a database and load the
			// fuzzed TSV into its first relation.
			db := reldb.NewDatabase(schema)
			rel := schema.Relations()[0].Name
			n, err := LoadTSV(db, rel, strings.NewReader(tsv))
			if err == nil && n != db.Relation(rel).Size() {
				t.Fatalf("LoadTSV reported %d rows, relation holds %d", n, db.Relation(rel).Size())
			}
		}

		// Independently, the TSV reader against a known-good two-column
		// schema, so the row path is reached even when the fuzzer mangles
		// the schema half.
		fixed, err := ParseSchema(strings.NewReader(
			`[{"name":"Publish","attrs":[{"name":"author"},{"name":"paper"}]}]`))
		if err != nil {
			t.Fatal(err)
		}
		db := reldb.NewDatabase(fixed)
		n, err := LoadTSV(db, "Publish", strings.NewReader(tsv))
		if err == nil && n != db.Relation("Publish").Size() {
			t.Fatalf("LoadTSV reported %d rows, relation holds %d", n, db.Relation("Publish").Size())
		}
	})
}
