package dblpxml

import (
	"strings"
	"testing"

	"distinct/internal/reldb"
)

// pruneSample: Alice has 3 papers, Bob 2, Carol 1 (only on Bob's paper),
// Dave 1 (alone on his own paper at a venue nobody else uses).
const pruneSample = `<dblp>
<inproceedings key="k1"><author>Alice</author><author>Bob</author><title>A.</title><booktitle>V1</booktitle><year>2000</year></inproceedings>
<inproceedings key="k2"><author>Alice</author><title>B.</title><booktitle>V1</booktitle><year>2001</year></inproceedings>
<inproceedings key="k3"><author>Alice</author><author>Bob</author><author>Carol</author><title>C.</title><booktitle>V2</booktitle><year>2002</year></inproceedings>
<inproceedings key="k4"><author>Dave</author><title>D.</title><booktitle>V3</booktitle><year>2003</year></inproceedings>
</dblp>`

func loadPruneSample(t *testing.T) *reldb.Database {
	t.Helper()
	db, _, err := Load(strings.NewReader(pruneSample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPruneDropsLowDegreeAuthors(t *testing.T) {
	db := loadPruneSample(t)
	out, stats, err := Prune(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Alice (3) and Bob (2) stay; Carol (1) and Dave (1) go.
	if stats.AuthorsKept != 2 || stats.AuthorsDropped != 2 {
		t.Errorf("author stats %+v", stats)
	}
	if out.LookupKey("Authors", "Carol") != reldb.InvalidTuple {
		t.Error("Carol survived")
	}
	if out.LookupKey("Authors", "Alice") == reldb.InvalidTuple {
		t.Error("Alice dropped")
	}
	// Dave's solo paper k4 goes; k3 stays (Alice and Bob remain on it) but
	// loses Carol's reference.
	if out.LookupKey("Publications", "k4") != reldb.InvalidTuple {
		t.Error("orphan paper survived")
	}
	if out.LookupKey("Publications", "k3") == reldb.InvalidTuple {
		t.Error("k3 dropped despite surviving authors")
	}
	if got := len(out.Referencing("Publish", "paper-key", "k3")); got != 2 {
		t.Errorf("k3 has %d refs after pruning, want 2", got)
	}
	// V3 (only Dave's venue) disappears; V1 and V2 stay.
	if out.LookupKey("Conferences", "V3") != reldb.InvalidTuple {
		t.Error("orphan venue survived")
	}
	if out.LookupKey("Conferences", "V1") == reldb.InvalidTuple {
		t.Error("live venue dropped")
	}
	// Referential integrity of the pruned database.
	for _, rs := range out.Schema.Relations() {
		rel := out.Relation(rs.Name)
		for _, fi := range rs.ForeignKeys() {
			for _, id := range rel.TupleIDs() {
				v := out.Tuple(id).Vals[fi]
				if out.LookupKey(rs.Attrs[fi].FK, v) == reldb.InvalidTuple {
					t.Fatalf("dangling %s.%s = %q", rs.Name, rs.Attrs[fi].Name, v)
				}
			}
		}
	}
	// Stats add up.
	if stats.RefsKept+stats.RefsDropped != db.Relation("Publish").Size() {
		t.Error("ref stats do not cover the input")
	}
}

func TestPruneMinOne(t *testing.T) {
	db := loadPruneSample(t)
	out, stats, err := Prune(db, 0) // clamped to 1: nothing removed
	if err != nil {
		t.Fatal(err)
	}
	if stats.AuthorsDropped != 0 || stats.PapersDropped != 0 || stats.RefsDropped != 0 {
		t.Errorf("minRefs 1 removed data: %+v", stats)
	}
	if out.Relation("Publish").Size() != db.Relation("Publish").Size() {
		t.Error("references lost at minRefs 1")
	}
}
