package dblpxml

import (
	"io"
	"strings"
	"testing"
)

func TestLatin1Author(t *testing.T) {
	// "Jos\xe9" is "José" in ISO-8859-1.
	xmlDoc := "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n<dblp>" +
		"<inproceedings key=\"conf/x/A99\"><author>Jos\xe9 Garc\xeda</author>" +
		"<title>T.</title><booktitle>X</booktitle><year>1999</year></inproceedings></dblp>"
	db, stats, err := Load(strings.NewReader(xmlDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.Authors != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if db.LookupKey("Authors", "José García") < 0 {
		t.Error("Latin-1 author not converted to UTF-8")
	}
}

func TestCharsetReaderSelection(t *testing.T) {
	if _, err := charsetReader("utf-8", strings.NewReader("x")); err != nil {
		t.Error(err)
	}
	if _, err := charsetReader("ISO-8859-1", strings.NewReader("x")); err != nil {
		t.Error(err)
	}
	if _, err := charsetReader("shift-jis", strings.NewReader("x")); err == nil {
		t.Error("unsupported charset accepted")
	}
}

func TestLatin1ReaderSmallBuffer(t *testing.T) {
	r, err := charsetReader("latin1", strings.NewReader("a\xe9b"))
	if err != nil {
		t.Fatal(err)
	}
	// Read byte by byte to exercise the pending buffer.
	var out []byte
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(out) != "aéb" {
		t.Errorf("converted %q", out)
	}
}
