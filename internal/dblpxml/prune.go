package dblpxml

import (
	"distinct/internal/dblp"
	"distinct/internal/reldb"
)

// Prune applies the paper's preprocessing (Section 5: "authors with no
// more than 2 papers are removed, and there are 127,124 authors left"):
// it drops every author with fewer than minRefs references, together with
// their authorship tuples, then drops publications left with no authors
// and proceedings/conferences left with no publications. The real DBLP
// dump is dominated by one-paper authors that add volume but no linkage.
//
// A new database is returned; the input is unchanged. PruneStats reports
// what was removed.
type PruneStats struct {
	AuthorsKept, AuthorsDropped int
	RefsKept, RefsDropped       int
	PapersKept, PapersDropped   int
}

// Prune filters a database in the paper's DBLP schema.
func Prune(db *reldb.Database, minRefs int) (*reldb.Database, *PruneStats, error) {
	if minRefs < 1 {
		minRefs = 1
	}
	stats := &PruneStats{}
	out := reldb.NewDatabase(dblp.Schema())

	// Pass 1: authors meeting the reference threshold.
	keepAuthor := make(map[reldb.Value]bool)
	authors := db.Relation("Authors")
	ki := authors.Schema.KeyIndex()
	for _, id := range authors.TupleIDs() {
		name := db.Tuple(id).Vals[ki]
		if len(db.Referencing("Publish", "author", name)) >= minRefs {
			keepAuthor[name] = true
			stats.AuthorsKept++
		} else {
			stats.AuthorsDropped++
		}
	}

	// Pass 2: publications that retain at least one author.
	keepPaper := make(map[reldb.Value]bool)
	pubs := db.Relation("Publications")
	pki := pubs.Schema.KeyIndex()
	for _, id := range pubs.TupleIDs() {
		key := db.Tuple(id).Vals[pki]
		for _, ref := range db.Referencing("Publish", "paper-key", key) {
			if keepAuthor[db.Tuple(ref).Val("author")] {
				keepPaper[key] = true
				break
			}
		}
		if keepPaper[key] {
			stats.PapersKept++
		} else {
			stats.PapersDropped++
		}
	}

	// Pass 3: proceedings and conferences still referenced.
	keepProc := make(map[reldb.Value]bool)
	for _, id := range pubs.TupleIDs() {
		t := db.Tuple(id)
		if keepPaper[t.Vals[pki]] {
			keepProc[t.Val("proc-key")] = true
		}
	}
	keepConf := make(map[reldb.Value]bool)
	procs := db.Relation("Proceedings")
	prki := procs.Schema.KeyIndex()
	for _, id := range procs.TupleIDs() {
		t := db.Tuple(id)
		if keepProc[t.Vals[prki]] {
			keepConf[t.Val("conference")] = true
		}
	}

	// Rebuild in dependency order, preserving tuple order.
	for _, id := range db.Relation("Conferences").TupleIDs() {
		t := db.Tuple(id)
		if keepConf[t.Vals[t.Rel.KeyIndex()]] {
			out.MustInsert("Conferences", t.Vals...)
		}
	}
	for _, id := range procs.TupleIDs() {
		t := db.Tuple(id)
		if keepProc[t.Vals[prki]] {
			out.MustInsert("Proceedings", t.Vals...)
		}
	}
	for _, id := range pubs.TupleIDs() {
		t := db.Tuple(id)
		if keepPaper[t.Vals[pki]] {
			out.MustInsert("Publications", t.Vals...)
		}
	}
	for _, id := range authors.TupleIDs() {
		t := db.Tuple(id)
		if keepAuthor[t.Vals[ki]] {
			out.MustInsert("Authors", t.Vals...)
		}
	}
	for _, id := range db.Relation("Publish").TupleIDs() {
		t := db.Tuple(id)
		if keepAuthor[t.Val("author")] && keepPaper[t.Val("paper-key")] {
			out.MustInsert("Publish", t.Vals...)
			stats.RefsKept++
		} else {
			stats.RefsDropped++
		}
	}
	return out, stats, nil
}
