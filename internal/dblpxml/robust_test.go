package dblpxml

import (
	"math/rand"
	"strings"
	"testing"
)

// TestLoadNeverPanics feeds the loader mutated XML documents: every byte
// deletion, duplication or flip of the sample must either parse or return
// an error — never panic, never loop.
func TestLoadNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := []byte(strings.ReplaceAll(sample, "ISO-8859-1", "UTF-8"))
	for trial := 0; trial < 300; trial++ {
		doc := append([]byte(nil), base...)
		switch trial % 3 {
		case 0: // delete a random span
			i := rng.Intn(len(doc) - 1)
			n := 1 + rng.Intn(20)
			if i+n > len(doc) {
				n = len(doc) - i
			}
			doc = append(doc[:i], doc[i+n:]...)
		case 1: // duplicate a random span
			i := rng.Intn(len(doc) - 1)
			n := 1 + rng.Intn(20)
			if i+n > len(doc) {
				n = len(doc) - i
			}
			doc = append(doc[:i+n], append(append([]byte(nil), doc[i:i+n]...), doc[i+n:]...)...)
		default: // flip random bytes
			for k := 0; k < 3; k++ {
				doc[rng.Intn(len(doc))] = byte(rng.Intn(128))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v\ndoc: %.200s", trial, r, doc)
				}
			}()
			db, _, err := Load(strings.NewReader(string(doc)), Options{})
			if err == nil && db == nil {
				t.Fatalf("trial %d: nil database without error", trial)
			}
		}()
	}
}

// TestLoadTruncations: every prefix truncation of the sample must be
// handled gracefully.
func TestLoadTruncations(t *testing.T) {
	base := strings.ReplaceAll(sample, "ISO-8859-1", "UTF-8")
	for cut := 0; cut < len(base); cut += 37 {
		doc := base[:cut]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d panicked: %v", cut, r)
				}
			}()
			Load(strings.NewReader(doc), Options{})
		}()
	}
}
