package dblpxml

import (
	"strings"
	"testing"
)

// FuzzDBLPXML throws arbitrary bytes at the streaming XML loader. The loader
// faces user-supplied multi-gigabyte dumps, so whatever the bytes are it must
// either return an error or a database that the rest of the pipeline can use
// — never panic. Successful loads are additionally pushed through Prune,
// which walks every relation and so doubles as a consistency check.
func FuzzDBLPXML(f *testing.F) {
	// The well-formed sample exercised by the unit tests.
	f.Add(sample)
	// Charset handling: Latin-1 declared and raw high bytes.
	f.Add("<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n<dblp>" +
		"<inproceedings key=\"conf/x/A99\"><author>Jos\xe9 Garc\xeda</author>" +
		"<title>T.</title><booktitle>X</booktitle><year>1999</year></inproceedings></dblp>")
	f.Add(`<?xml version="1.0" encoding="shift-jis"?><dblp></dblp>`)
	// Structural edge cases: empty doc, truncated element, duplicate keys,
	// record with no venue, nested garbage.
	f.Add(`<dblp></dblp>`)
	f.Add(`<dblp><inproceedings key="k"><author>A`)
	f.Add(`<dblp>` +
		`<article key="j/x/1"><author>A</author><title>t</title><journal>J</journal><year>2001</year></article>` +
		`<article key="j/x/1"><author>B</author><title>t</title><journal>J</journal><year>2001</year></article>` +
		`</dblp>`)
	f.Add(`<dblp><inproceedings key="k"><author>A</author><title>t</title></inproceedings></dblp>`)
	f.Add(`<dblp><inproceedings key="k"><author>A<b>x</b>B</author><title>t</title><booktitle>V</booktitle><year>1</year></inproceedings></dblp>`)

	f.Fuzz(func(t *testing.T, data string) {
		db, stats, err := Load(strings.NewReader(data), Options{})
		if err != nil {
			return
		}
		if db == nil || stats == nil {
			t.Fatal("Load returned nil database/stats without an error")
		}
		if stats.Refs != db.Relation("Publish").Size() {
			t.Fatalf("stats.Refs=%d but Publish has %d tuples", stats.Refs, db.Relation("Publish").Size())
		}
		// Prune revisits every author and reference; a database Load built
		// must survive it at any threshold.
		if _, _, err := Prune(db, 2); err != nil {
			t.Fatalf("Prune on loaded database: %v", err)
		}
	})
}
