// Package dblpxml loads bibliographic records in the DBLP XML export
// format (dblp.xml) into the relational schema the DISTINCT paper uses
// (Figure 2: Authors, Publish, Publications, Proceedings, Conferences).
//
// The paper evaluates on the real DBLP dump; this loader is the on-ramp for
// users who have it. It streams the XML with encoding/xml (the real dump is
// gigabytes, so no DOM), keeps <inproceedings> and <article> records, and
// derives the relational rows:
//
//   - each record becomes a Publications tuple, keyed by the DBLP record
//     key (e.g. "conf/vldb/WangYM97");
//   - each <author> becomes an Authors tuple (if new) and a Publish tuple;
//   - <booktitle> (or <journal>) + <year> identify the Proceedings tuple;
//   - the venue becomes a Conferences tuple; DBLP carries no publisher per
//     venue, so the publisher attribute is derived from the key prefix
//     ("conf" or "journals"), which at least separates the two worlds.
//
// Records with fewer than MinAuthors authors can be skipped, mirroring the
// paper's preprocessing (authors with almost no linkage only add noise).
package dblpxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"distinct/internal/dblp"
	"distinct/internal/reldb"
)

// Options configures loading.
type Options struct {
	// MinAuthors skips records with fewer authors (default 1, i.e. keep
	// everything with at least one author).
	MinAuthors int
	// MaxRecords stops after this many accepted records (0 = no limit);
	// useful for sampling the huge real dump.
	MaxRecords int
	// Kinds lists the record elements to accept; default
	// {"inproceedings", "article"}.
	Kinds []string
}

func (o Options) withDefaults() Options {
	if o.MinAuthors <= 0 {
		o.MinAuthors = 1
	}
	if len(o.Kinds) == 0 {
		o.Kinds = []string{"inproceedings", "article"}
	}
	return o
}

// Stats reports what a load accepted and skipped.
type Stats struct {
	Records int // accepted publication records
	Skipped int // records dropped (kind, author count, missing fields)
	Authors int // distinct author names
	Venues  int // distinct venues
	Refs    int // authorship references
}

// record is one publication element of dblp.xml.
type record struct {
	Key       string   `xml:"key,attr"`
	Authors   []string `xml:"author"`
	Title     string   `xml:"title"`
	BookTitle string   `xml:"booktitle"`
	Journal   string   `xml:"journal"`
	Year      string   `xml:"year"`
}

// Load parses DBLP XML from r into a fresh database over the paper's
// schema, returning the database and load statistics.
func Load(r io.Reader, opts Options) (*reldb.Database, *Stats, error) {
	opts = opts.withDefaults()
	kinds := make(map[string]bool, len(opts.Kinds))
	for _, k := range opts.Kinds {
		kinds[k] = true
	}

	db := reldb.NewDatabase(dblp.Schema())
	stats := &Stats{}
	seenAuthors := make(map[string]bool)
	seenVenues := make(map[string]bool)
	seenProcs := make(map[string]bool)
	seenKeys := make(map[string]bool)

	dec := xml.NewDecoder(r)
	dec.CharsetReader = charsetReader
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("dblpxml: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if start.Name.Local == "dblp" {
			continue // enter the root element
		}
		if !kinds[start.Name.Local] {
			if err := dec.Skip(); err != nil {
				return nil, nil, fmt.Errorf("dblpxml: skipping <%s>: %w", start.Name.Local, err)
			}
			continue
		}
		var rec record
		if err := dec.DecodeElement(&rec, &start); err != nil {
			return nil, nil, fmt.Errorf("dblpxml: decoding <%s>: %w", start.Name.Local, err)
		}
		if !accept(&rec, opts, seenKeys) {
			stats.Skipped++
			continue
		}
		seenKeys[rec.Key] = true

		venue := rec.BookTitle
		if venue == "" {
			venue = rec.Journal
		}
		if !seenVenues[venue] {
			db.MustInsert("Conferences", venue, publisherOf(rec.Key))
			seenVenues[venue] = true
			stats.Venues++
		}
		proc := venue + "/" + rec.Year
		if !seenProcs[proc] {
			// dblp.xml has no per-proceedings location; leave it empty.
			db.MustInsert("Proceedings", proc, venue, rec.Year, "")
			seenProcs[proc] = true
		}
		db.MustInsert("Publications", rec.Key, rec.Title, proc)
		seenInRecord := make(map[string]bool, len(rec.Authors))
		for _, a := range rec.Authors {
			a = strings.TrimSpace(a)
			if a == "" || seenInRecord[a] {
				continue
			}
			seenInRecord[a] = true
			if !seenAuthors[a] {
				db.MustInsert("Authors", a)
				seenAuthors[a] = true
				stats.Authors++
			}
			db.MustInsert("Publish", a, rec.Key)
			stats.Refs++
		}
		stats.Records++
		if opts.MaxRecords > 0 && stats.Records >= opts.MaxRecords {
			break
		}
	}
	return db, stats, nil
}

// accept decides whether a decoded record becomes a publication.
func accept(rec *record, opts Options, seenKeys map[string]bool) bool {
	if rec.Key == "" || seenKeys[rec.Key] {
		return false
	}
	if rec.BookTitle == "" && rec.Journal == "" {
		return false
	}
	if rec.Year == "" {
		return false
	}
	distinctAuthors := 0
	seen := make(map[string]bool, len(rec.Authors))
	for _, a := range rec.Authors {
		a = strings.TrimSpace(a)
		if a != "" && !seen[a] {
			seen[a] = true
			distinctAuthors++
		}
	}
	return distinctAuthors >= opts.MinAuthors
}

// charsetReader handles the ISO-8859-1 encoding the real dblp.xml declares.
// Latin-1 maps byte-for-byte onto the first 256 Unicode code points, so the
// conversion needs no external tables.
func charsetReader(charset string, input io.Reader) (io.Reader, error) {
	switch strings.ToLower(charset) {
	case "utf-8", "us-ascii", "":
		return input, nil
	case "iso-8859-1", "latin1", "latin-1":
		return &latin1Reader{src: input}, nil
	default:
		return nil, fmt.Errorf("dblpxml: unsupported charset %q", charset)
	}
}

// latin1Reader converts ISO-8859-1 bytes to UTF-8 on the fly.
type latin1Reader struct {
	src io.Reader
	buf [2048]byte
	// pending holds converted bytes not yet delivered.
	pending []byte
}

func (l *latin1Reader) Read(p []byte) (int, error) {
	if len(l.pending) == 0 {
		n, err := l.src.Read(l.buf[:])
		if n == 0 {
			return 0, err
		}
		for _, b := range l.buf[:n] {
			if b < 0x80 {
				l.pending = append(l.pending, b)
			} else {
				l.pending = append(l.pending, 0xC0|b>>6, 0x80|b&0x3F)
			}
		}
	}
	n := copy(p, l.pending)
	l.pending = l.pending[n:]
	return n, nil
}

// publisherOf derives a coarse publisher from a DBLP key prefix.
func publisherOf(key string) string {
	switch {
	case strings.HasPrefix(key, "conf/"):
		return "conference"
	case strings.HasPrefix(key, "journals/"):
		return "journal"
	default:
		return "other"
	}
}
