package dblpxml

import (
	"strings"
	"testing"

	"distinct/internal/reldb"
)

// sample mimics the real dblp.xml structure, including record kinds the
// loader must skip and a duplicate author listing.
const sample = `<?xml version="1.0" encoding="ISO-8859-1"?>
<dblp>
<inproceedings key="conf/vldb/WangYM97" mdate="2017-05-22">
  <author>Wei Wang</author>
  <author>Jiong Yang</author>
  <author>Richard R. Muntz</author>
  <title>STING: A Statistical Information Grid Approach to Spatial Data Mining.</title>
  <booktitle>VLDB</booktitle>
  <year>1997</year>
  <pages>186-195</pages>
</inproceedings>
<inproceedings key="conf/sigmod/WangWYY02">
  <author>Haixun Wang</author>
  <author>Wei Wang</author>
  <author>Jiong Yang</author>
  <author>Philip S. Yu</author>
  <title>Clustering by pattern similarity in large data sets.</title>
  <booktitle>SIGMOD Conference</booktitle>
  <year>2002</year>
</inproceedings>
<article key="journals/tkde/Example05">
  <author>Wei Wang</author>
  <author>Wei Wang</author>
  <author>Xuemin Lin</author>
  <title>An article with a duplicated author listing.</title>
  <journal>IEEE Trans. Knowl. Data Eng.</journal>
  <year>2005</year>
</article>
<proceedings key="conf/vldb/97">
  <editor>Somebody Else</editor>
  <title>VLDB 1997 Proceedings</title>
  <booktitle>VLDB</booktitle>
  <year>1997</year>
</proceedings>
<phdthesis key="phd/Someone99">
  <author>Someone Unrelated</author>
  <title>A thesis.</title>
  <year>1999</year>
</phdthesis>
<inproceedings key="conf/bad/NoYear">
  <author>No Year</author>
  <title>Missing year.</title>
  <booktitle>BAD</booktitle>
</inproceedings>
<inproceedings key="conf/vldb/WangYM97">
  <author>Duplicate Key</author>
  <title>Same key again.</title>
  <booktitle>VLDB</booktitle>
  <year>1997</year>
</inproceedings>
</dblp>`

func TestLoadSample(t *testing.T) {
	db, stats, err := Load(strings.NewReader(sample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 {
		t.Fatalf("records = %d, want 3", stats.Records)
	}
	// Skipped: proceedings and phdthesis are not counted (wrong kind is
	// skipped before decoding); the no-year and duplicate-key records are.
	if stats.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", stats.Skipped)
	}
	// Authors: Wei Wang, Jiong Yang, Richard R. Muntz, Haixun Wang,
	// Philip S. Yu, Xuemin Lin.
	if stats.Authors != 6 {
		t.Errorf("authors = %d, want 6", stats.Authors)
	}
	// The duplicated "Wei Wang" on the article collapses to one reference.
	if stats.Refs != 3+4+2 {
		t.Errorf("refs = %d, want 9", stats.Refs)
	}
	if stats.Venues != 3 {
		t.Errorf("venues = %d, want 3", stats.Venues)
	}

	// Relational contents.
	if got := db.Relation("Publish").Size(); got != 9 {
		t.Errorf("Publish size = %d", got)
	}
	weiRefs := db.Referencing("Publish", "author", "Wei Wang")
	if len(weiRefs) != 3 {
		t.Errorf("Wei Wang refs = %d, want 3", len(weiRefs))
	}
	// Proceedings key is venue/year; its conference FK resolves.
	pid := db.LookupKey("Proceedings", "VLDB/1997")
	if pid == reldb.InvalidTuple {
		t.Fatal("VLDB/1997 proceedings missing")
	}
	if db.LookupKey("Conferences", "VLDB") == reldb.InvalidTuple {
		t.Fatal("VLDB conference missing")
	}
	// Publisher derivation.
	ct := db.LookupKey("Conferences", "IEEE Trans. Knowl. Data Eng.")
	if db.Tuple(ct).Val("publisher") != "journal" {
		t.Errorf("journal publisher = %q", db.Tuple(ct).Val("publisher"))
	}
	cv := db.LookupKey("Conferences", "VLDB")
	if db.Tuple(cv).Val("publisher") != "conference" {
		t.Errorf("conference publisher = %q", db.Tuple(cv).Val("publisher"))
	}
}

func TestLoadOptions(t *testing.T) {
	// MinAuthors 3 keeps only the two conference papers (the article has 2
	// distinct authors).
	_, stats, err := Load(strings.NewReader(sample), Options{MinAuthors: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Errorf("records = %d, want 2", stats.Records)
	}
	// MaxRecords stops early.
	_, stats, err = Load(strings.NewReader(sample), Options{MaxRecords: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 {
		t.Errorf("records = %d, want 1", stats.Records)
	}
	// Kinds restricts record elements.
	_, stats, err = Load(strings.NewReader(sample), Options{Kinds: []string{"article"}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 {
		t.Errorf("article-only records = %d, want 1", stats.Records)
	}
}

func TestLoadMalformedXML(t *testing.T) {
	if _, _, err := Load(strings.NewReader("<dblp><inproceedings key='x'>"), Options{}); err == nil {
		t.Error("malformed XML accepted")
	}
}

func TestLoadedDatabaseDrivesTheEngine(t *testing.T) {
	db, _, err := Load(strings.NewReader(sample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The loaded database must satisfy the engine's structural expectations
	// (FK integrity, expansion).
	ex, _, err := reldb.ExpandAttributes(db, "Publications.title")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Relation(reldb.ValueRelationName("Proceedings", "year")) == nil {
		t.Error("expansion failed on loaded data")
	}
}
