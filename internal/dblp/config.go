// Package dblp generates synthetic bibliographic worlds shaped like the
// DBLP database of the DISTINCT paper (Figure 2 schema: Authors, Publish,
// Publications, Proceedings, Conferences), with the ground-truth identity of
// every author reference retained.
//
// The real evaluation data — the DBLP dump with 127K authors and hand-labeled
// gold clusters for ten ambiguous names — is proprietary-by-practicality
// (the labels come from home pages and paper affiliations). The generator is
// the substitution: it reproduces the structural properties DISTINCT
// exploits (references to the same author share collaborators and venues;
// different same-named authors live in different research communities) and
// the noise that makes the problem hard (cross-community collaborations,
// venues shared across communities, authors whose collaborations split into
// weakly linked groups when they change affiliation).
package dblp

import "fmt"

// AmbiguousName describes one injected name shared by several distinct
// author identities, mirroring Table 1 of the paper.
type AmbiguousName struct {
	// Name is the shared full name, e.g. "Wei Wang".
	Name string
	// RefsPerAuthor gives one entry per identity: how many references
	// (authorship tuples) that identity receives. len(RefsPerAuthor) is the
	// number of identities sharing the name.
	RefsPerAuthor []int
}

// NumAuthors returns the number of identities sharing the name.
func (a AmbiguousName) NumAuthors() int { return len(a.RefsPerAuthor) }

// NumRefs returns the total number of references to the name.
func (a AmbiguousName) NumRefs() int {
	n := 0
	for _, r := range a.RefsPerAuthor {
		n += r
	}
	return n
}

// Config controls world generation. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Seed int64

	// Communities is the number of research communities (areas). Authors,
	// collaboration groups and most conferences live inside one community.
	Communities int
	// AuthorsPerCommunity is the number of ordinary (non-injected) author
	// identities per community.
	AuthorsPerCommunity int
	// GroupSize is the mean size of a collaboration group (an advisor with
	// students); papers are mostly written inside one group.
	GroupSize int
	// ConfsPerCommunity is the number of community-specific conferences.
	ConfsPerCommunity int
	// GeneralConfs is the number of broad conferences (WWW/CIKM-like) that
	// attract papers from every community; they create the misleading
	// venue-sharing linkages between same-named authors.
	GeneralConfs int
	// YearFrom and YearTo bound the proceedings years, inclusive.
	YearFrom, YearTo int
	// PapersPerAuthor is the mean number of papers an ordinary identity
	// leads. Every paper contributes one reference per listed author.
	PapersPerAuthor float64
	// MaxCoauthors caps the coauthors added to a paper beyond the lead and
	// the lead's core collaborators.
	MaxCoauthors int
	// CoreCollaborators is how many recurring collaborators (advisor,
	// students) each identity has per collaboration group; they join the
	// identity's papers with probability CoreCollabProb each. Recurring
	// collaborators are what make two references to the same author share
	// coauthors — the central signal DISTINCT exploits.
	CoreCollaborators int
	// CoreCollabProb is the probability that each core collaborator appears
	// on a given paper of the identity.
	CoreCollabProb float64
	// CrossGroupProb is the probability that one coauthor slot is filled
	// from outside the lead's group (same community).
	CrossGroupProb float64
	// CrossCommunityProb is the probability that one coauthor slot is filled
	// from a different community entirely; these links are the false-positive
	// bait for disambiguation.
	CrossCommunityProb float64
	// GeneralConfProb is the probability a paper appears in a general
	// conference instead of a community conference.
	GeneralConfProb float64
	// HomeConfProb is the probability a non-general paper appears at its
	// group's preferred home conference rather than a random conference of
	// the community. Venue loyalty is what separates two same-named authors
	// working in the same area.
	HomeConfProb float64
	// SplitIdentityProb is the probability that an injected ambiguous
	// identity has two disjoint collaboration groups (an affiliation move),
	// which produces the weakly-linked partitions the paper blames for
	// recall loss (the "Michael Wagner" effect).
	SplitIdentityProb float64
	// CitationsPerPaper, when positive, gives each paper on average that
	// many citations to earlier papers — preferentially the lead author's
	// own (see SelfCiteProb), otherwise the community's. The paper's
	// introduction names citations among the linkages DISTINCT exploits;
	// zero (the default) leaves the Cites relation empty and preserves the
	// calibration reported in EXPERIMENTS.md.
	CitationsPerPaper int
	// SelfCiteProb is the probability each citation targets the lead
	// author's own earlier work rather than a community paper.
	SelfCiteProb float64
	// CareerSpanYears, when positive, confines each identity's papers to a
	// random window of that many years inside [YearFrom, YearTo] — real
	// authors publish in an era, which makes the publication-year linkage a
	// weak but genuine signal instead of pure noise. Zero disables the
	// window (papers spread over the full range), preserving the default
	// calibration reported in EXPERIMENTS.md.
	CareerSpanYears int

	// Ambiguous lists the injected names with per-identity reference counts.
	Ambiguous []AmbiguousName
}

// DefaultConfig returns a laptop-scale world whose ten ambiguous names have
// exactly the author/reference profile of Table 1 of the paper.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		Communities:         16,
		AuthorsPerCommunity: 80,
		GroupSize:           6,
		ConfsPerCommunity:   3,
		GeneralConfs:        3,
		YearFrom:            1990,
		YearTo:              2006,
		PapersPerAuthor:     4,
		MaxCoauthors:        2,
		CoreCollaborators:   3,
		CoreCollabProb:      0.65,
		CrossGroupProb:      0.25,
		CrossCommunityProb:  0.05,
		GeneralConfProb:     0.15,
		HomeConfProb:        0.6,
		SplitIdentityProb:   0.2,
		Ambiguous:           Table1Names(),
	}
}

// Table1Names reproduces the #authors/#refs profile of Table 1 of the paper:
// (name, #authors, #refs) = Hui Fang 3/9, Ajay Gupta 4/16,
// Joseph Hellerstein 2/151, Rakesh Kumar 2/36, Michael Wagner 5/29,
// Bing Liu 6/89, Jim Smith 3/19, Lei Wang 13/55, Wei Wang 14/143,
// Bin Yu 5/44. Per-identity counts follow a skewed split like the real
// names (e.g. the paper's Figure 5 shows Wei Wang split 57/31/19/5/…).
func Table1Names() []AmbiguousName {
	return []AmbiguousName{
		{Name: "Hui Fang", RefsPerAuthor: []int{4, 3, 2}},
		{Name: "Ajay Gupta", RefsPerAuthor: []int{7, 4, 3, 2}},
		{Name: "Joseph Hellerstein", RefsPerAuthor: []int{108, 43}},
		{Name: "Rakesh Kumar", RefsPerAuthor: []int{24, 12}},
		{Name: "Michael Wagner", RefsPerAuthor: []int{10, 8, 5, 4, 2}},
		{Name: "Bing Liu", RefsPerAuthor: []int{36, 22, 14, 9, 5, 3}},
		{Name: "Jim Smith", RefsPerAuthor: []int{9, 6, 4}},
		{Name: "Lei Wang", RefsPerAuthor: []int{12, 8, 6, 5, 4, 4, 3, 3, 3, 2, 2, 2, 1}},
		{Name: "Wei Wang", RefsPerAuthor: []int{57, 31, 19, 5, 5, 4, 4, 3, 3, 3, 3, 2, 2, 2}},
		{Name: "Bin Yu", RefsPerAuthor: []int{18, 11, 7, 5, 3}},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Communities <= 0:
		return fmt.Errorf("dblp: Communities must be positive")
	case c.AuthorsPerCommunity < 2:
		return fmt.Errorf("dblp: AuthorsPerCommunity must be at least 2")
	case c.GroupSize < 2:
		return fmt.Errorf("dblp: GroupSize must be at least 2")
	case c.ConfsPerCommunity <= 0:
		return fmt.Errorf("dblp: ConfsPerCommunity must be positive")
	case c.GeneralConfs < 0:
		return fmt.Errorf("dblp: GeneralConfs must be non-negative")
	case c.YearTo < c.YearFrom:
		return fmt.Errorf("dblp: YearTo before YearFrom")
	case c.PapersPerAuthor <= 0:
		return fmt.Errorf("dblp: PapersPerAuthor must be positive")
	case c.MaxCoauthors < 1:
		return fmt.Errorf("dblp: MaxCoauthors must be at least 1")
	case c.CoreCollaborators < 0:
		return fmt.Errorf("dblp: CoreCollaborators must be non-negative")
	case c.CareerSpanYears < 0:
		return fmt.Errorf("dblp: CareerSpanYears must be non-negative")
	case c.CitationsPerPaper < 0:
		return fmt.Errorf("dblp: CitationsPerPaper must be non-negative")
	case c.SelfCiteProb < 0 || c.SelfCiteProb > 1:
		return fmt.Errorf("dblp: SelfCiteProb out of [0,1]")
	}
	if c.GeneralConfProb+c.HomeConfProb > 1 {
		return fmt.Errorf("dblp: GeneralConfProb + HomeConfProb exceeds 1")
	}
	for _, p := range []float64{c.CrossGroupProb, c.CrossCommunityProb, c.GeneralConfProb, c.HomeConfProb, c.SplitIdentityProb, c.CoreCollabProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("dblp: probability %v out of [0,1]", p)
		}
	}
	for _, a := range c.Ambiguous {
		if a.Name == "" {
			return fmt.Errorf("dblp: ambiguous name with empty Name")
		}
		if len(a.RefsPerAuthor) == 0 {
			return fmt.Errorf("dblp: ambiguous name %q has no identities", a.Name)
		}
		for _, r := range a.RefsPerAuthor {
			if r < 1 {
				return fmt.Errorf("dblp: ambiguous name %q has an identity with %d refs", a.Name, r)
			}
		}
	}
	return nil
}
