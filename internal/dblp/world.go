package dblp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"distinct/internal/reldb"
)

// AuthorID identifies one real author identity in the generated world.
// Several identities may share one name; that is the point.
type AuthorID int

// Identity is one real author: the ground-truth object behind references.
type Identity struct {
	ID          AuthorID
	Name        string // full name; the Authors relation key
	First, Last string
	Affiliation string
	Community   int
	Ambiguous   bool // injected via Config.Ambiguous

	// groups lists the collaboration groups the identity draws coauthors
	// from. Ambiguous identities with an "affiliation move" have two.
	groups []*group
	// cores holds the identity's recurring collaborators, one set per group.
	cores [][]AuthorID
	// careerFrom/careerTo bound the identity's publication years when
	// Config.CareerSpanYears is positive.
	careerFrom, careerTo int
}

type group struct {
	community int
	members   []AuthorID // ordinary identities only
	// homeConf is the venue the group publishes at preferentially; groups
	// returning to the same venues is what lets DISTINCT tell apart two
	// same-named authors working in the same area.
	homeConf string
}

// World is a generated bibliographic database plus its ground truth.
type World struct {
	Config Config
	DB     *reldb.Database

	Identities []Identity
	// RefAuthor maps every Publish tuple to the true identity it refers to.
	RefAuthor map[reldb.TupleID]AuthorID

	refsByName map[string][]reldb.TupleID
	nPapers    int
}

// Schema returns the DBLP schema of Figure 2 of the paper.
func Schema() *reldb.Schema {
	return reldb.MustSchema(
		reldb.MustRelationSchema("Authors", reldb.Attribute{Name: "author", Key: true}),
		reldb.MustRelationSchema("Publish",
			reldb.Attribute{Name: "author", FK: "Authors"},
			reldb.Attribute{Name: "paper-key", FK: "Publications"},
		),
		reldb.MustRelationSchema("Publications",
			reldb.Attribute{Name: "paper-key", Key: true},
			reldb.Attribute{Name: "title"},
			reldb.Attribute{Name: "proc-key", FK: "Proceedings"},
		),
		reldb.MustRelationSchema("Proceedings",
			reldb.Attribute{Name: "proc-key", Key: true},
			reldb.Attribute{Name: "conference", FK: "Conferences"},
			reldb.Attribute{Name: "year"},
			reldb.Attribute{Name: "location"},
		),
		reldb.MustRelationSchema("Conferences",
			reldb.Attribute{Name: "conference", Key: true},
			reldb.Attribute{Name: "publisher"},
		),
		// Citations are not drawn in the paper's Figure 2 but its
		// introduction names them as a linkage DISTINCT exploits
		// ("through their coauthors, coauthors of coauthors, and
		// citations"); the relation is always present and populated when
		// Config.CitationsPerPaper is positive.
		reldb.MustRelationSchema("Cites",
			reldb.Attribute{Name: "citing", FK: "Publications"},
			reldb.Attribute{Name: "cited", FK: "Publications"},
		),
	)
}

// ReferenceRelation and ReferenceAttr locate the references DISTINCT
// disambiguates: the author column of the authorship relation.
const (
	ReferenceRelation = "Publish"
	ReferenceAttr     = "author"
)

// ReferenceEdge is the foreign-key edge through the reference attribute
// itself; join-path enumeration must exclude it as the first step.
func ReferenceEdge() reldb.Step {
	return reldb.Step{Rel: ReferenceRelation, Attr: ReferenceAttr, Forward: true}
}

// TitleAttr names the free-text attribute that attribute expansion skips.
const TitleAttr = "Publications.title"

type generator struct {
	cfg Config
	rng *rand.Rand
	w   *World

	confsByCommunity [][]string // community -> conference keys
	generalConfs     []string
	authorTuples     map[string]bool // names already inserted into Authors
	groupsByComm     [][]*group
	ordinary         []AuthorID // ordinary identities, all communities

	// Citation bookkeeping: earlier paper keys per lead identity and per
	// community, so new papers can cite with the locality real citations
	// have (self- and group-citations dominate).
	papersByLead map[AuthorID][]string
	papersByComm [][]string
}

// Generate builds a world from the configuration. Generation is
// deterministic given Config.Seed.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		w: &World{
			Config:     cfg,
			DB:         reldb.NewDatabase(Schema()),
			RefAuthor:  make(map[reldb.TupleID]AuthorID),
			refsByName: make(map[string][]reldb.TupleID),
		},
		authorTuples: make(map[string]bool),
		papersByLead: make(map[AuthorID][]string),
	}
	g.papersByComm = make([][]string, cfg.Communities)
	g.makeConferences()
	if err := g.makeOrdinaryIdentities(); err != nil {
		return nil, err
	}
	g.makeGroups()
	g.makeAmbiguousIdentities()
	g.makeOrdinaryPapers()
	g.makeAmbiguousPapers()
	return g.w, nil
}

func (g *generator) makeConferences() {
	db := g.w.DB
	g.confsByCommunity = make([][]string, g.cfg.Communities)
	for c := 0; c < g.cfg.Communities; c++ {
		for i := 0; i < g.cfg.ConfsPerCommunity; i++ {
			stem := confStems[(c*g.cfg.ConfsPerCommunity+i)%len(confStems)]
			key := fmt.Sprintf("%s-%d.%d", stem, c, i)
			db.MustInsert("Conferences", key, publishers[g.rng.Intn(len(publishers))])
			g.confsByCommunity[c] = append(g.confsByCommunity[c], key)
			g.makeProceedings(key)
		}
	}
	for i := 0; i < g.cfg.GeneralConfs; i++ {
		key := generalConfNames[i%len(generalConfNames)]
		if i >= len(generalConfNames) {
			key = fmt.Sprintf("%s-%d", key, i/len(generalConfNames))
		}
		db.MustInsert("Conferences", key, publishers[g.rng.Intn(len(publishers))])
		g.generalConfs = append(g.generalConfs, key)
		g.makeProceedings(key)
	}
}

func (g *generator) makeProceedings(conf string) {
	for y := g.cfg.YearFrom; y <= g.cfg.YearTo; y++ {
		key := fmt.Sprintf("%s/%d", conf, y)
		g.w.DB.MustInsert("Proceedings", key, conf,
			fmt.Sprintf("%d", y), locations[g.rng.Intn(len(locations))])
	}
}

// procKey returns the proceedings key for a conference and a random year
// within [from, to].
func (g *generator) procKey(conf string, from, to int) string {
	y := from + g.rng.Intn(to-from+1)
	return fmt.Sprintf("%s/%d", conf, y)
}

// career returns an identity's publication-year window: the whole
// [YearFrom, YearTo] range unless CareerSpanYears is set.
func (g *generator) career() (from, to int) {
	from, to = g.cfg.YearFrom, g.cfg.YearTo
	span := g.cfg.CareerSpanYears
	if span <= 0 || span >= to-from+1 {
		return from, to
	}
	start := from + g.rng.Intn(to-from+1-span)
	return start, start + span - 1
}

func (g *generator) makeOrdinaryIdentities() error {
	injected := make(map[string]bool, len(g.cfg.Ambiguous))
	for _, a := range g.cfg.Ambiguous {
		injected[a.Name] = true
	}
	for c := 0; c < g.cfg.Communities; c++ {
		for i := 0; i < g.cfg.AuthorsPerCommunity; i++ {
			var first, last, name string
			for attempt := 0; ; attempt++ {
				if attempt > 10000 {
					return fmt.Errorf("dblp: cannot find a non-injected name after %d attempts", attempt)
				}
				first, last = sampleName(g.rng)
				name = first + " " + last
				if !injected[name] {
					break
				}
			}
			id := AuthorID(len(g.w.Identities))
			cf, ct := g.career()
			g.w.Identities = append(g.w.Identities, Identity{
				ID: id, Name: name, First: first, Last: last,
				Affiliation: affiliations[g.rng.Intn(len(affiliations))],
				Community:   c,
				careerFrom:  cf, careerTo: ct,
			})
			g.ordinary = append(g.ordinary, id)
			g.insertAuthor(name)
		}
	}
	return nil
}

func (g *generator) insertAuthor(name string) {
	if !g.authorTuples[name] {
		g.w.DB.MustInsert("Authors", name)
		g.authorTuples[name] = true
	}
}

func (g *generator) makeGroups() {
	g.groupsByComm = make([][]*group, g.cfg.Communities)
	start := 0
	for c := 0; c < g.cfg.Communities; c++ {
		ids := make([]AuthorID, g.cfg.AuthorsPerCommunity)
		for i := range ids {
			ids[i] = g.ordinary[start+i]
		}
		start += g.cfg.AuthorsPerCommunity
		g.rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		for lo := 0; lo < len(ids); {
			hi := lo + g.cfg.GroupSize
			// Fold a too-small trailing remainder into the last group so no
			// group ends up with a single member (who would have no
			// collaborators at all).
			if hi > len(ids) || len(ids)-hi < 2 {
				hi = len(ids)
			}
			confs := g.confsByCommunity[c]
			grp := &group{
				community: c,
				members:   append([]AuthorID(nil), ids[lo:hi]...),
				homeConf:  confs[g.rng.Intn(len(confs))],
			}
			g.groupsByComm[c] = append(g.groupsByComm[c], grp)
			for _, id := range grp.members {
				g.w.Identities[id].groups = append(g.w.Identities[id].groups, grp)
			}
			lo = hi
		}
	}
}

func (g *generator) makeAmbiguousIdentities() {
	for _, amb := range g.cfg.Ambiguous {
		parts := strings.SplitN(amb.Name, " ", 2)
		first, last := parts[0], ""
		if len(parts) == 2 {
			last = parts[1]
		}
		g.insertAuthor(amb.Name)
		base := g.rng.Intn(g.cfg.Communities)
		for i := range amb.RefsPerAuthor {
			// Same-named identities land in distinct communities as far as
			// possible; with more identities than communities they wrap.
			comm := (base + i) % g.cfg.Communities
			id := AuthorID(len(g.w.Identities))
			cf, ct := g.career()
			ident := Identity{
				ID: id, Name: amb.Name, First: first, Last: last,
				Affiliation: affiliations[g.rng.Intn(len(affiliations))],
				Community:   comm,
				Ambiguous:   true,
				careerFrom:  cf, careerTo: ct,
			}
			groups := g.groupsByComm[comm]
			ident.groups = []*group{groups[g.rng.Intn(len(groups))]}
			// An affiliation move: a second, disjoint collaboration group,
			// producing the weakly linked partitions of Section 4.1.
			if g.rng.Float64() < g.cfg.SplitIdentityProb && len(groups) > 1 {
				for {
					other := groups[g.rng.Intn(len(groups))]
					if other != ident.groups[0] {
						ident.groups = append(ident.groups, other)
						break
					}
				}
			}
			g.w.Identities = append(g.w.Identities, ident)
		}
	}
}

// assignCores gives the identity a recurring-collaborator set for each of
// its groups, sampled from the group members (excluding the identity).
func (g *generator) assignCores(id AuthorID) {
	ident := &g.w.Identities[id]
	ident.cores = make([][]AuthorID, len(ident.groups))
	for gi, grp := range ident.groups {
		var pool []AuthorID
		for _, m := range grp.members {
			if m != id {
				pool = append(pool, m)
			}
		}
		g.rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		n := g.cfg.CoreCollaborators
		if n > len(pool) {
			n = len(pool)
		}
		ident.cores[gi] = append([]AuthorID(nil), pool[:n]...)
	}
}

// paperCoauthors selects the coauthors of one paper led by the identity,
// using its gi-th group: each core collaborator joins with probability
// CoreCollabProb, then up to MaxCoauthors extra coauthors come from the
// group, the community, or (rarely) anywhere.
func (g *generator) paperCoauthors(ident *Identity, gi int) []AuthorID {
	grp := ident.groups[gi]
	var out []AuthorID
	seen := map[AuthorID]bool{ident.ID: true}
	add := func(cand AuthorID) {
		if !seen[cand] {
			seen[cand] = true
			out = append(out, cand)
		}
	}
	for _, c := range ident.cores[gi] {
		if g.rng.Float64() < g.cfg.CoreCollabProb {
			add(c)
		}
	}
	extras := g.rng.Intn(g.cfg.MaxCoauthors + 1)
	for i := 0; i < extras; i++ {
		r := g.rng.Float64()
		switch {
		case r < g.cfg.CrossCommunityProb:
			add(g.ordinary[g.rng.Intn(len(g.ordinary))])
		case r < g.cfg.CrossCommunityProb+g.cfg.CrossGroupProb:
			comm := g.groupsByComm[grp.community]
			other := comm[g.rng.Intn(len(comm))]
			add(other.members[g.rng.Intn(len(other.members))])
		default:
			add(grp.members[g.rng.Intn(len(grp.members))])
		}
	}
	// A paper always has at least one coauthor, so the coauthor join path
	// never dead-ends for every reference of an author.
	if len(out) == 0 {
		for _, m := range grp.members {
			if m != ident.ID {
				add(m)
				break
			}
		}
	}
	return out
}

// addPaper inserts a publication with the given authors at a conference
// chosen for grp (its home venue preferentially, else its community's or a
// general one), and records the ground truth of each new reference. Authors
// with duplicate names are collapsed to one reference (the Publish tuple
// would otherwise be ambiguous even in the ground truth).
func (g *generator) addPaper(authors []AuthorID, grp *group) []reldb.TupleID {
	db := g.w.DB
	g.w.nPapers++
	paperKey := fmt.Sprintf("p%06d", g.w.nPapers)

	conf := ""
	switch r := g.rng.Float64(); {
	case r < g.cfg.GeneralConfProb && len(g.generalConfs) > 0:
		conf = g.generalConfs[g.rng.Intn(len(g.generalConfs))]
	case r < g.cfg.GeneralConfProb+g.cfg.HomeConfProb:
		conf = grp.homeConf
	default:
		confs := g.confsByCommunity[grp.community]
		conf = confs[g.rng.Intn(len(confs))]
	}
	words := make([]string, 3+g.rng.Intn(4))
	for i := range words {
		words[i] = titleWords[g.rng.Intn(len(titleWords))]
	}
	lead := &g.w.Identities[authors[0]]
	db.MustInsert("Publications", paperKey, strings.Join(words, " "), g.procKey(conf, lead.careerFrom, lead.careerTo))
	g.addCitations(paperKey, authors[0], grp.community)
	g.papersByLead[authors[0]] = append(g.papersByLead[authors[0]], paperKey)
	g.papersByComm[grp.community] = append(g.papersByComm[grp.community], paperKey)

	var refs []reldb.TupleID
	usedNames := make(map[string]bool, len(authors))
	for _, id := range authors {
		ident := &g.w.Identities[id]
		if usedNames[ident.Name] {
			continue
		}
		usedNames[ident.Name] = true
		ref := db.MustInsert("Publish", ident.Name, paperKey)
		g.w.RefAuthor[ref] = id
		g.w.refsByName[ident.Name] = append(g.w.refsByName[ident.Name], ref)
		refs = append(refs, ref)
	}
	return refs
}

func (g *generator) makeOrdinaryPapers() {
	for _, id := range g.ordinary {
		g.assignCores(id)
	}
	for _, id := range g.ordinary {
		ident := &g.w.Identities[id]
		n := int(g.cfg.PapersPerAuthor + g.rng.NormFloat64()*g.cfg.PapersPerAuthor/3)
		if n < 1 {
			n = 1
		}
		for p := 0; p < n; p++ {
			gi := g.rng.Intn(len(ident.groups))
			co := g.paperCoauthors(ident, gi)
			g.addPaper(append([]AuthorID{id}, co...), ident.groups[gi])
		}
	}
}

func (g *generator) makeAmbiguousPapers() {
	// Sibling groups per name: with probability CrossCommunityProb a paper
	// of one identity borrows a coauthor from a same-named sibling's group.
	// These are the misleading linkages behind the paper's Figure 5 errors.
	byName := make(map[string][]AuthorID)
	for _, ident := range g.w.Identities {
		if ident.Ambiguous {
			byName[ident.Name] = append(byName[ident.Name], ident.ID)
		}
	}
	for _, amb := range g.cfg.Ambiguous {
		ids := byName[amb.Name]
		for _, id := range ids {
			g.assignCores(id)
		}
		for i, id := range ids {
			ident := &g.w.Identities[id]
			want := amb.RefsPerAuthor[i]
			for p := 0; p < want; p++ {
				// Alternate between the identity's groups so a split
				// identity's references partition into two camps.
				gi := p % len(ident.groups)
				co := g.paperCoauthors(ident, gi)
				if len(ids) > 1 && g.rng.Float64() < g.cfg.CrossCommunityProb {
					sib := ids[g.rng.Intn(len(ids))]
					if sib != id {
						sg := g.w.Identities[sib].groups[0]
						co = append(co, sg.members[g.rng.Intn(len(sg.members))])
					}
				}
				g.addPaper(append([]AuthorID{id}, co...), ident.groups[gi])
			}
		}
	}
}

// Assemble reconstructs a World from its parts (as deserialized from disk):
// the database, the identity list, and the per-reference ground truth. The
// reference index and paper count are rebuilt from the database. Every
// reference tuple must have a ground-truth entry naming a valid identity
// whose name matches the tuple.
func Assemble(cfg Config, db *reldb.Database, identities []Identity, refAuthor map[reldb.TupleID]AuthorID) (*World, error) {
	w := &World{
		Config:     cfg,
		DB:         db,
		Identities: identities,
		RefAuthor:  refAuthor,
		refsByName: make(map[string][]reldb.TupleID),
	}
	pub := db.Relation(ReferenceRelation)
	if pub == nil {
		return nil, fmt.Errorf("dblp: database has no %s relation", ReferenceRelation)
	}
	for _, ref := range pub.TupleIDs() {
		id, ok := refAuthor[ref]
		if !ok {
			return nil, fmt.Errorf("dblp: reference %d has no ground truth", ref)
		}
		if int(id) < 0 || int(id) >= len(identities) {
			return nil, fmt.Errorf("dblp: reference %d names unknown identity %d", ref, id)
		}
		name := db.Tuple(ref).Val(ReferenceAttr)
		if identities[id].Name != name {
			return nil, fmt.Errorf("dblp: reference %d is %q but identity %d is %q", ref, name, id, identities[id].Name)
		}
		w.refsByName[name] = append(w.refsByName[name], ref)
	}
	if pubs := db.Relation("Publications"); pubs != nil {
		w.nPapers = pubs.Size()
	}
	return w, nil
}

// addCitations makes the new paper cite earlier papers: preferentially the
// lead's own earlier papers (self-citation is the linkage that ties one
// author's references together), otherwise earlier papers of the same
// community.
func (g *generator) addCitations(paperKey string, lead AuthorID, community int) {
	mean := g.cfg.CitationsPerPaper
	if mean <= 0 {
		return
	}
	n := g.rng.Intn(2*mean + 1) // uniform with the requested mean
	own := g.papersByLead[lead]
	comm := g.papersByComm[community]
	cited := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		var target string
		if len(own) > 0 && g.rng.Float64() < g.cfg.SelfCiteProb {
			target = own[g.rng.Intn(len(own))]
		} else if len(comm) > 0 {
			target = comm[g.rng.Intn(len(comm))]
		} else {
			break
		}
		if cited[target] {
			continue
		}
		cited[target] = true
		g.w.DB.MustInsert("Cites", paperKey, target)
	}
}

// Refs returns every reference (Publish tuple) carrying the given name, in
// insertion order.
func (w *World) Refs(name string) []reldb.TupleID {
	return w.refsByName[name]
}

// AmbiguousNames returns the injected names in configuration order.
func (w *World) AmbiguousNames() []string {
	names := make([]string, len(w.Config.Ambiguous))
	for i, a := range w.Config.Ambiguous {
		names[i] = a.Name
	}
	return names
}

// GoldClusters groups the references of a name by true identity. Clusters
// are ordered by first appearance; references keep insertion order.
func (w *World) GoldClusters(name string) [][]reldb.TupleID {
	var order []AuthorID
	byID := make(map[AuthorID][]reldb.TupleID)
	for _, ref := range w.refsByName[name] {
		id := w.RefAuthor[ref]
		if _, ok := byID[id]; !ok {
			order = append(order, id)
		}
		byID[id] = append(byID[id], ref)
	}
	out := make([][]reldb.TupleID, len(order))
	for i, id := range order {
		out[i] = byID[id]
	}
	return out
}

// Identity returns the identity record for an author ID.
func (w *World) Identity(id AuthorID) Identity { return w.Identities[id] }

// NumPapers returns the number of generated publications.
func (w *World) NumPapers() int { return w.nPapers }

// NumReferences returns the total number of authorship references.
func (w *World) NumReferences() int { return w.DB.Relation(ReferenceRelation).Size() }

// NameCounts tallies, for every author name, how many identities carry it.
// Sorted by name for determinism.
func (w *World) NameCounts() []NameCount {
	m := make(map[string]int)
	for _, ident := range w.Identities {
		m[ident.Name]++
	}
	out := make([]NameCount, 0, len(m))
	for n, c := range m {
		out = append(out, NameCount{Name: n, Identities: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NameCount reports how many identities share one name.
type NameCount struct {
	Name       string
	Identities int
}
