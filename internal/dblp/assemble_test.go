package dblp

import (
	"testing"

	"distinct/internal/reldb"
)

func TestAssembleRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Communities = 3
	cfg.AuthorsPerCommunity = 15
	cfg.PapersPerAuthor = 2
	cfg.Ambiguous = []AmbiguousName{{Name: "Wei Wang", RefsPerAuthor: []int{4, 3}}}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble from the parts a deserializer would hold.
	w2, err := Assemble(w.Config, w.DB, w.Identities, w.RefAuthor)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumPapers() != w.NumPapers() || w2.NumReferences() != w.NumReferences() {
		t.Error("assembled world sizes differ")
	}
	if len(w2.Refs("Wei Wang")) != 7 {
		t.Errorf("assembled refs = %d", len(w2.Refs("Wei Wang")))
	}
	if len(w2.GoldClusters("Wei Wang")) != 2 {
		t.Error("assembled gold clusters differ")
	}

	// Missing reference relation.
	empty := reldb.NewDatabase(reldb.MustSchema(
		reldb.MustRelationSchema("Other", reldb.Attribute{Name: "k", Key: true})))
	if _, err := Assemble(cfg, empty, w.Identities, w.RefAuthor); err == nil {
		t.Error("database without Publish accepted")
	}
}
