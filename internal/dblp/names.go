package dblp

import "math/rand"

// Name pools. First and last names are sampled with a Zipf-like skew so the
// generated Authors relation has the frequency structure the automatic
// training-set construction of DISTINCT (Section 3) relies on: common names
// (high collision risk) and rare names (assumed unique and usable as free
// training labels).

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Wei",
	"Lei", "Jing", "Yan", "Li", "Min", "Hui", "Xin", "Bin", "Jun", "Ajay",
	"Rakesh", "Sanjay", "Amit", "Ravi", "Anil", "Vijay", "Suresh", "Raj",
	"Deepak", "Hans", "Klaus", "Jurgen", "Wolfgang", "Dieter", "Pierre",
	"Jean", "Michel", "Alain", "Francois", "Akira", "Hiroshi", "Takeshi",
	"Kenji", "Yuki", "Carlos", "Jose", "Luis", "Miguel", "Antonio",
	"Andrei", "Sergei", "Dmitri", "Ivan", "Olga", "Chen", "Yong", "Hong",
	"Feng", "Tao", "Ming", "Anna", "Eva", "Ingrid", "Marta", "Sofia",
	"Erik", "Lars", "Sven", "Nils", "Per", "Marco", "Paolo", "Giovanni",
	"Luca", "Andrea", "Daniel", "Matthew", "Andrew", "Kevin", "Brian",
	"George", "Edward", "Ronald", "Timothy", "Jason", "Jeffrey", "Ryan",
	"Gabor", "Istvan", "Zoltan", "Pavel", "Jan", "Piotr", "Marek",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Wang", "Li", "Zhang", "Liu", "Chen",
	"Yang", "Huang", "Zhao", "Wu", "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu",
	"Guo", "He", "Lin", "Gao", "Luo", "Gupta", "Kumar", "Sharma", "Singh",
	"Patel", "Agarwal", "Rao", "Reddy", "Iyer", "Mehta", "Muller",
	"Schmidt", "Schneider", "Fischer", "Weber", "Meyer", "Wagner", "Becker",
	"Schulz", "Hoffmann", "Tanaka", "Suzuki", "Takahashi", "Watanabe",
	"Ito", "Yamamoto", "Nakamura", "Kobayashi", "Kato", "Yoshida",
	"Ivanov", "Petrov", "Sidorov", "Volkov", "Popov", "Rossi", "Russo",
	"Ferrari", "Esposito", "Bianchi", "Andersson", "Johansson", "Karlsson",
	"Nilsson", "Eriksson", "Dubois", "Moreau", "Laurent", "Simon",
	"Michel", "Kim", "Park", "Lee", "Choi", "Jung", "Kang", "Cho", "Yoon",
	"Jang", "Lim", "Fang", "Yu", "Han", "Pei", "Shi", "Lu", "Yuan", "Song",
	"Jiang", "Yin", "Nagy", "Horvath", "Kovacs", "Novak", "Kowalski",
}

var affiliations = []string{
	"UNC Chapel Hill", "UNSW Australia", "Fudan University", "SUNY Buffalo",
	"Beijing Polytechnic", "NU Singapore", "Zhejiang University",
	"SUNY Binghamton", "Purdue University", "Harbin University",
	"Nanjing Normal", "Ningbo Tech", "Chongqing University",
	"Beijing University", "UIUC", "Stanford", "MIT", "CMU", "Berkeley",
	"University of Washington", "Georgia Tech", "UT Austin", "Wisconsin",
	"Michigan", "Cornell", "Princeton", "ETH Zurich", "EPFL",
	"Max Planck Institute", "TU Munich", "University of Tokyo",
	"Kyoto University", "Tsinghua University", "Peking University",
	"HKUST", "NTU Taiwan", "KAIST", "Seoul National", "IIT Bombay",
	"IIT Delhi", "IBM Research", "Microsoft Research", "Bell Labs",
	"HP Labs", "AT&T Research",
}

var publishers = []string{
	"ACM", "IEEE", "Springer", "Elsevier", "Morgan Kaufmann", "USENIX",
}

var locations = []string{
	"Athens", "Madison", "Seattle", "San Diego", "Tokyo", "Paris", "Rome",
	"Sydney", "Beijing", "Shanghai", "Hong Kong", "Singapore", "Vienna",
	"Berlin", "Cairo", "Toronto", "Vancouver", "Chicago", "Boston",
	"San Francisco", "Edinburgh", "Istanbul", "Seoul", "Taipei", "Dallas",
	"Baltimore", "Washington DC", "New York", "Trondheim", "Heraklion",
}

var confStems = []string{
	"DB", "DM", "IR", "AI", "ML", "NET", "SEC", "ARCH", "OS", "PL", "SE",
	"HCI", "VIS", "BIO", "THEORY",
}

var generalConfNames = []string{"WWW", "CIKM", "AAAI-GEN", "COMPSAC", "SAC"}

var titleWords = []string{
	"efficient", "scalable", "mining", "clustering", "indexing", "queries",
	"streams", "graphs", "patterns", "learning", "approximate", "adaptive",
	"distributed", "parallel", "incremental", "probabilistic", "relational",
	"sequential", "frequent", "similarity", "search", "optimization",
	"classification", "integration", "warehousing", "sensor", "networks",
	"privacy", "security", "ranking", "retrieval", "semantics", "views",
	"joins", "cubes", "trees", "hashing", "caching", "sampling", "skyline",
}

// zipfIndex draws an index in [0, n) with a Zipf-like skew: low indexes are
// much more likely. s controls the skew; s≈1.1 gives a heavy head and a
// long thin tail.
func zipfIndex(rng *rand.Rand, n int) int {
	z := rand.NewZipf(rng, 1.3, 1.0, uint64(n-1))
	return int(z.Uint64())
}

// middleInitialProb is the fraction of authors carrying a middle initial
// ("Wei K. Wang"). Initials multiply the name space the way they do in real
// bibliographies: most full names become unique, and rare
// first-name/last-name part combinations — the raw material of the
// automatic training set — become plentiful.
const middleInitialProb = 0.35

// sampleName draws a "First Last" or "First M. Last" name with Zipf-skewed
// part frequencies.
func sampleName(rng *rand.Rand) (first, last string) {
	first = firstNames[zipfIndex(rng, len(firstNames))]
	last = lastNames[zipfIndex(rng, len(lastNames))]
	if rng.Float64() < middleInitialProb {
		last = string(rune('A'+rng.Intn(26))) + ". " + last
	}
	return first, last
}
