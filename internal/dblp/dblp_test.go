package dblp

import (
	"testing"
	"testing/quick"

	"distinct/internal/reldb"
)

// smallConfig is a fast world for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Communities = 4
	cfg.AuthorsPerCommunity = 30
	cfg.PapersPerAuthor = 3
	cfg.Ambiguous = []AmbiguousName{
		{Name: "Wei Wang", RefsPerAuthor: []int{10, 6, 4}},
		{Name: "Lei Wang", RefsPerAuthor: []int{5, 5}},
	}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Communities = 0 },
		func(c *Config) { c.AuthorsPerCommunity = 1 },
		func(c *Config) { c.GroupSize = 1 },
		func(c *Config) { c.ConfsPerCommunity = 0 },
		func(c *Config) { c.GeneralConfs = -1 },
		func(c *Config) { c.YearTo = c.YearFrom - 1 },
		func(c *Config) { c.PapersPerAuthor = 0 },
		func(c *Config) { c.MaxCoauthors = 0 },
		func(c *Config) { c.CrossGroupProb = 1.5 },
		func(c *Config) { c.CrossCommunityProb = -0.1 },
		func(c *Config) { c.Ambiguous = []AmbiguousName{{Name: ""}} },
		func(c *Config) { c.Ambiguous = []AmbiguousName{{Name: "X"}} },
		func(c *Config) { c.Ambiguous = []AmbiguousName{{Name: "X", RefsPerAuthor: []int{0}}} },
	}
	for i, mut := range cases {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAmbiguousNameCounts(t *testing.T) {
	a := AmbiguousName{Name: "X", RefsPerAuthor: []int{3, 2, 1}}
	if a.NumAuthors() != 3 || a.NumRefs() != 6 {
		t.Errorf("NumAuthors=%d NumRefs=%d", a.NumAuthors(), a.NumRefs())
	}
}

func TestTable1Profile(t *testing.T) {
	want := []struct {
		name    string
		authors int
		refs    int
	}{
		{"Hui Fang", 3, 9}, {"Ajay Gupta", 4, 16}, {"Joseph Hellerstein", 2, 151},
		{"Rakesh Kumar", 2, 36}, {"Michael Wagner", 5, 29}, {"Bing Liu", 6, 89},
		{"Jim Smith", 3, 19}, {"Lei Wang", 13, 55}, {"Wei Wang", 14, 143},
		{"Bin Yu", 5, 44},
	}
	names := Table1Names()
	if len(names) != len(want) {
		t.Fatalf("Table1Names has %d entries", len(names))
	}
	for i, w := range want {
		if names[i].Name != w.name || names[i].NumAuthors() != w.authors || names[i].NumRefs() != w.refs {
			t.Errorf("%s: got %d authors %d refs, want %d/%d",
				names[i].Name, names[i].NumAuthors(), names[i].NumRefs(), w.authors, w.refs)
		}
	}
}

func TestGenerateGroundTruthConsistency(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every Publish tuple has a ground-truth identity whose name matches.
	pub := w.DB.Relation(ReferenceRelation)
	if pub.Size() == 0 {
		t.Fatal("no references generated")
	}
	for _, ref := range pub.TupleIDs() {
		id, ok := w.RefAuthor[ref]
		if !ok {
			t.Fatalf("reference %d has no ground truth", ref)
		}
		if got := w.DB.Tuple(ref).Val("author"); got != w.Identities[id].Name {
			t.Fatalf("reference %d: name %q but identity %q", ref, got, w.Identities[id].Name)
		}
	}
	// Referential integrity: every FK resolves.
	for _, rs := range w.DB.Schema.Relations() {
		rel := w.DB.Relation(rs.Name)
		for _, fi := range rs.ForeignKeys() {
			target := rs.Attrs[fi].FK
			for _, id := range rel.TupleIDs() {
				v := w.DB.Tuple(id).Vals[fi]
				if w.DB.LookupKey(target, v) == reldb.InvalidTuple {
					t.Fatalf("%s tuple %d: dangling FK %s=%q", rs.Name, id, rs.Attrs[fi].Name, v)
				}
			}
		}
	}
}

func TestGenerateAmbiguousProfile(t *testing.T) {
	cfg := smallConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, amb := range cfg.Ambiguous {
		refs := w.Refs(amb.Name)
		if len(refs) != amb.NumRefs() {
			t.Errorf("%s: %d refs, want %d", amb.Name, len(refs), amb.NumRefs())
		}
		gold := w.GoldClusters(amb.Name)
		if len(gold) != amb.NumAuthors() {
			t.Errorf("%s: %d gold clusters, want %d", amb.Name, len(gold), amb.NumAuthors())
		}
		// Cluster sizes match the requested split (as a multiset).
		sizes := make(map[int]int)
		for _, c := range gold {
			sizes[len(c)]++
		}
		want := make(map[int]int)
		for _, r := range amb.RefsPerAuthor {
			want[r]++
		}
		for k, v := range want {
			if sizes[k] != v {
				t.Errorf("%s: cluster size histogram %v, want %v", amb.Name, sizes, want)
				break
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := smallConfig()
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.NumPapers() != w2.NumPapers() || w1.NumReferences() != w2.NumReferences() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			w1.NumPapers(), w1.NumReferences(), w2.NumPapers(), w2.NumReferences())
	}
	// Spot-check: identical tuple contents for a sample.
	for _, ref := range w1.Refs("Wei Wang") {
		t1, t2 := w1.DB.Tuple(ref), w2.DB.Tuple(ref)
		if t1.Val("paper-key") != t2.Val("paper-key") {
			t.Fatal("generation is not deterministic")
		}
	}
	// A different seed changes the world.
	cfg.Seed = 999
	w3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w3.NumReferences() == w1.NumReferences() && w3.NumPapers() == w1.NumPapers() {
		// Sizes could coincide; compare a tuple stream sample.
		same := true
		for i, ref := range w1.Refs("Wei Wang") {
			if w3.DB.Tuple(w3.Refs("Wei Wang")[i]).Val("paper-key") != w1.DB.Tuple(ref).Val("paper-key") {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Communities = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid config accepted by Generate")
	}
}

func TestAmbiguousIdentitiesSpreadCommunities(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	comms := make(map[int]bool)
	n := 0
	for _, ident := range w.Identities {
		if ident.Ambiguous && ident.Name == "Wei Wang" {
			comms[ident.Community] = true
			n++
		}
	}
	if n != 3 {
		t.Fatalf("Wei Wang identities = %d, want 3", n)
	}
	if len(comms) < 2 {
		t.Errorf("all Wei Wang identities in one community; disambiguation would be trivial or impossible")
	}
}

func TestNameCountsAndHelpers(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := w.NameCounts()
	byName := make(map[string]int, len(counts))
	for _, nc := range counts {
		byName[nc.Name] = nc.Identities
	}
	if byName["Wei Wang"] != 3 {
		t.Errorf("Wei Wang identities = %d, want 3", byName["Wei Wang"])
	}
	names := w.AmbiguousNames()
	if len(names) != 2 || names[0] != "Wei Wang" || names[1] != "Lei Wang" {
		t.Errorf("AmbiguousNames = %v", names)
	}
	// Identity accessor round-trips.
	ref := w.Refs("Wei Wang")[0]
	id := w.RefAuthor[ref]
	if got := w.Identity(id).Name; got != "Wei Wang" {
		t.Errorf("Identity(%d).Name = %q", id, got)
	}
	if w.NumPapers() <= 0 || w.NumReferences() <= w.NumPapers() {
		t.Errorf("papers=%d refs=%d look wrong", w.NumPapers(), w.NumReferences())
	}
}

func TestReferenceEdgeAndSchema(t *testing.T) {
	s := Schema()
	e := ReferenceEdge()
	if e.From(s) != ReferenceRelation || e.To(s) != "Authors" {
		t.Errorf("ReferenceEdge endpoints %s -> %s", e.From(s), e.To(s))
	}
	// The schema must expand cleanly with titles skipped.
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, idMap, err := reldb.ExpandAttributes(w.DB, TitleAttr)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Relation(reldb.ValueRelationName("Proceedings", "year")) == nil {
		t.Error("year expansion missing")
	}
	// The mapped reference tuples carry the same author value.
	for _, ref := range w.Refs("Wei Wang")[:3] {
		if got := ex.Tuple(idMap[ref]).Val("author"); got != "Wei Wang" {
			t.Errorf("mapped ref author = %q", got)
		}
	}
}

// Property: for any seed, the generated world keeps ground truth consistent
// and the ambiguous reference counts exact.
func TestGenerateProperty(t *testing.T) {
	cfg := smallConfig()
	cfg.Communities = 3
	cfg.AuthorsPerCommunity = 15
	cfg.PapersPerAuthor = 2
	f := func(seed int64) bool {
		c := cfg
		c.Seed = seed
		w, err := Generate(c)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, amb := range c.Ambiguous {
			if len(w.Refs(amb.Name)) != amb.NumRefs() {
				t.Logf("seed %d: %s refs %d != %d", seed, amb.Name, len(w.Refs(amb.Name)), amb.NumRefs())
				return false
			}
			if len(w.GoldClusters(amb.Name)) != amb.NumAuthors() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCareerSpans(t *testing.T) {
	cfg := smallConfig()
	cfg.CareerSpanYears = 5
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The window constrains the papers an author LEADS (the first listed
	// reference of each paper); coauthored papers follow the lead's window.
	leadYears := make(map[AuthorID][]int)
	seenPaper := make(map[string]bool)
	for _, ref := range w.DB.Relation(ReferenceRelation).TupleIDs() {
		paper := w.DB.Tuple(ref).Val("paper-key")
		if seenPaper[paper] {
			continue // not the lead reference
		}
		seenPaper[paper] = true
		id := w.RefAuthor[ref]
		pt := w.DB.LookupKey("Publications", paper)
		proc := w.DB.Tuple(pt).Val("proc-key")
		prt := w.DB.LookupKey("Proceedings", proc)
		year := w.DB.Tuple(prt).Val("year")
		y := 0
		for _, c := range year {
			y = y*10 + int(c-'0')
		}
		leadYears[id] = append(leadYears[id], y)
	}
	for id, years := range leadYears {
		lo, hi := years[0], years[0]
		for _, y := range years {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		if hi-lo >= cfg.CareerSpanYears {
			t.Fatalf("author %d leads papers across %d years, window is %d", id, hi-lo+1, cfg.CareerSpanYears)
		}
	}
	// Disabled (0) still validates and generates.
	cfg.CareerSpanYears = 0
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.CareerSpanYears = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative span accepted")
	}
}

func TestCitations(t *testing.T) {
	cfg := smallConfig()
	cfg.CitationsPerPaper = 2
	cfg.SelfCiteProb = 0.6
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cites := w.DB.Relation("Cites")
	if cites.Size() == 0 {
		t.Fatal("no citations generated")
	}
	// Citations resolve to real papers and never cite later papers
	// (paper keys are sequential, so key order is time order).
	for _, id := range cites.TupleIDs() {
		t1 := w.DB.Tuple(id)
		citing, cited := t1.Val("citing"), t1.Val("cited")
		if w.DB.LookupKey("Publications", citing) == reldb.InvalidTuple ||
			w.DB.LookupKey("Publications", cited) == reldb.InvalidTuple {
			t.Fatal("dangling citation")
		}
		if cited >= citing {
			t.Fatalf("paper %s cites non-earlier paper %s", citing, cited)
		}
	}
	// Default config keeps the relation empty (calibration preserved).
	w0, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w0.DB.Relation("Cites").Size() != 0 {
		t.Error("citations generated despite CitationsPerPaper=0")
	}
	// Validation.
	cfg.CitationsPerPaper = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative citations accepted")
	}
	cfg.CitationsPerPaper = 1
	cfg.SelfCiteProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("bad SelfCiteProb accepted")
	}
}
