package reldb

import (
	"fmt"
	"strings"
)

// Step is one hop of a join path. Every hop traverses one foreign-key edge
// of the schema graph, in either direction:
//
//   - Forward: from a tuple of Rel (the relation owning the foreign key
//     Attr) to the single tuple it references.
//   - Reverse (Forward == false): from a tuple of the referenced relation to
//     every tuple of Rel whose Attr references it.
type Step struct {
	Rel     string // relation owning the foreign-key attribute
	Attr    string // the foreign-key attribute
	Forward bool
}

// From returns the relation a walker must be in before taking the step.
func (st Step) From(s *Schema) string {
	if st.Forward {
		return st.Rel
	}
	return st.target(s)
}

// To returns the relation the step leads to.
func (st Step) To(s *Schema) string {
	if st.Forward {
		return st.target(s)
	}
	return st.Rel
}

func (st Step) target(s *Schema) string {
	rs := s.Relation(st.Rel)
	if rs == nil {
		return ""
	}
	ai := rs.AttrIndex(st.Attr)
	if ai < 0 {
		return ""
	}
	return rs.Attrs[ai].FK
}

// Inverse returns the same edge traversed in the opposite direction.
func (st Step) Inverse() Step { return Step{Rel: st.Rel, Attr: st.Attr, Forward: !st.Forward} }

// JoinPath is a sequence of steps starting at relation Start. It corresponds
// to one join path in the sense of DISTINCT Definition 1: the neighbor
// tuples of a reference along the path are the tuples of the final relation
// reachable from the reference's tuple.
type JoinPath struct {
	Start string
	Steps []Step
}

// Validate checks that the steps chain correctly from Start under schema s.
func (p JoinPath) Validate(s *Schema) error {
	if s.Relation(p.Start) == nil {
		return fmt.Errorf("reldb: join path starts at unknown relation %q", p.Start)
	}
	cur := p.Start
	for i, st := range p.Steps {
		from, to := st.From(s), st.To(s)
		if from == "" || to == "" {
			return fmt.Errorf("reldb: join path step %d (%s.%s) does not name a foreign-key edge", i, st.Rel, st.Attr)
		}
		if from != cur {
			return fmt.Errorf("reldb: join path step %d starts at %q, but walker is at %q", i, from, cur)
		}
		cur = to
	}
	return nil
}

// End returns the relation the path terminates in.
func (p JoinPath) End(s *Schema) string {
	cur := p.Start
	for _, st := range p.Steps {
		cur = st.To(s)
	}
	return cur
}

// Len returns the number of steps.
func (p JoinPath) Len() int { return len(p.Steps) }

// Reverse returns the path traversed backwards, starting at the end relation.
func (p JoinPath) Reverse(s *Schema) JoinPath {
	rev := JoinPath{Start: p.End(s), Steps: make([]Step, len(p.Steps))}
	for i, st := range p.Steps {
		rev.Steps[len(p.Steps)-1-i] = st.Inverse()
	}
	return rev
}

// String renders the path like "Publish>paper-key>Publications<paper-key<Publish".
// Forward steps use '>', reverse steps '<'.
func (p JoinPath) String() string {
	var b strings.Builder
	b.WriteString(p.Start)
	for _, st := range p.Steps {
		if st.Forward {
			b.WriteByte('>')
			b.WriteString(st.Attr)
			b.WriteByte('>')
		} else {
			b.WriteByte('<')
			b.WriteString(st.Attr)
			b.WriteByte('<')
		}
		// The target relation name is implied by the edge; we still print it
		// for readability.
	}
	return b.String()
}

// Describe renders the path with explicit relation names, e.g.
// "Publish >paper-key> Publications <paper-key< Publish >author> Authors".
func (p JoinPath) Describe(s *Schema) string {
	var b strings.Builder
	b.WriteString(p.Start)
	for _, st := range p.Steps {
		if st.Forward {
			fmt.Fprintf(&b, " >%s> %s", st.Attr, st.To(s))
		} else {
			fmt.Fprintf(&b, " <%s< %s", st.Attr, st.To(s))
		}
	}
	return b.String()
}

// EnumerateOptions controls join-path enumeration.
type EnumerateOptions struct {
	// MaxLen caps the number of steps per path. Paths of every length from 1
	// to MaxLen are produced.
	MaxLen int
	// ExcludeFirst lists foreign-key edges that must not be the first step.
	// DISTINCT excludes the edge through the reference attribute itself
	// (e.g. Publish.author when disambiguating author references): walking
	// through the shared name links all same-named references trivially.
	ExcludeFirst []Step
	// NoImmediateReversal prunes paths that traverse an edge and immediately
	// traverse it back at the schema level. Tuple-level backtracking is
	// always forbidden during propagation regardless of this flag; the flag
	// additionally removes the coauthor-style "bounce" paths. DISTINCT keeps
	// them (they are the most informative paths), so it defaults to false.
	NoImmediateReversal bool
}

// EnumerateJoinPaths returns every join path from relation start under the
// options, in deterministic (schema declaration, then step) order.
func EnumerateJoinPaths(s *Schema, start string, opts EnumerateOptions) []JoinPath {
	if s.Relation(start) == nil || opts.MaxLen <= 0 {
		return nil
	}
	edges := allSteps(s)
	var out []JoinPath
	var rec func(cur string, steps []Step)
	rec = func(cur string, steps []Step) {
		if len(steps) >= opts.MaxLen {
			return
		}
		for _, st := range edges {
			if st.From(s) != cur {
				continue
			}
			if len(steps) == 0 && stepIn(opts.ExcludeFirst, st) {
				continue
			}
			if opts.NoImmediateReversal && len(steps) > 0 && steps[len(steps)-1] == st.Inverse() {
				continue
			}
			next := append(append([]Step(nil), steps...), st)
			out = append(out, JoinPath{Start: start, Steps: next})
			rec(st.To(s), next)
		}
	}
	rec(start, nil)
	return out
}

// allSteps lists every traversable edge of the schema, both directions, in
// deterministic order.
func allSteps(s *Schema) []Step {
	var steps []Step
	for _, rs := range s.Relations() {
		for _, fi := range rs.ForeignKeys() {
			steps = append(steps,
				Step{Rel: rs.Name, Attr: rs.Attrs[fi].Name, Forward: true},
				Step{Rel: rs.Name, Attr: rs.Attrs[fi].Name, Forward: false},
			)
		}
	}
	return steps
}

func stepIn(set []Step, st Step) bool {
	for _, x := range set {
		if x == st {
			return true
		}
	}
	return false
}
