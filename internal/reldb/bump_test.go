package reldb

import "testing"

// TestBumpInvalidatesAndBumps pins Bump's contract: a synthetic mutation
// drops compiled hop plans BEFORE publishing the new version (the same
// ordering Insert upholds), and bumps the version by exactly one — the knob
// overload drills use to exercise stale-while-revalidate.
func TestBumpInvalidatesAndBumps(t *testing.T) {
	db := miniDBLP(t)
	step := Step{Rel: "Publish", Attr: "author", Forward: true}
	if db.HopFor("Publish", step) == nil {
		t.Fatal("warm plan missing")
	}
	v0 := db.Version()

	hookRan := false
	db.testHookBeforeVersionBump = func() {
		hookRan = true
		db.planMu.Lock()
		stale := len(db.hopPlans)
		db.planMu.Unlock()
		if stale != 0 {
			t.Errorf("pre-bump window still holds %d plan entries", stale)
		}
		if got := db.Version(); got != v0 {
			t.Errorf("version already %d inside the hook, want %d", got, v0)
		}
	}
	defer func() { db.testHookBeforeVersionBump = nil }()

	if got := db.Bump(); got != v0+1 {
		t.Fatalf("Bump returned %d, want %d", got, v0+1)
	}
	if !hookRan {
		t.Fatal("testHookBeforeVersionBump never ran")
	}
	if got := db.Version(); got != v0+1 {
		t.Fatalf("version after Bump = %d, want %d", got, v0+1)
	}
	// No data moved: plans recompile over the same rows.
	h := db.HopFor("Publish", step)
	if h == nil || h.NumFrom != db.Relation("Publish").Size() {
		t.Fatalf("post-Bump plan: %+v", h)
	}
}
