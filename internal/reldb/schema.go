// Package reldb implements a small in-memory relational database engine:
// schemas with primary and foreign keys, hash-indexed relations, join-path
// enumeration over the schema graph, and the attribute-value expansion of
// DISTINCT (Yin, Han, Yu; ICDE 2007, Section 2.1), in which every distinct
// value of a non-key attribute becomes a tuple of a virtual relation so that
// neighbor tuples and attribute values are handled by one mechanism.
//
// The engine is deliberately minimal: it supports exactly the operations the
// DISTINCT methodology needs — keyed lookups, foreign-key traversal in both
// directions, and join paths — rather than a general query language.
package reldb

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a relation.
//
// At most one attribute per relation may be the primary key (Key == true).
// An attribute with FK != "" is a foreign key referencing the primary key of
// the named relation. Key and FK are mutually exclusive.
type Attribute struct {
	Name string
	Key  bool   // primary key of the owning relation
	FK   string // name of the referenced relation, "" if not a foreign key
}

// RelationSchema describes one relation: its name and ordered attributes.
type RelationSchema struct {
	Name  string
	Attrs []Attribute

	attrIndex map[string]int
}

// NewRelationSchema builds a relation schema and validates attribute names.
func NewRelationSchema(name string, attrs ...Attribute) (*RelationSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("reldb: relation name must not be empty")
	}
	rs := &RelationSchema{Name: name, Attrs: attrs, attrIndex: make(map[string]int, len(attrs))}
	keys := 0
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("reldb: relation %q: attribute %d has empty name", name, i)
		}
		if _, dup := rs.attrIndex[a.Name]; dup {
			return nil, fmt.Errorf("reldb: relation %q: duplicate attribute %q", name, a.Name)
		}
		if a.Key && a.FK != "" {
			return nil, fmt.Errorf("reldb: relation %q: attribute %q is both key and foreign key", name, a.Name)
		}
		if a.Key {
			keys++
		}
		rs.attrIndex[a.Name] = i
	}
	if keys > 1 {
		return nil, fmt.Errorf("reldb: relation %q: more than one primary key attribute", name)
	}
	return rs, nil
}

// MustRelationSchema is NewRelationSchema that panics on error; it is meant
// for statically known schemas such as the DBLP schema.
func MustRelationSchema(name string, attrs ...Attribute) *RelationSchema {
	rs, err := NewRelationSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return rs
}

// AttrIndex returns the position of the named attribute, or -1.
func (rs *RelationSchema) AttrIndex(name string) int {
	if i, ok := rs.attrIndex[name]; ok {
		return i
	}
	return -1
}

// KeyIndex returns the position of the primary key attribute, or -1 if the
// relation has no primary key.
func (rs *RelationSchema) KeyIndex() int {
	for i, a := range rs.Attrs {
		if a.Key {
			return i
		}
	}
	return -1
}

// ForeignKeys returns the indexes of all foreign-key attributes.
func (rs *RelationSchema) ForeignKeys() []int {
	var fks []int
	for i, a := range rs.Attrs {
		if a.FK != "" {
			fks = append(fks, i)
		}
	}
	return fks
}

// Schema is a set of relation schemas with resolved foreign keys.
type Schema struct {
	relations []*RelationSchema
	byName    map[string]*RelationSchema
}

// NewSchema validates that every foreign key references an existing relation
// that has a primary key.
func NewSchema(relations ...*RelationSchema) (*Schema, error) {
	s := &Schema{byName: make(map[string]*RelationSchema, len(relations))}
	for _, r := range relations {
		if _, dup := s.byName[r.Name]; dup {
			return nil, fmt.Errorf("reldb: duplicate relation %q", r.Name)
		}
		s.byName[r.Name] = r
		s.relations = append(s.relations, r)
	}
	for _, r := range relations {
		for _, a := range r.Attrs {
			if a.FK == "" {
				continue
			}
			target, ok := s.byName[a.FK]
			if !ok {
				return nil, fmt.Errorf("reldb: relation %q: attribute %q references unknown relation %q", r.Name, a.Name, a.FK)
			}
			if target.KeyIndex() < 0 {
				return nil, fmt.Errorf("reldb: relation %q: attribute %q references relation %q, which has no primary key", r.Name, a.Name, a.FK)
			}
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(relations ...*RelationSchema) *Schema {
	s, err := NewSchema(relations...)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the named relation schema, or nil.
func (s *Schema) Relation(name string) *RelationSchema { return s.byName[name] }

// Relations returns the relation schemas in declaration order.
func (s *Schema) Relations() []*RelationSchema { return s.relations }

// String renders the schema in a compact one-line-per-relation form.
func (s *Schema) String() string {
	var b strings.Builder
	for _, r := range s.relations {
		b.WriteString(r.Name)
		b.WriteByte('(')
		for i, a := range r.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name)
			if a.Key {
				b.WriteString(" KEY")
			}
			if a.FK != "" {
				b.WriteString(" -> " + a.FK)
			}
		}
		b.WriteString(")\n")
	}
	return b.String()
}
