// Regression tests for the Insert ordering contract behind every
// version-keyed cache (the serve result cache, core's matrix-reuse cache):
// plans are invalidated BEFORE the version bump, so any reader that observes
// the new version and then probes the plan cache can only get plans compiled
// from post-insert data. The window is only observable between two
// statements inside Insert, so the test uses the white-box
// testHookBeforeVersionBump seam (the TestingKnobs pattern) to stand exactly
// inside it.
package reldb

import (
	"fmt"
	"testing"
)

// TestInsertInvalidatesPlansBeforeVersionBump stands inside Insert, after
// the data write and whatever invalidation Insert has done, but before the
// version bump, and asserts the two halves of the contract:
//
//  1. the plan cache is already empty — with the pre-fix ordering (bump
//     first, invalidate second) the stale compiled hop would still be
//     cached here while the version is about to be (or already was)
//     published, and a version-keyed cache probing "at the new version"
//     could pull it;
//  2. a hop compiled at this point already reflects the inserted row, so
//     even a reader racing into the window only ever caches fresh data
//     under the old version — which the next probe at the new version
//     purges (versions are monotonic).
func TestInsertInvalidatesPlansBeforeVersionBump(t *testing.T) {
	db := miniDBLP(t)
	step := Step{Rel: "Publish", Attr: "author", Forward: true} // Publish -> Authors

	// Warm the plan cache so there is something to invalidate.
	warm := db.HopFor("Publish", step)
	if warm == nil || warm.NumFrom != db.Relation("Publish").Size() {
		t.Fatalf("warm plan: %+v", warm)
	}
	v0 := db.Version()

	hookRan := false
	db.testHookBeforeVersionBump = func() {
		hookRan = true
		// (1) Invalidation must already have happened at this point.
		db.planMu.Lock()
		stale := len(db.hopPlans)
		db.planMu.Unlock()
		if stale != 0 {
			t.Errorf("inside the pre-bump window the plan cache still holds %d entries; "+
				"a reader observing the new version could pull a stale plan", stale)
		}
		// The version must not have been published yet.
		if got := db.Version(); got != v0 {
			t.Errorf("version already bumped to %d inside the hook (want still %d)", got, v0)
		}
		// (2) Recompiling here sees the inserted row: the data write
		// happens-before the invalidation, so the window can only ever hand
		// out fresh plans under the old version — never the other way round.
		h := db.HopFor("Publish", step)
		if h.NumFrom != db.Relation("Publish").Size() {
			t.Errorf("hop compiled inside the window covers %d rows, want %d (post-insert)",
				h.NumFrom, db.Relation("Publish").Size())
		}
	}
	defer func() { db.testHookBeforeVersionBump = nil }()

	db.MustInsert("Publish", "haixun-wang", "p1")
	if !hookRan {
		t.Fatal("testHookBeforeVersionBump never ran")
	}
	if got := db.Version(); got != v0+1 {
		t.Fatalf("version after insert = %d, want %d", got, v0+1)
	}
	// After Insert returns, a reader at the new version recompiles fresh.
	h := db.HopFor("Publish", step)
	if h.NumFrom != db.Relation("Publish").Size() {
		t.Fatalf("post-insert hop covers %d rows, want %d", h.NumFrom, db.Relation("Publish").Size())
	}
}

// TestVersionMonotonicPerInsert pins the property stale-entry purging relies
// on: every Insert bumps the version by exactly one, so an entry keyed at an
// older version can never be produced again.
func TestVersionMonotonicPerInsert(t *testing.T) {
	db := NewDatabase(dblpSchema(t))
	if db.Version() != 0 {
		t.Fatalf("fresh database version = %d, want 0", db.Version())
	}
	for i := 1; i <= 5; i++ {
		db.MustInsert("Authors", fmt.Sprintf("author-%d", i))
		if got := db.Version(); got != int64(i) {
			t.Fatalf("after %d inserts version = %d", i, got)
		}
	}
}
