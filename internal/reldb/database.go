package reldb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Value is an attribute value. All values are stored as strings; numeric
// attributes (e.g. publication years) are kept in their textual form, which
// is sufficient because DISTINCT only ever compares values for equality.
type Value = string

// TupleID identifies a tuple globally within one Database.
type TupleID int32

// InvalidTuple is returned by lookups that find nothing.
const InvalidTuple TupleID = -1

// Tuple is one row of a relation. Vals is ordered per the relation schema.
type Tuple struct {
	Rel  *RelationSchema
	Vals []Value
}

// Val returns the value of the named attribute, or "" if absent.
func (t *Tuple) Val(attr string) Value {
	if i := t.Rel.AttrIndex(attr); i >= 0 {
		return t.Vals[i]
	}
	return ""
}

// Relation stores the tuples of one relation plus its hash indexes.
type Relation struct {
	Schema *RelationSchema

	tupleIDs []TupleID
	byKey    map[Value]TupleID           // primary-key value -> tuple
	fkIndex  map[int]map[Value][]TupleID // attr index -> value -> referencing tuples
}

// Size returns the number of tuples in the relation.
func (r *Relation) Size() int { return len(r.tupleIDs) }

// TupleIDs returns the relation's tuples in insertion order. The returned
// slice is owned by the relation and must not be modified.
func (r *Relation) TupleIDs() []TupleID { return r.tupleIDs }

// Database is an in-memory relational database instance.
type Database struct {
	Schema *Schema

	tuples    []Tuple
	relations map[string]*Relation

	// Compiled join-path hop plans (see csr.go): lazily built by HopFor,
	// shared read-only by all readers, invalidated by Insert.
	planMu      sync.Mutex
	hopPlans    map[hopKey]*hopEntry
	hopCompiles atomic.Int64

	// version counts mutations; derived caches (compiled plans, similarity
	// matrices) key on it so stale entries can never be observed.
	version atomic.Int64

	// testHookBeforeVersionBump, when non-nil, runs inside Insert after the
	// data write and plan invalidation but before the version bump — the
	// only moment the version/invalidation ordering contract is observable.
	// Set only by white-box tests (see version_order_test.go).
	testHookBeforeVersionBump func()
}

// Version returns the database's mutation counter: zero for a fresh
// database, incremented by every Insert. Caches derived from the contents
// (compiled hop plans, per-block similarity matrices) store the version
// they were computed at and treat a mismatch as an invalidation.
func (db *Database) Version() int64 { return db.version.Load() }

// NewDatabase creates an empty database over the given schema.
func NewDatabase(schema *Schema) *Database {
	db := &Database{Schema: schema, relations: make(map[string]*Relation)}
	for _, rs := range schema.Relations() {
		rel := &Relation{Schema: rs, byKey: make(map[Value]TupleID)}
		rel.fkIndex = make(map[int]map[Value][]TupleID)
		for _, fi := range rs.ForeignKeys() {
			rel.fkIndex[fi] = make(map[Value][]TupleID)
		}
		db.relations[rs.Name] = rel
	}
	return db
}

// Relation returns the named relation instance, or nil.
func (db *Database) Relation(name string) *Relation { return db.relations[name] }

// NumTuples returns the total number of tuples across all relations.
func (db *Database) NumTuples() int { return len(db.tuples) }

// Tuple returns the tuple with the given ID. The returned pointer stays
// valid until the next Insert (tuples are stored in a growing slice).
func (db *Database) Tuple(id TupleID) *Tuple { return &db.tuples[id] }

// Insert adds a tuple to the named relation and maintains all indexes.
// Values must be ordered per the relation schema. Inserting a duplicate
// primary-key value is an error.
func (db *Database) Insert(relation string, vals ...Value) (TupleID, error) {
	rel := db.relations[relation]
	if rel == nil {
		return InvalidTuple, fmt.Errorf("reldb: unknown relation %q", relation)
	}
	rs := rel.Schema
	if len(vals) != len(rs.Attrs) {
		return InvalidTuple, fmt.Errorf("reldb: relation %q expects %d values, got %d", relation, len(rs.Attrs), len(vals))
	}
	if ki := rs.KeyIndex(); ki >= 0 {
		if _, dup := rel.byKey[vals[ki]]; dup {
			return InvalidTuple, fmt.Errorf("reldb: relation %q: duplicate key %q", relation, vals[ki])
		}
	}
	id := TupleID(len(db.tuples))
	copied := make([]Value, len(vals))
	copy(copied, vals)
	db.tuples = append(db.tuples, Tuple{Rel: rs, Vals: copied})
	rel.tupleIDs = append(rel.tupleIDs, id)
	if ki := rs.KeyIndex(); ki >= 0 {
		rel.byKey[vals[ki]] = id
	}
	for fi, idx := range rel.fkIndex {
		idx[vals[fi]] = append(idx[vals[fi]], id)
	}
	// Ordering matters: plans must be invalidated BEFORE the version bump.
	// Version-keyed caches (the serve result cache, the matrix-reuse cache)
	// read the version first and probe second, so a reader that observes the
	// new version took its planMu-synchronized probe after this invalidation
	// and can only see plans compiled from post-insert data. With the bump
	// first there is a window where a reader observes the new version yet
	// still pulls a stale compiled plan — and then caches results computed
	// against the old contents under the new version, serving them as fresh
	// until the next mutation.
	db.invalidatePlans()
	if db.testHookBeforeVersionBump != nil {
		db.testHookBeforeVersionBump()
	}
	db.version.Add(1)
	return id, nil
}

// Bump records a synthetic mutation: compiled hop plans are invalidated and
// the version is bumped without any data change. Overload drills use it to
// exercise version-keyed caches (stale-while-revalidate, matrix reuse) at a
// controlled cadence without crafting schema-correct tuples. The ordering
// mirrors Insert — invalidate BEFORE the bump — so the version/invalidation
// contract version-keyed readers rely on holds here too. Returns the new
// version.
func (db *Database) Bump() int64 {
	db.invalidatePlans()
	if db.testHookBeforeVersionBump != nil {
		db.testHookBeforeVersionBump()
	}
	return db.version.Add(1)
}

// MustInsert is Insert that panics on error; for use by generators and tests
// whose schemas are statically correct.
func (db *Database) MustInsert(relation string, vals ...Value) TupleID {
	id, err := db.Insert(relation, vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// LookupKey returns the tuple of the named relation whose primary key equals
// key, or InvalidTuple.
func (db *Database) LookupKey(relation string, key Value) TupleID {
	rel := db.relations[relation]
	if rel == nil {
		return InvalidTuple
	}
	if id, ok := rel.byKey[key]; ok {
		return id
	}
	return InvalidTuple
}

// Referencing returns the tuples of relation `from` whose foreign-key
// attribute `attr` holds the given value. The returned slice is owned by the
// index and must not be modified.
func (db *Database) Referencing(from, attr string, value Value) []TupleID {
	rel := db.relations[from]
	if rel == nil {
		return nil
	}
	ai := rel.Schema.AttrIndex(attr)
	if ai < 0 {
		return nil
	}
	idx := rel.fkIndex[ai]
	if idx == nil {
		return nil
	}
	return idx[value]
}

// Joinable returns the tuples joinable with tuple id across one join-path
// step. For a forward step the result is the single referenced tuple; for a
// reverse step it is every tuple referencing id's primary key.
//
// exclude, if valid, is removed from the result; propagation uses it to
// forbid an immediate step back to the tuple it just came from.
// The result is appended to buf, which may be nil.
func (db *Database) Joinable(id TupleID, step Step, exclude TupleID, buf []TupleID) []TupleID {
	t := &db.tuples[id]
	if step.Forward {
		// t must belong to step.Rel; follow its FK to the target relation.
		ai := t.Rel.AttrIndex(step.Attr)
		if ai < 0 || t.Rel.Name != step.Rel {
			return buf
		}
		target := db.LookupKey(t.Rel.Attrs[ai].FK, t.Vals[ai])
		if target != InvalidTuple && target != exclude {
			buf = append(buf, target)
		}
		return buf
	}
	// Reverse: t is in the referenced relation; find referencing tuples.
	ki := t.Rel.KeyIndex()
	if ki < 0 || step.target(db.Schema) != t.Rel.Name {
		return buf
	}
	for _, rid := range db.Referencing(step.Rel, step.Attr, t.Vals[ki]) {
		if rid != exclude {
			buf = append(buf, rid)
		}
	}
	return buf
}

// JoinFanout returns the number of tuples joinable with id across step, with
// no exclusion. It is the denominator of backward probability propagation.
func (db *Database) JoinFanout(id TupleID, step Step) int {
	t := &db.tuples[id]
	if step.Forward {
		ai := t.Rel.AttrIndex(step.Attr)
		if ai < 0 || t.Rel.Name != step.Rel {
			return 0
		}
		if db.LookupKey(t.Rel.Attrs[ai].FK, t.Vals[ai]) == InvalidTuple {
			return 0
		}
		return 1
	}
	ki := t.Rel.KeyIndex()
	if ki < 0 || step.target(db.Schema) != t.Rel.Name {
		return 0
	}
	return len(db.Referencing(step.Rel, step.Attr, t.Vals[ki]))
}

// Stats summarises the database contents, relation by relation.
func (db *Database) Stats() string {
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s: %d tuples\n", n, db.relations[n].Size())
	}
	return s
}
