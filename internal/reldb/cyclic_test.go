package reldb

import (
	"testing"
)

// advisorSchema has a self-referential foreign key (an author's advisor is
// an author), the kind of cycle real schemas contain.
func advisorSchema(t *testing.T) *Schema {
	t.Helper()
	authors := MustRelationSchema("Authors",
		Attribute{Name: "author", Key: true},
		Attribute{Name: "advisor", FK: "Authors"},
	)
	publish := MustRelationSchema("Publish",
		Attribute{Name: "author", FK: "Authors"},
		Attribute{Name: "paper", FK: "Papers"},
	)
	papers := MustRelationSchema("Papers", Attribute{Name: "paper", Key: true})
	return MustSchema(authors, publish, papers)
}

func TestEnumerateTerminatesOnCyclicSchema(t *testing.T) {
	s := advisorSchema(t)
	paths := EnumerateJoinPaths(s, "Publish", EnumerateOptions{MaxLen: 5})
	if len(paths) == 0 {
		t.Fatal("no paths on cyclic schema")
	}
	for _, p := range paths {
		if err := p.Validate(s); err != nil {
			t.Fatalf("invalid path %s: %v", p, err)
		}
		if p.Len() > 5 {
			t.Fatalf("path %s exceeds cap", p)
		}
	}
	// The advisor chain path must exist: Publish > author > Authors
	// > advisor > Authors.
	var found bool
	for _, p := range paths {
		if p.Len() == 3 &&
			p.Steps[1] == (Step{Rel: "Authors", Attr: "advisor", Forward: true}) &&
			p.Steps[2] == (Step{Rel: "Authors", Attr: "advisor", Forward: true}) {
			found = true
		}
	}
	if !found {
		t.Error("advisor-of-advisor path missing")
	}
}

func TestSelfFKTraversal(t *testing.T) {
	s := advisorSchema(t)
	db := NewDatabase(s)
	// A tiny advisor chain: carol advises bob advises alice; carol advises
	// herself (root convention).
	db.MustInsert("Authors", "carol", "carol")
	db.MustInsert("Authors", "bob", "carol")
	db.MustInsert("Authors", "alice", "bob")

	alice := db.LookupKey("Authors", "alice")
	fwd := Step{Rel: "Authors", Attr: "advisor", Forward: true}
	got := db.Joinable(alice, fwd, InvalidTuple, nil)
	if len(got) != 1 || db.Tuple(got[0]).Val("author") != "bob" {
		t.Fatalf("advisor of alice = %v", got)
	}
	// Reverse: who does carol advise? bob, and carol herself.
	carol := db.LookupKey("Authors", "carol")
	rev := fwd.Inverse()
	got = db.Joinable(carol, rev, InvalidTuple, nil)
	if len(got) != 2 {
		t.Fatalf("carol advises %d tuples, want 2 (bob + self row)", len(got))
	}
	// Excluding carol's own row leaves bob.
	got = db.Joinable(carol, rev, carol, nil)
	if len(got) != 1 || db.Tuple(got[0]).Val("author") != "bob" {
		t.Fatalf("exclusion failed: %v", got)
	}
	if db.JoinFanout(carol, rev) != 2 {
		t.Errorf("fanout = %d", db.JoinFanout(carol, rev))
	}
}

// Expansion of a cyclic schema keeps FK integrity everywhere.
func TestExpandCyclicSchemaIntegrity(t *testing.T) {
	s := advisorSchema(t)
	db := NewDatabase(s)
	db.MustInsert("Authors", "root", "root")
	db.MustInsert("Authors", "kid", "root")
	db.MustInsert("Papers", "p1")
	db.MustInsert("Publish", "kid", "p1")

	ex, idMap, err := ExpandAttributes(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(idMap) != db.NumTuples() {
		t.Fatalf("idMap %d of %d tuples", len(idMap), db.NumTuples())
	}
	for _, rs := range ex.Schema.Relations() {
		rel := ex.Relation(rs.Name)
		for _, fi := range rs.ForeignKeys() {
			for _, id := range rel.TupleIDs() {
				v := ex.Tuple(id).Vals[fi]
				if ex.LookupKey(rs.Attrs[fi].FK, v) == InvalidTuple {
					t.Fatalf("dangling FK %s.%s = %q after expansion", rs.Name, rs.Attrs[fi].Name, v)
				}
			}
		}
	}
}
