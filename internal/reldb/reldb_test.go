package reldb

import (
	"strings"
	"testing"
)

// dblpSchema returns the schema of Figure 2 of the paper.
func dblpSchema(t testing.TB) *Schema {
	t.Helper()
	authors := MustRelationSchema("Authors", Attribute{Name: "author", Key: true})
	publish := MustRelationSchema("Publish",
		Attribute{Name: "author", FK: "Authors"},
		Attribute{Name: "paper-key", FK: "Publications"},
	)
	pubs := MustRelationSchema("Publications",
		Attribute{Name: "paper-key", Key: true},
		Attribute{Name: "title"},
		Attribute{Name: "proc-key", FK: "Proceedings"},
	)
	procs := MustRelationSchema("Proceedings",
		Attribute{Name: "proc-key", Key: true},
		Attribute{Name: "conference", FK: "Conferences"},
		Attribute{Name: "year"},
		Attribute{Name: "location"},
	)
	confs := MustRelationSchema("Conferences",
		Attribute{Name: "conference", Key: true},
		Attribute{Name: "publisher"},
	)
	return MustSchema(authors, publish, pubs, procs, confs)
}

// miniDBLP builds a small database: two papers at VLDB 1997 and SIGMOD 2002,
// with authors wei-wang, jiong-yang, haixun-wang.
func miniDBLP(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase(dblpSchema(t))
	for _, a := range []string{"wei-wang", "jiong-yang", "haixun-wang"} {
		db.MustInsert("Authors", a)
	}
	db.MustInsert("Conferences", "VLDB", "VLDB-End.")
	db.MustInsert("Conferences", "SIGMOD", "ACM")
	db.MustInsert("Proceedings", "vldb97", "VLDB", "1997", "Athens")
	db.MustInsert("Proceedings", "sigmod02", "SIGMOD", "2002", "Madison")
	db.MustInsert("Publications", "p1", "STING", "vldb97")
	db.MustInsert("Publications", "p2", "Clustering by pattern similarity", "sigmod02")
	db.MustInsert("Publish", "wei-wang", "p1")
	db.MustInsert("Publish", "jiong-yang", "p1")
	db.MustInsert("Publish", "haixun-wang", "p2")
	db.MustInsert("Publish", "wei-wang", "p2")
	db.MustInsert("Publish", "jiong-yang", "p2")
	return db
}

func TestRelationSchemaValidation(t *testing.T) {
	if _, err := NewRelationSchema(""); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, err := NewRelationSchema("R", Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewRelationSchema("R", Attribute{Name: "a"}, Attribute{Name: "a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewRelationSchema("R", Attribute{Name: "a", Key: true, FK: "S"}); err == nil {
		t.Error("key+FK attribute accepted")
	}
	if _, err := NewRelationSchema("R", Attribute{Name: "a", Key: true}, Attribute{Name: "b", Key: true}); err == nil {
		t.Error("two primary keys accepted")
	}
}

func TestSchemaValidation(t *testing.T) {
	r := MustRelationSchema("R", Attribute{Name: "x", FK: "S"})
	if _, err := NewSchema(r); err == nil {
		t.Error("dangling FK accepted")
	}
	noKey := MustRelationSchema("S", Attribute{Name: "v"})
	if _, err := NewSchema(r, noKey); err == nil {
		t.Error("FK to keyless relation accepted")
	}
	dup := MustRelationSchema("R", Attribute{Name: "y", Key: true})
	if _, err := NewSchema(dup, dup); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := dblpSchema(t)
	str := s.String()
	for _, want := range []string{"Authors(author KEY)", "paper-key -> Publications", "Conferences(conference KEY, publisher)"} {
		if !strings.Contains(str, want) {
			t.Errorf("schema string missing %q:\n%s", want, str)
		}
	}
}

func TestInsertAndLookup(t *testing.T) {
	db := miniDBLP(t)
	if got := db.NumTuples(); got != 14 {
		t.Errorf("NumTuples = %d, want 14", got)
	}
	id := db.LookupKey("Publications", "p1")
	if id == InvalidTuple {
		t.Fatal("p1 not found")
	}
	if got := db.Tuple(id).Val("title"); got != "STING" {
		t.Errorf("p1 title = %q", got)
	}
	if db.LookupKey("Publications", "nope") != InvalidTuple {
		t.Error("lookup of missing key succeeded")
	}
	if db.LookupKey("NoSuchRel", "x") != InvalidTuple {
		t.Error("lookup in missing relation succeeded")
	}
	if got := db.Tuple(id).Val("no-such-attr"); got != "" {
		t.Errorf("missing attribute value = %q, want empty", got)
	}
}

func TestInsertErrors(t *testing.T) {
	db := miniDBLP(t)
	if _, err := db.Insert("NoSuchRel", "x"); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	if _, err := db.Insert("Authors", "a", "b"); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := db.Insert("Authors", "wei-wang"); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestReferencing(t *testing.T) {
	db := miniDBLP(t)
	refs := db.Referencing("Publish", "paper-key", "p2")
	if len(refs) != 3 {
		t.Fatalf("p2 has %d authorship tuples, want 3", len(refs))
	}
	for _, id := range refs {
		if got := db.Tuple(id).Val("paper-key"); got != "p2" {
			t.Errorf("referencing tuple has paper-key %q", got)
		}
	}
	if db.Referencing("Publish", "no-attr", "p2") != nil {
		t.Error("referencing via unknown attribute returned results")
	}
	if db.Referencing("NoSuchRel", "x", "p2") != nil {
		t.Error("referencing via unknown relation returned results")
	}
}

func TestJoinableForwardReverse(t *testing.T) {
	db := miniDBLP(t)
	pub := db.Referencing("Publish", "author", "wei-wang")[0] // wei-wang on p1
	fwd := Step{Rel: "Publish", Attr: "paper-key", Forward: true}
	got := db.Joinable(pub, fwd, InvalidTuple, nil)
	if len(got) != 1 || db.Tuple(got[0]).Val("paper-key") != "p1" {
		t.Fatalf("forward join gave %v", got)
	}
	paper := got[0]
	rev := fwd.Inverse()
	back := db.Joinable(paper, rev, InvalidTuple, nil)
	if len(back) != 2 {
		t.Fatalf("p1 has %d authorships, want 2", len(back))
	}
	// Excluding the origin removes it.
	back = db.Joinable(paper, rev, pub, nil)
	if len(back) != 1 || back[0] == pub {
		t.Fatalf("exclusion failed: %v", back)
	}
	if got := db.JoinFanout(paper, rev); got != 2 {
		t.Errorf("JoinFanout reverse = %d, want 2", got)
	}
	if got := db.JoinFanout(pub, fwd); got != 1 {
		t.Errorf("JoinFanout forward = %d, want 1", got)
	}
}

func TestJoinableWrongRelation(t *testing.T) {
	db := miniDBLP(t)
	author := db.LookupKey("Authors", "wei-wang")
	// A step whose From is Publish applied to an Authors tuple must yield nothing.
	st := Step{Rel: "Publish", Attr: "paper-key", Forward: true}
	if got := db.Joinable(author, st, InvalidTuple, nil); len(got) != 0 {
		t.Errorf("mismatched forward step returned %v", got)
	}
	// A reverse step whose target is Publications applied to an Authors tuple.
	st = Step{Rel: "Publish", Attr: "paper-key", Forward: false}
	if got := db.Joinable(author, st, InvalidTuple, nil); len(got) != 0 {
		t.Errorf("mismatched reverse step returned %v", got)
	}
	if got := db.JoinFanout(author, st); got != 0 {
		t.Errorf("mismatched reverse fanout = %d", got)
	}
}

func TestJoinPathValidateAndEnd(t *testing.T) {
	s := dblpSchema(t)
	coauthors := JoinPath{Start: "Publish", Steps: []Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publish", Attr: "paper-key", Forward: false},
		{Rel: "Publish", Attr: "author", Forward: true},
	}}
	if err := coauthors.Validate(s); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if got := coauthors.End(s); got != "Authors" {
		t.Errorf("End = %q, want Authors", got)
	}
	if got := coauthors.Len(); got != 3 {
		t.Errorf("Len = %d", got)
	}

	bad := JoinPath{Start: "Publish", Steps: []Step{{Rel: "Publish", Attr: "author", Forward: false}}}
	if err := bad.Validate(s); err == nil {
		t.Error("path starting with mismatched step accepted")
	}
	if err := (JoinPath{Start: "Nope"}).Validate(s); err == nil {
		t.Error("unknown start relation accepted")
	}
	unknown := JoinPath{Start: "Publish", Steps: []Step{{Rel: "Publish", Attr: "title", Forward: true}}}
	if err := unknown.Validate(s); err == nil {
		t.Error("non-FK edge accepted")
	}
}

func TestJoinPathReverse(t *testing.T) {
	s := dblpSchema(t)
	p := JoinPath{Start: "Publish", Steps: []Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publications", Attr: "proc-key", Forward: true},
	}}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	r := p.Reverse(s)
	if r.Start != "Proceedings" {
		t.Errorf("reverse starts at %q", r.Start)
	}
	if err := r.Validate(s); err != nil {
		t.Errorf("reversed path invalid: %v", err)
	}
	if got := r.End(s); got != "Publish" {
		t.Errorf("reverse ends at %q", got)
	}
	// Reversing twice is the identity.
	rr := r.Reverse(s)
	if rr.String() != p.String() {
		t.Errorf("double reverse = %s, want %s", rr, p)
	}
}

func TestJoinPathStrings(t *testing.T) {
	s := dblpSchema(t)
	p := JoinPath{Start: "Publish", Steps: []Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publish", Attr: "paper-key", Forward: false},
	}}
	if got := p.String(); !strings.HasPrefix(got, "Publish>paper-key>") {
		t.Errorf("String = %q", got)
	}
	desc := p.Describe(s)
	if !strings.Contains(desc, "Publications") || !strings.Contains(desc, "<paper-key< Publish") {
		t.Errorf("Describe = %q", desc)
	}
}

func TestEnumerateJoinPaths(t *testing.T) {
	s := dblpSchema(t)
	refEdge := Step{Rel: "Publish", Attr: "author", Forward: true}
	paths := EnumerateJoinPaths(s, "Publish", EnumerateOptions{MaxLen: 3, ExcludeFirst: []Step{refEdge}})
	if len(paths) == 0 {
		t.Fatal("no paths enumerated")
	}
	byStr := make(map[string]JoinPath)
	for _, p := range paths {
		if err := p.Validate(s); err != nil {
			t.Fatalf("enumerated invalid path %s: %v", p, err)
		}
		if p.Len() > 3 {
			t.Errorf("path %s exceeds MaxLen", p)
		}
		if p.Steps[0] == refEdge {
			t.Errorf("path %s starts with the excluded reference edge", p)
		}
		if _, dup := byStr[p.String()]; dup {
			t.Errorf("duplicate path %s", p)
		}
		byStr[p.String()] = p
	}
	// The coauthor path must be present: Publish > paper > Publish(back) > author.
	want := JoinPath{Start: "Publish", Steps: []Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publish", Attr: "paper-key", Forward: false},
		{Rel: "Publish", Attr: "author", Forward: true},
	}}
	if _, ok := byStr[want.String()]; !ok {
		t.Errorf("coauthor path missing from enumeration")
	}
}

func TestEnumerateNoImmediateReversal(t *testing.T) {
	s := dblpSchema(t)
	paths := EnumerateJoinPaths(s, "Publish", EnumerateOptions{MaxLen: 2, NoImmediateReversal: true})
	for _, p := range paths {
		if p.Len() == 2 && p.Steps[1] == p.Steps[0].Inverse() {
			t.Errorf("bounce path %s not pruned", p)
		}
	}
	if EnumerateJoinPaths(s, "NoSuchRel", EnumerateOptions{MaxLen: 2}) != nil {
		t.Error("enumeration from unknown relation returned paths")
	}
	if EnumerateJoinPaths(s, "Publish", EnumerateOptions{MaxLen: 0}) != nil {
		t.Error("enumeration with MaxLen 0 returned paths")
	}
}

func TestEnumerateCounts(t *testing.T) {
	s := dblpSchema(t)
	// Length-1 paths from Publish: forward author, forward paper-key. No
	// reverse edges land... reverse steps start at referenced relations, so
	// from Publish only the two forward FK edges apply.
	paths := EnumerateJoinPaths(s, "Publish", EnumerateOptions{MaxLen: 1})
	if len(paths) != 2 {
		t.Fatalf("got %d length-1 paths from Publish, want 2: %v", len(paths), paths)
	}
}

func TestExpandAttributes(t *testing.T) {
	db := miniDBLP(t)
	ex, idMap, err := ExpandAttributes(db, "Publications.title")
	if err != nil {
		t.Fatal(err)
	}
	// Every original tuple is mapped, onto a tuple with identical values.
	if len(idMap) != db.NumTuples() {
		t.Fatalf("idMap covers %d tuples, want %d", len(idMap), db.NumTuples())
	}
	for old, nu := range idMap {
		ot, nt := db.Tuple(old), ex.Tuple(nu)
		if ot.Rel.Name != nt.Rel.Name || len(ot.Vals) != len(nt.Vals) {
			t.Fatalf("idMap %d->%d maps across relations", old, nu)
		}
		for i := range ot.Vals {
			if ot.Vals[i] != nt.Vals[i] {
				t.Fatalf("idMap %d->%d changed values", old, nu)
			}
		}
	}
	// Virtual relations exist for year, location, publisher but not title.
	if ex.Relation(ValueRelationName("Proceedings", "year")) == nil {
		t.Error("year values relation missing")
	}
	if ex.Relation(ValueRelationName("Conferences", "publisher")) == nil {
		t.Error("publisher values relation missing")
	}
	if ex.Relation(ValueRelationName("Publications", "title")) != nil {
		t.Error("title was expanded despite skip")
	}
	// Distinct years 1997, 2002 -> 2 tuples.
	if got := ex.Relation(ValueRelationName("Proceedings", "year")).Size(); got != 2 {
		t.Errorf("year values = %d, want 2", got)
	}
	// The year attribute is now an FK.
	rs := ex.Schema.Relation("Proceedings")
	if a := rs.Attrs[rs.AttrIndex("year")]; a.FK != ValueRelationName("Proceedings", "year") {
		t.Errorf("year FK = %q", a.FK)
	}
	// Traversal through the virtual relation works: both proceedings in 1997.
	proc := ex.LookupKey("Proceedings", "vldb97")
	st := Step{Rel: "Proceedings", Attr: "year", Forward: true}
	vals := ex.Joinable(proc, st, InvalidTuple, nil)
	if len(vals) != 1 || ex.Tuple(vals[0]).Val("value") != "1997" {
		t.Fatalf("year join gave %v", vals)
	}
	back := ex.Joinable(vals[0], st.Inverse(), InvalidTuple, nil)
	if len(back) != 1 {
		t.Errorf("1997 referenced by %d proceedings, want 1", len(back))
	}
	// Original relations copied wholesale.
	if ex.Relation("Publish").Size() != db.Relation("Publish").Size() {
		t.Error("Publish size changed by expansion")
	}
	// Original database untouched.
	if db.Schema.Relation("Proceedings").Attrs[db.Schema.Relation("Proceedings").AttrIndex("year")].FK != "" {
		t.Error("original schema mutated")
	}
}

func TestExpandAttributesSharedValues(t *testing.T) {
	// Two proceedings in the same year must share one value tuple.
	db := NewDatabase(dblpSchema(t))
	db.MustInsert("Conferences", "VLDB", "VLDB-End.")
	db.MustInsert("Proceedings", "vldb01", "VLDB", "2001", "Rome")
	db.MustInsert("Proceedings", "vldb01b", "VLDB", "2001", "Rome")
	ex, _, err := ExpandAttributes(db)
	if err != nil {
		t.Fatal(err)
	}
	years := ex.Relation(ValueRelationName("Proceedings", "year"))
	if years.Size() != 1 {
		t.Fatalf("year values = %d, want 1", years.Size())
	}
	yid := ex.LookupKey(ValueRelationName("Proceedings", "year"), "2001")
	st := Step{Rel: "Proceedings", Attr: "year", Forward: false}
	got := ex.Joinable(yid, st, InvalidTuple, nil)
	if len(got) != 2 {
		t.Errorf("2001 links %d proceedings, want 2", len(got))
	}
}

func TestStepFromTo(t *testing.T) {
	s := dblpSchema(t)
	st := Step{Rel: "Publish", Attr: "author", Forward: true}
	if st.From(s) != "Publish" || st.To(s) != "Authors" {
		t.Errorf("forward step endpoints: %s -> %s", st.From(s), st.To(s))
	}
	inv := st.Inverse()
	if inv.From(s) != "Authors" || inv.To(s) != "Publish" {
		t.Errorf("inverse step endpoints: %s -> %s", inv.From(s), inv.To(s))
	}
	missing := Step{Rel: "Nope", Attr: "x", Forward: true}
	if missing.To(s) != "" {
		t.Error("unknown relation step resolved")
	}
	missing = Step{Rel: "Publish", Attr: "nope", Forward: true}
	if missing.To(s) != "" {
		t.Error("unknown attribute step resolved")
	}
}

func TestStats(t *testing.T) {
	db := miniDBLP(t)
	s := db.Stats()
	if !strings.Contains(s, "Publish: 5 tuples") || !strings.Contains(s, "Authors: 3 tuples") {
		t.Errorf("Stats = %q", s)
	}
}

// TestDatabaseVersion: the mutation counter starts at zero and bumps on
// every insert — it is the invalidation key for derived caches (the
// engine's matrix-reuse layer keys per-block matrices on it).
func TestDatabaseVersion(t *testing.T) {
	db := NewDatabase(dblpSchema(t))
	if got := db.Version(); got != 0 {
		t.Fatalf("fresh Version = %d, want 0", got)
	}
	db.MustInsert("Authors", "wei-wang")
	if got := db.Version(); got != 1 {
		t.Fatalf("Version after one insert = %d, want 1", got)
	}
	before := db.Version()
	db.MustInsert("Authors", "jiong-yang")
	db.MustInsert("Conferences", "VLDB", "VLDB-End.")
	if got := db.Version(); got != before+2 {
		t.Fatalf("Version after two more inserts = %d, want %d", got, before+2)
	}
	if _, err := db.Insert("Authors", "too", "many", "values"); err == nil {
		t.Fatal("arity-mismatched insert accepted")
	} else if got := db.Version(); got != before+2 {
		t.Fatalf("failed insert bumped Version to %d, want %d", got, before+2)
	}
}
