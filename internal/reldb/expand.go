package reldb

import (
	"fmt"
	"sort"
)

// ValueRelationSuffix names the virtual relations created by
// ExpandAttributes: relation R's attribute a expands into "R.a#values".
const ValueRelationSuffix = "#values"

// ValueRelationName returns the name of the virtual relation holding the
// distinct values of rel.attr after expansion.
func ValueRelationName(rel, attr string) string {
	return rel + "." + attr + ValueRelationSuffix
}

// ExpandAttributes implements Section 2.1 of the DISTINCT paper: every
// distinct value of every non-key, non-foreign-key attribute is turned into
// a tuple of a virtual single-column relation, and the original attribute
// becomes a foreign key into it. Neighbor tuples and attribute values are
// then handled by one uniform join-path mechanism (two proceedings sharing
// publisher "ACM" become linked through the shared "ACM" tuple).
//
// skip lists attributes to leave untouched, as "Relation.attr" strings;
// DISTINCT skips free-text attributes such as paper titles, whose values are
// near-unique and would only add noise. The input database is not modified;
// a new database over the widened schema is returned, together with a map
// from every original tuple ID to its ID in the new database (tuple IDs
// shift because the virtual value tuples are inserted first).
func ExpandAttributes(db *Database, skip ...string) (*Database, map[TupleID]TupleID, error) {
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}

	type expansion struct {
		rel      string
		attrIdx  int
		attrName string
	}
	var expansions []expansion
	var newRels []*RelationSchema
	for _, rs := range db.Schema.Relations() {
		attrs := make([]Attribute, len(rs.Attrs))
		copy(attrs, rs.Attrs)
		for i, a := range rs.Attrs {
			if a.Key || a.FK != "" || skipSet[rs.Name+"."+a.Name] {
				continue
			}
			vrel := ValueRelationName(rs.Name, a.Name)
			attrs[i] = Attribute{Name: a.Name, FK: vrel}
			expansions = append(expansions, expansion{rel: rs.Name, attrIdx: i, attrName: a.Name})
			vs, err := NewRelationSchema(vrel, Attribute{Name: "value", Key: true})
			if err != nil {
				return nil, nil, err
			}
			newRels = append(newRels, vs)
		}
		ns, err := NewRelationSchema(rs.Name, attrs...)
		if err != nil {
			return nil, nil, err
		}
		newRels = append(newRels, ns)
	}
	schema, err := NewSchema(newRels...)
	if err != nil {
		return nil, nil, err
	}
	out := NewDatabase(schema)

	// Collect distinct values per expanded attribute and insert value tuples
	// first (they are referenced by the rewritten originals). Sorting keeps
	// output deterministic.
	for _, ex := range expansions {
		rel := db.Relation(ex.rel)
		seen := make(map[Value]bool)
		for _, id := range rel.TupleIDs() {
			seen[db.Tuple(id).Vals[ex.attrIdx]] = true
		}
		values := make([]Value, 0, len(seen))
		for v := range seen {
			values = append(values, v)
		}
		sort.Strings(values)
		vrel := ValueRelationName(ex.rel, ex.attrName)
		for _, v := range values {
			if _, err := out.Insert(vrel, v); err != nil {
				return nil, nil, fmt.Errorf("reldb: expanding %s.%s: %w", ex.rel, ex.attrName, err)
			}
		}
	}

	// Copy every original tuple; values are unchanged (the expanded attribute
	// now interprets its value as a key into the virtual relation).
	idMap := make(map[TupleID]TupleID, db.NumTuples())
	for _, rs := range db.Schema.Relations() {
		rel := db.Relation(rs.Name)
		for _, id := range rel.TupleIDs() {
			nid, err := out.Insert(rs.Name, db.Tuple(id).Vals...)
			if err != nil {
				return nil, nil, err
			}
			idMap[id] = nid
		}
	}
	return out, idMap, nil
}
