package reldb

import (
	"sort"
	"sync"
)

// HopCSR is the compiled form of one join-path step departing from one
// relation: the step's tuple-level edges laid out in compressed sparse row
// format over dense per-relation ordinals. Ordinal i of a relation is its
// i-th tuple in insertion order, which — because TupleIDs grow globally —
// is also ascending TupleID order; converting a frontier of ordinals back
// to sorted TupleIDs is therefore a monotone map through ToIDs.
//
// For source ordinal t the out-edges are Col[RowPtr[t]:RowPtr[t+1]], each
// entry a target ordinal; within a row the targets are strictly ascending.
// Rev[v] is the in-degree of target ordinal v — exactly the reverse fanout
// JoinFanout(toTuple, step.Inverse()) that backward propagation divides by,
// for forward and reverse steps alike.
//
// A HopCSR is immutable after CompileHop returns and is shared read-only
// across all references and worker goroutines.
type HopCSR struct {
	FromRel string // relation the step departs from
	ToRel   string // relation the step arrives in
	Step    Step

	RowPtr []int32   // len NumFrom+1; edge range per source ordinal
	Col    []int32   // target ordinals, ascending within each row
	Rev    []int32   // len NumTo; in-degree per target ordinal
	ToIDs  []TupleID // target relation's tuples in ordinal order

	NumFrom, NumTo int
}

// NumEdges returns the number of tuple-level edges in the hop.
func (h *HopCSR) NumEdges() int { return len(h.Col) }

// OrdinalOf returns the position of id in the relation's insertion order,
// or -1 if the tuple does not belong to this relation. TupleIDs are handed
// out in globally increasing order, so the slice is sorted and the lookup
// is a binary search.
func (r *Relation) OrdinalOf(id TupleID) int {
	i := sort.Search(len(r.tupleIDs), func(i int) bool { return r.tupleIDs[i] >= id })
	if i < len(r.tupleIDs) && r.tupleIDs[i] == id {
		return i
	}
	return -1
}

// CompileHop builds the CSR edge index of one step departing from relation
// `from`. It is a pure function of the database contents: malformed steps
// (unknown relations or attributes, or a step that does not depart from
// `from`) compile to an edge-free hop, mirroring the empty result Joinable
// returns for them. The edges are exactly Joinable's with no exclusion;
// the propagation engine reapplies the no-backtrack rule itself.
func CompileHop(db *Database, from string, step Step) *HopCSR {
	h := &HopCSR{FromRel: from, ToRel: step.To(db.Schema), Step: step}
	src := db.Relation(from)
	if src == nil {
		h.RowPtr = []int32{0}
		return h
	}
	h.NumFrom = src.Size()
	h.RowPtr = make([]int32, h.NumFrom+1)
	dst := db.Relation(h.ToRel)
	if dst == nil || step.From(db.Schema) != from {
		return h
	}
	h.NumTo = dst.Size()
	h.ToIDs = dst.TupleIDs()

	if step.Forward {
		// Each source tuple references at most one target through its FK.
		ai := src.Schema.AttrIndex(step.Attr)
		if ai < 0 {
			return h
		}
		cols := make([]int32, 0, h.NumFrom)
		for i, id := range src.tupleIDs {
			if target := db.LookupKey(h.ToRel, db.tuples[id].Vals[ai]); target != InvalidTuple {
				cols = append(cols, int32(dst.OrdinalOf(target)))
			}
			h.RowPtr[i+1] = int32(len(cols))
		}
		h.Col = cols
	} else {
		// Reverse: every tuple of step.Rel referencing the source's key.
		// Referencing lists are in insertion order, i.e. ascending TupleID,
		// so each row's target ordinals come out ascending for free.
		ki := src.Schema.KeyIndex()
		if ki < 0 {
			return h
		}
		cols := make([]int32, 0, h.NumTo)
		for i, id := range src.tupleIDs {
			for _, rid := range db.Referencing(step.Rel, step.Attr, db.tuples[id].Vals[ki]) {
				cols = append(cols, int32(dst.OrdinalOf(rid)))
			}
			h.RowPtr[i+1] = int32(len(cols))
		}
		h.Col = cols
	}

	h.Rev = make([]int32, h.NumTo)
	for _, v := range h.Col {
		h.Rev[v]++
	}
	return h
}

// BackRefs pairs each edge of child with its mirror edge in parent: for
// child edge g = (t → v), the result holds the index of parent's edge
// (v → t), or -1 when parent has no such edge. The propagation engine uses
// the pairing to subtract, per target, exactly the mass that arrived over
// the mirror edge — the tuple-level no-backtrack rule — without revisiting
// individual path instances.
//
// The pairing only exists when child steps back into the relation parent
// departed from (child.ToRel == parent.FromRel, the bounce shape) while
// chaining after it (child.FromRel == parent.ToRel); otherwise, and when no
// edge has a mirror, BackRefs returns nil and the engine skips the
// exclusion arithmetic entirely.
func BackRefs(parent, child *HopCSR) []int32 {
	if parent == nil || child.FromRel != parent.ToRel || child.ToRel != parent.FromRel ||
		parent.NumEdges() == 0 || child.NumEdges() == 0 {
		return nil
	}
	br := make([]int32, len(child.Col))
	any := false
	for t := 0; t < child.NumFrom; t++ {
		for g := child.RowPtr[t]; g < child.RowPtr[t+1]; g++ {
			v := child.Col[g]
			// Binary search t among parent's out-edges of v (ascending).
			lo, hi := parent.RowPtr[v], parent.RowPtr[v+1]
			for lo < hi {
				mid := (lo + hi) / 2
				if parent.Col[mid] < int32(t) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < parent.RowPtr[v+1] && parent.Col[lo] == int32(t) {
				br[g] = lo
				any = true
			} else {
				br[g] = -1
			}
		}
	}
	if !any {
		return nil
	}
	return br
}

// hopKey identifies one compiled hop in the database's plan cache. The
// departing relation is part of the key because a malformed step compiles
// differently depending on where it is asked to depart from.
type hopKey struct {
	from string
	step Step
}

// hopEntry is one plan-cache slot; once makes concurrent first requests
// compile exactly once and share the result.
type hopEntry struct {
	compileOnce func()
	hop         *HopCSR
}

// HopFor returns the compiled CSR index for one step departing from `from`,
// compiling it on first request and caching it for the database's lifetime.
// Concurrent callers requesting the same hop share a single compilation.
// Insert invalidates the cache, so plans always reflect current contents;
// engines compile after loading and never mutate, so in practice each hop
// compiles once.
func (db *Database) HopFor(from string, step Step) *HopCSR {
	key := hopKey{from: from, step: step}
	db.planMu.Lock()
	if db.hopPlans == nil {
		db.hopPlans = make(map[hopKey]*hopEntry)
	}
	e := db.hopPlans[key]
	if e == nil {
		e = &hopEntry{}
		e.compileOnce = sync.OnceFunc(func() {
			e.hop = CompileHop(db, from, step)
			db.hopCompiles.Add(1)
		})
		db.hopPlans[key] = e
	}
	db.planMu.Unlock()
	e.compileOnce()
	return e.hop
}

// HopCompiles reports how many hop compilations the cache has performed —
// the sync.Once semantics regression tests assert it stays at the number of
// distinct hops no matter how many goroutines raced to compile.
func (db *Database) HopCompiles() int64 { return db.hopCompiles.Load() }

// invalidatePlans drops every compiled hop; called by Insert so stale CSR
// indexes can never be observed after a mutation.
func (db *Database) invalidatePlans() {
	db.planMu.Lock()
	db.hopPlans = nil
	db.planMu.Unlock()
}
