package reldb

import (
	"sync"
	"testing"
)

// csrWorld is a small two-hop world with skewed fanouts: three authors,
// two papers, five authorships. It exercises forward rows (exactly one
// edge), reverse rows (several edges), and in-degrees larger than one.
func csrWorld(t *testing.T) *Database {
	t.Helper()
	schema := MustSchema(
		MustRelationSchema("Authors", Attribute{Name: "author", Key: true}),
		MustRelationSchema("Papers", Attribute{Name: "key", Key: true}),
		MustRelationSchema("Publish",
			Attribute{Name: "author", FK: "Authors"},
			Attribute{Name: "key", FK: "Papers"},
		),
	)
	db := NewDatabase(schema)
	for _, a := range []string{"ann", "bob", "cid"} {
		db.MustInsert("Authors", a)
	}
	db.MustInsert("Papers", "p1")
	db.MustInsert("Papers", "p2")
	db.MustInsert("Publish", "ann", "p1")
	db.MustInsert("Publish", "bob", "p1")
	db.MustInsert("Publish", "ann", "p2")
	db.MustInsert("Publish", "bob", "p2")
	db.MustInsert("Publish", "cid", "p2")
	return db
}

// checkHopAgainstJoinable asserts the CSR agrees with the database's own
// tuple-at-a-time access paths: each row's targets are Joinable's result
// (no exclusion) and each target's Rev is JoinFanout across the inverse.
func checkHopAgainstJoinable(t *testing.T, db *Database, from string, step Step) {
	t.Helper()
	h := CompileHop(db, from, step)
	rel := db.Relation(from)
	if h.NumFrom != rel.Size() || len(h.RowPtr) != rel.Size()+1 {
		t.Fatalf("%s via %+v: NumFrom=%d RowPtr len=%d, relation has %d", from, step, h.NumFrom, len(h.RowPtr), rel.Size())
	}
	var buf []TupleID
	for i, id := range rel.TupleIDs() {
		buf = db.Joinable(id, step, InvalidTuple, buf[:0])
		row := h.Col[h.RowPtr[i]:h.RowPtr[i+1]]
		if len(row) != len(buf) {
			t.Fatalf("%s ordinal %d via %+v: %d edges, Joinable says %d", from, i, step, len(row), len(buf))
		}
		for j, v := range row {
			if j > 0 && row[j-1] >= v {
				t.Fatalf("%s ordinal %d: row not strictly ascending: %v", from, i, row)
			}
			if got, want := h.ToIDs[v], buf[j]; got != want {
				t.Fatalf("%s ordinal %d edge %d: target %d, Joinable says %d", from, i, j, got, want)
			}
		}
	}
	for v := 0; v < h.NumTo; v++ {
		if got, want := int(h.Rev[v]), db.JoinFanout(h.ToIDs[v], step.Inverse()); got != want {
			t.Fatalf("%s via %+v: Rev[%d]=%d, JoinFanout says %d", from, step, v, got, want)
		}
	}
}

func TestCompileHopMatchesJoinable(t *testing.T) {
	db := csrWorld(t)
	steps := []struct {
		from string
		step Step
	}{
		{"Publish", Step{Rel: "Publish", Attr: "key", Forward: true}},
		{"Publish", Step{Rel: "Publish", Attr: "author", Forward: true}},
		{"Papers", Step{Rel: "Publish", Attr: "key", Forward: false}},
		{"Authors", Step{Rel: "Publish", Attr: "author", Forward: false}},
	}
	for _, s := range steps {
		checkHopAgainstJoinable(t, db, s.from, s.step)
	}
}

func TestCompileHopMalformed(t *testing.T) {
	db := csrWorld(t)
	cases := []struct {
		name string
		from string
		step Step
	}{
		{"unknown from relation", "Nope", Step{Rel: "Publish", Attr: "key", Forward: true}},
		{"unknown attr", "Publish", Step{Rel: "Publish", Attr: "nope", Forward: true}},
		{"step departs elsewhere", "Authors", Step{Rel: "Publish", Attr: "key", Forward: true}},
		{"reverse from wrong relation", "Papers", Step{Rel: "Publish", Attr: "author", Forward: false}},
	}
	for _, c := range cases {
		h := CompileHop(db, c.from, c.step)
		if h.NumEdges() != 0 {
			t.Errorf("%s: %d edges, want 0", c.name, h.NumEdges())
		}
		if len(h.RowPtr) != h.NumFrom+1 {
			t.Errorf("%s: RowPtr len %d, NumFrom %d", c.name, len(h.RowPtr), h.NumFrom)
		}
	}
}

func TestCompileHopDanglingFK(t *testing.T) {
	db := csrWorld(t)
	// Insert performs no FK validation, so a dangling reference is legal
	// data; the forward hop must simply skip the unresolvable edge.
	db.MustInsert("Publish", "ann", "no-such-paper")
	h := CompileHop(db, "Publish", Step{Rel: "Publish", Attr: "key", Forward: true})
	last := h.NumFrom - 1
	if got := h.RowPtr[last+1] - h.RowPtr[last]; got != 0 {
		t.Errorf("dangling FK compiled to %d edges, want 0", got)
	}
	if h.NumEdges() != 5 {
		t.Errorf("total edges = %d, want 5", h.NumEdges())
	}
}

func TestBackRefs(t *testing.T) {
	db := csrWorld(t)
	fwd := Step{Rel: "Publish", Attr: "key", Forward: true}
	rev := fwd.Inverse()
	parent := CompileHop(db, "Publish", fwd) // Publish -> Papers
	child := CompileHop(db, "Papers", rev)   // Papers -> Publish
	br := BackRefs(parent, child)
	if br == nil {
		t.Fatal("bounce pair produced no back references")
	}
	// Every Papers->Publish edge (t -> v) must mirror Publish->Papers
	// (v -> t): in this world every such mirror exists.
	for ti := 0; ti < child.NumFrom; ti++ {
		for g := child.RowPtr[ti]; g < child.RowPtr[ti+1]; g++ {
			v := child.Col[g]
			r := br[g]
			if r < 0 {
				t.Fatalf("edge %d->%d has no back reference", ti, v)
			}
			if parent.Col[r] != int32(ti) || r < parent.RowPtr[v] || r >= parent.RowPtr[v+1] {
				t.Fatalf("back reference of edge %d->%d points at parent edge %d (row %v)", ti, v, r, parent.Col[parent.RowPtr[v]:parent.RowPtr[v+1]])
			}
		}
	}

	// Hops over disjoint relations cannot mirror each other.
	authRev := Step{Rel: "Publish", Attr: "author", Forward: false}
	other := CompileHop(db, "Authors", authRev)
	if got := BackRefs(parent, other); got != nil {
		t.Errorf("unrelated hops produced back references: %v", got)
	}
}

func TestHopForCachesAndInvalidates(t *testing.T) {
	db := csrWorld(t)
	step := Step{Rel: "Publish", Attr: "key", Forward: true}
	h1 := db.HopFor("Publish", step)
	h2 := db.HopFor("Publish", step)
	if h1 != h2 {
		t.Error("second HopFor did not return the cached hop")
	}
	if got := db.HopCompiles(); got != 1 {
		t.Errorf("HopCompiles = %d, want 1", got)
	}
	db.MustInsert("Publish", "cid", "p1")
	h3 := db.HopFor("Publish", step)
	if h3 == h1 {
		t.Error("Insert did not invalidate the plan cache")
	}
	if h3.NumEdges() != h1.NumEdges()+1 {
		t.Errorf("recompiled hop has %d edges, want %d", h3.NumEdges(), h1.NumEdges()+1)
	}
	if got := db.HopCompiles(); got != 2 {
		t.Errorf("HopCompiles after invalidation = %d, want 2", got)
	}
}

// TestHopForCompileOnceConcurrent races many goroutines at a cold cache:
// all must observe the same hop and the compile must run exactly once.
func TestHopForCompileOnceConcurrent(t *testing.T) {
	db := csrWorld(t)
	step := Step{Rel: "Papers", Attr: "key", Forward: false}
	const n = 16
	hops := make([]*HopCSR, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hops[i] = db.HopFor("Papers", step)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if hops[i] != hops[0] {
			t.Fatalf("goroutine %d observed a different hop", i)
		}
	}
	if got := db.HopCompiles(); got != 1 {
		t.Errorf("HopCompiles = %d, want 1", got)
	}
}

func TestOrdinalOf(t *testing.T) {
	db := csrWorld(t)
	rel := db.Relation("Publish")
	for i, id := range rel.TupleIDs() {
		if got := rel.OrdinalOf(id); got != i {
			t.Errorf("OrdinalOf(%d) = %d, want %d", id, got, i)
		}
	}
	if got := rel.OrdinalOf(db.LookupKey("Papers", "p1")); got != -1 {
		t.Errorf("foreign tuple ordinal = %d, want -1", got)
	}
}
