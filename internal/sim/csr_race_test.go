package sim

import (
	"sync"
	"testing"

	"distinct/internal/reldb"
)

// raceWorld builds a small coauthor world plus the bounce path over it.
func raceWorld(t *testing.T) (*reldb.Database, []reldb.JoinPath, []reldb.TupleID) {
	t.Helper()
	schema := reldb.MustSchema(
		reldb.MustRelationSchema("Authors", reldb.Attribute{Name: "author", Key: true}),
		reldb.MustRelationSchema("Papers", reldb.Attribute{Name: "key", Key: true}),
		reldb.MustRelationSchema("Publish",
			reldb.Attribute{Name: "author", FK: "Authors"},
			reldb.Attribute{Name: "key", FK: "Papers"},
		),
	)
	db := reldb.NewDatabase(schema)
	authors := []string{"ann", "bob", "cid", "dee"}
	for _, a := range authors {
		db.MustInsert("Authors", a)
	}
	var refs []reldb.TupleID
	for pi, paper := range []string{"p1", "p2", "p3"} {
		db.MustInsert("Papers", paper)
		for ai := 0; ai <= pi+1 && ai < len(authors); ai++ {
			refs = append(refs, db.MustInsert("Publish", authors[ai], paper))
		}
	}
	paths := []reldb.JoinPath{
		{Start: "Publish", Steps: []reldb.Step{
			{Rel: "Publish", Attr: "key", Forward: true},
			{Rel: "Publish", Attr: "key", Forward: false},
			{Rel: "Publish", Attr: "author", Forward: true},
		}},
		{Start: "Publish", Steps: []reldb.Step{
			{Rel: "Publish", Attr: "key", Forward: true},
		}},
	}
	return db, paths, refs
}

// TestPlanCompileOnceAcrossExtractors hammers two extractors sharing one
// database from many goroutines with a cold plan cache. Run under -race
// this checks the lazily compiled plan is published safely; the compile
// counter checks sync.Once semantics — each distinct hop compiles exactly
// once for the database, no matter how many extractors or goroutines race.
func TestPlanCompileOnceAcrossExtractors(t *testing.T) {
	db, paths, refs := raceWorld(t)
	ex1 := NewExtractor(db, paths)
	ex2 := NewExtractor(db, paths)
	if got := db.HopCompiles(); got != 0 {
		t.Fatalf("plan cache warm before first propagation: %d compiles", got)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := ex1
			if w%2 == 1 {
				ex = ex2
			}
			for _, r := range refs {
				ex.Neighborhoods(r)
			}
		}(w)
	}
	wg.Wait()

	// The two paths share the first hop: 3 distinct (from, step) hops in
	// total — Publish>key, Papers<key, Publish>author.
	if got := db.HopCompiles(); got != 3 {
		t.Errorf("HopCompiles = %d, want 3 (one per distinct hop)", got)
	}

	// Both extractors must agree with each other and with the DFS path.
	for _, r := range refs {
		n1, n2 := ex1.Neighborhoods(r), ex2.Neighborhoods(r)
		for p := range paths {
			if len(n1[p].Keys) != len(n2[p].Keys) {
				t.Fatalf("extractors disagree on ref %d path %d", r, p)
			}
		}
	}

	// CompilePlans after the fact is idempotent: the plan exists, stats are
	// stable, and no further hop compiles happen.
	h1, e1, _ := ex1.CompilePlans()
	h2, e2, _ := ex2.CompilePlans()
	if h1 != h2 || e1 != e2 || h1 != 3 {
		t.Errorf("CompilePlans stats diverge: (%d,%d) vs (%d,%d)", h1, e1, h2, e2)
	}
	if got := db.HopCompiles(); got != 3 {
		t.Errorf("HopCompiles after CompilePlans = %d, want 3", got)
	}
}

// TestCompilePlansEager: calling CompilePlans first compiles immediately
// and reports a nonzero compile time exactly once.
func TestCompilePlansEager(t *testing.T) {
	db, paths, refs := raceWorld(t)
	ex := NewExtractor(db, paths)
	hops, edges, took := ex.CompilePlans()
	if hops != 3 || edges == 0 {
		t.Errorf("CompilePlans = (%d hops, %d edges), want 3 hops and nonzero edges", hops, edges)
	}
	if took <= 0 {
		t.Error("eager CompilePlans reported zero compile time")
	}
	nbs := ex.Neighborhoods(refs[0])
	if len(nbs) != len(paths) {
		t.Fatalf("neighborhoods after eager compile: %d, want %d", len(nbs), len(paths))
	}
}
