package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"distinct/internal/prop"
)

// BenchmarkPairKernelSkew sweeps the size ratio between the two operands
// of the similarity kernel, in both pair-at-a-time and batched form. The
// ratio at which gallop overtakes the linear scan justifies gallopFactor
// (and batchGallopFactor): below it the dense probe / merge scan wins,
// above it binary-search galloping through the larger side wins. The
// measured table lives in RESULTS.txt.
func BenchmarkPairKernelSkew(b *testing.B) {
	const anchorSize = 64
	for _, ratio := range []int{1, 2, 4, 8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(int64(ratio)))
		candSize := anchorSize * ratio
		keyRange := 4 * candSize
		anchor := randNB(rng, anchorSize, 0, keyRange).Sparse()
		const nCands = 32
		cands := make([]prop.SparseNeighborhood, nCands)
		for i := range cands {
			cands[i] = randNB(rng, candSize, 0, keyRange).Sparse()
		}
		b.Run(fmt.Sprintf("pair/ratio=%d", ratio), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				r, ab, ba := PairKernel(anchor, cands[i%nCands])
				sink += r + ab + ba
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("batch/ratio=%d", ratio), func(b *testing.B) {
			s := NewBatchScratch(keyRange + 1)
			out := make([]Trip, nCands)
			b.ReportAllocs()
			for i := 0; i < b.N; i += nCands {
				s.Block(anchor, cands, out)
			}
		})
	}
}
