package sim

import (
	"runtime"
	"sync"

	"distinct/internal/obs/trace"
	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// Prefetch computes and caches the neighborhoods of every given reference,
// fanning the propagation work out over `workers` goroutines (0 means
// GOMAXPROCS). Propagation per reference is independent and the database
// is read-only, so the workers only synchronise on the final cache merge.
// The sparse finalisation (sort + Σ Fwd) also runs on the workers, so a
// prefetched reference costs the serving path nothing but a cache read.
func (e *Extractor) Prefetch(refs []reldb.TupleID, workers int) {
	e.PrefetchSpan(refs, workers, nil)
}

// PrefetchSpan is Prefetch that, when parent is non-nil, records the work as
// a "prefetch" child span carrying how many references were requested and
// how many actually propagated (the rest were cache hits). A fully warm
// cache records propagated=0, so batch sweeps show per-name prefetch spans
// that did no work — which is itself the interesting fact.
func (e *Extractor) PrefetchSpan(refs []reldb.TupleID, workers int, parent *trace.Span) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deduplicate and drop already-cached references.
	var todo []reldb.TupleID
	seen := make(map[reldb.TupleID]bool, len(refs))
	e.mu.RLock()
	for _, r := range refs {
		if seen[r] {
			continue
		}
		seen[r] = true
		if _, ok := e.cache[r]; !ok {
			todo = append(todo, r)
		}
	}
	e.mu.RUnlock()
	e.prefetchRequested.Add(int64(len(refs)))
	e.prefetchDeduped.Add(int64(len(refs) - len(todo)))
	e.prefetchPropagated.Add(int64(len(todo)))
	tsp := parent.Start("prefetch",
		trace.Int("requested", int64(len(refs))),
		trace.Int("propagated", int64(len(todo))))
	defer tsp.End()
	if len(todo) == 0 {
		return
	}
	sp := e.obs.StartStage("prefetch")
	defer func() { sp.End(len(todo)) }()
	if workers > len(todo) {
		workers = len(todo)
	}
	// The sequential path mirrors the worker pool (compute, then merge
	// under the lock) so cache metrics are identical whatever the worker
	// count: prefetched propagations never count as cache misses.
	results := make([][]prop.SparseNeighborhood, len(todo))
	if workers == 1 {
		for i, r := range todo {
			results[i] = prop.PropagateMultiSparse(e.db, r, e.trie)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = prop.PropagateMultiSparse(e.db, todo[i], e.trie)
				}
			}()
		}
		for i := range todo {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	e.mu.Lock()
	for i, r := range todo {
		if _, ok := e.cache[r]; !ok {
			e.cache[r] = results[i]
		}
	}
	e.mu.Unlock()
}
