package sim

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"

	"distinct/internal/fault"
	"distinct/internal/obs/trace"
	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// Prefetch computes and caches the neighborhoods of every given reference,
// fanning the propagation work out over `workers` goroutines (0 means
// GOMAXPROCS). Propagation per reference is independent and the database
// is read-only, so the workers only synchronise on the final cache merge.
// The sparse finalisation (sort + Σ Fwd) also runs on the workers, so a
// prefetched reference costs the serving path nothing but a cache read.
func (e *Extractor) Prefetch(refs []reldb.TupleID, workers int) {
	e.PrefetchSpan(refs, workers, nil)
}

// PrefetchSpan is Prefetch that, when parent is non-nil, records the work as
// a "prefetch" child span carrying how many references were requested and
// how many actually propagated (the rest were cache hits). A fully warm
// cache records propagated=0, so batch sweeps show per-name prefetch spans
// that did no work — which is itself the interesting fact.
func (e *Extractor) PrefetchSpan(refs []reldb.TupleID, workers int, parent *trace.Span) {
	// Background context never cancels and carries no fault registry, so
	// the error return is impossible and safely discarded.
	_ = e.PrefetchCtx(context.Background(), refs, workers, parent)
}

// PrefetchCtx is PrefetchSpan under a context: cancellation (and the
// "sim.prefetch" fault point) is observed between per-reference
// propagations, so the latency to abort is bounded by one propagation. On
// error, neighborhoods already computed are still merged into the cache —
// the cache only ever gains entries, so a partial prefetch is safe and the
// work is not wasted on a degraded retry. A worker panic is recovered into
// a *fault.PanicError instead of killing the process.
func (e *Extractor) PrefetchCtx(ctx context.Context, refs []reldb.TupleID, workers int, parent *trace.Span) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := fault.Point(ctx, "sim.prefetch"); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deduplicate and drop already-cached references.
	var todo []reldb.TupleID
	seen := make(map[reldb.TupleID]bool, len(refs))
	e.mu.RLock()
	for _, r := range refs {
		if seen[r] {
			continue
		}
		seen[r] = true
		if _, ok := e.cache[r]; !ok {
			todo = append(todo, r)
		}
	}
	e.mu.RUnlock()
	e.prefetchRequested.Add(int64(len(refs)))
	e.prefetchDeduped.Add(int64(len(refs) - len(todo)))
	e.prefetchPropagated.Add(int64(len(todo)))
	tsp := parent.Start("prefetch",
		trace.Int("requested", int64(len(refs))),
		trace.Int("propagated", int64(len(todo))))
	defer tsp.End()
	if len(todo) == 0 {
		return nil
	}
	sp := e.obs.StartStage("prefetch")
	defer func() { sp.End(len(todo)) }()
	if workers > len(todo) {
		workers = len(todo)
	}
	// The sequential path mirrors the worker pool (compute, then merge
	// under the lock) so cache metrics are identical whatever the worker
	// count: prefetched propagations never count as cache misses.
	results := make([][]prop.SparseNeighborhood, len(todo))
	var runErr error
	if workers == 1 {
		for i, r := range todo {
			if runErr = ctx.Err(); runErr != nil {
				break
			}
			if runErr = propagateGuarded(e, r, results, i); runErr != nil {
				break
			}
		}
	} else {
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			first error
		)
		fail := func(err error) {
			mu.Lock()
			if first == nil {
				first = err
			}
			mu.Unlock()
		}
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if err := propagateGuarded(e, todo[i], results, i); err != nil {
						fail(err)
						return
					}
				}
			}()
		}
	feed:
		for i := range todo {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
		if first != nil {
			runErr = first
		} else {
			runErr = ctx.Err()
		}
	}
	e.mu.Lock()
	for i, r := range todo {
		if results[i] == nil {
			continue // skipped after cancellation / failure
		}
		if _, ok := e.cache[r]; !ok {
			e.cache[r] = results[i]
		}
	}
	e.mu.Unlock()
	return runErr
}

// propagateGuarded runs one propagation, converting a panic into a
// *fault.PanicError carrying the worker's stack.
func propagateGuarded(e *Extractor, r reldb.TupleID, results [][]prop.SparseNeighborhood, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &fault.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	results[i] = e.propagate(r)
	return nil
}
