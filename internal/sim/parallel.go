package sim

import (
	"runtime"
	"sync"

	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// Prefetch computes and caches the neighborhoods of every given reference,
// fanning the propagation work out over `workers` goroutines (0 means
// GOMAXPROCS). Propagation per reference is independent and the database
// is read-only, so the only synchronisation needed is the final cache
// merge. After Prefetch returns, Neighborhoods/ResemVector/WalkVector hits
// for those references are pure cache reads and safe to issue from
// multiple goroutines concurrently.
func (e *Extractor) Prefetch(refs []reldb.TupleID, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deduplicate and drop already-cached references.
	var todo []reldb.TupleID
	seen := make(map[reldb.TupleID]bool, len(refs))
	for _, r := range refs {
		if seen[r] {
			continue
		}
		seen[r] = true
		if _, ok := e.cache[r]; !ok {
			todo = append(todo, r)
		}
	}
	if len(todo) == 0 {
		return
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers == 1 {
		for _, r := range todo {
			e.Neighborhoods(r)
		}
		return
	}

	results := make([][]prop.Neighborhood, len(todo))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = prop.PropagateMulti(e.db, todo[i], e.trie)
			}
		}()
	}
	for i := range todo {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, r := range todo {
		e.cache[r] = results[i]
	}
}
