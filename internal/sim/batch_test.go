package sim

import (
	"math"
	"math/rand"
	"testing"

	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// blockFixture builds an anchor plus a block of candidate neighborhoods
// spanning the regimes the batch kernel dispatches between: dense overlap
// (probe mode), candidates far larger than the anchor (gallop fallback),
// candidates far smaller (probe best case), disjoint, subset, and empty.
func blockFixture(rng *rand.Rand) (prop.Neighborhood, []prop.Neighborhood) {
	anchor := randNB(rng, 1+rng.Intn(40), 0, 200)
	var cands []prop.Neighborhood
	add := func(n prop.Neighborhood) { cands = append(cands, n) }
	add(randNB(rng, 1+rng.Intn(40), 0, 200))    // merge/probe regime
	add(randNB(rng, 400+rng.Intn(200), 0, 900)) // anchor ≪ candidate: gallop
	add(randNB(rng, 1+rng.Intn(3), 0, 200))     // candidate ≪ anchor
	add(randNB(rng, 1+rng.Intn(20), 500, 100))  // disjoint key ranges
	add(nil)                                    // empty candidate
	sub := make(prop.Neighborhood)
	for k := range anchor {
		if len(sub) == 4 {
			break
		}
		sub[k] = prop.FB{Fwd: rng.Float64(), Bwd: rng.Float64()}
	}
	add(sub) // subset of the anchor
	return anchor, cands
}

// TestBatchedKernelMatchesPairKernel is the batched kernel's property test:
// on random sparse neighborhoods covering both the merge and gallop
// regimes, Block must agree with the pair-at-a-time reference — and, by
// design (identical accumulation order and float expressions), it must be
// bit-identical, which is what keeps the golden outputs stable.
func TestBatchedKernelMatchesPairKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewBatchScratch(0) // deliberately undersized: Block must grow it
	for trial := 0; trial < 200; trial++ {
		anchorM, candsM := blockFixture(rng)
		anchor := anchorM.Sparse()
		cands := make([]prop.SparseNeighborhood, len(candsM))
		for i, c := range candsM {
			cands[i] = c.Sparse()
		}
		out := make([]Trip, len(cands))
		s.Block(anchor, cands, out)
		for i, c := range cands {
			r, ab, ba := PairKernel(anchor, c)
			if out[i].Resem != r || out[i].WalkAB != ab || out[i].WalkBA != ba {
				t.Fatalf("trial %d cand %d: Block = %+v, PairKernel = (%v, %v, %v)",
					trial, i, out[i], r, ab, ba)
			}
		}
		for _, p := range s.pos {
			if p != -1 {
				t.Fatalf("trial %d: scratch not restored to all -1 after Block", trial)
			}
		}
	}
}

// TestBatchedKernelMatchesMapKernels holds the batched kernel to the same
// 1e-12 contract against the legacy map-based reference implementations
// that the merge-scan kernels carry.
func TestBatchedKernelMatchesMapKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewBatchScratch(1024)
	const tol = 1e-12
	for trial := 0; trial < 100; trial++ {
		anchorM, candsM := blockFixture(rng)
		anchor := anchorM.Sparse()
		cands := make([]prop.SparseNeighborhood, len(candsM))
		for i, c := range candsM {
			cands[i] = c.Sparse()
		}
		out := make([]Trip, len(cands))
		s.Block(anchor, cands, out)
		for i, cm := range candsM {
			checks := []struct {
				what      string
				got, want float64
			}{
				{"Resem", out[i].Resem, MapResemblance(anchorM, cm)},
				{"WalkAB", out[i].WalkAB, MapWalkProb(anchorM, cm)},
				{"WalkBA", out[i].WalkBA, MapWalkProb(cm, anchorM)},
			}
			for _, c := range checks {
				if math.Abs(c.got-c.want) > tol {
					t.Fatalf("trial %d cand %d: %s = %v, map kernel %v (|Δ| = %g)",
						trial, i, c.what, c.got, c.want, math.Abs(c.got-c.want))
				}
			}
		}
	}
}

// FuzzBatchedKernel drives Block with fuzzer-shaped neighborhoods and
// cross-checks every candidate against PairKernel. The corpus bytes encode
// sizes and a seed, so the fuzzer explores the regime switch (merge vs
// gallop) and the growth path of the dense index.
func FuzzBatchedKernel(f *testing.F) {
	f.Add(uint16(8), uint16(8), uint16(3), int64(1))
	f.Add(uint16(2), uint16(300), uint16(2), int64(2)) // gallop regime
	f.Add(uint16(300), uint16(2), uint16(4), int64(3)) // probe best case
	f.Add(uint16(0), uint16(5), uint16(1), int64(4))   // empty anchor
	f.Fuzz(func(t *testing.T, aSize, bSize, nCands uint16, seed int64) {
		const maxSize, maxCands = 600, 12
		as, bs, nc := int(aSize)%maxSize, int(bSize)%maxSize, 1+int(nCands)%maxCands
		rng := rand.New(rand.NewSource(seed))
		anchor := randNB(rng, as, 0, 2*maxSize).Sparse()
		cands := make([]prop.SparseNeighborhood, nc)
		for i := range cands {
			// Alternate size classes so one block crosses regimes.
			size := bs
			if i%2 == 1 {
				size = as/2 + 1
			}
			cands[i] = randNB(rng, size, rng.Intn(maxSize), 2*maxSize).Sparse()
		}
		out := make([]Trip, nc)
		s := NewBatchScratch(0)
		s.Block(anchor, cands, out)
		for i, c := range cands {
			r, ab, ba := PairKernel(anchor, c)
			if out[i].Resem != r || out[i].WalkAB != ab || out[i].WalkBA != ba {
				t.Fatalf("cand %d: Block = %+v, PairKernel = (%v, %v, %v)", i, out[i], r, ab, ba)
			}
		}
	})
}

// TestBatchedKernelAllocs pins the block kernel's warm-path allocation
// count at zero, in the style of TestCompiledAllocsCeiling: once the
// scratch and its gather buffers are grown, Block and the row assembly
// around it must not allocate, whatever block it processes.
func TestBatchedKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	anchorM, candsM := blockFixture(rng)
	anchor := anchorM.Sparse()
	block := make([]prop.SparseNeighborhood, len(candsM))
	for i, c := range candsM {
		block[i] = c.Sparse()
	}
	s := NewBatchScratch(2048) // covers every key the fixture can produce
	cands, out := s.GrowBuffers(len(block))
	allocs := testing.AllocsPerRun(100, func() {
		copy(cands, block)
		s.Block(anchor, cands, out)
	})
	if allocs != 0 {
		t.Fatalf("warm Block allocates %.1f times per run, want 0", allocs)
	}
}

// TestBatchScratchGrow pins the growth path: an undersized scratch must
// expand to cover the largest key it meets and keep the all--1 invariant
// in the grown region.
func TestBatchScratchGrow(t *testing.T) {
	s := NewBatchScratch(4)
	a := prop.Neighborhood{
		reldb.TupleID(1000): {Fwd: 0.5, Bwd: 0.5},
		reldb.TupleID(2):    {Fwd: 0.5, Bwd: 0.5},
	}.Sparse()
	b := prop.Neighborhood{
		reldb.TupleID(1000): {Fwd: 0.25, Bwd: 1},
		reldb.TupleID(3000): {Fwd: 0.75, Bwd: 1},
	}.Sparse()
	out := make([]Trip, 1)
	s.Block(a, []prop.SparseNeighborhood{b}, out)
	if len(s.pos) < 3001 {
		t.Fatalf("scratch did not grow: len(pos) = %d, want >= 3001", len(s.pos))
	}
	r, ab, ba := PairKernel(a, b)
	if out[0].Resem != r || out[0].WalkAB != ab || out[0].WalkBA != ba {
		t.Fatalf("grown Block = %+v, PairKernel = (%v, %v, %v)", out[0], r, ab, ba)
	}
	for _, p := range s.pos {
		if p != -1 {
			t.Fatal("grown scratch not restored to all -1")
		}
	}
}

// TestNeighborhoodsAllMatchesNeighborhoods checks the bulk gather returns
// the same (shared) cached slices as the per-reference path, for both warm
// and cold caches, and that the output buffer is reused when offered.
func TestNeighborhoodsAllMatchesNeighborhoods(t *testing.T) {
	ext, refs := extractorFixture(t)
	// Cold: every ref misses and falls back to the per-reference path.
	cold := ext.NeighborhoodsAll(refs, nil)
	for i, r := range refs {
		want := ext.Neighborhoods(r)
		for p := range want {
			if cold[i][p].Len() != want[p].Len() || cold[i][p].SumFwd != want[p].SumFwd {
				t.Fatalf("cold NeighborhoodsAll[%d][%d] differs from Neighborhoods", i, p)
			}
		}
	}
	// Warm: one lock round-trip, same backing slices.
	buf := make([][]prop.SparseNeighborhood, 0, len(refs))
	warm := ext.NeighborhoodsAll(refs, buf)
	for i, r := range refs {
		want := ext.Neighborhoods(r)
		if len(warm[i]) != len(want) {
			t.Fatalf("warm NeighborhoodsAll[%d] has %d paths, want %d", i, len(warm[i]), len(want))
		}
		for p := range want {
			if len(warm[i][p].Keys) > 0 && &warm[i][p].Keys[0] != &want[p].Keys[0] {
				t.Fatalf("warm NeighborhoodsAll[%d][%d] does not share the cached slice", i, p)
			}
		}
	}
}
