package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// nb builds a neighborhood from (id, fwd, bwd) triples.
func nb(triples ...float64) prop.Neighborhood {
	n := make(prop.Neighborhood)
	for i := 0; i+2 < len(triples); i += 3 {
		n[reldb.TupleID(triples[i])] = prop.FB{Fwd: triples[i+1], Bwd: triples[i+2]}
	}
	return n
}

// sp builds the sparse form of the same triples.
func sp(triples ...float64) prop.SparseNeighborhood {
	return nb(triples...).Sparse()
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestResemblanceHandComputed(t *testing.T) {
	a := sp(1, 0.5, 0.3, 2, 0.5, 0.2)
	b := sp(2, 0.25, 0.1, 3, 0.75, 0.9)
	// Intersection {2}: min = 0.25. Union max: max(t1)=0.5, max(t2)=0.5, max(t3)=0.75.
	want := 0.25 / (0.5 + 0.5 + 0.75)
	if got := Resemblance(a, b); !approx(got, want) {
		t.Errorf("Resemblance = %v, want %v", got, want)
	}
	// Symmetry.
	if got := Resemblance(b, a); !approx(got, want) {
		t.Errorf("Resemblance reversed = %v, want %v", got, want)
	}
}

func TestResemblanceIdentityAndDisjoint(t *testing.T) {
	a := sp(1, 0.4, 0.1, 2, 0.6, 0.2)
	if got := Resemblance(a, a); !approx(got, 1.0) {
		t.Errorf("self resemblance = %v, want 1", got)
	}
	b := sp(3, 1.0, 1.0)
	if got := Resemblance(a, b); got != 0 {
		t.Errorf("disjoint resemblance = %v, want 0", got)
	}
	if got := Resemblance(prop.SparseNeighborhood{}, a); got != 0 {
		t.Errorf("empty resemblance = %v, want 0", got)
	}
	if got := Resemblance(a, prop.SparseNeighborhood{}); got != 0 {
		t.Errorf("empty resemblance = %v, want 0", got)
	}
}

func TestWalkProbHandComputed(t *testing.T) {
	a := sp(1, 0.5, 0.4, 2, 0.5, 0.6)
	b := sp(1, 0.2, 0.3, 3, 0.8, 0.9)
	// Directed a->b: shared {1}: Fwd_a(1)*Bwd_b(1) = 0.5*0.3.
	if got := WalkProb(a, b); !approx(got, 0.15) {
		t.Errorf("WalkProb(a,b) = %v, want 0.15", got)
	}
	// Directed b->a: Fwd_b(1)*Bwd_a(1) = 0.2*0.4.
	if got := WalkProb(b, a); !approx(got, 0.08) {
		t.Errorf("WalkProb(b,a) = %v, want 0.08", got)
	}
	if got := SymWalkProb(a, b); !approx(got, (0.15+0.08)/2) {
		t.Errorf("SymWalkProb = %v", got)
	}
	if got := SymWalkProb(b, a); !approx(got, (0.15+0.08)/2) {
		t.Errorf("SymWalkProb not symmetric: %v", got)
	}
}

func TestWalkProbAsymmetricSizes(t *testing.T) {
	// len(a) > len(b) exercises the small/large ordering inside the scan.
	a := sp(1, 0.25, 0.5, 2, 0.25, 0.5, 3, 0.5, 0.5)
	b := sp(1, 1.0, 0.75)
	if got := WalkProb(a, b); !approx(got, 0.25*0.75) {
		t.Errorf("WalkProb = %v, want %v", got, 0.25*0.75)
	}
	if got := WalkProb(b, a); !approx(got, 1.0*0.5) {
		t.Errorf("WalkProb = %v, want 0.5", got)
	}
}

func TestPairKernelMatchesIndividualKernels(t *testing.T) {
	a := sp(1, 0.5, 0.4, 2, 0.3, 0.6, 5, 0.2, 0.1)
	b := sp(2, 0.25, 0.1, 3, 0.5, 0.9, 5, 0.25, 0.3)
	r, ab, ba := PairKernel(a, b)
	if !approx(r, Resemblance(a, b)) {
		t.Errorf("PairKernel resem = %v, Resemblance = %v", r, Resemblance(a, b))
	}
	if !approx(ab, WalkProb(a, b)) || !approx(ba, WalkProb(b, a)) {
		t.Errorf("PairKernel walks = %v/%v, WalkProb = %v/%v",
			ab, ba, WalkProb(a, b), WalkProb(b, a))
	}
	// Empty operands.
	if r, ab, ba := PairKernel(prop.SparseNeighborhood{}, b); r != 0 || ab != 0 || ba != 0 {
		t.Errorf("PairKernel with empty operand = %v/%v/%v, want zeros", r, ab, ba)
	}
}

func randomNeighborhood(rng *rand.Rand) prop.Neighborhood {
	n := make(prop.Neighborhood)
	for i := 0; i < 1+rng.Intn(12); i++ {
		n[reldb.TupleID(rng.Intn(16))] = prop.FB{Fwd: rng.Float64(), Bwd: rng.Float64()}
	}
	return n
}

// Property: resemblance is symmetric, bounded to [0,1], 1 on identical
// neighborhoods, and 0 on disjoint ones.
func TestResemblanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomNeighborhood(rng).Sparse(), randomNeighborhood(rng).Sparse()
		r1, r2 := Resemblance(a, b), Resemblance(b, a)
		if !approx(r1, r2) {
			t.Logf("asymmetric: %v vs %v", r1, r2)
			return false
		}
		if r1 < 0 || r1 > 1+1e-12 {
			t.Logf("out of range: %v", r1)
			return false
		}
		if !approx(Resemblance(a, a), 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: symmetric walk probability is symmetric and non-negative, and
// monotone under shrinking a neighborhood (removing shared tuples can only
// decrease it).
func TestWalkProbProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		am, b := randomNeighborhood(rng), randomNeighborhood(rng).Sparse()
		a := am.Sparse()
		s := SymWalkProb(a, b)
		if s < 0 {
			return false
		}
		if !approx(s, SymWalkProb(b, a)) {
			return false
		}
		// Remove one shared tuple, if any: probability must not increase.
		for _, id := range a.Keys {
			if _, ok := b.Lookup(id); ok {
				a2 := make(prop.Neighborhood, len(am))
				for k, v := range am {
					a2[k] = v
				}
				delete(a2, id)
				if SymWalkProb(a2.Sparse(), b) > s+1e-12 {
					return false
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func extractorFixture(t *testing.T) (*Extractor, []reldb.TupleID) {
	t.Helper()
	schema := reldb.MustSchema(
		reldb.MustRelationSchema("Authors", reldb.Attribute{Name: "author", Key: true}),
		reldb.MustRelationSchema("Publish",
			reldb.Attribute{Name: "author", FK: "Authors"},
			reldb.Attribute{Name: "paper-key", FK: "Publications"},
		),
		reldb.MustRelationSchema("Publications",
			reldb.Attribute{Name: "paper-key", Key: true}),
	)
	db := reldb.NewDatabase(schema)
	for _, a := range []string{"x", "y", "z"} {
		db.MustInsert("Authors", a)
	}
	db.MustInsert("Publications", "p1")
	db.MustInsert("Publications", "p2")
	r1 := db.MustInsert("Publish", "x", "p1")
	db.MustInsert("Publish", "y", "p1")
	r2 := db.MustInsert("Publish", "x", "p2")
	db.MustInsert("Publish", "y", "p2")
	db.MustInsert("Publish", "z", "p2")
	paths := []reldb.JoinPath{{Start: "Publish", Steps: []reldb.Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publish", Attr: "paper-key", Forward: false},
		{Rel: "Publish", Attr: "author", Forward: true},
	}}}
	return NewExtractor(db, paths), []reldb.TupleID{r1, r2}
}

func TestExtractorVectorsAndCache(t *testing.T) {
	e, refs := extractorFixture(t)
	if len(e.Paths()) != 1 {
		t.Fatalf("Paths = %d", len(e.Paths()))
	}
	v := e.ResemVector(refs[0], refs[1])
	if len(v) != 1 {
		t.Fatalf("vector length %d", len(v))
	}
	// r1's coauthors: {y:1}. r2's: {y:1/2, z:1/2}. Resem = min(1,.5)/(max(1,.5)+.5) = .5/1.5.
	if !approx(v[0], 0.5/1.5) {
		t.Errorf("resem feature = %v, want %v", v[0], 0.5/1.5)
	}
	w := e.WalkVector(refs[0], refs[1])
	if w[0] <= 0 {
		t.Errorf("walk feature = %v, want > 0", w[0])
	}
	if e.CacheSize() != 2 {
		t.Errorf("cache size = %d, want 2", e.CacheSize())
	}
	// Repeated extraction hits the cache and stays deterministic.
	v2 := e.ResemVector(refs[0], refs[1])
	if !approx(v[0], v2[0]) || e.CacheSize() != 2 {
		t.Error("cache changed results")
	}
	// Cached neighborhoods are sorted sparse vectors.
	for _, r := range refs {
		for p, s := range e.Neighborhoods(r) {
			for i := 1; i < len(s.Keys); i++ {
				if s.Keys[i-1] >= s.Keys[i] {
					t.Fatalf("ref %d path %d: keys not strictly ascending", r, p)
				}
			}
		}
	}
}
