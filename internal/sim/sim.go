// Package sim implements DISTINCT's two complementary similarity measures
// between references (Sections 2.3 and 2.4 of the paper):
//
//   - set resemblance of neighbor tuples — a connection-strength-weighted
//     Jaccard coefficient over the two references' neighborhoods along one
//     join path (Definition 2), capturing context similarity; and
//   - random walk probability — the probability of walking from one
//     reference to the other along a join path and back along its reverse,
//     capturing linkage strength.
//
// Both measures are computed per join path; the core package combines the
// per-path values with learned (or uniform) weights.
package sim

import (
	"math"

	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// Resemblance returns the set resemblance between two references'
// neighborhoods along one join path (Definition 2): the weighted Jaccard
// coefficient Σ min(Fwd_a(t), Fwd_b(t)) / Σ max(Fwd_a(t), Fwd_b(t)), where
// the sums range over the intersection and union of the neighborhoods.
func Resemblance(a, b prop.Neighborhood) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	var sumA, sumB, interMin float64
	for _, fb := range a {
		sumA += fb.Fwd
	}
	for _, fb := range b {
		sumB += fb.Fwd
	}
	for t, fs := range small {
		if fl, ok := large[t]; ok {
			interMin += math.Min(fs.Fwd, fl.Fwd)
		}
	}
	// Σ max over the union = Σ_a + Σ_b − Σ min over the intersection.
	denom := sumA + sumB - interMin
	if denom <= 0 {
		return 0
	}
	return interMin / denom
}

// WalkProb returns the directed random walk probability Walk_P(r1 → r2): the
// probability of reaching r2 from r1 by walking the join path to a shared
// neighbor tuple and the reversed path back, i.e. Σ_t Fwd_a(t)·Bwd_b(t).
// Composing the two per-path probabilities avoids re-walking the
// concatenated double-length path, as Section 2.4 of the paper notes.
func WalkProb(a, b prop.Neighborhood) float64 {
	small, large := a, b
	swapped := false
	if len(b) < len(a) {
		small, large = b, a
		swapped = true
	}
	var p float64
	for t, fs := range small {
		if fl, ok := large[t]; ok {
			if swapped {
				p += fl.Fwd * fs.Bwd
			} else {
				p += fs.Fwd * fl.Bwd
			}
		}
	}
	return p
}

// SymWalkProb returns the symmetrised walk probability, the mean of the two
// directions.
func SymWalkProb(a, b prop.Neighborhood) float64 {
	return (WalkProb(a, b) + WalkProb(b, a)) / 2
}

// Extractor computes and caches per-reference neighborhoods along a fixed
// set of join paths, and derives per-pair feature vectors from them. Each
// reference's propagation runs once no matter how many pairs it appears in;
// this is what makes all-pairs feature computation affordable (§4.2).
type Extractor struct {
	db    *reldb.Database
	paths []reldb.JoinPath
	trie  *prop.Trie // shared-prefix walk over all paths at once
	cache map[reldb.TupleID][]prop.Neighborhood
}

// NewExtractor creates an extractor over the given database and join paths.
func NewExtractor(db *reldb.Database, paths []reldb.JoinPath) *Extractor {
	return &Extractor{
		db:    db,
		paths: paths,
		trie:  prop.NewTrie(paths),
		cache: make(map[reldb.TupleID][]prop.Neighborhood),
	}
}

// Paths returns the join paths the extractor computes features for, in
// feature-vector order.
func (e *Extractor) Paths() []reldb.JoinPath { return e.paths }

// Neighborhoods returns the reference's neighborhood along every path,
// computing and caching them on first use. All paths are walked in one
// prefix-trie traversal (see prop.PropagateMulti).
func (e *Extractor) Neighborhoods(r reldb.TupleID) []prop.Neighborhood {
	if nbs, ok := e.cache[r]; ok {
		return nbs
	}
	nbs := prop.PropagateMulti(e.db, r, e.trie)
	e.cache[r] = nbs
	return nbs
}

// ResemVector returns the per-path set resemblance feature vector of a pair.
func (e *Extractor) ResemVector(r1, r2 reldb.TupleID) []float64 {
	n1, n2 := e.Neighborhoods(r1), e.Neighborhoods(r2)
	v := make([]float64, len(e.paths))
	for i := range e.paths {
		v[i] = Resemblance(n1[i], n2[i])
	}
	return v
}

// WalkVector returns the per-path symmetrised random walk feature vector.
func (e *Extractor) WalkVector(r1, r2 reldb.TupleID) []float64 {
	n1, n2 := e.Neighborhoods(r1), e.Neighborhoods(r2)
	v := make([]float64, len(e.paths))
	for i := range e.paths {
		v[i] = SymWalkProb(n1[i], n2[i])
	}
	return v
}

// CacheSize reports how many references have cached neighborhoods.
func (e *Extractor) CacheSize() int { return len(e.cache) }
