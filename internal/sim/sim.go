// Package sim implements DISTINCT's two complementary similarity measures
// between references (Sections 2.3 and 2.4 of the paper):
//
//   - set resemblance of neighbor tuples — a connection-strength-weighted
//     Jaccard coefficient over the two references' neighborhoods along one
//     join path (Definition 2), capturing context similarity; and
//   - random walk probability — the probability of walking from one
//     reference to the other along a join path and back along its reverse,
//     capturing linkage strength.
//
// Both measures are computed per join path; the core package combines the
// per-path values with learned (or uniform) weights.
//
// The kernels operate on prop.SparseNeighborhood — sorted parallel slices —
// as linear merge-scans over the two key sets. When one operand is much
// smaller than the other (the asymmetric case blocking produces), the scan
// gallops: it exponentially probes then binary-searches the large side for
// each key of the small side. The legacy map-based kernels are retained
// (MapResemblance, MapWalkProb, MapSymWalkProb) as the reference
// implementation the property tests compare against.
package sim

import (
	"context"
	"math"
	"sync"
	"time"

	"distinct/internal/obs"
	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// gallopFactor is the size ratio beyond which the intersection switches
// from a two-pointer merge to galloping lookups of the small side's keys
// in the large side. Below it, the branch-predictable linear merge wins.
const gallopFactor = 8

// pairAccum computes, in one pass over the intersection of the two sorted
// key sets, every accumulator the similarity measures need:
//
//	interMin = Σ min(Fwd_a(t), Fwd_b(t))   (resemblance numerator)
//	ab       = Σ Fwd_a(t)·Bwd_b(t)         (walk probability a → b)
//	ba       = Σ Fwd_b(t)·Bwd_a(t)         (walk probability b → a)
//
// The intersection is always accumulated in ascending key order, so the
// sums are deterministic and identical between the merge and gallop modes.
func pairAccum(a, b prop.SparseNeighborhood) (interMin, ab, ba float64) {
	ak, bk := a.Keys, b.Keys
	if len(ak) == 0 || len(bk) == 0 {
		return 0, 0, 0
	}
	if len(ak)*gallopFactor < len(bk) {
		return gallopAccum(a, b, false)
	}
	if len(bk)*gallopFactor < len(ak) {
		return gallopAccum(b, a, true)
	}
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		switch {
		case ak[i] < bk[j]:
			i++
		case ak[i] > bk[j]:
			j++
		default:
			fa, fb := a.FBs[i], b.FBs[j]
			// Plain comparison instead of math.Min: Fwd masses are finite
			// and non-negative, so the results are identical and the call
			// (not inlined on all builds) stays off the hottest loop.
			if fa.Fwd < fb.Fwd {
				interMin += fa.Fwd
			} else {
				interMin += fb.Fwd
			}
			ab += fa.Fwd * fb.Bwd
			ba += fb.Fwd * fa.Bwd
			i++
			j++
		}
	}
	return interMin, ab, ba
}

// gallopAccum is pairAccum's asymmetric mode: s is the (much) smaller
// operand, l the larger. swapped records that s is the caller's b, so the
// directed walk sums come out in the caller's orientation.
func gallopAccum(s, l prop.SparseNeighborhood, swapped bool) (interMin, ab, ba float64) {
	lk := l.Keys
	j := 0
	for i, k := range s.Keys {
		j = gallopTo(lk, j, k)
		if j == len(lk) {
			break
		}
		if lk[j] == k {
			fs, fl := s.FBs[i], l.FBs[j]
			if fs.Fwd < fl.Fwd {
				interMin += fs.Fwd
			} else {
				interMin += fl.Fwd
			}
			if swapped {
				ab += fl.Fwd * fs.Bwd
				ba += fs.Fwd * fl.Bwd
			} else {
				ab += fs.Fwd * fl.Bwd
				ba += fl.Fwd * fs.Bwd
			}
			j++
		}
	}
	return interMin, ab, ba
}

// gallopTo returns the smallest index i >= lo with keys[i] >= k, probing
// exponentially from lo and then binary-searching the bracketed window —
// O(log d) in the distance d advanced rather than O(log n) from scratch,
// which is what makes repeated searches over one pass linear overall.
func gallopTo(keys []reldb.TupleID, lo int, k reldb.TupleID) int {
	if lo >= len(keys) || keys[lo] >= k {
		return lo
	}
	// Invariant: keys[lo+step/2] < k (for the step just doubled past).
	step := 1
	for lo+step < len(keys) && keys[lo+step] < k {
		lo += step
		step *= 2
	}
	hi := lo + step
	if hi > len(keys) {
		hi = len(keys)
	}
	lo++ // keys[lo] < k established above
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Resemblance returns the set resemblance between two references'
// neighborhoods along one join path (Definition 2): the weighted Jaccard
// coefficient Σ min(Fwd_a(t), Fwd_b(t)) / Σ max(Fwd_a(t), Fwd_b(t)), where
// the sums range over the intersection and union of the neighborhoods.
// Σ max over the union = SumFwd_a + SumFwd_b − Σ min over the intersection,
// and both SumFwd terms were precomputed when the sparse form was built.
func Resemblance(a, b prop.SparseNeighborhood) float64 {
	if len(a.Keys) == 0 || len(b.Keys) == 0 {
		return 0
	}
	interMin, _, _ := pairAccum(a, b)
	denom := a.SumFwd + b.SumFwd - interMin
	if denom <= 0 {
		return 0
	}
	return interMin / denom
}

// WalkProb returns the directed random walk probability Walk_P(r1 → r2): the
// probability of reaching r2 from r1 by walking the join path to a shared
// neighbor tuple and the reversed path back, i.e. Σ_t Fwd_a(t)·Bwd_b(t).
// Composing the two per-path probabilities avoids re-walking the
// concatenated double-length path, as Section 2.4 of the paper notes.
func WalkProb(a, b prop.SparseNeighborhood) float64 {
	_, ab, _ := pairAccum(a, b)
	return ab
}

// SymWalkProb returns the symmetrised walk probability, the mean of the two
// directions, computed in a single merge-scan.
func SymWalkProb(a, b prop.SparseNeighborhood) float64 {
	_, ab, ba := pairAccum(a, b)
	return (ab + ba) / 2
}

// PairKernel returns every pairwise similarity between two neighborhoods in
// one merge-scan: the set resemblance and both directed walk probabilities.
// The all-pairs stages (core.PathSimilarities, core.Similarities) need all
// three per (pair, path), so fusing them walks the intersection once
// instead of three times.
func PairKernel(a, b prop.SparseNeighborhood) (resem, walkAB, walkBA float64) {
	interMin, ab, ba := pairAccum(a, b)
	if len(a.Keys) != 0 && len(b.Keys) != 0 {
		if denom := a.SumFwd + b.SumFwd - interMin; denom > 0 {
			resem = interMin / denom
		}
	}
	return resem, ab, ba
}

// MapResemblance is the legacy map-based set resemblance. It is the
// reference implementation: the property tests assert the merge-scan
// kernel matches it on randomized neighborhoods.
func MapResemblance(a, b prop.Neighborhood) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	var sumA, sumB, interMin float64
	for _, fb := range a {
		sumA += fb.Fwd
	}
	for _, fb := range b {
		sumB += fb.Fwd
	}
	for t, fs := range small {
		if fl, ok := large[t]; ok {
			interMin += math.Min(fs.Fwd, fl.Fwd)
		}
	}
	// Σ max over the union = Σ_a + Σ_b − Σ min over the intersection.
	denom := sumA + sumB - interMin
	if denom <= 0 {
		return 0
	}
	return interMin / denom
}

// MapWalkProb is the legacy map-based directed walk probability.
func MapWalkProb(a, b prop.Neighborhood) float64 {
	small, large := a, b
	swapped := false
	if len(b) < len(a) {
		small, large = b, a
		swapped = true
	}
	var p float64
	for t, fs := range small {
		if fl, ok := large[t]; ok {
			if swapped {
				p += fl.Fwd * fs.Bwd
			} else {
				p += fs.Fwd * fl.Bwd
			}
		}
	}
	return p
}

// MapSymWalkProb is the legacy map-based symmetrised walk probability.
func MapSymWalkProb(a, b prop.Neighborhood) float64 {
	return (MapWalkProb(a, b) + MapWalkProb(b, a)) / 2
}

// Extractor computes and caches per-reference neighborhoods along a fixed
// set of join paths, and derives per-pair feature vectors from them. Each
// reference's propagation runs once no matter how many pairs it appears in;
// this is what makes all-pairs feature computation affordable (§4.2).
// Neighborhoods are cached in sparse form: built once, read many times.
//
// The cache is guarded by a read-write mutex, so Neighborhoods (and the
// vector methods built on it) may be called from concurrent goroutines
// even for uncached references; concurrent misses of the same reference
// deduplicate to the first result stored.
type Extractor struct {
	db    *reldb.Database
	paths []reldb.JoinPath
	trie  *prop.Trie // shared-prefix walk over all paths at once

	// The compiled CSR plan (see prop.CompiledTrie) is built lazily by the
	// first propagation — or eagerly by CompilePlans — exactly once, then
	// shared read-only by every worker. Each propagation borrows a scratch
	// from the pool, so steady-state propagation does not allocate beyond
	// the neighborhoods it returns.
	planOnce sync.Once
	plan     *prop.CompiledTrie
	planTime time.Duration
	scratch  sync.Pool

	// workers bounds the parallelism of plan compilation (0 means
	// GOMAXPROCS). Set it before the first propagation or CompilePlans
	// call; the engine wires its Config.Workers through here.
	workers int

	// batchPool pools BatchScratch instances for the block kernel, sized to
	// the database's tuple space so the dense reverse index never grows on
	// the warm path.
	batchPool sync.Pool

	mu    sync.RWMutex
	cache map[reldb.TupleID][]prop.SparseNeighborhood

	// Metric handles resolved once by SetMetrics; nil handles (the
	// default) make every update a no-op nil check, keeping the cache's
	// hot path free of registry lookups.
	obs                *obs.Registry
	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	prefetchRequested  *obs.Counter
	prefetchDeduped    *obs.Counter
	prefetchPropagated *obs.Counter
}

// NewExtractor creates an extractor over the given database and join paths.
func NewExtractor(db *reldb.Database, paths []reldb.JoinPath) *Extractor {
	return &Extractor{
		db:    db,
		paths: paths,
		trie:  prop.NewTrie(paths),
		cache: make(map[reldb.TupleID][]prop.SparseNeighborhood),
	}
}

// Paths returns the join paths the extractor computes features for, in
// feature-vector order.
func (e *Extractor) Paths() []reldb.JoinPath { return e.paths }

// SetMetrics points the extractor at an observability registry (nil
// disables, the default): sim.cache_hits / sim.cache_misses count
// Neighborhoods lookups, sim.prefetch_requested / sim.prefetch_deduped /
// sim.prefetch_propagated describe Prefetch batches, and the "prefetch"
// stage records the propagation work itself.
func (e *Extractor) SetMetrics(r *obs.Registry) {
	e.obs = r
	e.cacheHits = r.Counter("sim.cache_hits")
	e.cacheMisses = r.Counter("sim.cache_misses")
	e.prefetchRequested = r.Counter("sim.prefetch_requested")
	e.prefetchDeduped = r.Counter("sim.prefetch_deduped")
	e.prefetchPropagated = r.Counter("sim.prefetch_propagated")
}

// SetWorkers bounds the parallelism of plan compilation (0, the default,
// means GOMAXPROCS). It must be called before the first propagation or
// CompilePlans call; it has no effect once the plan is compiled.
func (e *Extractor) SetWorkers(n int) { e.workers = n }

// compileWith compiles the CSR plan under the sync.Once, observing ctx
// between per-hop compiles (see prop.CompileTrieCtx). Concurrent cold-start
// propagations share one compile; the scratch pool is initialised inside
// the same Once, making it safe to Get after any compiled() call.
func (e *Extractor) compileWith(ctx context.Context) {
	e.planOnce.Do(func() {
		t0 := time.Now()
		plan := prop.CompileTrieCtx(ctx, e.db, e.trie, e.workers)
		e.planTime = time.Since(t0)
		e.scratch.New = func() any { return plan.NewScratch() }
		e.plan = plan
	})
}

// compiled returns the CSR plan, compiling it on first use.
func (e *Extractor) compiled() *prop.CompiledTrie {
	e.compileWith(context.Background())
	return e.plan
}

// CompilePlans forces plan compilation now instead of at the first
// propagation, and reports the plan's size along with how long the compile
// took (zero when the plan already existed). The engine calls it under its
// "compile_plans" stage so the one-off cost is attributed there rather
// than smeared into the first name's latency.
func (e *Extractor) CompilePlans() (hops, edges int, took time.Duration) {
	return e.CompilePlansCtx(context.Background())
}

// CompilePlansCtx is CompilePlans under a context: the parallel per-hop
// warm-up observes ctx between hops, so cancellation is bounded by one hop
// compile. The plan is still fully assembled (serial assembly compiles any
// hop the interrupted warm-up skipped), so the result is always usable;
// cancellation here only stops the speculative parallel work.
func (e *Extractor) CompilePlansCtx(ctx context.Context) (hops, edges int, took time.Duration) {
	e.compileWith(ctx)
	hops, edges = e.plan.Stats()
	return hops, edges, e.planTime
}

// propagate computes one reference's neighborhoods on the compiled plan,
// borrowing a scratch from the pool.
func (e *Extractor) propagate(r reldb.TupleID) []prop.SparseNeighborhood {
	plan := e.compiled()
	s := e.scratch.Get().(*prop.Scratch)
	nbs := plan.Propagate(r, s)
	e.scratch.Put(s)
	return nbs
}

// Neighborhoods returns the reference's neighborhood along every path,
// computing and caching them on first use. All paths are walked in one
// frontier sweep over the compiled CSR plan (see prop.CompiledTrie) and
// emitted directly in sparse form. Safe for concurrent use.
func (e *Extractor) Neighborhoods(r reldb.TupleID) []prop.SparseNeighborhood {
	e.mu.RLock()
	nbs, ok := e.cache[r]
	e.mu.RUnlock()
	if ok {
		e.cacheHits.Inc()
		return nbs
	}
	e.cacheMisses.Inc()
	nbs = e.propagate(r)
	e.mu.Lock()
	if prev, ok := e.cache[r]; ok {
		nbs = prev // lost the race: share the first stored result
	} else {
		e.cache[r] = nbs
	}
	e.mu.Unlock()
	return nbs
}

// NeighborhoodsAll returns Neighborhoods(r) for every reference in refs,
// resolving all cached entries under one lock acquisition instead of one
// per reference. out is reused when large enough (pass nil to allocate).
// References missing from the cache fall back to Neighborhoods, so the
// result is always complete; after a Prefetch of refs the fallback never
// runs. Cache metrics count one hit per cached reference — the same as the
// per-reference calls the batch replaces.
func (e *Extractor) NeighborhoodsAll(refs []reldb.TupleID, out [][]prop.SparseNeighborhood) [][]prop.SparseNeighborhood {
	if cap(out) < len(refs) {
		out = make([][]prop.SparseNeighborhood, len(refs))
	} else {
		out = out[:len(refs)]
	}
	missing := 0
	e.mu.RLock()
	for i, r := range refs {
		nbs, ok := e.cache[r]
		if !ok {
			missing++
		}
		out[i] = nbs // nil marks a miss: cached values are never nil
	}
	e.mu.RUnlock()
	e.cacheHits.Add(int64(len(refs) - missing))
	if missing == 0 {
		return out
	}
	for i, r := range refs {
		if out[i] == nil {
			out[i] = e.Neighborhoods(r) // counts its own hit or miss
		}
	}
	return out
}

// BatchScratch borrows a block-kernel scratch from the extractor's pool,
// sized to the database's tuple space. Pair with PutBatchScratch.
func (e *Extractor) BatchScratch() *BatchScratch {
	if s, ok := e.batchPool.Get().(*BatchScratch); ok {
		return s
	}
	return NewBatchScratch(e.db.NumTuples())
}

// PutBatchScratch returns a scratch to the pool for reuse.
func (e *Extractor) PutBatchScratch(s *BatchScratch) { e.batchPool.Put(s) }

// ResemVector returns the per-path set resemblance feature vector of a pair.
func (e *Extractor) ResemVector(r1, r2 reldb.TupleID) []float64 {
	n1, n2 := e.Neighborhoods(r1), e.Neighborhoods(r2)
	v := make([]float64, len(e.paths))
	for i := range e.paths {
		v[i] = Resemblance(n1[i], n2[i])
	}
	return v
}

// WalkVector returns the per-path symmetrised random walk feature vector.
func (e *Extractor) WalkVector(r1, r2 reldb.TupleID) []float64 {
	n1, n2 := e.Neighborhoods(r1), e.Neighborhoods(r2)
	v := make([]float64, len(e.paths))
	for i := range e.paths {
		v[i] = SymWalkProb(n1[i], n2[i])
	}
	return v
}

// CacheSize reports how many references have cached neighborhoods.
func (e *Extractor) CacheSize() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.cache)
}
