package sim

import (
	"distinct/internal/prop"
)

// This file is the batched counterpart of the pair-at-a-time kernel in
// sim.go: one anchor neighborhood intersected against a whole block of
// candidate neighborhoods in a single scatter/probe pass. PairKernel stays
// the reference implementation — the property tests hold the two within
// 1e-12 (they are in fact bit-identical, which is what keeps the golden
// outputs stable across the switch).
//
// # Layout
//
// The anchor's sorted keys are scattered once into a dense reverse index
// (pos: tuple ID → index into the anchor, -1 when absent), sized by the
// database's tuple space. Each candidate is then a single linear pass over
// its own keys probing pos — no merge branching, no per-pair rewind of the
// anchor. The scatter is O(|anchor|) and amortises over the whole block;
// each probe is O(|candidate|) with one predictable branch per key.
//
// Unscattering walks the anchor's keys again (O(|anchor|), not O(tuple
// space)), so a warm scratch never re-initialises the dense array.
//
// # Equivalence with pairAccum
//
// The probe loop walks the candidate's keys in ascending order, so the
// intersection is accumulated in ascending key order — the same order as
// the two-pointer merge and the gallop modes — with the same float
// expressions. The results are therefore bit-identical to PairKernel, not
// merely within tolerance.
//
// # Skew fallback
//
// When the anchor is much smaller than a candidate, probing every candidate
// key costs O(|candidate|) while galloping costs O(|anchor|·log). The block
// kernel reuses gallopAccum for that regime, under the same size-ratio
// switch as pairAccum (batchGallopFactor; see BenchmarkPairKernelSkew and
// RESULTS.txt for the tuning table). The opposite skew — candidate much
// smaller than anchor — is the probe loop's best case and needs no special
// handling.

// batchGallopFactor is the anchor:candidate size ratio beyond which the
// block kernel abandons the scatter table and gallops the anchor's keys
// through the candidate instead. Benchmarked in BenchmarkPairKernelSkew:
// the dense probe beats the pairwise merge at every ratio where it applies,
// and galloping only wins once the candidate is ≥ ~8x larger than the
// anchor — the same crossover pairAccum's gallopFactor encodes.
const batchGallopFactor = gallopFactor

// Trip is the fused per-pair kernel result: the set resemblance and both
// directed walk probabilities, exactly PairKernel's three return values.
type Trip struct {
	Resem  float64
	WalkAB float64 // anchor → candidate
	WalkBA float64 // candidate → anchor
}

// BatchScratch holds the dense reverse index and reusable gather buffers of
// one block pass. A scratch belongs to one goroutine at a time; reusing it
// (via Extractor.BatchScratch / PutBatchScratch) is what makes the warm
// path allocation-free. The zero value is usable; Block grows pos on
// demand.
type BatchScratch struct {
	// pos maps a tuple ID to its index in the current anchor, -1 when
	// absent. Invariant between Block calls: all -1.
	pos []int32

	// Cands and Out are gather buffers for callers assembling per-path
	// candidate blocks (core's row passes); Block itself does not touch
	// them. Grown by the caller, retained across pool round-trips.
	Cands []prop.SparseNeighborhood
	Out   []Trip
}

// NewBatchScratch returns a scratch whose reverse index covers tuple IDs
// [0, keySpace). Block grows the index if it ever meets a larger key, so
// keySpace is a sizing hint (db.NumTuples()), not a hard bound.
func NewBatchScratch(keySpace int) *BatchScratch {
	s := &BatchScratch{}
	s.grow(keySpace)
	return s
}

// grow extends pos to cover [0, keySpace), filling new entries with -1.
func (s *BatchScratch) grow(keySpace int) {
	if keySpace <= len(s.pos) {
		return
	}
	old := len(s.pos)
	s.pos = append(s.pos, make([]int32, keySpace-old)...)
	for i := old; i < len(s.pos); i++ {
		s.pos[i] = -1
	}
}

// Block computes PairKernel(anchor, cands[k]) for every candidate in one
// scatter/probe pass, writing the k-th result to out[k]. out must be at
// least len(cands) long. Results are bit-identical to calling PairKernel
// pair by pair. The scratch is restored before returning, so Block may be
// called again immediately.
func (s *BatchScratch) Block(anchor prop.SparseNeighborhood, cands []prop.SparseNeighborhood, out []Trip) {
	ak := anchor.Keys
	if len(ak) == 0 {
		for k := range cands {
			out[k] = Trip{}
		}
		return
	}
	// Size the reverse index to the largest key probed. Keys are sorted, so
	// each operand's maximum is its last element. A pool-sized scratch
	// (db.NumTuples()) never grows here.
	maxKey := int(ak[len(ak)-1])
	for _, c := range cands {
		if n := len(c.Keys); n > 0 && int(c.Keys[n-1]) > maxKey {
			maxKey = int(c.Keys[n-1])
		}
	}
	s.grow(maxKey + 1)
	pos := s.pos
	for i, k := range ak {
		pos[k] = int32(i)
	}
	afbs := anchor.FBs
	for ci := range cands {
		b := &cands[ci]
		bk := b.Keys
		if len(bk) == 0 {
			out[ci] = Trip{}
			continue
		}
		var interMin, ab, ba float64
		if len(ak)*batchGallopFactor < len(bk) {
			// Anchor much smaller: gallop its few keys through the large
			// candidate instead of probing every candidate key.
			interMin, ab, ba = gallopAccum(anchor, *b, false)
		} else {
			bfbs := b.FBs
			for k, key := range bk {
				j := pos[key]
				if j < 0 {
					continue
				}
				fa, fb := afbs[j], bfbs[k]
				if fa.Fwd < fb.Fwd {
					interMin += fa.Fwd
				} else {
					interMin += fb.Fwd
				}
				ab += fa.Fwd * fb.Bwd
				ba += fb.Fwd * fa.Bwd
			}
		}
		var resem float64
		if denom := anchor.SumFwd + b.SumFwd - interMin; denom > 0 {
			resem = interMin / denom
		}
		out[ci] = Trip{Resem: resem, WalkAB: ab, WalkBA: ba}
	}
	// Unscatter by walking the anchor's keys — O(|anchor|), leaving the
	// all--1 invariant for the next Block call.
	for _, k := range ak {
		pos[k] = -1
	}
}

// GrowBuffers ensures the gather buffers hold at least n entries, returning
// them truncated to exactly n. Callers fill Cands per path and read Out
// after Block; keeping both on the scratch keeps row passes allocation-free
// once the pool is warm.
func (s *BatchScratch) GrowBuffers(n int) (cands []prop.SparseNeighborhood, out []Trip) {
	if cap(s.Cands) < n {
		s.Cands = make([]prop.SparseNeighborhood, n)
	}
	if cap(s.Out) < n {
		s.Out = make([]Trip, n)
	}
	s.Cands, s.Out = s.Cands[:n], s.Out[:n]
	return s.Cands, s.Out
}
