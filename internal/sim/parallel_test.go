package sim

import (
	"math"
	"testing"

	"distinct/internal/reldb"
)

func TestPrefetchMatchesSequential(t *testing.T) {
	seqExt, refs := extractorFixture(t)
	parExt, _ := extractorFixture(t)

	// Sequential baseline.
	for _, r := range refs {
		seqExt.Neighborhoods(r)
	}
	// Parallel prefetch with duplicates in the input.
	parExt.Prefetch(append(append([]reldb.TupleID(nil), refs...), refs...), 4)
	if parExt.CacheSize() != len(refs) {
		t.Fatalf("cache size %d, want %d", parExt.CacheSize(), len(refs))
	}
	for _, r := range refs {
		a, b := seqExt.Neighborhoods(r), parExt.Neighborhoods(r)
		if len(a) != len(b) {
			t.Fatalf("ref %d: %d vs %d paths", r, len(a), len(b))
		}
		for p := range a {
			if a[p].Len() != b[p].Len() {
				t.Fatalf("ref %d path %d: neighborhood sizes differ", r, p)
			}
			for i, id := range a[p].Keys {
				fb := a[p].FBs[i]
				if pb, ok := b[p].Lookup(id); !ok ||
					math.Abs(pb.Fwd-fb.Fwd) > 1e-15 || math.Abs(pb.Bwd-fb.Bwd) > 1e-15 {
					t.Fatalf("ref %d path %d tuple %d: %+v vs %+v", r, p, id, fb, pb)
				}
			}
		}
	}
}

func TestPrefetchIdempotentAndEmpty(t *testing.T) {
	ext, refs := extractorFixture(t)
	ext.Prefetch(refs, 0) // 0 workers = GOMAXPROCS
	size := ext.CacheSize()
	ext.Prefetch(refs, 2) // everything cached: no-op
	if ext.CacheSize() != size {
		t.Error("second prefetch changed the cache")
	}
	ext.Prefetch(nil, 3) // empty input: no-op
	if ext.CacheSize() != size {
		t.Error("empty prefetch changed the cache")
	}
}

func TestPrefetchSingleWorker(t *testing.T) {
	ext, refs := extractorFixture(t)
	ext.Prefetch(refs, 1)
	if ext.CacheSize() != len(refs) {
		t.Fatalf("cache size %d", ext.CacheSize())
	}
}
