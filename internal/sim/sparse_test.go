package sim

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"distinct/internal/prop"
	"distinct/internal/reldb"
)

// randNB builds a random map neighborhood with size keys drawn from
// [base, base+keyRange).
func randNB(rng *rand.Rand, size, base, keyRange int) prop.Neighborhood {
	n := make(prop.Neighborhood)
	for len(n) < size {
		n[reldb.TupleID(base+rng.Intn(keyRange))] = prop.FB{Fwd: rng.Float64(), Bwd: rng.Float64()}
	}
	return n
}

// TestSparseKernelsMatchMapKernels is the migration property test: on
// randomized neighborhoods — including empty, disjoint, subset, and
// heavily asymmetric-size operands (the case that triggers the galloping
// scan) — the sorted merge-scan kernels must agree with the legacy
// map-based kernels to 1e-12.
func TestSparseKernelsMatchMapKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type gen func() (prop.Neighborhood, prop.Neighborhood)
	cases := map[string]gen{
		"both empty": func() (prop.Neighborhood, prop.Neighborhood) {
			return prop.Neighborhood{}, nil
		},
		"one empty": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 1+rng.Intn(10), 0, 40), nil
		},
		"disjoint": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 1+rng.Intn(10), 0, 100), randNB(rng, 1+rng.Intn(10), 100, 100)
		},
		"overlapping": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 1+rng.Intn(20), 0, 30), randNB(rng, 1+rng.Intn(20), 0, 30)
		},
		"subset": func() (prop.Neighborhood, prop.Neighborhood) {
			a := randNB(rng, 5+rng.Intn(20), 0, 1000)
			b := make(prop.Neighborhood)
			for k := range a {
				if len(b) == 3 {
					break
				}
				b[k] = prop.FB{Fwd: rng.Float64(), Bwd: rng.Float64()}
			}
			return a, b
		},
		"asymmetric 1 vs 400": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 1, 0, 1000), randNB(rng, 400, 0, 1000)
		},
		"asymmetric 3 vs 200": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 3, 0, 600), randNB(rng, 200, 0, 600)
		},
		"asymmetric 200 vs 3": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 200, 0, 600), randNB(rng, 3, 0, 600)
		},
		"asymmetric small at tail": func() (prop.Neighborhood, prop.Neighborhood) {
			return randNB(rng, 2, 900, 100), randNB(rng, 300, 0, 1000)
		},
	}
	const tol = 1e-12
	for name, g := range cases {
		for trial := 0; trial < 50; trial++ {
			am, bm := g()
			a, b := am.Sparse(), bm.Sparse()
			r, ab, ba := PairKernel(a, b)
			checks := []struct {
				what      string
				got, want float64
			}{
				{"Resemblance", Resemblance(a, b), MapResemblance(am, bm)},
				{"Resemblance(rev)", Resemblance(b, a), MapResemblance(bm, am)},
				{"WalkProb", WalkProb(a, b), MapWalkProb(am, bm)},
				{"WalkProb(rev)", WalkProb(b, a), MapWalkProb(bm, am)},
				{"SymWalkProb", SymWalkProb(a, b), MapSymWalkProb(am, bm)},
				{"PairKernel resem", r, MapResemblance(am, bm)},
				{"PairKernel walkAB", ab, MapWalkProb(am, bm)},
				{"PairKernel walkBA", ba, MapWalkProb(bm, am)},
			}
			for _, c := range checks {
				if math.Abs(c.got-c.want) > tol {
					t.Fatalf("%s trial %d: %s = %v, map kernel %v (|Δ| = %g)",
						name, trial, c.what, c.got, c.want, math.Abs(c.got-c.want))
				}
			}
		}
	}
}

// TestGallopTo pins the gallop search helper on its boundary cases.
func TestGallopTo(t *testing.T) {
	keys := []reldb.TupleID{2, 4, 6, 8, 10, 12, 14, 16, 100, 200}
	for _, tc := range []struct {
		lo   int
		k    reldb.TupleID
		want int
	}{
		{0, 1, 0},    // before everything
		{0, 2, 0},    // exact at lo
		{0, 3, 1},    // between
		{0, 16, 7},   // exact after galloping
		{0, 17, 8},   // into the gap
		{0, 201, 10}, // past the end
		{5, 12, 5},   // exact at lo, nonzero lo
		{5, 13, 6},   // advance from nonzero lo
		{9, 200, 9},  // last element
		{10, 5, 10},  // lo already at end
	} {
		if got := gallopTo(keys, tc.lo, tc.k); got != tc.want {
			t.Errorf("gallopTo(lo=%d, k=%d) = %d, want %d", tc.lo, tc.k, got, tc.want)
		}
	}
}

// TestNeighborhoodsConcurrentMiss is the regression test for the cache
// race: many goroutines request uncached neighborhoods concurrently —
// without Prefetch — which used to write the cache map unsynchronized.
// Run under -race (scripts/check.sh does) to detect regressions.
func TestNeighborhoodsConcurrentMiss(t *testing.T) {
	ext, refs := extractorFixture(t)
	want := make([][]prop.SparseNeighborhood, len(refs))
	for i, r := range refs {
		want[i] = prop.PropagateMultiSparse(ext.db, r, ext.trie)
	}

	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Fresh misses every round: goroutines race on the same refs.
				i := (g + round) % len(refs)
				got := ext.Neighborhoods(refs[i])
				for p := range got {
					if got[p].Len() != want[i][p].Len() || got[p].SumFwd != want[i][p].SumFwd {
						errs <- "concurrent Neighborhoods returned a wrong result"
						return
					}
				}
				// Interleave vector calls, which share the same cache path.
				ext.ResemVector(refs[i], refs[(i+1)%len(refs)])
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if ext.CacheSize() != len(refs) {
		t.Fatalf("cache size = %d, want %d", ext.CacheSize(), len(refs))
	}
}
