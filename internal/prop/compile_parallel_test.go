package prop

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"distinct/internal/reldb"
)

// parallelWorld builds a deterministic cyclic world plus a path set large
// enough to exercise multi-worker hop warm-up. Calling it twice with the
// same seed yields two independent but identical databases, so a parallel
// and a serial compile can be compared without sharing a plan cache.
func parallelWorld(seed int64) (*reldb.Database, []reldb.JoinPath, []reldb.TupleID) {
	rng := rand.New(rand.NewSource(seed))
	db := cyclicRandomWorld(rng, cyclicWorldOpts{cyclic: true, dangling: true})
	var paths []reldb.JoinPath
	var starts []reldb.TupleID
	for _, rs := range db.Schema.Relations() {
		if len(rs.ForeignKeys()) == 0 || db.Relation(rs.Name).Size() == 0 {
			continue
		}
		ps := reldb.EnumerateJoinPaths(db.Schema, rs.Name, reldb.EnumerateOptions{MaxLen: 3})
		if len(ps) > 20 {
			ps = ps[:20]
		}
		paths = append(paths, ps...)
		if ids := db.Relation(rs.Name).TupleIDs(); len(ids) > 0 && len(starts) < 6 {
			starts = append(starts, ids[0])
		}
	}
	return db, paths, starts
}

// TestCompileTrieCtxWorkersEquivalence: a multi-worker compile must produce
// the same plan as a serial one — same Stats, and bit-identical propagation
// (the frontier accumulates in a fixed order regardless of how the hop
// plans were warmed).
func TestCompileTrieCtxWorkersEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		dbPar, paths, starts := parallelWorld(seed)
		dbSer, _, _ := parallelWorld(seed)
		trie := NewTrie(paths)
		par := CompileTrieCtx(context.Background(), dbPar, trie, 4)
		ser := CompileTrieCtx(context.Background(), dbSer, trie, 1)
		ph, pe := par.Stats()
		sh, se := ser.Stats()
		if ph != sh || pe != se {
			t.Fatalf("seed %d: parallel Stats = (%d, %d), serial = (%d, %d)", seed, ph, pe, sh, se)
		}
		ps, ss := par.NewScratch(), ser.NewScratch()
		for _, id := range starts {
			got, want := par.Propagate(id, ps), ser.Propagate(id, ss)
			for pi := range want {
				if diffSparse(got[pi], want[pi]) != 0 {
					t.Fatalf("seed %d: start %d path %s: parallel compile diverges from serial",
						seed, id, paths[pi])
				}
			}
		}
	}
}

// TestCompileTrieCtxExactlyOnce: the parallel warm-up claims each distinct
// hop exactly once — the database's compile counter must equal the plan's
// distinct-hop count, with no duplicate compiles from racing workers.
func TestCompileTrieCtxExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db, paths, _ := parallelWorld(3)
			trie := NewTrie(paths)
			ct := CompileTrieCtx(context.Background(), db, trie, workers)
			hops, _ := ct.Stats()
			if got := db.HopCompiles(); got != int64(hops) {
				t.Fatalf("HopCompiles = %d after compile with %d workers, want %d (one per distinct hop)",
					got, workers, hops)
			}
			// Recompiling finds every plan cached.
			CompileTrieCtx(context.Background(), db, trie, workers)
			if got := db.HopCompiles(); got != int64(hops) {
				t.Fatalf("HopCompiles = %d after warm recompile, want %d", got, hops)
			}
		})
	}
}

// TestCompileTrieCtxCancelled: cancellation only stops the speculative
// warm-up; the returned trie is still complete and correct, because the
// serial assembly compiles whatever the workers skipped.
func TestCompileTrieCtxCancelled(t *testing.T) {
	dbCan, paths, starts := parallelWorld(5)
	dbRef, _, _ := parallelWorld(5)
	trie := NewTrie(paths)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any hop is claimed
	got := CompileTrieCtx(ctx, dbCan, trie, 4)
	want := CompileTrie(dbRef, trie)
	gh, ge := got.Stats()
	wh, we := want.Stats()
	if gh != wh || ge != we {
		t.Fatalf("cancelled Stats = (%d, %d), want (%d, %d)", gh, ge, wh, we)
	}
	gs, ws := got.NewScratch(), want.NewScratch()
	for _, id := range starts {
		g, w := got.Propagate(id, gs), want.Propagate(id, ws)
		for pi := range w {
			if diffSparse(g[pi], w[pi]) != 0 {
				t.Fatalf("start %d path %s: cancelled-compile trie diverges", id, paths[pi])
			}
		}
	}
}
