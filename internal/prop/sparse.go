package prop

import (
	"math"
	"sort"

	"distinct/internal/reldb"
)

// SparseNeighborhood is the immutable, read-optimised form of a
// Neighborhood: a sorted sparse vector. Keys holds the neighbor tuple IDs
// in strictly ascending order, FBs the matching probabilities (FBs[i]
// belongs to Keys[i]), and SumFwd the precomputed Σ Fwd over all entries.
//
// The map form (Neighborhood) is what propagation accumulates into — the
// traversal needs random-access upserts. Once a neighborhood is final it is
// only ever read, and every hot read is an intersection with another
// neighborhood: sorted parallel slices make that a linear merge-scan with
// no hashing, no pointer chasing, and a cache-friendly access pattern.
// Precomputing SumFwd at build time makes the Jaccard denominator of
// sim.Resemblance an O(1) lookup instead of a rescan of both operands.
//
// SumFwd is accumulated in ascending key order, so it — like every kernel
// built on the sorted form — is deterministic across runs, unlike sums
// taken in Go map iteration order.
type SparseNeighborhood struct {
	Keys   []reldb.TupleID
	FBs    []FB
	SumFwd float64
}

// Sparse converts the map form into its sorted sparse-vector form.
func (n Neighborhood) Sparse() SparseNeighborhood {
	if len(n) == 0 {
		return SparseNeighborhood{}
	}
	keys := make([]reldb.TupleID, 0, len(n))
	for t := range n {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fbs := make([]FB, len(keys))
	var sum float64
	for i, t := range keys {
		fbs[i] = n[t]
		sum += fbs[i].Fwd
	}
	return SparseNeighborhood{Keys: keys, FBs: fbs, SumFwd: sum}
}

// Len returns the number of neighbor tuples.
func (s SparseNeighborhood) Len() int { return len(s.Keys) }

// Lookup returns the probabilities of one neighbor tuple by binary search.
func (s SparseNeighborhood) Lookup(t reldb.TupleID) (FB, bool) {
	i := sort.Search(len(s.Keys), func(i int) bool { return s.Keys[i] >= t })
	if i < len(s.Keys) && s.Keys[i] == t {
		return s.FBs[i], true
	}
	return FB{}, false
}

// TotalFwd returns the total forward probability mass, precomputed at
// build time (see Neighborhood.TotalFwd).
func (s SparseNeighborhood) TotalFwd() float64 { return s.SumFwd }

// MaxBwd returns the largest backward probability in the neighborhood.
func (s SparseNeighborhood) MaxBwd() float64 {
	m := 0.0
	for _, fb := range s.FBs {
		m = math.Max(m, fb.Bwd)
	}
	return m
}

// Map converts back to the map form; mostly useful in tests.
func (s SparseNeighborhood) Map() Neighborhood {
	if s.Keys == nil {
		return nil
	}
	n := make(Neighborhood, len(s.Keys))
	for i, t := range s.Keys {
		n[t] = s.FBs[i]
	}
	return n
}

// PropagateSparse is Propagate finalised into the sparse form.
func PropagateSparse(db *reldb.Database, start reldb.TupleID, path reldb.JoinPath) SparseNeighborhood {
	return Propagate(db, start, path).Sparse()
}

// PropagateMultiSparse is PropagateMulti with each per-path result
// finalised into the sparse form.
func PropagateMultiSparse(db *reldb.Database, start reldb.TupleID, t *Trie) []SparseNeighborhood {
	nbs := PropagateMulti(db, start, t)
	out := make([]SparseNeighborhood, len(nbs))
	for i, nb := range nbs {
		out[i] = nb.Sparse()
	}
	return out
}
