package prop

import (
	"math"
	"math/rand"
	"testing"

	"distinct/internal/reldb"
)

func TestSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := make(Neighborhood)
		for i := 0; i < rng.Intn(30); i++ {
			n[reldb.TupleID(rng.Intn(100))] = FB{Fwd: rng.Float64(), Bwd: rng.Float64()}
		}
		s := n.Sparse()
		if s.Len() != len(n) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(n))
		}
		for i := 1; i < len(s.Keys); i++ {
			if s.Keys[i-1] >= s.Keys[i] {
				t.Fatal("keys not strictly ascending")
			}
		}
		for id, fb := range n {
			got, ok := s.Lookup(id)
			if !ok || got != fb {
				t.Fatalf("Lookup(%d) = %+v, %v; want %+v", id, got, ok, fb)
			}
		}
		if _, ok := s.Lookup(reldb.TupleID(1000)); ok {
			t.Fatal("Lookup of absent key succeeded")
		}
		if math.Abs(s.TotalFwd()-n.TotalFwd()) > 1e-12 {
			t.Fatalf("TotalFwd = %v, map %v", s.TotalFwd(), n.TotalFwd())
		}
		if math.Abs(s.MaxBwd()-n.MaxBwd()) > 1e-12 {
			t.Fatalf("MaxBwd = %v, map %v", s.MaxBwd(), n.MaxBwd())
		}
		back := s.Map()
		if len(back) != len(n) {
			t.Fatalf("Map round trip has %d entries, want %d", len(back), len(n))
		}
		for id, fb := range n {
			if back[id] != fb {
				t.Fatalf("round trip lost %d", id)
			}
		}
	}
}

func TestSparseEmptyAndNil(t *testing.T) {
	var nilNB Neighborhood
	s := nilNB.Sparse()
	if s.Len() != 0 || s.SumFwd != 0 {
		t.Fatalf("nil sparse = %+v", s)
	}
	if s.Map() != nil {
		t.Fatal("empty sparse should map back to nil")
	}
	if s.MaxBwd() != 0 {
		t.Fatal("empty MaxBwd != 0")
	}
	if _, ok := s.Lookup(0); ok {
		t.Fatal("Lookup on empty succeeded")
	}
}

// TestPropagateSparseMatchesPropagate: the sparse propagation entry points
// are exactly the map ones, finalised.
func TestPropagateSparseMatchesPropagate(t *testing.T) {
	db, refMap := miniDB(t)
	var refs []reldb.TupleID
	for _, r := range refMap {
		refs = append(refs, r)
	}
	paths := []reldb.JoinPath{
		coauthorPath(),
		{Start: "Publish", Steps: []reldb.Step{
			{Rel: "Publish", Attr: "paper-key", Forward: true},
			{Rel: "Publications", Attr: "proc-key", Forward: true},
		}},
	}
	trie := NewTrie(paths)
	for _, r := range refs {
		multi := PropagateMultiSparse(db, r, trie)
		if len(multi) != len(paths) {
			t.Fatalf("PropagateMultiSparse returned %d paths, want %d", len(multi), len(paths))
		}
		for pi, p := range paths {
			want := Propagate(db, r, p)
			for _, got := range []SparseNeighborhood{PropagateSparse(db, r, p), multi[pi]} {
				if got.Len() != len(want) {
					t.Fatalf("ref %d path %d: %d neighbors, want %d", r, pi, got.Len(), len(want))
				}
				for id, fb := range want {
					g, ok := got.Lookup(id)
					if !ok || g != fb {
						t.Fatalf("ref %d path %d tuple %d: %+v vs %+v", r, pi, id, g, fb)
					}
				}
				if math.Abs(got.SumFwd-want.TotalFwd()) > 1e-12 {
					t.Fatalf("ref %d path %d: SumFwd %v, want %v", r, pi, got.SumFwd, want.TotalFwd())
				}
			}
		}
	}
}
