package prop

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"distinct/internal/reldb"
)

// randomSchemaWorld generates a random but valid relational world: a DAG
// of relations where each relation may reference earlier ones, with random
// plain attributes and random tuples. It exercises the substrate the way
// arbitrary user schemas would.
func randomSchemaWorld(rng *rand.Rand) *reldb.Database {
	nRels := 3 + rng.Intn(4)
	var schemas []*reldb.RelationSchema
	type fkSpec struct{ rel, attr string }
	var fks []fkSpec
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("R%d", i)
		attrs := []reldb.Attribute{{Name: "k", Key: true}}
		for a := 0; a < rng.Intn(3); a++ {
			attrs = append(attrs, reldb.Attribute{Name: fmt.Sprintf("v%d", a)})
		}
		if i > 0 {
			for f := 0; f < 1+rng.Intn(2); f++ {
				target := fmt.Sprintf("R%d", rng.Intn(i))
				attr := fmt.Sprintf("f%d", f)
				attrs = append(attrs, reldb.Attribute{Name: attr, FK: target})
				fks = append(fks, fkSpec{rel: name, attr: attr})
			}
		}
		schemas = append(schemas, reldb.MustRelationSchema(name, attrs...))
	}
	db := reldb.NewDatabase(reldb.MustSchema(schemas...))

	// Populate bottom-up so FK targets exist.
	keys := make(map[string][]string)
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("R%d", i)
		rs := db.Schema.Relation(name)
		n := 2 + rng.Intn(8)
		for t := 0; t < n; t++ {
			vals := make([]reldb.Value, len(rs.Attrs))
			for ai, a := range rs.Attrs {
				switch {
				case a.Key:
					vals[ai] = fmt.Sprintf("%s-%d", name, t)
				case a.FK != "":
					targets := keys[a.FK]
					vals[ai] = targets[rng.Intn(len(targets))]
				default:
					vals[ai] = fmt.Sprintf("val%d", rng.Intn(4))
				}
			}
			db.MustInsert(name, vals...)
			keys[name] = append(keys[name], fmt.Sprintf("%s-%d", name, t))
		}
	}
	return db
}

// TestRandomSchemasEndToEnd checks the substrate invariants on random
// schemas: path enumeration validity, expansion integrity, probability
// conservation, and trie/single propagation equivalence.
func TestRandomSchemasEndToEnd(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomSchemaWorld(rng)

		// Expansion: every plain attribute becomes a value relation, all
		// FKs resolve, idMap is complete.
		ex, idMap, err := reldb.ExpandAttributes(db)
		if err != nil {
			t.Fatalf("seed %d: expansion: %v", seed, err)
		}
		if len(idMap) != db.NumTuples() {
			t.Fatalf("seed %d: idMap incomplete", seed)
		}
		for _, rs := range ex.Schema.Relations() {
			rel := ex.Relation(rs.Name)
			for _, fi := range rs.ForeignKeys() {
				for _, id := range rel.TupleIDs() {
					if ex.LookupKey(rs.Attrs[fi].FK, ex.Tuple(id).Vals[fi]) == reldb.InvalidTuple {
						t.Fatalf("seed %d: dangling FK in expanded db", seed)
					}
				}
			}
		}

		// Pick a start relation that owns at least one FK.
		var start string
		for _, rs := range ex.Schema.Relations() {
			if len(rs.ForeignKeys()) > 0 && ex.Relation(rs.Name).Size() > 0 {
				start = rs.Name
				break
			}
		}
		if start == "" {
			continue
		}
		paths := reldb.EnumerateJoinPaths(ex.Schema, start, reldb.EnumerateOptions{MaxLen: 3})
		for _, p := range paths {
			if err := p.Validate(ex.Schema); err != nil {
				t.Fatalf("seed %d: invalid path %s: %v", seed, p, err)
			}
		}
		if len(paths) == 0 {
			continue
		}

		trie := NewTrie(paths)
		ids := ex.Relation(start).TupleIDs()
		for _, id := range ids[:min(3, len(ids))] {
			multi := PropagateMulti(ex, id, trie)
			for pi, p := range paths {
				single := Propagate(ex, id, p)
				if !reflect.DeepEqual(single, multi[pi]) {
					t.Fatalf("seed %d: trie mismatch on %s", seed, p)
				}
				if tf := single.TotalFwd(); tf > 1+1e-9 {
					t.Fatalf("seed %d: forward mass %v > 1 on %s", seed, tf, p)
				}
				for _, fb := range single {
					if fb.Fwd <= 0 || fb.Bwd <= 0 || fb.Fwd > 1+1e-9 || fb.Bwd > 1+1e-9 {
						t.Fatalf("seed %d: out-of-range probability %+v", seed, fb)
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
