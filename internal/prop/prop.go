// Package prop implements probability propagation along join paths
// (DISTINCT, Section 2.2). For a reference r and a join path P it computes,
// for every neighbor tuple t in NB_P(r), both
//
//   - Prob_P(r → t): the probability of reaching t from r by walking P,
//     splitting probability mass uniformly over joinable tuples at each hop,
//     and
//   - Prob_P̄(t → r): the probability of reaching r from t by walking the
//     reverse path, again splitting uniformly at each hop.
//
// Both quantities fall out of a single depth-first traversal, exactly as
// Figure 3 of the paper sketches: a path instance (r = t0, t1, …, tk = t)
// contributes Π 1/fanout(t_{i-1}) to the forward probability and
// Π 1/revFanout(t_i) to the backward probability, where revFanout counts
// the tuples joinable with t_i across the inverted i-th step.
//
// The forward walker never steps back to the tuple it arrived from (a
// reference's own authorship tuple must not count as its own coauthor); the
// backward fanout is taken over all joinable tuples, matching the worked
// numbers in the paper's Figure 3.
package prop

import (
	"math"
	"slices"

	"distinct/internal/reldb"
)

// FB holds the two directed probabilities between a reference and one of its
// neighbor tuples.
type FB struct {
	Fwd float64 // Prob_P(reference → tuple)
	Bwd float64 // Prob_P̄(tuple → reference)
}

// Neighborhood maps each neighbor tuple of a reference (along one join path)
// to its forward/backward probabilities. It is the unit both similarity
// measures consume.
type Neighborhood map[reldb.TupleID]FB

// TotalFwd returns the total forward probability mass that reached the end
// relation. It is exactly 1 unless some intermediate tuple had no joinable
// continuation (a dead end), in which case that branch's mass is lost.
// The sum runs in ascending key order — not Go's randomised map order — so
// repeated calls (and debug output built on them) are bit-identical, and
// the value matches the sparse form's SumFwd exactly.
func (n Neighborhood) TotalFwd() float64 {
	var s float64
	for _, k := range n.sortedKeys() {
		s += n[k].Fwd
	}
	return s
}

// MaxBwd returns the largest backward probability in the neighborhood.
// Iteration is in sorted key order like TotalFwd; max is order-independent,
// but keeping one iteration discipline means every derived debug value is
// reproducible by construction.
func (n Neighborhood) MaxBwd() float64 {
	m := 0.0
	for _, k := range n.sortedKeys() {
		m = math.Max(m, n[k].Bwd)
	}
	return m
}

// sortedKeys returns the neighbor tuple IDs in ascending order.
func (n Neighborhood) sortedKeys() []reldb.TupleID {
	keys := make([]reldb.TupleID, 0, len(n))
	for t := range n {
		keys = append(keys, t)
	}
	slices.Sort(keys)
	return keys
}

// Propagate walks the join path from the tuple containing the reference and
// returns its neighborhood. The path must be valid for db's schema and must
// start at the relation containing start; otherwise the result is empty.
func Propagate(db *reldb.Database, start reldb.TupleID, path reldb.JoinPath) Neighborhood {
	if db.Tuple(start).Rel.Name != path.Start || len(path.Steps) == 0 {
		return nil
	}
	nb := make(Neighborhood)
	var buf []reldb.TupleID
	var walk func(cur, cameFrom reldb.TupleID, depth int, fwd, bwd float64)
	walk = func(cur, cameFrom reldb.TupleID, depth int, fwd, bwd float64) {
		if depth == len(path.Steps) {
			fb := nb[cur]
			fb.Fwd += fwd
			fb.Bwd += bwd
			nb[cur] = fb
			return
		}
		step := path.Steps[depth]
		buf = db.Joinable(cur, step, cameFrom, buf[:0])
		if len(buf) == 0 {
			return
		}
		split := fwd / float64(len(buf))
		// Joinable appends into the shared buffer, so copy before recursing.
		next := make([]reldb.TupleID, len(buf))
		copy(next, buf)
		for _, t := range next {
			rev := db.JoinFanout(t, step.Inverse())
			if rev == 0 {
				// Unreachable when t was just reached across this edge, but
				// guard against division by zero on malformed data.
				continue
			}
			walk(t, cur, depth+1, split, bwd/float64(rev))
		}
	}
	walk(start, reldb.InvalidTuple, 0, 1, 1)
	return nb
}

// PropagateAll computes the neighborhoods of several references along one
// path, in input order.
func PropagateAll(db *reldb.Database, refs []reldb.TupleID, path reldb.JoinPath) []Neighborhood {
	out := make([]Neighborhood, len(refs))
	for i, r := range refs {
		out[i] = Propagate(db, r, path)
	}
	return out
}
