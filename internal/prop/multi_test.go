package prop

import (
	"reflect"
	"testing"

	"distinct/internal/reldb"
)

// dblpPaths enumerates realistic paths for the test schema.
func dblpPaths(s *reldb.Schema) []reldb.JoinPath {
	return reldb.EnumerateJoinPaths(s, "Publish", reldb.EnumerateOptions{
		MaxLen: 4,
		ExcludeFirst: []reldb.Step{
			{Rel: "Publish", Attr: "author", Forward: true},
		},
	})
}

// TestPropagateMultiMatchesSingle is the central equivalence check: the
// trie walk must return bit-identical neighborhoods to per-path Propagate.
func TestPropagateMultiMatchesSingle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		db, refs := buildRandomWorld(seed)
		paths := dblpPaths(db.Schema)
		if len(paths) < 5 {
			t.Fatalf("only %d paths enumerated", len(paths))
		}
		trie := NewTrie(paths)
		for _, r := range refs {
			multi := PropagateMulti(db, r, trie)
			for pi, p := range paths {
				single := Propagate(db, r, p)
				if !reflect.DeepEqual(single, multi[pi]) {
					t.Fatalf("seed %d ref %d path %s: single %v != multi %v",
						seed, r, p, single, multi[pi])
				}
			}
		}
	}
}

func TestTrieSharesPrefixes(t *testing.T) {
	db, _ := buildRandomWorld(1)
	paths := dblpPaths(db.Schema)
	trie := NewTrie(paths)
	totalSteps := 0
	for _, p := range paths {
		totalSteps += p.Len()
	}
	nodes := trie.NumNodes()
	if nodes >= totalSteps {
		t.Errorf("trie has %d nodes for %d total path steps; no prefix sharing", nodes, totalSteps)
	}
	t.Logf("paths=%d total steps=%d trie nodes=%d (%.0f%% shared)",
		len(paths), totalSteps, nodes, 100*(1-float64(nodes)/float64(totalSteps)))
}

func TestPropagateMultiWrongStart(t *testing.T) {
	db, _ := buildRandomWorld(2)
	paths := dblpPaths(db.Schema)
	trie := NewTrie(paths)
	author := db.LookupKey("Authors", "aA")
	out := PropagateMulti(db, author, trie)
	for pi, nb := range out {
		if nb != nil {
			t.Fatalf("path %d produced a neighborhood from the wrong relation", pi)
		}
	}
}

func TestNewTrieIgnoresEmptyPaths(t *testing.T) {
	db, refs := buildRandomWorld(3)
	paths := append([]reldb.JoinPath{{Start: "Publish"}}, dblpPaths(db.Schema)...)
	trie := NewTrie(paths)
	out := PropagateMulti(db, refs[0], trie)
	// The empty path matches the start relation but has no steps; Propagate
	// would return nil for it, and PropagateMulti leaves it nil too.
	if out[0] != nil && len(out[0]) != 0 {
		t.Errorf("empty path produced %v", out[0])
	}
}

func BenchmarkPropagateSinglePaths(b *testing.B) {
	db, refs := buildRandomWorld(5)
	paths := dblpPaths(db.Schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[i%len(refs)]
		for _, p := range paths {
			Propagate(db, r, p)
		}
	}
}

func BenchmarkPropagateMultiTrie(b *testing.B) {
	db, refs := buildRandomWorld(5)
	trie := NewTrie(dblpPaths(db.Schema))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PropagateMulti(db, refs[i%len(refs)], trie)
	}
}
