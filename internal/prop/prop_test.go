package prop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distinct/internal/reldb"
)

func dblpSchema() *reldb.Schema {
	return reldb.MustSchema(
		reldb.MustRelationSchema("Authors", reldb.Attribute{Name: "author", Key: true}),
		reldb.MustRelationSchema("Publish",
			reldb.Attribute{Name: "author", FK: "Authors"},
			reldb.Attribute{Name: "paper-key", FK: "Publications"},
		),
		reldb.MustRelationSchema("Publications",
			reldb.Attribute{Name: "paper-key", Key: true},
			reldb.Attribute{Name: "proc-key", FK: "Proceedings"},
		),
		reldb.MustRelationSchema("Proceedings",
			reldb.Attribute{Name: "proc-key", Key: true},
			reldb.Attribute{Name: "conference", FK: "Conferences"},
		),
		reldb.MustRelationSchema("Conferences",
			reldb.Attribute{Name: "conference", Key: true}),
	)
}

// miniDB: p1 at vldb97 by {wei, jiong}; p2 at sigmod02 by {wei, jiong, haixun}.
func miniDB(t testing.TB) (*reldb.Database, map[string]reldb.TupleID) {
	t.Helper()
	db := reldb.NewDatabase(dblpSchema())
	for _, a := range []string{"wei", "jiong", "haixun"} {
		db.MustInsert("Authors", a)
	}
	db.MustInsert("Conferences", "VLDB")
	db.MustInsert("Conferences", "SIGMOD")
	db.MustInsert("Proceedings", "vldb97", "VLDB")
	db.MustInsert("Proceedings", "sigmod02", "SIGMOD")
	db.MustInsert("Publications", "p1", "vldb97")
	db.MustInsert("Publications", "p2", "sigmod02")
	refs := map[string]reldb.TupleID{
		"wei@p1":    db.MustInsert("Publish", "wei", "p1"),
		"jiong@p1":  db.MustInsert("Publish", "jiong", "p1"),
		"wei@p2":    db.MustInsert("Publish", "wei", "p2"),
		"jiong@p2":  db.MustInsert("Publish", "jiong", "p2"),
		"haixun@p2": db.MustInsert("Publish", "haixun", "p2"),
	}
	return db, refs
}

func coauthorPath() reldb.JoinPath {
	return reldb.JoinPath{Start: "Publish", Steps: []reldb.Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publish", Attr: "paper-key", Forward: false},
		{Rel: "Publish", Attr: "author", Forward: true},
	}}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPropagateCoauthorsHandComputed(t *testing.T) {
	db, refs := miniDB(t)
	path := coauthorPath()
	if err := path.Validate(db.Schema); err != nil {
		t.Fatal(err)
	}

	// From wei@p1 the only coauthor is jiong, via p1.
	nb := Propagate(db, refs["wei@p1"], path)
	if len(nb) != 1 {
		t.Fatalf("wei@p1 coauthors = %d tuples, want 1", len(nb))
	}
	jiong := db.LookupKey("Authors", "jiong")
	fb, ok := nb[jiong]
	if !ok {
		t.Fatal("jiong missing from neighborhood")
	}
	// Forward: p1 has one other authorship -> prob 1, then one author -> 1.
	if !approx(fb.Fwd, 1.0) {
		t.Errorf("Fwd(wei@p1 -> jiong) = %v, want 1", fb.Fwd)
	}
	// Backward: jiong has 2 authorships (1/2), its authorship maps to p1
	// with fanout 1, p1 has 2 authorships (1/2): total 1/4.
	if !approx(fb.Bwd, 0.25) {
		t.Errorf("Bwd(jiong -> wei@p1) = %v, want 0.25", fb.Bwd)
	}

	// From wei@p2 the coauthors are jiong and haixun, each forward 1/2.
	nb = Propagate(db, refs["wei@p2"], path)
	haixun := db.LookupKey("Authors", "haixun")
	if !approx(nb[haixun].Fwd, 0.5) || !approx(nb[jiong].Fwd, 0.5) {
		t.Errorf("Fwd from wei@p2: haixun %v jiong %v, want 0.5 each", nb[haixun].Fwd, nb[jiong].Fwd)
	}
	// Backward to wei@p2: haixun has 1 authorship (1), paper fanout 1,
	// p2 has 3 authorships (1/3): 1/3. jiong has 2 authorships: 1/6.
	if !approx(nb[haixun].Bwd, 1.0/3) {
		t.Errorf("Bwd(haixun -> wei@p2) = %v, want 1/3", nb[haixun].Bwd)
	}
	if !approx(nb[jiong].Bwd, 1.0/6) {
		t.Errorf("Bwd(jiong -> wei@p2) = %v, want 1/6", nb[jiong].Bwd)
	}
	if !approx(nb.TotalFwd(), 1.0) {
		t.Errorf("TotalFwd = %v, want 1", nb.TotalFwd())
	}
	if got := nb.MaxBwd(); !approx(got, 1.0/3) {
		t.Errorf("MaxBwd = %v, want 1/3", got)
	}
}

func TestPropagateConferencePath(t *testing.T) {
	db, refs := miniDB(t)
	path := reldb.JoinPath{Start: "Publish", Steps: []reldb.Step{
		{Rel: "Publish", Attr: "paper-key", Forward: true},
		{Rel: "Publications", Attr: "proc-key", Forward: true},
		{Rel: "Proceedings", Attr: "conference", Forward: true},
	}}
	nb := Propagate(db, refs["wei@p1"], path)
	vldb := db.LookupKey("Conferences", "VLDB")
	fb, ok := nb[vldb]
	if !ok || len(nb) != 1 {
		t.Fatalf("neighborhood = %v", nb)
	}
	if !approx(fb.Fwd, 1.0) {
		t.Errorf("Fwd = %v", fb.Fwd)
	}
	// Reverse from VLDB: 1 proceedings (1), 1 publication (1), 2 authorships (1/2).
	if !approx(fb.Bwd, 0.5) {
		t.Errorf("Bwd = %v, want 0.5", fb.Bwd)
	}
}

func TestPropagateDeadEnd(t *testing.T) {
	db := reldb.NewDatabase(dblpSchema())
	db.MustInsert("Authors", "solo")
	db.MustInsert("Conferences", "VLDB")
	db.MustInsert("Proceedings", "vldb97", "VLDB")
	db.MustInsert("Publications", "p1", "vldb97")
	ref := db.MustInsert("Publish", "solo", "p1")
	// Single-author paper: the coauthor walk dead-ends at the paper because
	// stepping back to the origin authorship is forbidden.
	nb := Propagate(db, ref, coauthorPath())
	if len(nb) != 0 {
		t.Fatalf("solo paper produced coauthors: %v", nb)
	}
	if nb.TotalFwd() != 0 {
		t.Error("dead-end walk retained probability mass")
	}
}

func TestPropagateInvalidInputs(t *testing.T) {
	db, _ := miniDB(t)
	author := db.LookupKey("Authors", "wei")
	if nb := Propagate(db, author, coauthorPath()); nb != nil {
		t.Error("propagation from wrong relation returned a neighborhood")
	}
	ref := db.Relation("Publish").TupleIDs()[0]
	if nb := Propagate(db, ref, reldb.JoinPath{Start: "Publish"}); nb != nil {
		t.Error("propagation along empty path returned a neighborhood")
	}
}

func TestPropagateAllOrder(t *testing.T) {
	db, refs := miniDB(t)
	ids := []reldb.TupleID{refs["wei@p1"], refs["wei@p2"]}
	nbs := PropagateAll(db, ids, coauthorPath())
	if len(nbs) != 2 {
		t.Fatalf("got %d neighborhoods", len(nbs))
	}
	if len(nbs[0]) != 1 || len(nbs[1]) != 2 {
		t.Errorf("sizes = %d,%d want 1,2", len(nbs[0]), len(nbs[1]))
	}
}

// buildRandomWorld creates a random multi-author world: every paper has at
// least 2 authors, so the coauthor walk has no dead ends.
func buildRandomWorld(seed int64) (*reldb.Database, []reldb.TupleID) {
	rng := rand.New(rand.NewSource(seed))
	db := reldb.NewDatabase(dblpSchema())
	nAuthors := 3 + rng.Intn(10)
	nPapers := 2 + rng.Intn(12)
	authors := make([]string, nAuthors)
	for i := range authors {
		authors[i] = "a" + string(rune('A'+i))
		db.MustInsert("Authors", authors[i])
	}
	db.MustInsert("Conferences", "C")
	db.MustInsert("Proceedings", "pr", "C")
	var refs []reldb.TupleID
	for p := 0; p < nPapers; p++ {
		key := "p" + string(rune('0'+p))
		db.MustInsert("Publications", key, "pr")
		k := 2 + rng.Intn(nAuthors-1)
		perm := rng.Perm(nAuthors)[:k]
		for _, ai := range perm {
			refs = append(refs, db.MustInsert("Publish", authors[ai], key))
		}
	}
	return db, refs
}

// TestPropagateConservation is the core probability invariant: on worlds
// without dead ends, the forward mass reaching the end relation is exactly 1
// and every backward probability lies in (0, 1].
func TestPropagateConservation(t *testing.T) {
	f := func(seed int64) bool {
		db, refs := buildRandomWorld(seed)
		path := coauthorPath()
		for _, r := range refs {
			nb := Propagate(db, r, path)
			if math.Abs(nb.TotalFwd()-1.0) > 1e-9 {
				t.Logf("seed %d: TotalFwd = %v", seed, nb.TotalFwd())
				return false
			}
			for _, fb := range nb {
				if fb.Fwd <= 0 || fb.Fwd > 1+1e-9 || fb.Bwd <= 0 || fb.Bwd > 1+1e-9 {
					t.Logf("seed %d: out-of-range probs %+v", seed, fb)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropagateBackwardConsistency checks that Bwd really is the forward
// probability of the reversed walk: for the conference path (which has no
// tuple-level backtracking), propagating forward from the conference tuple
// along the reversed path must reproduce Bwd.
func TestPropagateBackwardConsistency(t *testing.T) {
	f := func(seed int64) bool {
		db, refs := buildRandomWorld(seed)
		path := reldb.JoinPath{Start: "Publish", Steps: []reldb.Step{
			{Rel: "Publish", Attr: "paper-key", Forward: true},
			{Rel: "Publications", Attr: "proc-key", Forward: true},
			{Rel: "Proceedings", Attr: "conference", Forward: true},
		}}
		rev := path.Reverse(db.Schema)
		for _, r := range refs[:1] {
			nb := Propagate(db, r, path)
			for tID, fb := range nb {
				back := Propagate(db, tID, rev)
				got := back[r].Fwd
				if math.Abs(got-fb.Bwd) > 1e-9 {
					t.Logf("seed %d: Bwd=%v but reverse-walk Fwd=%v", seed, fb.Bwd, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
