package prop

import (
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"distinct/internal/reldb"
)

// This file is the compiled counterpart of multi.go: the same path prefix
// trie, but walked level by level over CSR hop plans (reldb.HopCSR) instead
// of tuple by tuple through hash indexes. The recursive map-DFS remains the
// reference implementation; compiled_test.go holds the two within 1e-12 of
// each other on random schemas, including cyclic ones.
//
// # Frontier propagation
//
// At each trie node the engine holds a frontier: the distinct tuples
// (as dense relation ordinals) reached after the node's step, with the
// aggregated forward mass F and backward mass B of every DFS path instance
// ending there. One pass over the frontier's CSR rows produces the child
// frontier — O(edges touched) with sequential array access, instead of one
// hash lookup and one interface call per DFS edge visit.
//
// # The no-backtrack rule, per edge instead of per instance
//
// The DFS forbids stepping straight back to the tuple it arrived from. At
// the aggregated level that rule depends on where mass came from, so node
// totals alone are not enough: when a hop can mirror its parent hop (the
// child steps back into the relation the parent left — the coauthor-style
// "bounce"), the engine also keeps the parent hop's per-edge masses. For a
// frontier tuple t with out-degree d0, aggregated masses (F, B), bounce
// in-mass Fx = Σ parent-edge mass arriving over mirrors of t's out-edges,
// and an out-edge g: t→v whose mirror v→t carried (f_v, b_v):
//
//	mF(g) = (F − Fx)/d0 + (Fx − f_v)/(d0 − 1)
//	mB(g) = (B − b_v) / rev(v)
//
// Mass that did not arrive from an out-neighbor splits over all d0 edges;
// mass that arrived from out-neighbor v' splits over the d0 − 1 edges that
// exclude v'; and v's own returning mass (f_v, b_v) contributes nothing.
// For an edge with no mirror, f_v = b_v = 0 and the correction term becomes
// Fx/(d0 − 1). When d0 == 1 the correction term is mathematically zero
// (Fx == f_v: the only possible bounce origin is the single out-neighbor)
// and is skipped, avoiding the 0/0. The per-edge masses are exact sums of
// the DFS instance masses up to floating-point association, which is why
// equivalence is 1e-12, not bit-identical.
//
// Cancellation in F − Fx can leave a pure-backtrack edge with a few ULPs of
// spurious — possibly negative — mass; edges with mF ≤ 0 are dropped (every
// DFS-traversed edge carries strictly positive forward mass) and a negative
// B − b_v clamps to zero.
//
// # Determinism
//
// The frontier is deterministic: rows are visited in ordinal order and
// edges in row order, so every float is accumulated in one fixed order
// regardless of worker count. Emission sorts the final frontier's ordinals;
// ordinal order within a relation is ascending TupleID order, so the
// SparseNeighborhood comes out sorted, with SumFwd accumulated in key order
// exactly like Neighborhood.Sparse.

// ctNode is one compiled trie node.
type ctNode struct {
	hop      *reldb.HopCSR
	backRef  []int32 // mirror-edge indexes into the parent hop, nil if none
	terminal []int32 // path indexes ending here
	children []int32
	depth    int32
	// storeEdges: some child can bounce, so this node must record per-edge
	// masses for the child's exclusion arithmetic.
	storeEdges bool
	// dead: the step cannot chain after the parent (relation mismatch in a
	// hand-built path); the subtree can never carry mass and is skipped.
	dead bool
}

// CompiledTrie is a Trie bound to one database's CSR hop plans. It is
// immutable after compilation and shared read-only across goroutines; all
// per-propagation state lives in a Scratch.
type CompiledTrie struct {
	db    *reldb.Database
	paths []reldb.JoinPath
	nodes []ctNode
	roots []int32

	maxDepth int
	posLen   []int // per depth: ordinal-index size (max target relation size)
	edgeLen  []int // per depth: edge-buffer size (max edges of storing nodes)

	statHops, statEdges int
}

// CompileTrie compiles the trie against db, fetching hop plans from the
// database's shared cache (compiled lazily, each hop once per database).
func CompileTrie(db *reldb.Database, t *Trie) *CompiledTrie {
	return CompileTrieCtx(context.Background(), db, t, 0)
}

// CompileTrieCtx is CompileTrie with the per-hop compiles farmed over
// `workers` goroutines (0 means GOMAXPROCS). Per-hop compiles are
// independent, so the warm-up claims hops exactly once (an atomic index)
// and observes ctx between hops; the serial assembly then finds every plan
// already in the database's cache. A cancelled context only stops the
// speculative parallel work — assembly compiles whatever the warm-up
// skipped, so the returned trie is always complete and correct.
func CompileTrieCtx(ctx context.Context, db *reldb.Database, t *Trie, workers int) *CompiledTrie {
	warmHops(ctx, distinctHops(db, t), workers, db.HopFor)
	return compileTrie(db, t, db.HopFor)
}

// CompileTrieUncached is CompileTrie bypassing the database's plan cache:
// every hop is compiled fresh. It exists so compilation cost itself can be
// measured (BenchmarkPlanCompile) and tested without cache warm-up effects.
//
// Like the cached path, each distinct (source relation, step) hop is
// compiled exactly once per call — that is what an engine open through
// Database.HopFor costs — and the distinct compiles run on GOMAXPROCS
// workers when more than one is available.
func CompileTrieUncached(db *reldb.Database, t *Trie) *CompiledTrie {
	hops := distinctHops(db, t)
	plans := make([]*reldb.HopCSR, len(hops))
	compileAt := func(i int) { plans[i] = reldb.CompileHop(db, hops[i].from, hops[i].step) }
	if workers := min(runtime.GOMAXPROCS(0), len(hops)); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(hops) {
						return
					}
					compileAt(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range hops {
			compileAt(i)
		}
	}
	index := make(map[hopIdent]*reldb.HopCSR, len(hops))
	for i, id := range hops {
		index[id] = plans[i]
	}
	return compileTrie(db, t, func(from string, st reldb.Step) *reldb.HopCSR {
		if hop, ok := index[hopIdent{from: from, step: st}]; ok {
			return hop
		}
		return reldb.CompileHop(db, from, st)
	})
}

// hopIdent identifies one distinct hop plan: a step applied from a source
// relation. It is the database plan cache's key, mirrored here.
type hopIdent struct {
	from string
	step reldb.Step
}

// distinctHops walks the trie and returns each distinct hop once, in
// deterministic DFS order.
func distinctHops(db *reldb.Database, t *Trie) []hopIdent {
	var hops []hopIdent
	seen := make(map[hopIdent]bool)
	var walk func(tn *trieNode)
	walk = func(tn *trieNode) {
		if id := (hopIdent{from: tn.step.From(db.Schema), step: tn.step}); !seen[id] {
			seen[id] = true
			hops = append(hops, id)
		}
		for _, c := range tn.children {
			walk(c)
		}
	}
	for _, c := range t.root.children {
		walk(c)
	}
	return hops
}

// warmHops compiles the given hops through hopFor on `workers` goroutines
// (0 means GOMAXPROCS). Each hop is claimed exactly once via an atomic
// index, and cancellation is observed between hops, so the latency to
// abort is bounded by one hop compile. With one worker (or one hop) the
// warm-up is skipped entirely: the caller's serial assembly does the same
// compiles with no goroutine overhead.
func warmHops(ctx context.Context, hops []hopIdent, workers int, hopFor func(string, reldb.Step) *reldb.HopCSR) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hops) {
		workers = len(hops)
	}
	if workers <= 1 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(hops) {
					return
				}
				hopFor(hops[i].from, hops[i].step)
			}
		}()
	}
	wg.Wait()
}

func compileTrie(db *reldb.Database, t *Trie, hopFor func(string, reldb.Step) *reldb.HopCSR) *CompiledTrie {
	ct := &CompiledTrie{db: db, paths: t.paths}
	type pairKey struct{ parent, child *reldb.HopCSR }
	seen := make(map[hopIdent]bool)
	brCache := make(map[pairKey][]int32)
	var build func(tn *trieNode, parent *reldb.HopCSR, depth int) int32
	build = func(tn *trieNode, parent *reldb.HopCSR, depth int) int32 {
		from := tn.step.From(db.Schema)
		hop := hopFor(from, tn.step)
		if id := (hopIdent{from: from, step: tn.step}); !seen[id] {
			seen[id] = true
			ct.statHops++
			ct.statEdges += hop.NumEdges()
		}
		idx := int32(len(ct.nodes))
		nd := ctNode{hop: hop, depth: int32(depth)}
		nd.dead = parent != nil && hop.FromRel != parent.ToRel
		if parent != nil && !nd.dead {
			// Identical (parent, child) hop pairs appear under every shared
			// prefix; the mirror-edge table depends only on the pair.
			k := pairKey{parent: parent, child: hop}
			br, ok := brCache[k]
			if !ok {
				br = reldb.BackRefs(parent, hop)
				brCache[k] = br
			}
			nd.backRef = br
		}
		if len(tn.terminal) > 0 {
			nd.terminal = make([]int32, len(tn.terminal))
			for i, pi := range tn.terminal {
				nd.terminal[i] = int32(pi)
			}
		}
		ct.nodes = append(ct.nodes, nd)
		if !nd.dead {
			if depth > ct.maxDepth {
				ct.maxDepth = depth
			}
			ct.posLen = growMax(ct.posLen, depth, hop.NumTo)
		}
		storeEdges := false
		for _, c := range tn.children {
			ci := build(c, hop, depth+1)
			ct.nodes[idx].children = append(ct.nodes[idx].children, ci)
			if ct.nodes[ci].backRef != nil && !ct.nodes[ci].dead {
				storeEdges = true
			}
		}
		if storeEdges {
			ct.nodes[idx].storeEdges = true
			ct.edgeLen = growMax(ct.edgeLen, depth, hop.NumEdges())
		}
		return idx
	}
	for _, c := range t.root.children {
		ct.roots = append(ct.roots, build(c, nil, 1))
	}
	return ct
}

func growMax(s []int, idx, val int) []int {
	for len(s) <= idx {
		s = append(s, 0)
	}
	if val > s[idx] {
		s[idx] = val
	}
	return s
}

// Stats reports the compiled plan's size: the number of distinct hop plans
// and the total tuple-level edges they index.
func (ct *CompiledTrie) Stats() (hops, edges int) { return ct.statHops, ct.statEdges }

// level is one depth's reusable frontier state.
type level struct {
	// pos maps a target ordinal to its index in frontier, -1 when absent.
	// It is restored to all -1 after each node finishes, by walking the
	// frontier — O(frontier), not O(relation).
	pos      []int32
	frontier []int32
	accF     []float64
	accB     []float64
}

// Scratch holds every mutable buffer one propagation needs. A Scratch
// belongs to one CompiledTrie and one goroutine at a time; reusing it
// across calls is what makes the fast path allocation-free apart from the
// emitted neighborhoods themselves.
type Scratch struct {
	levels  []level
	edgeF   [][]float64 // per depth: forward mass per edge of the storing node
	edgeB   [][]float64
	sortBuf []int32
}

// NewScratch allocates a scratch sized for this trie's plans.
func (ct *CompiledTrie) NewScratch() *Scratch {
	s := &Scratch{
		levels: make([]level, ct.maxDepth+1),
		edgeF:  make([][]float64, ct.maxDepth+1),
		edgeB:  make([][]float64, ct.maxDepth+1),
	}
	for d := 1; d <= ct.maxDepth; d++ {
		if d < len(ct.posLen) && ct.posLen[d] > 0 {
			pos := make([]int32, ct.posLen[d])
			for i := range pos {
				pos[i] = -1
			}
			s.levels[d].pos = pos
		}
		if d < len(ct.edgeLen) && ct.edgeLen[d] > 0 {
			s.edgeF[d] = make([]float64, ct.edgeLen[d])
			s.edgeB[d] = make([]float64, ct.edgeLen[d])
		}
	}
	return s
}

// Propagate computes the neighborhoods of start along every path of the
// trie, equivalent to PropagateMultiSparse within 1e-12. s must come from
// this trie's NewScratch (nil allocates a throwaway one). The result slice
// and its neighborhoods are freshly allocated; the scratch may be reused
// for the next call immediately.
func (ct *CompiledTrie) Propagate(start reldb.TupleID, s *Scratch) []SparseNeighborhood {
	out := make([]SparseNeighborhood, len(ct.paths))
	if len(ct.roots) == 0 {
		return out
	}
	startRel := ct.db.Tuple(start).Rel.Name
	ord := ct.db.Relation(startRel).OrdinalOf(start)
	if ord < 0 {
		return out
	}
	if s == nil {
		s = ct.NewScratch()
	}
	l0 := &s.levels[0]
	l0.frontier = append(l0.frontier[:0], int32(ord))
	l0.accF = append(l0.accF[:0], 1)
	l0.accB = append(l0.accB[:0], 1)
	for _, ri := range ct.roots {
		if ct.nodes[ri].hop.FromRel != startRel {
			continue
		}
		ct.run(ri, startRel, out, s)
	}
	return out
}

// run advances the parent frontier across one trie node's hop, deposits
// terminal neighborhoods, recurses into children, and restores the scratch
// state it used.
func (ct *CompiledTrie) run(ni int32, startRel string, out []SparseNeighborhood, s *Scratch) {
	nd := &ct.nodes[ni]
	hop := nd.hop
	in := &s.levels[nd.depth-1]
	lv := &s.levels[nd.depth]
	rowPtr, col, rev := hop.RowPtr, hop.Col, hop.Rev
	br := nd.backRef
	var pEF, pEB []float64
	if br != nil {
		pEF, pEB = s.edgeF[nd.depth-1], s.edgeB[nd.depth-1]
	}
	var mEF, mEB []float64
	if nd.storeEdges {
		mEF, mEB = s.edgeF[nd.depth], s.edgeB[nd.depth]
	}
	pos := lv.pos
	frontier := lv.frontier[:0]
	accF, accB := lv.accF[:0], lv.accB[:0]
	for fi, t := range in.frontier {
		lo, hi := rowPtr[t], rowPtr[t+1]
		if lo == hi {
			continue // dead end: this branch's mass is lost, as in the DFS
		}
		F, B := in.accF[fi], in.accB[fi]
		d0 := float64(hi - lo)
		var Fx float64
		if br != nil {
			for g := lo; g < hi; g++ {
				if r := br[g]; r >= 0 {
					Fx += pEF[r]
				}
			}
		}
		share := (F - Fx) / d0
		for g := lo; g < hi; g++ {
			v := col[g]
			mF := share
			mB := B
			if br != nil {
				if r := br[g]; r >= 0 {
					if hi-lo > 1 {
						mF += (Fx - pEF[r]) / (d0 - 1)
					}
					mB -= pEB[r]
				} else if Fx != 0 && hi-lo > 1 {
					mF += Fx / (d0 - 1)
				}
			}
			if mF <= 0 {
				// Pure-backtrack edge (or its cancellation noise): no DFS
				// path instance traverses it.
				if mEF != nil {
					mEF[g], mEB[g] = 0, 0
				}
				continue
			}
			if mB < 0 {
				mB = 0
			}
			mB /= float64(rev[v])
			if mEF != nil {
				mEF[g], mEB[g] = mF, mB
			}
			if j := pos[v]; j >= 0 {
				accF[j] += mF
				accB[j] += mB
			} else {
				pos[v] = int32(len(frontier))
				frontier = append(frontier, v)
				accF = append(accF, mF)
				accB = append(accB, mB)
			}
		}
	}
	lv.frontier, lv.accF, lv.accB = frontier, accF, accB
	if len(frontier) == 0 {
		// Nothing reached: terminals keep their zero value (what the DFS's
		// empty map finalises to), children are inert, and neither pos nor
		// the edge buffer holds anything but -1s and zeroes.
		return
	}
	if len(nd.terminal) > 0 {
		var sn SparseNeighborhood
		built := false
		for _, pi := range nd.terminal {
			if ct.paths[pi].Start != startRel {
				continue // mirrors PropagateMulti's per-path start check
			}
			if !built {
				sn = ct.emitSorted(lv, hop, s)
				built = true
			}
			out[pi] = sn
		}
	}
	for _, ci := range nd.children {
		if ct.nodes[ci].dead {
			continue
		}
		ct.run(ci, startRel, out, s)
	}
	// Restore for the next sibling subtree: pos back to -1 and, if children
	// read per-edge masses, those entries back to zero.
	for _, v := range frontier {
		pos[v] = -1
	}
	if mEF != nil {
		for _, t := range in.frontier {
			for g := rowPtr[t]; g < rowPtr[t+1]; g++ {
				mEF[g], mEB[g] = 0, 0
			}
		}
	}
}

// emitSorted finalises the node's frontier into a sorted SparseNeighborhood.
func (ct *CompiledTrie) emitSorted(lv *level, hop *reldb.HopCSR, s *Scratch) SparseNeighborhood {
	n := len(lv.frontier)
	s.sortBuf = append(s.sortBuf[:0], lv.frontier...)
	slices.Sort(s.sortBuf)
	keys := make([]reldb.TupleID, n)
	fbs := make([]FB, n)
	var sum float64
	for i, v := range s.sortBuf {
		j := lv.pos[v]
		keys[i] = hop.ToIDs[v]
		fbs[i] = FB{Fwd: lv.accF[j], Bwd: lv.accB[j]}
		sum += lv.accF[j]
	}
	return SparseNeighborhood{Keys: keys, FBs: fbs, SumFwd: sum}
}

// CompiledPath is a single compiled join path — CompiledTrie specialised to
// one path, for callers that propagate path by path.
type CompiledPath struct {
	ct *CompiledTrie
}

// CompilePath compiles one join path against db (hop plans come from the
// database's shared cache).
func CompilePath(db *reldb.Database, p reldb.JoinPath) *CompiledPath {
	return &CompiledPath{ct: CompileTrie(db, NewTrie([]reldb.JoinPath{p}))}
}

// NewScratch allocates a scratch sized for this path.
func (cp *CompiledPath) NewScratch() *Scratch { return cp.ct.NewScratch() }

// Propagate computes the neighborhood of start along the path, equivalent
// to PropagateSparse within 1e-12.
func (cp *CompiledPath) Propagate(start reldb.TupleID, s *Scratch) SparseNeighborhood {
	return cp.ct.Propagate(start, s)[0]
}
