package prop

import (
	"distinct/internal/reldb"
)

// Join paths from one reference relation overlap heavily: in the paper's
// DBLP schema every path begins Publish>paper-key>Publications, and the
// length-4 paths mostly extend the same length-3 prefixes. PropagateMulti
// exploits this by arranging the paths in a prefix trie and walking the
// database once per reference instead of once per (reference, path): a
// shared prefix's fan-out is traversed a single time, and each trie node
// deposits results for every path terminating there.
//
// The result is bit-identical to calling Propagate per path: within one
// path the traversal visits the same tuples in the same order, so the
// floating-point accumulation order is unchanged. The tests assert exact
// equality.

// trieNode is one node of the path prefix trie.
type trieNode struct {
	// step is the edge from the parent (zero value at the root).
	step reldb.Step
	// terminal lists the indexes of paths ending at this node.
	terminal []int
	children []*trieNode
}

// Trie is a prefix tree over a fixed path list, reusable across references.
type Trie struct {
	root  *trieNode
	paths []reldb.JoinPath
}

// NewTrie builds the prefix trie of the given paths. Paths must all start
// at the same relation; empty paths are ignored.
func NewTrie(paths []reldb.JoinPath) *Trie {
	t := &Trie{root: &trieNode{}, paths: paths}
	for i, p := range paths {
		if len(p.Steps) == 0 {
			continue
		}
		node := t.root
		for _, st := range p.Steps {
			var child *trieNode
			for _, c := range node.children {
				if c.step == st {
					child = c
					break
				}
			}
			if child == nil {
				child = &trieNode{step: st}
				node.children = append(node.children, child)
			}
			node = child
		}
		node.terminal = append(node.terminal, i)
	}
	return t
}

// NumNodes returns the number of trie nodes excluding the root — the number
// of distinct path prefixes, i.e. how many step-traversals a full walk
// performs per branch instead of one per path per step.
func (t *Trie) NumNodes() int {
	var count func(n *trieNode) int
	count = func(n *trieNode) int {
		c := len(n.children)
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}

// PropagateMulti computes the neighborhoods of start along every path of
// the trie in one traversal. The result is indexed like the trie's path
// list; paths whose start relation does not match the tuple yield nil.
func PropagateMulti(db *reldb.Database, start reldb.TupleID, t *Trie) []Neighborhood {
	out := make([]Neighborhood, len(t.paths))
	startRel := db.Tuple(start).Rel.Name
	ok := make([]bool, len(t.paths))
	any := false
	for i, p := range t.paths {
		if len(p.Steps) > 0 && p.Start == startRel {
			ok[i] = true
			any = true
			// Non-nil even when nothing is reachable, matching Propagate.
			out[i] = make(Neighborhood)
		}
	}
	if !any {
		return out
	}

	var buf []reldb.TupleID
	var walk func(node *trieNode, cur, cameFrom reldb.TupleID, fwd, bwd float64)
	walk = func(node *trieNode, cur, cameFrom reldb.TupleID, fwd, bwd float64) {
		for _, pi := range node.terminal {
			if !ok[pi] {
				continue
			}
			fb := out[pi][cur]
			fb.Fwd += fwd
			fb.Bwd += bwd
			out[pi][cur] = fb
		}
		for _, child := range node.children {
			buf = db.Joinable(cur, child.step, cameFrom, buf[:0])
			if len(buf) == 0 {
				continue
			}
			split := fwd / float64(len(buf))
			next := make([]reldb.TupleID, len(buf))
			copy(next, buf)
			for _, tid := range next {
				rev := db.JoinFanout(tid, child.step.Inverse())
				if rev == 0 {
					continue
				}
				walk(child, tid, cur, split, bwd/float64(rev))
			}
		}
	}
	walk(t.root, start, reldb.InvalidTuple, 1, 1)
	return out
}
