package prop

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"distinct/internal/reldb"
)

// cyclicWorldOpts shapes cyclicRandomWorld's output.
type cyclicWorldOpts struct {
	// cyclic lets foreign keys reference any relation — later ones, earlier
	// ones, or the owner itself — so the schema graph may contain cycles
	// and self-loops (tuples can even reference themselves).
	cyclic bool
	// dangling makes ~15% of FK values reference keys that do not exist,
	// producing forward dead ends mid-path.
	dangling bool
}

// cyclicRandomWorld generalises randomSchemaWorld beyond DAG schemas: key
// spaces are fixed up front, so FK values can target any relation no matter
// the population order, including cycles, self-references, and (optionally)
// dangling keys. Insert performs no FK validation, so all of it is legal
// data the propagation engines must agree on.
func cyclicRandomWorld(rng *rand.Rand, opts cyclicWorldOpts) *reldb.Database {
	nRels := 2 + rng.Intn(4)
	sizes := make([]int, nRels)
	for i := range sizes {
		sizes[i] = 2 + rng.Intn(7)
	}
	var schemas []*reldb.RelationSchema
	for i := 0; i < nRels; i++ {
		attrs := []reldb.Attribute{{Name: "k", Key: true}}
		nFKs := rng.Intn(3)
		if i == 0 && nFKs == 0 {
			nFKs = 1 // guarantee at least one start relation with an FK
		}
		for f := 0; f < nFKs; f++ {
			target := i // self-loop candidate
			if !opts.cyclic {
				if i == 0 {
					break
				}
				target = rng.Intn(i)
			} else if rng.Intn(3) > 0 {
				target = rng.Intn(nRels)
			}
			attrs = append(attrs, reldb.Attribute{Name: fmt.Sprintf("f%d", f), FK: fmt.Sprintf("R%d", target)})
		}
		schemas = append(schemas, reldb.MustRelationSchema(fmt.Sprintf("R%d", i), attrs...))
	}
	db := reldb.NewDatabase(reldb.MustSchema(schemas...))
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("R%d", i)
		rs := db.Schema.Relation(name)
		for t := 0; t < sizes[i]; t++ {
			vals := make([]reldb.Value, len(rs.Attrs))
			for ai, a := range rs.Attrs {
				switch {
				case a.Key:
					vals[ai] = fmt.Sprintf("%s-%d", name, t)
				default: // every non-key attr here is an FK
					ti := 0
					fmt.Sscanf(a.FK, "R%d", &ti)
					if opts.dangling && rng.Intn(7) == 0 {
						vals[ai] = "missing"
					} else {
						vals[ai] = fmt.Sprintf("%s-%d", a.FK, rng.Intn(sizes[ti]))
					}
				}
			}
			db.MustInsert(name, vals...)
		}
	}
	return db
}

// diffSparse returns the largest absolute difference between two sparse
// neighborhoods over the union of their keys (absent keys count as zero),
// including the SumFwd aggregates.
func diffSparse(a, b SparseNeighborhood) float64 {
	d := math.Abs(a.SumFwd - b.SumFwd)
	i, j := 0, 0
	for i < len(a.Keys) || j < len(b.Keys) {
		switch {
		case j == len(b.Keys) || (i < len(a.Keys) && a.Keys[i] < b.Keys[j]):
			d = math.Max(d, math.Max(math.Abs(a.FBs[i].Fwd), math.Abs(a.FBs[i].Bwd)))
			i++
		case i == len(a.Keys) || a.Keys[i] > b.Keys[j]:
			d = math.Max(d, math.Max(math.Abs(b.FBs[j].Fwd), math.Abs(b.FBs[j].Bwd)))
			j++
		default:
			d = math.Max(d, math.Abs(a.FBs[i].Fwd-b.FBs[j].Fwd))
			d = math.Max(d, math.Abs(a.FBs[i].Bwd-b.FBs[j].Bwd))
			i++
			j++
		}
	}
	return d
}

// checkCompiledAgainstDFS compiles the trie both ways (shared plan cache
// and uncached) and holds every path's compiled neighborhood within tol of
// the DFS reference for each given start tuple.
func checkCompiledAgainstDFS(t *testing.T, tag string, db *reldb.Database, paths []reldb.JoinPath, starts []reldb.TupleID, tol float64) {
	t.Helper()
	trie := NewTrie(paths)
	for variant, ct := range map[string]*CompiledTrie{
		"cached":   CompileTrie(db, trie),
		"uncached": CompileTrieUncached(db, trie),
	} {
		scratch := ct.NewScratch()
		for _, id := range starts {
			want := PropagateMultiSparse(db, id, trie)
			got := ct.Propagate(id, scratch)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d neighborhoods, want %d", tag, variant, len(got), len(want))
			}
			for pi := range want {
				if d := diffSparse(got[pi], want[pi]); d > tol {
					t.Fatalf("%s/%s: start %d path %s diverges by %g:\n got %+v\nwant %+v",
						tag, variant, id, paths[pi], d, got[pi], want[pi])
				}
			}
		}
	}
}

// TestCompiledMatchesDFSPaper pins the compiled engine to the paper's
// hand-computed fixtures, bounce path included.
func TestCompiledMatchesDFSPaper(t *testing.T) {
	db, refs := miniDB(t)
	paths := []reldb.JoinPath{
		coauthorPath(),
		{Start: "Publish", Steps: []reldb.Step{
			{Rel: "Publish", Attr: "paper-key", Forward: true},
			{Rel: "Publications", Attr: "proc-key", Forward: true},
			{Rel: "Proceedings", Attr: "conference", Forward: true},
		}},
	}
	var starts []reldb.TupleID
	for _, id := range refs {
		starts = append(starts, id)
	}
	checkCompiledAgainstDFS(t, "paper", db, paths, starts, 1e-12)

	// And the hand-computed values directly: from wei@p1 the only coauthor
	// is jiong (forward 1, backward 1/4).
	cp := CompilePath(db, coauthorPath())
	nb := cp.Propagate(refs["wei@p1"], nil)
	if nb.Len() != 1 {
		t.Fatalf("wei@p1 coauthors = %d, want 1", nb.Len())
	}
	if fb, ok := nb.Lookup(db.LookupKey("Authors", "jiong")); !ok || !approx(fb.Fwd, 1) || !approx(fb.Bwd, 0.25) {
		t.Fatalf("wei@p1 -> jiong = %+v, want {1 0.25}", fb)
	}
}

// TestCompiledMatchesDFSDeadEnd: a single-author paper dead-ends the
// coauthor walk; the compiled result must be the zero neighborhood, like
// the DFS's empty map finalised.
func TestCompiledMatchesDFSDeadEnd(t *testing.T) {
	db := reldb.NewDatabase(dblpSchema())
	db.MustInsert("Authors", "solo")
	db.MustInsert("Conferences", "VLDB")
	db.MustInsert("Proceedings", "vldb97", "VLDB")
	db.MustInsert("Publications", "p1", "vldb97")
	ref := db.MustInsert("Publish", "solo", "p1")
	cp := CompilePath(db, coauthorPath())
	nb := cp.Propagate(ref, nil)
	if nb.Len() != 0 || nb.Keys != nil || nb.SumFwd != 0 {
		t.Fatalf("dead-end neighborhood = %+v, want zero value", nb)
	}
}

// TestCompiledWrongStartAndEmptyPath mirrors Propagate's input guards.
func TestCompiledWrongStartAndEmptyPath(t *testing.T) {
	db, _ := miniDB(t)
	author := db.LookupKey("Authors", "wei")
	ct := CompileTrie(db, NewTrie([]reldb.JoinPath{coauthorPath()}))
	if got := ct.Propagate(author, nil); got[0].Len() != 0 {
		t.Errorf("wrong-relation start produced %+v", got[0])
	}
	cp := CompilePath(db, reldb.JoinPath{Start: "Publish"})
	ref := db.Relation("Publish").TupleIDs()[0]
	if nb := cp.Propagate(ref, nil); nb.Len() != 0 {
		t.Errorf("empty path produced %+v", nb)
	}
}

// TestCompiledMatchesDFSRandomDAG sweeps the existing DAG generator.
func TestCompiledMatchesDFSRandomDAG(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomSchemaWorld(rng)
		checkRandomWorld(t, fmt.Sprintf("dag-%d", seed), db)
	}
}

// TestCompiledMatchesDFSRandomCyclic sweeps cyclic schemas (self-loops
// included) with and without dangling foreign keys.
func TestCompiledMatchesDFSRandomCyclic(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		opts := cyclicWorldOpts{cyclic: true, dangling: seed%2 == 1}
		db := cyclicRandomWorld(rng, opts)
		checkRandomWorld(t, fmt.Sprintf("cyclic-%d", seed), db)
	}
}

// checkRandomWorld enumerates join paths from every FK-bearing relation of
// a random world and checks compiled/DFS equivalence from a few starts.
func checkRandomWorld(t *testing.T, tag string, db *reldb.Database) {
	t.Helper()
	for _, rs := range db.Schema.Relations() {
		if len(rs.ForeignKeys()) == 0 || db.Relation(rs.Name).Size() == 0 {
			continue
		}
		paths := reldb.EnumerateJoinPaths(db.Schema, rs.Name, reldb.EnumerateOptions{MaxLen: 3})
		if len(paths) == 0 {
			continue
		}
		if len(paths) > 40 {
			paths = paths[:40]
		}
		ids := db.Relation(rs.Name).TupleIDs()
		if len(ids) > 3 {
			ids = ids[:3]
		}
		checkCompiledAgainstDFS(t, tag+"/"+rs.Name, db, paths, ids, 1e-12)
	}
}

// TestCompiledScratchReuse: reusing one scratch across many propagations
// must give the same results as a fresh scratch per call — the reset
// discipline (pos back to -1, edge buffers back to zero) is load-bearing.
func TestCompiledScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := cyclicRandomWorld(rng, cyclicWorldOpts{cyclic: true, dangling: true})
	var start string
	for _, rs := range db.Schema.Relations() {
		if len(rs.ForeignKeys()) > 0 {
			start = rs.Name
			break
		}
	}
	paths := reldb.EnumerateJoinPaths(db.Schema, start, reldb.EnumerateOptions{MaxLen: 3})
	if len(paths) > 30 {
		paths = paths[:30]
	}
	ct := CompileTrie(db, NewTrie(paths))
	shared := ct.NewScratch()
	for _, id := range db.Relation(start).TupleIDs() {
		got := ct.Propagate(id, shared)
		want := ct.Propagate(id, ct.NewScratch())
		for pi := range want {
			// Same engine, same order: bit-identical, not just within tol.
			if diffSparse(got[pi], want[pi]) != 0 {
				t.Fatalf("scratch reuse diverged on start %d path %s", id, paths[pi])
			}
		}
	}
}

// TestCompiledAllocsCeiling pins the fast path's allocation count: with a
// warm scratch, one propagation may allocate only the result slice plus
// two slices per non-empty terminal neighborhood.
func TestCompiledAllocsCeiling(t *testing.T) {
	db, refs := miniDB(t)
	paths := []reldb.JoinPath{
		coauthorPath(),
		{Start: "Publish", Steps: []reldb.Step{
			{Rel: "Publish", Attr: "paper-key", Forward: true},
			{Rel: "Publications", Attr: "proc-key", Forward: true},
			{Rel: "Proceedings", Attr: "conference", Forward: true},
		}},
	}
	ct := CompileTrie(db, NewTrie(paths))
	scratch := ct.NewScratch()
	start := refs["wei@p2"]
	ct.Propagate(start, scratch) // warm: grows frontier/acc/sort buffers
	ceiling := float64(1 + 2*len(paths))
	if got := testing.AllocsPerRun(100, func() {
		ct.Propagate(start, scratch)
	}); got > ceiling {
		t.Errorf("CSR propagation allocates %v per run, ceiling %v", got, ceiling)
	}
}

// TestCompiledStats: plan size counters reflect distinct hops, not trie
// nodes, and survive the shared-prefix dedupe.
func TestCompiledStats(t *testing.T) {
	db, _ := miniDB(t)
	paths := []reldb.JoinPath{coauthorPath()}
	ct := CompileTrie(db, NewTrie(paths))
	hops, edges := ct.Stats()
	if hops != 3 {
		t.Errorf("hops = %d, want 3", hops)
	}
	// Publish->Publications: 5 edges; Publications->Publish (reverse): 5;
	// Publish->Authors: 5.
	if edges != 15 {
		t.Errorf("edges = %d, want 15", edges)
	}
}
