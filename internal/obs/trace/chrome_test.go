package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTree hand-assembles a SpanNode tree for lane tests without depending
// on wall-clock timing.
func node(id int, name string, start, dur int64, children ...*SpanNode) *SpanNode {
	return &SpanNode{ID: id, Name: name, StartNs: start, DurNs: dur, Children: children}
}

func TestAssignLanesSequentialSharesParentLane(t *testing.T) {
	root := node(0, "run", 0, 100,
		node(1, "expand", 0, 10),
		node(2, "enumerate", 10, 20),
		node(3, "cluster", 30, 40),
	)
	tids := assignLanes(root)
	for id := 0; id <= 3; id++ {
		if tids[id] != 0 {
			t.Errorf("span %d on lane %d, want 0", id, tids[id])
		}
	}
}

func TestAssignLanesOverlappingSiblingsSplit(t *testing.T) {
	// Three per-name spans overlapping in time, as a parallel batch sweep
	// produces, plus a fourth that starts after the first two finished.
	root := node(0, "run", 0, 100,
		node(1, "batch", 0, 100,
			node(2, "name:A", 0, 50),
			node(3, "name:B", 10, 50),
			node(4, "name:C", 20, 50),
			node(5, "name:D", 61, 30),
		),
	)
	tids := assignLanes(root)
	if tids[1] != 0 || tids[2] != 0 {
		t.Errorf("batch=%d first child=%d, want both on lane 0", tids[1], tids[2])
	}
	if tids[3] == 0 || tids[4] == 0 || tids[3] == tids[4] {
		t.Errorf("overlapping names share lanes: B=%d C=%d", tids[3], tids[4])
	}
	// name:D starts after name:B's lane freed at t=60, so it may reuse it —
	// the invariant is only that spans on one lane never overlap.
	byLane := map[int][]*SpanNode{}
	var walk func(s *SpanNode)
	walk = func(s *SpanNode) {
		byLane[tids[s.ID]] = append(byLane[tids[s.ID]], s)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	for lane, spans := range byLane {
		for i, a := range spans {
			for _, b := range spans[i+1:] {
				aContainsB := a.StartNs <= b.StartNs && b.StartNs+b.DurNs <= a.StartNs+a.DurNs
				bContainsA := b.StartNs <= a.StartNs && a.StartNs+a.DurNs <= b.StartNs+b.DurNs
				disjoint := a.StartNs+a.DurNs <= b.StartNs || b.StartNs+b.DurNs <= a.StartNs
				if !aContainsB && !bContainsA && !disjoint {
					t.Errorf("lane %d: spans %d and %d partially overlap", lane, a.ID, b.ID)
				}
			}
		}
	}
}

func TestChromeJSONStructure(t *testing.T) {
	tr := New(Options{})
	sp := tr.Start("cluster", Int("refs", 5))
	sp.Event("merge", Int("a", 0), Int("b", 1), Int("new", 5), Float("sim", 0.5))
	sp.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Ph    string         `json:"ph"`
			Ts    *float64       `json:"ts"`
			Pid   *int           `json:"pid"`
			Tid   *int           `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var phases []string
	var sawMerge bool
	for _, ev := range f.TraceEvents {
		phases = append(phases, ev.Ph)
		if ev.Ph != "M" && (ev.Ts == nil || ev.Pid == nil || ev.Tid == nil) {
			t.Errorf("event %q misses ts/pid/tid", ev.Name)
		}
		if ev.Ph == "i" {
			if ev.Scope != "t" {
				t.Errorf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
			if ev.Name == "merge" {
				sawMerge = true
				for _, k := range []string{"a", "b", "new", "sim"} {
					if _, ok := ev.Args[k]; !ok {
						t.Errorf("merge event misses arg %q", k)
					}
				}
			}
		}
	}
	want := "M X X i" // metadata, root span, cluster span, merge instant
	if got := strings.Join(phases, " "); got != want {
		t.Errorf("phases = %q, want %q", got, want)
	}
	if !sawMerge {
		t.Error("no merge instant exported")
	}
}

func TestWriteReport(t *testing.T) {
	tr := New(Options{SamplePairEvery: 16})
	train := tr.Start("train_svm")
	train.Event("path_weight", String("path", "Publish-Publish"), Float("resem_w", 0.8), Float("walk_w", 0.2))
	train.End()
	batch := tr.Start("batch")
	for _, name := range []string{"A", "B"} {
		sp := batch.Start("name:"+name, Int("refs", 4))
		sp.Event("merge", Int("a", 0), Int("b", 1), Int("new", 4), Float("sim", 0.5), Int("size_a", 1), Int("size_b", 1))
		sp.Event("cut", Int("clusters", 2), Int("merges", 1), Float("min_sim", 0.1))
		sp.End()
	}
	batch.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteReport(&buf, tr.File(), ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# distinct run report",
		"pair provenance 1/16",
		"## Span tree",
		"## Slowest names (2 of 2)",
		"## Merge timeline",
		"-> cluster 4",
		"## Join-path weights",
		"| Publish-Publish | 0.8 | 0.2 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q\n---\n%s", want, out)
		}
	}

	// Empty trace file renders a placeholder, not an error.
	buf.Reset()
	if err := WriteReport(&buf, &File{Format: FileFormat}, ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty trace)") {
		t.Errorf("empty report = %q", buf.String())
	}
}

func TestWriteReportCollapsesChildren(t *testing.T) {
	tr := New(Options{})
	batch := tr.Start("batch")
	for i := 0; i < 12; i++ {
		batch.Start("name:" + string(rune('a'+i))).End()
	}
	batch.End()
	tr.Finish()
	var buf bytes.Buffer
	if err := WriteReport(&buf, tr.File(), ReportOptions{TopK: 3, MaxChildren: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(+8 more children") {
		t.Errorf("no collapse line in:\n%s", out)
	}
	if !strings.Contains(out, "Slowest names (3 of 12)") {
		t.Errorf("top-k not applied in:\n%s", out)
	}
}
