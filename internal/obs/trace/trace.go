// Package trace is a stdlib-only hierarchical tracing subsystem for the
// DISTINCT pipeline, layered under internal/obs: where the obs registry
// aggregates (counters, stage totals), a Trace records *individual
// decisions* — a tree of timed spans (one per pipeline stage, one per name
// in a batch sweep) carrying typed key-value attributes, plus ordered
// structured events on each span (one per clustering merge, one per sampled
// reference pair with its per-join-path similarity breakdown).
//
// The package follows the obs nil convention: a nil *Trace is the off
// switch. Every method works on a nil Trace or Span and returns
// immediately, so instrumented code carries no enablement branches and the
// disabled path costs a nil check and no allocation (benchmarked in
// bench_test.go). Enabling tracing is handing the pipeline a New(...).
//
// A finished trace exports three ways: WriteChromeJSON emits Chrome
// trace-event JSON loadable in chrome://tracing or Perfetto, WriteJSON
// emits a self-describing span tree, and WriteReport (report.go) renders a
// human-readable run report from that tree.
package trace

import (
	"sync"
	"time"
)

// Options configures a new trace.
type Options struct {
	// SamplePairEvery enables sampled pair provenance in the similarity
	// stage: every Nth reference pair (by deterministic triangular pair
	// index — no RNG, so traces reproduce) gets a "pair" event with its
	// per-join-path similarity breakdown. 0 (the default) disables pair
	// provenance; spans and merge events are unaffected.
	SamplePairEvery int
	// RootName names the root span; empty means "run".
	RootName string
}

// Trace owns a tree of spans and their events. All mutation goes through
// one mutex; spans are created per pipeline stage and per name, and events
// per merge or sampled pair, so the lock is never on a per-pair hot path.
type Trace struct {
	mu          sync.Mutex
	start       time.Time
	sampleEvery int

	root      *Span
	nextID    int
	numSpans  int
	numEvents int
}

// Span is one node of the trace tree: a named, timed operation with typed
// attributes, ordered events, and child spans. The nil Span is inert.
type Span struct {
	tr      *Trace
	id      int
	name    string
	startNs int64
	endNs   int64
	ended   bool

	attrs    []Attr
	events   []Event
	children []*Span
}

// Event is one structured occurrence inside a span (a clustering merge, a
// sampled pair, a dendrogram cut).
type Event struct {
	Name  string
	TNs   int64 // nanoseconds since trace start
	Attrs []Attr
}

// New returns an enabled trace whose root span starts now.
func New(opts Options) *Trace {
	t := &Trace{
		start:       time.Now(),
		sampleEvery: opts.SamplePairEvery,
	}
	name := opts.RootName
	if name == "" {
		name = "run"
	}
	t.root = &Span{tr: t, id: 0, name: name}
	t.nextID = 1
	t.numSpans = 1
	return t
}

// sinceLocked returns nanoseconds since trace start; call with t.mu held
// (or from a context where t is private).
func (t *Trace) sinceLocked() int64 { return int64(time.Since(t.start)) }

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SamplePairEvery returns the pair-provenance sampling period (0 when
// disabled or on a nil trace). Hot loops read it once before iterating.
func (t *Trace) SamplePairEvery() int {
	if t == nil {
		return 0
	}
	return t.sampleEvery
}

// Start opens a child of the root span.
func (t *Trace) Start(name string, attrs ...Attr) *Span {
	return t.Root().Start(name, attrs...)
}

// Finish ends the root span (open child spans keep their own clocks; an
// unended span exports with the trace's final timestamp as its end).
func (t *Trace) Finish() { t.Root().End() }

// Counts reports how many spans and events the trace holds.
func (t *Trace) Counts() (spans, events int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.numSpans, t.numEvents
}

// Start opens a child span. The attrs slice is copied, so callers may pass
// literals without the variadic backing array escaping — that keeps the
// nil fast path allocation-free.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	child := &Span{tr: t, name: name, attrs: append([]Attr(nil), attrs...)}
	t.mu.Lock()
	child.id = t.nextID
	t.nextID++
	t.numSpans++
	child.startNs = t.sinceLocked()
	s.children = append(s.children, child)
	t.mu.Unlock()
	return child
}

// End closes the span; repeated End calls keep the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.endNs = t.sinceLocked()
	}
	t.mu.Unlock()
}

// SetAttrs appends attributes to the span (copying the variadic slice).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.tr
	cp := append([]Attr(nil), attrs...)
	t.mu.Lock()
	s.attrs = append(s.attrs, cp...)
	t.mu.Unlock()
}

// Event appends a structured event to the span, stamped with the current
// trace clock.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.tr
	cp := append([]Attr(nil), attrs...)
	t.mu.Lock()
	s.events = append(s.events, Event{Name: name, TNs: t.sinceLocked(), Attrs: cp})
	t.numEvents++
	t.mu.Unlock()
}

// EventAll appends pre-built events in order — used by stages that collect
// events concurrently, sort them deterministically, and attach them once.
// The events' TNs fields are preserved when set (>0), otherwise stamped now.
func (s *Span) EventAll(events []Event) {
	if s == nil || len(events) == 0 {
		return
	}
	t := s.tr
	t.mu.Lock()
	now := t.sinceLocked()
	for _, ev := range events {
		if ev.TNs == 0 {
			ev.TNs = now
		}
		s.events = append(s.events, ev)
	}
	t.numEvents += len(events)
	t.mu.Unlock()
}

// ID returns the span's trace-unique id (0 for the root, -1 on nil).
func (s *Span) ID() int {
	if s == nil {
		return -1
	}
	return s.id
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
