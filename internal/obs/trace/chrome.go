package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace-event export: the span tree flattened into "X" (complete)
// events and per-span instants ("i"), loadable in chrome://tracing and
// Perfetto. Timestamps are microseconds since trace start.
//
// The viewer nests "X" events on one tid by interval containment, so spans
// that overlap in time (the per-name spans of a parallel batch sweep) must
// land on different tids. assignLanes colors the tree greedily: a child
// shares its parent's lane while it fits after the previous sibling placed
// there; overlapping siblings take the first globally free lane, and a
// subtree rooted on a lane reserves that lane for its whole interval. The
// result is one "thread" per concurrency lane, which is exactly how the
// run executed.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// assignLanes maps span id -> tid so spans sharing a tid are nested or
// disjoint. Children are placed in start-time order (stable on ties, so
// the assignment is deterministic given the tree).
func assignLanes(root *SpanNode) map[int]int {
	tids := make(map[int]int)
	laneBusy := []int64{root.StartNs + root.DurNs} // lane 0 held by the root subtree
	var place func(s *SpanNode, lane int)
	place = func(s *SpanNode, lane int) {
		tids[s.ID] = lane
		children := append([]*SpanNode(nil), s.Children...)
		sort.SliceStable(children, func(i, j int) bool {
			return children[i].StartNs < children[j].StartNs
		})
		last := int64(-1 << 62)
		for _, c := range children {
			if c.StartNs >= last {
				// Fits after the previous sibling on the parent's lane.
				last = c.StartNs + c.DurNs
				place(c, lane)
				continue
			}
			// Overlaps: take the first free lane and reserve it for the
			// whole subtree interval.
			l := 0
			for ; l < len(laneBusy); l++ {
				if laneBusy[l] <= c.StartNs {
					break
				}
			}
			if l == len(laneBusy) {
				laneBusy = append(laneBusy, 0)
			}
			laneBusy[l] = c.StartNs + c.DurNs
			place(c, l)
		}
	}
	place(root, 0)
	return tids
}

// ChromeEvents flattens the trace into Chrome trace-event form. Works on a
// nil trace (empty slice).
func (t *Trace) chromeEvents() []chromeEvent {
	root := t.Tree()
	if root == nil {
		return nil
	}
	tids := assignLanes(root)
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	events := []chromeEvent{{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "distinct"},
	}}
	var walk func(s *SpanNode)
	walk = func(s *SpanNode) {
		tid := tids[s.ID]
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			Ts: us(s.StartNs), Dur: us(s.DurNs),
			Pid: 1, Tid: tid, Args: s.Attrs,
		})
		for _, ev := range s.Events {
			events = append(events, chromeEvent{
				Name: ev.Name, Cat: "event", Ph: "i",
				Ts: us(ev.TNs), Pid: 1, Tid: tid, Scope: "t",
				Args: ev.Attrs,
			})
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	return events
}

// WriteChromeJSON writes the trace in Chrome trace-event JSON (the object
// form, {"traceEvents": [...]}), loadable in chrome://tracing / Perfetto.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	f := chromeFile{TraceEvents: t.chromeEvents(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteChromeFile dumps the Chrome trace to path (the -trace flag of the
// CLIs).
func (t *Trace) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
