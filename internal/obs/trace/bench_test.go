package trace

import "testing"

// The nil fast path is the acceptance bar: a disabled trace must cost a nil
// check and zero allocations at every instrumentation point, so tracing can
// stay wired into the hot pipeline unconditionally.

func BenchmarkNilSpanStartEnd(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("stage", Int("n", int64(i)))
		sp.End()
	}
}

func BenchmarkNilSpanEvent(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Event("merge", Int("a", 0), Int("b", 1), Float("sim", 0.5))
	}
}

func BenchmarkNilSamplePairEvery(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		n += tr.SamplePairEvery()
	}
	if n != 0 {
		b.Fatal("nil sampling nonzero")
	}
}

func BenchmarkEnabledSpanStartEnd(b *testing.B) {
	tr := New(Options{})
	root := tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Start("stage", Int("n", int64(i)))
		sp.End()
	}
}

func BenchmarkEnabledSpanEvent(b *testing.B) {
	tr := New(Options{})
	sp := tr.Start("cluster")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Event("merge", Int("a", 0), Int("b", 1), Float("sim", 0.5))
	}
}
