package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SpanNode is the exported form of one span: a self-describing subtree
// with relative timestamps (nanoseconds since trace start) and dynamic
// attribute maps. It is what WriteJSON emits and what the report reader
// consumes.
type SpanNode struct {
	ID       int            `json:"id"`
	Name     string         `json:"name"`
	StartNs  int64          `json:"start_ns"`
	DurNs    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []EventNode    `json:"events,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// EventNode is the exported form of one event.
type EventNode struct {
	Name  string         `json:"name"`
	TNs   int64          `json:"t_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// File is the self-describing on-disk trace: a format marker, the sampling
// policy the trace ran with, span/event totals, and the span tree.
type File struct {
	Format          string    `json:"format"`
	SamplePairEvery int       `json:"sample_pair_every,omitempty"`
	Spans           int       `json:"spans"`
	Events          int       `json:"events"`
	Root            *SpanNode `json:"root"`
}

// FileFormat marks the trace-tree JSON layout version.
const FileFormat = "distinct-trace/1"

// Tree snapshots the span tree. Open spans (including the root before
// Finish) export with the snapshot instant as their end. Returns nil on a
// nil trace.
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.sinceLocked()
	return exportSpan(t.root, now)
}

// exportSpan deep-copies a span subtree; call with the trace mutex held.
func exportSpan(s *Span, now int64) *SpanNode {
	end := s.endNs
	if !s.ended {
		end = now
	}
	n := &SpanNode{
		ID:      s.id,
		Name:    s.name,
		StartNs: s.startNs,
		DurNs:   end - s.startNs,
		Attrs:   attrMap(s.attrs),
	}
	if len(s.events) > 0 {
		n.Events = make([]EventNode, len(s.events))
		for i, ev := range s.events {
			n.Events[i] = EventNode{Name: ev.Name, TNs: ev.TNs, Attrs: attrMap(ev.Attrs)}
		}
	}
	if len(s.children) > 0 {
		n.Children = make([]*SpanNode, len(s.children))
		for i, c := range s.children {
			n.Children[i] = exportSpan(c, now)
		}
	}
	return n
}

// File snapshots the whole trace in its on-disk form. Works on a nil trace
// (empty file with a nil root), so callers need no enablement check.
func (t *Trace) File() *File {
	f := &File{Format: FileFormat}
	if t == nil {
		return f
	}
	f.Root = t.Tree()
	t.mu.Lock()
	f.SamplePairEvery = t.sampleEvery
	f.Spans = t.numSpans
	f.Events = t.numEvents
	t.mu.Unlock()
	return f
}

// WriteJSON writes the self-describing span tree as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.File())
}

// WriteFile dumps the span tree to path (the -tracetree flag of the CLIs).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a trace tree written by WriteJSON.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parsing tree: %w", err)
	}
	if f.Format != FileFormat {
		return nil, fmt.Errorf("trace: unknown format %q (want %q)", f.Format, FileFormat)
	}
	return &f, nil
}

// ReadFileJSON reads a trace tree file written by WriteFile.
func ReadFileJSON(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
