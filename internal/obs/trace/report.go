package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ReportOptions tunes the rendered run report.
type ReportOptions struct {
	// TopK bounds the slowest-names table and the merge timelines (default 10).
	TopK int
	// MaxChildren bounds how many children of one span the tree section
	// prints before collapsing the rest into a summary line (default 8).
	MaxChildren int
}

func (o ReportOptions) withDefaults() ReportOptions {
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.MaxChildren <= 0 {
		o.MaxChildren = 8
	}
	return o
}

// NameSpanPrefix marks per-name batch spans ("name:Wei Wang").
const NameSpanPrefix = "name:"

// WriteReport renders a trace tree as a Markdown-flavoured run report: the
// span tree with durations, the top-k slowest names, the merge timeline of
// the slowest names, and the learned per-path weight table (from the
// "path_weight" events the training stage emits).
func WriteReport(w io.Writer, f *File, opts ReportOptions) error {
	opts = opts.withDefaults()
	if f == nil || f.Root == nil {
		_, err := fmt.Fprintln(w, "# distinct run report\n\n(empty trace)")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# distinct run report\n\n")
	fmt.Fprintf(&b, "total %s · %d spans · %d events", fmtDur(f.Root.DurNs), f.Spans, f.Events)
	if f.SamplePairEvery > 0 {
		fmt.Fprintf(&b, " · pair provenance 1/%d", f.SamplePairEvery)
	}
	b.WriteString("\n\n## Span tree\n\n```\n")
	writeTree(&b, f.Root, "", opts)
	b.WriteString("```\n")

	names := collectNameSpans(f.Root)
	if len(names) > 0 {
		sort.SliceStable(names, func(i, j int) bool { return names[i].DurNs > names[j].DurNs })
		k := opts.TopK
		if k > len(names) {
			k = len(names)
		}
		fmt.Fprintf(&b, "\n## Slowest names (%d of %d)\n\n", k, len(names))
		fmt.Fprintf(&b, "| name | duration | refs | merges | clusters |\n|---|---|---|---|---|\n")
		for _, n := range names[:k] {
			merges, clusters := mergeStats(n)
			fmt.Fprintf(&b, "| %s | %s | %s | %d | %s |\n",
				strings.TrimPrefix(n.Name, NameSpanPrefix), fmtDur(n.DurNs),
				attrStr(n.Attrs, "refs"), merges, clusters)
		}
		fmt.Fprintf(&b, "\n## Merge timeline — %s\n\n",
			strings.TrimPrefix(names[0].Name, NameSpanPrefix))
		writeMerges(&b, names[0], opts.TopK*4)
	}

	if weights := collectEvents(f.Root, "path_weight"); len(weights) > 0 {
		fmt.Fprintf(&b, "\n## Join-path weights\n\n| path | resemblance | walk |\n|---|---|---|\n")
		for _, ev := range weights {
			fmt.Fprintf(&b, "| %s | %s | %s |\n",
				attrStr(ev.Attrs, "path"), attrStr(ev.Attrs, "resem_w"), attrStr(ev.Attrs, "walk_w"))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeTree renders one span line and recurses, collapsing long child
// lists (batch sweeps have one child per name) past opts.MaxChildren.
func writeTree(b *strings.Builder, s *SpanNode, indent string, opts ReportOptions) {
	fmt.Fprintf(b, "%s%-*s %10s", indent, 34-len(indent), s.Name, fmtDur(s.DurNs))
	if len(s.Events) > 0 {
		fmt.Fprintf(b, "  events=%d", len(s.Events))
	}
	for _, key := range sortedKeys(s.Attrs) {
		fmt.Fprintf(b, "  %s=%v", key, s.Attrs[key])
	}
	b.WriteByte('\n')
	children := s.Children
	if len(children) > opts.MaxChildren {
		shown := append([]*SpanNode(nil), children...)
		sort.SliceStable(shown, func(i, j int) bool { return shown[i].DurNs > shown[j].DurNs })
		var restNs int64
		for _, c := range shown[opts.MaxChildren:] {
			restNs += c.DurNs
		}
		for _, c := range shown[:opts.MaxChildren] {
			writeTree(b, c, indent+"  ", opts)
		}
		fmt.Fprintf(b, "%s(+%d more children, %s total)\n",
			indent+"  ", len(children)-opts.MaxChildren, fmtDur(restNs))
		return
	}
	for _, c := range children {
		writeTree(b, c, indent+"  ", opts)
	}
}

// writeMerges renders a span subtree's merge events in trace order.
func writeMerges(b *strings.Builder, s *SpanNode, max int) {
	merges := collectEvents(s, "merge")
	if len(merges) == 0 {
		b.WriteString("(no merges)\n")
		return
	}
	b.WriteString("```\n")
	for i, ev := range merges {
		if i == max {
			fmt.Fprintf(b, "... (+%d more merges)\n", len(merges)-max)
			break
		}
		fmt.Fprintf(b, "%3d  t=+%-10s sim=%-12v %v+%v -> cluster %v\n",
			i+1, fmtDur(ev.TNs), ev.Attrs["sim"],
			ev.Attrs["size_a"], ev.Attrs["size_b"], ev.Attrs["new"])
	}
	b.WriteString("```\n")
	for _, ev := range collectEvents(s, "cut") {
		fmt.Fprintf(b, "cut: %s\n", attrLine(ev.Attrs))
	}
}

// collectNameSpans gathers every per-name batch span in the tree.
func collectNameSpans(s *SpanNode) []*SpanNode {
	var out []*SpanNode
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		if strings.HasPrefix(n.Name, NameSpanPrefix) {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s)
	return out
}

// collectEvents gathers every event with the given name from a subtree, in
// depth-first span order (per-span event order preserved).
func collectEvents(s *SpanNode, name string) []EventNode {
	var out []EventNode
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		for _, ev := range n.Events {
			if ev.Name == name {
				out = append(out, ev)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s)
	return out
}

// mergeStats counts a subtree's merges and reads its final cluster count
// from the last "cut" event ("-" when the subtree holds none).
func mergeStats(s *SpanNode) (merges int, clusters string) {
	merges = len(collectEvents(s, "merge"))
	clusters = "-"
	if cuts := collectEvents(s, "cut"); len(cuts) > 0 {
		if v, ok := cuts[len(cuts)-1].Attrs["clusters"]; ok {
			clusters = fmt.Sprintf("%v", v)
		}
	}
	return merges, clusters
}

func attrStr(m map[string]any, key string) string {
	if v, ok := m[key]; ok {
		return fmt.Sprintf("%v", v)
	}
	return "-"
}

func attrLine(m map[string]any) string {
	parts := make([]string, 0, len(m))
	for _, k := range sortedKeys(m) {
		parts = append(parts, fmt.Sprintf("%s=%v", k, m[k]))
	}
	return strings.Join(parts, " ")
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtDur renders nanoseconds with millisecond-scale rounding, matching how
// humans read pipeline stage times.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
