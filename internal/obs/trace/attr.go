package trace

import (
	"math"
	"strconv"
)

// Kind discriminates an Attr's value type.
type Kind uint8

const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// Attr is one typed key-value attribute of a span or event. Attrs are
// plain values (no interfaces, no pointers beyond the strings), so building
// them on a disabled trace allocates nothing.
type Attr struct {
	Key  string
	kind Kind
	str  string
	num  uint64 // int64, float64 bits, or 0/1 for bool
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: KindString, str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: KindInt, num: uint64(v)} }

// Float builds a float attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, kind: KindFloat, num: math.Float64bits(v)}
}

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: KindBool}
	if v {
		a.num = 1
	}
	return a
}

// Kind returns the attribute's value kind.
func (a Attr) Kind() Kind { return a.kind }

// Value returns the attribute's value as string, int64, float64, or bool —
// the JSON-safe dynamic form used by the exporters.
func (a Attr) Value() any {
	switch a.kind {
	case KindInt:
		return int64(a.num)
	case KindFloat:
		return math.Float64frombits(a.num)
	case KindBool:
		return a.num != 0
	default:
		return a.str
	}
}

// FormatValue renders the value deterministically: integers in decimal,
// floats with strconv's shortest round-trip form, bools as true/false.
func (a Attr) FormatValue() string {
	switch a.kind {
	case KindInt:
		return strconv.FormatInt(int64(a.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(a.num), 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(a.num != 0)
	default:
		return a.str
	}
}

// String renders the attribute as key=value.
func (a Attr) String() string { return a.Key + "=" + a.FormatValue() }

// attrMap converts an attr list to the dynamic map the JSON exporters use.
// Keys are unique per span/event by construction; later duplicates win.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}
