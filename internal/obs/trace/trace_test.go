package trace

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := New(Options{SamplePairEvery: 64})
	if got := tr.SamplePairEvery(); got != 64 {
		t.Fatalf("SamplePairEvery = %d", got)
	}
	a := tr.Start("expand", Int("tuples", 10))
	a.End()
	b := tr.Start("cluster")
	b.Event("merge", Int("a", 0), Int("b", 1), Float("sim", 0.25))
	b.Event("merge", Int("a", 2), Int("b", 3), Float("sim", 0.125))
	c := b.Start("inner", String("why", "test"), Bool("ok", true))
	c.SetAttrs(Float("score", 1.5))
	c.End()
	b.End()
	tr.Finish()

	if spans, events := tr.Counts(); spans != 4 || events != 2 {
		t.Fatalf("counts = %d spans, %d events", spans, events)
	}
	root := tr.Tree()
	if root.Name != "run" || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	if got := root.Children[0]; got.Name != "expand" || got.Attrs["tuples"] != int64(10) {
		t.Errorf("expand node = %+v", got)
	}
	cl := root.Children[1]
	if len(cl.Events) != 2 || cl.Events[0].Attrs["sim"] != 0.25 {
		t.Errorf("cluster events = %+v", cl.Events)
	}
	if cl.Events[0].TNs > cl.Events[1].TNs {
		t.Errorf("event timestamps out of order: %d > %d", cl.Events[0].TNs, cl.Events[1].TNs)
	}
	inner := cl.Children[0]
	if inner.Attrs["why"] != "test" || inner.Attrs["ok"] != true || inner.Attrs["score"] != 1.5 {
		t.Errorf("inner attrs = %+v", inner.Attrs)
	}
	if inner.StartNs < cl.StartNs || inner.DurNs < 0 {
		t.Errorf("inner timing start=%d dur=%d (parent start %d)", inner.StartNs, inner.DurNs, cl.StartNs)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil || tr.SamplePairEvery() != 0 {
		t.Fatal("nil trace leaked state")
	}
	sp := tr.Start("stage", Int("n", 1))
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}
	// Every span method must be a no-op on nil.
	sp.End()
	sp.SetAttrs(String("k", "v"))
	sp.Event("ev", Float("x", 1))
	sp.EventAll([]Event{{Name: "ev"}})
	if sp.Start("child") != nil {
		t.Fatal("nil span produced a child")
	}
	if sp.ID() != -1 || sp.Name() != "" {
		t.Fatal("nil span identity leaked")
	}
	tr.Finish()
	if spans, events := tr.Counts(); spans != 0 || events != 0 {
		t.Fatal("nil trace counted")
	}
	if tr.Tree() != nil {
		t.Fatal("nil trace produced a tree")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	buf.Reset()
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("nil WriteChromeJSON: %v", err)
	}
	var cf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &cf); err != nil {
		t.Fatalf("nil chrome output invalid: %v", err)
	}
	if len(cf.TraceEvents) != 0 {
		t.Fatalf("nil trace emitted %d events", len(cf.TraceEvents))
	}
}

func TestEventAllPreservesOrderAndStamps(t *testing.T) {
	tr := New(Options{})
	sp := tr.Start("similarities")
	sp.EventAll([]Event{
		{Name: "pair", TNs: 5, Attrs: []Attr{Int("i", 0), Int("j", 1)}},
		{Name: "pair", Attrs: []Attr{Int("i", 0), Int("j", 3)}},
	})
	sp.End()
	node := tr.Tree().Children[0]
	if len(node.Events) != 2 {
		t.Fatalf("events = %+v", node.Events)
	}
	if node.Events[0].TNs != 5 {
		t.Errorf("preset timestamp overwritten: %d", node.Events[0].TNs)
	}
	if node.Events[1].TNs == 0 {
		t.Errorf("unset timestamp not stamped")
	}
	if node.Events[1].Attrs["j"] != int64(3) {
		t.Errorf("attrs = %+v", node.Events[1].Attrs)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tr := New(Options{SamplePairEvery: 8})
	sp := tr.Start("batch")
	sp.Start("name:A", Int("refs", 3)).End()
	sp.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.SamplePairEvery != 8 || f.Spans != 3 || f.Root == nil {
		t.Fatalf("file = %+v", f)
	}
	if f.Root.Children[0].Children[0].Name != "name:A" {
		t.Fatalf("tree = %+v", f.Root)
	}
	// JSON numbers decode as float64; the report layer formats them, it
	// never does arithmetic, so that is part of the contract.
	if f.Root.Children[0].Children[0].Attrs["refs"] != float64(3) {
		t.Fatalf("attrs = %+v", f.Root.Children[0].Children[0].Attrs)
	}

	if _, err := Read(strings.NewReader(`{"format":"other/9"}`)); err == nil {
		t.Fatal("foreign format accepted")
	}
}

func TestConcurrentSpansAndEvents(t *testing.T) {
	tr := New(Options{})
	parent := tr.Start("batch")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := parent.Start("name:x", Int("worker", int64(i)))
			for j := 0; j < 10; j++ {
				sp.Event("merge", Int("j", int64(j)))
			}
			sp.End()
		}(i)
	}
	wg.Wait()
	parent.End()
	tr.Finish()
	spans, events := tr.Counts()
	if spans != 18 || events != 160 {
		t.Fatalf("counts = %d spans, %d events", spans, events)
	}
	node := tr.Tree().Children[0]
	if len(node.Children) != 16 {
		t.Fatalf("children = %d", len(node.Children))
	}
	ids := make(map[int]bool)
	for _, c := range node.Children {
		if ids[c.ID] {
			t.Fatalf("duplicate span id %d", c.ID)
		}
		ids[c.ID] = true
		if len(c.Events) != 10 {
			t.Fatalf("span %d has %d events", c.ID, len(c.Events))
		}
	}
}

func TestAttrFormatting(t *testing.T) {
	cases := []struct {
		attr Attr
		want string
	}{
		{Int("n", 42), "n=42"},
		{Float("sim", 0.0001220703125), "sim=0.0001220703125"},
		{Float("e", 1e-9), "e=1e-09"},
		{String("name", "Wei Wang"), "name=Wei Wang"},
		{Bool("ok", true), "ok=true"},
	}
	for _, c := range cases {
		if got := c.attr.String(); got != c.want {
			t.Errorf("attr %v = %q, want %q", c.attr.Kind(), got, c.want)
		}
	}
	if v, ok := Int("n", 42).Value().(int64); !ok || v != 42 {
		t.Errorf("Int value = %v", Int("n", 42).Value())
	}
}

func TestLogger(t *testing.T) {
	if lg := NewLogger(nil, slog.LevelInfo); lg.Enabled(nil, slog.LevelError) {
		t.Fatal("nil-writer logger is enabled")
	}
	var buf bytes.Buffer
	tr := New(Options{})
	sp := tr.Start("train_svm")
	lg := WithSpan(NewLogger(&buf, slog.LevelInfo), sp)
	lg.Info("trained", "paths", 12)
	out := buf.String()
	for _, want := range []string{"span=1", "span_name=train_svm", "paths=12", "msg=trained"} {
		if !strings.Contains(out, want) {
			t.Errorf("log record %q misses %q", out, want)
		}
	}
	// A nil span keeps the record shape with the sentinel id.
	buf.Reset()
	WithSpan(NewLogger(&buf, slog.LevelInfo), nil).Info("off")
	if !strings.Contains(buf.String(), "span=-1") {
		t.Errorf("nil-span record = %q", buf.String())
	}
}
