package trace

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging rides the trace spine: NewLogger builds a slog.Logger
// whose records carry the id and name of the span they were derived from,
// so a log line always points back into the trace tree. Logging is off by
// default — a nil writer yields a logger whose handler reports every level
// disabled, so call sites pay one Enabled check and format nothing.

// discardHandler is slog's off switch: nothing is enabled, nothing is kept.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// NewLogger returns a text logger writing to w at the given level. A nil w
// returns the discarding logger (the default, off state).
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	if w == nil {
		return slog.New(discardHandler{})
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// WithSpan stamps a logger with a span's identity: every record gains
// span=<id> and span_name=<name>. A nil span (tracing off) stamps span=-1,
// keeping the record shape stable either way.
func WithSpan(l *slog.Logger, s *Span) *slog.Logger {
	return l.With(slog.Int("span", s.ID()), slog.String("span_name", s.Name()))
}
