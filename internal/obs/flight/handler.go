package flight

import (
	"encoding/json"
	"html/template"
	"net/http"
	"strings"
	"time"
)

// Handler serves the recorder at /debug/requests: JSON by default (the
// snapshot verbatim, machine-scrapable), or an x/net/trace-style HTML table
// when the client asks for text/html (a browser) or ?format=html. Works on
// a nil recorder — empty snapshot, empty table — so mounting it is never
// conditional.
func (rc *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := rc.Snapshot()
		if wantsHTML(r) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			if err := requestsTmpl.Execute(w, snap); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

func wantsHTML(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "html":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/html")
}

// Template helpers: latency in human units, start time to the millisecond,
// flags as a compact string.
var tmplFuncs = template.FuncMap{
	"lat": func(d time.Duration) string { return d.Round(10 * time.Microsecond).String() },
	"ts":  func(t time.Time) string { return t.Format("15:04:05.000") },
	"flags": func(r Record) string {
		var f []string
		if r.Cached {
			f = append(f, "cached")
		}
		if r.Coalesced {
			f = append(f, "coalesced")
		}
		if r.Degraded {
			f = append(f, "degraded")
		}
		if r.NegCached {
			f = append(f, "neg-cached")
		}
		if r.Incident != "" {
			f = append(f, "incident:"+r.Incident)
		}
		return strings.Join(f, " ")
	},
	"thresh": func(ns int64) string { return time.Duration(ns).String() },
}

var requestsTmpl = template.Must(template.New("requests").Funcs(tmplFuncs).Parse(`<!DOCTYPE html>
<html><head><title>/debug/requests</title><style>
body { font-family: monospace; margin: 1em; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
th { background: #eee; }
tr.err td { background: #fee; }
tr.slow td { background: #ffd; }
h2 { margin-bottom: 0.2em; }
</style></head><body>
<h1>/debug/requests — flight recorder</h1>
<p>{{.Total}} requests observed · slow threshold {{thresh .SlowThresholdNs}} · {{.TraceWrites}} trace artifacts ({{.TraceErrors}} failed)</p>
{{define "table"}}<table>
<tr><th>seq</th><th>start</th><th>route</th><th>name</th><th>status</th><th>latency</th><th>id</th><th>trace</th><th>flags</th><th>error</th><th>artifact</th></tr>
{{range .}}<tr{{if .Incident}} class="err"{{else if ge .Status 500}} class="err"{{end}}>
<td>{{.Seq}}</td><td>{{ts .Start}}</td><td>{{.Route}}</td><td>{{.Name}}</td><td>{{.Status}}</td><td>{{lat .Latency}}</td><td>{{.ID}}</td><td>{{.TraceID}}</td><td>{{flags .}}</td><td>{{.Error}}</td><td>{{.TraceFile}}</td>
</tr>{{end}}
</table>{{end}}
<h2>Slowest ({{len .Slowest}})</h2>
{{template "table" .Slowest}}
<h2>Errors ({{len .Errors}})</h2>
{{template "table" .Errors}}
<h2>Recent ({{len .Recent}})</h2>
{{template "table" .Recent}}
</body></html>
`))
