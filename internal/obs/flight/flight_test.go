package flight

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"distinct/internal/obs/trace"
)

func rec(seqHint int, lat time.Duration, status int) Record {
	return Record{
		ID:      "req-" + strings.Repeat("0", 3) + string(rune('a'+seqHint%26)),
		Route:   "name",
		Name:    "Wei Wang",
		Status:  status,
		Start:   time.Unix(1700000000, 0),
		Latency: lat,
	}
}

func TestRecorderLanes(t *testing.T) {
	rc := New(Options{Records: 4, SlowLane: 2, ErrorLane: 2, SlowThreshold: 100 * time.Millisecond})
	// 6 records into a 4-ring: the first two fall out of Recent.
	lats := []time.Duration{5, 300, 10, 20, 250, 400} // ms
	statuses := []int{200, 200, 500, 200, 200, 500}
	for i := range lats {
		r := rec(i, lats[i]*time.Millisecond, statuses[i])
		rc.Observe(r, nil)
	}
	snap := rc.Snapshot()
	if snap.Total != 6 {
		t.Fatalf("total = %d", snap.Total)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent = %d records", len(snap.Recent))
	}
	// Newest first: seq 6,5,4,3.
	for i, want := range []uint64{6, 5, 4, 3} {
		if snap.Recent[i].Seq != want {
			t.Errorf("recent[%d].Seq = %d, want %d", i, snap.Recent[i].Seq, want)
		}
	}
	// Slow lane pins the 2 slowest ever (400ms seq 6, 300ms seq 2) even
	// though seq 2 left the ring.
	if len(snap.Slowest) != 2 || snap.Slowest[0].Seq != 6 || snap.Slowest[1].Seq != 2 {
		t.Errorf("slowest = %+v", seqs(snap.Slowest))
	}
	// Error lane keeps the errored records, newest first.
	if len(snap.Errors) != 2 || snap.Errors[0].Seq != 6 || snap.Errors[1].Seq != 3 {
		t.Errorf("errors = %+v", seqs(snap.Errors))
	}
}

func seqs(rs []Record) []uint64 {
	out := make([]uint64, len(rs))
	for i, r := range rs {
		out[i] = r.Seq
	}
	return out
}

func TestErroredIncludesIncidents(t *testing.T) {
	rc := New(Options{})
	r := rec(0, time.Millisecond, 200)
	r.Incident = "timeout"
	rc.Observe(r, nil)
	snap := rc.Snapshot()
	if len(snap.Errors) != 1 {
		t.Fatalf("incident-bearing 200 not in the error lane: %+v", snap.Errors)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var rc *Recorder
	rc.Observe(rec(0, time.Second, 500), nil) // must not panic
	snap := rc.Snapshot()
	if snap.Total != 0 || snap.Recent != nil {
		t.Errorf("nil snapshot = %+v", snap)
	}
	if rc.SlowThreshold() != 0 || rc.TailDir() != "" {
		t.Error("nil recorder leaked configuration")
	}
	w := httptest.NewRecorder()
	rc.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 200 {
		t.Errorf("nil handler status %d", w.Code)
	}
}

func TestTraceArtifactWrittenForTailSampledOnly(t *testing.T) {
	dir := t.TempDir()
	rc := New(Options{SlowThreshold: 100 * time.Millisecond, TailDir: dir})

	mkTrace := func() *trace.Trace {
		tr := trace.New(trace.Options{RootName: "request"})
		sp := tr.Start(trace.NameSpanPrefix + "Wei Wang")
		sp.End()
		tr.Finish()
		return tr
	}

	fast := rec(0, time.Millisecond, 200)
	fast.ID = "fast"
	rc.Observe(fast, mkTrace())
	slow := rec(1, time.Second, 200)
	slow.ID = "slow"
	rc.Observe(slow, mkTrace())
	errored := rec(2, time.Millisecond, 500)
	errored.ID = "errored"
	rc.Observe(errored, mkTrace())

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	if len(entries) != 2 {
		t.Fatalf("artifacts = %v, want slow+errored only", names)
	}
	snap := rc.Snapshot()
	if snap.TraceWrites != 2 || snap.TraceErrors != 0 {
		t.Errorf("trace writes=%d errors=%d", snap.TraceWrites, snap.TraceErrors)
	}
	// The artifact is a valid distinct-trace file, and the record points
	// at it.
	if _, err := trace.ReadFileJSON(filepath.Join(dir, "req-slow.json")); err != nil {
		t.Errorf("slow artifact unreadable: %v", err)
	}
	for _, r := range snap.Slowest {
		if r.ID == "slow" && r.TraceFile == "" {
			t.Error("slow record has no TraceFile")
		}
	}
}

func TestSanitizeID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-123_X.y": "abc-123_X.y",
		"a/b\\c d":    "a-b-c-d",
		"":            "anon",
		"über":        "--ber", // ü is two bytes, both replaced
	} {
		if got := SanitizeID(in); got != want {
			t.Errorf("SanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("x", 100)
	if got := SanitizeID(long); len(got) != 64 {
		t.Errorf("long id not capped: %d bytes", len(got))
	}
}

// TestRecorderConcurrent hammers Observe and Snapshot from many goroutines;
// run under -race (scripts/check.sh does) this is the recorder's
// thread-safety proof.
func TestRecorderConcurrent(t *testing.T) {
	rc := New(Options{Records: 32, SlowLane: 4, ErrorLane: 4, SlowThreshold: 50 * time.Millisecond})
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	wg.Add(writers + 2)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				status := 200
				if i%17 == 0 {
					status = 500
				}
				rc.Observe(rec(w, time.Duration(i%97)*time.Millisecond, status), nil)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				snap := rc.Snapshot()
				if len(snap.Recent) > 32 || len(snap.Slowest) > 4 || len(snap.Errors) > 4 {
					t.Error("lane overflow")
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := rc.Snapshot()
	if snap.Total != writers*perWriter {
		t.Fatalf("total = %d, want %d", snap.Total, writers*perWriter)
	}
	// Sequence numbers in Recent must be unique and descending.
	for i := 1; i < len(snap.Recent); i++ {
		if snap.Recent[i].Seq >= snap.Recent[i-1].Seq {
			t.Fatalf("recent not newest-first at %d: %v", i, seqs(snap.Recent))
		}
	}
	// Slowest is ordered slowest-first.
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].Latency > snap.Slowest[i-1].Latency {
			t.Fatalf("slow lane out of order: %v", snap.Slowest)
		}
	}
}

func TestHandlerJSONAndHTML(t *testing.T) {
	rc := New(Options{})
	r := rec(0, 42*time.Millisecond, 200)
	r.Cached = true
	rc.Observe(r, nil)

	w := httptest.NewRecorder()
	rc.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON body: %v", err)
	}
	if snap.Total != 1 || len(snap.Recent) != 1 || !snap.Recent[0].Cached {
		t.Errorf("snapshot = %+v", snap)
	}

	w2 := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/requests", nil)
	req.Header.Set("Accept", "text/html")
	rc.Handler().ServeHTTP(w2, req)
	body := w2.Body.String()
	if ct := w2.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("HTML content type %q", ct)
	}
	if !strings.Contains(body, "flight recorder") || !strings.Contains(body, "Wei Wang") {
		t.Errorf("HTML table missing content:\n%s", body)
	}
	// ?format=json wins over the Accept header.
	w3 := httptest.NewRecorder()
	req3 := httptest.NewRequest("GET", "/debug/requests?format=json", nil)
	req3.Header.Set("Accept", "text/html")
	rc.Handler().ServeHTTP(w3, req3)
	if ct := w3.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("format=json overridden by Accept: %q", ct)
	}
}
