// Package flight is a request-scoped flight recorder for the serving stack:
// an always-on, mutex-cheap ring buffer of the last N completed requests
// plus tail-sampling "keep lanes" that pin the K slowest and the most
// recent errored requests, so "why was THIS lookup slow / degraded / a 404"
// is answerable after the fact without re-running it.
//
// The recorder follows the obs nil convention: every method on a nil
// *Recorder is a no-op, so the serving layer carries no enablement branches
// and the disabled path costs one inlined nil check.
//
// Observe's critical section is a ring-slot copy plus (rarely) a bounded
// heap fix-up — no allocation, no I/O — so the recorder can sit on the
// request hot path. When a tail directory is configured, requests that
// enter a keep lane because they were slow past the threshold or errored
// get their per-request engine trace (internal/obs/trace, distinct-trace/1
// format) written there as an artifact; the file write happens outside the
// lock, after the response, and a failed write only bumps a counter.
//
// Snapshot and Handler (handler.go) expose the three lanes — recent,
// slowest, errors — as JSON and as an x/net/trace-style HTML table at
// /debug/requests.
package flight

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"distinct/internal/obs/trace"
)

// Defaults for the knobs Options leaves zero.
const (
	// DefaultRecords is the ring size: how many completed requests are kept.
	DefaultRecords = 256
	// DefaultSlowLane is how many slowest-ever requests are pinned.
	DefaultSlowLane = 16
	// DefaultErrorLane is how many recent errored requests are pinned.
	DefaultErrorLane = 16
	// DefaultSlowThreshold marks a request slow: past it the request is
	// always access-logged and eligible for a trace artifact.
	DefaultSlowThreshold = 500 * time.Millisecond
)

// Record is one completed request as the recorder keeps it. Records are
// plain values — strings and scalars — so storing one is a struct copy and
// a stored record can never be mutated by a later request.
type Record struct {
	// Seq is the recorder-assigned sequence number (1 = first observed).
	Seq uint64 `json:"seq"`
	// ID is the request id (generated or echoed X-Request-ID).
	ID string `json:"id"`
	// TraceID is the W3C traceparent trace-id when the client sent one.
	TraceID string `json:"trace_id,omitempty"`
	// Route is the serving route ("name", "batch", "names").
	Route string `json:"route"`
	// Name is the looked-up name (or a batch summary label).
	Name string `json:"name,omitempty"`
	// Status is the HTTP status written.
	Status int `json:"status"`
	// Start is when the request entered the handler.
	Start time.Time `json:"start"`
	// Latency is the handler wall time (marshals as nanoseconds).
	Latency time.Duration `json:"latency_ns"`
	// Cached, Coalesced, Degraded mirror the response envelope's serving
	// metadata; NegCached marks a 404 served from the negative cache.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	Degraded  bool `json:"degraded,omitempty"`
	NegCached bool `json:"neg_cached,omitempty"`
	// Stale marks a response served from a previous database version inside
	// the stale-while-revalidate window.
	Stale bool `json:"stale,omitempty"`
	// Client is the quota identity the request was charged to, when
	// per-client quotas are enabled.
	Client string `json:"client,omitempty"`
	// Brownout is the load-shed ladder's level at response time, recorded
	// only when engaged ("degraded", "stale", "shed").
	Brownout string `json:"brownout,omitempty"`
	// Incident is the incident reason ("panic", "timeout", ...) when the
	// computation deviated from the clean path.
	Incident string `json:"incident,omitempty"`
	// Error is the error message of a non-2xx envelope.
	Error string `json:"error,omitempty"`
	// TraceFile is the tail-sampled trace artifact path, when one was
	// written for this request.
	TraceFile string `json:"trace_file,omitempty"`
}

// errored reports whether the record belongs in the error lane: a server
// failure or any incident, clean 4xxs excluded (a 404 probe is not an
// error of ours).
func (r *Record) errored() bool { return r.Status >= 500 || r.Incident != "" }

// Options configures a Recorder. The zero value selects every default.
type Options struct {
	// Records sizes the ring of last completed requests (0 = DefaultRecords).
	Records int
	// SlowLane is how many slowest requests are pinned (0 = DefaultSlowLane).
	SlowLane int
	// ErrorLane is how many recent errored requests are pinned
	// (0 = DefaultErrorLane).
	ErrorLane int
	// SlowThreshold marks a request slow (0 = DefaultSlowThreshold).
	SlowThreshold time.Duration
	// TailDir, when non-empty, receives trace artifacts for tail-sampled
	// requests (slow past the threshold, or errored) that carried a trace.
	TailDir string
}

// Recorder is the flight recorder. Create with New; a nil Recorder records
// nothing and serves empty snapshots.
type Recorder struct {
	slowThreshold time.Duration
	tailDir       string

	mu    sync.Mutex
	ring  []Record // capacity fixed; filled up to len
	next  int      // ring slot the next record lands in
	total uint64   // records ever observed
	slow  []Record // min-heap on Latency, capped at slowLane
	slowN int      // heap capacity
	errs  []Record // ring of errored records
	errN  int      // error-ring capacity
	eNext int

	traceWrites atomic.Uint64 // artifacts written
	traceErrs   atomic.Uint64 // artifact writes that failed
}

// New builds a recorder; zero option fields select the defaults.
func New(o Options) *Recorder {
	if o.Records <= 0 {
		o.Records = DefaultRecords
	}
	if o.SlowLane <= 0 {
		o.SlowLane = DefaultSlowLane
	}
	if o.ErrorLane <= 0 {
		o.ErrorLane = DefaultErrorLane
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = DefaultSlowThreshold
	}
	return &Recorder{
		slowThreshold: o.SlowThreshold,
		tailDir:       o.TailDir,
		ring:          make([]Record, 0, o.Records),
		slow:          make([]Record, 0, o.SlowLane),
		slowN:         o.SlowLane,
		errs:          make([]Record, 0, o.ErrorLane),
		errN:          o.ErrorLane,
	}
}

// SlowThreshold returns the configured slow mark (0 on a nil recorder) —
// the serving middleware shares it for its always-log decision.
func (rc *Recorder) SlowThreshold() time.Duration {
	if rc == nil {
		return 0
	}
	return rc.slowThreshold
}

// TailDir returns the artifact directory ("" when artifacts are off or the
// recorder is nil). The serving layer uses it to decide whether per-request
// traces are worth building at all.
func (rc *Recorder) TailDir() string {
	if rc == nil {
		return ""
	}
	return rc.tailDir
}

// Observe stores one completed request. tr, when non-nil, is the request's
// engine trace; it is written to the tail directory only if the request
// tail-samples (slow past the threshold, or errored), so building the trace
// is cheap insurance and writing it is rare. Safe for concurrent use; the
// file write happens outside the lock.
func (rc *Recorder) Observe(rec Record, tr *trace.Trace) {
	if rc == nil {
		return
	}
	slow := rec.Latency >= rc.slowThreshold
	keepTrace := (slow || rec.errored()) && tr != nil && rc.tailDir != ""
	if keepTrace {
		rec.TraceFile = filepath.Join(rc.tailDir, "req-"+SanitizeID(rec.ID)+".json")
	}

	rc.mu.Lock()
	rc.total++
	rec.Seq = rc.total
	if len(rc.ring) < cap(rc.ring) {
		rc.ring = append(rc.ring, rec)
	} else {
		rc.ring[rc.next] = rec
	}
	rc.next = (rc.next + 1) % cap(rc.ring)
	// Slow lane: the K slowest requests ever, kept as a min-heap so the
	// common fast request costs one comparison against the current floor.
	if len(rc.slow) < rc.slowN {
		rc.slow = append(rc.slow, rec)
		siftUp(rc.slow, len(rc.slow)-1)
	} else if rec.Latency > rc.slow[0].Latency {
		rc.slow[0] = rec
		siftDown(rc.slow, 0)
	}
	if rec.errored() {
		if len(rc.errs) < rc.errN {
			rc.errs = append(rc.errs, rec)
		} else {
			rc.errs[rc.eNext] = rec
		}
		rc.eNext = (rc.eNext + 1) % rc.errN
	}
	rc.mu.Unlock()

	if keepTrace {
		if err := tr.WriteFile(rec.TraceFile); err != nil {
			rc.traceErrs.Add(1)
		} else {
			rc.traceWrites.Add(1)
		}
	}
}

// Snapshot is a point-in-time copy of the recorder's three lanes.
type Snapshot struct {
	// Total counts every request observed since startup.
	Total uint64 `json:"total"`
	// TraceWrites / TraceErrors count tail-sampled trace artifacts.
	TraceWrites uint64 `json:"trace_writes,omitempty"`
	TraceErrors uint64 `json:"trace_errors,omitempty"`
	// SlowThresholdNs is the configured slow mark.
	SlowThresholdNs int64 `json:"slow_threshold_ns"`
	// Recent holds the ring, newest first.
	Recent []Record `json:"recent"`
	// Slowest holds the slow lane, slowest first.
	Slowest []Record `json:"slowest"`
	// Errors holds the error lane, newest first.
	Errors []Record `json:"errors"`
}

// Snapshot copies the current lanes. The nil recorder returns the zero
// snapshot.
func (rc *Recorder) Snapshot() Snapshot {
	if rc == nil {
		return Snapshot{}
	}
	rc.mu.Lock()
	snap := Snapshot{
		Total:           rc.total,
		SlowThresholdNs: int64(rc.slowThreshold),
		Recent:          make([]Record, 0, len(rc.ring)),
		Slowest:         append([]Record(nil), rc.slow...),
		Errors:          make([]Record, 0, len(rc.errs)),
	}
	// The ring in arrival order starts at next (the oldest slot once the
	// ring has wrapped); emit newest first.
	for i := 0; i < len(rc.ring); i++ {
		idx := rc.next - 1 - i
		if idx < 0 {
			idx += len(rc.ring)
		}
		snap.Recent = append(snap.Recent, rc.ring[idx])
	}
	for i := 0; i < len(rc.errs); i++ {
		idx := rc.eNext - 1 - i
		if idx < 0 {
			idx += len(rc.errs)
		}
		snap.Errors = append(snap.Errors, rc.errs[idx])
	}
	rc.mu.Unlock()
	snap.TraceWrites = rc.traceWrites.Load()
	snap.TraceErrors = rc.traceErrs.Load()
	// The slow lane is a heap; order it slowest-first for presentation.
	sortByLatencyDesc(snap.Slowest)
	return snap
}

// sortByLatencyDesc orders records by latency, slowest first, breaking ties
// by sequence so snapshots are deterministic.
func sortByLatencyDesc(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && less(recs[j-1], recs[j]); j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
}

func less(a, b Record) bool {
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	return a.Seq < b.Seq
}

// siftUp/siftDown maintain the slow lane's min-heap on Latency.
func siftUp(h []Record, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Latency <= h[i].Latency {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []Record, i int) {
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < len(h) && h[l].Latency < h[min].Latency {
			min = l
		}
		if r < len(h) && h[r].Latency < h[min].Latency {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// SanitizeID maps a request id to a filesystem- and log-safe token: ASCII
// letters, digits, '.', '_' and '-' pass through, anything else becomes
// '-', and the result is capped at 64 bytes ("anon" if nothing survives).
func SanitizeID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	out := []byte(id)
	ok := true
	for i := 0; i < len(out); i++ {
		c := out[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-' {
			continue
		}
		out[i] = '-'
		ok = false
	}
	if len(out) == 0 {
		return "anon"
	}
	if ok {
		return id
	}
	return string(out)
}
