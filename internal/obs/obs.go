// Package obs is a stdlib-only observability layer for the DISTINCT
// pipeline: atomic counters, gauges, and fixed-bucket histograms held in a
// named registry, plus a stage-span API that records wall time, items
// processed, and heap allocations for each pipeline stage.
//
// The whole package is nil-tolerant: a nil *Registry hands out nil metric
// handles whose methods are no-ops, so instrumented code needs no "is
// observability on?" branches and pays only an inlined nil check when it is
// off. Enabling observability is handing the pipeline a NewRegistry().
//
// Handles are cheap to look up but cheaper to keep: hot paths should
// resolve their Counter/Histogram once and hold the pointer, as all update
// methods are lock-free atomics safe for concurrent use.
//
// Snapshot serializes the registry's current state; Serve (serve.go)
// exposes it over HTTP together with expvar and pprof.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic int64. The nil Counter
// discards updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically stored float64 level. The nil Gauge discards
// updates.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v as the gauge's level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the level by delta (compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level (0 for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are ascending
// upper bounds; an observation lands in the first bucket whose bound is >=
// the value, or in the implicit overflow bucket past the last bound. The
// nil Histogram discards observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets is the default bucket layout for stage and per-item
// latencies, in seconds: 100µs to 30s in roughly ×3 steps.
func DurationBuckets() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (~12); linear scan beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 for the nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Stage aggregates the spans of one pipeline stage.
type Stage struct {
	count  atomic.Int64 // completed spans
	wallNs atomic.Int64
	items  atomic.Int64
	allocs atomic.Int64 // heap objects allocated while spans were open
	bytes  atomic.Int64 // heap bytes allocated while spans were open
}

// Span measures one invocation of a pipeline stage: wall time plus the
// process-wide heap allocation delta while it was open (an upper bound on
// the stage's own allocations when other goroutines run concurrently). The
// zero Span (from a nil registry) is inert and its End returns immediately
// without reading any clock.
type Span struct {
	stage       *Stage
	start       time.Time
	startAllocs uint64
	startBytes  uint64
}

// readAllocs samples the runtime's cumulative heap allocation metrics.
// runtime/metrics reads are cheap (no stop-the-world), so spans can wrap
// even modestly sized stages.
func readAllocs() (objects, bytes uint64) {
	s := make([]metrics.Sample, 2)
	s[0].Name = "/gc/heap/allocs:objects"
	s[1].Name = "/gc/heap/allocs:bytes"
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		objects = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		bytes = s[1].Value.Uint64()
	}
	return objects, bytes
}

// End completes the span, crediting the stage with the elapsed wall time,
// the allocation delta, and items processed.
func (s Span) End(items int) {
	if s.stage == nil {
		return
	}
	wall := time.Since(s.start)
	objs, bytes := readAllocs()
	s.stage.count.Add(1)
	s.stage.wallNs.Add(wall.Nanoseconds())
	s.stage.items.Add(int64(items))
	s.stage.allocs.Add(int64(objs - s.startAllocs))
	s.stage.bytes.Add(int64(bytes - s.startBytes))
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled state: every lookup
// returns a nil handle and Snapshot returns the zero Snapshot.
type Registry struct {
	mu     sync.Mutex // guards the maps; metric updates are atomic
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	stages map[string]*Stage
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		stages: make(map[string]*Stage),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (nil bounds means DurationBuckets). Later calls
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets()
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// stage returns the named stage aggregate, creating it on first use.
func (r *Registry) stage(name string) *Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[name]
	if !ok {
		s = &Stage{}
		r.stages[name] = s
	}
	return s
}

// StartStage opens a span on the named pipeline stage. On a nil registry it
// returns the inert zero Span without touching the clock.
func (r *Registry) StartStage(name string) Span {
	if r == nil {
		return Span{}
	}
	objs, bytes := readAllocs()
	return Span{
		stage:       r.stage(name),
		start:       time.Now(),
		startAllocs: objs,
		startBytes:  bytes,
	}
}

// HistogramSnapshot is the serialized state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	// Counts has one entry per bound plus a final overflow bucket.
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	// P50/P95/P99 are quantile estimates interpolated from the bucket
	// counts (see Quantile). Zero when the histogram is empty.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// interpolating linearly within the bucket that holds the target rank — the
// same estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from zero; ranks landing in the overflow bucket clamp to the
// last bound, as the histogram does not know how far past it values went.
// Returns 0 for an empty histogram.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count <= 0 || len(hs.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(hs.Count)
	var cum float64
	for i, c := range hs.Counts {
		if i >= len(hs.Bounds) {
			return hs.Bounds[len(hs.Bounds)-1]
		}
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = hs.Bounds[i-1]
			}
			upper := hs.Bounds[i]
			return lower + (upper-lower)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return hs.Bounds[len(hs.Bounds)-1]
}

// fillQuantiles stamps the snapshot's P50/P95/P99 estimates.
func (hs *HistogramSnapshot) fillQuantiles() {
	hs.P50 = hs.Quantile(0.50)
	hs.P95 = hs.Quantile(0.95)
	hs.P99 = hs.Quantile(0.99)
}

// StageSnapshot is the serialized state of one pipeline stage.
type StageSnapshot struct {
	Count  int64 `json:"count"`
	WallNs int64 `json:"wall_ns"`
	Items  int64 `json:"items"`
	Allocs int64 `json:"allocs"`
	Bytes  int64 `json:"bytes"`
}

// Snapshot is a point-in-time copy of a registry. Map keys serialize in
// sorted order under encoding/json, so snapshots diff cleanly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     map[string]StageSnapshot     `json:"stages,omitempty"`
}

// Snapshot copies the registry's current state. Individual metric reads are
// atomic; the snapshot as a whole is not a consistent cut across metrics
// updated concurrently, which is fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.counts) > 0 {
		snap.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.count.Load(),
				Sum:    math.Float64frombits(h.sum.Load()),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			hs.fillQuantiles()
			snap.Histograms[name] = hs
		}
	}
	if len(r.stages) > 0 {
		snap.Stages = make(map[string]StageSnapshot, len(r.stages))
		for name, s := range r.stages {
			snap.Stages[name] = StageSnapshot{
				Count:  s.count.Load(),
				WallNs: s.wallNs.Load(),
				Items:  s.items.Load(),
				Allocs: s.allocs.Load(),
				Bytes:  s.bytes.Load(),
			}
		}
	}
	return snap
}

// StageNames returns the snapshot's stage names sorted, for stable reports.
func (s Snapshot) StageNames() []string {
	names := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile dumps the registry snapshot to a file (the -metrics flag of the
// CLIs). A nil registry writes the empty snapshot, so callers need no
// enablement check.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteText renders the snapshot as a compact human-readable listing:
// counters and gauges one per line, histograms with count/sum and the
// p50/p95/p99 estimates, stages with wall time and items. Keys print in
// sorted order, so output diffs cleanly between runs.
func (s Snapshot) WriteText(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		pr("counter %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pr("gauge   %-40s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pr("hist    %-40s count=%d sum=%.6g p50=%.3g p95=%.3g p99=%.3g\n",
			name, h.Count, h.Sum, h.P50, h.P95, h.P99)
	}
	for _, name := range s.StageNames() {
		st := s.Stages[name]
		pr("stage   %-40s count=%d wall=%s items=%d allocs=%d bytes=%d\n",
			name, st.Count, time.Duration(st.WallNs), st.Items, st.Allocs, st.Bytes)
	}
	return err
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
