package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served.pairs").Add(12)
	r.StartStage("served.stage").End(5)

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	// /metrics returns the snapshot as valid JSON.
	var snap Snapshot
	if err := json.Unmarshal(getBody(t, ts.URL+"/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap.Counters["served.pairs"] != 12 {
		t.Errorf("/metrics counters = %+v", snap.Counters)
	}
	if snap.Stages["served.stage"].Items != 5 {
		t.Errorf("/metrics stages = %+v", snap.Stages)
	}

	// /debug/vars is expvar-shaped JSON: one object including the standard
	// published vars and this registry under "distinct".
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(getBody(t, ts.URL+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	for _, key := range []string{"cmdline", "memstats", "distinct"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars misses %q (has %d keys)", key, len(vars))
		}
	}
	var published Snapshot
	if err := json.Unmarshal(vars["distinct"], &published); err != nil {
		t.Fatalf("distinct var is not a snapshot: %v", err)
	}
	if published.Counters["served.pairs"] != 12 {
		t.Errorf("published snapshot = %+v", published)
	}

	// pprof index and a concrete profile both serve.
	if body := getBody(t, ts.URL+"/debug/pprof/"); len(body) == 0 {
		t.Error("pprof index is empty")
	}
	if body := getBody(t, ts.URL+"/debug/pprof/heap"); len(body) == 0 {
		t.Error("heap profile is empty")
	}
	if body := getBody(t, ts.URL+"/debug/pprof/goroutine?debug=1"); len(body) == 0 {
		t.Error("goroutine profile is empty")
	}
}

func TestServeLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Counter("live").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var snap Snapshot
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/metrics"), &snap); err != nil {
		t.Fatalf("served /metrics is not valid JSON: %v", err)
	}
	if snap.Counters["live"] != 1 {
		t.Errorf("served counters = %+v", snap.Counters)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestCloseDrainsInFlightRequests is the regression test for the graceful
// shutdown: a request in flight when Close is called must complete instead
// of being cut off, and Close must block until it has.
func TestCloseDrainsInFlightRequests(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// A naturally slow request: the execution tracer streams for a full
	// second before the handler returns.
	type result struct {
		body []byte
		code int
		err  error
	}
	started := make(chan struct{})
	done := make(chan result, 1)
	go func() {
		close(started)
		resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/trace?seconds=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{body: b, code: resp.StatusCode, err: err}
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the request reach the handler

	closeStart := time.Now()
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	closeDur := time.Since(closeStart)

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Errorf("in-flight request status = %d", res.code)
	}
	if len(res.body) == 0 {
		t.Error("in-flight request body is empty")
	}
	// Close must have waited for the ~900ms the tracer still had to run.
	if closeDur < 500*time.Millisecond {
		t.Errorf("Close returned after %v; did not drain the in-flight request", closeDur)
	}

	// After shutdown the listener no longer accepts connections.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting requests after Close")
	}
}

func TestHandlerOnNilRegistry(t *testing.T) {
	var r *Registry
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	var snap Snapshot
	if err := json.Unmarshal(getBody(t, ts.URL+"/metrics"), &snap); err != nil {
		t.Fatalf("nil-registry /metrics is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 0 {
		t.Errorf("nil-registry snapshot = %+v", snap)
	}
}
