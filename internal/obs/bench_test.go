package obs

import "testing"

// The disabled (nil-registry) fast path must cost nothing measurable: a nil
// check per update, no clock reads, no allocation. These benchmarks pin
// that down next to the enabled cost.

func BenchmarkCounterAddNil(b *testing.B) {
	var r *Registry
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var r *Registry
	h := r.Histogram("bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkSpanNil(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartStage("bench")
		sp.End(1)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartStage("bench")
		sp.End(1)
	}
}
