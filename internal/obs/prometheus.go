// Prometheus text exposition (version 0.0.4) for a registry snapshot. The
// snapshot's dotted metric names ("serve.route.name.requests") are sanitized
// to the Prometheus grammar and prefixed "distinct_"; counters carry the
// conventional "_total" suffix, histograms render cumulatively with
// "_bucket"/"_sum"/"_count" series and a terminal +Inf bucket, and stage
// aggregates export as a family of counters (runs, wall seconds, items,
// allocs, bytes). Output is fully deterministic — names sort within each
// section — so a fixed snapshot renders byte-identical text (golden-tested
// in prometheus_test.go).
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// promPrefix namespaces every exported series.
const promPrefix = "distinct_"

// promName sanitizes a dotted registry name to the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]* (the prefix supplies the legal first
// character, so only the character class matters here).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 sample value. Prometheus text uses Go float
// syntax with "+Inf"/"-Inf"/"NaN" specials.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Sections and series names are emitted in sorted order, so equal
// snapshots produce byte-identical output.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name) + "_total"
		pr("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		pr("# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		pr("# TYPE %s histogram\n", pn)
		// The registry stores per-bucket counts; Prometheus buckets are
		// cumulative ("observations at or below le").
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			pr("%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum)
		}
		pr("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		pr("%s_sum %s\n", pn, promFloat(h.Sum))
		pr("%s_count %d\n", pn, h.Count)
	}
	for _, name := range s.StageNames() {
		st := s.Stages[name]
		pn := promName("stage." + name)
		for _, series := range []struct {
			suffix string
			value  string
		}{
			{"_runs_total", strconv.FormatInt(st.Count, 10)},
			{"_wall_seconds_total", promFloat(float64(st.WallNs) / 1e9)},
			{"_items_total", strconv.FormatInt(st.Items, 10)},
			{"_allocs_total", strconv.FormatInt(st.Allocs, 10)},
			{"_alloc_bytes_total", strconv.FormatInt(st.Bytes, 10)},
		} {
			pr("# TYPE %s%s counter\n%s%s %s\n", pn, series.suffix, pn, series.suffix, series.value)
		}
	}
	return err
}

// WritePrometheus renders the registry's current state in the Prometheus
// text format. A nil registry writes nothing (the empty exposition is
// valid), so handlers need no enablement check.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
