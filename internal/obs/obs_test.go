package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pairs")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("pairs") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("level")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %v, want 2", got)
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat"]
	// 0.5 and 1 land in bucket <=1; 5 in <=10; 50 in <=100; 500 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Sum != 556.5 {
		t.Errorf("histogram sum = %v, want 556.5", hs.Sum)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(1)
	r.Histogram("z", nil).Observe(1)
	r.Histogram("z", nil).ObserveDuration(time.Second)
	sp := r.StartStage("stage")
	sp.End(100)
	if c := r.Counter("x").Value(); c != 0 {
		t.Errorf("nil counter value = %d", c)
	}
	if g := r.Gauge("y").Value(); g != 0 {
		t.Errorf("nil gauge value = %v", g)
	}
	if n := r.Histogram("z", nil).Count(); n != 0 {
		t.Errorf("nil histogram count = %d", n)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Stages) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if got := buf.String(); got != "{}\n" {
		t.Errorf("nil snapshot JSON = %q", got)
	}
}

func TestSpanRecordsStage(t *testing.T) {
	r := NewRegistry()
	sp := r.StartStage("work")
	// Allocate well past the checked threshold: the runtime's allocation
	// stats are gathered from per-P caches and a read may miss a not-yet
	// flushed tail, so the delta can undercount by a few size classes.
	sink := make([][]byte, 400)
	for i := range sink {
		sink[i] = make([]byte, 1024)
	}
	_ = sink
	time.Sleep(2 * time.Millisecond)
	sp.End(42)

	snap := r.Snapshot()
	st, ok := snap.Stages["work"]
	if !ok {
		t.Fatalf("stage missing from snapshot: %+v", snap)
	}
	if st.Count != 1 || st.Items != 42 {
		t.Errorf("stage count/items = %d/%d, want 1/42", st.Count, st.Items)
	}
	if st.WallNs < (1 * time.Millisecond).Nanoseconds() {
		t.Errorf("stage wall = %dns, want >= 1ms", st.WallNs)
	}
	if st.Allocs <= 0 || st.Bytes < 100*1024 {
		t.Errorf("stage allocs/bytes = %d/%d, want positive / >= 100KiB", st.Allocs, st.Bytes)
	}
	if names := snap.StageNames(); len(names) != 1 || names[0] != "work" {
		t.Errorf("StageNames = %v", names)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.StartStage("s").End(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.b"] != 7 || snap.Gauges["g"] != 1.5 {
		t.Errorf("round-tripped snapshot = %+v", snap)
	}
	if snap.Stages["s"].Items != 3 {
		t.Errorf("round-tripped stage = %+v", snap.Stages["s"])
	}
}

// TestConcurrentHammer drives every metric kind plus Snapshot from many
// goroutines at once; it exists to fail under -race if any path is unsafe.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hammer.count")
			h := r.Histogram("hammer.hist", []float64{1, 2, 4, 8})
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Counter("hammer.count2").Add(2)
				r.Gauge("hammer.gauge").Add(1)
				h.Observe(float64(i % 10))
				sp := r.StartStage("hammer.stage")
				sp.End(1)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["hammer.count"]; got != goroutines*iters {
		t.Errorf("hammer.count = %d, want %d", got, goroutines*iters)
	}
	if got := snap.Counters["hammer.count2"]; got != 2*goroutines*iters {
		t.Errorf("hammer.count2 = %d, want %d", got, 2*goroutines*iters)
	}
	if got := snap.Gauges["hammer.gauge"]; got != goroutines*iters {
		t.Errorf("hammer.gauge = %v, want %d", got, goroutines*iters)
	}
	hs := snap.Histograms["hammer.hist"]
	if hs.Count != goroutines*iters {
		t.Errorf("hammer.hist count = %d, want %d", hs.Count, goroutines*iters)
	}
	var bucketSum int64
	for _, n := range hs.Counts {
		bucketSum += n
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
	if st := snap.Stages["hammer.stage"]; st.Count != goroutines*iters || st.Items != goroutines*iters {
		t.Errorf("hammer.stage = %+v", st)
	}
}
