package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updatePromGolden = flag.Bool("update", false, "rewrite testdata/prometheus.golden from the current exposition")

// fixedSnapshot is a hand-built registry snapshot covering every section the
// exposition renders: counters, gauges (including non-finite values),
// histograms (bucket accumulation), and stage aggregates. Being a literal,
// it renders the same bytes on every run.
func fixedSnapshot() Snapshot {
	return Snapshot{
		Counters: map[string]int64{
			"serve.requests":                1234,
			"serve.route.name.requests":     1200,
			"serve.cache_hits":              900,
			"core.pairs":                    56789,
			"weird-name!chars serve/ratio%": 7,
			"serve.negcache_hits":           3,
		},
		Gauges: map[string]float64{
			"serve.queue_depth":   2,
			"serve.slo_burn_rate": 0.125,
			"test.nan":            math.NaN(),
			"test.inf":            math.Inf(1),
		},
		Histograms: map[string]HistogramSnapshot{
			"serve.request_seconds": {
				Bounds: []float64{0.001, 0.01, 0.1, 1},
				Counts: []int64{10, 20, 5, 1, 2}, // last = overflow
				Count:  38,
				Sum:    3.75,
			},
		},
		Stages: map[string]StageSnapshot{
			"serve.compute": {Count: 40, WallNs: 1250000000, Items: 40, Allocs: 1000, Bytes: 524288},
		},
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	if *updatePromGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition diverges from %s\n got:\n%s\nwant:\n%s\n(run with -update if the change is intentional)",
			path, buf.Bytes(), want)
	}
}

func TestWritePrometheusBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Per-bucket counts 10,20,5,1 must render cumulatively, with the +Inf
	// bucket equal to the total count (38) — the overflow observations are
	// only in +Inf.
	for _, line := range []string{
		`distinct_serve_request_seconds_bucket{le="0.001"} 10`,
		`distinct_serve_request_seconds_bucket{le="0.01"} 30`,
		`distinct_serve_request_seconds_bucket{le="0.1"} 35`,
		`distinct_serve_request_seconds_bucket{le="1"} 36`,
		`distinct_serve_request_seconds_bucket{le="+Inf"} 38`,
		`distinct_serve_request_seconds_count 38`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"serve.cache_hits":              "distinct_serve_cache_hits",
		"weird-name!chars serve/ratio%": "distinct_weird_name_chars_serve_ratio_",
		"a:b":                           "distinct_a:b",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}
