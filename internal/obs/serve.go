package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns the observability HTTP handler:
//
//	/metrics           the registry snapshot — JSON by default, Prometheus
//	                   text exposition under content negotiation (an Accept
//	                   header naming text/plain or openmetrics, as scrapers
//	                   send, or an explicit ?format=prometheus)
//	/debug/vars        expvar-compatible dump: every expvar-published var
//	                   (cmdline, memstats, ...) plus this registry under
//	                   the "distinct" key
//	/debug/pprof/...   the standard net/http/pprof profiles
//
// The handler is safe to mount on any mux and to call concurrently with
// metric updates. It works on a nil registry (serving empty snapshots), so
// a server can be started before deciding whether to record anything.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if WantsPrometheus(req) {
			w.Header().Set("Content-Type", PrometheusContentType)
			if err := r.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		// The registry itself, rendered like an expvar.Func would be.
		// Snapshot only holds JSON-safe types, so encoding cannot fail.
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		b, _ := json.Marshal(r.Snapshot())
		fmt.Fprintf(w, "%q: %s", "distinct", b)
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// PrometheusContentType is the Content-Type of the text exposition format
// the /metrics handler serves under content negotiation.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus reports whether a /metrics request asked for the
// Prometheus text exposition rather than the JSON snapshot: an explicit
// ?format=prometheus (or format=json to force JSON), else an Accept header
// naming text/plain or an openmetrics media type — exactly what Prometheus
// scrapers send. Requests with no preference (curl's */*, the JSON-scraping
// load generator) keep getting JSON, so existing consumers are unaffected.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// Server is a running observability HTTP server.
type Server struct {
	srv        *http.Server
	lis        net.Listener
	cancelBase context.CancelFunc
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// shutdownTimeout bounds how long Close waits for in-flight requests (a
// pprof profile capture can legitimately take seconds) before cutting
// connections.
const shutdownTimeout = 5 * time.Second

// Shutdown gracefully shuts the server down: the listener closes at once so
// no new requests land, and in-flight requests run to completion until ctx
// expires, at which point remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Context expired with requests still in flight; cancel the base
		// context every in-flight handler sees, then cut connections loose.
		s.cancelBase()
		if cerr := s.srv.Close(); cerr != nil && err == context.DeadlineExceeded {
			err = cerr
		}
	}
	s.cancelBase()
	return err
}

// Close gracefully shuts the server down, waiting up to shutdownTimeout for
// in-flight requests (a /debug/pprof capture, a /metrics scrape) to finish.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// Serve starts the observability endpoints on addr (e.g. "localhost:6060",
// or ":0" for an ephemeral port) and returns the running server. Live runs
// can then be inspected with e.g.
//
//	curl http://ADDR/metrics
//	go tool pprof http://ADDR/debug/pprof/profile?seconds=10
//
// The server runs until Close; serving errors after Close are discarded.
//
// The server is hardened against slow or stalled clients: header reads,
// whole-request reads, and idle keep-alive connections are all bounded
// (slowloris protection). Responses are deliberately unbounded — a
// /debug/pprof/profile?seconds=30 capture writes long after the request
// arrived, which a WriteTimeout would kill. Handlers inherit the server's
// base context, which Shutdown cancels when it force-closes connections.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, reg.Handler())
}

// ServeHandler starts the hardened HTTP server (same listener setup, timeout
// hardening, base-context cancellation, and Shutdown semantics as Serve)
// around an arbitrary handler. The serving front end (internal/serve) mounts
// its API handler — which already embeds the observability endpoints — on it
// so there is exactly one server stack to reason about.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	base, cancel := context.WithCancel(context.Background())
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return base },
	}
	go srv.Serve(lis)
	return &Server{srv: srv, lis: lis, cancelBase: cancel}, nil
}
