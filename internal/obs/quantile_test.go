package obs

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// exactQuantile computes the same interpolated quantile directly from the
// sorted sample, bucketed by hand — the reference the snapshot estimate is
// checked against.
func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 4, 8}
	h := r.Histogram("q", bounds)
	// 10 observations: 4 in (0,1], 3 in (1,2], 2 in (2,4], 1 in (4,8].
	values := []float64{0.2, 0.4, 0.6, 0.8, 1.2, 1.5, 1.8, 2.5, 3.5, 5}
	for _, v := range values {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["q"]

	// Hand-computed interpolation: rank = q*count, walk cumulative counts.
	cases := []struct {
		q    float64
		want float64
	}{
		// rank 5 lands 1 deep into the (1,2] bucket of 3: 1 + 1*(1/3).
		{0.50, 1 + 1.0/3.0},
		// rank 2.5 is 2.5/4 through the first bucket: 0 + 1*(2.5/4).
		{0.25, 0.625},
		// rank 9.5 is 0.5/1 through the (4,8] bucket: 4 + 4*0.5.
		{0.95, 6},
		// rank 9.9 is 0.9/1 through the (4,8] bucket: 4 + 4*0.9.
		{0.99, 7.6},
		// rank 10 is the end of the last bucket.
		{1.00, 8},
		{0, 0},
	}
	for _, c := range cases {
		if got := hs.Quantile(c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !almost(hs.P50, cases[0].want) || !almost(hs.P95, 6) || !almost(hs.P99, 7.6) {
		t.Errorf("snapshot quantiles p50=%g p95=%g p99=%g", hs.P50, hs.P95, hs.P99)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("over", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(100) // all in the overflow bucket
	}
	hs := r.Snapshot().Histograms["over"]
	if got := hs.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %g, want clamp to last bound 2", got)
	}
	if hs.P99 != 2 {
		t.Errorf("overflow p99 = %g", hs.P99)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var hs HistogramSnapshot
	if got := hs.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	r := NewRegistry()
	r.Histogram("empty", nil)
	hs = r.Snapshot().Histograms["empty"]
	if hs.P50 != 0 || hs.P95 != 0 || hs.P99 != 0 {
		t.Errorf("empty snapshot quantiles = %+v", hs)
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// Dense uniform data across fine buckets: the estimate should track the
	// exact sample quantile closely (within one bucket width).
	r := NewRegistry()
	var bounds []float64
	for b := 0.01; b <= 1.0001; b += 0.01 {
		bounds = append(bounds, b)
	}
	h := r.Histogram("uniform", bounds)
	var sample []float64
	for i := 1; i <= 1000; i++ {
		v := float64(i) / 1000
		sample = append(sample, v)
		h.Observe(v)
	}
	sort.Float64s(sample)
	hs := r.Snapshot().Histograms["uniform"]
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := sample[int(q*1000)-1]
		if got := hs.Quantile(q); math.Abs(got-exact) > 0.011 {
			t.Errorf("Quantile(%g) = %g, exact %g (off by more than a bucket)", q, got, exact)
		}
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("pairs.computed").Add(42)
	r.Gauge("minsim").Set(0.25)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	r.StartStage("cluster").End(7)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"counter pairs.computed",
		"42",
		"gauge   minsim",
		"0.25",
		"hist    lat",
		"p50=1.5",
		"stage   cluster",
		"items=7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output misses %q:\n%s", want, out)
		}
	}
}
