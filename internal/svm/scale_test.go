package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitScalerBasics(t *testing.T) {
	ex := []Example{
		{X: []float64{2, 0.5, 0}, Y: 1},
		{X: []float64{4, 0.25, 0}, Y: -1},
	}
	s := FitScaler(ex)
	want := []float64{0.25, 2, 0} // 1/max per dim; dead dim stays 0
	for i, v := range want {
		if math.Abs(s.Scale[i]-v) > 1e-15 {
			t.Fatalf("Scale = %v, want %v", s.Scale, want)
		}
	}
	scaled := s.Apply([]float64{4, 0.5, 7})
	if scaled[0] != 1 || scaled[1] != 1 || scaled[2] != 0 {
		t.Errorf("Apply = %v", scaled)
	}
	if FitScaler(nil) != nil {
		t.Error("FitScaler(nil) should be nil")
	}
}

func TestScalerTransformPreservesLabels(t *testing.T) {
	ex := []Example{{X: []float64{2}, Y: 1}, {X: []float64{1}, Y: -1}}
	s := FitScaler(ex)
	out := s.Transform(ex)
	if out[0].Y != 1 || out[1].Y != -1 {
		t.Error("labels changed")
	}
	if out[0].X[0] != 1 || out[1].X[0] != 0.5 {
		t.Errorf("features %v %v", out[0].X, out[1].X)
	}
	// Originals untouched.
	if ex[0].X[0] != 2 {
		t.Error("Transform mutated its input")
	}
}

// FoldWeights must make model-on-scaled equal folded-weights-on-raw.
func TestFoldWeightsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		ex := make([]Example, 10)
		for i := range ex {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.Float64() * math.Pow(10, float64(rng.Intn(5)-2))
			}
			y := 1.0
			if i%2 == 0 {
				y = -1
			}
			ex[i] = Example{X: x, Y: y}
		}
		s := FitScaler(ex)
		w := make([]float64, dim)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		folded := s.FoldWeights(w)
		for _, e := range ex {
			var onScaled, onRaw float64
			scaled := s.Apply(e.X)
			for j := 0; j < dim; j++ {
				onScaled += w[j] * scaled[j]
				onRaw += folded[j] * e.X[j]
			}
			if math.Abs(onScaled-onRaw) > 1e-9*(1+math.Abs(onScaled)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Training on scaled features must succeed where raw tiny features underfit.
func TestScalingFixesUnderfitting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ex []Example
	for i := 0; i < 60; i++ {
		// Tiny-magnitude feature that perfectly separates the classes.
		v := 0.001 + rng.Float64()*0.001
		ex = append(ex,
			Example{X: []float64{v + 0.001}, Y: 1},
			Example{X: []float64{v - 0.001}, Y: -1},
		)
	}
	raw, err := TrainDCD(ex, Options{C: 1, MaxIter: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := FitScaler(ex)
	scaledModel, err := TrainDCD(s.Transform(ex), Options{C: 1, MaxIter: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rawAcc := Accuracy(raw, ex)
	scaledAcc := Accuracy(scaledModel, s.Transform(ex))
	t.Logf("raw accuracy %.3f, scaled accuracy %.3f", rawAcc, scaledAcc)
	if scaledAcc < 0.95 {
		t.Errorf("scaled training accuracy %v", scaledAcc)
	}
	if scaledAcc < rawAcc {
		t.Errorf("scaling hurt: %v < %v", scaledAcc, rawAcc)
	}
}
