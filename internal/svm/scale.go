package svm

// Scaler rescales features by their per-dimension training maxima, mapping
// non-negative feature values into [0, 1]. DISTINCT's per-join-path
// similarities span two orders of magnitude (set resemblance through a
// shared publisher can reach 0.5 while a random walk probability rarely
// exceeds 0.005); without scaling a box-constrained SVM cannot grow weights
// large enough to separate the classes, and underfits badly.
//
// Dead features (training maximum 0) keep scale 0 and contribute nothing.
type Scaler struct {
	// Scale holds the per-dimension multipliers (1/max, or 0 for dead
	// dimensions).
	Scale []float64
}

// FitScaler computes a scaler from the training examples' feature maxima.
// It returns nil for an empty training set.
func FitScaler(examples []Example) *Scaler {
	if len(examples) == 0 {
		return nil
	}
	dim := len(examples[0].X)
	max := make([]float64, dim)
	for _, e := range examples {
		for i, v := range e.X {
			if i < dim && v > max[i] {
				max[i] = v
			}
		}
	}
	s := &Scaler{Scale: make([]float64, dim)}
	for i, m := range max {
		if m > 0 {
			s.Scale[i] = 1 / m
		}
	}
	return s
}

// Apply returns a scaled copy of x.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if i < len(s.Scale) {
			out[i] = v * s.Scale[i]
		}
	}
	return out
}

// Transform returns a new example slice with scaled features; labels are
// shared, feature slices are copies.
func (s *Scaler) Transform(examples []Example) []Example {
	out := make([]Example, len(examples))
	for i, e := range examples {
		out[i] = Example{X: s.Apply(e.X), Y: e.Y}
	}
	return out
}

// FoldWeights converts weights learned on scaled features back to weights
// applicable to raw features: since scaled_x[i] = x[i]·Scale[i], a model
// w·scaled_x equals (w∘Scale)·x. DISTINCT applies the folded weights
// directly to raw per-path similarities at clustering time.
func (s *Scaler) FoldWeights(w []float64) []float64 {
	out := make([]float64, len(w))
	for i, v := range w {
		if i < len(s.Scale) {
			out[i] = v * s.Scale[i]
		}
	}
	return out
}
