// Package svm implements linear Support Vector Machines from scratch on the
// standard library only. DISTINCT (Section 3) uses a linear-kernel SVM to
// learn one weight per join path from an automatically constructed training
// set; the learned weights turn per-path similarities into one combined
// similarity.
//
// Two solvers are provided:
//
//   - TrainDCD — dual coordinate descent for the L1-loss (hinge) SVM
//     (Hsieh et al., ICML 2008), the primary solver: deterministic given a
//     seed, and very fast on the low-dimensional dense features DISTINCT
//     produces.
//   - TrainPegasos — the Pegasos stochastic subgradient solver
//     (Shalev-Shwartz et al., 2007), kept as an independent cross-check;
//     on separable, low-dimensional data both converge to closely matching
//     models, which the tests verify.
//
// The bias term is handled by augmenting every example with a constant
// feature inside the solvers; callers never see the augmentation.
package svm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Example is one training example: a dense feature vector and a label that
// must be +1 or -1.
type Example struct {
	X []float64
	Y float64
}

// Model is a trained linear classifier: Score(x) = W·x + Bias.
type Model struct {
	W    []float64
	Bias float64
}

// Score returns the signed margin of x.
func (m *Model) Score(x []float64) float64 {
	s := m.Bias
	for i, w := range m.W {
		if i < len(x) {
			s += w * x[i]
		}
	}
	return s
}

// Predict returns +1 or -1.
func (m *Model) Predict(x []float64) float64 {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

// PositiveWeights returns a copy of W with negative components clipped to
// zero. When the model combines per-join-path similarities into one overall
// similarity, a negative weight would let a high similarity on one path
// *reduce* the total; the paper notes that unimportant paths get weights
// "close to zero and can be ignored", so clipping is the faithful reading.
func (m *Model) PositiveWeights() []float64 {
	w := make([]float64, len(m.W))
	for i, v := range m.W {
		if v > 0 {
			w[i] = v
		}
	}
	return w
}

// Options configures training.
type Options struct {
	// C is the soft-margin penalty; larger C fits the training data harder.
	// Defaults to 1.
	C float64
	// MaxIter caps the number of passes over the data (DCD) or the number of
	// stochastic steps divided by len(examples) (Pegasos). Defaults to 1000.
	MaxIter int
	// Tol is the convergence tolerance on the projected gradient range
	// (DCD only). Defaults to 1e-6.
	Tol float64
	// Seed drives example shuffling; training is deterministic given a seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.C <= 0 {
		o.C = 1
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

var (
	errNoExamples = errors.New("svm: no training examples")
	errOneClass   = errors.New("svm: training set contains a single class")
)

func validate(examples []Example) (dim int, err error) {
	if len(examples) == 0 {
		return 0, errNoExamples
	}
	dim = len(examples[0].X)
	pos, neg := 0, 0
	for i, e := range examples {
		if len(e.X) != dim {
			return 0, fmt.Errorf("svm: example %d has %d features, example 0 has %d", i, len(e.X), dim)
		}
		switch e.Y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return 0, fmt.Errorf("svm: example %d has label %v, want +1 or -1", i, e.Y)
		}
	}
	if pos == 0 || neg == 0 {
		return 0, errOneClass
	}
	return dim, nil
}

// TrainDCD trains an L1-loss linear SVM with dual coordinate descent.
//
//	min_w  ½‖w‖² + C Σ_i max(0, 1 − y_i (w·x_i + b))
//
// The dual variables are swept in random order each pass; the pass loop
// stops when the projected gradients all lie within Tol of optimality.
func TrainDCD(examples []Example, opts Options) (*Model, error) {
	return TrainDCDCtx(context.Background(), examples, opts)
}

// TrainDCDCtx is TrainDCD under a context: cancellation is observed at the
// top of every optimisation pass, so the latency to abort is bounded by one
// sweep over the examples.
func TrainDCDCtx(ctx context.Context, examples []Example, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	dim, err := validate(examples)
	if err != nil {
		return nil, err
	}
	n := len(examples)
	aug := dim + 1 // constant bias feature

	// Precompute the diagonal Q_ii = x_i·x_i (augmented).
	qd := make([]float64, n)
	for i, e := range examples {
		d := 1.0
		for _, v := range e.X {
			d += v * v
		}
		qd[i] = d
	}

	w := make([]float64, aug)
	alpha := make([]float64, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	dot := func(e *Example) float64 {
		s := w[dim] // bias feature is constant 1
		for j, v := range e.X {
			s += w[j] * v
		}
		return s
	}

	for pass := 0; pass < opts.MaxIter; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		maxPG, minPG := math.Inf(-1), math.Inf(1)
		for _, i := range order {
			e := &examples[i]
			g := e.Y*dot(e) - 1

			// Projected gradient for the box constraint 0 ≤ α ≤ C.
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			} else if alpha[i] >= opts.C && g < 0 {
				pg = 0
			}
			if pg > maxPG {
				maxPG = pg
			}
			if pg < minPG {
				minPG = pg
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			na := old - g/qd[i]
			if na < 0 {
				na = 0
			} else if na > opts.C {
				na = opts.C
			}
			alpha[i] = na
			delta := (na - old) * e.Y
			if delta != 0 {
				for j, v := range e.X {
					w[j] += delta * v
				}
				w[dim] += delta
			}
		}
		if maxPG-minPG < opts.Tol {
			break
		}
	}
	model := &Model{W: w[:dim], Bias: w[dim]}
	return model, nil
}

// TrainPegasos trains the same objective with the Pegasos stochastic
// subgradient method using λ = 1/(C·n), so the solution targets the same
// optimum as TrainDCD.
func TrainPegasos(examples []Example, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	dim, err := validate(examples)
	if err != nil {
		return nil, err
	}
	n := len(examples)
	lambda := 1 / (opts.C * float64(n))
	steps := opts.MaxIter * n

	w := make([]float64, dim+1)
	rng := rand.New(rand.NewSource(opts.Seed))
	for t := 1; t <= steps; t++ {
		i := rng.Intn(n)
		e := &examples[i]
		eta := 1 / (lambda * float64(t))
		s := w[dim]
		for j, v := range e.X {
			s += w[j] * v
		}
		// Scale step: w ← (1 − ηλ)w [+ η y x if margin violated].
		scale := 1 - eta*lambda
		for j := range w {
			w[j] *= scale
		}
		if e.Y*s < 1 {
			f := eta * e.Y
			for j, v := range e.X {
				w[j] += f * v
			}
			w[dim] += f
		}
	}
	return &Model{W: w[:dim], Bias: w[dim]}, nil
}

// Accuracy returns the fraction of examples the model labels correctly.
func Accuracy(m *Model, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	ok := 0
	for _, e := range examples {
		if m.Predict(e.X) == e.Y {
			ok++
		}
	}
	return float64(ok) / float64(len(examples))
}

// Objective returns the primal objective ½‖w‖² + C Σ hinge of the model on
// the examples; solver tests use it to compare solutions.
func Objective(m *Model, examples []Example, c float64) float64 {
	obj := 0.0
	for _, w := range m.W {
		obj += w * w
	}
	obj += m.Bias * m.Bias
	obj /= 2
	for _, e := range examples {
		h := 1 - e.Y*m.Score(e.X)
		if h > 0 {
			obj += c * h
		}
	}
	return obj
}
