package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// separable2D builds a linearly separable 2-D set: positives around (2,2),
// negatives around (-2,-2).
func separable2D(rng *rand.Rand, n int) []Example {
	ex := make([]Example, 0, 2*n)
	for i := 0; i < n; i++ {
		ex = append(ex,
			Example{X: []float64{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3}, Y: 1},
			Example{X: []float64{-2 + rng.NormFloat64()*0.3, -2 + rng.NormFloat64()*0.3}, Y: -1},
		)
	}
	return ex
}

func TestDCDSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ex := separable2D(rng, 50)
	m, err := TrainDCD(ex, Options{C: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, ex); acc != 1.0 {
		t.Errorf("DCD training accuracy = %v, want 1.0", acc)
	}
	// The separating direction must point towards the positive quadrant.
	if m.W[0] <= 0 || m.W[1] <= 0 {
		t.Errorf("weights %v do not point at positives", m.W)
	}
}

func TestPegasosSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ex := separable2D(rng, 50)
	m, err := TrainPegasos(ex, Options{C: 10, MaxIter: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, ex); acc < 0.99 {
		t.Errorf("Pegasos training accuracy = %v, want >= 0.99", acc)
	}
}

// The two solvers optimize the same objective; their objective values must
// agree closely even though the iterates differ.
func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ex := separable2D(rng, 40)
	// Inject label noise so the optimum is interior (not trivially 0 loss).
	for i := 0; i < 4; i++ {
		ex[i].Y = -ex[i].Y
	}
	c := 1.0
	dcd, err := TrainDCD(ex, Options{C: c, MaxIter: 5000, Tol: 1e-10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	peg, err := TrainPegasos(ex, Options{C: c, MaxIter: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	od, op := Objective(dcd, ex, c), Objective(peg, ex, c)
	if od <= 0 || op <= 0 {
		t.Fatalf("objectives %v %v", od, op)
	}
	// DCD solves the dual to high precision; Pegasos should land within 15%.
	if op > od*1.15 {
		t.Errorf("Pegasos objective %v much worse than DCD %v", op, od)
	}
	if od > op*1.15 {
		t.Errorf("DCD objective %v much worse than Pegasos %v", od, op)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := TrainDCD(nil, Options{}); err == nil {
		t.Error("empty training set accepted")
	}
	oneClass := []Example{{X: []float64{1}, Y: 1}, {X: []float64{2}, Y: 1}}
	if _, err := TrainDCD(oneClass, Options{}); err == nil {
		t.Error("single-class training set accepted")
	}
	badLabel := []Example{{X: []float64{1}, Y: 0.5}, {X: []float64{2}, Y: -1}}
	if _, err := TrainDCD(badLabel, Options{}); err == nil {
		t.Error("bad label accepted")
	}
	ragged := []Example{{X: []float64{1}, Y: 1}, {X: []float64{2, 3}, Y: -1}}
	if _, err := TrainDCD(ragged, Options{}); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := TrainPegasos(nil, Options{}); err == nil {
		t.Error("Pegasos accepted empty set")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ex := separable2D(rng, 30)
	m1, _ := TrainDCD(ex, Options{Seed: 42})
	m2, _ := TrainDCD(ex, Options{Seed: 42})
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatalf("DCD not deterministic: %v vs %v", m1.W, m2.W)
		}
	}
	if m1.Bias != m2.Bias {
		t.Error("bias differs across identical runs")
	}
}

func TestPositiveWeights(t *testing.T) {
	m := &Model{W: []float64{0.5, -0.2, 0, 1.5}}
	got := m.PositiveWeights()
	want := []float64{0.5, 0, 0, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PositiveWeights = %v, want %v", got, want)
		}
	}
	// Original untouched.
	if m.W[1] != -0.2 {
		t.Error("PositiveWeights mutated the model")
	}
}

func TestScoreShortVector(t *testing.T) {
	m := &Model{W: []float64{1, 2, 3}, Bias: 0.5}
	// Vectors shorter than W are padded with zeros implicitly.
	if got := m.Score([]float64{1}); got != 1.5 {
		t.Errorf("Score = %v, want 1.5", got)
	}
	if got := m.Predict([]float64{-10, 0, 0}); got != -1 {
		t.Errorf("Predict = %v, want -1", got)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := Accuracy(&Model{W: []float64{1}}, nil); got != 0 {
		t.Errorf("Accuracy on empty = %v", got)
	}
}

// Property: for any separable shifted-Gaussian data, DCD reaches perfect
// training accuracy and the margin of every example is >= 0.
func TestDCDSeparableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ex := separable2D(rng, 10+rng.Intn(20))
		m, err := TrainDCD(ex, Options{C: 100, Seed: seed})
		if err != nil {
			return false
		}
		return Accuracy(m, ex) == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: scaling C up never increases the hinge-loss part of the optimum.
func TestDCDHingeMonotoneInC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ex := separable2D(rng, 25)
	for i := 0; i < 5; i++ {
		ex[i].Y = -ex[i].Y // noise
	}
	hinge := func(c float64) float64 {
		m, err := TrainDCD(ex, Options{C: c, MaxIter: 4000, Tol: 1e-10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var h float64
		for _, e := range ex {
			if v := 1 - e.Y*m.Score(e.X); v > 0 {
				h += v
			}
		}
		return h
	}
	// Allow a small slack: the solvers stop at finite tolerance, so the
	// hinge term can wobble by a fraction of a percent around the optimum.
	h1, h10, h100 := hinge(0.1), hinge(1), hinge(10)
	if h10 > h1+0.01 || h100 > h10+0.01 {
		t.Errorf("hinge loss not monotone in C: %v %v %v", h1, h10, h100)
	}
}

func TestObjectiveComputation(t *testing.T) {
	m := &Model{W: []float64{1, 0}, Bias: 0}
	ex := []Example{
		{X: []float64{2, 0}, Y: 1},   // margin 2, no loss
		{X: []float64{0.5, 0}, Y: 1}, // margin .5, hinge .5
		{X: []float64{0, 0}, Y: -1},  // score 0, predicted +, hinge 1
	}
	got := Objective(m, ex, 2)
	want := 0.5 + 2*(0.5+1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Objective = %v, want %v", got, want)
	}
}
