package linkage

import (
	"math"
	"testing"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/strsim"
	"distinct/internal/trainset"
)

func TestJoinFindsSpellingVariants(t *testing.T) {
	names := []string{
		"Wei Wang", "Wei K. Wang", "Wei Wang", // duplicate entry tolerated
		"Joseph Hellerstein", "Joseph M. Hellerstein",
		"Rakesh Kumar", "Completely Different",
	}
	pairs := Join(names, Options{MinStringSim: 0.5})
	has := func(a, b string) bool {
		for _, p := range pairs {
			if (p.A == a && p.B == b) || (p.A == b && p.B == a) {
				return true
			}
		}
		return false
	}
	if !has("Wei Wang", "Wei K. Wang") {
		t.Error("missed Wei Wang / Wei K. Wang")
	}
	if !has("Joseph Hellerstein", "Joseph M. Hellerstein") {
		t.Error("missed the Hellerstein variants")
	}
	if has("Rakesh Kumar", "Completely Different") {
		t.Error("joined unrelated names")
	}
	// Sorted by string similarity (no verification here), and the
	// duplicate "Wei Wang" entry never pairs with itself.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].StringSim > pairs[i-1].StringSim {
			t.Error("pairs not sorted")
		}
	}
	if has("Wei Wang", "Wei Wang") {
		t.Error("duplicate entry paired with itself")
	}
}

// TestJoinMatchesBruteForce validates the count filter: the indexed join
// must return exactly the pairs a quadratic scan finds.
func TestJoinMatchesBruteForce(t *testing.T) {
	names := []string{
		"alice smith", "alicia smith", "alice smyth", "bob jones",
		"bob james", "carol brown", "caroline brown", "dave", "dav",
		"wei wang", "wei k. wang", "w. wang",
	}
	threshold := 0.45
	got := Join(names, Options{MinStringSim: threshold})
	type key [2]string
	gotSet := make(map[key]float64)
	for _, p := range got {
		gotSet[key{p.A, p.B}] = p.StringSim
	}
	count := 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			s := strsim.QGramJaccard(names[i], names[j], 3)
			if s >= threshold {
				count++
				ks := key{names[i], names[j]}
				v, ok := gotSet[ks]
				if !ok {
					t.Errorf("brute force found (%q,%q) sim %v, join missed it", names[i], names[j], s)
					continue
				}
				if math.Abs(v-s) > 1e-12 {
					t.Errorf("similarity mismatch on (%q,%q)", names[i], names[j])
				}
			}
		}
	}
	if count != len(got) {
		t.Errorf("join returned %d pairs, brute force %d", len(got), count)
	}
}

func TestJoinOptions(t *testing.T) {
	names := []string{"aaa bbb", "aaa bbc", "aaa bbd", "zzz yyy"}
	pairs := Join(names, Options{MinStringSim: 0.4, MaxPairs: 2})
	if len(pairs) != 2 {
		t.Errorf("MaxPairs ignored: %d pairs", len(pairs))
	}
	// Verification ordering: a verifier preferring the lexicographically
	// last pair must promote it.
	pairs = Join(names, Options{MinStringSim: 0.4, Verify: func(a, b string) float64 {
		if b == "aaa bbd" {
			return 1
		}
		return 0
	}})
	if len(pairs) == 0 || pairs[0].RelationalSim != 1 {
		t.Errorf("verification did not reorder: %+v", pairs)
	}
}

func TestFindDuplicateNamesOnWorld(t *testing.T) {
	cfg := dblp.DefaultConfig()
	cfg.Communities = 3
	cfg.AuthorsPerCommunity = 30
	cfg.PapersPerAuthor = 2
	cfg.Ambiguous = nil
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := FindDuplicateNames(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, Options{MinStringSim: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	// The generator produces initials variants ("X Y" / "X K. Y"), so some
	// candidates must surface.
	if len(pairs) == 0 {
		t.Error("no candidate duplicate names found in a world with initial variants")
	}
	for _, p := range pairs {
		if p.A == p.B {
			t.Error("self pair returned")
		}
		if p.StringSim < 0.55 {
			t.Errorf("pair below threshold: %+v", p)
		}
	}
	// Errors.
	if _, err := FindDuplicateNames(w.DB, "Nope", "author", Options{}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := FindDuplicateNames(w.DB, "Publications", "title", Options{}); err == nil {
		t.Error("non-FK attribute accepted")
	}
}

// TestRelationalVerificationSeparates: in the generated world, two authors
// with similar names are genuinely different people, so their relational
// affinity should be far below the affinity of a name with itself split in
// half (a same-person proxy).
func TestRelationalVerificationSeparates(t *testing.T) {
	cfg := dblp.DefaultConfig()
	cfg.Communities = 3
	cfg.AuthorsPerCommunity = 40
	cfg.PapersPerAuthor = 3
	cfg.Ambiguous = nil
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(w.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Measure:     cluster.Combined,
		Supervised:  true,
		Train:       trainset.Options{NumPositive: 100, NumNegative: 100, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Learned weights matter here: uniform weights inflate the affinity of
	// unrelated people through shared years and publishers.
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	pairs, err := FindDuplicateNames(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, Options{
		MinStringSim: 0.55,
		Verify:       e.NameAffinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Skip("no string-similar name pairs in this world")
	}
	// Same-person baseline: the affinity between the two halves of one
	// author's own reference set. Different-person candidates (which all of
	// these are — the generator never reuses a name with an initial) must
	// score well below it on average.
	var baseSum float64
	baseN := 0
	for _, id := range w.DB.Relation("Authors").TupleIDs() {
		name := w.DB.Tuple(id).Val("author")
		refs := e.RefsForName(name)
		if len(refs) < 4 {
			continue
		}
		m := e.Similarities(refs)
		half := len(refs) / 2
		var sumResem, wAB, wBA float64
		for i := 0; i < half; i++ {
			for j := half; j < len(refs); j++ {
				sumResem += m.R[i][j]
				wAB += m.W[i][j]
				wBA += m.W[j][i]
			}
		}
		nb := float64(len(refs) - half)
		avg := sumResem / (float64(half) * nb)
		coll := (wAB/float64(half) + wBA/nb) / 2
		baseSum += math.Sqrt(avg * coll)
		baseN++
		if baseN >= 8 {
			break
		}
	}
	if baseN == 0 {
		t.Skip("no author with 4+ refs")
	}
	baseline := baseSum / float64(baseN)
	var candSum float64
	for _, p := range pairs {
		candSum += p.RelationalSim
	}
	candidate := candSum / float64(len(pairs))
	t.Logf("same-person baseline affinity %.4f, different-person candidates %.4f", baseline, candidate)
	if candidate*2 > baseline {
		t.Errorf("relational verification cannot separate: candidates %.4f vs baseline %.4f", candidate, baseline)
	}
	// Affinity of a name against itself must dwarf cross-name affinities.
	some := w.DB.Tuple(w.DB.Relation("Authors").TupleIDs()[0]).Val("author")
	if e.NameAffinity(some, some) <= 0 {
		t.Error("self affinity not positive")
	}
	if e.NameAffinity(some, "No Such Name") != 0 {
		t.Error("affinity with missing name not zero")
	}
}
