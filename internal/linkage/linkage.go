// Package linkage implements the complementary direction to object
// distinction: record linkage over names. Where DISTINCT splits identical
// names denoting several objects, this package finds *differently written*
// names that may denote one object ("Wei Wang" vs "Wei K. Wang").
//
// Candidates come from an approximate string join in the style of Gravano
// et al. (VLDB 2001) — the paper's reference [7]: an inverted index from
// q-grams to names with a count filter turns the all-pairs comparison into
// a near-linear scan, and only candidates passing the q-gram count bound
// are scored exactly. Each surviving pair can then be verified
// relationally with a caller-supplied affinity (e.g. the DISTINCT engine's
// combined similarity between the two names' reference sets): two
// spellings of one person share coauthors and venues, two different people
// with similar names do not.
package linkage

import (
	"fmt"
	"sort"

	"distinct/internal/reldb"
	"distinct/internal/strsim"
)

// Options configures duplicate-name detection.
type Options struct {
	// Q is the q-gram size (default 3).
	Q int
	// MinStringSim is the q-gram Jaccard threshold for candidates
	// (default 0.5).
	MinStringSim float64
	// MaxPairs caps the returned pairs (0 = no cap).
	MaxPairs int
	// Verify, if set, scores a candidate pair relationally; pairs are
	// returned sorted by Verify score, then string similarity. Without it
	// pairs sort by string similarity alone.
	Verify func(a, b string) float64
}

func (o Options) withDefaults() Options {
	if o.Q <= 0 {
		o.Q = 3
	}
	if o.MinStringSim <= 0 {
		o.MinStringSim = 0.5
	}
	return o
}

// NamePair is one candidate duplicate: two distinct names with their
// string similarity and (when verification is enabled) relational affinity.
type NamePair struct {
	A, B          string
	StringSim     float64
	RelationalSim float64
}

// FindDuplicateNames runs the approximate string join over the keys of the
// name relation referenced by refRel.refAttr and returns candidate
// duplicate names.
func FindDuplicateNames(db *reldb.Database, refRel, refAttr string, opts Options) ([]NamePair, error) {
	opts = opts.withDefaults()
	rs := db.Schema.Relation(refRel)
	if rs == nil {
		return nil, fmt.Errorf("linkage: unknown relation %q", refRel)
	}
	ai := rs.AttrIndex(refAttr)
	if ai < 0 || rs.Attrs[ai].FK == "" {
		return nil, fmt.Errorf("linkage: %s.%s is not a foreign key to a name relation", refRel, refAttr)
	}
	nameRel := db.Relation(rs.Attrs[ai].FK)
	ki := nameRel.Schema.KeyIndex()
	names := make([]string, 0, nameRel.Size())
	for _, id := range nameRel.TupleIDs() {
		names = append(names, db.Tuple(id).Vals[ki])
	}
	return Join(names, opts), nil
}

// Join runs the approximate string join over an explicit name list.
// Duplicate entries are collapsed first: the join reports pairs of
// *distinct* names.
func Join(names []string, opts Options) []NamePair {
	opts = opts.withDefaults()
	seen := make(map[string]bool, len(names))
	uniq := names[:0:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	names = uniq

	// Inverted index: q-gram -> names containing it (by index).
	grams := make([]map[string]int, len(names))
	index := make(map[string][]int)
	for i, n := range names {
		g := strsim.QGrams(n, opts.Q)
		grams[i] = g
		for gram := range g {
			index[gram] = append(index[gram], i)
		}
	}

	// Candidate generation with overlap counting: for each name, count
	// shared grams with every later name sharing at least one gram.
	var pairs []NamePair
	counted := make(map[int]int)
	for i := range names {
		clear(counted)
		for gram := range grams[i] {
			for _, j := range index[gram] {
				if j > i {
					counted[j]++
				}
			}
		}
		for j, shared := range counted {
			// Count filter: Jaccard >= t requires the shared distinct-gram
			// count to be at least t/(1+t) of the smaller gram set; a
			// cheaper sound bound is shared >= t * min(|A|,|B|) / (1+t).
			minSet := len(grams[i])
			if len(grams[j]) < minSet {
				minSet = len(grams[j])
			}
			if float64(shared) < opts.MinStringSim/(1+opts.MinStringSim)*float64(minSet) {
				continue
			}
			s := strsim.QGramJaccard(names[i], names[j], opts.Q)
			if s < opts.MinStringSim {
				continue
			}
			p := NamePair{A: names[i], B: names[j], StringSim: s}
			if opts.Verify != nil {
				p.RelationalSim = opts.Verify(p.A, p.B)
			}
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].RelationalSim != pairs[b].RelationalSim {
			return pairs[a].RelationalSim > pairs[b].RelationalSim
		}
		if pairs[a].StringSim != pairs[b].StringSim {
			return pairs[a].StringSim > pairs[b].StringSim
		}
		if pairs[a].A != pairs[b].A {
			return pairs[a].A < pairs[b].A
		}
		return pairs[a].B < pairs[b].B
	})
	if opts.MaxPairs > 0 && len(pairs) > opts.MaxPairs {
		pairs = pairs[:opts.MaxPairs]
	}
	return pairs
}
