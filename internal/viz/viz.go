// Package viz renders reference groupings for human inspection, as text and
// as Graphviz DOT — the form of the paper's Figure 5, where each real
// author is a box with an affiliation and a reference count, and arrows
// mark the mistakes DISTINCT made.
package viz

import (
	"fmt"
	"strings"
)

// Box is one rendered group (a predicted cluster).
type Box struct {
	// Title heads the box, e.g. "cluster 1 (57 refs)".
	Title string
	// Lines list the box contents, e.g. one identity+count per line.
	Lines []string
	// Warn marks boxes containing mistakes; DOT colors them.
	Warn bool
}

// Edge links two boxes by index, e.g. a split identity spanning clusters.
type Edge struct {
	From, To int
	Label    string
}

// Text renders boxes and edges as indented plain text.
func Text(title string, boxes []Box, edges []Edge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for i, box := range boxes {
		marker := " "
		if box.Warn {
			marker = "!"
		}
		fmt.Fprintf(&b, "%s [%d] %s\n", marker, i+1, box.Title)
		for _, l := range box.Lines {
			fmt.Fprintf(&b, "      %s\n", l)
		}
	}
	if len(edges) > 0 {
		b.WriteString("links:\n")
		for _, e := range edges {
			fmt.Fprintf(&b, "  [%d] -- [%d]: %s\n", e.From+1, e.To+1, e.Label)
		}
	}
	return b.String()
}

// DOT renders boxes and edges as a Graphviz digraph. Pipe the output
// through `dot -Tsvg` to obtain a figure shaped like the paper's Figure 5.
func DOT(title string, boxes []Box, edges []Edge) string {
	var b strings.Builder
	b.WriteString("digraph distinct {\n")
	fmt.Fprintf(&b, "  label=%s;\n", quote(title))
	b.WriteString("  node [shape=box, style=filled, fillcolor=lightgray, fontname=\"Helvetica\"];\n")
	for i, box := range boxes {
		fill := "lightgray"
		if box.Warn {
			fill = "mistyrose"
		}
		label := box.Title
		for _, l := range box.Lines {
			label += "\\n" + l
		}
		fmt.Fprintf(&b, "  n%d [label=%s, fillcolor=%s];\n", i, quote(label), fill)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%s, style=dashed, dir=none];\n", e.From, e.To, quote(e.Label))
	}
	b.WriteString("}\n")
	return b.String()
}

// quote escapes a string as a DOT double-quoted literal. Embedded "\\n"
// sequences (DOT line breaks) are preserved.
func quote(s string) string {
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}
