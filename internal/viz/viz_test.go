package viz

import (
	"strings"
	"testing"
)

func fixture() ([]Box, []Edge) {
	boxes := []Box{
		{Title: "cluster 1 (3 refs)", Lines: []string{"author#1 UIUC (3)"}},
		{Title: "cluster 2 (2 refs)", Lines: []string{"author#2 MIT (1)", `author#1 "UIUC" (1)  <- misplaced`}, Warn: true},
	}
	edges := []Edge{{From: 0, To: 1, Label: "author#1 split"}}
	return boxes, edges
}

func TestTextRendering(t *testing.T) {
	boxes, edges := fixture()
	out := Text("Groups of Wei Wang", boxes, edges)
	for _, want := range []string{
		"Groups of Wei Wang",
		"[1] cluster 1",
		"! [2] cluster 2", // warn marker
		"author#2 MIT (1)",
		"links:",
		"[1] -- [2]: author#1 split",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Text output missing %q:\n%s", want, out)
		}
	}
	// No links section when there are no edges.
	out = Text("T", boxes, nil)
	if strings.Contains(out, "links:") {
		t.Error("empty edges rendered a links section")
	}
}

func TestDOTRendering(t *testing.T) {
	boxes, edges := fixture()
	out := DOT("Groups of Wei Wang", boxes, edges)
	for _, want := range []string{
		"digraph distinct {",
		`label="Groups of Wei Wang";`,
		`n0 [label="cluster 1 (3 refs)\nauthor#1 UIUC (3)", fillcolor=lightgray];`,
		"fillcolor=mistyrose", // warn box
		`n0 -> n1 [label="author#1 split", style=dashed, dir=none];`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Quotes inside labels are escaped.
	if !strings.Contains(out, `\"UIUC\"`) {
		t.Errorf("quote escaping failed:\n%s", out)
	}
}

func TestQuote(t *testing.T) {
	if got := quote(`a"b`); got != `"a\"b"` {
		t.Errorf("quote = %s", got)
	}
}
