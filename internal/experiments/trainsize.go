package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distinct/internal/eval"
)

// TrainSizeRow is one point of the training-size experiment.
type TrainSizeRow struct {
	// PairsPerClass is the number of positive (and negative) pairs.
	PairsPerClass int
	// ResemAccuracy is the resemblance SVM's training accuracy.
	ResemAccuracy float64
	Average       eval.Metrics
}

// TrainSizeSensitivity probes how much automatic supervision DISTINCT
// actually needs: the paper constructs 1000+1000 pairs, but the rare-name
// trick makes examples free, so the interesting question is how quickly
// quality saturates. Each size retrains on the same world and reruns the
// Table 2 protocol. sizes nil means {25, 100, 400, 1000}.
func (h *Harness) TrainSizeSensitivity(sizes []int) ([]TrainSizeRow, error) {
	if len(sizes) == 0 {
		sizes = []int{25, 100, 400, 1000}
	}
	var rows []TrainSizeRow
	for _, n := range sizes {
		sub, err := NewHarnessWorld(h.World, Options{
			MinSim:        h.Opts.MinSim,
			MinSimGrid:    h.Opts.MinSimGrid,
			TrainPositive: n,
			TrainNegative: n,
			Seed:          h.Opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		rep, err := sub.Train()
		if err != nil {
			return nil, fmt.Errorf("experiments: train size %d: %w", n, err)
		}
		res, err := sub.Table2()
		if err != nil {
			return nil, err
		}
		rows = append(rows, TrainSizeRow{
			PairsPerClass: n,
			ResemAccuracy: rep.ResemAccuracy,
			Average:       res.Average,
		})
	}
	return rows, nil
}

// FormatTrainSize renders the rows.
func FormatTrainSize(rows []TrainSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %9s %10s %8s %10s\n", "pairs/class", "svm-acc", "precision", "recall", "f-measure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %9.3f %10.3f %8.3f %10.3f  %s\n",
			r.PairsPerClass, r.ResemAccuracy,
			r.Average.Precision, r.Average.Recall, r.Average.F1, bar(r.Average.F1))
	}
	b.WriteString("(paper: 1000 positive + 1000 negative automatic pairs)\n")
	return b.String()
}

// WriteTrainSizeCSV writes the rows as CSV.
func WriteTrainSizeCSV(w io.Writer, rows []TrainSizeRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pairs_per_class", "svm_accuracy", "precision", "recall", "f_measure"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.PairsPerClass), f6(r.ResemAccuracy),
			f6(r.Average.Precision), f6(r.Average.Recall), f6(r.Average.F1),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
