package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"distinct/internal/dblp"
	"distinct/internal/eval"
)

// SeedRow is one world seed's Table 2 average.
type SeedRow struct {
	Seed    int64
	Average eval.Metrics
}

// SeedSummary aggregates a seed sweep: mean and sample standard deviation
// of the Table 2 averages across independently generated worlds.
type SeedSummary struct {
	Rows                 []SeedRow
	MeanF1, StdF1        float64
	MeanPrec, MeanRecall float64
}

// SeedSweep regenerates the world under several seeds and reruns the
// Table 2 protocol on each — the robustness check a reproduction owes its
// readers: the headline numbers must not depend on one lucky world.
// seeds nil means {1, 2, 3, 4, 5}.
func (h *Harness) SeedSweep(seeds []int64) (*SeedSummary, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	sum := &SeedSummary{}
	for _, seed := range seeds {
		cfg := h.Opts.World
		cfg.Seed = seed
		world, err := dblp.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		sub, err := NewHarnessWorld(world, Options{
			MinSim:        h.Opts.MinSim,
			MinSimGrid:    h.Opts.MinSimGrid,
			TrainPositive: h.Opts.TrainPositive,
			TrainNegative: h.Opts.TrainNegative,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := sub.Table2()
		if err != nil {
			return nil, err
		}
		sum.Rows = append(sum.Rows, SeedRow{Seed: seed, Average: res.Average})
	}
	n := float64(len(sum.Rows))
	for _, r := range sum.Rows {
		sum.MeanF1 += r.Average.F1
		sum.MeanPrec += r.Average.Precision
		sum.MeanRecall += r.Average.Recall
	}
	sum.MeanF1 /= n
	sum.MeanPrec /= n
	sum.MeanRecall /= n
	if len(sum.Rows) > 1 {
		var ss float64
		for _, r := range sum.Rows {
			d := r.Average.F1 - sum.MeanF1
			ss += d * d
		}
		sum.StdF1 = math.Sqrt(ss / (n - 1))
	}
	return sum, nil
}

// FormatSeeds renders the sweep.
func FormatSeeds(s *SeedSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s %8s %10s\n", "seed", "precision", "recall", "f-measure")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%6d %10.3f %8.3f %10.3f  %s\n",
			r.Seed, r.Average.Precision, r.Average.Recall, r.Average.F1, bar(r.Average.F1))
	}
	fmt.Fprintf(&b, "mean f-measure %.3f ± %.3f (precision %.3f, recall %.3f)\n",
		s.MeanF1, s.StdF1, s.MeanPrec, s.MeanRecall)
	return b.String()
}

// WriteSeedsCSV writes the sweep as CSV.
func WriteSeedsCSV(w io.Writer, s *SeedSummary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seed", "precision", "recall", "f_measure"}); err != nil {
		return err
	}
	for _, r := range s.Rows {
		rec := []string{
			strconv.FormatInt(r.Seed, 10),
			f6(r.Average.Precision), f6(r.Average.Recall), f6(r.Average.F1),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
