package experiments

import (
	"fmt"
	"strings"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/eval"
	"distinct/internal/trainset"
)

// ExpansionRow is one configuration of the attribute-expansion ablation.
type ExpansionRow struct {
	Label    string
	NumPaths int
	Average  eval.Metrics
}

// ExpansionAblation ablates Section 2.1 of the paper: treating every
// distinct attribute value (publisher, year, location) as a tuple of a
// virtual relation, so value sharing becomes ordinary linkage. The
// "without" engines skip all expandable attributes, leaving only the
// structural joins (coauthors, venues). The ablation is run both
// supervised (trained path weights, fixed min-sim for the DISTINCT
// configuration) and unsupervised (uniform weights, per-configuration
// tuned min-sim, per the Figure 4 protocol) — the interesting contrast is
// unsupervised, where the expanded value paths inject noise that only the
// SVM weighting can neutralise.
func (h *Harness) ExpansionAblation() ([]ExpansionRow, error) {
	noExpand := []string{
		dblp.TitleAttr,
		"Proceedings.year", "Proceedings.location", "Conferences.publisher",
	}
	configs := []struct {
		label      string
		skip       []string
		supervised bool
	}{
		{label: "supervised, with expansion (DISTINCT)", skip: []string{dblp.TitleAttr}, supervised: true},
		{label: "supervised, without expansion", skip: noExpand, supervised: true},
		{label: "unsupervised, with expansion", skip: []string{dblp.TitleAttr}},
		{label: "unsupervised, without expansion", skip: noExpand},
	}
	var rows []ExpansionRow
	for _, cfg := range configs {
		engine, err := core.NewEngine(h.World.DB, core.Config{
			RefRelation: dblp.ReferenceRelation,
			RefAttr:     dblp.ReferenceAttr,
			SkipExpand:  cfg.skip,
			Supervised:  cfg.supervised,
			Measure:     cluster.Combined,
			MinSim:      h.Opts.MinSim,
			Train: trainset.Options{
				NumPositive: h.Opts.TrainPositive,
				NumNegative: h.Opts.TrainNegative,
				Exclude:     h.World.AmbiguousNames(),
				Seed:        h.Opts.Seed,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: expansion ablation %q: %w", cfg.label, err)
		}
		// The grid sweep below re-evaluates the same per-name blocks at
		// every threshold; with matrix reuse on, only the first pass pays
		// for the per-path matrices.
		engine.EnableMatrixReuse(0)
		if cfg.supervised {
			if _, err := engine.Train(); err != nil {
				return nil, err
			}
		}
		names := h.World.AmbiguousNames()
		evalAt := func(minSim float64) (eval.Metrics, error) {
			engine.SetMinSim(minSim)
			ms := make([]eval.Metrics, len(names))
			for i, name := range names {
				pred, err := engine.DisambiguateName(name)
				if err != nil {
					return eval.Metrics{}, err
				}
				var gold eval.Clustering
				for _, c := range h.World.GoldClusters(name) {
					gold = append(gold, engine.MapRefs(c))
				}
				m, err := eval.Evaluate(eval.Clustering(pred), gold)
				if err != nil {
					return eval.Metrics{}, err
				}
				ms[i] = m
			}
			return eval.Average(ms), nil
		}
		// Fixed threshold for the DISTINCT configuration; per-config tuned
		// threshold elsewhere, matching the paper's Figure 4 protocol.
		var best eval.Metrics
		if cfg.supervised && len(cfg.skip) == 1 {
			if best, err = evalAt(h.Opts.MinSim); err != nil {
				return nil, err
			}
		} else {
			best.Accuracy = -1
			for _, ms := range h.Opts.MinSimGrid {
				avg, err := evalAt(ms)
				if err != nil {
					return nil, err
				}
				if avg.Accuracy > best.Accuracy {
					best = avg
				}
			}
		}
		rows = append(rows, ExpansionRow{
			Label:    cfg.label,
			NumPaths: len(engine.Paths()),
			Average:  best,
		})
	}
	return rows, nil
}

// FormatExpansion renders the ablation.
func FormatExpansion(rows []ExpansionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %7s %10s %8s %10s\n", "Configuration", "#paths", "precision", "recall", "f-measure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-38s %7d %10.3f %8.3f %10.3f  %s\n",
			r.Label, r.NumPaths, r.Average.Precision, r.Average.Recall, r.Average.F1, bar(r.Average.F1))
	}
	return b.String()
}
