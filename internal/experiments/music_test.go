package experiments

import (
	"strings"
	"testing"

	"distinct/internal/music"
)

func TestMusicEvaluation(t *testing.T) {
	cfg := music.DefaultConfig()
	cfg.ArtistsPerGenre = 8
	res, err := MusicEvaluation(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Ambiguous) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.MinSim <= 0 {
		t.Error("tuning did not pick a threshold")
	}
	for _, r := range res.Rows {
		if r.Metrics.F1 < 0 || r.Metrics.F1 > 1 {
			t.Errorf("%s: f %v", r.Title, r.Metrics.F1)
		}
		if r.Refs == 0 || r.Songs < 2 {
			t.Errorf("row %+v malformed", r)
		}
	}
	// The engine transfers across domains: it should do far better than
	// chance on the catalog.
	if res.Average.F1 < 0.6 {
		t.Errorf("cross-domain average f %v", res.Average.F1)
	}
	out := FormatMusic(res)
	if !strings.Contains(out, "Forgotten") || !strings.Contains(out, "average") {
		t.Errorf("FormatMusic:\n%s", out)
	}
}
