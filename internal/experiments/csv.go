package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exporters for every experiment, so the tables and figures can be
// re-plotted with external tooling. Each writer emits a header row and one
// record per data point.

// WriteTable1CSV writes the ambiguous-name dataset.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "authors", "refs"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Name, strconv.Itoa(r.Authors), strconv.Itoa(r.Refs)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV writes per-name metrics plus the average row.
func WriteTable2CSV(w io.Writer, res *Table2Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "precision", "recall", "f_measure", "accuracy"}); err != nil {
		return err
	}
	write := func(name string, p, r, f, a float64) error {
		return cw.Write([]string{name, f6(p), f6(r), f6(f), f6(a)})
	}
	for _, row := range res.Rows {
		m := row.Metrics
		if err := write(row.Name, m.Precision, m.Recall, m.F1, m.Accuracy); err != nil {
			return err
		}
	}
	a := res.Average
	if err := write("average", a.Precision, a.Recall, a.F1, a.Accuracy); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV writes the variant comparison (also used for ablations).
func WriteFigure4CSV(w io.Writer, rows []Figure4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"variant", "accuracy", "f_measure", "min_sim"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Variant, f6(r.Accuracy), f6(r.F1), f6(r.MinSim)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV writes the scaling curve.
func WriteScalingCSV(w io.Writer, rows []ScalingRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"references", "papers", "train_ms", "disambiguate_ms", "avg_f"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.References),
			strconv.Itoa(r.Papers),
			fmt.Sprintf("%.1f", float64(r.TrainTime.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.Disambig.Microseconds())/1000),
			f6(r.AvgF1),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f6(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
