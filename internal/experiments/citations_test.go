package experiments

import (
	"strings"
	"testing"
)

func TestCitationLinkage(t *testing.T) {
	h := newTestHarness(t)
	rows, err := h.CitationLinkage([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].CitationsPerPaper != 0 || rows[1].CitationsPerPaper != 3 {
		t.Errorf("levels %+v", rows)
	}
	for _, r := range rows {
		if r.Average.F1 <= 0 || r.Average.F1 > 1 {
			t.Errorf("f %v out of range", r.Average.F1)
		}
	}
	// Extra linkage must not cost much quality (small worlds are noisy, so
	// require no collapse rather than strict improvement).
	if rows[1].Average.F1 < rows[0].Average.F1-0.15 {
		t.Errorf("citations hurt badly: %v -> %v", rows[0].Average.F1, rows[1].Average.F1)
	}
	out := FormatCitations(rows)
	if !strings.Contains(out, "cites/paper") {
		t.Errorf("FormatCitations:\n%s", out)
	}
}

func TestExpansionAblation(t *testing.T) {
	h := newTestHarness(t)
	rows, err := h.ExpansionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Expansion adds join paths.
	if rows[0].NumPaths <= rows[1].NumPaths {
		t.Errorf("expansion did not add paths: %d vs %d", rows[0].NumPaths, rows[1].NumPaths)
	}
	if rows[2].NumPaths != rows[0].NumPaths || rows[3].NumPaths != rows[1].NumPaths {
		t.Error("path counts inconsistent across supervision modes")
	}
	for _, r := range rows {
		if r.Average.F1 < 0 || r.Average.F1 > 1 {
			t.Errorf("%s: f %v", r.Label, r.Average.F1)
		}
	}
	out := FormatExpansion(rows)
	if !strings.Contains(out, "DISTINCT") || !strings.Contains(out, "#paths") {
		t.Errorf("FormatExpansion:\n%s", out)
	}
}
