package experiments

import (
	"fmt"
	"strings"

	"distinct/internal/dblp"
	"distinct/internal/eval"
)

// CitationRow is one configuration of the citation-linkage experiment.
type CitationRow struct {
	CitationsPerPaper int
	SelfCiteProb      float64
	Average           eval.Metrics
}

// CitationLinkage measures what the citation linkage is worth. The paper's
// introduction lists citations among the linkages that disclose author
// identities ("through their coauthors, coauthors of coauthors, and
// citations"), but its Figure 2 schema carries none; this experiment
// regenerates the world with increasing citation density (self-citation
// heavy, as real citation graphs are) and reruns the Table 2 protocol.
// levels nil means {0, 2, 4} citations per paper at SelfCiteProb 0.5.
func (h *Harness) CitationLinkage(levels []int) ([]CitationRow, error) {
	if len(levels) == 0 {
		levels = []int{0, 2, 4}
	}
	var rows []CitationRow
	for _, lv := range levels {
		cfg := h.Opts.World
		cfg.CitationsPerPaper = lv
		if lv > 0 {
			cfg.SelfCiteProb = 0.5
		}
		world, err := dblp.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: citations %d: %w", lv, err)
		}
		sub, err := NewHarnessWorld(world, Options{
			MinSim:        h.Opts.MinSim,
			MinSimGrid:    h.Opts.MinSimGrid,
			TrainPositive: h.Opts.TrainPositive,
			TrainNegative: h.Opts.TrainNegative,
			Seed:          h.Opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := sub.Table2()
		if err != nil {
			return nil, err
		}
		rows = append(rows, CitationRow{
			CitationsPerPaper: lv,
			SelfCiteProb:      cfg.SelfCiteProb,
			Average:           res.Average,
		})
	}
	return rows, nil
}

// FormatCitations renders the rows.
func FormatCitations(rows []CitationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %10s %8s %10s\n", "cites/paper", "self-cite", "precision", "recall", "f-measure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %10.2f %10.3f %8.3f %10.3f  %s\n",
			r.CitationsPerPaper, r.SelfCiteProb,
			r.Average.Precision, r.Average.Recall, r.Average.F1, bar(r.Average.F1))
	}
	b.WriteString("(the paper's intro lists citations among the identity-disclosing linkages)\n")
	return b.String()
}
