package experiments

import (
	"fmt"
	"strings"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/eval"
	"distinct/internal/reldb"
)

// Variant is one of the six approaches compared in the paper's Figure 4.
type Variant struct {
	// Name is the label used in the figure.
	Name string
	// Supervised selects SVM-learned path weights.
	Supervised bool
	// Measure is the cluster similarity measure.
	Measure cluster.Measure
	// TuneMinSim selects per-variant threshold tuning; the paper fixes
	// DISTINCT's min-sim and tunes every other variant's to maximise
	// average accuracy.
	TuneMinSim bool
}

// DISTINCT is the full approach: supervised weighting of the combined
// measure at a fixed min-sim.
func DISTINCT() Variant {
	return Variant{Name: "DISTINCT", Supervised: true, Measure: cluster.Combined}
}

// Figure4Variants returns the six variants in the paper's legend order:
// DISTINCT, supervised set resemblance, supervised random walk,
// unsupervised combined, unsupervised set resemblance, unsupervised random
// walk. The single-measure variants correspond to the approaches of
// references [1] (Bhattacharya & Getoor) and [9] (Kalashnikov et al.).
func Figure4Variants() []Variant {
	return []Variant{
		DISTINCT(),
		{Name: "Supervised set resemblance", Supervised: true, Measure: cluster.ResemOnly, TuneMinSim: true},
		{Name: "Supervised random walk", Supervised: true, Measure: cluster.WalkOnly, TuneMinSim: true},
		{Name: "Unsupervised combined measure", Supervised: false, Measure: cluster.Combined, TuneMinSim: true},
		{Name: "Unsupervised set resemblance", Supervised: false, Measure: cluster.ResemOnly, TuneMinSim: true},
		{Name: "Unsupervised random walk", Supervised: false, Measure: cluster.WalkOnly, TuneMinSim: true},
	}
}

// Figure4Row is one bar pair of Figure 4.
type Figure4Row struct {
	Variant  string
	Accuracy float64
	F1       float64
	// MinSim is the threshold used (tuned for non-DISTINCT variants).
	MinSim float64
}

// Figure4 evaluates every variant over all ambiguous names. Non-DISTINCT
// variants sweep Opts.MinSimGrid and keep the threshold maximising average
// accuracy, as the paper describes.
func (h *Harness) Figure4() ([]Figure4Row, error) {
	return h.figure4(Figure4Variants())
}

// figure4 evaluates an explicit variant list (exposed for ablations).
func (h *Harness) figure4(variants []Variant) ([]Figure4Row, error) {
	var rows []Figure4Row
	for _, v := range variants {
		resemW, walkW, err := h.variantWeights(v.Supervised)
		if err != nil {
			return nil, err
		}
		grid := []float64{h.Opts.MinSim}
		if v.TuneMinSim {
			grid = h.Opts.MinSimGrid
		}
		best := Figure4Row{Variant: v.Name, Accuracy: -1}
		for _, ms := range grid {
			_, avg, err := h.evaluateAll(resemW, walkW, v.Measure, ms)
			if err != nil {
				return nil, err
			}
			if avg.Accuracy > best.Accuracy {
				best.Accuracy = avg.Accuracy
				best.F1 = avg.F1
				best.MinSim = ms
			}
		}
		rows = append(rows, best)
	}
	return rows, nil
}

// AblationVariants compares the design choices DESIGN.md calls out beyond
// the paper's six variants: the arithmetic-mean combination and the
// single/complete-link cluster measures.
func AblationVariants() []Variant {
	return []Variant{
		DISTINCT(),
		{Name: "Arithmetic-mean combination", Supervised: true, Measure: cluster.CombinedArithmetic, TuneMinSim: true},
		{Name: "Single-link (resemblance)", Supervised: true, Measure: cluster.SingleLink, TuneMinSim: true},
		{Name: "Complete-link (resemblance)", Supervised: true, Measure: cluster.CompleteLink, TuneMinSim: true},
		{Name: "Average-link (resemblance)", Supervised: true, Measure: cluster.ResemOnly, TuneMinSim: true},
	}
}

// Ablation runs the ablation variant list, plus the threshold-free
// gap-cutting variant (which has no min-sim to tune or fix).
func (h *Harness) Ablation() ([]Figure4Row, error) {
	rows, err := h.figure4(AblationVariants())
	if err != nil {
		return nil, err
	}
	auto, err := h.autoGapRow()
	if err != nil {
		return nil, err
	}
	return append(rows, auto), nil
}

// autoGapRow evaluates per-name gap cutting (cluster.AgglomerateAuto) with
// supervised weights over all ambiguous names.
func (h *Harness) autoGapRow() (Figure4Row, error) {
	resemW, walkW, err := h.variantWeights(true)
	if err != nil {
		return Figure4Row{}, err
	}
	names := h.World.AmbiguousNames()
	ms := make([]eval.Metrics, len(names))
	for i, name := range names {
		refs := h.refs[name]
		pm, err := h.PathSims(name)
		if err != nil {
			return Figure4Row{}, err
		}
		m := core.Combine(pm, resemW, walkW)
		idx := cluster.AgglomerateAuto(len(refs), m, cluster.Combined, cluster.DefaultGapRatio, h.Opts.MinSim)
		pred := make(eval.Clustering, len(idx))
		for ci, c := range idx {
			pred[ci] = make([]reldb.TupleID, len(c))
			for j, x := range c {
				pred[ci][j] = refs[x]
			}
		}
		metrics, err := eval.Evaluate(pred, h.gold[name])
		if err != nil {
			return Figure4Row{}, err
		}
		ms[i] = metrics
	}
	avg := eval.Average(ms)
	return Figure4Row{
		Variant:  "Per-name gap cut (hybrid)",
		Accuracy: avg.Accuracy,
		F1:       avg.F1,
		MinSim:   h.Opts.MinSim,
	}, nil
}

// FormatFigure4 renders the rows as a text bar chart like the paper's
// grouped bars.
func FormatFigure4(rows []Figure4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %9s %9s %9s\n", "Variant", "accuracy", "f-measure", "min-sim")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %9.3f %9.3f %9g  %s\n", r.Variant, r.Accuracy, r.F1, r.MinSim, bar(r.F1))
	}
	return b.String()
}

// bar draws a 0..40 character bar for a [0,1] value.
func bar(v float64) string {
	n := int(v*40 + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}
