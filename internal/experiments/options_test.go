package experiments

import (
	"testing"

	"distinct/internal/core"
)

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.World.Communities == 0 {
		t.Error("world default not applied")
	}
	if o.MinSim != core.DefaultMinSim {
		t.Errorf("MinSim default %v", o.MinSim)
	}
	if len(o.MinSimGrid) == 0 {
		t.Error("grid default not applied")
	}
	if o.TrainPositive != 1000 || o.TrainNegative != 1000 {
		t.Errorf("training defaults %d/%d", o.TrainPositive, o.TrainNegative)
	}
	// Explicit values survive.
	o = Options{MinSim: 0.5, TrainPositive: 7, TrainNegative: 9, MinSimGrid: []float64{1}}.withDefaults()
	if o.MinSim != 0.5 || o.TrainPositive != 7 || o.TrainNegative != 9 || len(o.MinSimGrid) != 1 {
		t.Errorf("explicit options clobbered: %+v", o)
	}
}

func TestHarnessEngineAccessor(t *testing.T) {
	h := newTestHarness(t)
	e := h.Engine()
	if e == nil || len(e.Paths()) == 0 {
		t.Error("Engine accessor broken")
	}
}
