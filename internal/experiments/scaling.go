package experiments

import (
	"fmt"
	"strings"
	"time"

	"distinct/internal/dblp"
)

// ScalingRow is one point of the scaling experiment: a world size, the
// training pipeline duration there, the total disambiguation time for the
// ten ambiguous names, and the resulting quality.
type ScalingRow struct {
	Communities int
	Authors     int // per community
	References  int
	Papers      int
	TrainTime   time.Duration
	Disambig    time.Duration
	AvgF1       float64
}

// Scaling extends the paper's single timing figure (62.1 s on full DBLP)
// into a curve: it generates worlds of increasing size — same ambiguous-
// name profile, more ordinary authors around them — and measures the full
// pipeline at each scale. scales gives the multipliers over a small base
// (communities × authors); nil means {1, 2, 4}.
func (h *Harness) Scaling(scales []int) ([]ScalingRow, error) {
	if len(scales) == 0 {
		scales = []int{1, 2, 4}
	}
	var rows []ScalingRow
	for _, s := range scales {
		cfg := h.Opts.World
		cfg.Communities = 8 * s
		cfg.AuthorsPerCommunity = 60
		world, err := dblp.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling x%d: %w", s, err)
		}
		sub, err := NewHarnessWorld(world, Options{
			MinSim:        h.Opts.MinSim,
			MinSimGrid:    h.Opts.MinSimGrid,
			TrainPositive: h.Opts.TrainPositive,
			TrainNegative: h.Opts.TrainNegative,
			Seed:          h.Opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := sub.Train(); err != nil {
			return nil, err
		}
		trainDur := time.Since(t0)

		t0 = time.Now()
		res, err := sub.Table2()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Communities: cfg.Communities,
			Authors:     cfg.AuthorsPerCommunity,
			References:  world.NumReferences(),
			Papers:      world.NumPapers(),
			TrainTime:   trainDur,
			Disambig:    time.Since(t0),
			AvgF1:       res.Average.F1,
		})
	}
	return rows, nil
}

// FormatScaling renders the scaling rows.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %12s %14s %8s\n", "refs", "papers", "train", "disambiguate", "avg-f")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10d %12v %14v %8.3f\n",
			r.References, r.Papers, r.TrainTime.Round(time.Millisecond),
			r.Disambig.Round(time.Millisecond), r.AvgF1)
	}
	b.WriteString("(paper: training on full DBLP, 1.29M references, took 62.1 s)\n")
	return b.String()
}
