package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTrainSizeSensitivity(t *testing.T) {
	h := newTestHarness(t)
	rows, err := h.TrainSizeSensitivity([]int{20, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ResemAccuracy < 0.5 {
			t.Errorf("size %d: svm accuracy %v at chance", r.PairsPerClass, r.ResemAccuracy)
		}
		if r.Average.F1 <= 0 || r.Average.F1 > 1 {
			t.Errorf("size %d: f %v", r.PairsPerClass, r.Average.F1)
		}
	}
	out := FormatTrainSize(rows)
	if !strings.Contains(out, "pairs/class") || !strings.Contains(out, "1000 positive") {
		t.Errorf("FormatTrainSize:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteTrainSizeCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 || recs[1][0] != "20" {
		t.Errorf("CSV %v", recs)
	}
}
