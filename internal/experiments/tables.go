package experiments

import (
	"fmt"
	"strings"
	"time"

	"distinct/internal/eval"
)

// Table1Row is one row of the paper's Table 1: a name shared by several
// authors, with identity and reference counts.
type Table1Row struct {
	Name    string
	Authors int
	Refs    int
}

// Table1 reports the ambiguous-name dataset. With the default world this
// reproduces the paper's Table 1 exactly (the profile is injected).
func (h *Harness) Table1() []Table1Row {
	names := h.World.AmbiguousNames()
	rows := make([]Table1Row, len(names))
	for i, name := range names {
		rows[i] = Table1Row{
			Name:    name,
			Authors: len(h.gold[name]),
			Refs:    len(h.refs[name]),
		}
	}
	return rows
}

// FormatTable1 renders Table 1 like the paper.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %6s\n", "Name", "#author", "#ref")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8d %6d\n", r.Name, r.Authors, r.Refs)
	}
	return b.String()
}

// Table2Row is one row of the paper's Table 2: DISTINCT's accuracy on one
// ambiguous name, plus two extension metrics the paper predates (B-cubed
// f-measure and the Adjusted Rand Index).
type Table2Row struct {
	Name    string
	Metrics eval.Metrics
	BCubedF float64
	ARI     float64
}

// Table2Result is the full Table 2 plus the average row.
type Table2Result struct {
	Rows    []Table2Row
	Average eval.Metrics
	MinSim  float64
}

// Table2 runs the full DISTINCT configuration (supervised, combined
// measure, fixed min-sim) on every ambiguous name.
func (h *Harness) Table2() (*Table2Result, error) {
	resemW, walkW, err := h.variantWeights(true)
	if err != nil {
		return nil, err
	}
	ms, avg, err := h.evaluateAll(resemW, walkW, DISTINCT().Measure, h.Opts.MinSim)
	if err != nil {
		return nil, err
	}
	names := h.World.AmbiguousNames()
	res := &Table2Result{Average: avg, MinSim: h.Opts.MinSim}
	for i, name := range names {
		row := Table2Row{Name: name, Metrics: ms[i]}
		// Extension metrics on the same prediction.
		pred, err := h.clusterNamePred(name, resemW, walkW, DISTINCT().Measure, h.Opts.MinSim)
		if err != nil {
			return nil, err
		}
		if b, err := eval.BCubed(pred, h.gold[name]); err == nil {
			row.BCubedF = b.F1
		}
		if ari, err := eval.AdjustedRand(pred, h.gold[name]); err == nil {
			row.ARI = ari
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatTable2 renders Table 2 like the paper.
func FormatTable2(res *Table2Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %9s %9s %9s\n", "Name", "precision", "recall", "f-measure")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-22s %9.3f %9.3f %9.3f\n", r.Name, r.Metrics.Precision, r.Metrics.Recall, r.Metrics.F1)
	}
	fmt.Fprintf(&b, "%-22s %9.3f %9.3f %9.3f\n", "average", res.Average.Precision, res.Average.Recall, res.Average.F1)
	fmt.Fprintf(&b, "(min-sim = %g)\n", res.MinSim)
	return b.String()
}

// TimingResult reports the durations of the training pipeline stages,
// mirroring the paper's "the whole process takes 62.1 seconds" for
// training-set construction plus SVM training on full DBLP.
type TimingResult struct {
	References int
	Papers     int
	TrainSet   time.Duration
	Features   time.Duration
	TrainSVM   time.Duration
	Total      time.Duration
}

// Timing trains (if needed) and reports stage durations.
func (h *Harness) Timing() (*TimingResult, error) {
	rep, err := h.Train()
	if err != nil {
		return nil, err
	}
	return &TimingResult{
		References: h.World.NumReferences(),
		Papers:     h.World.NumPapers(),
		TrainSet:   rep.Timings.TrainSet,
		Features:   rep.Timings.Features,
		TrainSVM:   rep.Timings.TrainSVM,
		Total:      rep.Timings.TotalTrain,
	}, nil
}

// FormatTiming renders the timing result with the paper's reference number.
func FormatTiming(t *TimingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "world: %d papers, %d references\n", t.Papers, t.References)
	fmt.Fprintf(&b, "training-set construction: %v\n", t.TrainSet)
	fmt.Fprintf(&b, "feature extraction:        %v\n", t.Features)
	fmt.Fprintf(&b, "SVM training:              %v\n", t.TrainSVM)
	fmt.Fprintf(&b, "total:                     %v\n", t.Total)
	b.WriteString("(paper: 62.1 s for the whole training process on full DBLP, 1.29M references)\n")
	return b.String()
}
