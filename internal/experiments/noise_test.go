package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestNoiseSensitivitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates worlds")
	}
	h := newTestHarness(t)
	rows, err := h.NoiseSensitivity([]float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Average.F1 < 0 || r.Average.F1 > 1 {
			t.Errorf("f-measure %v out of range", r.Average.F1)
		}
	}
	// More cross-community noise must not make the task easier by a wide
	// margin (small worlds are noisy, so allow slack rather than demanding
	// strict monotonicity).
	if rows[1].Average.F1 > rows[0].Average.F1+0.15 {
		t.Errorf("heavy noise improved quality: %v -> %v", rows[0].Average.F1, rows[1].Average.F1)
	}

	out := FormatNoise(rows)
	if !strings.Contains(out, "cross-comm p") {
		t.Errorf("FormatNoise:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteNoiseCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 || recs[0][0] != "cross_community_prob" {
		t.Errorf("CSV records %v", recs)
	}
}
