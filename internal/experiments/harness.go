// Package experiments regenerates every table and figure of the DISTINCT
// paper's evaluation (Section 5) on a generated world:
//
//   - Table 1 — the ambiguous-name dataset (#authors, #references per name),
//   - Table 2 — per-name precision/recall/f-measure of DISTINCT,
//   - Figure 4 — accuracy and f-measure of six variants (combined /
//     set-resemblance-only / random-walk-only × supervised / unsupervised),
//   - Figure 5 — the grouping of the hardest name's references with
//     affiliations and DISTINCT's mistakes, and
//   - the Section 5 timing figure (training-set construction + SVM = 62.1 s
//     on full DBLP), measured at this reproduction's scale.
//
// The harness caches the expensive artifacts — one engine per supervision
// mode and the per-path similarity matrices per name — so variant sweeps
// only redo the cheap weight combination and clustering.
package experiments

import (
	"context"
	"fmt"
	"time"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/eval"
	"distinct/internal/obs"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
	"distinct/internal/trainset"
)

// Options configures a harness run.
type Options struct {
	// World configures the generated dataset; zero value means
	// dblp.DefaultConfig (the Table 1 profile).
	World dblp.Config
	// MinSim is DISTINCT's clustering threshold. Zero means
	// core.DefaultMinSim.
	MinSim float64
	// MinSimGrid is the sweep grid used to tune the non-DISTINCT variants
	// of Figure 4, as the paper does ("for each approach except DISTINCT,
	// we choose the min-sim that maximizes average accuracy"). Zero value
	// means DefaultMinSimGrid.
	MinSimGrid []float64
	// TrainPositive/TrainNegative size the automatic training set; zero
	// means the paper's 1000 + 1000.
	TrainPositive, TrainNegative int
	// Seed drives training-set sampling.
	Seed int64
	// Obs, when non-nil, receives the engine's per-stage spans and
	// pipeline counters (the -metrics / -obs flags of cmd/experiments).
	Obs *obs.Registry
	// Trace, when non-nil, records the engine's span tree and decision
	// events (the -trace / -tracetree flags of cmd/experiments).
	Trace *trace.Trace
	// Ctx, when non-nil, bounds every pipeline call the harness makes
	// (engine construction, training, per-name similarity matrices); nil
	// means context.Background(). cmd/experiments cancels it on SIGINT and
	// bounds it with -timeout.
	Ctx context.Context
	// NameTimeout, when positive, is the per-name budget on the similarity
	// matrices PathSims computes — the dominant per-name cost here (the
	// -name-timeout flag of cmd/experiments).
	NameTimeout time.Duration
}

// ctx returns the run context (Background when none was configured).
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// DefaultMinSimGrid spans four orders of magnitude around the useful range.
func DefaultMinSimGrid() []float64 {
	return []float64{0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
}

func (o Options) withDefaults() Options {
	if o.World.Communities == 0 {
		o.World = dblp.DefaultConfig()
	}
	if o.MinSim == 0 {
		o.MinSim = core.DefaultMinSim
	}
	if len(o.MinSimGrid) == 0 {
		o.MinSimGrid = DefaultMinSimGrid()
	}
	if o.TrainPositive == 0 {
		o.TrainPositive = 1000
	}
	if o.TrainNegative == 0 {
		o.TrainNegative = 1000
	}
	return o
}

// Harness owns a generated world and the engines and caches needed to
// regenerate the paper's experiments.
type Harness struct {
	Opts  Options
	World *dblp.World

	engine      *core.Engine // shared expanded DB + neighborhoods
	trainReport *core.TrainReport

	// cached per ambiguous name
	refs map[string][]reldb.TupleID // expanded-DB reference IDs
	gold map[string]eval.Clustering // expanded-DB gold clusters
}

// NewHarness generates the world and builds the engine (untrained).
func NewHarness(opts Options) (*Harness, error) {
	opts = opts.withDefaults()
	world, err := dblp.Generate(opts.World)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating world: %w", err)
	}
	return NewHarnessWorld(world, opts)
}

// NewHarnessWorld builds a harness over an existing world (e.g. one loaded
// from disk, or shared across benchmark runs). opts.World is ignored.
func NewHarnessWorld(world *dblp.World, opts Options) (*Harness, error) {
	opts = opts.withDefaults()
	opts.World = world.Config
	engine, err := core.NewEngineCtx(opts.ctx(), world.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  true,
		Measure:     cluster.Combined,
		MinSim:      opts.MinSim,
		Train: trainset.Options{
			NumPositive: opts.TrainPositive,
			NumNegative: opts.TrainNegative,
			Exclude:     world.AmbiguousNames(),
			Seed:        opts.Seed,
		},
		Obs:   opts.Obs,
		Trace: opts.Trace,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building engine: %w", err)
	}
	// The variant sweeps (Figure 4, min-sim grids) re-cluster the same
	// per-name blocks under many weightings; the engine's matrix cache makes
	// every pass after the first a cheap Combine instead of an all-pairs
	// kernel run, bounded by an LRU byte budget instead of the old
	// unbounded per-name map.
	engine.EnableMatrixReuse(0)
	h := &Harness{
		Opts:   opts,
		World:  world,
		engine: engine,
		refs:   make(map[string][]reldb.TupleID),
		gold:   make(map[string]eval.Clustering),
	}
	for _, name := range world.AmbiguousNames() {
		h.refs[name] = engine.MapRefs(world.Refs(name))
		var g eval.Clustering
		for _, c := range world.GoldClusters(name) {
			g = append(g, engine.MapRefs(c))
		}
		h.gold[name] = g
	}
	return h, nil
}

// Engine exposes the underlying engine (e.g. for weight inspection).
func (h *Harness) Engine() *core.Engine { return h.engine }

// Train runs supervised training once and caches the report.
func (h *Harness) Train() (*core.TrainReport, error) {
	if h.trainReport != nil {
		return h.trainReport, nil
	}
	rep, err := h.engine.TrainCtx(h.Opts.ctx())
	if err != nil {
		return nil, err
	}
	h.trainReport = rep
	return rep, nil
}

// PathSims returns the per-path similarity matrices of a name, cached in
// the engine's matrix-reuse layer (keyed on the reference list and the
// database version, LRU-bounded). Opts.NameTimeout, when set, budgets the
// computation; Opts.Ctx cancels it.
func (h *Harness) PathSims(name string) (*core.PathMatrices, error) {
	ctx := h.Opts.ctx()
	if h.Opts.NameTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.Opts.NameTimeout)
		defer cancel()
	}
	pm, err := h.engine.PathSimilaritiesCtx(ctx, h.refs[name])
	if err != nil {
		return nil, fmt.Errorf("experiments: path similarities of %q: %w", name, err)
	}
	return pm, nil
}

// uniformWeights returns 1/n per path.
func (h *Harness) uniformWeights() []float64 {
	n := len(h.engine.Paths())
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// variantWeights returns the (resem, walk) weights of a supervision mode.
// Supervised weights require Train to have run.
func (h *Harness) variantWeights(supervised bool) (resemW, walkW []float64, err error) {
	if !supervised {
		u := h.uniformWeights()
		return u, u, nil
	}
	rep, err := h.Train()
	if err != nil {
		return nil, nil, err
	}
	return rep.ResemWeights, rep.WalkWeights, nil
}

// clusterName clusters one name's references under the given weights,
// measure and threshold, returning its metrics against gold.
func (h *Harness) clusterName(name string, resemW, walkW []float64, measure cluster.Measure, minSim float64) (eval.Metrics, error) {
	pred, err := h.clusterNamePred(name, resemW, walkW, measure, minSim)
	if err != nil {
		return eval.Metrics{}, err
	}
	return eval.Evaluate(pred, h.gold[name])
}

// clusterNamePred returns the predicted clustering itself.
func (h *Harness) clusterNamePred(name string, resemW, walkW []float64, measure cluster.Measure, minSim float64) (eval.Clustering, error) {
	refs, ok := h.refs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown name %q", name)
	}
	pm, err := h.PathSims(name)
	if err != nil {
		return nil, err
	}
	m := core.Combine(pm, resemW, walkW)
	return eval.Clustering(core.ClusterMatrix(refs, m, measure, minSim)), nil
}

// evaluateAll scores every ambiguous name and returns per-name metrics in
// Table 1 order plus their average.
func (h *Harness) evaluateAll(resemW, walkW []float64, measure cluster.Measure, minSim float64) ([]eval.Metrics, eval.Metrics, error) {
	names := h.World.AmbiguousNames()
	ms := make([]eval.Metrics, len(names))
	for i, name := range names {
		m, err := h.clusterName(name, resemW, walkW, measure, minSim)
		if err != nil {
			return nil, eval.Metrics{}, fmt.Errorf("experiments: %s: %w", name, err)
		}
		ms[i] = m
	}
	return ms, eval.Average(ms), nil
}
