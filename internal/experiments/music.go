package experiments

import (
	"fmt"
	"strings"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/eval"
	"distinct/internal/music"
	"distinct/internal/trainset"
)

// MusicRow is one shared title's outcome in the cross-domain evaluation.
type MusicRow struct {
	Title   string
	Songs   int
	Refs    int
	Metrics eval.Metrics
}

// MusicResult is the cross-domain evaluation: the engine, unchanged, on a
// music catalog (the paper's allmusic.com motivation — "72 songs named
// 'Forgotten'"), trained on the catalog's own rare titles and thresholded
// by label-free tuning.
type MusicResult struct {
	Tracks  int
	Titles  int
	MinSim  float64 // chosen by TuneMinSim, no labels involved
	Rows    []MusicRow
	Average eval.Metrics
}

// MusicEvaluation generates a catalog and runs the full self-supervised
// pipeline on it.
func MusicEvaluation(cfg music.Config, seed int64) (*MusicResult, error) {
	cat, err := music.Generate(cfg)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(cat.DB, core.Config{
		RefRelation: music.ReferenceRelation,
		RefAttr:     music.ReferenceAttr,
		Supervised:  true,
		Measure:     cluster.Combined,
		Train: trainset.Options{
			NumPositive: 500, NumNegative: 500, Seed: seed,
			// Titles are two skewed words; parts are less diverse than
			// human names, so rarity thresholds sit higher.
			MaxFirstFreq: 8, MaxLastFreq: 8,
			Exclude: cat.AmbiguousTitles(),
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := engine.Train(); err != nil {
		return nil, err
	}
	tune, err := engine.TuneMinSim(nil, 40, seed)
	if err != nil {
		return nil, err
	}

	res := &MusicResult{
		Tracks: cat.NumTracks(),
		Titles: cat.DB.Relation("Titles").Size(),
		MinSim: tune.MinSim,
	}
	var ms []eval.Metrics
	for _, title := range cat.AmbiguousTitles() {
		refs := engine.MapRefs(cat.Refs(title))
		pred := engine.DisambiguateRefs(refs)
		var gold eval.Clustering
		for _, g := range cat.GoldClusters(title) {
			gold = append(gold, engine.MapRefs(g))
		}
		m, err := eval.Evaluate(eval.Clustering(pred), gold)
		if err != nil {
			return nil, fmt.Errorf("experiments: music %s: %w", title, err)
		}
		res.Rows = append(res.Rows, MusicRow{
			Title: title, Songs: len(gold), Refs: len(refs), Metrics: m,
		})
		ms = append(ms, m)
	}
	res.Average = eval.Average(ms)
	return res, nil
}

// FormatMusic renders the cross-domain result.
func FormatMusic(res *MusicResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "catalog: %d titles, %d track references; tuned min-sim = %g\n",
		res.Titles, res.Tracks, res.MinSim)
	fmt.Fprintf(&b, "%-12s %6s %6s %10s %8s %10s\n", "Title", "#songs", "#refs", "precision", "recall", "f-measure")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-12s %6d %6d %10.3f %8.3f %10.3f\n",
			r.Title, r.Songs, r.Refs, r.Metrics.Precision, r.Metrics.Recall, r.Metrics.F1)
	}
	fmt.Fprintf(&b, "%-12s %6s %6s %10.3f %8.3f %10.3f\n", "average", "", "",
		res.Average.Precision, res.Average.Recall, res.Average.F1)
	return b.String()
}
