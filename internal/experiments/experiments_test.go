package experiments

import (
	"strings"
	"testing"

	"distinct/internal/dblp"
)

// smallOptions is a reduced world so tests stay fast; the full Table 1
// profile is exercised by the benchmarks and the experiments CLI.
func smallOptions() Options {
	world := dblp.DefaultConfig()
	world.Communities = 4
	world.AuthorsPerCommunity = 60
	world.PapersPerAuthor = 3
	world.Ambiguous = []dblp.AmbiguousName{
		{Name: "Wei Wang", RefsPerAuthor: []int{14, 9, 6}},
		{Name: "Lei Wang", RefsPerAuthor: []int{7, 5}},
		{Name: "Bin Yu", RefsPerAuthor: []int{6, 4}},
	}
	return Options{
		World:         world,
		TrainPositive: 150,
		TrainNegative: 150,
		Seed:          3,
		MinSimGrid:    []float64{0.001, 0.005, 0.02, 0.1},
	}
}

func newTestHarness(t testing.TB) *Harness {
	t.Helper()
	h, err := NewHarness(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTable1MatchesWorld(t *testing.T) {
	h := newTestHarness(t)
	rows := h.Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "Wei Wang" || rows[0].Authors != 3 || rows[0].Refs != 29 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Wei Wang") || !strings.Contains(out, "#author") {
		t.Errorf("FormatTable1:\n%s", out)
	}
}

func TestTable2RunsAndScores(t *testing.T) {
	h := newTestHarness(t)
	res, err := h.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Average.F1 < 0.6 {
		t.Errorf("average f-measure %v too low for the easy test world", res.Average.F1)
	}
	out := FormatTable2(res)
	if !strings.Contains(out, "average") || !strings.Contains(out, "min-sim") {
		t.Errorf("FormatTable2:\n%s", out)
	}
}

func TestFigure4VariantsOrderAndShape(t *testing.T) {
	h := newTestHarness(t)
	rows, err := h.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("variants = %d", len(rows))
	}
	if rows[0].Variant != "DISTINCT" {
		t.Errorf("first variant %q", rows[0].Variant)
	}
	byName := make(map[string]Figure4Row)
	for _, r := range rows {
		byName[r.Variant] = r
		if r.Accuracy < 0 || r.Accuracy > 1 || r.F1 < 0 || r.F1 > 1 {
			t.Errorf("%s: out-of-range scores %+v", r.Variant, r)
		}
	}
	t.Logf("\n%s", FormatFigure4(rows))
	// The headline shape: DISTINCT at least matches every single-measure
	// unsupervised baseline.
	d := byName["DISTINCT"]
	for _, base := range []string{"Unsupervised set resemblance", "Unsupervised random walk"} {
		if d.F1+1e-9 < byName[base].F1 {
			t.Errorf("DISTINCT f-measure %.3f below baseline %s %.3f", d.F1, base, byName[base].F1)
		}
	}
	out := FormatFigure4(rows)
	if !strings.Contains(out, "DISTINCT") || !strings.Contains(out, "#") {
		t.Errorf("FormatFigure4:\n%s", out)
	}
}

func TestAblationRuns(t *testing.T) {
	h := newTestHarness(t)
	rows, err := h.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	// The variant list plus the threshold-free gap-cutting row.
	if len(rows) != len(AblationVariants())+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Variant != "Per-name gap cut (hybrid)" {
		t.Errorf("auto row = %+v", last)
	}
}

func TestFigure5AnnotatesMistakes(t *testing.T) {
	h := newTestHarness(t)
	res, err := h.Figure5("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if res.GoldAuthors != 3 {
		t.Errorf("gold authors %d", res.GoldAuthors)
	}
	total := 0
	for _, c := range res.Clusters {
		sum := 0
		for _, p := range c.Parts {
			sum += p.Count
		}
		if sum != c.Size {
			t.Errorf("cluster size %d != parts sum %d", c.Size, sum)
		}
		total += c.Size
	}
	if total != 29 {
		t.Errorf("clusters cover %d refs, want 29", total)
	}
	text := FormatFigure5(res)
	if !strings.Contains(text, "Wei Wang") || !strings.Contains(text, "cluster 1") {
		t.Errorf("FormatFigure5:\n%s", text)
	}
	dot := DOTFigure5(res)
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "n0 [label=") {
		t.Errorf("DOTFigure5:\n%s", dot)
	}
	if _, err := h.Figure5("No Such Name"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestTimingReports(t *testing.T) {
	h := newTestHarness(t)
	tm, err := h.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if tm.Total <= 0 || tm.References <= 0 {
		t.Errorf("timing = %+v", tm)
	}
	out := FormatTiming(tm)
	if !strings.Contains(out, "62.1") {
		t.Errorf("FormatTiming missing paper reference:\n%s", out)
	}
}

func TestHarnessCaches(t *testing.T) {
	h := newTestHarness(t)
	a, err := h.PathSims("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.PathSims("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PathSims not cached")
	}
	r1, err := h.Train()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Train()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("Train not cached")
	}
}

func TestDefaultMinSimGrid(t *testing.T) {
	g := DefaultMinSimGrid()
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatal("grid not increasing")
		}
	}
}
