package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distinct/internal/dblp"
	"distinct/internal/eval"
)

// NoiseRow is one point of the noise-sensitivity experiment: the world's
// cross-community collaboration probability and DISTINCT's quality there.
type NoiseRow struct {
	CrossCommunityProb float64
	Average            eval.Metrics
}

// NoiseSensitivity probes how DISTINCT degrades as the misleading linkages
// grow — the cross-community collaborations that connect same-named authors
// from different communities (the paper's Figure 5 blames exactly these for
// its mistakes). Each level regenerates the world with that
// CrossCommunityProb and reruns the full Table 2 protocol. levels nil means
// {0, 0.05, 0.1, 0.2, 0.3}.
func (h *Harness) NoiseSensitivity(levels []float64) ([]NoiseRow, error) {
	if len(levels) == 0 {
		levels = []float64{0, 0.05, 0.1, 0.2, 0.3}
	}
	var rows []NoiseRow
	for _, lv := range levels {
		cfg := h.Opts.World
		cfg.CrossCommunityProb = lv
		world, err := dblp.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: noise level %v: %w", lv, err)
		}
		sub, err := NewHarnessWorld(world, Options{
			MinSim:        h.Opts.MinSim,
			MinSimGrid:    h.Opts.MinSimGrid,
			TrainPositive: h.Opts.TrainPositive,
			TrainNegative: h.Opts.TrainNegative,
			Seed:          h.Opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := sub.Table2()
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseRow{CrossCommunityProb: lv, Average: res.Average})
	}
	return rows, nil
}

// FormatNoise renders the noise-sensitivity rows.
func FormatNoise(rows []NoiseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %8s %10s\n", "cross-comm p", "precision", "recall", "f-measure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12.2f %10.3f %8.3f %10.3f  %s\n",
			r.CrossCommunityProb, r.Average.Precision, r.Average.Recall, r.Average.F1, bar(r.Average.F1))
	}
	return b.String()
}

// WriteNoiseCSV writes the rows as CSV.
func WriteNoiseCSV(w io.Writer, rows []NoiseRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cross_community_prob", "precision", "recall", "f_measure"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.FormatFloat(r.CrossCommunityProb, 'g', -1, 64),
			f6(r.Average.Precision), f6(r.Average.Recall), f6(r.Average.F1),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
