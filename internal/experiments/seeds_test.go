package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeedSweep(t *testing.T) {
	h := newTestHarness(t)
	sum, err := h.SeedSweep([]int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 2 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	wantMean := (sum.Rows[0].Average.F1 + sum.Rows[1].Average.F1) / 2
	if math.Abs(sum.MeanF1-wantMean) > 1e-12 {
		t.Errorf("mean %v, want %v", sum.MeanF1, wantMean)
	}
	if sum.StdF1 < 0 {
		t.Errorf("negative std %v", sum.StdF1)
	}
	out := FormatSeeds(sum)
	if !strings.Contains(out, "mean f-measure") {
		t.Errorf("FormatSeeds:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteSeedsCSV(&buf, sum); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 || recs[1][0] != "3" {
		t.Errorf("CSV %v", recs)
	}
	// Single seed: std is zero by definition.
	one, err := h.SeedSweep([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if one.StdF1 != 0 {
		t.Errorf("single-seed std %v", one.StdF1)
	}
}
