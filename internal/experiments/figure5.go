package experiments

import (
	"fmt"
	"sort"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/eval"
	"distinct/internal/reldb"
	"distinct/internal/viz"
)

// Figure5Part is the share of one real identity inside a predicted cluster.
type Figure5Part struct {
	Author      dblp.AuthorID
	Affiliation string
	Count       int
	Majority    bool // the cluster's dominant identity
	// Via names the strongest join path linking this (misplaced) part to
	// the cluster's majority identity — the misleading linkage behind the
	// mistake; empty for majority parts. The paper's figure draws these as
	// arrows; here the arrow is labeled with its cause.
	Via string
}

// Figure5Cluster is one predicted cluster with its identity composition.
type Figure5Cluster struct {
	Size  int
	Parts []Figure5Part
}

// Figure5Result is the material of the paper's Figure 5 for one name: the
// predicted grouping annotated with ground-truth identities, affiliations,
// and the mistakes (references placed with a different identity's majority
// cluster, identities split across clusters, clusters merging identities).
type Figure5Result struct {
	Name        string
	Clusters    []Figure5Cluster
	GoldAuthors int
	// MistakeRefs counts references sitting in a cluster whose majority is
	// another identity.
	MistakeRefs int
	// SplitIdentities counts identities spread over more than one cluster;
	// MergedClusters counts clusters containing more than one identity.
	SplitIdentities int
	MergedClusters  int
	Metrics         eval.Metrics
}

// Figure5 disambiguates one name with the full DISTINCT configuration and
// annotates the outcome with ground truth. With the default world and
// name "Wei Wang" this is the reproduction of the paper's Figure 5.
func (h *Harness) Figure5(name string) (*Figure5Result, error) {
	refs, ok := h.refs[name]
	if !ok {
		return nil, fmt.Errorf("experiments: %q is not an ambiguous name of this world", name)
	}
	resemW, walkW, err := h.variantWeights(true)
	if err != nil {
		return nil, err
	}
	pm, err := h.PathSims(name)
	if err != nil {
		return nil, err
	}
	m := core.Combine(pm, resemW, walkW)
	pred := core.ClusterMatrix(refs, m, cluster.Combined, h.Opts.MinSim)

	// Invert the expanded-DB mapping so ground truth can be read per ref.
	origByExp := make(map[int64]dblp.AuthorID, len(refs))
	for _, orig := range h.World.Refs(name) {
		origByExp[int64(h.engine.MapRef(orig))] = h.World.RefAuthor[orig]
	}

	res := &Figure5Result{Name: name, GoldAuthors: len(h.gold[name])}
	clustersPerID := make(map[dblp.AuthorID]int)
	for _, cl := range pred {
		counts := make(map[dblp.AuthorID]int)
		firstRef := make(map[dblp.AuthorID]reldb.TupleID)
		for _, r := range cl {
			id := origByExp[int64(r)]
			if _, seen := counts[id]; !seen {
				firstRef[id] = r
			}
			counts[id]++
		}
		var parts []Figure5Part
		for id, c := range counts {
			parts = append(parts, Figure5Part{
				Author:      id,
				Affiliation: h.World.Identity(id).Affiliation,
				Count:       c,
			})
			clustersPerID[id]++
		}
		sort.Slice(parts, func(i, j int) bool {
			if parts[i].Count != parts[j].Count {
				return parts[i].Count > parts[j].Count
			}
			return parts[i].Author < parts[j].Author
		})
		parts[0].Majority = true
		majorityRef := firstRef[parts[0].Author]
		for pi := range parts[1:] {
			p := &parts[1+pi]
			res.MistakeRefs += p.Count
			// Identify the misleading linkage: the strongest join path
			// between this part's reference and a majority reference.
			ex := h.engine.Explain(firstRef[p.Author], majorityRef)
			if len(ex.Contributions) > 0 {
				p.Via = ex.Contributions[0].Path.Describe(h.engine.DB().Schema)
			}
		}
		if len(parts) > 1 {
			res.MergedClusters++
		}
		res.Clusters = append(res.Clusters, Figure5Cluster{Size: len(cl), Parts: parts})
	}
	for _, n := range clustersPerID {
		if n > 1 {
			res.SplitIdentities++
		}
	}

	var predC eval.Clustering
	for _, cl := range pred {
		predC = append(predC, cl)
	}
	metrics, err := eval.Evaluate(predC, h.gold[name])
	if err != nil {
		return nil, err
	}
	res.Metrics = metrics
	return res, nil
}

// Boxes converts the result into viz boxes and split edges.
func (r *Figure5Result) Boxes() ([]viz.Box, []viz.Edge) {
	boxes := make([]viz.Box, len(r.Clusters))
	firstBoxOfID := make(map[dblp.AuthorID]int)
	var edges []viz.Edge
	for i, cl := range r.Clusters {
		box := viz.Box{Title: fmt.Sprintf("cluster %d (%d refs)", i+1, cl.Size)}
		for _, p := range cl.Parts {
			tag := ""
			if !p.Majority {
				tag = "  <- misplaced"
				if p.Via != "" {
					tag += " via " + p.Via
				}
				box.Warn = true
			}
			box.Lines = append(box.Lines, fmt.Sprintf("author#%d %s (%d)%s", p.Author, p.Affiliation, p.Count, tag))
			if j, seen := firstBoxOfID[p.Author]; seen {
				edges = append(edges, viz.Edge{From: j, To: i, Label: fmt.Sprintf("author#%d split", p.Author)})
			} else {
				firstBoxOfID[p.Author] = i
			}
		}
		boxes[i] = box
	}
	return boxes, edges
}

// FormatFigure5 renders the result as text.
func FormatFigure5(r *Figure5Result) string {
	boxes, edges := r.Boxes()
	title := fmt.Sprintf("Groups of references of %s: %d clusters for %d authors (%s)",
		r.Name, len(r.Clusters), r.GoldAuthors, r.Metrics)
	return viz.Text(title, boxes, edges) +
		fmt.Sprintf("misplaced refs: %d, merged clusters: %d, split identities: %d\n",
			r.MistakeRefs, r.MergedClusters, r.SplitIdentities)
}

// DOTFigure5 renders the result as Graphviz DOT.
func DOTFigure5(r *Figure5Result) string {
	boxes, edges := r.Boxes()
	return viz.DOT(fmt.Sprintf("Groups of references of %s", r.Name), boxes, edges)
}
