package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"distinct/internal/eval"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteTable1CSV(t *testing.T) {
	rows := []Table1Row{{Name: "Wei Wang", Authors: 14, Refs: 143}, {Name: "Bin Yu", Authors: 5, Refs: 44}}
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 || recs[0][0] != "name" || recs[1][0] != "Wei Wang" || recs[1][2] != "143" {
		t.Errorf("records %v", recs)
	}
}

func TestWriteTable2CSV(t *testing.T) {
	res := &Table2Result{
		Rows: []Table2Row{{
			Name:    "Wei Wang",
			Metrics: eval.Metrics{Precision: 0.9, Recall: 0.8, F1: 0.847, Accuracy: 0.95},
		}},
		Average: eval.Metrics{Precision: 0.9, Recall: 0.8, F1: 0.847, Accuracy: 0.95},
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 3 {
		t.Fatalf("records %v", recs)
	}
	if recs[2][0] != "average" || !strings.HasPrefix(recs[1][1], "0.9") {
		t.Errorf("records %v", recs)
	}
}

func TestWriteFigure4CSV(t *testing.T) {
	rows := []Figure4Row{{Variant: "DISTINCT", Accuracy: 0.95, F1: 0.9, MinSim: 0.01}}
	var buf bytes.Buffer
	if err := WriteFigure4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 2 || recs[1][0] != "DISTINCT" {
		t.Errorf("records %v", recs)
	}
}

func TestWriteScalingCSV(t *testing.T) {
	rows := []ScalingRow{{
		References: 1000, Papers: 300,
		TrainTime: 150 * time.Millisecond, Disambig: time.Second, AvgF1: 0.91,
	}}
	var buf bytes.Buffer
	if err := WriteScalingCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.String())
	if len(recs) != 2 || recs[1][0] != "1000" || recs[1][2] != "150.0" {
		t.Errorf("records %v", recs)
	}
}

func TestScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling run is a few seconds")
	}
	h := newTestHarness(t)
	rows, err := h.Scaling([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.References <= 0 || r.TrainTime <= 0 || r.Disambig <= 0 {
		t.Errorf("row %+v", r)
	}
	if r.AvgF1 < 0.5 {
		t.Errorf("scaling world quality %v suspiciously low", r.AvgF1)
	}
	out := FormatScaling(rows)
	if !strings.Contains(out, "62.1") || !strings.Contains(out, "avg-f") {
		t.Errorf("FormatScaling:\n%s", out)
	}
}
