// Package trainset constructs SVM training sets automatically, with no
// manual labeling, following Section 3 of the DISTINCT paper: in most
// applications the majority of names are unique, and a name combining a rare
// first name with a rare last name is very likely to denote a single real
// person. Two references to such a name form a positive (equivalent) pair;
// references to two different rare names form a negative (distinct) pair.
package trainset

import (
	"fmt"
	"math/rand"
	"strings"

	"distinct/internal/reldb"
)

// Options configures training-set construction.
type Options struct {
	// MaxFirstFreq and MaxLastFreq are the rarity thresholds: a name is
	// considered rare (and hence likely unique) if its first name occurs in
	// at most MaxFirstFreq distinct author names and its last name in at
	// most MaxLastFreq. Both default to 3.
	MaxFirstFreq, MaxLastFreq int
	// NumPositive and NumNegative are the numbers of pairs to sample; the
	// paper uses 1000 + 1000. Both default to 1000.
	NumPositive, NumNegative int
	// MinRefs is the minimum number of references a rare name needs to
	// yield positive pairs. Defaults to 2.
	MinRefs int
	// Exclude lists names that must not contribute examples — the ambiguous
	// names under evaluation, so training never sees test data.
	Exclude []string
	// Seed drives sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxFirstFreq <= 0 {
		o.MaxFirstFreq = 3
	}
	if o.MaxLastFreq <= 0 {
		o.MaxLastFreq = 3
	}
	if o.NumPositive <= 0 {
		o.NumPositive = 1000
	}
	if o.NumNegative <= 0 {
		o.NumNegative = 1000
	}
	if o.MinRefs < 2 {
		o.MinRefs = 2
	}
	return o
}

// Pair is one training example: two references and a label (+1 equivalent,
// -1 distinct).
type Pair struct {
	R1, R2 reldb.TupleID
	Label  float64
}

// Result is a constructed training set.
type Result struct {
	Pairs []Pair
	// RareNames lists the names presumed unique, sorted lexicographically.
	RareNames []string
	// NumPositive and NumNegative count the labels in Pairs.
	NumPositive, NumNegative int
}

// SplitName separates a full name into first and last parts: the first
// space-separated token is the first name, the remainder the last name.
// A single-token name has an empty first name.
func SplitName(name string) (first, last string) {
	i := strings.IndexByte(name, ' ')
	if i < 0 {
		return "", name
	}
	return name[:i], name[i+1:]
}

// RareNames returns the names presumed unique under the options' rarity
// thresholds: the first name part occurs in at most MaxFirstFreq distinct
// names and the last part in at most MaxLastFreq, the name is not excluded,
// and it is not a single token. Names follow the name relation's insertion
// order.
func RareNames(db *reldb.Database, refRel, refAttr string, opts Options) ([]string, error) {
	opts = opts.withDefaults()
	rs := db.Schema.Relation(refRel)
	if rs == nil {
		return nil, fmt.Errorf("trainset: unknown relation %q", refRel)
	}
	ai := rs.AttrIndex(refAttr)
	if ai < 0 {
		return nil, fmt.Errorf("trainset: relation %q has no attribute %q", refRel, refAttr)
	}
	target := rs.Attrs[ai].FK
	if target == "" {
		return nil, fmt.Errorf("trainset: %s.%s is not a foreign key", refRel, refAttr)
	}
	authors := db.Relation(target)
	tks := authors.Schema.KeyIndex()

	// Part frequencies over distinct author names.
	firstFreq := make(map[string]int)
	lastFreq := make(map[string]int)
	names := make([]string, 0, authors.Size())
	for _, id := range authors.TupleIDs() {
		name := db.Tuple(id).Vals[tks]
		names = append(names, name)
		f, l := SplitName(name)
		firstFreq[f]++
		lastFreq[l]++
	}

	excluded := make(map[string]bool, len(opts.Exclude))
	for _, n := range opts.Exclude {
		excluded[n] = true
	}
	var rare []string
	for _, name := range names {
		f, l := SplitName(name)
		if f == "" || excluded[name] {
			continue
		}
		if firstFreq[f] > opts.MaxFirstFreq || lastFreq[l] > opts.MaxLastFreq {
			continue
		}
		rare = append(rare, name)
	}
	return rare, nil
}

// Build constructs a training set from the database. refRel/refAttr locate
// the references (e.g. Publish.author); the author names are the keys of the
// relation refAttr references.
func Build(db *reldb.Database, refRel, refAttr string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	rare, err := RareNames(db, refRel, refAttr, opts)
	if err != nil {
		return nil, err
	}

	res := &Result{RareNames: rare}
	var withRefs []string // rare names having >= MinRefs references
	var anyRefs []string  // rare names having >= 1 reference
	for _, name := range rare {
		n := len(db.Referencing(refRel, refAttr, name))
		if n >= opts.MinRefs {
			withRefs = append(withRefs, name)
		}
		if n >= 1 {
			anyRefs = append(anyRefs, name)
		}
	}
	if len(withRefs) == 0 {
		return nil, fmt.Errorf("trainset: no rare name has %d+ references; relax the rarity thresholds", opts.MinRefs)
	}
	if len(anyRefs) < 2 {
		return nil, fmt.Errorf("trainset: fewer than two rare names with references")
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.NumPositive; i++ {
		name := withRefs[rng.Intn(len(withRefs))]
		refs := db.Referencing(refRel, refAttr, name)
		a := rng.Intn(len(refs))
		b := rng.Intn(len(refs) - 1)
		if b >= a {
			b++
		}
		res.Pairs = append(res.Pairs, Pair{R1: refs[a], R2: refs[b], Label: 1})
		res.NumPositive++
	}
	for i := 0; i < opts.NumNegative; i++ {
		a := rng.Intn(len(anyRefs))
		b := rng.Intn(len(anyRefs) - 1)
		if b >= a {
			b++
		}
		ra := db.Referencing(refRel, refAttr, anyRefs[a])
		rb := db.Referencing(refRel, refAttr, anyRefs[b])
		res.Pairs = append(res.Pairs, Pair{
			R1:    ra[rng.Intn(len(ra))],
			R2:    rb[rng.Intn(len(rb))],
			Label: -1,
		})
		res.NumNegative++
	}
	return res, nil
}
