package trainset

import (
	"sort"
	"testing"

	"distinct/internal/dblp"
	"distinct/internal/reldb"
)

func testWorld(t *testing.T) *dblp.World {
	t.Helper()
	cfg := dblp.DefaultConfig()
	cfg.Communities = 4
	cfg.AuthorsPerCommunity = 40
	cfg.PapersPerAuthor = 3
	cfg.Ambiguous = []dblp.AmbiguousName{{Name: "Wei Wang", RefsPerAuthor: []int{8, 6}}}
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, first, last string }{
		{"Wei Wang", "Wei", "Wang"},
		{"Joseph M. Hellerstein", "Joseph", "M. Hellerstein"},
		{"Plato", "", "Plato"},
		{"", "", ""},
	}
	for _, c := range cases {
		f, l := SplitName(c.in)
		if f != c.first || l != c.last {
			t.Errorf("SplitName(%q) = %q/%q, want %q/%q", c.in, f, l, c.first, c.last)
		}
	}
}

func TestBuildLabelsAndCounts(t *testing.T) {
	w := testWorld(t)
	res, err := Build(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, Options{
		NumPositive: 200, NumNegative: 300, Seed: 7,
		Exclude: w.AmbiguousNames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPositive != 200 || res.NumNegative != 300 {
		t.Fatalf("counts %d/%d", res.NumPositive, res.NumNegative)
	}
	if len(res.Pairs) != 500 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		n1 := w.DB.Tuple(p.R1).Val("author")
		n2 := w.DB.Tuple(p.R2).Val("author")
		switch p.Label {
		case 1:
			if n1 != n2 {
				t.Fatalf("positive pair across names %q %q", n1, n2)
			}
			if p.R1 == p.R2 {
				t.Fatal("positive pair of identical references")
			}
			// The generator guarantees rare names have one identity, so a
			// same-name pair really is equivalent.
			if w.RefAuthor[p.R1] != w.RefAuthor[p.R2] {
				t.Logf("warning: positive pair %q is actually two identities (training noise)", n1)
			}
		case -1:
			if n1 == n2 {
				t.Fatalf("negative pair within one name %q", n1)
			}
		default:
			t.Fatalf("label %v", p.Label)
		}
	}
}

func TestBuildRareNamesAreRareAndExcluded(t *testing.T) {
	w := testWorld(t)
	res, err := Build(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, Options{
		MaxFirstFreq: 2, MaxLastFreq: 2, NumPositive: 10, NumNegative: 10,
		Exclude: []string{"Wei Wang"}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute part frequencies and verify every rare name qualifies.
	firstFreq := map[string]int{}
	lastFreq := map[string]int{}
	authors := w.DB.Relation("Authors")
	for _, id := range authors.TupleIDs() {
		f, l := SplitName(w.DB.Tuple(id).Val("author"))
		firstFreq[f]++
		lastFreq[l]++
	}
	for _, n := range res.RareNames {
		if n == "Wei Wang" {
			t.Fatal("excluded name in rare set")
		}
		f, l := SplitName(n)
		if firstFreq[f] > 2 || lastFreq[l] > 2 {
			t.Errorf("name %q is not rare (first %d, last %d)", n, firstFreq[f], lastFreq[l])
		}
	}
	if !sort.StringsAreSorted(res.RareNames) {
		// RareNames follow Authors insertion order; sortedness is not
		// promised, so just assert non-emptiness here.
		t.Log("rare names unsorted (insertion order)")
	}
	if len(res.RareNames) == 0 {
		t.Error("no rare names found")
	}
}

func TestBuildDeterminism(t *testing.T) {
	w := testWorld(t)
	opts := Options{NumPositive: 50, NumNegative: 50, Seed: 3}
	a, err := Build(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestBuildErrors(t *testing.T) {
	w := testWorld(t)
	if _, err := Build(w.DB, "Nope", "author", Options{}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := Build(w.DB, dblp.ReferenceRelation, "nope", Options{}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Build(w.DB, "Publications", "title", Options{}); err == nil {
		t.Error("non-FK attribute accepted")
	}
	// Impossible rarity: every part occurs at least once, so thresholds of
	// 1..1 with a huge MinRefs must fail.
	if _, err := Build(w.DB, dblp.ReferenceRelation, dblp.ReferenceAttr, Options{
		MaxFirstFreq: 1, MaxLastFreq: 1, MinRefs: 100000,
	}); err == nil {
		t.Error("unsatisfiable options accepted")
	}
}

func TestBuildWorksOnExpandedDatabase(t *testing.T) {
	w := testWorld(t)
	ex, _, err := reldb.ExpandAttributes(w.DB, dblp.TitleAttr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(ex, dblp.ReferenceRelation, dblp.ReferenceAttr, Options{
		NumPositive: 20, NumNegative: 20, Seed: 5, Exclude: w.AmbiguousNames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if ex.Tuple(p.R1).Rel.Name != dblp.ReferenceRelation {
			t.Fatal("pair references wrong relation")
		}
	}
}
