package serve

import (
	"fmt"
	"testing"
)

func mkResult(name string, version int64, keys ...string) *NameResult {
	return &NameResult{Name: name, Version: version, NumRefs: len(keys), Groups: [][]string{keys}}
}

// cget probes with staleness disabled, collapsing the (result, state) pair
// to the pre-SWR single-value contract the version-strict tests pin.
func cget(c *resultCache, name string, version int64) *NameResult {
	res, state := c.get(name, version, 0)
	if state != cacheFresh {
		return nil
	}
	return res
}

func TestResultCacheHitAndStalePurge(t *testing.T) {
	c := newResultCache(1 << 20)
	r0 := mkResult("Wei Wang", 0, "a", "b")
	c.put("Wei Wang", 0, r0)
	if got := cget(c, "Wei Wang", 0); got != r0 {
		t.Fatal("fresh entry missed")
	}
	// A probe at a newer version (an Insert happened) must miss AND purge:
	// version 0's key can never be produced again.
	if got := cget(c, "Wei Wang", 1); got != nil {
		t.Fatalf("stale entry served: %+v", got)
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry still resident, len=%d", c.Len())
	}
	// Even a later probe at the old version can't resurrect it.
	if got := cget(c, "Wei Wang", 0); got != nil {
		t.Fatal("purged entry reappeared")
	}
}

func TestResultCacheNewerVersionReplaces(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put("Wei Wang", 0, mkResult("Wei Wang", 0, "a"))
	r1 := mkResult("Wei Wang", 1, "a", "b")
	c.put("Wei Wang", 1, r1)
	if c.Len() != 1 {
		t.Fatalf("len=%d after replace, want 1", c.Len())
	}
	if got := cget(c, "Wei Wang", 1); got != r1 {
		t.Fatal("replacement missed")
	}
	// A racing store of an older version must lose, not clobber.
	c.put("Wei Wang", 0, mkResult("Wei Wang", 0, "stale"))
	if got := cget(c, "Wei Wang", 1); got != r1 {
		t.Fatal("older racing store clobbered the newer entry")
	}
}

func TestResultCacheByteBoundEviction(t *testing.T) {
	// Budget sized to hold only a handful of entries; oldest must go first.
	c := newResultCache(600)
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("name-%02d", i)
		c.put(name, 0, mkResult(name, 0, "key-one", "key-two"))
	}
	if c.used > c.budget {
		t.Fatalf("used %d exceeds budget %d", c.used, c.budget)
	}
	if c.Len() >= 10 {
		t.Fatalf("nothing evicted, len=%d", c.Len())
	}
	// The most recent entry must have survived; the very first must not.
	if cget(c, "name-09", 0) == nil {
		t.Error("most recent entry evicted")
	}
	if cget(c, "name-00", 0) != nil {
		t.Error("least recent entry survived a full budget sweep")
	}
}

func TestResultCacheLRUOrder(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put("a", 0, mkResult("a", 0, "x"))
	c.put("b", 0, mkResult("b", 0, "x"))
	c.put("c", 0, mkResult("c", 0, "x"))
	cget(c, "a", 0) // refresh a: b is now least recent
	// Budget the next put so exactly one eviction is needed; the victim
	// must be b, the least recently used, not the refreshed a.
	d := mkResult("d", 0, "x")
	c.budget = c.used + resultBytes("d", d) - 1
	c.put("d", 0, d)
	if cget(c, "b", 0) != nil {
		t.Error("LRU victim b survived")
	}
	if cget(c, "a", 0) == nil {
		t.Error("recently used entry a evicted before b")
	}
	if cget(c, "c", 0) == nil {
		t.Error("entry c evicted though one eviction sufficed")
	}
}

func TestResultCacheOversizedEntryKept(t *testing.T) {
	c := newResultCache(10) // smaller than any entry
	c.put("huge", 0, mkResult("huge", 0, "aaaaaaaaaaaaaaaaaaaaaaaa"))
	if cget(c, "huge", 0) == nil {
		t.Fatal("oversized entry not kept alone")
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d, want 1", c.Len())
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *resultCache
	if cget(c, "x", 0) != nil || c.put("x", 0, mkResult("x", 0)) != 0 || c.Len() != 0 {
		t.Fatal("nil cache not inert")
	}
}
