package serve

import (
	"container/list"
	"sync"
	"time"
)

// Per-name result cache: a byte-bounded LRU keyed (name, Database.Version),
// the serving-layer sibling of core's matrix cache (matcache.go). Versions
// are monotonic — an Insert bumps the counter and a stale entry's key can
// never be produced again — so a probe at the current version either hits
// fresh, hits STALE (the previous-version entry, still servable inside the
// stale-while-revalidate window while a background flight recomputes), or
// purges the entry on the way through.
// Only clean results are cached; degraded or incident-bearing responses are
// transient by nature and recomputing them is the point.
//
// Publication race (the window this file used to only document): a result
// is computed under a flight keyed at version V. If the database moves
// again while that flight runs (a second bump during a revalidation — three
// versions in play), the computation may have read mixed contents and is a
// consistent snapshot of NO version. The store gate therefore lives with
// the computation, not the cache: compute re-reads the backend version
// after the engine call and publishes only when it still equals the
// flight's version (see Server.compute). put's version guard below is the
// cache-side half — an entry can only ever be replaced by a strictly newer
// version, so a late store from a superseded flight can never clobber a
// fresher entry.

// DefaultCacheBytes is the result-cache budget Options.CacheBytes = 0
// selects. Rendered groups are small (tens of bytes per reference), so this
// comfortably holds every name of a DBLP-scale corpus.
const DefaultCacheBytes = 16 << 20

// cacheState classifies a probe outcome.
type cacheState int

const (
	cacheMiss  cacheState = iota
	cacheFresh            // entry at exactly the probed version
	cacheStale            // previous-version entry inside the stale window
)

type cacheEntry struct {
	name    string
	version int64
	res     *NameResult
	bytes   int64
	elem    *list.Element
	// staleSince is when the entry was first observed stale (zero while
	// fresh); the stale-while-revalidate window is measured from here, so a
	// long-lived entry is still servable for the full window after the
	// version bump that staled it.
	staleSince time.Time
}

// resultCache is a byte-bounded LRU over NameResults. Safe for concurrent
// use. At most one version per name is kept — an older version is dead the
// moment a newer one exists, except inside the stale window where it is the
// stale-while-revalidate answer.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	m      map[string]*cacheEntry
	now    func() time.Time // swappable clock for staleness tests
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, ll: list.New(), m: make(map[string]*cacheEntry), now: time.Now}
}

// get returns the cached result for (name, version) and how it qualifies:
// cacheFresh for an exact version match, cacheStale for an older-version
// entry whose staleness age is inside maxStale (the entry is KEPT — the
// caller serves it marked stale and launches the revalidation), cacheMiss
// otherwise. Past the window (or with maxStale <= 0, staleness disabled)
// an old entry is purged on the way — the explicit invalidation point for
// mutated databases.
func (c *resultCache) get(name string, version int64, maxStale time.Duration) (*NameResult, cacheState) {
	if c == nil {
		return nil, cacheMiss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[name]
	if !ok {
		return nil, cacheMiss
	}
	if e.version == version {
		c.ll.MoveToFront(e.elem)
		return e.res, cacheFresh
	}
	if e.version < version && maxStale > 0 {
		now := c.now()
		if e.staleSince.IsZero() {
			e.staleSince = now
		}
		if now.Sub(e.staleSince) <= maxStale {
			c.ll.MoveToFront(e.elem)
			return e.res, cacheStale
		}
	}
	c.remove(e)
	return nil, cacheMiss
}

// put stores res under (name, version), evicting least-recently-used
// entries beyond the byte budget, and returns how many entries were
// evicted (the stale or replaced same-name entry, if any, not counted).
// A same-name entry at an equal or NEWER version wins over this store —
// the monotonic-version guard that keeps a slow flight from clobbering a
// fresher result. An entry larger than the whole budget is still kept
// alone, mirroring the matrix cache: the repeat lookups the cache exists
// for would otherwise never hit.
func (c *resultCache) put(name string, version int64, res *NameResult) int64 {
	if c == nil {
		return 0
	}
	size := resultBytes(name, res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[name]; ok {
		if prev.version >= version {
			return 0 // racing store already put this (or a newer) version
		}
		c.remove(prev)
	}
	e := &cacheEntry{name: name, version: version, res: res, bytes: size}
	e.elem = c.ll.PushFront(e)
	c.m[name] = e
	c.used += size
	var evicted int64
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		c.remove(back.Value.(*cacheEntry))
		evicted++
	}
	return evicted
}

// remove unlinks e; callers hold mu.
func (c *resultCache) remove(e *cacheEntry) {
	c.ll.Remove(e.elem)
	delete(c.m, e.name)
	c.used -= e.bytes
}

// Len reports how many names are cached (for tests and gauges).
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// resultBytes estimates a result's resident size: string bytes plus slice
// and header overhead. An estimate is enough — the budget bounds growth,
// it does not account memory to the byte.
func resultBytes(name string, res *NameResult) int64 {
	n := int64(len(name)) + 96 // entry struct, map slot, list element
	for _, g := range res.Groups {
		n += 24 // slice header
		for _, k := range g {
			n += int64(len(k)) + 16
		}
	}
	return n
}
