package serve

import (
	"container/list"
	"sync"
)

// Per-name result cache: a byte-bounded LRU keyed (name, Database.Version),
// the serving-layer sibling of core's matrix cache (matcache.go). Versions
// are monotonic — an Insert bumps the counter and a stale entry's key can
// never be produced again — so invalidation is free: a probe at the current
// version drops any older entry for the same name on the way through.
// Only clean results are cached; degraded or incident-bearing responses are
// transient by nature and recomputing them is the point.

// DefaultCacheBytes is the result-cache budget Options.CacheBytes = 0
// selects. Rendered groups are small (tens of bytes per reference), so this
// comfortably holds every name of a DBLP-scale corpus.
const DefaultCacheBytes = 16 << 20

type cacheEntry struct {
	name    string
	version int64
	res     *NameResult
	bytes   int64
	elem    *list.Element
}

// resultCache is a byte-bounded LRU over NameResults. Safe for concurrent
// use. At most one version per name is kept — an older version is dead the
// moment a newer one exists.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	m      map[string]*cacheEntry
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, ll: list.New(), m: make(map[string]*cacheEntry)}
}

// get returns the cached result for (name, version), or nil. An entry at an
// older version is purged on the way — this is the explicit invalidation
// point for mutated databases.
func (c *resultCache) get(name string, version int64) *NameResult {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[name]
	if !ok {
		return nil
	}
	if e.version != version {
		c.remove(e)
		return nil
	}
	c.ll.MoveToFront(e.elem)
	return e.res
}

// put stores res under (name, version), evicting least-recently-used
// entries beyond the byte budget, and returns how many entries were
// evicted (the stale or replaced same-name entry, if any, not counted).
// An entry larger than the whole budget is still kept alone, mirroring
// the matrix cache: the repeat lookups the cache exists for would
// otherwise never hit.
func (c *resultCache) put(name string, version int64, res *NameResult) int64 {
	if c == nil {
		return 0
	}
	size := resultBytes(name, res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[name]; ok {
		if prev.version >= version {
			return 0 // racing store already put this (or a newer) version
		}
		c.remove(prev)
	}
	e := &cacheEntry{name: name, version: version, res: res, bytes: size}
	e.elem = c.ll.PushFront(e)
	c.m[name] = e
	c.used += size
	var evicted int64
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		c.remove(back.Value.(*cacheEntry))
		evicted++
	}
	return evicted
}

// remove unlinks e; callers hold mu.
func (c *resultCache) remove(e *cacheEntry) {
	c.ll.Remove(e.elem)
	delete(c.m, e.name)
	c.used -= e.bytes
}

// Len reports how many names are cached (for tests and gauges).
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// resultBytes estimates a result's resident size: string bytes plus slice
// and header overhead. An estimate is enough — the budget bounds growth,
// it does not account memory to the byte.
func resultBytes(name string, res *NameResult) int64 {
	n := int64(len(name)) + 96 // entry struct, map slot, list element
	for _, g := range res.Groups {
		n += 24 // slice header
		for _, k := range g {
			n += int64(len(k)) + 16
		}
	}
	return n
}
