package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"distinct/internal/obs"
)

// Brownout: graceful degradation under sustained overload. Instead of one
// cliff (queue full → 429), the server walks a ladder of progressively
// cheaper service levels and walks back down when pressure clears:
//
//	normal    → full-quality computes, degraded retry allowed
//	degraded  → computes forced onto the top-k path view (200 + degraded:true)
//	stale     → stop revalidating; stale cache hits served without recompute
//	shed      → uncached lookups get 503 before touching admission
//
// The drivers are the admission queue fraction and the rolling SLO burn
// rate (errors as a multiple of the SLO's error allowance). The ladder
// ENGAGES a step as soon as either signal crosses its engage threshold —
// reacting fast is the point — but deepens or RECOVERS only after a dwell
// period with the signals beyond (resp. below) threshold, and the band
// between engage and recover thresholds holds the current level. That
// hysteresis keeps a load oscillating around the threshold from flapping
// the service level request-to-request.
//
// Separately, retryBudget bounds how much of the server's capacity the
// resilience ladder's degraded RETRIES may consume: each compute earns a
// fraction of a retry token, each retry spends one, so retries stay a
// bounded tax (DefaultRetryBudgetRatio of traffic) instead of doubling
// work exactly when the server is drowning.

// brownoutLevel is a rung of the degradation ladder. Levels are ordered:
// a higher level includes every restriction of the levels below it.
type brownoutLevel int32

const (
	brownoutNormal   brownoutLevel = iota
	brownoutDegraded               // force top-k degraded computes
	brownoutStale                  // additionally: stop background revalidation
	brownoutShed                   // additionally: 503 uncached lookups
)

func (l brownoutLevel) String() string {
	switch l {
	case brownoutNormal:
		return "normal"
	case brownoutDegraded:
		return "degraded"
	case brownoutStale:
		return "stale"
	case brownoutShed:
		return "shed"
	default:
		return "unknown"
	}
}

// Ladder thresholds. Engage when the queue is three-quarters full or the
// error budget is burning at twice the sustainable rate; recover only once
// the queue is a quarter full AND burn is back inside the allowance. The
// wide dead band plus the dwell is the anti-flap margin.
const (
	DefaultBrownoutEngageQueue  = 0.75
	DefaultBrownoutRecoverQueue = 0.25
	DefaultBrownoutEngageBurn   = 2.0
	DefaultBrownoutRecoverBurn  = 1.0
	// DefaultBrownoutDwell is how long the ladder holds a level before
	// deepening or recovering another step.
	DefaultBrownoutDwell = 3 * time.Second
	// brownoutEvalInterval rate-limits ladder evaluation; the signals move
	// on second granularity, so evaluating per-request would buy nothing.
	brownoutEvalInterval = 250 * time.Millisecond
)

// brownout tracks the ladder state. Safe for concurrent use; nil disables
// (current() reports brownoutNormal).
type brownout struct {
	engageQueue, recoverQueue float64
	engageBurn, recoverBurn   float64
	dwell                     time.Duration

	level    atomic.Int32 // brownoutLevel
	lastEval atomic.Int64 // unix nanos of the last evaluation

	mu    sync.Mutex
	since time.Time // when the current level was entered
	lastQ float64   // last observed signals, for status()
	lastB float64

	gLevel   *obs.Gauge
	cEngage  *obs.Counter
	cRecover *obs.Counter
}

func newBrownout(reg *obs.Registry, now time.Time) *brownout {
	b := &brownout{
		engageQueue:  DefaultBrownoutEngageQueue,
		recoverQueue: DefaultBrownoutRecoverQueue,
		engageBurn:   DefaultBrownoutEngageBurn,
		recoverBurn:  DefaultBrownoutRecoverBurn,
		dwell:        DefaultBrownoutDwell,
		gLevel:       reg.Gauge("serve.brownout_level"),
		cEngage:      reg.Counter("serve.brownout_engaged"),
		cRecover:     reg.Counter("serve.brownout_recovered"),
		since:        now,
	}
	return b
}

// current returns the ladder level without locking — the per-request read.
func (b *brownout) current() brownoutLevel {
	if b == nil {
		return brownoutNormal
	}
	return brownoutLevel(b.level.Load())
}

// due reports whether an evaluation is owed at now, claiming the slot when
// so. The CAS keeps concurrent request tails from piling onto observe.
func (b *brownout) due(now time.Time) bool {
	if b == nil {
		return false
	}
	last := b.lastEval.Load()
	n := now.UnixNano()
	if n-last < int64(brownoutEvalInterval) {
		return false
	}
	return b.lastEval.CompareAndSwap(last, n)
}

// observe feeds one (queue fraction, burn rate) sample to the ladder and
// returns the level after the step. Overload engages the FIRST step
// immediately; each deeper step and every recovery step requires the dwell
// to have elapsed at the current level.
func (b *brownout) observe(queueFrac, burn float64, now time.Time) brownoutLevel {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastQ, b.lastB = queueFrac, burn
	level := brownoutLevel(b.level.Load())
	overloaded := queueFrac >= b.engageQueue || burn >= b.engageBurn
	calm := queueFrac <= b.recoverQueue && burn <= b.recoverBurn
	dwelled := now.Sub(b.since) >= b.dwell
	switch {
	case overloaded && level < brownoutShed && (level == brownoutNormal || dwelled):
		level++
		b.setLocked(level, now)
		b.cEngage.Inc()
	case calm && level > brownoutNormal && dwelled:
		level--
		b.setLocked(level, now)
		b.cRecover.Inc()
	}
	return level
}

// setLocked publishes a level change; callers hold mu.
func (b *brownout) setLocked(level brownoutLevel, now time.Time) {
	b.level.Store(int32(level))
	b.since = now
	b.gLevel.Set(float64(level))
}

// brownoutStatus is the healthz?verbose=1 view of the ladder.
type brownoutStatus struct {
	Enabled      bool    `json:"enabled"`
	State        string  `json:"state"`
	Level        int     `json:"level"`
	QueueFrac    float64 `json:"queue_frac"`
	BurnRate     float64 `json:"burn_rate"`
	SinceSeconds float64 `json:"since_seconds"`
}

func (b *brownout) status(now time.Time) brownoutStatus {
	if b == nil {
		return brownoutStatus{Enabled: false, State: "off"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	level := brownoutLevel(b.level.Load())
	return brownoutStatus{
		Enabled:      true,
		State:        level.String(),
		Level:        int(level),
		QueueFrac:    b.lastQ,
		BurnRate:     b.lastB,
		SinceSeconds: now.Sub(b.since).Seconds(),
	}
}

// DefaultRetryBudgetRatio is the fraction of computes that may be degraded
// retries: each first attempt earns this many retry tokens.
const DefaultRetryBudgetRatio = 0.1

// DefaultRetryBudgetMax caps accumulated retry tokens — the burst of
// back-to-back retries a long quiet stretch can bank.
const DefaultRetryBudgetMax = 10.0

// DefaultRetryBurnMax is the burn rate above which degraded retries are
// skipped outright, budget or not — at that point the error budget is gone
// and retry latency only deepens the hole.
const DefaultRetryBurnMax = 2.0

// retryBudget is a token bucket refilled by a ratio of attempts: onAttempt
// earns ratio tokens (capped at max), take spends one. It starts full so a
// cold server retries normally.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

func newRetryBudget(max, ratio float64) *retryBudget {
	return &retryBudget{tokens: max, max: max, ratio: ratio}
}

// onAttempt credits the budget for one first attempt.
func (rb *retryBudget) onAttempt() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
	rb.mu.Unlock()
}

// take spends one retry token, reporting whether one was available.
func (rb *retryBudget) take() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}
