package serve

import (
	"container/list"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"distinct/internal/obs"
)

// Per-client quotas: a token-bucket rate limit plus a concurrency cap keyed
// by client identity, layered UNDER the global admission semaphore. The
// global semaphore protects the server from aggregate load; quotas protect
// clients from each other — one hot client exhausting the queue would
// otherwise starve every quiet one behind 429s and latency it did nothing
// to earn. A throttled request never reaches admission: the hot client's
// rejections are cheap (no queue slot, no compute) and the quiet client's
// slots stay free.
//
// Identity is the X-Api-Key header when present, else the remote address's
// host (ports churn per connection and would shatter one client into
// thousands). Identity is advisory — the serving tier has no auth — but
// that is enough for fairness between well-behaved tenants and makes abuse
// by header-rotation visible in the per-client table at /debug/quotas.

// hdrAPIKey is the pre-canonicalized client-identity header, fetched with a
// direct map index like the other fast-path headers (see serve.go).
const hdrAPIKey = "X-Api-Key"

// quotaClientCap bounds the client table. Clients are evicted LRU, idle
// ones first; a table this size outlives any realistic tenant count, and
// header-rotation abuse cycles through it rather than growing memory.
const quotaClientCap = 4096

// clientBucket is one client's token bucket plus live counters.
type clientBucket struct {
	id     string
	tokens float64 // current tokens; one request costs one token
	last   time.Time
	// inflight is this client's live request count against the concurrency
	// cap; the stats fields feed /debug/quotas.
	inflight      int
	requests      int64
	throttledRate int64
	throttledConc int64
	elem          *list.Element
	// release decrements inflight; bound once at bucket creation so the
	// admit fast path hands out a closure without allocating one per request.
	release func()
}

// quotaSet is the per-client limiter. Safe for concurrent use; nil disables
// (acquire always admits).
type quotaSet struct {
	rps   float64 // steady-state tokens per second per client
	burst float64 // bucket capacity
	conc  int     // max in-flight requests per client (0 = unlimited)

	cThrottled *obs.Counter
	gClients   *obs.Gauge

	mu sync.Mutex
	m  map[string]*clientBucket
	ll *list.List // front = most recently used; values are *clientBucket
}

func newQuotaSet(rps float64, burst, conc int, reg *obs.Registry) *quotaSet {
	b := float64(burst)
	if b <= 0 {
		b = 2 * rps
		if b < 8 {
			b = 8
		}
	}
	return &quotaSet{
		rps:        rps,
		burst:      b,
		conc:       conc,
		cThrottled: reg.Counter("serve.quota_throttled"),
		gClients:   reg.Gauge("serve.quota_clients"),
		m:          make(map[string]*clientBucket),
		ll:         list.New(),
	}
}

// clientID extracts the quota identity for a request: the X-Api-Key header
// when set, else the remote host. Works for instrumented and bare paths
// alike, so it must stay allocation-light.
func clientID(r *http.Request) string {
	if vs := r.Header[hdrAPIKey]; len(vs) > 0 && vs[0] != "" {
		return vs[0]
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// acquire charges one request to client id at time now. On admission it
// returns a release func (decrements the in-flight count; call exactly
// once) and ok = true. On throttle it returns ok = false and how long the
// client should wait before the bucket refills enough for one request
// (zero when throttled on concurrency — retry when an in-flight request
// finishes, which the client cannot predict).
func (q *quotaSet) acquire(id string, now time.Time) (release func(), retryAfter time.Duration, ok bool) {
	if q == nil {
		return releaseNop, 0, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[id]
	if b == nil {
		b = &clientBucket{id: id, tokens: q.burst, last: now}
		b.release = func() {
			q.mu.Lock()
			b.inflight--
			q.mu.Unlock()
		}
		b.elem = q.ll.PushFront(b)
		q.m[id] = b
		q.evictIdleLocked()
		q.gClients.Set(float64(q.ll.Len()))
	} else {
		q.ll.MoveToFront(b.elem)
		if el := now.Sub(b.last).Seconds(); el > 0 {
			b.tokens += el * q.rps
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
			b.last = now
		}
	}
	b.requests++
	if b.tokens < 1 {
		b.throttledRate++
		q.cThrottled.Inc()
		wait := time.Duration((1 - b.tokens) / q.rps * float64(time.Second))
		return nil, wait, false
	}
	if q.conc > 0 && b.inflight >= q.conc {
		b.throttledConc++
		q.cThrottled.Inc()
		return nil, 0, false
	}
	b.tokens--
	b.inflight++
	return b.release, 0, true
}

// releaseNop is the admit result of a nil quotaSet.
func releaseNop() {}

// evictIdleLocked trims the client table to quotaClientCap, oldest first,
// skipping clients with requests in flight (their release closure still
// points at the bucket). Callers hold mu.
func (q *quotaSet) evictIdleLocked() {
	for e := q.ll.Back(); e != nil && q.ll.Len() > quotaClientCap; {
		prev := e.Prev()
		b := e.Value.(*clientBucket)
		if b.inflight == 0 {
			q.ll.Remove(e)
			delete(q.m, b.id)
		}
		e = prev
	}
}

// quotaClientStatus is one row of the /debug/quotas table.
type quotaClientStatus struct {
	Client        string  `json:"client"`
	Tokens        float64 `json:"tokens"`
	Inflight      int     `json:"inflight"`
	Requests      int64   `json:"requests"`
	ThrottledRate int64   `json:"throttled_rate"`
	ThrottledConc int64   `json:"throttled_concurrency"`
}

// quotaStatus is the /debug/quotas body.
type quotaStatus struct {
	Enabled     bool                `json:"enabled"`
	RPS         float64             `json:"rps,omitempty"`
	Burst       float64             `json:"burst,omitempty"`
	Concurrency int                 `json:"concurrency,omitempty"`
	Clients     []quotaClientStatus `json:"clients,omitempty"`
}

// status snapshots every tracked client (tokens refilled to now so the
// numbers read true), sorted by client id for a stable view.
func (q *quotaSet) status(now time.Time) quotaStatus {
	if q == nil {
		return quotaStatus{Enabled: false}
	}
	q.mu.Lock()
	st := quotaStatus{Enabled: true, RPS: q.rps, Burst: q.burst, Concurrency: q.conc}
	for e := q.ll.Front(); e != nil; e = e.Next() {
		b := e.Value.(*clientBucket)
		tok := b.tokens
		if el := now.Sub(b.last).Seconds(); el > 0 {
			tok += el * q.rps
			if tok > q.burst {
				tok = q.burst
			}
		}
		st.Clients = append(st.Clients, quotaClientStatus{
			Client:        b.id,
			Tokens:        tok,
			Inflight:      b.inflight,
			Requests:      b.requests,
			ThrottledRate: b.throttledRate,
			ThrottledConc: b.throttledConc,
		})
	}
	q.mu.Unlock()
	sort.Slice(st.Clients, func(i, j int) bool { return st.Clients[i].Client < st.Clients[j].Client })
	return st
}
