package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"distinct/internal/core"
	flightrec "distinct/internal/obs/flight"
)

// nopResponseWriter is a ResponseWriter whose methods allocate nothing, so
// allocation measurements see only the middleware's own cost.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// TestDisabledMiddlewareZeroAlloc pins the nil-registry/nil-recorder/
// nil-logger contract: the api() wrapper on a fully disabled server adds
// zero allocations around the handler.
func TestDisabledMiddlewareZeroAlloc(t *testing.T) {
	s, err := New(Options{
		Backend:       newStubBackend("Wei Wang"),
		FlightRecords: -1, // recorder off; Obs and AccessLog already nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.instrumented {
		t.Fatal("server with no obs, recorder, or logger is instrumented")
	}
	handler := s.api(s.rtName, func(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
		if ri != nil {
			t.Error("disabled path handed a non-nil reqInfo")
		}
	})
	w := nopResponseWriter{h: make(http.Header)}
	r := httptest.NewRequest("GET", "/v1/name/x", nil)
	allocs := testing.AllocsPerRun(200, func() {
		handler(w, r)
	})
	if allocs != 0 {
		t.Errorf("disabled middleware allocates %.1f per request, want 0", allocs)
	}
}

func BenchmarkMiddlewareDisabled(b *testing.B) {
	s, err := New(Options{Backend: newStubBackend("Wei Wang"), FlightRecords: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	handler := s.api(s.rtName, func(http.ResponseWriter, *http.Request, *reqInfo) {})
	w := nopResponseWriter{h: make(http.Header)}
	r := httptest.NewRequest("GET", "/v1/name/x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		handler(w, r)
	}
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)

	// No client id: one is minted — 16 hex chars.
	w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	id := w.Header().Get("X-Request-ID")
	if len(id) != 16 || !isHex(id) {
		t.Errorf("generated id %q, want 16 hex chars", id)
	}

	// A valid client id is echoed verbatim.
	r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
	r.Header.Set("X-Request-ID", "client-id-42")
	w2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(w2, r)
	if got := w2.Header().Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("client id not echoed: %q", got)
	}

	// A hostile id (control chars) is replaced, not echoed.
	r3 := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
	r3.Header.Set("X-Request-ID", "bad\x01id")
	w3 := httptest.NewRecorder()
	s.Handler().ServeHTTP(w3, r3)
	if got := w3.Header().Get("X-Request-ID"); strings.Contains(got, "bad") {
		t.Errorf("hostile id echoed: %q", got)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"

	r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
	r.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	tp := w.Header().Get("traceparent")
	tid, flags, ok := parseTraceparent(tp)
	if !ok || tid != traceID || flags != "01" {
		t.Errorf("response traceparent %q: parsed (%q,%q,%v)", tp, tid, flags, ok)
	}
	// Our span id must differ from the client's parent id.
	if strings.Contains(tp, "00f067aa0ba902b7") {
		t.Errorf("response reused the client's span id: %q", tp)
	}

	// A malformed traceparent is ignored: no response traceparent.
	r2 := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
	r2.Header.Set("traceparent", "00-zzzz-bad-xx")
	w2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(w2, r2)
	if got := w2.Header().Get("traceparent"); got != "" {
		t.Errorf("malformed traceparent echoed as %q", got)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, ok := parseTraceparent(valid); !ok {
		t.Error("valid header rejected")
	}
	for _, bad := range []string{
		"",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-0111", // wrong lengths
	} {
		if _, _, ok := parseTraceparent(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestPerRouteREDMetrics(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	doJSON(t, s.Handler(), "POST", "/v1/batch", `{"names":["Wei Wang"]}`)

	if got := s.reg.Counter("serve.route.name.requests").Value(); got != 2 {
		t.Errorf("route.name.requests = %d", got)
	}
	if got := s.reg.Counter("serve.route.batch.requests").Value(); got != 1 {
		t.Errorf("route.batch.requests = %d", got)
	}
	// A 404 is not a server error.
	if got := s.reg.Counter("serve.route.name.errors").Value(); got != 0 {
		t.Errorf("route.name.errors = %d after a 404", got)
	}
	if got := s.reg.Histogram("serve.route.name.seconds", nil).Count(); got != 2 {
		t.Errorf("route.name.seconds count = %d", got)
	}
	// SLO: three requests, none a server failure.
	if good, total := s.reg.Counter("serve.slo_good").Value(), s.reg.Counter("serve.slo_total").Value(); good != 3 || total != 3 {
		t.Errorf("slo good/total = %d/%d", good, total)
	}
}

func TestFlightRecorderIntegration(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
	r.Header.Set("X-Request-ID", "itest-1")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")

	snap := s.flightRec.Snapshot()
	if snap.Total != 2 {
		t.Fatalf("flight total = %d", snap.Total)
	}
	// Newest first: the 404 probe, then the lookup.
	if snap.Recent[0].Status != 404 || snap.Recent[0].Name != "Nobody" {
		t.Errorf("recent[0] = %+v", snap.Recent[0])
	}
	if snap.Recent[1].ID != "itest-1" || snap.Recent[1].Status != 200 || snap.Recent[1].Route != "name" {
		t.Errorf("recent[1] = %+v", snap.Recent[1])
	}
	if snap.Recent[1].Name != "Wei Wang" {
		t.Errorf("recent[1].Name = %q", snap.Recent[1].Name)
	}

	// /debug/requests serves the same snapshot.
	w2, _ := doJSON(t, s.Handler(), "GET", "/debug/requests", "")
	var served flightrec.Snapshot
	if err := json.Unmarshal(w2.Body.Bytes(), &served); err != nil {
		t.Fatal(err)
	}
	if served.Total != 2 {
		t.Errorf("served snapshot total = %d", served.Total)
	}
}

func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) {
		o.AccessLog = slog.New(slog.NewJSONHandler(&buf, nil))
		o.AccessLogSample = 1000 // effectively: clean 200s never log
	})
	for i := 0; i < 10; i++ {
		doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	}
	if lines := countLines(&buf); lines != 0 {
		t.Errorf("clean fast 200s logged %d lines at sample=1000", lines)
	}
	// Errors always log, whatever the sample.
	doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	if lines := countLines(&buf); lines != 1 {
		t.Fatalf("404 logged %d lines, want 1", lines)
	}
	var entry map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &entry); err != nil {
		t.Fatal(err)
	}
	if entry["route"] != "name" || entry["status"] != float64(404) || entry["name"] != "Nobody" {
		t.Errorf("access entry = %v", entry)
	}
	if entry["id"] == "" {
		t.Error("access entry without request id")
	}
}

func TestAccessLogSampleOne(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) {
		o.AccessLog = slog.New(slog.NewTextHandler(&buf, nil))
		o.AccessLogSample = 1
	})
	for i := 0; i < 5; i++ {
		doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	}
	if lines := countLines(&buf); lines != 5 {
		t.Errorf("sample=1 logged %d of 5", lines)
	}
}

func countLines(buf *bytes.Buffer) int {
	n := 0
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		n++
	}
	return n
}

func TestHealthzVerboseSLO(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")

	// The plain form stays byte-stable.
	w, _ := doJSON(t, s.Handler(), "GET", "/healthz", "")
	if w.Body.String() != "ok\n" {
		t.Errorf("plain healthz body %q", w.Body.String())
	}

	w2, body := doJSON(t, s.Handler(), "GET", "/healthz?verbose=1", "")
	if w2.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("verbose healthz: %d %v", w2.Code, body)
	}
	slo := body["slo"].(map[string]any)
	if slo["total"] != float64(2) || slo["good"] != float64(2) {
		t.Errorf("slo window = %v", slo)
	}
	if slo["availability"] != float64(1) || slo["target"] != DefaultSLOTarget {
		t.Errorf("slo = %v", slo)
	}
}

func TestTailSampledPanicWritesTraceArtifact(t *testing.T) {
	dir := t.TempDir()
	b := newStubBackend("Wei Wang")
	b.onCompute = func(ctx context.Context, name string) ([][]string, *core.Incident, error) {
		panic("chaos")
	}
	s := newTestServer(t, b, func(o *Options) { o.TailDir = dir })

	w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicked request status %d", w.Code)
	}
	snap := s.flightRec.Snapshot()
	if len(snap.Errors) != 1 {
		t.Fatalf("errors lane = %+v", snap.Errors)
	}
	rec := snap.Errors[0]
	if rec.Incident == "" {
		t.Error("errored record has no incident")
	}
	if rec.TraceFile == "" {
		t.Fatal("errored record has no trace artifact")
	}
	if _, err := os.Stat(rec.TraceFile); err != nil {
		t.Fatalf("trace artifact missing: %v", err)
	}
}

func TestSlowRequestEntersSlowLaneWithTrace(t *testing.T) {
	dir := t.TempDir()
	b := newStubBackend("Wei Wang")
	b.onCompute = func(ctx context.Context, name string) ([][]string, *core.Incident, error) {
		time.Sleep(30 * time.Millisecond)
		return [][]string{{"k1"}}, nil, nil
	}
	s := newTestServer(t, b, func(o *Options) {
		o.TailDir = dir
		o.TailSlow = 10 * time.Millisecond
		o.CacheBytes = -1
	})
	r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
	r.Header.Set("X-Request-ID", "slow-1")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)

	snap := s.flightRec.Snapshot()
	if len(snap.Slowest) != 1 || snap.Slowest[0].ID != "slow-1" {
		t.Fatalf("slow lane = %+v", snap.Slowest)
	}
	tf := snap.Slowest[0].TraceFile
	if tf == "" {
		t.Fatal("slow record has no trace artifact")
	}
	if _, err := os.Stat(tf); err != nil {
		t.Fatalf("trace artifact missing: %v", err)
	}
}

func TestCachedResultCarriesNoTrace(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) { o.TailDir = dir })
	res1, _, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if res1.trace == nil {
		t.Fatal("computed result under TailDir has no trace")
	}
	res2, meta, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if !meta.cached {
		t.Fatal("second lookup not cached")
	}
	if res2.trace != nil {
		t.Error("cached result still carries the first request's trace")
	}
}
