package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestQuotaSetUnit drills the token bucket and concurrency cap directly.
func TestQuotaSetUnit(t *testing.T) {
	q := newQuotaSet(10, 2, 1, nil) // 10 rps, burst 2, 1 in flight
	t0 := time.Unix(1000, 0)

	rel1, _, ok := q.acquire("a", t0)
	if !ok {
		t.Fatal("first acquire throttled")
	}
	// Concurrency cap: a second in-flight request for the same client is
	// refused with no refill hint.
	if _, wait, ok := q.acquire("a", t0); ok || wait != 0 {
		t.Fatalf("concurrency cap not enforced: ok=%v wait=%v", ok, wait)
	}
	rel1()
	// Burst spent (2 tokens, 2 charges): the third charge is rate-throttled
	// with a refill hint of ~1/10s.
	if rel, _, ok := q.acquire("a", t0); !ok {
		t.Fatal("second token refused")
	} else {
		rel()
	}
	_, wait, ok := q.acquire("a", t0)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("refill hint = %v, want ~100ms", wait)
	}
	// Refill: 100ms at 10 rps returns one token.
	if rel, _, ok := q.acquire("a", t0.Add(110*time.Millisecond)); !ok {
		t.Fatal("refilled bucket refused")
	} else {
		rel()
	}
	// Clients are independent.
	if rel, _, ok := q.acquire("b", t0); !ok {
		t.Fatal("fresh client throttled by another client's spend")
	} else {
		rel()
	}

	st := q.status(t0.Add(time.Second))
	if !st.Enabled || len(st.Clients) != 2 {
		t.Fatalf("status: %+v", st)
	}
	if st.Clients[0].Client != "a" || st.Clients[1].Client != "b" {
		t.Fatalf("status not sorted: %+v", st.Clients)
	}
	if st.Clients[0].ThrottledRate != 1 || st.Clients[0].ThrottledConc != 1 {
		t.Fatalf("client a throttle counts: %+v", st.Clients[0])
	}

	// Nil set admits everything.
	var nq *quotaSet
	if _, _, ok := nq.acquire("x", t0); !ok {
		t.Fatal("nil quotaSet throttled")
	}
	if nq.status(t0).Enabled {
		t.Fatal("nil quotaSet reports enabled")
	}
}

// TestQuotaThrottles429 covers the HTTP surface: past the burst a client
// gets 429 with Retry-After, the quota counter moves, and /debug/quotas
// shows the client.
func TestQuotaThrottles429(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) {
		o.QuotaRPS = 0.001 // effectively no refill within the test
		o.QuotaBurst = 2
	})
	get := func(key string) int {
		r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
		if key != "" {
			r.Header.Set("X-Api-Key", key)
		}
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code == http.StatusTooManyRequests && w.Header().Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		return w.Code
	}
	codes := []int{get("hot"), get("hot"), get("hot"), get("hot")}
	want := []int{200, 200, 429, 429}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("request %d status %d, want %d (all: %v)", i, codes[i], want[i], codes)
		}
	}
	// Another identity is unaffected.
	if got := get("cool"); got != http.StatusOK {
		t.Fatalf("second client throttled by first: %d", got)
	}
	if got := s.reg.Counter("serve.quota_throttled").Value(); got != 2 {
		t.Errorf("quota_throttled = %d, want 2", got)
	}

	w, resp := doJSON(t, s.Handler(), "GET", "/debug/quotas", "")
	if w.Code != http.StatusOK || resp["enabled"] != true {
		t.Fatalf("/debug/quotas: %d %v", w.Code, resp)
	}
	clients := resp["clients"].([]any)
	if len(clients) != 2 {
		t.Fatalf("clients = %d, want 2 (hot, cool)", len(clients))
	}
}

// TestQuotaDisabledEndpoint: /debug/quotas stays mounted (and honest) when
// quotas are off.
func TestQuotaDisabledEndpoint(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	w, resp := doJSON(t, s.Handler(), "GET", "/debug/quotas", "")
	if w.Code != http.StatusOK || resp["enabled"] != false {
		t.Fatalf("/debug/quotas disabled: %d %v", w.Code, resp)
	}
}

// TestQuotaFairness is the isolation property the tentpole is for: a hot
// client slamming the server cannot push a quiet client's error rate above
// zero. The hot client burns through its bucket and eats 429s; the quiet
// client's paced requests all succeed because throttling happens before
// the shared admission queue.
func TestQuotaFairness(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) {
		o.QuotaRPS = 5
		o.QuotaBurst = 10
		o.QuotaConcurrency = 2
		o.Concurrency = 2
		o.MaxQueue = 4
	})

	shoot := func(key string) int {
		r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
		r.Header.Set("X-Api-Key", key)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		return w.Code
	}

	var wg sync.WaitGroup
	hotCodes := make([]int, 200)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range hotCodes {
			hotCodes[i] = shoot("hot")
		}
	}()

	// The quiet client paces itself inside its own quota.
	quietBad := 0
	for i := 0; i < 8; i++ {
		if c := shoot("quiet"); c != http.StatusOK {
			quietBad++
			t.Errorf("quiet request %d got %d", i, c)
		}
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()

	if quietBad != 0 {
		t.Fatalf("quiet client saw %d non-200s", quietBad)
	}
	hot429 := 0
	for _, c := range hotCodes {
		switch c {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			hot429++
		default:
			t.Fatalf("hot client got unexpected status %d", c)
		}
	}
	if hot429 == 0 {
		t.Fatal("hot client was never throttled")
	}
}

// TestClientIDExtraction pins the keying: header first, else remote host
// without the per-connection port.
func TestClientIDExtraction(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/names", nil)
	r.RemoteAddr = "192.0.2.7:4123"
	if got := clientID(r); got != "192.0.2.7" {
		t.Errorf("remote-addr identity = %q", got)
	}
	r.Header.Set("X-Api-Key", "tenant-1")
	if got := clientID(r); got != "tenant-1" {
		t.Errorf("header identity = %q", got)
	}
}
