package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"distinct/internal/core"
	"distinct/internal/obs"
)

// stubBackend is a deterministic Backend for serving-layer tests: canned
// groups, an invocation counter, an optional start signal and block channel
// so tests can stand inside a computation, and a mutable version so
// Insert-racing scenarios can be scripted without a real database.
type stubBackend struct {
	version atomic.Int64
	calls   atomic.Int64
	// refs maps known names to their reference count; unknown names get 0.
	refs map[string]int
	// started, when non-nil, receives the name at each compute start.
	started chan string
	// block, when non-nil, is waited on (against ctx) before returning.
	block chan struct{}
	// onCompute, when non-nil, overrides the default clean result.
	onCompute func(ctx context.Context, name string) ([][]string, *core.Incident, error)
}

func newStubBackend(names ...string) *stubBackend {
	refs := make(map[string]int, len(names))
	for _, n := range names {
		refs[n] = 4
	}
	return &stubBackend{refs: refs}
}

func (b *stubBackend) Disambiguate(ctx context.Context, name string, opts core.BatchOptions) ([][]string, *core.Incident, error) {
	b.calls.Add(1)
	if b.started != nil {
		b.started <- name
	}
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	if b.onCompute != nil {
		return b.onCompute(ctx, name)
	}
	if opts.ForceDegraded {
		// Mirror the real ladder's brownout shape: one coarse group plus a
		// degraded incident, so server-level brownout tests can assert on the
		// envelope without a trained engine.
		return [][]string{{name + "-a1", name + "-a2", name + "-b1"}},
			&core.Incident{Name: name, Stage: "brownout", Reason: core.IncidentDegraded}, nil
	}
	return [][]string{{name + "-a1", name + "-a2"}, {name + "-b1"}}, nil, nil
}

func (b *stubBackend) NumRefs(name string) int { return b.refs[name] }

func (b *stubBackend) Names(minRefs int) []string {
	var out []string
	for n, c := range b.refs {
		if c >= minRefs {
			out = append(out, n)
		}
	}
	return out
}

func (b *stubBackend) Version() int64 { return b.version.Load() }

// Bump implements Mutator for /debug/bump tests.
func (b *stubBackend) Bump() int64 { return b.version.Add(1) }

// newTestServer builds a server over backend with metrics on and small,
// test-friendly bounds. Extra options are layered via mod.
func newTestServer(t *testing.T, backend Backend, mod func(*Options)) *Server {
	t.Helper()
	opts := Options{
		Backend:     backend,
		Obs:         obs.NewRegistry(),
		Concurrency: 4,
		NameTimeout: 5 * time.Second,
		// Staleness off by default: most tests pin the strict version-keyed
		// semantics (a bump invalidates immediately). Stale-while-revalidate
		// tests opt back in via mod.
		MaxStale: -1,
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitUntil polls cond until it holds or the deadline passes; the polling
// makes concurrency tests deterministic without sleeping for fixed amounts.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitersFor reports the current waiter count of key's flight (0 if none).
func (g *flightGroup) waitersFor(key flightKey) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f.waiters
	}
	return 0
}
