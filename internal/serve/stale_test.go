package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestStaleServeAndRevalidate is the stale-while-revalidate happy path: a
// version bump does not make the next lookup pay a recompute — it serves
// the previous-version entry marked stale while a background flight brings
// the cache up to date, after which lookups are fresh again.
func TestStaleServeAndRevalidate(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) { o.MaxStale = time.Minute })

	// Warm the cache at version 0.
	w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("warm status %d", w.Code)
	}
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("warm computes = %d", got)
	}

	b.Bump()
	w, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-bump status %d", w.Code)
	}
	if resp["stale"] != true || resp["cached"] != true {
		t.Fatalf("post-bump envelope not marked stale+cached: %v", resp)
	}
	// The stale answer is version 0's result; the envelope says so.
	if v := resp["version"].(float64); int64(v) != 0 {
		t.Errorf("stale result version = %v, want 0", v)
	}
	if got := s.reg.Counter("serve.stale_hits").Value(); got != 1 {
		t.Errorf("stale_hits = %d, want 1", got)
	}
	if got := s.reg.Counter("serve.revalidations").Value(); got != 1 {
		t.Errorf("revalidations = %d, want 1", got)
	}

	// The background flight recomputes at version 1; once it lands, lookups
	// are fresh — no stale marker, no new compute.
	waitUntil(t, "revalidation to land", func() bool { return b.calls.Load() == 2 })
	waitUntil(t, "flight to unregister", func() bool { return s.flights.inflight() == 0 })
	w, resp = doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-revalidate status %d", w.Code)
	}
	if resp["stale"] == true {
		t.Fatal("still stale after revalidation landed")
	}
	if resp["cached"] != true {
		t.Fatalf("post-revalidate lookup not cached: %v", resp)
	}
	if v := resp["version"].(float64); int64(v) != 1 {
		t.Errorf("post-revalidate version = %v, want 1", v)
	}
	if got := b.calls.Load(); got != 2 {
		t.Errorf("computes = %d, want 2 (warm + revalidate)", got)
	}
}

// TestStaleRevalidateExactlyOnce is the stampede test: 64 goroutines hit a
// stale entry concurrently right after a version bump; every one must be
// answered (stale or fresh), and the new version must be recomputed exactly
// once.
func TestStaleRevalidateExactlyOnce(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) { o.MaxStale = time.Minute })

	if w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); w.Code != http.StatusOK {
		t.Fatalf("warm status %d", w.Code)
	}
	b.Bump()

	const goroutines = 64
	var wg sync.WaitGroup
	codes := make([]int, goroutines)
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			r := httptest.NewRequest("GET", "/v1/name/Wei%20Wang", nil)
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, r)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d status %d", i, c)
		}
	}
	waitUntil(t, "revalidation to land", func() bool { return s.flights.inflight() == 0 })
	// Exactly one compute per (name, version): the warm-up plus one
	// revalidation at the new version, no matter how many stale hits raced.
	if got := b.calls.Load(); got != 2 {
		t.Fatalf("computes = %d, want 2 (one per version)", got)
	}
	if got := s.reg.Counter("serve.revalidations").Value(); got != 1 {
		t.Errorf("revalidations = %d, want 1", got)
	}
}

// TestStaleWindowExpires pins the bound: past MaxStale the stale entry is
// purged and the lookup recomputes synchronously (no indefinitely-stale
// serving).
func TestStaleWindowExpires(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) { o.MaxStale = time.Minute })
	if w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); w.Code != http.StatusOK {
		t.Fatalf("warm status %d", w.Code)
	}
	b.Bump()

	// First post-bump probe marks the entry stale (the window starts at the
	// first stale observation) and would serve it; swallow the revalidation
	// it launches so the compute count below stays interpretable.
	if _, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); resp["stale"] != true {
		t.Fatalf("first post-bump probe not stale: %v", resp)
	}
	waitUntil(t, "revalidation to land", func() bool { return s.flights.inflight() == 0 })
	calls := b.calls.Load()

	// Outdate the fresh entry again and age it past the window directly
	// (probing to age it would launch a revalidation and race the final
	// assertion): the probe must treat the entry as gone, not stale.
	b.Bump()
	s.cache.mu.Lock()
	s.cache.m["Wei Wang"].staleSince = time.Now().Add(-2 * time.Minute)
	s.cache.mu.Unlock()
	w, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-expiry status %d", w.Code)
	}
	if resp["stale"] == true || resp["cached"] == true {
		t.Fatalf("expired entry served stale: %v", resp)
	}
	if got := b.calls.Load(); got <= calls {
		t.Errorf("computes = %d, want > %d (expiry forces recompute)", got, calls)
	}
}

// TestStaleNegativeServes404 covers the negative-cache half: a cached 404
// outlives a version bump as a stale 404 (body marked stale) while the
// background flight re-checks the name — and when the name now exists, the
// re-check caches the real result.
func TestStaleNegativeServes404(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) { o.MaxStale = time.Minute })

	if w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", ""); w.Code != http.StatusNotFound {
		t.Fatalf("seed status %d", w.Code)
	}
	// The name appears with the next version (an insert landed).
	b.refs["Nobody"] = 2
	b.Bump()

	w, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("stale-negative status %d", w.Code)
	}
	if resp["stale"] != true {
		t.Fatalf("stale negative not marked: %v", resp)
	}
	if got := s.reg.Counter("serve.stale_neg_hits").Value(); got != 1 {
		t.Errorf("stale_neg_hits = %d, want 1", got)
	}
	// Revalidation finds the name and caches the result; the next lookup is
	// a fresh 200.
	waitUntil(t, "revalidation to land", func() bool { return s.flights.inflight() == 0 })
	waitUntil(t, "fresh entry to appear", func() bool { return s.cache.Len() == 1 })
	w, resp = doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	if w.Code != http.StatusOK || resp["stale"] == true {
		t.Fatalf("post-revalidate lookup: status %d, body %v", w.Code, resp)
	}
}

// TestRevalidationVersionSkew is the three-versions-in-flight regression:
// a revalidation keyed at V2 must not publish its result as fresh when a
// second bump (V3) lands mid-compute — the computation may have observed
// V3's contents and is a snapshot of no version. The stale V1 entry keeps
// serving until a revalidation keyed at V3 lands truth.
func TestRevalidationVersionSkew(t *testing.T) {
	b := newStubBackend("Wei Wang")
	b.started = make(chan string, 4)
	b.block = make(chan struct{})
	s := newTestServer(t, b, func(o *Options) { o.MaxStale = time.Minute })

	// Warm at V1 (bump first so versions read 1, 2, 3).
	b.Bump()
	close(b.block) // warm compute passes straight through
	if w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); w.Code != http.StatusOK {
		t.Fatal("warm failed")
	}
	<-b.started
	b.block = make(chan struct{}) // re-arm: the next compute blocks

	// Bump to V2; the stale hit launches a revalidation that now blocks
	// inside the backend.
	b.Bump()
	if _, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); resp["stale"] != true {
		t.Fatalf("V2 probe not stale: %v", resp)
	}
	<-b.started // the V2 revalidation is inside Disambiguate

	// Second bump lands mid-compute: three versions now in play — the V1
	// entry serving stale, the V2 flight computing, V3 live.
	b.Bump()
	close(b.block) // let the V2 flight finish
	waitUntil(t, "V2 flight to finish", func() bool { return s.flights.inflight() == 0 })

	// The V2 result must NOT have been published: the cache still holds the
	// V1 entry, so a V3 probe serves it stale (and launches a V3
	// revalidation) instead of claiming an intermediate-version result as
	// V3's truth.
	_, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if resp["stale"] != true {
		t.Fatalf("intermediate-version result published as fresh: %v", resp)
	}
	if v := resp["version"].(float64); int64(v) != 1 {
		t.Errorf("stale serve carries version %v, want 1 (the last published truth)", v)
	}
	<-b.started // the V3 revalidation is in flight
	waitUntil(t, "V3 revalidation to land", func() bool { return s.flights.inflight() == 0 })
	_, resp = doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if resp["stale"] == true {
		t.Fatal("still stale after V3 revalidation")
	}
	if v := resp["version"].(float64); int64(v) != 3 {
		t.Errorf("final version = %v, want 3", v)
	}
}

// TestStaleDisabledKeepsStrictSemantics pins the opt-out: with MaxStale < 0
// (the newTestServer default) a version bump invalidates immediately — the
// pre-SWR behavior other tests rely on.
func TestStaleDisabledKeepsStrictSemantics(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, nil)
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	b.Bump()
	_, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if resp["stale"] == true || resp["cached"] == true {
		t.Fatalf("MaxStale<0 still served stale: %v", resp)
	}
	if got := b.calls.Load(); got != 2 {
		t.Errorf("computes = %d, want 2", got)
	}
	if got := s.reg.Counter("serve.revalidations").Value(); got != 0 {
		t.Errorf("revalidations = %d, want 0", got)
	}
}

// TestDebugBump covers the drill knob: POST /debug/bump is mounted only
// with AllowBump and a Mutator backend, and bumps the version it reports.
func TestDebugBump(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) { o.AllowBump = true })
	w, resp := doJSON(t, s.Handler(), "POST", "/debug/bump", "")
	if w.Code != http.StatusOK {
		t.Fatalf("bump status %d", w.Code)
	}
	if v := resp["version"].(float64); int64(v) != 1 || b.Version() != 1 {
		t.Fatalf("bump reported %v, backend at %d", v, b.Version())
	}

	// Without AllowBump the route does not exist (the /debug/ catch-all
	// serves the metrics registry, a GET-ish handler; the POST must not
	// mutate).
	s2 := newTestServer(t, newStubBackend("X"), nil)
	doJSON(t, s2.Handler(), "POST", "/debug/bump", "")
	if got := s2.backend.Version(); got != 0 {
		t.Fatalf("bump without AllowBump mutated version to %d", got)
	}
}
