// Race/concurrency suite for the coalescing layer, in the deterministic
// rendezvous style of cockroach's rangefeed task tests: goroutines are
// walked to known states via start signals, waiter-count polling, and block
// channels — never bare sleeps — so every assertion holds under -race and
// arbitrary scheduling.
package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"distinct/internal/fault"
)

// TestCoalesceSingleComputeForConcurrentRequests is the headline guarantee:
// N=64 goroutines look up the same name concurrently, exactly one engine
// invocation runs, and every waiter receives the identical result pointer.
func TestCoalesceSingleComputeForConcurrentRequests(t *testing.T) {
	const n = 64
	b := newStubBackend("Wei Wang")
	b.block = make(chan struct{})
	f := fault.NewRegistry(0)
	s := newTestServer(t, b, func(o *Options) { o.Fault = f })
	key := flightKey{name: "Wei Wang", version: 0}

	var wg sync.WaitGroup
	results := make([]*NameResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.lookup(context.Background(), "Wei Wang")
			results[i], errs[i] = res, err
		}(i)
	}
	// Every goroutine must be parked on the one flight before the compute
	// is allowed to finish — otherwise a fast compute could complete before
	// late goroutines even probe, and they would hit the cache instead of
	// coalescing (a different, weaker scenario).
	waitUntil(t, "all 64 waiters joined", func() bool { return s.flights.waitersFor(key) == n })
	close(b.block)
	wg.Wait()

	if got := b.calls.Load(); got != 1 {
		t.Fatalf("backend invoked %d times for 64 concurrent identical requests, want exactly 1", got)
	}
	if got := f.Hits("serve.compute"); got != 1 {
		t.Fatalf("serve.compute fault point hit %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d failed: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different result pointer than waiter 0", i)
		}
	}
	if got := s.reg.Counter("serve.coalesced").Value(); got != n-1 {
		t.Errorf("serve.coalesced = %d, want %d (everyone but the flight creator)", got, n-1)
	}
	if got := s.reg.Counter("serve.computes").Value(); got != 1 {
		t.Errorf("serve.computes = %d, want 1", got)
	}
}

// TestCoalesceCancelledLeaderHandsOff: the goroutine that created the
// flight cancels its request mid-compute; the computation keeps running for
// the remaining waiters, who all receive the result. A singleflight that
// ties the compute to the leader's context would fail every waiter here.
func TestCoalesceCancelledLeaderHandsOff(t *testing.T) {
	b := newStubBackend("Wei Wang")
	b.block = make(chan struct{})
	b.started = make(chan string, 1)
	s := newTestServer(t, b, nil)
	key := flightKey{name: "Wei Wang", version: 0}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := s.lookup(leaderCtx, "Wei Wang")
		leaderErr <- err
	}()
	<-b.started // the leader's flight is computing
	waitUntil(t, "leader parked", func() bool { return s.flights.waitersFor(key) == 1 })

	const followers = 5
	var wg sync.WaitGroup
	results := make([]*NameResult, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.lookup(context.Background(), "Wei Wang")
			results[i], errs[i] = res, err
		}(i)
	}
	waitUntil(t, "followers joined", func() bool { return s.flights.waitersFor(key) == followers+1 })

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	waitUntil(t, "leader left the flight", func() bool { return s.flights.waitersFor(key) == followers })

	close(b.block)
	wg.Wait()
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d poisoned by leader cancel: %v", i, errs[i])
		}
		if results[i] == nil || results[i] != results[0] {
			t.Fatalf("follower %d result pointer differs", i)
		}
	}
	if got := b.calls.Load(); got != 1 {
		t.Fatalf("backend invoked %d times, want 1 (handoff, not recompute)", got)
	}
}

// TestCoalesceLastWaiterCancelsCompute: when every requester is gone, the
// flight's context is cancelled — the engine stops burning CPU on an answer
// nobody wants — and the next request starts a fresh computation.
func TestCoalesceLastWaiterCancelsCompute(t *testing.T) {
	b := newStubBackend("Wei Wang")
	b.block = make(chan struct{})
	b.started = make(chan string, 2)
	s := newTestServer(t, b, nil)
	key := flightKey{name: "Wei Wang", version: 0}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.lookup(ctx, "Wei Wang")
		errCh <- err
	}()
	<-b.started
	waitUntil(t, "sole waiter parked", func() bool { return s.flights.waitersFor(key) == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("lookup returned %v, want context.Canceled", err)
	}
	// The abandoned flight's context must be cancelled so the blocked stub
	// unwinds with ctx.Err rather than waiting forever, and the flight
	// table must be empty so the next request recomputes.
	waitUntil(t, "abandoned flight unwound", func() bool { return s.flights.inflight() == 0 })

	close(b.block) // let the fresh computation below run to completion
	res, _, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil || res == nil {
		t.Fatalf("post-abandon lookup: res=%v err=%v", res, err)
	}
	if got := b.calls.Load(); got != 2 {
		t.Fatalf("backend invoked %d times, want 2 (abandoned + fresh)", got)
	}
	_ = <-b.started
}

// TestCoalesceKeyIncludesVersion: requests before and after a database
// mutation never share a flight or a cached result — the version is part of
// both keys.
func TestCoalesceKeyIncludesVersion(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, nil)
	r0, _, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	b.version.Add(1) // an Insert happened
	r1, _, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if b.calls.Load() != 2 {
		t.Fatalf("backend invoked %d times across a version bump, want 2", b.calls.Load())
	}
	if r0 == r1 {
		t.Fatal("results across a version bump share a pointer")
	}
	if r0.Version != 0 || r1.Version != 1 {
		t.Fatalf("result versions = %d, %d; want 0, 1", r0.Version, r1.Version)
	}
}

// TestCoalesceSecondWaveHitsCache: after a coalesced flight completes, a
// second wave of the same name is served from the result cache without any
// new computation.
func TestCoalesceSecondWaveHitsCache(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, nil)
	first, _, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		res, meta, err := s.lookup(context.Background(), "Wei Wang")
		if err != nil {
			t.Fatal(err)
		}
		if !meta.cached {
			t.Fatalf("wave-2 lookup %d not served from cache", i)
		}
		if res != first {
			t.Fatalf("wave-2 lookup %d returned a different pointer", i)
		}
	}
	if b.calls.Load() != 1 {
		t.Fatalf("backend invoked %d times, want 1", b.calls.Load())
	}
	if got := s.reg.Counter("serve.cache_hits").Value(); got != 8 {
		t.Errorf("serve.cache_hits = %d, want 8", got)
	}
}
