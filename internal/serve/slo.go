// Server-side SLO tracking: a rolling availability window over the /v1
// routes, surfaced as cumulative good/total counters plus a burn-rate gauge
// (how fast the error budget is being spent relative to the target), and as
// JSON in /healthz?verbose=1. See DESIGN.md §14.

package serve

import (
	"sync"
	"time"

	"distinct/internal/obs"
)

// DefaultSLOTarget is the availability objective when Options.SLOTarget is
// zero: 99% of requests answered without a server-side failure.
const DefaultSLOTarget = 0.99

// sloWindowSeconds is the rolling window the burn rate is computed over.
const sloWindowSeconds = 60

// sloBucket aggregates one second of outcomes.
type sloBucket struct {
	sec   int64 // unix second this bucket covers
	good  uint64
	total uint64
}

// sloTracker keeps a ring of per-second buckets. "Good" means the request
// was answered without a server failure: status < 500. Client-side outcomes
// (4xx, 499 cancellations) spend no error budget — the server did its job.
type sloTracker struct {
	target float64

	good  *obs.Counter // cumulative, for Prometheus rate() queries
	total *obs.Counter
	burn  *obs.Gauge // rolling burn rate, refreshed on observe

	mu      sync.Mutex
	buckets [sloWindowSeconds]sloBucket
}

func newSLOTracker(reg *obs.Registry, target float64) *sloTracker {
	if target <= 0 || target >= 1 {
		target = DefaultSLOTarget
	}
	return &sloTracker{
		target: target,
		good:   reg.Counter("serve.slo_good"),
		total:  reg.Counter("serve.slo_total"),
		burn:   reg.Gauge("serve.slo_burn_rate"),
	}
}

// observe records one finished request. Nil-safe, like every obs hook.
func (t *sloTracker) observe(status int, now time.Time) {
	if t == nil {
		return
	}
	good := status < 500
	t.total.Inc()
	if good {
		t.good.Inc()
	}
	sec := now.Unix()
	t.mu.Lock()
	b := &t.buckets[sec%sloWindowSeconds]
	if b.sec != sec {
		// The slot is stale (a full window has passed since it was last this
		// second-of-minute); recycle it.
		*b = sloBucket{sec: sec}
	}
	b.total++
	if good {
		b.good++
	}
	burn := t.burnLocked(sec)
	t.mu.Unlock()
	t.burn.Set(burn)
}

// burnLocked computes the burn rate over the live window: the observed error
// rate divided by the budgeted error rate (1-target). 1.0 means the budget
// is being spent exactly as fast as it accrues; >1 means it is being burned.
func (t *sloTracker) burnLocked(nowSec int64) float64 {
	var good, total uint64
	for i := range t.buckets {
		if nowSec-t.buckets[i].sec < sloWindowSeconds {
			good += t.buckets[i].good
			total += t.buckets[i].total
		}
	}
	if total == 0 {
		return 0
	}
	errRate := float64(total-good) / float64(total)
	return errRate / (1 - t.target)
}

// burnRate returns the rolling burn rate at now — the brownout ladder's
// second signal. Nil-safe (0: no traffic, no burn).
func (t *sloTracker) burnRate(now time.Time) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.burnLocked(now.Unix())
}

// sloStatus is the /healthz?verbose=1 rendering of the window.
type sloStatus struct {
	Target        float64 `json:"target"`
	WindowSeconds int     `json:"window_seconds"`
	Good          uint64  `json:"good"`
	Total         uint64  `json:"total"`
	Availability  float64 `json:"availability"`
	BurnRate      float64 `json:"burn_rate"`
}

// status snapshots the rolling window. Nil tracker → zero status with the
// default target, so /healthz?verbose=1 renders something sane either way.
func (t *sloTracker) status(now time.Time) sloStatus {
	if t == nil {
		return sloStatus{Target: DefaultSLOTarget, WindowSeconds: sloWindowSeconds, Availability: 1}
	}
	nowSec := now.Unix()
	t.mu.Lock()
	var good, total uint64
	for i := range t.buckets {
		if nowSec-t.buckets[i].sec < sloWindowSeconds {
			good += t.buckets[i].good
			total += t.buckets[i].total
		}
	}
	burn := t.burnLocked(nowSec)
	t.mu.Unlock()
	st := sloStatus{
		Target:        t.target,
		WindowSeconds: sloWindowSeconds,
		Good:          good,
		Total:         total,
		Availability:  1,
		BurnRate:      burn,
	}
	if total > 0 {
		st.Availability = float64(good) / float64(total)
	}
	return st
}
