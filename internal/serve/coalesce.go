package serve

import (
	"context"
	"sync"
)

// Request coalescing: duplicate in-flight lookups of one (name, version)
// share a single engine computation. The shape is singleflight with one
// deliberate difference — leader handoff. The computation runs in its own
// goroutine under a context derived from the server's base context, NOT from
// the first caller's request context, so a cancelled leader does not poison
// the waiters: they keep waiting and get the result. The flight context is
// cancelled only when the last waiter walks away, at which point nobody
// wants the answer.
//
// Background flights (launch) are the stale-while-revalidate producer: they
// start with no waiters and stay alive until the compute finishes, so a
// request that served stale and moved on never cancels the recompute it
// triggered. A later request for the same (name, version) joins the same
// flight via do — exactly-once recompute per key either way.

// flightKey identifies one coalesced computation. The version is part of
// the key so requests racing an Insert never share results across database
// states: a waiter only ever receives a result computed at the version it
// asked for.
type flightKey struct {
	name    string
	version int64
}

// flight is one in-progress computation plus its waiters.
type flight struct {
	done       chan struct{} // closed after res/err are final
	res        *NameResult
	err        error
	cancel     context.CancelFunc // cancels the compute context
	waiters    int                // guarded by flightGroup.mu
	background bool               // launched flight: immune to waiter-abandon cancel
}

// flightGroup coalesces concurrent do calls per flightKey.
type flightGroup struct {
	base context.Context // parent of every compute context

	mu      sync.Mutex
	flights map[flightKey]*flight
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, flights: make(map[flightKey]*flight)}
}

// register creates and starts a flight for key; callers hold mu and have
// checked that no flight exists for key.
func (g *flightGroup) register(key flightKey, background bool, compute func(context.Context) (*NameResult, error)) *flight {
	fctx, cancel := context.WithCancel(g.base)
	f := &flight{done: make(chan struct{}), cancel: cancel, background: background}
	g.flights[key] = f
	go func() {
		r, e := compute(fctx)
		g.mu.Lock()
		f.res, f.err = r, e
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		cancel()
		close(f.done)
	}()
	return f
}

// do returns compute's result for key, running it at most once across all
// concurrent callers. coalesced reports whether this caller joined an
// existing flight (false for the caller that created it). When ctx ends
// before the flight finishes, do returns ctx's error; the flight itself is
// cancelled only if this was the last waiter and the flight is not a
// background revalidation.
func (g *flightGroup) do(ctx context.Context, key flightKey, compute func(context.Context) (*NameResult, error)) (res *NameResult, coalesced bool, err error) {
	g.mu.Lock()
	f, coalesced := g.flights[key]
	if !coalesced {
		f = g.register(key, false, compute)
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.mu.Lock()
		f.waiters--
		g.mu.Unlock()
		return f.res, coalesced, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0 && !f.background
		if abandoned {
			select {
			case <-f.done:
				// Compute finished while we were giving up; nothing to cancel.
				abandoned = false
			default:
				// Last waiter gone mid-compute: unregister the flight so the
				// next request starts fresh rather than joining a computation
				// about to be cancelled.
				if g.flights[key] == f {
					delete(g.flights, key)
				}
			}
		}
		g.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, coalesced, ctx.Err()
	}
}

// launch starts a background flight for key if none is in progress and
// reports whether it started one (false means a flight — foreground or
// background — already covers the key, so the recompute is already
// happening). Nobody waits on a launched flight: it runs under the
// server's base context until the compute returns, publishing through
// whatever side effects compute performs (the cache store). This is the
// stale-while-revalidate trigger.
func (g *flightGroup) launch(key flightKey, compute func(context.Context) (*NameResult, error)) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.flights[key]; ok {
		return false
	}
	g.register(key, true, compute)
	return true
}

// inflight reports how many flights are currently running (for tests).
func (g *flightGroup) inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
