package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

// fuzzServer is one shared server over the stub backend; handlers are
// concurrency-safe, so parallel fuzz workers can share it.
func fuzzServer() *Server {
	fuzzSrvOnce.Do(func() {
		s, err := New(Options{Backend: newStubBackend("Wei Wang", "Bin Yu", "中文名")})
		if err != nil {
			panic(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv
}

// FuzzServeRequest throws arbitrary methods, paths, and bodies at the API
// and asserts the two properties every response must have: no handler
// panic (a panic fails the fuzz run — nothing in net/http recovers here),
// and a well-formed reply — a sane status code, and a parseable error
// envelope wherever JSON is promised.
func FuzzServeRequest(f *testing.F) {
	f.Add("GET", "/v1/name/Wei Wang", "")
	f.Add("GET", "/v1/name/", "")
	f.Add("GET", "/v1/name/%e4%b8%ad%e6%96%87%e5%90%8d", "")
	f.Add("GET", "/v1/name/a%2Fb%00c", "")
	f.Add("POST", "/v1/batch", `{"names":["Wei Wang","Bin Yu"]}`)
	f.Add("POST", "/v1/batch", `{not json`)
	f.Add("POST", "/v1/batch", `{"names":[]}`)
	f.Add("POST", "/v1/batch", `{"names":["`+strings.Repeat("x", 4096)+`"]}`)
	f.Add("POST", "/v1/batch", `{"names":`+strings.Repeat(`["`, 64)+`]}`)
	f.Add("POST", "/v1/batch", `{"names":[`+strings.Repeat(`"a",`, 2047)+`"a"]}`)
	f.Add("GET", "/v1/names?min_refs=2", "")
	f.Add("GET", "/v1/names?min_refs=banana", "")
	f.Add("GET", "/v1/names?min_refs=-99999999999999999999", "")
	f.Add("DELETE", "/v1/name/Wei Wang", "")
	f.Add("GET", "/healthz", "")
	f.Add("PATCH", "/nowhere", "\x00\x01\x02")

	f.Fuzz(func(t *testing.T, method, path, body string) {
		// Reject inputs Go's own HTTP client could never send — the server
		// would never see them; crafting them via httptest would test the
		// test harness, not the handlers.
		if _, err := url.ParseRequestURI(path); err != nil || !strings.HasPrefix(path, "/") {
			t.Skip()
		}
		req, err := http.NewRequest(method, "http://distinctd.test"+path, strings.NewReader(body))
		if err != nil {
			t.Skip()
		}
		w := httptest.NewRecorder()
		fuzzServer().Handler().ServeHTTP(w, req)

		if w.Code < 100 || w.Code > 599 {
			t.Fatalf("%s %q: status %d out of range", method, path, w.Code)
		}
		ct := w.Header().Get("Content-Type")
		if strings.HasPrefix(ct, "application/json") {
			var v any
			if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
				t.Fatalf("%s %q: unparseable JSON response %q: %v", method, path, w.Body.String(), err)
			}
			if w.Code >= 400 {
				env, ok := v.(map[string]any)
				if !ok || env["error"] == nil || env["error"] == "" {
					t.Fatalf("%s %q: %d without an error envelope: %q", method, path, w.Code, w.Body.String())
				}
			}
		}
		if w.Code == http.StatusTooManyRequests || w.Code == http.StatusServiceUnavailable {
			if w.Header().Get("Retry-After") == "" {
				t.Fatalf("%s %q: %d without Retry-After", method, path, w.Code)
			}
		}
	})
}
