package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"distinct/internal/obs"
)

// Admission control: computations (not requests — coalesced waiters ride
// free) pass through a semaphore-bounded pool with a bounded wait queue.
// A full queue sheds load with 429; a draining server refuses with 503;
// both carry Retry-After so well-behaved clients back off instead of
// hammering. The queue-depth gauge is the early-warning signal: depth
// growing toward the bound means the server is saturated.

var (
	// errOverloaded maps to 429: the compute queue is full.
	errOverloaded = errors.New("serve: compute queue full")
	// errDraining maps to 503: the server is shutting down.
	errDraining = errors.New("serve: draining")
)

type admission struct {
	slots    chan struct{} // buffered; one token per concurrent compute
	maxQueue int64
	queued   atomic.Int64
	depth    *obs.Gauge // serve.queue_depth (nil-safe)
}

func newAdmission(concurrency, maxQueue int, depth *obs.Gauge) *admission {
	a := &admission{
		slots:    make(chan struct{}, concurrency),
		maxQueue: int64(maxQueue),
		depth:    depth,
	}
	for i := 0; i < concurrency; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire obtains a compute slot, queueing up to the bound. It returns a
// release func, or an error: errOverloaded when the queue is full,
// otherwise ctx's error when the wait was cut short.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	// Fast path: a free slot, no queueing.
	select {
	case <-a.slots:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, errOverloaded
	}
	a.depth.Set(float64(a.queued.Load()))
	defer func() {
		a.queued.Add(-1)
		a.depth.Set(float64(a.queued.Load()))
	}()
	select {
	case <-a.slots:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { a.slots <- struct{}{} }

// queueFrac reports how full the wait queue is (0..~1) — one of the two
// signals driving the brownout ladder.
func (a *admission) queueFrac() float64 {
	if a.maxQueue <= 0 {
		return 0
	}
	return float64(a.queued.Load()) / float64(a.maxQueue)
}
