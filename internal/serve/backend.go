// Package serve is the online request path: an HTTP/JSON API over the
// disambiguation engine with request coalescing (duplicate in-flight names
// share one computation), a byte-bounded result cache keyed on the database
// version (inserts invalidate naturally), and admission control (bounded
// concurrency + bounded queue, 429/503 with Retry-After on overload).
// See DESIGN.md §13 for the architecture and SLO methodology.
package serve

import (
	"context"
	"sort"
	"time"

	"distinct/internal/core"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
)

// Backend is what the server needs from the engine. It is an interface so
// serving-layer tests (coalescing races, admission overload, version-skew
// regressions) can drive a deterministic stub instead of a trained engine.
//
// Implementations must be safe for concurrent use: the server calls
// Disambiguate from many flights at once.
type Backend interface {
	// Disambiguate splits the name's references into rendered groups under
	// the per-name resilience ladder: opts.NameTimeout over budget means one
	// degraded retry, then a conservative single group; a panic anywhere
	// becomes an incident, never a crash. The returned incident is nil on
	// the clean path. A non-nil error means the request context itself
	// ended, or the name has no references.
	Disambiguate(ctx context.Context, name string, opts core.BatchOptions) (groups [][]string, inc *core.Incident, err error)
	// NumRefs returns how many references carry the name (0 = unknown name).
	NumRefs(name string) int
	// Names lists the names with at least minRefs references, sorted.
	Names(minRefs int) []string
	// Version is the database's mutation counter; every cache and flight
	// key embeds it so a mutation invalidates both naturally.
	Version() int64
}

// Mutator is the optional mutation extension of Backend: a backend whose
// version counter can be bumped synthetically. Options.AllowBump mounts it
// at POST /debug/bump so overload drills (loadgen's insert-while-serving
// mode, chaos tests) can outdate every version-keyed cache on demand.
type Mutator interface {
	// Bump records a synthetic mutation and returns the new version.
	Bump() int64
}

// TracedBackend is the optional tracing extension of Backend: a backend
// that can parent the engine's stage spans under a caller-provided span.
// The server type-asserts for it when per-request trace capture is on
// (Options.TailDir), so plain Backends — the deterministic test stubs —
// keep compiling untouched.
type TracedBackend interface {
	// DisambiguateAt is Disambiguate with stage spans parented under sp.
	DisambiguateAt(ctx context.Context, sp *trace.Span, name string, opts core.BatchOptions) (groups [][]string, inc *core.Incident, err error)
}

// EngineBackend adapts a trained core engine to the Backend interface,
// rendering each reference through renderAttr (e.g. dblp's "paper-key").
// Keys inside each group are sorted so responses are deterministic.
type EngineBackend struct {
	eng        *core.Engine
	renderAttr string
}

// NewEngineBackend wraps eng; renderAttr names the reference attribute used
// to render tuple IDs in responses.
func NewEngineBackend(eng *core.Engine, renderAttr string) *EngineBackend {
	return &EngineBackend{eng: eng, renderAttr: renderAttr}
}

func (b *EngineBackend) Disambiguate(ctx context.Context, name string, opts core.BatchOptions) ([][]string, *core.Incident, error) {
	return b.DisambiguateAt(ctx, nil, name, opts)
}

// DisambiguateAt implements TracedBackend: the engine's stage spans parent
// under sp, so a per-request trace captures this computation's decisions.
func (b *EngineBackend) DisambiguateAt(ctx context.Context, sp *trace.Span, name string, opts core.BatchOptions) ([][]string, *core.Incident, error) {
	groups, inc, err := b.eng.DisambiguateNameGuardedAt(ctx, sp, name, opts)
	if err != nil {
		return nil, nil, err
	}
	return b.render(groups), inc, nil
}

func (b *EngineBackend) render(groups [][]reldb.TupleID) [][]string {
	db := b.eng.DB()
	out := make([][]string, len(groups))
	for i, g := range groups {
		keys := make([]string, len(g))
		for j, r := range g {
			keys[j] = db.Tuple(r).Val(b.renderAttr)
		}
		sort.Strings(keys)
		out[i] = keys
	}
	return out
}

func (b *EngineBackend) NumRefs(name string) int { return len(b.eng.RefsForName(name)) }

func (b *EngineBackend) Names(minRefs int) []string { return b.eng.NamesWithRefs(minRefs) }

func (b *EngineBackend) Version() int64 { return b.eng.DB().Version() }

// Bump implements Mutator via the database's synthetic mutation.
func (b *EngineBackend) Bump() int64 { return b.eng.DB().Bump() }

// defaultNameTimeout bounds one name's computation when Options.NameTimeout
// is zero: past it the engine degrades, then falls back, so a request is
// always answered — the serving analogue of the batch sweep's budget.
const defaultNameTimeout = 2 * time.Second
