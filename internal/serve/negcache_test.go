package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"distinct/internal/core"
)

// nget probes with staleness disabled, collapsing (hit, stale) to the
// pre-SWR boolean the version-strict tests pin.
func nget(c *negCache, name string, version int64) bool {
	hit, _ := c.get(name, version, 0)
	return hit
}

func TestNegCacheUnit(t *testing.T) {
	nc := newNegCache(2)
	if nget(nc, "a", 1) {
		t.Error("empty cache hit")
	}
	nc.put("a", 1)
	nc.put("b", 1)
	if !nget(nc, "a", 1) || !nget(nc, "b", 1) {
		t.Error("fresh entries missing")
	}
	// A version bump invalidates (and purges) the stale entry.
	if nget(nc, "a", 2) {
		t.Error("stale entry served across versions")
	}
	if nc.Len() != 1 {
		t.Errorf("stale entry not purged: len=%d", nc.Len())
	}
	// LRU eviction: touch b, insert two more, b's competitor goes first.
	nc.put("a", 2)
	nget(nc, "a", 2) // refresh a
	if ev := nc.put("c", 2); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if !nget(nc, "a", 2) {
		t.Error("recently used entry evicted")
	}
	if nget(nc, "b", 1) {
		t.Error("LRU victim survived")
	}

	var nilNC *negCache
	if nget(nilNC, "x", 1) {
		t.Error("nil negcache hit")
	}
	nilNC.put("x", 1)
	if nilNC.Len() != 0 {
		t.Error("nil negcache has entries")
	}
}

func TestNegativeCacheServes404sCheaply(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, nil)

	for i := 0; i < 3; i++ {
		w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
		if w.Code != http.StatusNotFound {
			t.Fatalf("lookup %d status %d", i, w.Code)
		}
	}
	// First 404 misses and seeds the cache; the next two hit it.
	if got := s.reg.Counter("serve.negcache_misses").Value(); got != 1 {
		t.Errorf("negcache_misses = %d", got)
	}
	if got := s.reg.Counter("serve.negcache_hits").Value(); got != 2 {
		t.Errorf("negcache_hits = %d", got)
	}

	// A version bump (ingest) invalidates: the name may exist now.
	b.refs["Nobody"] = 2
	b.version.Add(1)
	w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-ingest lookup status %d", w.Code)
	}
	if got := s.reg.Counter("serve.negcache_hits").Value(); got != 2 {
		t.Errorf("stale negative entry served after version bump: hits = %d", got)
	}
}

func TestNegCacheDisabled(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) {
		o.NegCacheEntries = -1
	})
	if s.neg != nil {
		t.Fatal("negcache built despite NegCacheEntries=-1")
	}
	doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	if got := s.reg.Counter("serve.negcache_hits").Value(); got != 0 {
		t.Errorf("disabled negcache recorded %d hits", got)
	}
}

func TestNegCacheEviction(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) {
		o.NegCacheEntries = 2
	})
	for i := 0; i < 4; i++ {
		doJSON(t, s.Handler(), "GET", fmt.Sprintf("/v1/name/ghost-%d", i), "")
	}
	if got := s.reg.Counter("serve.negcache_evictions").Value(); got != 2 {
		t.Errorf("negcache_evictions = %d, want 2", got)
	}
	if s.neg.Len() != 2 {
		t.Errorf("negcache len = %d, want 2", s.neg.Len())
	}
}

func TestBatchDedupesDuplicateNames(t *testing.T) {
	b := newStubBackend("Wei Wang", "Bin Yu")
	s := newTestServer(t, b, nil)
	body := `{"names":["Wei Wang","Bin Yu","Wei Wang","Wei Wang"]}`
	w, resp := doJSON(t, s.Handler(), "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	results := resp["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 (one per occurrence)", len(results))
	}
	// Two distinct names -> two backend calls, two duplicates folded.
	if got := b.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2", got)
	}
	if got := s.reg.Counter("serve.batch_dedup").Value(); got != 2 {
		t.Errorf("batch_dedup = %d, want 2", got)
	}
	// Every occurrence of a duplicated name reports the same result.
	for i, want := range []string{"Wei Wang", "Bin Yu", "Wei Wang", "Wei Wang"} {
		item := results[i].(map[string]any)
		if item["name"] != want {
			t.Errorf("results[%d].name = %v, want %s", i, item["name"], want)
		}
	}
	first := mustJSON(t, results[0])
	for _, i := range []int{2, 3} {
		if got := mustJSON(t, results[i]); got != first {
			t.Errorf("occurrence %d diverges from first:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestBatchFanoutOrdering runs a batch wide enough to exercise the worker
// pool (Concurrency 4 from newTestServer leaves fan-out > 1) and checks the
// response order still matches the request order.
func TestBatchFanoutOrdering(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}
	b := newStubBackend(names...)
	b.onCompute = func(ctx context.Context, name string) ([][]string, *core.Incident, error) {
		return [][]string{{name + "-key"}}, nil, nil
	}
	s := newTestServer(t, b, func(o *Options) { o.BatchFanout = 4 })
	if s.batchFanout < 2 {
		t.Skipf("fan-out clamped to %d on this machine", s.batchFanout)
	}
	body := `{"names":["` + strings.Join(names, `","`) + `"]}`
	w, resp := doJSON(t, s.Handler(), "POST", "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	results := resp["results"].([]any)
	if len(results) != len(names) {
		t.Fatalf("results = %d", len(results))
	}
	for i, name := range names {
		item := results[i].(map[string]any)
		if item["name"] != name {
			t.Fatalf("results[%d].name = %v, want %s (ordering lost)", i, item["name"], name)
		}
		groups := item["groups"].([]any)
		keys := groups[0].([]any)
		if keys[0] != name+"-key" {
			t.Errorf("results[%d] carries %v, want %s-key (result misrouted)", i, keys[0], name)
		}
	}
	if got := b.calls.Load(); got != int64(len(names)) {
		t.Errorf("backend calls = %d", got)
	}
}
