// Request middleware: the per-request observability layer of the serving
// stack. Every /v1 request gets an X-Request-ID (echoed from the client or
// generated), W3C traceparent propagation (parsed from the request, echoed
// back with this server's span id), per-route RED metrics, a flight-recorder
// record, an SLO observation, and — sampled on clean fast 200s, always on
// errors, incidents, and slow requests — a structured slog access log.
//
// The whole layer follows the obs nil convention: with no registry, no
// flight recorder, and no access logger configured, api() takes a fast path
// that adds zero allocations to the request (asserted by
// TestDisabledMiddlewareZeroAlloc), so the black-box cost of the middleware
// is opt-in. See DESIGN.md §14.

package serve

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distinct/internal/obs"
	flightrec "distinct/internal/obs/flight"
	"distinct/internal/obs/trace"
)

// Pre-canonicalized header keys (net/textproto canonical form) so the hot
// path can index Header maps directly instead of paying Get/Set's
// CanonicalMIMEHeaderKey pass per call. net/http canonicalizes incoming
// request headers at parse time, so direct reads see the same entries Get
// would.
const (
	hdrRequestID   = "X-Request-Id"
	hdrTraceparent = "Traceparent"
)

// route bundles one route's pre-resolved RED handles: requests, errors
// (5xx), latency. Handles resolve once at server construction — per-request
// updates are pure atomics, never registry map lookups. All handles are
// nil (and free) on a nil registry.
type route struct {
	name     string
	requests *obs.Counter
	errors   *obs.Counter
	seconds  *obs.Histogram
}

func newRoute(reg *obs.Registry, name string) *route {
	return &route{
		name:     name,
		requests: reg.Counter("serve.route." + name + ".requests"),
		errors:   reg.Counter("serve.route." + name + ".errors"),
		seconds:  reg.Histogram("serve.route."+name+".seconds", nil),
	}
}

// reqInfo is the per-request scratch the handlers fill for the middleware:
// which name was served and how (cache/coalesce/degrade/incident), plus the
// per-request engine trace when tail capture is on. Instances are pooled;
// all methods are nil-safe so handlers on the disabled fast path can be
// handed a nil reqInfo and carry no enablement branches.
type reqInfo struct {
	name      string
	cached    bool
	coalesced bool
	degraded  bool
	negCached bool
	stale     bool
	client    string
	incident  string
	errMsg    string
	tr        *trace.Trace
	// sw is the response wrapper for this request; embedding it here means
	// one pool Get covers both per-request objects.
	sw statusWriter
}

var reqInfoPool = sync.Pool{New: func() any { return new(reqInfo) }}

func (ri *reqInfo) reset() { *ri = reqInfo{} }

// noteResult records a successful lookup's serving metadata.
func (ri *reqInfo) noteResult(meta lookupMeta, res *NameResult) {
	if ri == nil {
		return
	}
	ri.name = res.Name
	ri.cached = meta.cached
	ri.coalesced = meta.coalesced
	ri.degraded = res.Degraded
	ri.stale = meta.stale
	if res.Incident != nil {
		ri.incident = res.Incident.Reason
	}
	ri.tr = res.trace
}

// noteError records a failed lookup (the name it was for, the envelope
// message).
func (ri *reqInfo) noteError(name, msg string, meta lookupMeta) {
	if ri == nil {
		return
	}
	ri.name = name
	ri.errMsg = msg
	ri.negCached = meta.negCached
	ri.stale = meta.stale
}

// noteName records just the subject (batch summary labels).
func (ri *reqInfo) noteName(name string) {
	if ri == nil {
		return
	}
	ri.name = name
}

// noteFlags merges one batch item's outcome into the request's aggregate.
func (ri *reqInfo) noteFlags(meta lookupMeta, res *NameResult) {
	if ri == nil || res == nil {
		return
	}
	ri.cached = ri.cached || meta.cached
	ri.coalesced = ri.coalesced || meta.coalesced
	ri.degraded = ri.degraded || res.Degraded
	ri.stale = ri.stale || meta.stale
	if ri.incident == "" && res.Incident != nil {
		ri.incident = res.Incident.Reason
	}
}

// statusWriter captures the status code and body size a handler writes;
// the middleware needs both after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// idSource mints request/span ids: an 8-hex-char process-unique prefix plus
// an 8-hex-char sequence — exactly the 16 hex characters a W3C traceparent
// span id needs, unique for the life of the process, one allocation each.
type idSource struct {
	prefix [8]byte // hex chars
	seq    atomic.Uint64
}

func newIDSource() *idSource {
	var raw [4]byte
	var s idSource
	if _, err := rand.Read(raw[:]); err != nil {
		// Timestamp fallback: uniqueness within the process still holds via
		// the sequence; the prefix only guards against cross-process clashes.
		t := time.Now().UnixNano()
		raw = [4]byte{byte(t >> 24), byte(t >> 16), byte(t >> 8), byte(t)}
	}
	hex.Encode(s.prefix[:], raw[:])
	return &s
}

func (s *idSource) next() string {
	v := uint32(s.seq.Add(1))
	raw := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	var b [16]byte
	copy(b[:8], s.prefix[:])
	hex.Encode(b[8:], raw[:])
	return string(b[:])
}

// validRequestID accepts client-supplied X-Request-ID values that are safe
// to echo, log, and store: 1..64 bytes of printable ASCII without spaces
// or quotes. Anything else is replaced by a generated id.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// parseTraceparent parses a W3C trace-context header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). Unknown
// versions and malformed values are ignored, per the spec's permissive
// stance — a bad header must never fail the request.
func parseTraceparent(h string) (traceID, flags string, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID = h[3:35]
	if !isHex(traceID) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return "", "", false
	}
	if allZero(traceID) {
		return "", "", false
	}
	return traceID, h[53:55], true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// accessLogger emits structured access logs with tail-aware sampling:
// errors (4xx/5xx), incidents, and slow requests always log; clean fast
// 200s log one in sample.
type accessLogger struct {
	lg     *slog.Logger
	sample uint64
	seq    atomic.Uint64
	slow   time.Duration
}

// shouldLog decides after the response is written.
func (a *accessLogger) shouldLog(status int, incident string, latency time.Duration) bool {
	if a == nil || a.lg == nil {
		return false
	}
	if status >= 400 || incident != "" || latency >= a.slow {
		return true
	}
	return a.sample <= 1 || a.seq.Add(1)%a.sample == 0
}

// log emits one access record. Attribute keys are stable — dashboards and
// CI greps key on them.
func (a *accessLogger) log(rec *flightrec.Record) {
	a.lg.LogAttrs(nil, levelFor(rec), "request",
		slog.String("route", rec.Route),
		slog.String("name", rec.Name),
		slog.Int("status", rec.Status),
		slog.Duration("latency", rec.Latency),
		slog.String("id", rec.ID),
		slog.String("trace_id", rec.TraceID),
		slog.Bool("cached", rec.Cached),
		slog.Bool("coalesced", rec.Coalesced),
		slog.Bool("degraded", rec.Degraded),
		slog.String("incident", rec.Incident),
		slog.String("error", rec.Error),
	)
}

func levelFor(rec *flightrec.Record) slog.Level {
	switch {
	case rec.Status >= 500 || rec.Incident != "":
		return slog.LevelError
	case rec.Status >= 400:
		return slog.LevelWarn
	}
	return slog.LevelInfo
}
