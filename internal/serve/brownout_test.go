package serve

import (
	"net/http"
	"testing"
	"time"

	"distinct/internal/obs"
)

// TestBrownoutLadderEngageRecoverOrder walks the ladder with a synthetic
// clock: overload engages the first rung immediately and each deeper rung
// only after the dwell; calm recovers one rung per dwell, in reverse order;
// and the dead band between the thresholds holds the level.
func TestBrownoutLadderEngageRecoverOrder(t *testing.T) {
	t0 := time.Unix(10_000, 0)
	b := newBrownout(obs.NewRegistry(), t0)
	overQ, calmQ, midQ := 0.9, 0.1, 0.5 // vs engage 0.75 / recover 0.25
	noBurn := 0.0

	// First overload sample: straight to degraded, no dwell needed.
	if lvl := b.observe(overQ, noBurn, t0); lvl != brownoutDegraded {
		t.Fatalf("first overload sample → %v, want degraded", lvl)
	}
	// Still overloaded but inside the dwell: the ladder holds.
	if lvl := b.observe(overQ, noBurn, t0.Add(time.Second)); lvl != brownoutDegraded {
		t.Fatalf("pre-dwell deepen: %v", lvl)
	}
	// Past the dwell it deepens one rung per dwell, stopping at shed.
	if lvl := b.observe(overQ, noBurn, t0.Add(4*time.Second)); lvl != brownoutStale {
		t.Fatalf("second rung: %v, want stale", lvl)
	}
	if lvl := b.observe(overQ, noBurn, t0.Add(8*time.Second)); lvl != brownoutShed {
		t.Fatalf("third rung: %v, want shed", lvl)
	}
	if lvl := b.observe(overQ, noBurn, t0.Add(12*time.Second)); lvl != brownoutShed {
		t.Fatalf("past the top rung: %v, want shed held", lvl)
	}

	// The dead band (between recover and engage thresholds) holds the level
	// no matter how long it lasts — no flapping off a recovery the signals
	// don't support.
	if lvl := b.observe(midQ, noBurn, t0.Add(30*time.Second)); lvl != brownoutShed {
		t.Fatalf("dead band recovered early: %v", lvl)
	}

	// Calm samples recover one rung per dwell, in reverse order.
	if lvl := b.observe(calmQ, noBurn, t0.Add(40*time.Second)); lvl != brownoutStale {
		t.Fatalf("first recovery: %v, want stale", lvl)
	}
	// Within the dwell of the new level: held, even though calm.
	if lvl := b.observe(calmQ, noBurn, t0.Add(41*time.Second)); lvl != brownoutStale {
		t.Fatalf("pre-dwell recovery: %v", lvl)
	}
	if lvl := b.observe(calmQ, noBurn, t0.Add(44*time.Second)); lvl != brownoutDegraded {
		t.Fatalf("second recovery: %v, want degraded", lvl)
	}
	if lvl := b.observe(calmQ, noBurn, t0.Add(48*time.Second)); lvl != brownoutNormal {
		t.Fatalf("third recovery: %v, want normal", lvl)
	}
	if lvl := b.observe(calmQ, noBurn, t0.Add(60*time.Second)); lvl != brownoutNormal {
		t.Fatalf("below normal: %v", lvl)
	}

	if got := b.status(t0.Add(60 * time.Second)); !got.Enabled || got.State != "normal" {
		t.Fatalf("final status: %+v", got)
	}
}

// TestBrownoutBurnSignal: the burn rate alone (queue empty) drives the
// ladder too — an error storm engages degradation even when admission has
// spare room.
func TestBrownoutBurnSignal(t *testing.T) {
	t0 := time.Unix(20_000, 0)
	b := newBrownout(obs.NewRegistry(), t0)
	if lvl := b.observe(0, 5.0, t0); lvl != brownoutDegraded {
		t.Fatalf("burn engage: %v", lvl)
	}
	// Queue calm but burn still hot: held (recover needs BOTH calm).
	if lvl := b.observe(0, 1.5, t0.Add(10*time.Second)); lvl != brownoutDegraded {
		t.Fatalf("half-calm recovered: %v", lvl)
	}
	if lvl := b.observe(0, 0.2, t0.Add(20*time.Second)); lvl != brownoutNormal {
		t.Fatalf("full calm: %v", lvl)
	}
}

// TestBrownoutNoFlapUnderOscillation: a signal oscillating across the
// engage threshold cannot flap the level faster than the dwell allows.
func TestBrownoutNoFlapUnderOscillation(t *testing.T) {
	t0 := time.Unix(30_000, 0)
	b := newBrownout(obs.NewRegistry(), t0)
	b.observe(0.9, 0, t0) // engage: degraded
	transitions := 0
	prev := brownoutDegraded
	// 2 seconds of 100ms samples alternating overload/calm — all inside the
	// 3s dwell, so the level must not move at all.
	for i := 1; i <= 20; i++ {
		q := 0.9
		if i%2 == 0 {
			q = 0.1
		}
		lvl := b.observe(q, 0, t0.Add(time.Duration(i)*100*time.Millisecond))
		if lvl != prev {
			transitions++
			prev = lvl
		}
	}
	if transitions != 0 {
		t.Fatalf("level moved %d times inside one dwell", transitions)
	}
}

// forceLevel pins the ladder to a level for server-behavior tests.
func forceLevel(s *Server, lvl brownoutLevel) {
	s.brown.level.Store(int32(lvl))
}

// TestBrownoutDegradedForcesDegradedComputes: at brownoutDegraded every
// compute runs ForceDegraded — 200 with degraded:true and a brownout-stage
// incident, and the result is not cached (incident results never are).
func TestBrownoutDegradedForcesDegradedComputes(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) { o.Brownout = true })
	forceLevel(s, brownoutDegraded)

	w, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if resp["degraded"] != true {
		t.Fatalf("brownout compute not degraded: %v", resp)
	}
	inc := resp["incident"].(map[string]any)
	if inc["stage"] != "brownout" {
		t.Fatalf("incident stage = %v, want brownout", inc["stage"])
	}
	if got := s.reg.Counter("serve.brownout_forced_degraded").Value(); got != 1 {
		t.Errorf("brownout_forced_degraded = %d, want 1", got)
	}
	if s.cache.Len() != 0 {
		t.Errorf("degraded brownout result was cached")
	}
}

// TestBrownoutStaleStopsRevalidation: at brownoutStale a stale hit is
// served but no background recompute is launched — revalidation load is
// exactly what this rung sheds.
func TestBrownoutStaleStopsRevalidation(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, func(o *Options) {
		o.Brownout = true
		o.MaxStale = time.Minute
	})
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	b.Bump()
	forceLevel(s, brownoutStale)

	_, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if resp["stale"] != true {
		t.Fatalf("stale entry not served under brownoutStale: %v", resp)
	}
	if got := s.reg.Counter("serve.revalidations").Value(); got != 0 {
		t.Fatalf("revalidation launched under brownoutStale: %d", got)
	}
	if got := s.flights.inflight(); got != 0 {
		t.Fatalf("%d flights in progress", got)
	}

	// Recovery resumes revalidation: the next stale hit launches one.
	forceLevel(s, brownoutNormal)
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if got := s.reg.Counter("serve.revalidations").Value(); got != 1 {
		t.Fatalf("revalidation after recovery = %d, want 1", got)
	}
}

// TestBrownoutShedRefusesUncached: at brownoutShed cached (fresh or stale)
// lookups still answer but uncached ones get 503 without touching the
// compute path.
func TestBrownoutShedRefusesUncached(t *testing.T) {
	b := newStubBackend("Wei Wang", "Bin Yu")
	s := newTestServer(t, b, func(o *Options) {
		o.Brownout = true
		o.MaxStale = time.Minute
	})
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	calls := b.calls.Load()
	forceLevel(s, brownoutShed)

	// Cached name: still 200.
	if w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); w.Code != http.StatusOK {
		t.Fatalf("cached lookup shed: %d", w.Code)
	}
	// Stale would also serve (brownoutShed includes brownoutStale's rule).
	b.Bump()
	if _, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", ""); resp["stale"] != true {
		t.Fatalf("stale lookup shed: %v", resp)
	}
	// Uncached name: 503 with Retry-After, compute never invoked.
	w, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Bin%20Yu", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("uncached lookup status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed 503 without Retry-After")
	}
	if resp["error"] != "overloaded, shedding load" {
		t.Errorf("shed body: %v", resp)
	}
	if got := b.calls.Load(); got != calls {
		t.Errorf("shed lookup reached the backend (%d → %d calls)", calls, got)
	}
	if got := s.reg.Counter("serve.brownout_shed").Value(); got != 1 {
		t.Errorf("brownout_shed = %d, want 1", got)
	}
	// 404s still answer: the negative path costs one index probe, not a
	// compute.
	if w, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", ""); w.Code != http.StatusNotFound {
		t.Fatalf("404 path shed: %d", w.Code)
	}
}

// TestHealthzReportsBrownout: /healthz?verbose=1 carries the ladder state
// (and reports off when the ladder is not enabled).
func TestHealthzReportsBrownout(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) { o.Brownout = true })
	forceLevel(s, brownoutStale)
	_, resp := doJSON(t, s.Handler(), "GET", "/healthz?verbose=1", "")
	br := resp["brownout"].(map[string]any)
	if br["enabled"] != true || br["state"] != "stale" || br["level"].(float64) != 2 {
		t.Fatalf("brownout status: %v", br)
	}

	s2 := newTestServer(t, newStubBackend("Wei Wang"), nil)
	_, resp = doJSON(t, s2.Handler(), "GET", "/healthz?verbose=1", "")
	br = resp["brownout"].(map[string]any)
	if br["enabled"] != false || br["state"] != "off" {
		t.Fatalf("disabled brownout status: %v", br)
	}
}

// TestRetryBudgetUnit drills the token arithmetic.
func TestRetryBudgetUnit(t *testing.T) {
	rb := newRetryBudget(2, 0.5)
	if !rb.take() || !rb.take() {
		t.Fatal("full budget refused")
	}
	if rb.take() {
		t.Fatal("empty budget granted")
	}
	// Two attempts earn one token at ratio 0.5.
	rb.onAttempt()
	if rb.take() {
		t.Fatal("half a token granted")
	}
	rb.onAttempt()
	if !rb.take() {
		t.Fatal("earned token refused")
	}
	// Credit saturates at max.
	for i := 0; i < 100; i++ {
		rb.onAttempt()
	}
	if !rb.take() || !rb.take() || rb.take() {
		t.Fatal("budget not capped at max")
	}
	// Nil budget always grants (brownout off).
	var nrb *retryBudget
	nrb.onAttempt()
	if !nrb.take() {
		t.Fatal("nil budget refused")
	}
}

// TestBrownoutSkipsDegradedRetry: with the ladder at brownoutDegraded the
// server's RetryGate refuses, so the ladder's degraded retry is skipped
// (counted) — retrying onto the path the compute is already on would be
// pure waste.
func TestBrownoutSkipsDegradedRetry(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) { o.Brownout = true })
	forceLevel(s, brownoutDegraded)
	if s.allowRetry() {
		t.Fatal("retry allowed under brownoutDegraded")
	}
	if got := s.reg.Counter("serve.retries_skipped").Value(); got != 1 {
		t.Fatalf("retries_skipped = %d", got)
	}
	forceLevel(s, brownoutNormal)
	if !s.allowRetry() {
		t.Fatal("retry refused at normal with a full budget")
	}
}
