package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"distinct/internal/core"
	"distinct/internal/fault"
	"distinct/internal/obs"
)

// Defaults for the knobs Options leaves zero.
const (
	// DefaultMaxBatchNames bounds one POST /v1/batch request.
	DefaultMaxBatchNames = 256
	// DefaultMaxBodyBytes bounds a request body read.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultRetryAfter is the Retry-After hint on 429/503 responses.
	DefaultRetryAfter = time.Second
)

// Options configures a Server. Backend is required; everything else has a
// sensible zero value.
type Options struct {
	// Backend computes disambiguations (required).
	Backend Backend
	// Obs, when non-nil, receives the serve.* counters, gauges, histograms
	// and stage spans. Nil records nothing and costs nothing.
	Obs *obs.Registry
	// Fault, when non-nil, is carried in every compute context so the
	// "serve.compute" injection point (and the engine's core.* points
	// beneath it) can fire — chaos tests and drills only.
	Fault *fault.Registry
	// CacheBytes is the result-cache budget: 0 means DefaultCacheBytes,
	// negative disables caching.
	CacheBytes int64
	// Concurrency bounds simultaneous engine computations (0 = GOMAXPROCS).
	Concurrency int
	// MaxQueue bounds computations waiting for a slot before 429s start
	// (0 = 4×Concurrency).
	MaxQueue int
	// NameTimeout is the per-name compute budget driving the engine's
	// degrade ladder (0 = defaultNameTimeout).
	NameTimeout time.Duration
	// DegradedPaths caps the degraded retry's join paths (0 = engine default).
	DegradedPaths int
	// MaxBatchNames bounds one batch request (0 = DefaultMaxBatchNames).
	MaxBatchNames int
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint on 429/503 (0 = DefaultRetryAfter).
	RetryAfter time.Duration
}

// IncidentBody is the JSON rendering of a per-name incident. Elapsed is
// deliberately omitted: response bodies stay byte-deterministic for the
// golden HTTP test, and latency is reported per-request in the envelope.
type IncidentBody struct {
	Reason string `json:"reason"`
	Stage  string `json:"stage,omitempty"`
	Error  string `json:"error,omitempty"`
}

// NameResult is the computed outcome for one name at one database version —
// the unit the cache stores and coalesced waiters share (every waiter of one
// flight receives the same *NameResult). It is immutable once built.
type NameResult struct {
	Name    string `json:"name"`
	Version int64  `json:"version"`
	NumRefs int    `json:"num_refs"`
	// Groups holds one sorted key list per inferred real object.
	Groups [][]string `json:"groups"`
	// Degraded marks a result computed under the reduced path set or kept
	// as one conservative group after a blown budget — real output, lower
	// fidelity; Incident says which.
	Degraded bool          `json:"degraded,omitempty"`
	Incident *IncidentBody `json:"incident,omitempty"`
}

// nameEnvelope is one request's view of a NameResult: the shared result
// plus request-scoped serving metadata.
type nameEnvelope struct {
	*NameResult
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Names []string `json:"names"`
}

// batchItem is one name's outcome inside a batch response: an envelope, or
// an error for that name alone (the batch itself still succeeds).
type batchItem struct {
	*NameResult
	Name      string `json:"name"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	Status    int    `json:"status,omitempty"`
}

// batchResponse is the POST /v1/batch reply.
type batchResponse struct {
	Version   int64       `json:"version"`
	Results   []batchItem `json:"results"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// errorBody is the error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// errNotFound maps to 404: the name has no references.
var errNotFound = errors.New("serve: unknown name")

// Server is the serving front end. Create with New, mount Handler on
// obs.ServeHandler (or any http.Server), Drain before exit.
type Server struct {
	backend     Backend
	reg         *obs.Registry
	cache       *resultCache
	flights     *flightGroup
	adm         *admission
	handler     http.Handler
	nameTimeout time.Duration
	degraded    int
	maxBatch    int
	maxBody     int64
	retryAfter  time.Duration

	baseCancel context.CancelFunc

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// New builds a Server over opts.Backend.
func New(opts Options) (*Server, error) {
	if opts.Backend == nil {
		return nil, errors.New("serve: Options.Backend is required")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 4 * conc
	}
	s := &Server{
		backend:     opts.Backend,
		reg:         opts.Obs,
		nameTimeout: opts.NameTimeout,
		degraded:    opts.DegradedPaths,
		maxBatch:    opts.MaxBatchNames,
		maxBody:     opts.MaxBodyBytes,
		retryAfter:  opts.RetryAfter,
	}
	if s.nameTimeout <= 0 {
		s.nameTimeout = defaultNameTimeout
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatchNames
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	if s.retryAfter <= 0 {
		s.retryAfter = DefaultRetryAfter
	}
	switch {
	case opts.CacheBytes < 0:
		// caching disabled
	case opts.CacheBytes == 0:
		s.cache = newResultCache(DefaultCacheBytes)
	default:
		s.cache = newResultCache(opts.CacheBytes)
	}
	// Flights compute under the server's base context — not any request's —
	// so a cancelled leader hands off to its waiters. The fault registry
	// travels in it so injection reaches the compute path.
	base := context.Background()
	if opts.Fault != nil {
		base = fault.With(base, opts.Fault)
	}
	base, s.baseCancel = context.WithCancel(base)
	s.flights = newFlightGroup(base)
	s.adm = newAdmission(conc, maxQueue, s.reg.Gauge("serve.queue_depth"))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/name/{name}", s.api(s.handleName))
	mux.HandleFunc("POST /v1/batch", s.api(s.handleBatch))
	mux.HandleFunc("GET /v1/names", s.api(s.handleNames))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// The observability endpoints ride on the same mux (and the same
	// hardened server), outside the drain gate so a draining process can
	// still be scraped.
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/", s.reg.Handler())
	s.handler = mux
	return s, nil
}

// Handler returns the server's HTTP handler: the /v1 API plus the
// observability endpoints (/metrics, /debug/...).
func (s *Server) Handler() http.Handler { return s.handler }

// Drain stops admitting /v1 requests (they get 503 + Retry-After) and waits
// for the in-flight ones to finish, or until ctx expires. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels the base context under every in-flight computation. Call
// after Drain (or instead of it, for a hard stop).
func (s *Server) Close() { s.baseCancel() }

// enter registers one in-flight request, refusing when draining. The mutex
// makes the draining check and the WaitGroup add atomic with respect to
// Drain, so Drain's Wait can never miss a request it should cover.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// api wraps a /v1 handler with the drain gate, request counting, and
// latency observation.
func (s *Server) api(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			s.reg.Counter("serve.rejected_503").Inc()
			s.writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		defer s.inflight.Done()
		s.reg.Counter("serve.requests").Inc()
		t0 := time.Now()
		h(w, r)
		s.reg.Histogram("serve.request_seconds", nil).ObserveDuration(time.Since(t0))
	}
}

// lookupMeta is request-scoped serving metadata for one lookup.
type lookupMeta struct {
	cached    bool
	coalesced bool
}

// lookup resolves one name: version read, cache probe, coalesced compute.
// The version is read BEFORE the cache probe — with the reverse order a
// concurrent Insert could slip between them and the probe would hand back
// a result computed against the old contents labeled with the new version.
// reldb.Insert upholds the matching edge on its side (invalidate before
// bump; see version_order_test.go).
func (s *Server) lookup(ctx context.Context, name string) (*NameResult, lookupMeta, error) {
	if s.backend.NumRefs(name) == 0 {
		return nil, lookupMeta{}, errNotFound
	}
	version := s.backend.Version()
	if res := s.cache.get(name, version); res != nil {
		s.reg.Counter("serve.cache_hits").Inc()
		return res, lookupMeta{cached: true}, nil
	}
	s.reg.Counter("serve.cache_misses").Inc()
	res, coalesced, err := s.flights.do(ctx, flightKey{name: name, version: version},
		func(fctx context.Context) (*NameResult, error) {
			return s.compute(fctx, name, version)
		})
	if coalesced {
		s.reg.Counter("serve.coalesced").Inc()
	}
	return res, lookupMeta{coalesced: coalesced}, err
}

// compute runs one name's disambiguation: admission slot, fault point,
// engine call, cache store. It runs inside a flight goroutine under the
// server base context; a panic here (its own, or injected at
// "serve.compute") is recovered into an incident-bearing result — one bad
// request must never take the process down.
func (s *Server) compute(fctx context.Context, name string, version int64) (res *NameResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.reg.Counter("serve.panics").Inc()
			res = &NameResult{
				Name:    name,
				Version: version,
				NumRefs: s.backend.NumRefs(name),
				Incident: &IncidentBody{
					Reason: string(core.IncidentPanic),
					Stage:  "serve.compute",
					Error:  fmt.Sprintf("panic: %v\n%s", p, debug.Stack()),
				},
			}
			err = nil
		}
	}()
	release, aerr := s.adm.acquire(fctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()
	if ferr := fault.Point(fctx, "serve.compute"); ferr != nil {
		return nil, ferr
	}
	s.reg.Counter("serve.computes").Inc()
	sp := s.reg.StartStage("serve.compute")
	groups, inc, err := s.backend.Disambiguate(fctx, name, core.BatchOptions{
		NameTimeout:   s.nameTimeout,
		DegradedPaths: s.degraded,
	})
	sp.End(1)
	if err != nil {
		return nil, err
	}
	res = &NameResult{
		Name:    name,
		Version: version,
		NumRefs: s.backend.NumRefs(name),
		Groups:  groups,
	}
	if inc != nil {
		res.Incident = &IncidentBody{Reason: string(inc.Reason), Stage: inc.Stage, Error: inc.Err}
		res.Degraded = inc.Reason == core.IncidentDegraded || inc.Reason == core.IncidentTimeout
		if res.Degraded {
			s.reg.Counter("serve.degraded").Inc()
		}
	}
	// Only clean results are cached, and only when the database did not
	// move under the computation: a result computed while an Insert landed
	// may mix old and new contents, and storing it under the pre-compute
	// version would serve it as that version's truth.
	if inc == nil && s.backend.Version() == version {
		if evicted := s.cache.put(name, version, res); evicted > 0 {
			s.reg.Counter("serve.cache_evictions").Add(evicted)
		}
	}
	return res, nil
}

// statusFor maps a result to its HTTP status: a panic or error incident is
// a 500 (the body still carries the incident), anything else — clean,
// degraded, timed out conservatively — is a 200 the client can use.
func statusFor(res *NameResult) int {
	if res.Incident == nil {
		return http.StatusOK
	}
	switch res.Incident.Reason {
	case string(core.IncidentPanic), string(core.IncidentError):
		return http.StatusInternalServerError
	}
	return http.StatusOK
}

// errStatus maps a lookup error to (status, message).
func (s *Server) errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "unknown name"
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, "compute queue full"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The requester went away (or its deadline fired) mid-flight; 499 in
		// the nginx convention. The response likely reaches nobody.
		return 499, "request cancelled"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

func (s *Server) handleName(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		s.writeError(w, http.StatusBadRequest, "empty name")
		return
	}
	t0 := time.Now()
	res, meta, err := s.lookup(r.Context(), name)
	if err != nil {
		status, msg := s.errStatus(err)
		s.writeError(w, status, msg)
		return
	}
	writeJSON(w, statusFor(res), nameEnvelope{
		NameResult: res,
		Cached:     meta.cached,
		Coalesced:  meta.coalesced,
		ElapsedMS:  float64(time.Since(t0).Microseconds()) / 1000,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Names) == 0 {
		s.writeError(w, http.StatusBadRequest, "names is empty")
		return
	}
	if len(req.Names) > s.maxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d names exceeds the limit of %d", len(req.Names), s.maxBatch))
		return
	}
	s.reg.Counter("serve.batch_requests").Inc()
	t0 := time.Now()
	resp := batchResponse{Version: s.backend.Version(), Results: make([]batchItem, 0, len(req.Names))}
	for _, name := range req.Names {
		if r.Context().Err() != nil {
			break
		}
		res, meta, err := s.lookup(r.Context(), name)
		if err != nil {
			status, msg := s.errStatus(err)
			resp.Results = append(resp.Results, batchItem{Name: name, Error: msg, Status: status})
			continue
		}
		resp.Results = append(resp.Results, batchItem{
			NameResult: res, Name: res.Name, Cached: meta.cached, Coalesced: meta.coalesced,
		})
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleNames(w http.ResponseWriter, r *http.Request) {
	minRefs := 2
	if v := r.URL.Query().Get("min_refs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "min_refs must be an integer")
			return
		}
		minRefs = n
	}
	names := s.backend.Names(minRefs)
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, struct {
		Version int64    `json:"version"`
		Names   []string `json:"names"`
	}{Version: s.backend.Version(), Names: names})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	if draining {
		w.Header().Set("Retry-After", retryAfterValue(s.retryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// writeError emits the error envelope, with Retry-After on the statuses
// where backing off helps.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterValue(s.retryAfter))
	}
	if status == http.StatusTooManyRequests {
		s.reg.Counter("serve.rejected_429").Inc()
	} else if status >= 500 && status != http.StatusServiceUnavailable {
		s.reg.Counter("serve.errors").Inc()
	} else if status == http.StatusNotFound {
		s.reg.Counter("serve.not_found").Inc()
	}
	writeJSON(w, status, errorBody{Error: msg, Status: status})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// retryAfterValue renders a Retry-After in whole seconds, at least 1.
func retryAfterValue(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
