package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distinct/internal/core"
	"distinct/internal/fault"
	"distinct/internal/obs"
	flightrec "distinct/internal/obs/flight"
	"distinct/internal/obs/trace"
)

// Defaults for the knobs Options leaves zero.
const (
	// DefaultMaxBatchNames bounds one POST /v1/batch request.
	DefaultMaxBatchNames = 256
	// DefaultMaxBodyBytes bounds a request body read.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultRetryAfter is the Retry-After hint on 429/503 responses.
	DefaultRetryAfter = time.Second
	// DefaultBatchFanout bounds concurrent per-name lookups inside one batch
	// request. Admission control still bounds total engine concurrency, so
	// fan-out changes batch latency, not engine load limits.
	DefaultBatchFanout = 8
	// DefaultAccessLogSample logs one clean fast 200 in this many; errors,
	// incidents, and slow requests always log.
	DefaultAccessLogSample = 100
	// DefaultMaxStale bounds stale-while-revalidate: after a version bump, a
	// previous-version cache entry keeps serving (marked stale) for at most
	// this long while a background flight recomputes at the new version.
	DefaultMaxStale = 30 * time.Second
)

// Options configures a Server. Backend is required; everything else has a
// sensible zero value.
type Options struct {
	// Backend computes disambiguations (required).
	Backend Backend
	// Obs, when non-nil, receives the serve.* counters, gauges, histograms
	// and stage spans. Nil records nothing and costs nothing.
	Obs *obs.Registry
	// Fault, when non-nil, is carried in every compute context so the
	// "serve.compute" injection point (and the engine's core.* points
	// beneath it) can fire — chaos tests and drills only.
	Fault *fault.Registry
	// CacheBytes is the result-cache budget: 0 means DefaultCacheBytes,
	// negative disables caching.
	CacheBytes int64
	// Concurrency bounds simultaneous engine computations (0 = GOMAXPROCS).
	Concurrency int
	// MaxQueue bounds computations waiting for a slot before 429s start
	// (0 = 4×Concurrency).
	MaxQueue int
	// NameTimeout is the per-name compute budget driving the engine's
	// degrade ladder (0 = defaultNameTimeout).
	NameTimeout time.Duration
	// DegradedPaths caps the degraded retry's join paths (0 = engine default).
	DegradedPaths int
	// MaxBatchNames bounds one batch request (0 = DefaultMaxBatchNames).
	MaxBatchNames int
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint on 429/503 (0 = DefaultRetryAfter).
	RetryAfter time.Duration

	// FlightRecords sizes the flight recorder's ring of last completed
	// requests, served at /debug/requests (0 = flightrec.DefaultRecords,
	// negative disables the recorder).
	FlightRecords int
	// TailSlow is the latency past which a request is tail-sampled: pinned
	// in the recorder's slow lane, always access-logged, trace-artifacted
	// when TailDir is set (0 = flightrec.DefaultSlowThreshold).
	TailSlow time.Duration
	// TailDir, when non-empty, receives per-request engine trace artifacts
	// (distinct-trace/1 JSON) for tail-sampled requests — the K slowest and
	// the errored. Requires the flight recorder.
	TailDir string
	// AccessLog, when non-nil, receives structured access log records:
	// every error, incident, and slow request, plus one in AccessLogSample
	// of the clean fast 200s. Nil disables access logging entirely.
	AccessLog *slog.Logger
	// AccessLogSample is the clean-200 sampling period (0 =
	// DefaultAccessLogSample, 1 = log everything).
	AccessLogSample int
	// SLOTarget is the availability objective the burn-rate gauge and
	// /healthz?verbose=1 report against (0 = DefaultSLOTarget).
	SLOTarget float64
	// BatchFanout bounds concurrent lookups inside one batch request
	// (0 = DefaultBatchFanout, 1 = sequential).
	BatchFanout int
	// NegCacheEntries caps the negative-result cache for the 404 path
	// (0 = DefaultNegCacheEntries, negative disables).
	NegCacheEntries int

	// MaxStale bounds stale-while-revalidate: after a database version bump,
	// cached previous-version results (and negative entries) keep serving —
	// marked stale in the envelope — for up to this long while a single
	// background flight recomputes at the new version. 0 = DefaultMaxStale,
	// negative disables staleness (a bump invalidates immediately, the
	// pre-SWR behavior).
	MaxStale time.Duration
	// QuotaRPS, when positive, enables per-client quotas: each client (keyed
	// by X-Api-Key, else remote host) gets a token bucket refilling at this
	// rate. Throttled requests get 429 + Retry-After without touching the
	// admission queue.
	QuotaRPS float64
	// QuotaBurst is the per-client bucket capacity (0 = 2×QuotaRPS, min 8).
	QuotaBurst int
	// QuotaConcurrency caps one client's in-flight requests (0 = unlimited).
	// Only effective when QuotaRPS enables quotas.
	QuotaConcurrency int
	// Brownout enables the load-shed ladder (see brownout.go): under
	// sustained overload the server forces degraded computes, then stops
	// revalidating stale entries, then sheds uncached lookups — and walks
	// back down with hysteresis. Also enables the retry budget that bounds
	// degraded retries to a fraction of traffic.
	Brownout bool
	// AllowBump, when the backend supports Mutator, mounts POST /debug/bump:
	// a synthetic version bump for overload drills (loadgen's
	// insert-while-serving mode). Off by default — it mutates server state.
	AllowBump bool
}

// IncidentBody is the JSON rendering of a per-name incident. Elapsed is
// deliberately omitted: response bodies stay byte-deterministic for the
// golden HTTP test, and latency is reported per-request in the envelope.
type IncidentBody struct {
	Reason string `json:"reason"`
	Stage  string `json:"stage,omitempty"`
	Error  string `json:"error,omitempty"`
}

// NameResult is the computed outcome for one name at one database version —
// the unit the cache stores and coalesced waiters share (every waiter of one
// flight receives the same *NameResult). It is immutable once built.
type NameResult struct {
	Name    string `json:"name"`
	Version int64  `json:"version"`
	NumRefs int    `json:"num_refs"`
	// Groups holds one sorted key list per inferred real object.
	Groups [][]string `json:"groups"`
	// Degraded marks a result computed under the reduced path set or kept
	// as one conservative group after a blown budget — real output, lower
	// fidelity; Incident says which.
	Degraded bool          `json:"degraded,omitempty"`
	Incident *IncidentBody `json:"incident,omitempty"`

	// trace is the per-request engine trace captured under tail sampling;
	// unexported so it never reaches the JSON body, and stripped from the
	// copy the cache stores (a cached result serves many requests — none of
	// them this one's trace).
	trace *trace.Trace
}

// nameEnvelope is one request's view of a NameResult: the shared result
// plus request-scoped serving metadata.
type nameEnvelope struct {
	*NameResult
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	Stale     bool    `json:"stale,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Names []string `json:"names"`
}

// batchItem is one name's outcome inside a batch response: an envelope, or
// an error for that name alone (the batch itself still succeeds).
type batchItem struct {
	*NameResult
	Name      string `json:"name"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Stale     bool   `json:"stale,omitempty"`
	Error     string `json:"error,omitempty"`
	Status    int    `json:"status,omitempty"`
}

// batchResponse is the POST /v1/batch reply.
type batchResponse struct {
	Version   int64       `json:"version"`
	Results   []batchItem `json:"results"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// errorBody is the error envelope every non-2xx response carries. Stale
// marks a 404 served from a stale negative-cache entry (the name may exist
// at the current version; revalidation is in flight).
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	Stale  bool   `json:"stale,omitempty"`
}

// errNotFound maps to 404: the name has no references.
var errNotFound = errors.New("serve: unknown name")

// errShedding maps to 503: the brownout ladder's deepest rung is refusing
// uncached lookups.
var errShedding = errors.New("serve: shedding load")

// Server is the serving front end. Create with New, mount Handler on
// obs.ServeHandler (or any http.Server), Drain before exit.
type Server struct {
	backend     Backend
	traced      TracedBackend // backend's tracing extension, nil if unsupported
	reg         *obs.Registry
	cache       *resultCache
	neg         *negCache
	flights     *flightGroup
	adm         *admission
	handler     http.Handler
	nameTimeout time.Duration
	degraded    int
	maxBatch    int
	maxBody     int64
	retryAfter  time.Duration
	batchFanout int
	maxStale    time.Duration // 0 = staleness disabled

	// Overload resilience (DESIGN.md §15): per-client quotas, brownout
	// ladder, retry budget. All nil when not enabled.
	quotas  *quotaSet
	brown   *brownout
	retries *retryBudget
	fault   *fault.Registry // for injection points outside the compute ctx

	// Request observability (DESIGN.md §14). instrumented gates the full
	// middleware path; with everything off, api() adds nothing to a request.
	instrumented bool
	flightRec    *flightrec.Recorder
	tailTrace    bool // build per-request engine traces in compute
	access       *accessLogger
	slo          *sloTracker
	ids          *idSource
	rtName       *route
	rtBatch      *route
	rtNames      *route

	// Pre-resolved obs handles: registry lookups take the registry mutex,
	// so the request path resolves each handle once here and updates
	// atomics from then on. All nil (and free) on a nil registry.
	cRequests    *obs.Counter
	hSeconds     *obs.Histogram
	cCacheHits   *obs.Counter
	cCacheMisses *obs.Counter
	cCacheEvict  *obs.Counter
	cNegHits     *obs.Counter
	cNegMisses   *obs.Counter
	cNegEvict    *obs.Counter
	cCoalesced   *obs.Counter
	cComputes    *obs.Counter
	cDegraded    *obs.Counter
	cPanics      *obs.Counter
	cBatch       *obs.Counter
	cBatchDedup  *obs.Counter
	cRejected429 *obs.Counter
	cRejected503 *obs.Counter
	cErrors      *obs.Counter
	cNotFound    *obs.Counter

	cStaleHits      *obs.Counter
	cStaleNeg       *obs.Counter
	cRevalidations  *obs.Counter
	cShed           *obs.Counter
	cBrownoutForced *obs.Counter
	cRetrySkipped   *obs.Counter

	baseCancel context.CancelFunc

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// New builds a Server over opts.Backend.
func New(opts Options) (*Server, error) {
	if opts.Backend == nil {
		return nil, errors.New("serve: Options.Backend is required")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 4 * conc
	}
	s := &Server{
		backend:     opts.Backend,
		reg:         opts.Obs,
		nameTimeout: opts.NameTimeout,
		degraded:    opts.DegradedPaths,
		maxBatch:    opts.MaxBatchNames,
		maxBody:     opts.MaxBodyBytes,
		retryAfter:  opts.RetryAfter,
		batchFanout: opts.BatchFanout,
		fault:       opts.Fault,
	}
	s.traced, _ = opts.Backend.(TracedBackend)
	switch {
	case opts.MaxStale < 0:
		// staleness disabled: a version bump invalidates immediately
	case opts.MaxStale == 0:
		s.maxStale = DefaultMaxStale
	default:
		s.maxStale = opts.MaxStale
	}
	if opts.QuotaRPS > 0 {
		s.quotas = newQuotaSet(opts.QuotaRPS, opts.QuotaBurst, opts.QuotaConcurrency, opts.Obs)
	}
	if opts.Brownout {
		s.brown = newBrownout(opts.Obs, time.Now())
		s.retries = newRetryBudget(DefaultRetryBudgetMax, DefaultRetryBudgetRatio)
	}
	if s.nameTimeout <= 0 {
		s.nameTimeout = defaultNameTimeout
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatchNames
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	if s.retryAfter <= 0 {
		s.retryAfter = DefaultRetryAfter
	}
	if s.batchFanout <= 0 {
		s.batchFanout = DefaultBatchFanout
	}
	// Fan-out beyond the admission width can only queue (and, past the
	// queue, shed) a batch's own lookups; cap it so one batch on an idle
	// server is always fully admitted.
	if s.batchFanout > conc {
		s.batchFanout = conc
	}
	switch {
	case opts.CacheBytes < 0:
		// caching disabled
	case opts.CacheBytes == 0:
		s.cache = newResultCache(DefaultCacheBytes)
	default:
		s.cache = newResultCache(opts.CacheBytes)
	}
	switch {
	case opts.NegCacheEntries < 0:
		// negative cache disabled
	case opts.NegCacheEntries == 0:
		s.neg = newNegCache(DefaultNegCacheEntries)
	default:
		s.neg = newNegCache(opts.NegCacheEntries)
	}

	// Request observability: flight recorder (default on — it is the
	// always-on black box), access logger, SLO tracker, request ids. The
	// slow threshold is shared by the recorder's slow lane and the access
	// logger's always-log rule.
	tailSlow := opts.TailSlow
	if tailSlow <= 0 {
		tailSlow = flightrec.DefaultSlowThreshold
	}
	if opts.FlightRecords >= 0 {
		s.flightRec = flightrec.New(flightrec.Options{
			Records:       opts.FlightRecords,
			SlowThreshold: tailSlow,
			TailDir:       opts.TailDir,
		})
	}
	s.tailTrace = s.flightRec.TailDir() != ""
	if opts.AccessLog != nil {
		sample := opts.AccessLogSample
		if sample == 0 {
			sample = DefaultAccessLogSample
		}
		if sample < 1 {
			sample = 1
		}
		s.access = &accessLogger{lg: opts.AccessLog, sample: uint64(sample), slow: tailSlow}
	}
	s.slo = newSLOTracker(opts.Obs, opts.SLOTarget)
	s.ids = newIDSource()
	s.rtName = newRoute(opts.Obs, "name")
	s.rtBatch = newRoute(opts.Obs, "batch")
	s.rtNames = newRoute(opts.Obs, "names")
	// Brownout forces the instrumented path: the ladder is driven from the
	// request tail (SLO observation + periodic evaluation).
	s.instrumented = s.flightRec != nil || s.access != nil || s.reg != nil || s.brown != nil

	reg := opts.Obs
	s.cRequests = reg.Counter("serve.requests")
	s.hSeconds = reg.Histogram("serve.request_seconds", nil)
	s.cCacheHits = reg.Counter("serve.cache_hits")
	s.cCacheMisses = reg.Counter("serve.cache_misses")
	s.cCacheEvict = reg.Counter("serve.cache_evictions")
	s.cNegHits = reg.Counter("serve.negcache_hits")
	s.cNegMisses = reg.Counter("serve.negcache_misses")
	s.cNegEvict = reg.Counter("serve.negcache_evictions")
	s.cCoalesced = reg.Counter("serve.coalesced")
	s.cComputes = reg.Counter("serve.computes")
	s.cDegraded = reg.Counter("serve.degraded")
	s.cPanics = reg.Counter("serve.panics")
	s.cBatch = reg.Counter("serve.batch_requests")
	s.cBatchDedup = reg.Counter("serve.batch_dedup")
	s.cRejected429 = reg.Counter("serve.rejected_429")
	s.cRejected503 = reg.Counter("serve.rejected_503")
	s.cErrors = reg.Counter("serve.errors")
	s.cNotFound = reg.Counter("serve.not_found")
	s.cStaleHits = reg.Counter("serve.stale_hits")
	s.cStaleNeg = reg.Counter("serve.stale_neg_hits")
	s.cRevalidations = reg.Counter("serve.revalidations")
	s.cShed = reg.Counter("serve.brownout_shed")
	s.cBrownoutForced = reg.Counter("serve.brownout_forced_degraded")
	s.cRetrySkipped = reg.Counter("serve.retries_skipped")

	// Flights compute under the server's base context — not any request's —
	// so a cancelled leader hands off to its waiters. The fault registry
	// travels in it so injection reaches the compute path.
	base := context.Background()
	if opts.Fault != nil {
		base = fault.With(base, opts.Fault)
	}
	base, s.baseCancel = context.WithCancel(base)
	s.flights = newFlightGroup(base)
	s.adm = newAdmission(conc, maxQueue, s.reg.Gauge("serve.queue_depth"))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/name/{name}", s.api(s.rtName, s.handleName))
	mux.HandleFunc("POST /v1/batch", s.api(s.rtBatch, s.handleBatch))
	mux.HandleFunc("GET /v1/names", s.api(s.rtNames, s.handleNames))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// The observability endpoints ride on the same mux (and the same
	// hardened server), outside the drain gate so a draining process can
	// still be scraped. /debug/requests (the flight recorder) wins over the
	// /debug/ catch-all by pattern specificity; its handler serves empty
	// lanes on a nil recorder, so the mount is unconditional.
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("GET /debug/requests", s.flightRec.Handler())
	mux.HandleFunc("GET /debug/quotas", s.handleQuotas)
	// /debug/bump is a mutation, so it is opt-in (drills and chaos tests) and
	// requires a backend that can actually bump.
	if m, ok := opts.Backend.(Mutator); ok && opts.AllowBump {
		mux.HandleFunc("POST /debug/bump", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, struct {
				Version int64 `json:"version"`
			}{Version: m.Bump()})
		})
	}
	mux.Handle("/debug/", s.reg.Handler())
	s.handler = mux
	return s, nil
}

// Handler returns the server's HTTP handler: the /v1 API plus the
// observability endpoints (/metrics, /debug/...).
func (s *Server) Handler() http.Handler { return s.handler }

// FlightRecorder returns the server's flight recorder (nil when disabled).
func (s *Server) FlightRecorder() *flightrec.Recorder { return s.flightRec }

// Drain stops admitting /v1 requests (they get 503 + Retry-After) and waits
// for the in-flight ones to finish, or until ctx expires. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels the base context under every in-flight computation. Call
// after Drain (or instead of it, for a hard stop).
func (s *Server) Close() { s.baseCancel() }

// enter registers one in-flight request, refusing when draining. The mutex
// makes the draining check and the WaitGroup add atomic with respect to
// Drain, so Drain's Wait can never miss a request it should cover.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// api wraps a /v1 handler with the drain gate and the request-observability
// middleware: request id + traceparent propagation, per-route RED metrics,
// SLO observation, flight record, sampled access log (middleware.go). With
// no registry, recorder, or logger configured, the fast path runs the
// handler bare — nil reqInfo, no response wrapper, zero added allocations.
func (s *Server) api(rt *route, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			s.cRejected503.Inc()
			s.writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		defer s.inflight.Done()
		if !s.instrumented {
			if s.quotas != nil {
				release, ok := s.quotaAdmit(w, r, nil, time.Now())
				if !ok {
					return
				}
				defer release()
			}
			h(w, r, nil)
			return
		}

		t0 := time.Now()
		// Echo a valid client X-Request-ID, mint one otherwise. The id
		// doubles as this server's traceparent span id (16 hex chars) when
		// generated; an echoed client id is still minted a span id.
		// Headers are read and written with pre-canonicalized keys
		// (hdrRequestID, hdrTraceparent) — net/http canonicalizes incoming
		// keys at parse time, and skipping Get/Set's per-call
		// CanonicalMIMEHeaderKey pass keeps this middleware out of the
		// request latency budget.
		var id string
		if vs := r.Header[hdrRequestID]; len(vs) > 0 {
			id = vs[0]
		}
		spanID := ""
		if !validRequestID(id) {
			id = s.ids.next()
			spanID = id
		}
		wh := w.Header()
		wh[hdrRequestID] = []string{id}
		var traceID string
		if vs := r.Header[hdrTraceparent]; len(vs) > 0 {
			if tid, flags, ok := parseTraceparent(vs[0]); ok {
				traceID = tid
				if spanID == "" {
					spanID = s.ids.next()
				}
				wh[hdrTraceparent] = []string{"00-" + tid + "-" + spanID + "-" + flags}
			}
		}

		s.cRequests.Inc()
		rt.requests.Inc()
		ri := reqInfoPool.Get().(*reqInfo)
		ri.reset()
		sw := &ri.sw
		sw.ResponseWriter = w

		// Per-client quota gate, inside the middleware so a throttled request
		// still gets a flight record, RED metrics, and an SLO observation.
		if s.quotas == nil {
			h(sw, r, ri)
		} else if release, ok := s.quotaAdmit(sw, r, ri, t0); ok {
			h(sw, r, ri)
			release()
		}

		lat := time.Since(t0)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.hSeconds.ObserveDuration(lat)
		rt.seconds.ObserveDuration(lat)
		if status >= 500 {
			rt.errors.Inc()
		}
		s.slo.observe(status, t0)
		// Feed the brownout ladder from the request tail, rate-limited by
		// due() so concurrent tails don't pile onto the evaluation.
		now := t0.Add(lat)
		if s.brown != nil && s.brown.due(now) {
			s.brown.observe(s.adm.queueFrac(), s.slo.burnRate(now), now)
		}
		var bstate string
		if lvl := s.brown.current(); lvl > brownoutNormal {
			bstate = lvl.String()
		}

		rec := flightrec.Record{
			ID:        id,
			TraceID:   traceID,
			Route:     rt.name,
			Name:      ri.name,
			Status:    status,
			Start:     t0,
			Latency:   lat,
			Cached:    ri.cached,
			Coalesced: ri.coalesced,
			Degraded:  ri.degraded,
			NegCached: ri.negCached,
			Stale:     ri.stale,
			Client:    ri.client,
			Brownout:  bstate,
			Incident:  ri.incident,
			Error:     ri.errMsg,
		}
		tr := ri.tr
		ri.reset() // drop the trace reference before pooling
		reqInfoPool.Put(ri)
		s.flightRec.Observe(rec, tr)
		if s.access.shouldLog(status, rec.Incident, lat) {
			s.access.log(&rec)
		}
	}
}

// quotaAdmit charges the request to its client's quota (now is the
// middleware's request start — one clock read serves both). On throttle it
// writes the 429 itself — Retry-After from the bucket's refill deficit when
// that is longer than the server's flat hint — and returns ok = false. On
// admission the returned release must be called when the request finishes.
func (s *Server) quotaAdmit(w http.ResponseWriter, r *http.Request, ri *reqInfo, now time.Time) (release func(), ok bool) {
	id := clientID(r)
	if ri != nil {
		ri.client = id
	}
	release, wait, ok := s.quotas.acquire(id, now)
	// Injected quota failure ("serve.quota"): force the throttle path in
	// chaos tests without crafting real bucket exhaustion.
	if ok && s.fault != nil {
		if ferr := s.fault.Fire(r.Context(), "serve.quota"); ferr != nil {
			release()
			release, wait, ok = nil, 0, false
		}
	}
	if ok {
		return release, true
	}
	ra := s.retryAfter
	if wait > ra {
		ra = wait
	}
	w.Header().Set("Retry-After", retryAfterValue(ra))
	s.cRejected429.Inc()
	if ri != nil {
		ri.noteError("", "client quota exceeded", lookupMeta{})
	}
	writeJSON(w, http.StatusTooManyRequests,
		errorBody{Error: "client quota exceeded", Status: http.StatusTooManyRequests})
	return nil, false
}

// handleQuotas serves the per-client quota table (outside the drain gate,
// like the other /debug endpoints).
func (s *Server) handleQuotas(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.quotas.status(time.Now()))
}

// lookupMeta is request-scoped serving metadata for one lookup.
type lookupMeta struct {
	cached    bool
	coalesced bool
	negCached bool
	// stale marks a result (or negative 404) served from a previous database
	// version inside the stale-while-revalidate window.
	stale bool
}

// lookup resolves one name: version read, negative-cache probe, cache probe,
// coalesced compute. The version is read BEFORE either cache probe — with
// the reverse order a concurrent Insert could slip between them and the
// probe would hand back a result computed against the old contents labeled
// with the new version. reldb.Insert upholds the matching edge on its side
// (invalidate before bump; see version_order_test.go).
//
// Stale-while-revalidate: when a version bump has outdated a cache entry
// (positive or negative) but the entry is inside the staleness window, it
// is served immediately — marked stale — and a single background flight
// recomputes at the new version. A bump therefore costs no latency cliff:
// hot names keep answering from cache while revalidation fills in behind.
func (s *Server) lookup(ctx context.Context, name string) (*NameResult, lookupMeta, error) {
	version := s.backend.Version()
	if hit, stale := s.neg.get(name, version, s.maxStale); hit {
		if stale {
			s.cStaleNeg.Inc()
			s.revalidate(name, version)
			return nil, lookupMeta{negCached: true, stale: true}, errNotFound
		}
		s.cNegHits.Inc()
		return nil, lookupMeta{negCached: true}, errNotFound
	}
	if res, state := s.cache.get(name, version, s.maxStale); state == cacheFresh {
		s.cCacheHits.Inc()
		return res, lookupMeta{cached: true}, nil
	} else if state == cacheStale {
		s.cStaleHits.Inc()
		s.revalidate(name, version)
		return res, lookupMeta{cached: true, stale: true}, nil
	}
	if s.backend.NumRefs(name) == 0 {
		// A negcache miss is counted only on this slow 404 path, so
		// hits/(hits+misses) reads as the fraction of 404s served cheaply.
		s.cNegMisses.Inc()
		if evicted := s.neg.put(name, version); evicted > 0 {
			s.cNegEvict.Add(evicted)
		}
		return nil, lookupMeta{}, errNotFound
	}
	s.cCacheMisses.Inc()
	// The ladder's deepest rung: nothing cached to fall back on and the
	// server is shedding — refuse before burning a queue slot.
	if s.brown.current() >= brownoutShed {
		s.cShed.Inc()
		return nil, lookupMeta{}, errShedding
	}
	res, coalesced, err := s.flights.do(ctx, flightKey{name: name, version: version},
		func(fctx context.Context) (*NameResult, error) {
			return s.compute(fctx, name, version)
		})
	if coalesced {
		s.cCoalesced.Inc()
	}
	return res, lookupMeta{coalesced: coalesced}, err
}

// revalidate starts the background recompute behind a stale answer, unless
// the ladder says stale results should stand (brownoutStale and deeper —
// revalidation is exactly the compute load the ladder is trying to shed).
// The flight group guarantees at most one recompute per (name, version):
// every stale hit calls this, only the first launches.
func (s *Server) revalidate(name string, version int64) {
	if s.brown.current() >= brownoutStale {
		return
	}
	launched := s.flights.launch(flightKey{name: name, version: version},
		func(fctx context.Context) (*NameResult, error) {
			if ferr := fault.Point(fctx, "serve.revalidate"); ferr != nil {
				return nil, ferr
			}
			if s.backend.NumRefs(name) == 0 {
				// The name vanished (or never existed at this version): refresh
				// the negative fact so the next probe 404s fresh.
				if evicted := s.neg.put(name, version); evicted > 0 {
					s.cNegEvict.Add(evicted)
				}
				return nil, errNotFound
			}
			return s.compute(fctx, name, version)
		})
	if launched {
		s.cRevalidations.Inc()
	}
}

// allowRetry is the server's core.BatchOptions.RetryGate: degraded retries
// are skipped when the ladder already forces degraded computes (the retry
// would be a no-op), when the error budget is burning past
// DefaultRetryBurnMax, or when the retry budget is spent.
func (s *Server) allowRetry() bool {
	if s.brown.current() >= brownoutDegraded ||
		s.slo.burnRate(time.Now()) >= DefaultRetryBurnMax ||
		!s.retries.take() {
		s.cRetrySkipped.Inc()
		return false
	}
	return true
}

// compute runs one name's disambiguation: admission slot, fault point,
// engine call, cache store. It runs inside a flight goroutine under the
// server base context; a panic here (its own, or injected at
// "serve.compute") is recovered into an incident-bearing result — one bad
// request must never take the process down.
//
// Under tail sampling (Options.TailDir) each compute carries its own
// engine trace: the backend's stage spans parent under a per-request name
// span, and the finished trace rides the result so the flight recorder can
// write it as an artifact if the request turns out slow or errored. Every
// coalesced waiter shares the one trace; the cache stores a copy without it.
func (s *Server) compute(fctx context.Context, name string, version int64) (res *NameResult, err error) {
	var tr *trace.Trace
	var nsp *trace.Span
	if s.tailTrace {
		tr = trace.New(trace.Options{RootName: "request"})
		nsp = tr.Start(trace.NameSpanPrefix+name, trace.Int("version", version))
	}
	defer func() {
		if p := recover(); p != nil {
			s.cPanics.Inc()
			nsp.Event("incident",
				trace.String("reason", string(core.IncidentPanic)),
				trace.String("error", fmt.Sprint(p)))
			res = &NameResult{
				Name:    name,
				Version: version,
				NumRefs: s.backend.NumRefs(name),
				Incident: &IncidentBody{
					Reason: string(core.IncidentPanic),
					Stage:  "serve.compute",
					Error:  fmt.Sprintf("panic: %v\n%s", p, debug.Stack()),
				},
			}
			err = nil
		}
		if tr != nil {
			nsp.End()
			tr.Finish()
			if res != nil {
				res.trace = tr
			}
		}
	}()
	release, aerr := s.adm.acquire(fctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()
	if ferr := fault.Point(fctx, "serve.compute"); ferr != nil {
		return nil, ferr
	}
	s.cComputes.Inc()
	sp := s.reg.StartStage("serve.compute")
	opts := core.BatchOptions{
		NameTimeout:   s.nameTimeout,
		DegradedPaths: s.degraded,
	}
	// Brownout: at brownoutDegraded and deeper every compute starts on the
	// degraded path — the quality cut is taken up front instead of after a
	// blown budget. The retry budget gates the ladder's degraded retry so
	// retries stay a bounded fraction of traffic under load.
	if s.brown.current() >= brownoutDegraded {
		opts.ForceDegraded = true
		s.cBrownoutForced.Inc()
	}
	if s.retries != nil {
		s.retries.onAttempt()
		opts.RetryGate = s.allowRetry
	}
	var groups [][]string
	var inc *core.Incident
	if s.traced != nil && nsp != nil {
		groups, inc, err = s.traced.DisambiguateAt(fctx, nsp, name, opts)
	} else {
		groups, inc, err = s.backend.Disambiguate(fctx, name, opts)
	}
	sp.End(1)
	if err != nil {
		return nil, err
	}
	res = &NameResult{
		Name:    name,
		Version: version,
		NumRefs: s.backend.NumRefs(name),
		Groups:  groups,
	}
	if inc != nil {
		res.Incident = &IncidentBody{Reason: string(inc.Reason), Stage: inc.Stage, Error: inc.Err}
		res.Degraded = inc.Reason == core.IncidentDegraded || inc.Reason == core.IncidentTimeout
		if res.Degraded {
			s.cDegraded.Inc()
		}
		nsp.Event("incident",
			trace.String("reason", string(inc.Reason)),
			trace.String("stage", inc.Stage))
	}
	// Only clean results are cached, and only when the database did not
	// move under the computation: a result computed while an Insert landed
	// may mix old and new contents, and storing it under the pre-compute
	// version would serve it as that version's truth. This matters doubly
	// for stale-while-revalidate: a revalidation flight keyed at V2 can be
	// overtaken by a bump to V3 mid-compute (three versions in play — the
	// stale V1 entry, this flight's V2, the live V3); the re-read below
	// observes V3 != V2 and refuses the store, leaving the V1 entry to keep
	// serving stale until a revalidation keyed at V3 lands a result that is
	// actually V3's truth. The cache gets a trace-free copy: a cached result
	// outlives this request.
	if inc == nil && s.backend.Version() == version {
		stored := res
		if tr != nil {
			cp := *res
			cp.trace = nil
			stored = &cp
		}
		if evicted := s.cache.put(name, version, stored); evicted > 0 {
			s.cCacheEvict.Add(evicted)
		}
		// A published positive result supersedes any negative fact for the
		// name (a stale negative would otherwise outrank the fresh entry in
		// lookup's probe order).
		s.neg.drop(name)
	}
	return res, nil
}

// statusFor maps a result to its HTTP status: a panic or error incident is
// a 500 (the body still carries the incident), anything else — clean,
// degraded, timed out conservatively — is a 200 the client can use.
func statusFor(res *NameResult) int {
	if res.Incident == nil {
		return http.StatusOK
	}
	switch res.Incident.Reason {
	case string(core.IncidentPanic), string(core.IncidentError):
		return http.StatusInternalServerError
	}
	return http.StatusOK
}

// errStatus maps a lookup error to (status, message).
func (s *Server) errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "unknown name"
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, "compute queue full"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, errShedding):
		return http.StatusServiceUnavailable, "overloaded, shedding load"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The requester went away (or its deadline fired) mid-flight; 499 in
		// the nginx convention. The response likely reaches nobody.
		return 499, "request cancelled"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

func (s *Server) handleName(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	name := r.PathValue("name")
	if name == "" {
		s.writeError(w, http.StatusBadRequest, "empty name")
		return
	}
	t0 := time.Now()
	res, meta, err := s.lookup(r.Context(), name)
	if err != nil {
		status, msg := s.errStatus(err)
		ri.noteError(name, msg, meta)
		if meta.stale && status == http.StatusNotFound {
			// A stale negative: the 404 carries stale so the client knows the
			// fact is from a previous version and a re-check is in flight.
			s.cNotFound.Inc()
			writeJSON(w, status, errorBody{Error: msg, Status: status, Stale: true})
			return
		}
		s.writeError(w, status, msg)
		return
	}
	ri.noteResult(meta, res)
	writeJSON(w, statusFor(res), nameEnvelope{
		NameResult: res,
		Cached:     meta.cached,
		Coalesced:  meta.coalesced,
		Stale:      meta.stale,
		ElapsedMS:  float64(time.Since(t0).Microseconds()) / 1000,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, ri *reqInfo) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Names) == 0 {
		s.writeError(w, http.StatusBadRequest, "names is empty")
		return
	}
	if len(req.Names) > s.maxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d names exceeds the limit of %d", len(req.Names), s.maxBatch))
		return
	}
	s.cBatch.Inc()
	if ri != nil {
		ri.noteName(batchLabel(req.Names))
	}
	t0 := time.Now()

	// Deduplicate to distinct names (first-occurrence order) so a batch
	// with repeats does each name's work once, then fan the distinct names
	// out over a bounded worker set. The coalescer would catch concurrent
	// duplicates anyway; deduping first avoids even the flight handoff.
	idx := make(map[string]int, len(req.Names))
	uniq := make([]string, 0, len(req.Names))
	for _, name := range req.Names {
		if _, ok := idx[name]; !ok {
			idx[name] = len(uniq)
			uniq = append(uniq, name)
		}
	}
	if d := len(req.Names) - len(uniq); d > 0 {
		s.cBatchDedup.Add(int64(d))
	}

	type outcome struct {
		res  *NameResult
		meta lookupMeta
		err  error
	}
	outs := make([]outcome, len(uniq))
	run := func(i int) {
		if err := r.Context().Err(); err != nil {
			outs[i].err = err
			return
		}
		outs[i].res, outs[i].meta, outs[i].err = s.lookup(r.Context(), uniq[i])
	}
	if fan := min(s.batchFanout, len(uniq)); fan <= 1 {
		for i := range uniq {
			run(i)
		}
	} else {
		// Workers claim indices off a shared counter: cheap, order-free, and
		// the deterministic response order is restored by assembly below.
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(fan)
		for range fan {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(uniq) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}

	// Assemble in request order: every occurrence of a name shares its one
	// outcome, so responses are deterministic regardless of fan-out timing.
	resp := batchResponse{Version: s.backend.Version(), Results: make([]batchItem, 0, len(req.Names))}
	for _, name := range req.Names {
		o := outs[idx[name]]
		if o.err != nil {
			status, msg := s.errStatus(o.err)
			resp.Results = append(resp.Results, batchItem{
				Name: name, Error: msg, Status: status, Stale: o.meta.stale,
			})
			continue
		}
		ri.noteFlags(o.meta, o.res)
		resp.Results = append(resp.Results, batchItem{
			NameResult: o.res, Name: o.res.Name, Cached: o.meta.cached,
			Coalesced: o.meta.coalesced, Stale: o.meta.stale,
		})
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// batchLabel summarizes a batch's names for the flight record.
func batchLabel(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	return fmt.Sprintf("%s +%d more", names[0], len(names)-1)
}

func (s *Server) handleNames(w http.ResponseWriter, r *http.Request, _ *reqInfo) {
	minRefs := 2
	if v := r.URL.Query().Get("min_refs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "min_refs must be an integer")
			return
		}
		minRefs = n
	}
	names := s.backend.Names(minRefs)
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, struct {
		Version int64    `json:"version"`
		Names   []string `json:"names"`
	}{Version: s.backend.Version(), Names: names})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	// ?verbose=1 returns a JSON body with the rolling SLO window; the plain
	// form stays a byte-stable "ok\n" (load balancers and the golden HTTP
	// test both key on it).
	if r.URL.Query().Get("verbose") != "" {
		status, text := http.StatusOK, "ok"
		if draining {
			status, text = http.StatusServiceUnavailable, "draining"
			w.Header().Set("Retry-After", retryAfterValue(s.retryAfter))
		}
		writeJSON(w, status, struct {
			Status   string         `json:"status"`
			Draining bool           `json:"draining"`
			SLO      sloStatus      `json:"slo"`
			Brownout brownoutStatus `json:"brownout"`
		}{
			Status: text, Draining: draining,
			SLO:      s.slo.status(time.Now()),
			Brownout: s.brown.status(time.Now()),
		})
		return
	}
	if draining {
		w.Header().Set("Retry-After", retryAfterValue(s.retryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// writeError emits the error envelope, with Retry-After on the statuses
// where backing off helps.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterValue(s.retryAfter))
	}
	if status == http.StatusTooManyRequests {
		s.cRejected429.Inc()
	} else if status >= 500 && status != http.StatusServiceUnavailable {
		s.cErrors.Inc()
	} else if status == http.StatusNotFound {
		s.cNotFound.Inc()
	}
	writeJSON(w, status, errorBody{Error: msg, Status: status})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// retryAfterValue renders a Retry-After in whole seconds, at least 1.
func retryAfterValue(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
