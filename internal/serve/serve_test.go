package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distinct/internal/core"
)

func doJSON(t *testing.T, h http.Handler, method, target, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var decoded map[string]any
	if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("%s %s: invalid JSON body %q: %v", method, target, w.Body.String(), err)
		}
	}
	return w, decoded
}

func TestHandleNameHappyPath(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, nil)
	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	if body["name"] != "Wei Wang" {
		t.Errorf("name = %v", body["name"])
	}
	if groups, ok := body["groups"].([]any); !ok || len(groups) != 2 {
		t.Errorf("groups = %v", body["groups"])
	}
	if body["cached"] != false {
		t.Errorf("first hit reported cached")
	}
	// Second request: served from cache, marked so.
	w2, body2 := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w2.Code != http.StatusOK || body2["cached"] != true {
		t.Errorf("second hit: status %d cached=%v", w2.Code, body2["cached"])
	}
	if b.calls.Load() != 1 {
		t.Errorf("backend invoked %d times for two requests", b.calls.Load())
	}
}

func TestHandleNameNotFound(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Nobody", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d", w.Code)
	}
	if body["error"] == "" || body["status"] != float64(404) {
		t.Errorf("malformed error envelope: %v", body)
	}
	if got := s.reg.Counter("serve.not_found").Value(); got != 1 {
		t.Errorf("serve.not_found = %d", got)
	}
}

func TestHandleBatchMixedNames(t *testing.T) {
	b := newStubBackend("Wei Wang", "Bin Yu")
	s := newTestServer(t, b, nil)
	w, body := doJSON(t, s.Handler(), "POST", "/v1/batch",
		`{"names":["Wei Wang","Nobody","Bin Yu"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	first := results[0].(map[string]any)
	if first["name"] != "Wei Wang" || first["error"] != nil {
		t.Errorf("first item: %v", first)
	}
	missing := results[1].(map[string]any)
	if missing["name"] != "Nobody" || missing["status"] != float64(404) {
		t.Errorf("missing item: %v", missing)
	}
}

func TestHandleBatchRejectsMalformedAndOversized(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), func(o *Options) { o.MaxBatchNames = 2 })
	for _, tc := range []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{"names":[]}`, http.StatusBadRequest},
		{`{"names":["a","b","c"]}`, http.StatusBadRequest},
	} {
		w, body := doJSON(t, s.Handler(), "POST", "/v1/batch", tc.body)
		if w.Code != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, w.Code, tc.want)
		}
		if body["error"] == nil {
			t.Errorf("body %q: no error envelope", tc.body)
		}
	}
}

func TestHandleNames(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang", "Bin Yu"), nil)
	w, body := doJSON(t, s.Handler(), "GET", "/v1/names?min_refs=2", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if names := body["names"].([]any); len(names) != 2 {
		t.Errorf("names = %v", names)
	}
	w2, _ := doJSON(t, s.Handler(), "GET", "/v1/names?min_refs=banana", "")
	if w2.Code != http.StatusBadRequest {
		t.Errorf("bad min_refs: status %d", w2.Code)
	}
	// A threshold nothing meets returns an empty list, not null.
	w3, _ := doJSON(t, s.Handler(), "GET", "/v1/names?min_refs=1000", "")
	if !strings.Contains(w3.Body.String(), `"names":[]`) {
		t.Errorf("empty result not an empty list: %s", w3.Body.String())
	}
}

// TestAdmissionShedsLoadWith429: with one compute slot and a queue of one,
// a third concurrent computation is refused immediately with 429 and a
// Retry-After hint rather than piling up unboundedly.
func TestAdmissionShedsLoadWith429(t *testing.T) {
	b := newStubBackend("a", "b", "c")
	b.block = make(chan struct{})
	b.started = make(chan string, 3)
	s := newTestServer(t, b, func(o *Options) {
		o.Concurrency = 1
		o.MaxQueue = 1
	})

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() { defer wg.Done(); _, _, errs[0] = s.lookup(context.Background(), "a") }()
	<-b.started // "a" holds the only slot
	go func() { defer wg.Done(); _, _, errs[1] = s.lookup(context.Background(), "b") }()
	waitUntil(t, "b queued", func() bool { return s.adm.queued.Load() == 1 })

	// The queue is full: "c" must be shed, and over HTTP that is a 429
	// with Retry-After.
	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/c", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if body["status"] != float64(429) {
		t.Errorf("error envelope: %v", body)
	}
	if got := s.reg.Counter("serve.rejected_429").Value(); got != 1 {
		t.Errorf("serve.rejected_429 = %d", got)
	}

	close(b.block)
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("admitted requests failed: %v, %v", errs[0], errs[1])
	}
	if got := s.reg.Gauge("serve.queue_depth").Value(); got != 0 {
		t.Errorf("queue depth gauge = %v after drain", got)
	}
}

// TestLookupSkipsCacheStoreWhenVersionMoves is the serving half of the
// version-ordering regression (reldb's half is version_order_test.go): a
// result computed while an Insert landed mid-flight must NOT be stored
// under the pre-compute version — the next request recomputes against the
// new contents instead of being served a mixed-state answer as fresh.
func TestLookupSkipsCacheStoreWhenVersionMoves(t *testing.T) {
	b := newStubBackend("Wei Wang")
	b.onCompute = func(ctx context.Context, name string) ([][]string, *core.Incident, error) {
		if b.calls.Load() == 1 {
			b.version.Add(1) // an Insert lands mid-computation
		}
		return [][]string{{"k1", "k2"}}, nil, nil
	}
	s := newTestServer(t, b, nil)
	if _, _, err := s.lookup(context.Background(), "Wei Wang"); err != nil {
		t.Fatal(err)
	}
	if got := s.cache.Len(); got != 0 {
		t.Fatalf("result computed across a version bump was cached (len=%d)", got)
	}
	// The next lookup recomputes at the new version and caches cleanly.
	_, meta, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if meta.cached {
		t.Fatal("second lookup served from cache; stale store happened")
	}
	if b.calls.Load() != 2 {
		t.Fatalf("backend invoked %d times, want 2", b.calls.Load())
	}
	if s.cache.Len() != 1 {
		t.Fatalf("clean result at the new version not cached")
	}
}

// TestLookupReadsVersionBeforeProbe pins the probe protocol itself: the
// version passed to the cache and the flight key is the one read before the
// probe, so a cached result's version always equals the version the caller
// observed — never one that appeared later.
func TestLookupReadsVersionBeforeProbe(t *testing.T) {
	b := newStubBackend("Wei Wang")
	s := newTestServer(t, b, nil)
	res, _, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 0 {
		t.Fatalf("result version %d, want 0", res.Version)
	}
	b.version.Add(1)
	res2, meta, err := s.lookup(context.Background(), "Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if meta.cached {
		t.Fatal("post-insert lookup served the pre-insert cache entry")
	}
	if res2.Version != 1 {
		t.Fatalf("post-insert result version %d, want 1", res2.Version)
	}
}

func TestIncidentResultsAreNotCached(t *testing.T) {
	b := newStubBackend("Wei Wang")
	b.onCompute = func(ctx context.Context, name string) ([][]string, *core.Incident, error) {
		return [][]string{{"k1"}}, &core.Incident{
			Name: name, Reason: core.IncidentDegraded, Err: "budget blown",
		}, nil
	}
	s := newTestServer(t, b, nil)
	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("degraded response status %d, want 200", w.Code)
	}
	if body["degraded"] != true {
		t.Errorf("degraded flag missing: %v", body)
	}
	if s.cache.Len() != 0 {
		t.Error("degraded result was cached")
	}
	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if b.calls.Load() != 2 {
		t.Errorf("degraded result served twice from one compute (calls=%d)", b.calls.Load())
	}
}

func TestHealthzFlipsOnDrain(t *testing.T) {
	s := newTestServer(t, newStubBackend("Wei Wang"), nil)
	w, _ := doJSON(t, s.Handler(), "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthy healthz = %d", w.Code)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	w2, _ := doJSON(t, s.Handler(), "GET", "/healthz", "")
	if w2.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d", w2.Code)
	}
	// /v1 requests are refused with 503 + Retry-After; metrics still served.
	w3, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w3.Code != http.StatusServiceUnavailable || w3.Header().Get("Retry-After") == "" {
		t.Fatalf("post-drain request: status %d retry-after %q", w3.Code, w3.Header().Get("Retry-After"))
	}
	w4, _ := doJSON(t, s.Handler(), "GET", "/metrics", "")
	if w4.Code != http.StatusOK {
		t.Fatalf("metrics during drain = %d", w4.Code)
	}
}

func TestNewRequiresBackend(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("backendless server accepted")
	}
}

func TestErrStatusMapping(t *testing.T) {
	s := newTestServer(t, newStubBackend(), nil)
	for _, tc := range []struct {
		err  error
		want int
	}{
		{errNotFound, 404},
		{errOverloaded, 429},
		{errDraining, 503},
		{context.Canceled, 499},
		{context.DeadlineExceeded, 499},
		{errors.New("boom"), 500},
	} {
		if got, _ := s.errStatus(tc.err); got != tc.want {
			t.Errorf("errStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestRetryAfterValue(t *testing.T) {
	if got := retryAfterValue(0); got != "1" {
		t.Errorf("retryAfterValue(0) = %q", got)
	}
	if got := retryAfterValue(2500 * time.Millisecond); got != "2" {
		t.Errorf("retryAfterValue(2.5s) = %q", got)
	}
}
