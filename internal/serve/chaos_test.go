// Chaos tests for the serving path: faults injected with internal/fault
// must surface as incident-bearing HTTP responses — a panic is a 500 with
// an incident body, a blown deadline is a degraded 200 — and never as a
// dead process. Graceful shutdown must drain in-flight requests.
package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/fault"
	"distinct/internal/obs"
	"distinct/internal/trainset"
)

var (
	chaosOnce sync.Once
	chaosEng  *core.Engine
	chaosErr  error
)

// chaosEngine returns a small trained engine shared by the chaos tests
// (training once keeps the suite fast; the engine is concurrency-safe).
// The world mirrors internal/core's test world.
func chaosEngine(t *testing.T) *core.Engine {
	t.Helper()
	chaosOnce.Do(func() {
		cfg := dblp.DefaultConfig()
		cfg.Seed = 3
		cfg.Communities = 4
		cfg.AuthorsPerCommunity = 60
		cfg.PapersPerAuthor = 3
		cfg.Ambiguous = []dblp.AmbiguousName{
			{Name: "Wei Wang", RefsPerAuthor: []int{12, 8, 5}},
			{Name: "Bin Yu", RefsPerAuthor: []int{7, 5}},
		}
		w, err := dblp.Generate(cfg)
		if err != nil {
			chaosErr = err
			return
		}
		eng, err := core.NewEngine(w.DB, core.Config{
			RefRelation: dblp.ReferenceRelation,
			RefAttr:     dblp.ReferenceAttr,
			SkipExpand:  []string{dblp.TitleAttr},
			Supervised:  true,
			Measure:     cluster.Combined,
			MinSim:      0.005,
			Train: trainset.Options{
				NumPositive: 150, NumNegative: 150, Seed: 11,
				Exclude: w.AmbiguousNames(),
			},
		})
		if err != nil {
			chaosErr = err
			return
		}
		if _, err := eng.Train(); err != nil {
			chaosErr = err
			return
		}
		chaosEng = eng
	})
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosEng
}

func engineServer(t *testing.T, f *fault.Registry, mod func(*Options)) *Server {
	t.Helper()
	return newTestServer(t, NewEngineBackend(chaosEngine(t), "paper-key"), func(o *Options) {
		o.Fault = f
		if mod != nil {
			mod(o)
		}
	})
}

// TestChaosEnginePanicIs500WithIncident: a panic injected deep in the
// engine (the clustering stage) comes back as a 500 whose body carries the
// incident — reason, stage, error — and the server keeps serving: the very
// next request, with the one-shot rule spent, disambiguates cleanly.
func TestChaosEnginePanicIs500WithIncident(t *testing.T) {
	f := fault.NewRegistry(1)
	f.Set("core.cluster", fault.Rule{OnHit: 1, Panic: "injected cluster panic"})
	s := engineServer(t, f, nil)

	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500; body %s", w.Code, w.Body.String())
	}
	inc, ok := body["incident"].(map[string]any)
	if !ok {
		t.Fatalf("500 without incident body: %v", body)
	}
	if inc["reason"] != "panic" {
		t.Errorf("incident reason = %v", inc["reason"])
	}
	// The conservative fallback still accounts for every reference.
	if groups, ok := body["groups"].([]any); !ok || len(groups) != 1 {
		t.Errorf("fallback groups = %v, want one conservative group", body["groups"])
	}

	// The server survived: the next request is clean and splits the name.
	w2, body2 := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w2.Code != http.StatusOK {
		t.Fatalf("post-panic status %d", w2.Code)
	}
	if body2["incident"] != nil {
		t.Errorf("post-panic incident: %v", body2["incident"])
	}
	if groups := body2["groups"].([]any); len(groups) < 2 {
		t.Errorf("post-panic groups = %d, want the homonym split", len(groups))
	}
}

// TestChaosServeLayerPanicRecovered: a panic injected at the serving
// layer's own fault point (outside the engine's ladder) is recovered by the
// compute guard — 500 with an incident, process alive.
func TestChaosServeLayerPanicRecovered(t *testing.T) {
	b := newStubBackend("Wei Wang")
	f := fault.NewRegistry(1)
	f.Set("serve.compute", fault.Rule{OnHit: 1, Panic: "injected serve panic"})
	s := newTestServer(t, b, func(o *Options) { o.Fault = f })

	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	inc := body["incident"].(map[string]any)
	if inc["reason"] != "panic" || inc["stage"] != "serve.compute" {
		t.Errorf("incident = %v", inc)
	}
	if got := s.reg.Counter("serve.panics").Value(); got != 1 {
		t.Errorf("serve.panics = %d", got)
	}
	w2, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w2.Code != http.StatusOK {
		t.Fatalf("post-panic status %d, server did not survive", w2.Code)
	}
}

// TestChaosDelayPastDeadlineDegrades: an injected delay blows the per-name
// budget; the engine retries on the degraded view and the response is a 200
// with degraded:true and the incident explaining why — the client gets an
// answer, honestly labeled.
func TestChaosDelayPastDeadlineDegrades(t *testing.T) {
	f := fault.NewRegistry(1)
	f.Set("core.similarities", fault.Rule{OnHit: 1, Delay: 10 * time.Second})
	s := engineServer(t, f, func(o *Options) { o.NameTimeout = 150 * time.Millisecond })

	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200; body %s", w.Code, w.Body.String())
	}
	if body["degraded"] != true {
		t.Fatalf("degraded flag missing: %v", body)
	}
	inc, ok := body["incident"].(map[string]any)
	if !ok {
		t.Fatalf("degraded response without incident: %v", body)
	}
	if r := inc["reason"]; r != "degraded" && r != "timeout" {
		t.Errorf("incident reason = %v", r)
	}
	if got := s.reg.Counter("serve.degraded").Value(); got != 1 {
		t.Errorf("serve.degraded = %d", got)
	}
}

// TestChaosQuotaFaultForces429: an injected failure at "serve.quota" forces
// the throttle path — 429 with Retry-After — without crafting real bucket
// exhaustion, and the admitted slot is released so the client is not leaked
// a phantom in-flight request (the next request, rule spent, succeeds).
func TestChaosQuotaFaultForces429(t *testing.T) {
	b := newStubBackend("Wei Wang")
	f := fault.NewRegistry(1)
	f.Set("serve.quota", fault.Rule{OnHit: 1})
	s := newTestServer(t, b, func(o *Options) {
		o.Fault = f
		o.QuotaRPS = 1000
		o.QuotaConcurrency = 1 // a leaked slot would block the follow-up
	})

	w, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("injected 429 without Retry-After")
	}
	if body["error"] != "client quota exceeded" {
		t.Errorf("body: %v", body)
	}
	if got := f.Hits("serve.quota"); got != 1 {
		t.Errorf("serve.quota hits = %d", got)
	}
	// Rule spent: the same client (and its concurrency slot of 1) sails
	// through — the injected throttle released what it acquired.
	w2, _ := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if w2.Code != http.StatusOK {
		t.Fatalf("post-fault status %d, quota slot leaked", w2.Code)
	}
}

// TestChaosRevalidateFaultKeepsStale: an injected error at
// "serve.revalidate" kills the background recompute behind a stale hit. The
// stale entry must keep serving — a failed revalidation degrades freshness,
// never availability — and the next stale hit launches a fresh flight that,
// rule spent, lands the new version.
func TestChaosRevalidateFaultKeepsStale(t *testing.T) {
	b := newStubBackend("Wei Wang")
	f := fault.NewRegistry(1)
	f.Set("serve.revalidate", fault.Rule{OnHit: 1})
	s := newTestServer(t, b, func(o *Options) {
		o.Fault = f
		o.MaxStale = time.Minute
	})

	doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "") // warm at v0
	b.Bump()

	// Stale hit: served stale, revalidation launched into the injected error.
	_, body := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if body["stale"] != true {
		t.Fatalf("first post-bump response not stale: %v", body)
	}
	waitUntil(t, "failed revalidation flight drained", func() bool {
		return f.Hits("serve.revalidate") == 1 && s.flights.inflight() == 0
	})

	// Still serving stale — the failure cost freshness only — and this hit's
	// relaunch (rule spent) succeeds and publishes the new version.
	_, body = doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
	if body["stale"] != true {
		t.Fatalf("stale entry gone after failed revalidation: %v", body)
	}
	waitUntil(t, "second revalidation published", func() bool {
		_, resp := doJSON(t, s.Handler(), "GET", "/v1/name/Wei%20Wang", "")
		return resp["version"].(float64) == 1 && resp["stale"] == nil
	})
	if got := s.reg.Counter("serve.revalidations").Value(); got != 2 {
		t.Errorf("serve.revalidations = %d, want 2", got)
	}
}

// TestDrainWaitsForInflight extends the obs drain test to the serving
// stack: a slow in-flight request completes with its real response while
// new requests get 503, and Drain returns only after the last in-flight
// request is done. Runs over a real listener via obs.ServeHandler — the
// exact stack cmd/distinctd ships.
func TestDrainWaitsForInflight(t *testing.T) {
	b := newStubBackend("Wei Wang")
	b.block = make(chan struct{})
	b.started = make(chan string, 1)
	s := newTestServer(t, b, nil)
	srv, err := obs.ServeHandler("127.0.0.1:0", s.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	type reply struct {
		code int
		body []byte
		err  error
	}
	slow := make(chan reply, 1)
	go func() {
		resp, err := http.Get(base + "/v1/name/Wei%20Wang")
		if err != nil {
			slow <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		slow <- reply{code: resp.StatusCode, body: raw}
	}()
	<-b.started // the slow request is inside its computation

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()

	// New requests are refused while the drain waits.
	waitUntil(t, "drain gate closed", func() bool {
		resp, err := http.Get(base + "/v1/name/Wei%20Wang")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned (%v) with a request still in flight", err)
	default:
	}

	close(b.block)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-slow
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request: code=%d err=%v", r.code, r.err)
	}
	var body map[string]any
	if err := json.Unmarshal(r.body, &body); err != nil {
		t.Fatalf("in-flight response body: %v", err)
	}
	if body["name"] != "Wei Wang" {
		t.Errorf("in-flight response: %v", body)
	}
}
