package serve

import (
	"container/list"
	"sync"
	"time"
)

// Negative-result cache for the 404 path: a count-bounded LRU of names known
// to have no references at a given database version. A miss for an unknown
// name still walks the backend's name index; fleets of probing clients (and
// typo storms) repeat the same unknown names, so remembering "not found at
// version V" turns those repeats into a map hit. Version-keyed like the
// result cache: an Insert bumps the version and every negative entry goes
// stale at once — a name absent at version V may well exist at V+1. Inside
// the stale-while-revalidate window a stale negative is still served (as a
// 404 marked stale) while a background flight re-checks the name at the new
// version; a name that just appeared is the one case staleness can hide,
// which is exactly what the window bounds.

// DefaultNegCacheEntries is the negative-cache capacity Options.
// NegCacheEntries = 0 selects. Entries are a map slot plus the name bytes,
// so even the default costs well under a megabyte.
const DefaultNegCacheEntries = 4096

type negEntry struct {
	name    string
	version int64
	elem    *list.Element
	// staleSince mirrors cacheEntry.staleSince: zero while fresh, set when
	// the entry is first observed at an older version than the probe.
	staleSince time.Time
}

// negCache is a count-bounded LRU of (name, version) not-found facts. Safe
// for concurrent use; nil disables (every method no-ops).
type negCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *negEntry
	m   map[string]*negEntry
	now func() time.Time // swappable clock for staleness tests
}

func newNegCache(capacity int) *negCache {
	return &negCache{cap: capacity, ll: list.New(), m: make(map[string]*negEntry), now: time.Now}
}

// get reports whether name is known-absent at version, and — when the known
// fact is from an older version inside the maxStale window — whether it is
// being served stale. Past the window (or with maxStale <= 0) an old entry
// is purged on the way through, mirroring resultCache.get.
func (c *negCache) get(name string, version int64, maxStale time.Duration) (hit, stale bool) {
	if c == nil {
		return false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[name]
	if !ok {
		return false, false
	}
	if e.version == version {
		c.ll.MoveToFront(e.elem)
		return true, false
	}
	if e.version < version && maxStale > 0 {
		now := c.now()
		if e.staleSince.IsZero() {
			e.staleSince = now
		}
		if now.Sub(e.staleSince) <= maxStale {
			c.ll.MoveToFront(e.elem)
			return true, true
		}
	}
	c.remove(e)
	return false, false
}

// put records that name had no references at version, evicting the
// least-recently-used entry past capacity. Returns how many entries were
// evicted for the serve.negcache_evictions counter.
func (c *negCache) put(name string, version int64) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[name]; ok {
		if prev.version >= version {
			return 0
		}
		c.remove(prev)
	}
	e := &negEntry{name: name, version: version}
	e.elem = c.ll.PushFront(e)
	c.m[name] = e
	var evicted int64
	for c.ll.Len() > c.cap && c.ll.Len() > 1 {
		back := c.ll.Back()
		c.remove(back.Value.(*negEntry))
		evicted++
	}
	return evicted
}

// drop forgets name unconditionally. The compute path calls it when a
// clean result is published: a positive fact at the current version
// supersedes any negative fact, stale or not — without this, a stale
// negative would keep winning the probe order over the freshly cached
// result until the stale window closed.
func (c *negCache) drop(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.m[name]; ok {
		c.remove(e)
	}
	c.mu.Unlock()
}

// remove unlinks e; callers hold mu.
func (c *negCache) remove(e *negEntry) {
	c.ll.Remove(e.elem)
	delete(c.m, e.name)
}

// Len reports how many names are cached (for tests).
func (c *negCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
