package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilRegistryAndEmptyContext(t *testing.T) {
	var r *Registry
	if err := r.Fire(context.Background(), "x"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	if got := r.Hits("x"); got != 0 {
		t.Fatalf("nil registry counted hits: %d", got)
	}
	if r.Firings() != nil {
		t.Fatal("nil registry logged firings")
	}
	if err := Point(context.Background(), "x"); err != nil {
		t.Fatalf("Point on plain context fired: %v", err)
	}
}

func TestOnHitError(t *testing.T) {
	r := NewRegistry(1)
	r.Set("p", Rule{OnHit: 3})
	ctx := With(context.Background(), r)
	for i := 1; i <= 5; i++ {
		err := Point(ctx, "p")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", i, err)
		}
	}
	if got := r.Hits("p"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
	fir := r.Firings()
	if len(fir) != 1 || fir[0] != (Firing{Point: "p", Hit: 3, Kind: "error"}) {
		t.Fatalf("firings = %+v", fir)
	}
}

func TestEveryAndCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	r := NewRegistry(1)
	r.Set("p", Rule{Every: 2, Err: sentinel})
	ctx := With(context.Background(), r)
	fired := 0
	for i := 1; i <= 6; i++ {
		if err := Point(ctx, "p"); err != nil {
			if !errors.Is(err, sentinel) {
				t.Fatalf("hit %d: wrong error %v", i, err)
			}
			if i%2 != 0 {
				t.Fatalf("fired on odd hit %d", i)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := NewRegistry(seed)
		r.Set("p", Rule{Prob: 0.5})
		ctx := With(context.Background(), r)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Point(ctx, "p") != nil)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-hit pattern")
	}
}

func TestPanicRule(t *testing.T) {
	r := NewRegistry(1)
	r.Set("p", Rule{OnHit: 1, Panic: "kaboom"})
	ctx := With(context.Background(), r)
	defer func() {
		v := recover()
		ip, ok := v.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want InjectedPanic", v, v)
		}
		if ip.Point != "p" || ip.Msg != "kaboom" {
			t.Fatalf("panic payload = %+v", ip)
		}
	}()
	_ = Point(ctx, "p")
	t.Fatal("point did not panic")
}

func TestDelayObservesContext(t *testing.T) {
	r := NewRegistry(1)
	r.Set("p", Rule{OnHit: 1, Delay: time.Minute})
	ctx, cancel := context.WithCancel(With(context.Background(), r))
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := Point(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("delayed point returned %v, want context.Canceled", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("delay ignored cancellation, took %v", d)
	}
}

func TestHookRunsAndCancelSurfaces(t *testing.T) {
	r := NewRegistry(1)
	base, cancel := context.WithCancel(context.Background())
	r.Set("p", Rule{OnHit: 1, Hook: cancel})
	ctx := With(base, r)
	err := Point(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel hook not surfaced: %v", err)
	}
	if fir := r.Firings(); len(fir) != 1 || fir[0].Kind != "hook" {
		t.Fatalf("firings = %+v", fir)
	}
}

func TestPanicError(t *testing.T) {
	pe := &PanicError{Value: "oops", Stack: []byte("stack")}
	var target *PanicError
	if !errors.As(error(pe), &target) {
		t.Fatal("errors.As failed on *PanicError")
	}
	if pe.Error() != "panic: oops" {
		t.Fatalf("Error() = %q", pe.Error())
	}
}
