// Package fault is a deterministic, stdlib-only fault-injection harness
// for the DISTINCT pipeline. Stage boundaries call Point(ctx, name); when a
// Registry travels in the context and holds a matching Rule, the point
// fires — returning an injected error, panicking, sleeping, or running a
// hook (e.g. a context cancel) — per a schedule that is a pure function of
// the registry seed, the point name, and the point's hit number, so chaos
// runs reproduce.
//
// The package follows the obs/trace nil convention: a nil *Registry (and a
// context carrying none) is the off switch. Point on a plain context is a
// single Value lookup that finds nothing and returns nil, so production
// paths pay nothing beyond that check at stage granularity; per-item hot
// loops should resolve the registry once with From and skip firing when it
// is nil.
//
// The package also hosts PanicError, the error recovery points (core's
// parallel workers, the per-name batch guard) use to carry a recovered
// panic and its stack across goroutines instead of crashing the process.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the default error an error-injecting rule returns,
// wrapped with the point name.
var ErrInjected = errors.New("injected fault")

// PanicError is a recovered panic converted into an error: the recovered
// value plus the stack of the goroutine that panicked. Recovery points use
// it so one pathological input becomes a reportable incident rather than a
// process crash; errors.As against *PanicError distinguishes "this stage
// panicked" from "this stage failed".
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// InjectedPanic is the value an injected panic panics with, so recovery
// layers (and tests) can tell injected panics from real ones and recover
// the point that fired.
type InjectedPanic struct {
	Point string
	Msg   string
}

func (p InjectedPanic) String() string { return "fault: " + p.Point + ": panic: " + p.Msg }

// Rule describes when and how one injection point fires. Exactly one of
// the action fields (Err / Panic / Delay / Hook) is normally set; a rule
// with no action set acts as an error rule returning ErrInjected. When
// several are set they compose in order hook, delay, panic, error.
type Rule struct {
	// OnHit fires the rule on the Nth time the point is hit (1-based).
	// Zero with Every and Prob zero fires on every hit.
	OnHit int64
	// Every fires the rule on every Nth hit (hit numbers divisible by it).
	Every int64
	// Prob fires the rule pseudo-randomly with this probability per hit,
	// derived deterministically from (seed, point, hit number) — the same
	// seed replays the same firing pattern.
	Prob float64

	// Err is returned from Point, wrapped with the point name. Nil with
	// Panic/Delay/Hook also unset means ErrInjected.
	Err error
	// Panic, when non-empty, panics with an InjectedPanic carrying it.
	Panic string
	// Delay, when positive, sleeps before returning; the sleep observes
	// ctx and returns ctx.Err() early if the context ends first.
	Delay time.Duration
	// Hook, when non-nil, runs when the rule fires (typically a context
	// cancel; the point re-checks ctx after running it).
	Hook func()
}

// matches reports whether the rule fires on hit n of point.
func (r Rule) matches(seed int64, point string, n int64) bool {
	switch {
	case r.OnHit > 0:
		return n == r.OnHit
	case r.Every > 0:
		return n%r.Every == 0
	case r.Prob > 0:
		return splitmix(uint64(seed)^hashString(point)^uint64(n)) < r.Prob
	default:
		return true
	}
}

// Firing records one fired injection, for assertions and chaos reports.
type Firing struct {
	Point string
	Hit   int64
	Kind  string // "error", "panic", "delay", "hook"
}

// Registry holds the fault schedule: one rule per point plus per-point hit
// counters and a log of what fired. The nil Registry never fires.
type Registry struct {
	seed int64

	mu    sync.Mutex
	rules map[string]Rule
	hits  map[string]int64
	log   []Firing
}

// NewRegistry returns an enabled registry whose probabilistic rules are
// driven by seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		seed:  seed,
		rules: make(map[string]Rule),
		hits:  make(map[string]int64),
	}
}

// Set installs (or, replacing, updates) the rule for a point.
func (r *Registry) Set(point string, rule Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[point] = rule
}

// Hits returns how many times the point has been hit (fired or not).
func (r *Registry) Hits(point string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[point]
}

// Firings returns a copy of the fired-injection log, in firing order.
func (r *Registry) Firings() []Firing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Firing(nil), r.log...)
}

// Fire counts a hit on the point and applies its rule if one matches.
// Safe on a nil registry (returns nil without counting).
func (r *Registry) Fire(ctx context.Context, point string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := r.hits[point] + 1
	r.hits[point] = n
	rule, ok := r.rules[point]
	fire := ok && rule.matches(r.seed, point, n)
	if fire {
		r.log = append(r.log, Firing{Point: point, Hit: n, Kind: ruleKind(rule)})
	}
	r.mu.Unlock()
	if !fire {
		return nil
	}
	if rule.Hook != nil {
		rule.Hook()
	}
	if rule.Delay > 0 {
		t := time.NewTimer(rule.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if rule.Panic != "" {
		panic(InjectedPanic{Point: point, Msg: rule.Panic})
	}
	if rule.Err != nil {
		return fmt.Errorf("fault: %s: %w", point, rule.Err)
	}
	if rule.Hook != nil || rule.Delay > 0 {
		// Hook/delay-only rules succeed, but surface a cancel the hook (or
		// the wait) may have caused so callers observe it immediately.
		return ctx.Err()
	}
	return fmt.Errorf("fault: %s: %w", point, ErrInjected)
}

// ruleKind names the rule's dominant action for the firing log.
func ruleKind(r Rule) string {
	switch {
	case r.Panic != "":
		return "panic"
	case r.Delay > 0:
		return "delay"
	case r.Err != nil:
		return "error"
	case r.Hook != nil:
		return "hook"
	default:
		return "error"
	}
}

// ctxKey is the context key a registry travels under.
type ctxKey struct{}

// With returns a context carrying the registry; the pipeline's injection
// points see it wherever that context flows.
func With(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the registry from ctx (nil when none travels in it). Hot
// loops call From once per stage and fire only on a non-nil registry.
func From(ctx context.Context) *Registry {
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

// Point counts a hit on the named injection point of whatever registry
// travels in ctx, applying its rule. With no registry it is a single
// context lookup returning nil — the production fast path.
func Point(ctx context.Context, name string) error {
	return From(ctx).Fire(ctx, name)
}

// splitmix maps x to [0,1) via the splitmix64 finalizer — a tiny, seeded,
// allocation-free uniform hash for probabilistic rules.
func splitmix(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
