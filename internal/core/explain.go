package core

import (
	"fmt"
	"sort"
	"strings"

	"distinct/internal/reldb"
	"distinct/internal/sim"
)

// PathContribution is one join path's share of a reference pair's combined
// similarity.
type PathContribution struct {
	Path reldb.JoinPath
	// Resem and Walk are the raw per-path similarities; WeightedResem and
	// WeightedWalk are after the engine's path weights.
	Resem, Walk                 float64
	WeightedResem, WeightedWalk float64
}

// Explanation breaks a pair's similarity down by join path, strongest
// contribution first — the answer to "why does the engine think these two
// references are (not) the same object?".
type Explanation struct {
	R1, R2        reldb.TupleID
	Resem         float64 // combined weighted set resemblance
	Walk          float64 // combined weighted symmetric walk probability
	Contributions []PathContribution
}

// Explain computes the per-path breakdown of the similarity between two
// references. Paths contributing nothing are omitted.
func (e *Engine) Explain(r1, r2 reldb.TupleID) *Explanation {
	n1 := e.ext.Neighborhoods(r1)
	n2 := e.ext.Neighborhoods(r2)
	ex := &Explanation{R1: r1, R2: r2}
	for p := range e.paths {
		r, wab, wba := sim.PairKernel(n1[p], n2[p])
		w := (wab + wba) / 2
		if r == 0 && w == 0 {
			continue
		}
		c := PathContribution{
			Path:          e.paths[p],
			Resem:         r,
			Walk:          w,
			WeightedResem: e.resemW[p] * r,
			WeightedWalk:  e.walkW[p] * w,
		}
		ex.Resem += c.WeightedResem
		ex.Walk += c.WeightedWalk
		ex.Contributions = append(ex.Contributions, c)
	}
	sort.Slice(ex.Contributions, func(i, j int) bool {
		a, b := ex.Contributions[i], ex.Contributions[j]
		if a.WeightedResem+a.WeightedWalk != b.WeightedResem+b.WeightedWalk {
			return a.WeightedResem+a.WeightedWalk > b.WeightedResem+b.WeightedWalk
		}
		return a.Path.String() < b.Path.String()
	})
	return ex
}

// Format renders the explanation as indented text, resolving the path
// descriptions against the engine's schema.
func (ex *Explanation) Format(schema *reldb.Schema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "similarity(ref %d, ref %d): resemblance %.6f, walk %.6g\n",
		ex.R1, ex.R2, ex.Resem, ex.Walk)
	if len(ex.Contributions) == 0 {
		b.WriteString("  no shared linkage on any join path\n")
		return b.String()
	}
	for _, c := range ex.Contributions {
		fmt.Fprintf(&b, "  %-90s resem %.4f (w %.4f)  walk %.6f (w %.6f)\n",
			c.Path.Describe(schema), c.Resem, c.WeightedResem, c.Walk, c.WeightedWalk)
	}
	return b.String()
}
