package core

import (
	"encoding/json"
	"fmt"
	"io"

	"distinct/internal/cluster"
)

// Model is a portable snapshot of a trained engine: the join paths (by
// canonical string form) with their learned weights, plus the clustering
// configuration. Train once, save, and load into any engine whose schema
// enumerates the same join paths — e.g. tomorrow's refresh of the same
// database.
type Model struct {
	// Format guards against incompatible layouts.
	Format int `json:"format"`
	// RefRelation and RefAttr document what the model disambiguates.
	RefRelation string `json:"refRelation"`
	RefAttr     string `json:"refAttr"`
	// Paths holds the canonical string form of each join path, in weight
	// order.
	Paths []string `json:"paths"`
	// ResemWeights and WalkWeights are the per-path weights (non-negative,
	// summing to 1).
	ResemWeights []float64 `json:"resemWeights"`
	WalkWeights  []float64 `json:"walkWeights"`
	// Measure and MinSim record the clustering configuration the model was
	// tuned with, for documentation; ApplyModel does not override them.
	Measure string  `json:"measure"`
	MinSim  float64 `json:"minSim"`
}

// modelFormat is bumped on incompatible changes.
const modelFormat = 1

// ExportModel snapshots the engine's current weights.
func (e *Engine) ExportModel() *Model {
	m := &Model{
		Format:       modelFormat,
		RefRelation:  e.cfg.RefRelation,
		RefAttr:      e.cfg.RefAttr,
		ResemWeights: append([]float64(nil), e.resemW...),
		WalkWeights:  append([]float64(nil), e.walkW...),
		Measure:      e.cfg.Measure.String(),
		MinSim:       e.cfg.MinSim,
	}
	for _, p := range e.paths {
		m.Paths = append(m.Paths, p.String())
	}
	return m
}

// ApplyModel installs a saved model's weights into the engine. The model's
// path list must match the engine's enumerated paths exactly (same schema,
// same MaxPathLen, same exclusions); a mismatch is an error rather than a
// silent misalignment.
func (e *Engine) ApplyModel(m *Model) error {
	if m.Format != modelFormat {
		return fmt.Errorf("core: model format %d unsupported (want %d)", m.Format, modelFormat)
	}
	if m.RefRelation != e.cfg.RefRelation || m.RefAttr != e.cfg.RefAttr {
		return fmt.Errorf("core: model disambiguates %s.%s, engine %s.%s",
			m.RefRelation, m.RefAttr, e.cfg.RefRelation, e.cfg.RefAttr)
	}
	if len(m.Paths) != len(e.paths) {
		return fmt.Errorf("core: model has %d paths, engine enumerates %d", len(m.Paths), len(e.paths))
	}
	for i, p := range e.paths {
		if m.Paths[i] != p.String() {
			return fmt.Errorf("core: path %d mismatch: model %q, engine %q", i, m.Paths[i], p)
		}
	}
	if len(m.ResemWeights) != len(e.paths) || len(m.WalkWeights) != len(e.paths) {
		return fmt.Errorf("core: model weight vectors do not cover %d paths", len(e.paths))
	}
	e.resemW = normalize(m.ResemWeights)
	e.walkW = normalize(m.WalkWeights)
	return nil
}

// SaveModel writes the engine's current weights as JSON.
func (e *Engine) SaveModel(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.ExportModel())
}

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	return &m, nil
}

// MeasureFromString parses a cluster.Measure name as produced by
// Measure.String; used when reconstructing configuration from a model.
func MeasureFromString(s string) (cluster.Measure, error) {
	for _, m := range []cluster.Measure{
		cluster.Combined, cluster.ResemOnly, cluster.WalkOnly,
		cluster.CombinedArithmetic, cluster.SingleLink, cluster.CompleteLink,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown measure %q", s)
}
