package core

import (
	"math"
	"testing"

	"distinct/internal/cluster"
)

func TestPathSimilaritiesAndCombine(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")[:12]
	pm := e.PathSimilarities(refs)
	if pm.NumRefs() != 12 {
		t.Fatalf("NumRefs = %d", pm.NumRefs())
	}
	if len(pm.R) != len(e.Paths()) || len(pm.W) != len(e.Paths()) {
		t.Fatal("per-path matrix count mismatch")
	}
	// Per-path resemblance symmetric and bounded.
	for p := range pm.R {
		for i := range refs {
			for j := range refs {
				if pm.R[p][i][j] != pm.R[p][j][i] {
					t.Fatalf("path %d resemblance asymmetric", p)
				}
				if pm.R[p][i][j] < 0 || pm.R[p][i][j] > 1+1e-9 {
					t.Fatalf("path %d resemblance out of range: %v", p, pm.R[p][i][j])
				}
				if pm.W[p][i][j] < 0 {
					t.Fatalf("negative walk prob")
				}
			}
		}
	}
	// Combine under the engine's weights reproduces Similarities.
	rw, ww := e.Weights()
	got := Combine(pm, rw, ww)
	want := e.Similarities(refs)
	for i := range refs {
		for j := range refs {
			if math.Abs(got.R[i][j]-want.R[i][j]) > 1e-12 {
				t.Fatalf("Combine R[%d][%d] = %v, Similarities %v", i, j, got.R[i][j], want.R[i][j])
			}
			if math.Abs(got.W[i][j]-want.W[i][j]) > 1e-12 {
				t.Fatalf("Combine W[%d][%d] = %v, Similarities %v", i, j, got.W[i][j], want.W[i][j])
			}
		}
	}
	// Zero weights zero out the combination.
	zero := make([]float64, len(rw))
	z := Combine(pm, zero, zero)
	for i := range refs {
		for j := range refs {
			if z.R[i][j] != 0 || z.W[i][j] != 0 {
				t.Fatal("zero weights produced nonzero similarity")
			}
		}
	}
	// Empty matrices.
	if (&PathMatrices{}).NumRefs() != 0 {
		t.Error("empty PathMatrices NumRefs != 0")
	}
}

func TestMergeProfile(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	refs := e.RefsForName("Wei Wang")
	prof := e.MergeProfile(refs)
	// A full profile merges n refs down to one cluster: n-1 steps.
	if len(prof) != len(refs)-1 {
		t.Fatalf("profile has %d steps for %d refs", len(prof), len(refs))
	}
	if prof[0].SizeA != 1 || prof[0].SizeB != 1 {
		t.Errorf("first merge sizes %d+%d, want singletons", prof[0].SizeA, prof[0].SizeB)
	}
	last := prof[len(prof)-1]
	if last.SizeA+last.SizeB != len(refs) {
		t.Errorf("last merge forms %d refs, want %d", last.SizeA+last.SizeB, len(refs))
	}
	// Short inputs.
	if e.MergeProfile(refs[:1]) != nil {
		t.Error("profile for one ref should be nil")
	}
	if e.MergeProfile(nil) != nil {
		t.Error("profile for no refs should be nil")
	}
}

func TestClusterMatrixMapsIndexes(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Bin Yu")
	m := e.Similarities(refs)
	groups := ClusterMatrix(refs, m, cluster.Combined, 0.005)
	seen := map[int32]bool{}
	total := 0
	for _, g := range groups {
		for _, r := range g {
			if seen[int32(r)] {
				t.Fatal("duplicate ref across groups")
			}
			seen[int32(r)] = true
			total++
		}
	}
	if total != len(refs) {
		t.Fatalf("groups cover %d of %d refs", total, len(refs))
	}
}

func TestEngineTimingsAccessor(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	tm := e.Timings()
	if tm.Expand <= 0 || tm.Enumerate < 0 {
		t.Errorf("construction timings %+v not recorded", tm)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	tm = e.Timings()
	if tm.TotalTrain <= 0 || tm.TrainSVM <= 0 {
		t.Errorf("training timings %+v not recorded", tm)
	}
}
