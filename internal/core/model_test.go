package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"distinct/internal/cluster"
)

func TestModelRoundTrip(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh engine (uniform weights) adopts the saved weights exactly.
	e2 := newTestEngine(t, w, true)
	m, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ApplyModel(m); err != nil {
		t.Fatal(err)
	}
	r1, w1 := e.Weights()
	r2, w2 := e2.Weights()
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-15 || math.Abs(w1[i]-w2[i]) > 1e-15 {
			t.Fatalf("weights differ at %d: %v/%v vs %v/%v", i, r1[i], w1[i], r2[i], w2[i])
		}
	}
	// Same clustering behaviour after the transfer.
	a, err := e.DisambiguateName("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.DisambiguateName("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("clusterings differ: %d vs %d groups", len(a), len(b))
	}
}

func TestApplyModelValidation(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	m := e.ExportModel()

	bad := *m
	bad.Format = 99
	if err := e.ApplyModel(&bad); err == nil {
		t.Error("wrong format accepted")
	}
	bad = *m
	bad.RefAttr = "other"
	if err := e.ApplyModel(&bad); err == nil {
		t.Error("wrong reference attribute accepted")
	}
	bad = *m
	bad.Paths = bad.Paths[1:]
	if err := e.ApplyModel(&bad); err == nil {
		t.Error("short path list accepted")
	}
	bad = *m
	bad.Paths = append([]string(nil), m.Paths...)
	bad.Paths[0] = "Bogus>edge>Path"
	if err := e.ApplyModel(&bad); err == nil {
		t.Error("mismatched path accepted")
	}
	bad = *m
	bad.ResemWeights = bad.ResemWeights[:1]
	if err := e.ApplyModel(&bad); err == nil {
		t.Error("short weights accepted")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestModelDocumentsConfig(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	m := e.ExportModel()
	if m.Measure != "combined" || m.MinSim != 0.005 {
		t.Errorf("model config %q/%v", m.Measure, m.MinSim)
	}
	if m.RefRelation != "Publish" || m.RefAttr != "author" {
		t.Errorf("model reference %s.%s", m.RefRelation, m.RefAttr)
	}
}

func TestMeasureFromString(t *testing.T) {
	for _, m := range []cluster.Measure{
		cluster.Combined, cluster.ResemOnly, cluster.WalkOnly,
		cluster.CombinedArithmetic, cluster.SingleLink, cluster.CompleteLink,
	} {
		got, err := MeasureFromString(m.String())
		if err != nil || got != m {
			t.Errorf("round trip of %v failed: %v %v", m, got, err)
		}
	}
	if _, err := MeasureFromString("nope"); err == nil {
		t.Error("unknown measure accepted")
	}
}
