package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"distinct/internal/fault"
	"distinct/internal/reldb"
)

func TestDisambiguateNameGuardedCleanMatchesDirect(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	groups, inc, err := e.DisambiguateNameGuarded(context.Background(), "Wei Wang", BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inc != nil {
		t.Fatalf("clean run produced incident %+v", inc)
	}
	direct, err := e.DisambiguateName("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(direct) {
		t.Fatalf("guarded found %d groups, direct %d", len(groups), len(direct))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(e.RefsForName("Wei Wang")) {
		t.Fatalf("groups cover %d of %d refs", total, len(e.RefsForName("Wei Wang")))
	}
}

func TestDisambiguateNameGuardedUnknownName(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	if _, _, err := e.DisambiguateNameGuarded(context.Background(), "No Such Name", BatchOptions{}); err == nil {
		t.Fatal("unknown name did not error")
	}
}

func TestDisambiguateNameGuardedPanicIncident(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	f := fault.NewRegistry(1)
	f.Set("core.cluster", fault.Rule{OnHit: 1, Panic: "injected cluster panic"})
	refs := e.RefsForName("Wei Wang")
	groups, inc, err := e.DisambiguateNameGuarded(fault.With(context.Background(), f), "Wei Wang", BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inc == nil || inc.Reason != IncidentPanic {
		t.Fatalf("want panic incident, got %+v", inc)
	}
	if inc.Elapsed <= 0 {
		t.Error("incident Elapsed not stamped")
	}
	// Conservative fallback: all refs in one group, nothing dropped.
	if len(groups) != 1 || len(groups[0]) != len(refs) {
		t.Fatalf("fallback groups %v, want one group of %d refs", len(groups), len(refs))
	}
}

func TestDisambiguateNameGuardedErrorIncident(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	f := fault.NewRegistry(1)
	f.Set("core.similarities", fault.Rule{OnHit: 1, Err: errors.New("injected similarity failure")})
	groups, inc, err := e.DisambiguateNameGuarded(fault.With(context.Background(), f), "Bin Yu", BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inc == nil || inc.Reason != IncidentError {
		t.Fatalf("want error incident, got %+v", inc)
	}
	if len(groups) != 1 {
		t.Fatalf("fallback groups = %d, want 1", len(groups))
	}
}

func TestDisambiguateNameGuardedTimeoutLadder(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// An injected delay far past the budget forces the first attempt over;
	// the rule fires once, so the degraded retry runs clean and the name
	// completes with a degraded incident — real groups, reduced path set.
	f := fault.NewRegistry(1)
	f.Set("core.similarities", fault.Rule{OnHit: 1, Delay: 10 * time.Second})
	groups, inc, err := e.DisambiguateNameGuarded(fault.With(context.Background(), f), "Wei Wang",
		BatchOptions{NameTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if inc == nil || inc.Reason != IncidentDegraded {
		t.Fatalf("want degraded incident, got %+v", inc)
	}
	if len(groups) == 0 {
		t.Fatal("degraded retry returned no groups")
	}
}

func TestDisambiguateNameGuardedForceDegraded(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	refs := e.RefsForName("Wei Wang")
	groups, inc, err := e.DisambiguateNameGuarded(context.Background(), "Wei Wang",
		BatchOptions{ForceDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc == nil || inc.Reason != IncidentDegraded || inc.Stage != "brownout" {
		t.Fatalf("want degraded incident with stage brownout, got %+v", inc)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(refs) {
		t.Fatalf("forced-degraded groups cover %d of %d refs", total, len(refs))
	}
}

func TestDisambiguateNameGuardedRetryGateRefused(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// Every attempt blows the budget; a closed retry gate must keep the
	// ladder from even starting the degraded retry — one attempt, straight
	// to the conservative single group as a timeout incident.
	f := fault.NewRegistry(1)
	f.Set("core.similarities", fault.Rule{Every: 1, Delay: 10 * time.Second})
	refs := e.RefsForName("Wei Wang")
	gateCalls := 0
	groups, inc, err := e.DisambiguateNameGuarded(fault.With(context.Background(), f), "Wei Wang",
		BatchOptions{
			NameTimeout: 100 * time.Millisecond,
			RetryGate:   func() bool { gateCalls++; return false },
		})
	if err != nil {
		t.Fatal(err)
	}
	if gateCalls != 1 {
		t.Fatalf("retry gate consulted %d times, want 1", gateCalls)
	}
	if inc == nil || inc.Reason != IncidentTimeout {
		t.Fatalf("want timeout incident, got %+v", inc)
	}
	if got := f.Hits("core.similarities"); got != 1 {
		t.Fatalf("similarities attempted %d times with a closed gate, want 1", got)
	}
	if len(groups) != 1 || len(groups[0]) != len(refs) {
		t.Fatalf("fallback groups %d, want one group of %d refs", len(groups), len(refs))
	}
}

func TestDisambiguateNameGuardedParentCancelled(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	groups, inc, err := e.DisambiguateNameGuarded(ctx, "Wei Wang", BatchOptions{})
	if err == nil {
		t.Fatal("cancelled parent did not error")
	}
	if groups != nil || inc != nil {
		t.Fatalf("cancelled parent returned groups=%v inc=%v, want nil/nil", groups, inc)
	}
}

func TestNamesWithRefs(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	names := e.NamesWithRefs(2)
	if len(names) == 0 {
		t.Fatal("no names with 2+ refs")
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not strictly sorted at %d: %q, %q", i, names[i-1], names[i])
		}
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
		if got := len(e.db.Referencing(e.cfg.RefRelation, e.cfg.RefAttr, n)); got < 2 {
			t.Errorf("%q has %d refs, below threshold", n, got)
		}
	}
	for _, amb := range w.AmbiguousNames() {
		if !seen[amb] {
			t.Errorf("ambiguous name %q missing from work list", amb)
		}
	}
	// minRefs clamps at 1; every listed author name must then appear iff it
	// has at least one reference.
	all := e.NamesWithRefs(0)
	if len(all) < len(names) {
		t.Fatalf("minRefs=0 returned %d names, fewer than minRefs=2's %d", len(all), len(names))
	}
	var refs []reldb.TupleID
	for _, n := range all {
		refs = e.RefsForName(n)
		if len(refs) < 1 {
			t.Errorf("%q listed with no references", n)
		}
	}
}
