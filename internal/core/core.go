// Package core implements the DISTINCT methodology end to end (Yin, Han,
// Yu; ICDE 2007): given a relational database and a relation containing
// references that share names, it
//
//  1. expands attribute values into tuples (Section 2.1),
//  2. enumerates the join paths from the reference relation,
//  3. optionally learns one weight per join path for each of the two
//     similarity measures, using an SVM over an automatically constructed
//     training set (Section 3),
//  4. computes pairwise similarities between same-named references —
//     weighted set resemblance and weighted random walk probability — and
//  5. groups the references with agglomerative clustering under the
//     composite measure (Section 4).
//
// The package is the engine; the public façade for library users is the
// repository root package distinct.
package core

import (
	"context"
	"fmt"
	"time"

	"distinct/internal/cluster"
	"distinct/internal/fault"
	"distinct/internal/obs"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
	"distinct/internal/sim"
	"distinct/internal/svm"
	"distinct/internal/trainset"
)

// Config tells the engine where the references live and how to process
// them. Zero-valued fields take the documented defaults.
type Config struct {
	// RefRelation and RefAttr locate the references to disambiguate, e.g.
	// Publish.author: RefAttr must be a foreign key to the relation keyed by
	// the shared names.
	RefRelation, RefAttr string

	// SkipExpand lists "Relation.attr" attributes excluded from
	// attribute-value expansion (free text such as paper titles).
	SkipExpand []string

	// MaxPathLen caps join-path length. Default 4.
	MaxPathLen int

	// Supervised selects SVM-learned join-path weights (the full DISTINCT);
	// when false every path gets the same weight, giving the unsupervised
	// variants of the paper's Figure 4.
	Supervised bool

	// Measure selects the cluster similarity measure. Default
	// cluster.Combined (DISTINCT's composite measure).
	Measure cluster.Measure

	// MinSim is the clustering stop threshold. The paper runs DISTINCT with
	// min-sim 0.0005 on its unnormalised learned weights; this engine
	// normalises path weights to sum 1, which shifts the similarity scale,
	// so the equivalent default here is DefaultMinSim.
	MinSim float64

	// Train configures automatic training-set construction.
	Train trainset.Options

	// SVM configures the linear SVM solver.
	SVM svm.Options

	// Workers bounds the goroutines used for feature extraction (the
	// dominant cost). 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int

	// Obs, when non-nil, receives per-stage spans (wall time, items,
	// allocations) and pipeline counters for the whole run: expansion,
	// path enumeration, training, similarity matrices, blocking, batch
	// disambiguation, and clustering. Nil (the default) costs nothing on
	// any hot path; see internal/obs and DESIGN.md §8 for the taxonomy.
	Obs *obs.Registry

	// Trace, when non-nil, records decision-level provenance under the obs
	// aggregates: every pipeline stage becomes a parented span in the
	// trace's tree, the clusterer emits one event per merge and a final cut
	// event, training emits one path_weight event per learned join-path
	// weight, and — when the trace was built with SamplePairEvery — the
	// similarity stage attaches Explain-style per-path breakdowns for a
	// deterministic sample of reference pairs. Nil (the default) costs a
	// nil check per stage; see internal/obs/trace and DESIGN.md §9.
	Trace *trace.Trace
}

// DefaultMinSim is the default clustering threshold. It plays the role of
// the paper's min-sim = 0.0005: the absolute value differs because this
// engine normalises the learned path weights to sum 1 (the paper's raw SVM
// weights are larger), which rescales all similarities by a constant.
const DefaultMinSim = 0.01

func (c Config) withDefaults() Config {
	if c.MaxPathLen <= 0 {
		c.MaxPathLen = 4
	}
	if c.MinSim == 0 {
		c.MinSim = DefaultMinSim
	}
	return c
}

// Timings records how long each pipeline stage took; the experiments
// harness reports them next to the paper's 62.1 s figure.
type Timings struct {
	Expand       time.Duration
	Enumerate    time.Duration
	CompilePlans time.Duration
	TrainSet     time.Duration
	Features     time.Duration
	TrainSVM     time.Duration
	TotalTrain   time.Duration
}

// TrainReport summarises a training run.
type TrainReport struct {
	NumPaths      int
	NumPositive   int
	NumNegative   int
	NumRareNames  int
	ResemAccuracy float64 // training accuracy of the resemblance model
	WalkAccuracy  float64
	ResemWeights  []float64 // per-path, clipped and normalised
	WalkWeights   []float64
	Timings       Timings
}

// Engine is a ready-to-use DISTINCT instance over one database.
type Engine struct {
	cfg   Config
	db    *reldb.Database // attribute-expanded
	idMap map[reldb.TupleID]reldb.TupleID
	paths []reldb.JoinPath
	ext   *sim.Extractor

	resemW []float64 // per-path weights, non-negative, sum 1
	walkW  []float64

	// matCache, when non-nil (EnableMatrixReuse), caches per-block
	// PathMatrices keyed on (refs, db version) so weight/threshold sweeps
	// recombine instead of recompute. Nil (the default) costs one pointer
	// check per similarity stage.
	matCache *matrixCache

	timings Timings
	obs     *obs.Registry // nil when observability is off
	tr      *trace.Trace  // nil when tracing is off
}

// root returns the trace's root span (nil when tracing is off), the default
// parent for stage spans opened outside a batch sweep.
func (e *Engine) root() *trace.Span { return e.tr.Root() }

// SetTrace attaches (or, with nil, detaches) a trace after construction, so
// a long-lived engine can record each batch run into its own trace. The
// construction-time stages (expand, enumerate) belong to whatever trace was
// set in Config at that point.
func (e *Engine) SetTrace(tr *trace.Trace) { e.tr = tr }

// NewEngine expands the database, enumerates join paths, and installs
// uniform path weights (call Train to replace them with learned weights).
// The input database is not modified.
func NewEngine(db *reldb.Database, cfg Config) (*Engine, error) {
	return NewEngineCtx(context.Background(), db, cfg)
}

// NewEngineCtx is NewEngine under a context: the expand and enumerate
// stages observe cancellation at their boundaries and return the context's
// error wrapped with the stage name.
func NewEngineCtx(ctx context.Context, db *reldb.Database, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	rs := db.Schema.Relation(cfg.RefRelation)
	if rs == nil {
		return nil, fmt.Errorf("core: unknown reference relation %q", cfg.RefRelation)
	}
	ai := rs.AttrIndex(cfg.RefAttr)
	if ai < 0 {
		return nil, fmt.Errorf("core: relation %q has no attribute %q", cfg.RefRelation, cfg.RefAttr)
	}
	if rs.Attrs[ai].FK == "" {
		return nil, fmt.Errorf("core: reference attribute %s.%s must be a foreign key to the name relation", cfg.RefRelation, cfg.RefAttr)
	}

	if err := checkStage(ctx, "expand"); err != nil {
		return nil, err
	}
	t0 := time.Now()
	sp := cfg.Obs.StartStage("expand")
	tsp := cfg.Trace.Start("expand")
	ex, idMap, err := reldb.ExpandAttributes(db, cfg.SkipExpand...)
	if err != nil {
		return nil, fmt.Errorf("core: attribute expansion: %w", err)
	}
	sp.End(ex.NumTuples())
	tsp.SetAttrs(trace.Int("tuples", int64(ex.NumTuples())))
	tsp.End()
	expandDur := time.Since(t0)

	if err := checkStage(ctx, "enumerate"); err != nil {
		return nil, err
	}
	t0 = time.Now()
	sp = cfg.Obs.StartStage("enumerate")
	tsp = cfg.Trace.Start("enumerate")
	paths := reldb.EnumerateJoinPaths(ex.Schema, cfg.RefRelation, reldb.EnumerateOptions{
		MaxLen: cfg.MaxPathLen,
		ExcludeFirst: []reldb.Step{
			{Rel: cfg.RefRelation, Attr: cfg.RefAttr, Forward: true},
		},
	})
	sp.End(len(paths))
	tsp.SetAttrs(trace.Int("paths", int64(len(paths))))
	tsp.End()
	enumDur := time.Since(t0)
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: no join paths from %s within length %d", cfg.RefRelation, cfg.MaxPathLen)
	}

	e := &Engine{
		cfg:   cfg,
		db:    ex,
		idMap: idMap,
		paths: paths,
		ext:   sim.NewExtractor(ex, paths),
		obs:   cfg.Obs,
		tr:    cfg.Trace,
	}
	e.ext.SetMetrics(cfg.Obs)
	e.ext.SetWorkers(cfg.Workers)
	e.obs.Gauge("engine.paths").Set(float64(len(paths)))
	e.timings.Expand = expandDur
	e.timings.Enumerate = enumDur

	// Compile the join paths into CSR plans now, so the one-off cost lands
	// in engine construction (and its own stage span) instead of inflating
	// the first propagation. Distinct hops compile in parallel under
	// Config.Workers; the plan is shared read-only by all workers.
	t0 = time.Now()
	sp = cfg.Obs.StartStage("compile_plans")
	tsp = cfg.Trace.Start("compile_plans")
	before := ex.HopCompiles()
	hops, edges, _ := e.ext.CompilePlansCtx(ctx)
	sp.End(hops)
	tsp.SetAttrs(trace.Int("hops", int64(hops)), trace.Int("edges", int64(edges)))
	if ex.HopCompiles() == before {
		// Every hop plan came out of the database's shared cache — an engine
		// opened over an already-warm database compiles nothing.
		tsp.SetAttrs(trace.Bool("reused", true))
	}
	tsp.End()
	e.timings.CompilePlans = time.Since(t0)
	e.obs.Counter("prop.csr_hops").Add(int64(hops))
	e.obs.Counter("prop.csr_edges").Add(int64(edges))
	// Wall time is a gauge like the other duration-valued observations:
	// counters are reserved for exactly reproducible item counts.
	e.obs.Gauge("prop.csr_compile_ms").Set(float64(e.timings.CompilePlans) / float64(time.Millisecond))

	e.SetUniformWeights()
	return e, nil
}

// DB returns the attribute-expanded database the engine works on.
func (e *Engine) DB() *reldb.Database { return e.db }

// Paths returns the enumerated join paths in weight order.
func (e *Engine) Paths() []reldb.JoinPath { return e.paths }

// Weights returns the current per-path weights (resemblance, walk).
func (e *Engine) Weights() (resem, walk []float64) {
	return append([]float64(nil), e.resemW...), append([]float64(nil), e.walkW...)
}

// Timings returns stage durations observed so far.
func (e *Engine) Timings() Timings { return e.timings }

// MapRef translates a tuple ID of the original (pre-expansion) database
// into the engine's database. IDs already belonging to the engine's
// database are the caller's responsibility; unknown IDs map to themselves
// only if present in the map, otherwise InvalidTuple.
func (e *Engine) MapRef(id reldb.TupleID) reldb.TupleID {
	if nid, ok := e.idMap[id]; ok {
		return nid
	}
	return reldb.InvalidTuple
}

// MapRefs translates a slice of original tuple IDs.
func (e *Engine) MapRefs(ids []reldb.TupleID) []reldb.TupleID {
	out := make([]reldb.TupleID, len(ids))
	for i, id := range ids {
		out[i] = e.MapRef(id)
	}
	return out
}

// SetUniformWeights installs equal weights on every join path; this is the
// "without supervised learning" configuration of Figure 4.
func (e *Engine) SetUniformWeights() {
	n := len(e.paths)
	e.resemW = make([]float64, n)
	e.walkW = make([]float64, n)
	for i := range e.resemW {
		e.resemW[i] = 1 / float64(n)
		e.walkW[i] = 1 / float64(n)
	}
}

// SetWeights installs explicit per-path weights (clipped at zero and
// normalised to sum 1). Mostly useful for tests and ablations.
func (e *Engine) SetWeights(resem, walk []float64) error {
	if len(resem) != len(e.paths) || len(walk) != len(e.paths) {
		return fmt.Errorf("core: weight vectors must have %d entries", len(e.paths))
	}
	e.resemW = normalize(resem)
	e.walkW = normalize(walk)
	return nil
}

// normalize clips negatives to zero and scales to sum 1 (uniform if all
// weights vanish).
func normalize(w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for i, v := range w {
		if v > 0 {
			out[i] = v
			sum += v
		}
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Train builds the automatic training set, learns SVM models for both
// similarity measures, and installs the learned path weights. If the
// engine's configuration is unsupervised, Train still reports the would-be
// models but leaves uniform weights in place.
func (e *Engine) Train() (*TrainReport, error) {
	return e.TrainCtx(context.Background())
}

// TrainCtx is Train under a context: cancellation is observed at the
// trainset / features / train_svm stage boundaries, between feature
// extraction items, and between SVM optimisation passes, and returns the
// context's error wrapped with the stage name.
func (e *Engine) TrainCtx(ctx context.Context) (*TrainReport, error) {
	total := time.Now()
	if err := checkStage(ctx, "trainset"); err != nil {
		return nil, err
	}
	t0 := time.Now()
	sp := e.obs.StartStage("trainset")
	tsp := e.root().Start("trainset")
	ts, err := trainset.Build(e.db, e.cfg.RefRelation, e.cfg.RefAttr, e.cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("core: training set: %w", err)
	}
	sp.End(len(ts.Pairs))
	tsp.SetAttrs(
		trace.Int("pairs", int64(len(ts.Pairs))),
		trace.Int("positive", int64(ts.NumPositive)),
		trace.Int("negative", int64(ts.NumNegative)))
	tsp.End()
	e.obs.Counter("trainset.positive").Add(int64(ts.NumPositive))
	e.obs.Counter("trainset.negative").Add(int64(ts.NumNegative))
	e.timings.TrainSet = time.Since(t0)

	if err := checkStage(ctx, "features"); err != nil {
		return nil, err
	}
	t0 = time.Now()
	sp = e.obs.StartStage("features")
	tsp = e.root().Start("features", trace.Int("pairs", int64(len(ts.Pairs))))
	refs := make([]reldb.TupleID, 0, 2*len(ts.Pairs))
	for _, p := range ts.Pairs {
		refs = append(refs, p.R1, p.R2)
	}
	if err := e.ext.PrefetchCtx(ctx, refs, e.cfg.Workers, tsp); err != nil {
		tsp.End()
		return nil, stageErr("prefetch", err)
	}
	resemEx := make([]svm.Example, len(ts.Pairs))
	walkEx := make([]svm.Example, len(ts.Pairs))
	err = parallelForCtx(ctx, len(ts.Pairs), e.cfg.Workers, func(i int) error {
		p := ts.Pairs[i]
		resemEx[i] = svm.Example{X: e.ext.ResemVector(p.R1, p.R2), Y: p.Label}
		walkEx[i] = svm.Example{X: e.ext.WalkVector(p.R1, p.R2), Y: p.Label}
		return nil
	})
	if err != nil {
		tsp.End()
		return nil, stageErr("features", err)
	}
	sp.End(len(ts.Pairs))
	tsp.End()
	e.timings.Features = time.Since(t0)

	// Per-path similarities span orders of magnitude; scale each feature to
	// [0,1] for training, then fold the scale factors back into the weights
	// so they apply to raw similarities at clustering time.
	if err := checkStage(ctx, "train_svm"); err != nil {
		return nil, err
	}
	t0 = time.Now()
	sp = e.obs.StartStage("train_svm")
	tsp = e.root().Start("train_svm", trace.Int("paths", int64(len(e.paths))))
	resemScaler := svm.FitScaler(resemEx)
	walkScaler := svm.FitScaler(walkEx)
	resemScaled := resemScaler.Transform(resemEx)
	walkScaled := walkScaler.Transform(walkEx)
	resemModel, err := svm.TrainDCDCtx(ctx, resemScaled, e.cfg.SVM)
	if err != nil {
		tsp.End()
		return nil, stageErr("train_svm", fmt.Errorf("resemblance SVM: %w", err))
	}
	walkModel, err := svm.TrainDCDCtx(ctx, walkScaled, e.cfg.SVM)
	if err != nil {
		tsp.End()
		return nil, stageErr("train_svm", fmt.Errorf("walk SVM: %w", err))
	}
	sp.End(2 * len(ts.Pairs))
	e.timings.TrainSVM = time.Since(t0)
	e.timings.TotalTrain = time.Since(total)

	rep := &TrainReport{
		NumPaths:      len(e.paths),
		NumPositive:   ts.NumPositive,
		NumNegative:   ts.NumNegative,
		NumRareNames:  len(ts.RareNames),
		ResemAccuracy: svm.Accuracy(resemModel, resemScaled),
		WalkAccuracy:  svm.Accuracy(walkModel, walkScaled),
		ResemWeights:  normalize(resemScaler.FoldWeights(resemModel.PositiveWeights())),
		WalkWeights:   normalize(walkScaler.FoldWeights(walkModel.PositiveWeights())),
		Timings:       e.timings,
	}
	e.obs.Gauge("svm.resem_accuracy").Set(rep.ResemAccuracy)
	e.obs.Gauge("svm.walk_accuracy").Set(rep.WalkAccuracy)
	if tsp != nil {
		// One event per learned path weight; the run report renders these
		// as the join-path weight table.
		for p := range e.paths {
			tsp.Event("path_weight",
				trace.String("path", e.paths[p].String()),
				trace.Float("resem_w", rep.ResemWeights[p]),
				trace.Float("walk_w", rep.WalkWeights[p]))
		}
		tsp.SetAttrs(
			trace.Float("resem_accuracy", rep.ResemAccuracy),
			trace.Float("walk_accuracy", rep.WalkAccuracy),
			trace.Bool("supervised", e.cfg.Supervised))
	}
	tsp.End()
	if e.cfg.Supervised {
		e.resemW = rep.ResemWeights
		e.walkW = rep.WalkWeights
	}
	return rep, nil
}

// RefsForName returns the references carrying the given name, in the
// engine's (expanded) database.
func (e *Engine) RefsForName(name string) []reldb.TupleID {
	src := e.db.Referencing(e.cfg.RefRelation, e.cfg.RefAttr, name)
	return append([]reldb.TupleID(nil), src...)
}

// PathMatrices holds per-join-path pairwise similarities among a fixed
// reference list: R[p][i][j] is the set resemblance along path p between
// references i and j, W[p][i][j] the directed walk probability from i to j.
// They are the expensive part of disambiguation; computing them once lets
// callers re-combine them under many weightings (the Figure 4 variants and
// the min-sim sweeps) without re-propagating.
//
// Each matrix set is backed by one flat path-major row-major []float64
// (RFlat, WFlat; cell (p,i,j) lives at p·n² + i·n + j). R and W are row
// views sliced into the backing arrays, kept so indexing code and tests
// read naturally; writes through either form are visible in both.
type PathMatrices struct {
	R, W         [][][]float64
	RFlat, WFlat []float64
}

// NewPathMatrices allocates zeroed per-path n×n matrix pairs with flat
// backing arrays.
func NewPathMatrices(numPaths, n int) *PathMatrices {
	pm := &PathMatrices{
		R:     make([][][]float64, numPaths),
		W:     make([][][]float64, numPaths),
		RFlat: make([]float64, numPaths*n*n),
		WFlat: make([]float64, numPaths*n*n),
	}
	rows := make([][]float64, 2*numPaths*n) // all row headers in one block
	for p := 0; p < numPaths; p++ {
		pm.R[p], rows = rows[:n:n], rows[n:]
		pm.W[p], rows = rows[:n:n], rows[n:]
		for i := 0; i < n; i++ {
			off := p*n*n + i*n
			pm.R[p][i] = pm.RFlat[off : off+n : off+n]
			pm.W[p][i] = pm.WFlat[off : off+n : off+n]
		}
	}
	return pm
}

// NumRefs returns the number of references the matrices cover.
func (pm *PathMatrices) NumRefs() int {
	if len(pm.R) == 0 {
		return 0
	}
	return len(pm.R[0])
}

// PathSimilarities computes the per-path similarity matrices among refs.
// Neighborhoods are prefetched and the pairwise rows computed in parallel
// under Config.Workers. For each (i,j) pair one fused merge-scan per path
// yields the resemblance and both directed walk probabilities at once.
func (e *Engine) PathSimilarities(refs []reldb.TupleID) *PathMatrices {
	pm, err := e.pathSimilaritiesCtxAt(context.Background(), e.root(), refs)
	rethrow(err)
	return pm
}

// PathSimilaritiesCtx is PathSimilarities under a context: cancellation is
// observed at the stage boundary and between pairwise rows.
func (e *Engine) PathSimilaritiesCtx(ctx context.Context, refs []reldb.TupleID) (*PathMatrices, error) {
	return e.pathSimilaritiesCtxAt(ctx, e.root(), refs)
}

// pathSimilaritiesCtxAt is PathSimilaritiesCtx with the stage span parented
// under parent (nil parent: tracing off or disabled for this call).
//
// With matrix reuse enabled, a block already computed for the same
// (refs, database version) is returned as-is; the stage span still appears
// — once, carrying reused=true — so sweeps show the reuse instead of
// logging identical heavyweight spans per variant.
func (e *Engine) pathSimilaritiesCtxAt(ctx context.Context, parent *trace.Span, refs []reldb.TupleID) (*PathMatrices, error) {
	if err := checkStage(ctx, "path_sims"); err != nil {
		return nil, err
	}
	n := len(refs)
	np := len(e.paths)
	pairs := n * (n - 1) / 2
	sp := e.obs.StartStage("path_sims")
	tsp := parent.Start("path_sims",
		trace.Int("refs", int64(n)), trace.Int("pairs", int64(pairs)))
	version := e.db.Version()
	if e.matCache != nil {
		if pm := e.matCache.get(refs, version, np); pm != nil {
			e.obs.Counter("core.matrix_cache_hits").Inc()
			tsp.SetAttrs(trace.Bool("reused", true))
			sp.End(0) // no pairwise work done
			tsp.End()
			return pm, nil
		}
		e.obs.Counter("core.matrix_cache_misses").Inc()
	}
	pm := NewPathMatrices(np, n)
	if err := e.ext.PrefetchCtx(ctx, refs, e.cfg.Workers, tsp); err != nil {
		sp.End(0)
		tsp.End()
		return nil, stageErr("prefetch", err)
	}
	nbs := e.ext.NeighborhoodsAll(refs, nil)
	nn := n * n
	// Row i fills entries (i,j) and (j,i) for j > i: every matrix cell is
	// written by exactly one row worker, so rows can run concurrently. Per
	// row, each path intersects i's neighborhood against the whole candidate
	// block in one batched scatter/probe pass (sim.BatchScratch.Block),
	// bit-identical to per-pair PairKernel calls.
	err := parallelForCtx(ctx, n, e.cfg.Workers, func(i int) error {
		nc := n - i - 1
		if nc == 0 {
			return nil
		}
		s := e.ext.BatchScratch()
		defer e.ext.PutBatchScratch(s)
		cands, out := s.GrowBuffers(nc)
		ni := nbs[i]
		for p := 0; p < np; p++ {
			for j := i + 1; j < n; j++ {
				cands[j-i-1] = nbs[j][p]
			}
			s.Block(ni[p], cands, out)
			base := p * nn
			row := base + i*n
			for k := range out {
				j := i + 1 + k
				pm.RFlat[row+j], pm.RFlat[base+j*n+i] = out[k].Resem, out[k].Resem
				pm.WFlat[row+j] = out[k].WalkAB
				pm.WFlat[base+j*n+i] = out[k].WalkBA
			}
		}
		return nil
	})
	if err != nil {
		sp.End(0)
		tsp.End()
		return nil, stageErr("path_sims", err)
	}
	if e.matCache != nil {
		if ev := e.matCache.put(refs, version, pm); ev > 0 {
			e.obs.Counter("core.matrix_cache_evictions").Add(ev)
		}
	}
	sp.End(pairs)
	tsp.End()
	return pm, nil
}

// Combine folds per-path matrices into one similarity matrix under the
// given path weights (resemblance and walk weights respectively). It
// streams over the flat backing arrays row by row, splitting each row at
// the diagonal so the inner loops carry no i == j test.
func Combine(pm *PathMatrices, resemW, walkW []float64) cluster.Matrix {
	n := pm.NumRefs()
	m := cluster.NewMatrix(n)
	for p := range pm.R {
		rw, ww := resemW[p], walkW[p]
		if rw == 0 && ww == 0 {
			continue
		}
		base := p * n * n
		for i := 0; i < n; i++ {
			off := base + i*n
			srcR := pm.RFlat[off : off+n]
			srcW := pm.WFlat[off : off+n]
			dstR := m.R[i]
			dstW := m.W[i]
			for j := 0; j < i; j++ {
				dstR[j] += rw * srcR[j]
				dstW[j] += ww * srcW[j]
			}
			for j := i + 1; j < n; j++ {
				dstR[j] += rw * srcR[j]
				dstW[j] += ww * srcW[j]
			}
		}
	}
	return m
}

// Similarities computes the pairwise combined similarities among refs under
// the engine's current weights: R[i][j] is the weighted set resemblance,
// W[i][j] the weighted directed walk probability from i to j.
func (e *Engine) Similarities(refs []reldb.TupleID) cluster.Matrix {
	m, err := e.similaritiesCtxAt(context.Background(), e.root(), refs)
	rethrow(err)
	return m
}

// similaritiesCtxAt is Similarities with the stage span parented under
// parent and cancellation observed between pairwise rows. When the trace
// was built with SamplePairEvery, every Nth pair (by triangular pair index
// — deterministic, no RNG) gets a "pair" event with its Explain-style
// per-path breakdown attached to the stage span.
//
// With matrix reuse enabled, the combined matrix is derived from the cached
// (or freshly cached) per-path matrices via Combine — the same floats,
// since both accumulate per-path contributions in ascending path order.
func (e *Engine) similaritiesCtxAt(ctx context.Context, parent *trace.Span, refs []reldb.TupleID) (cluster.Matrix, error) {
	if err := checkStage(ctx, "similarities"); err != nil {
		return cluster.Matrix{}, err
	}
	n := len(refs)
	sp := e.obs.StartStage("similarities")
	tsp := parent.Start("similarities",
		trace.Int("refs", int64(n)), trace.Int("pairs", int64(n*(n-1)/2)))
	defer func() { sp.End(n * (n - 1) / 2); tsp.End() }()

	var m cluster.Matrix
	if e.matCache != nil {
		pm, err := e.pathSimilaritiesCtxAt(ctx, tsp, refs)
		if err != nil {
			return cluster.Matrix{}, err
		}
		m = Combine(pm, e.resemW, e.walkW)
	} else {
		m = cluster.NewMatrix(n)
		if err := e.ext.PrefetchCtx(ctx, refs, e.cfg.Workers, tsp); err != nil {
			return cluster.Matrix{}, stageErr("prefetch", err)
		}
		nbs := e.ext.NeighborhoodsAll(refs, nil)
		// Resolved once per stage: the per-row injection point below costs
		// one nil check per row when fault injection is off.
		freg := fault.From(ctx)
		err := parallelForCtx(ctx, n, e.cfg.Workers, func(i int) error {
			if freg != nil {
				if err := freg.Fire(ctx, "core.similarities.row"); err != nil {
					return err
				}
			}
			nc := n - i - 1
			if nc == 0 {
				return nil
			}
			s := e.ext.BatchScratch()
			defer e.ext.PutBatchScratch(s)
			cands, out := s.GrowBuffers(nc)
			ni := nbs[i]
			rowR, rowW := m.R[i], m.W[i]
			// Per path, one batched block pass over the row's candidates;
			// contributions accumulate into the row in ascending path order —
			// the same order (and therefore the same floats) as the per-pair
			// loop this replaces.
			for p := range e.paths {
				rw, ww := e.resemW[p], e.walkW[p]
				if rw == 0 && ww == 0 {
					continue
				}
				for j := i + 1; j < n; j++ {
					cands[j-i-1] = nbs[j][p]
				}
				s.Block(ni[p], cands, out)
				for k := range out {
					j := i + 1 + k
					rowR[j] += rw * out[k].Resem
					rowW[j] += ww * out[k].WalkAB
					m.W[j][i] += ww * out[k].WalkBA
				}
			}
			// Mirror the symmetric resemblance; each (j,i) cell below the
			// diagonal is written by exactly one row worker.
			for j := i + 1; j < n; j++ {
				m.R[j][i] = rowR[j]
			}
			return nil
		})
		if err != nil {
			return cluster.Matrix{}, stageErr("similarities", err)
		}
	}
	if tsp != nil {
		if every := e.tr.SamplePairEvery(); every > 0 {
			e.samplePairs(tsp, refs, m, every)
		}
	}
	return m, nil
}

// samplePairs attaches "pair" events with Explain-style per-path breakdowns
// for every sampleEvery-th pair (by triangular pair index — a pure function
// of (i, j, n), so the sample is identical whatever the worker count) to
// the similarities stage span. The sampled pairs' per-path values are
// recomputed with the pair-at-a-time reference kernel: the sample is
// sparse, so the cost is negligible next to the batched fill, and the
// values are identical. The serial (i, j) walk emits events already in the
// order the old per-worker collection had to sort into.
func (e *Engine) samplePairs(tsp *trace.Span, refs []reldb.TupleID, m cluster.Matrix, sampleEvery int) {
	n := len(refs)
	nbs := e.ext.NeighborhoodsAll(refs, nil)
	var events []trace.Event
	for i := 0; i < n; i++ {
		// rowBase is the triangular index of pair (i, i+1); pair (i, j) has
		// index rowBase + (j - i - 1).
		rowBase := i*n - i*(i+1)/2
		for j := i + 1; j < n; j++ {
			if (rowBase+j-i-1)%sampleEvery != 0 {
				continue
			}
			var breakdown []byte
			for p := range e.paths {
				rw, ww := e.resemW[p], e.walkW[p]
				if rw == 0 && ww == 0 {
					continue
				}
				pr, pij, pji := sim.PairKernel(nbs[i][p], nbs[j][p])
				if pr != 0 || pij != 0 || pji != 0 {
					if len(breakdown) > 0 {
						breakdown = append(breakdown, " | "...)
					}
					breakdown = fmt.Appendf(breakdown, "%s: resem=%g walk=%g",
						e.paths[p].String(), rw*pr, ww*(pij+pji)/2)
				}
			}
			events = append(events, trace.Event{Name: "pair", Attrs: []trace.Attr{
				trace.Int("i", int64(i)), trace.Int("j", int64(j)),
				trace.Int("ref_i", int64(refs[i])), trace.Int("ref_j", int64(refs[j])),
				trace.Float("resem", m.R[i][j]),
				trace.Float("walk_ij", m.W[i][j]), trace.Float("walk_ji", m.W[j][i]),
				trace.String("paths", string(breakdown)),
			}})
		}
	}
	if len(events) > 0 {
		tsp.EventAll(events)
	}
}

// ClusterMatrix clusters n references given a precombined similarity matrix
// under the supplied measure and threshold; refs[i] corresponds to row i.
func ClusterMatrix(refs []reldb.TupleID, m cluster.Matrix, measure cluster.Measure, minSim float64) [][]reldb.TupleID {
	idx := cluster.Agglomerate(len(refs), m, cluster.Options{Measure: measure, MinSim: minSim})
	return groupRefs(refs, idx)
}

// clusterRefs is ClusterMatrix under the engine's own measure, threshold,
// and observability registry, wrapped in a "cluster" stage span.
func (e *Engine) clusterRefs(refs []reldb.TupleID, m cluster.Matrix) [][]reldb.TupleID {
	groups, err := e.clusterRefsCtxAt(context.Background(), e.root(), refs, m)
	rethrow(err)
	return groups
}

// clusterRefsCtxAt is clusterRefs with the stage span parented under parent
// and cancellation observed between merge iterations; the clusterer
// receives the span and emits its merge and cut events there.
func (e *Engine) clusterRefsCtxAt(ctx context.Context, parent *trace.Span, refs []reldb.TupleID, m cluster.Matrix) ([][]reldb.TupleID, error) {
	if err := checkStage(ctx, "cluster"); err != nil {
		return nil, err
	}
	sp := e.obs.StartStage("cluster")
	tsp := parent.Start("cluster", trace.Int("refs", int64(len(refs))))
	idx, err := cluster.AgglomerateCtx(ctx, len(refs), m, cluster.Options{
		Measure: e.cfg.Measure, MinSim: e.cfg.MinSim, Obs: e.obs, Span: tsp,
	})
	if err != nil {
		tsp.End()
		return nil, stageErr("cluster", err)
	}
	sp.End(len(refs))
	tsp.SetAttrs(trace.Int("clusters", int64(len(idx))))
	tsp.End()
	return groupRefs(refs, idx), nil
}

// groupRefs maps clusters of row indexes back to reference IDs.
func groupRefs(refs []reldb.TupleID, idx [][]int) [][]reldb.TupleID {
	out := make([][]reldb.TupleID, len(idx))
	for i, c := range idx {
		out[i] = make([]reldb.TupleID, len(c))
		for j, x := range c {
			out[i][j] = refs[x]
		}
	}
	return out
}

// DisambiguateRefs clusters the given references (expanded-database IDs)
// and returns groups of reference IDs, one group per inferred real object.
func (e *Engine) DisambiguateRefs(refs []reldb.TupleID) [][]reldb.TupleID {
	groups, err := e.disambiguateRefsCtxAt(context.Background(), e.root(), refs)
	rethrow(err)
	return groups
}

// DisambiguateRefsCtx is DisambiguateRefs under a context: cancellation
// (and any injected fault) surfaces as an error wrapped with the stage
// that observed it.
func (e *Engine) DisambiguateRefsCtx(ctx context.Context, refs []reldb.TupleID) ([][]reldb.TupleID, error) {
	return e.disambiguateRefsCtxAt(ctx, e.root(), refs)
}

// disambiguateRefsCtxAt is DisambiguateRefsCtx with all stage spans
// parented under parent (a per-name span during batch sweeps, the root
// otherwise).
func (e *Engine) disambiguateRefsCtxAt(ctx context.Context, parent *trace.Span, refs []reldb.TupleID) ([][]reldb.TupleID, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	// With a positive threshold, references in different shared-neighbor
	// components can never merge, so clustering per component is exact and
	// avoids the quadratic pairwise stage across components.
	if e.cfg.MinSim > 0 {
		return e.disambiguateBlockedCtxAt(ctx, parent, refs)
	}
	m, err := e.similaritiesCtxAt(ctx, parent, refs)
	if err != nil {
		return nil, err
	}
	return e.clusterRefsCtxAt(ctx, parent, refs, m)
}

// DisambiguateName clusters every reference carrying the name.
func (e *Engine) DisambiguateName(name string) ([][]reldb.TupleID, error) {
	return e.DisambiguateNameCtx(context.Background(), name)
}

// DisambiguateNameCtx is DisambiguateName under a context.
func (e *Engine) DisambiguateNameCtx(ctx context.Context, name string) ([][]reldb.TupleID, error) {
	refs := e.RefsForName(name)
	if len(refs) == 0 {
		return nil, fmt.Errorf("core: no references named %q", name)
	}
	return e.disambiguateRefsCtxAt(ctx, e.root(), refs)
}
