// Resilience layer: stage-boundary context checks and fault points, stage
// error wrapping, panic-isolating parallel iteration, and the degraded
// engine view used by per-name budget retries. See DESIGN.md §10.

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"distinct/internal/fault"
)

// StageError wraps an error with the pipeline stage that observed it, so a
// cancellation or injected fault surfaces as "core: similarities: context
// canceled" and incident records can name the failing stage. Unwrap
// preserves errors.Is(err, context.Canceled/DeadlineExceeded).
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return "core: " + e.Stage + ": " + e.Err.Error() }
func (e *StageError) Unwrap() error { return e.Err }

// stageErr wraps err with the stage name (nil in, nil out). An error that
// already carries a StageError passes through unchanged, keeping the
// innermost stage — the one that actually observed the failure.
func stageErr(stage string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Err: err}
}

// errStage extracts the stage name an error was wrapped with ("" when the
// error carries none).
func errStage(err error) string {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage
	}
	return ""
}

// incidentStage names the stage an incident's error belongs to: the
// innermost StageError when one is present; for an injected stage-boundary
// panic (which escapes before any stage wrapping) the firing point with its
// "core." prefix trimmed; "" otherwise.
func incidentStage(err error) string {
	if s := errStage(err); s != "" {
		return s
	}
	var pe *fault.PanicError
	if errors.As(err, &pe) {
		if ip, ok := pe.Value.(fault.InjectedPanic); ok {
			return strings.TrimPrefix(ip.Point, "core.")
		}
	}
	return ""
}

// checkStage is the per-stage resilience boundary: it observes context
// cancellation and gives whatever fault registry travels in ctx its
// injection point ("core." + stage). The production fast path — background
// context, no registry — is an Err() nil check plus one context Value
// lookup per stage, nowhere near any per-pair loop.
func checkStage(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		return &StageError{Stage: stage, Err: err}
	}
	if err := fault.Point(ctx, "core."+stage); err != nil {
		return stageErr(stage, err)
	}
	return nil
}

// guard runs f, converting a panic on this goroutine into a *fault.PanicError
// carrying the recovered value and stack.
func guard(f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &fault.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return f()
}

// parallelForCtx runs body(i) for i in [0,n) on `workers` goroutines
// (0 = GOMAXPROCS), claiming each index exactly once. body must write only
// to per-index state. Cancellation is observed between items, so the
// latency to return after a cancel is bounded by the slowest single item.
// A worker panic is recovered into a *fault.PanicError instead of killing
// the process. The first failure (body error, panic, or context end) stops
// further claims; items already claimed run to completion, and no index is
// ever executed twice.
func parallelForCtx(ctx context.Context, n, workers int, body func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			i := i
			if err := guard(func() error { return body(i) }); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := guard(func() error { return body(i) }); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// parallelFor runs body(i) for i in [0,n) on `workers` goroutines
// (0 = GOMAXPROCS). body must write only to per-index state. It is
// parallelForCtx without cancellation; a worker panic — impossible on the
// pipeline's own inputs — is re-raised on the caller with the worker's
// stack, preserving the pre-resilience contract of the non-context entry
// points.
func parallelFor(n, workers int, body func(i int)) {
	err := parallelForCtx(context.Background(), n, workers, func(i int) error {
		body(i)
		return nil
	})
	rethrow(err)
}

// rethrow re-raises an error that cannot legitimately occur on a
// background-context, fault-free path: recovered worker panics come back
// with their original stack attached, anything else panics as-is.
func rethrow(err error) {
	if err == nil {
		return
	}
	var pe *fault.PanicError
	if errors.As(err, &pe) {
		panic(fmt.Sprintf("%v\n\nrecovered worker stack:\n%s", pe.Value, pe.Stack))
	}
	panic(err)
}

// DefaultDegradedPaths is how many of the strongest join paths a degraded
// per-name retry keeps (see BatchOptions.DegradedPaths).
const DefaultDegradedPaths = 4

// degraded returns a shallow engine view whose weights keep only the k
// strongest join paths by combined learned weight (renormalised to sum 1),
// sharing the database, extractor cache, and observability sinks with the
// parent. Cutting the path set shrinks both the blocking index and the
// per-pair kernel loop, which is what lets a name that blew its budget be
// retried cheaply. If k already covers every positively weighted path the
// receiver itself is returned.
func (e *Engine) degraded(k int) *Engine {
	if k <= 0 {
		k = DefaultDegradedPaths
	}
	nonzero := 0
	for p := range e.resemW {
		if e.resemW[p] > 0 || e.walkW[p] > 0 {
			nonzero++
		}
	}
	if nonzero <= k {
		return e
	}
	type pathWeight struct {
		p int
		w float64
	}
	ranked := make([]pathWeight, len(e.resemW))
	for p := range e.resemW {
		ranked[p] = pathWeight{p: p, w: e.resemW[p] + e.walkW[p]}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].w != ranked[j].w {
			return ranked[i].w > ranked[j].w
		}
		return ranked[i].p < ranked[j].p
	})
	resem := make([]float64, len(e.resemW))
	walk := make([]float64, len(e.walkW))
	for _, r := range ranked[:k] {
		resem[r.p] = e.resemW[r.p]
		walk[r.p] = e.walkW[r.p]
	}
	de := *e
	de.resemW = normalize(resem)
	de.walkW = normalize(walk)
	return &de
}
