package core

import (
	"math"
	"testing"
)

// TestPipelineReproducible: two engines built and trained identically on
// the same world must produce effectively identical models and identical
// disambiguations. (Neighborhoods are Go maps, so float accumulation order
// can perturb last bits; weights are compared within 1e-9.)
func TestPipelineReproducible(t *testing.T) {
	w := testWorld(t)
	build := func() *Engine {
		e := newTestEngine(t, w, true)
		if _, err := e.Train(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1, e2 := build(), build()
	r1, w1 := e1.Weights()
	r2, w2 := e2.Weights()
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-9 || math.Abs(w1[i]-w2[i]) > 1e-9 {
			t.Fatalf("weights differ at path %d: %v/%v vs %v/%v", i, r1[i], w1[i], r2[i], w2[i])
		}
	}
	for _, name := range w.AmbiguousNames() {
		a, err := e1.DisambiguateName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.DisambiguateName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d groups across identical runs", name, len(a), len(b))
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("%s: group %d sizes differ", name, i)
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: group %d member %d differs", name, i, j)
				}
			}
		}
	}
}

// TestTrainingSeedMatters: a different sampling seed produces a different
// training set and hence (generally) different weights — guarding against
// an accidentally ignored seed.
func TestTrainingSeedMatters(t *testing.T) {
	w := testWorld(t)
	cfg := engineConfig(w, true)
	e1, err := NewEngine(w.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Train(); err != nil {
		t.Fatal(err)
	}
	cfg.Train.Seed = 999
	e2, err := NewEngine(w.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Train(); err != nil {
		t.Fatal(err)
	}
	r1, _ := e1.Weights()
	r2, _ := e2.Weights()
	same := true
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Error("different training seeds produced identical weights; is the seed plumbed through?")
	}
}
