package core

import (
	"fmt"
	"testing"

	"distinct/internal/obs"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
)

// fakePM builds a PathMatrices of the given shape (contents irrelevant to
// the cache, which treats matrices as opaque).
func fakePM(numPaths, n int) *PathMatrices { return NewPathMatrices(numPaths, n) }

// TestMatrixCacheUnit exercises the LRU directly: hit, miss, version purge,
// byte-budget eviction, racing-put dedup.
func TestMatrixCacheUnit(t *testing.T) {
	refsA := []reldb.TupleID{1, 2, 3}
	refsB := []reldb.TupleID{4, 5, 6}
	pmA, pmB := fakePM(2, 3), fakePM(2, 3)

	c := newMatrixCache(DefaultMatrixCacheBytes)
	if got := c.get(refsA, 0, 2); got != nil {
		t.Fatal("empty cache returned a hit")
	}
	c.put(refsA, 0, pmA)
	if got := c.get(refsA, 0, 2); got != pmA {
		t.Fatal("cache missed the block it just stored")
	}
	if got := c.get(refsB, 0, 2); got != nil {
		t.Fatal("different refs hit the wrong entry")
	}
	if got := c.get(refsA, 0, 3); got != nil {
		t.Fatal("different path count hit the wrong entry")
	}
	// Racing put of the same key is dropped, not double-counted.
	used := c.used
	c.put(refsA, 0, fakePM(2, 3))
	if c.used != used || c.Len() != 1 {
		t.Fatalf("duplicate put changed the cache: used %d -> %d, len %d", used, c.used, c.Len())
	}
	// A newer version misses, and probing purges the stale entry.
	c.put(refsB, 0, pmB)
	if got := c.get(refsA, 1, 2); got != nil {
		t.Fatal("stale version returned a hit")
	}
	if c.Len() != 1 {
		t.Fatalf("stale entry not purged on probe: len = %d, want 1", c.Len())
	}

	// Byte-budget eviction: a budget that fits ~2 of these blocks must
	// evict the least recently used when a third arrives.
	blockBytes := int64(16*2*8*8 + 48*2*8)
	small := newMatrixCache(2 * blockBytes)
	mk := func(i int) []reldb.TupleID {
		return []reldb.TupleID{reldb.TupleID(10 * i), reldb.TupleID(10*i + 1), 0, 0, 0, 0, 0, 0}
	}
	small.put(mk(1), 0, fakePM(2, 8))
	small.put(mk(2), 0, fakePM(2, 8))
	small.get(mk(1), 0, 2) // touch 1: 2 becomes LRU
	small.put(mk(3), 0, fakePM(2, 8))
	if small.Len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", small.Len())
	}
	if small.get(mk(2), 0, 2) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if small.get(mk(1), 0, 2) == nil || small.get(mk(3), 0, 2) == nil {
		t.Fatal("recently used entries were evicted")
	}

	// An entry larger than the whole budget is still kept, alone.
	tiny := newMatrixCache(1)
	tiny.put(refsA, 0, pmA)
	if tiny.get(refsA, 0, 2) != pmA {
		t.Fatal("over-budget entry was not kept")
	}
}

// TestEngineMatrixReuse: with reuse enabled, the second PathSimilarities of
// the same block returns the identical matrices, the hit/miss counters move
// accordingly, and the path_sims stage span of the reused pass carries
// reused=true (one span, not a duplicate heavyweight one). An insert into
// the engine's database invalidates the entry.
func TestEngineMatrixReuse(t *testing.T) {
	w := testWorld(t)
	reg := obs.NewRegistry()
	tr := trace.New(trace.Options{})
	e, err := NewEngine(w.DB, func() Config {
		c := engineConfig(w, false)
		c.Obs = reg
		c.Trace = tr
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	e.EnableMatrixReuse(0)
	refs := e.RefsForName("Wei Wang")[:10]

	pm1 := e.PathSimilarities(refs)
	if got := e.MatrixCacheLen(); got != 1 {
		t.Fatalf("MatrixCacheLen after first compute = %d, want 1", got)
	}
	pm2 := e.PathSimilarities(refs)
	if pm1 != pm2 {
		t.Fatal("second PathSimilarities recomputed instead of reusing the cached block")
	}
	if hits := reg.Counter("core.matrix_cache_hits").Value(); hits != 1 {
		t.Fatalf("matrix_cache_hits = %d, want 1", hits)
	}
	if misses := reg.Counter("core.matrix_cache_misses").Value(); misses != 1 {
		t.Fatalf("matrix_cache_misses = %d, want 1", misses)
	}

	// The trace shows two path_sims spans: the computing one without the
	// attribute, the reused one with reused=true and zero heavyweight
	// children of its own.
	var spans []*trace.SpanNode
	var walk func(n *trace.SpanNode)
	walk = func(n *trace.SpanNode) {
		if n.Name == "path_sims" {
			spans = append(spans, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Tree())
	if len(spans) != 2 {
		t.Fatalf("trace holds %d path_sims spans, want 2", len(spans))
	}
	if _, ok := spans[0].Attrs["reused"]; ok {
		t.Fatal("first (computing) path_sims span carries reused")
	}
	if got := spans[1].Attrs["reused"]; got != true {
		t.Fatalf("second path_sims span reused = %v, want true", got)
	}
	if len(spans[1].Children) != 0 {
		t.Fatalf("reused path_sims span has %d children, want 0", len(spans[1].Children))
	}

	// Combine of the cached block under current weights must equal the
	// engine's own Similarities (which routes through the cache too).
	resemW, walkW := e.Weights()
	m := Combine(pm2, resemW, walkW)
	want := e.Similarities(refs)
	for i := range refs {
		for j := range refs {
			if m.R[i][j] != want.R[i][j] || m.W[i][j] != want.W[i][j] {
				t.Fatalf("Combine(cached)[%d][%d] differs from Similarities", i, j)
			}
		}
	}

	// Mutating the database bumps its version: the old entry can never be
	// served again.
	insertAnyTuple(t, e.db)
	pm3 := e.PathSimilarities(refs)
	if pm3 == pm1 {
		t.Fatal("PathSimilarities served a stale block after an insert")
	}
	if misses := reg.Counter("core.matrix_cache_misses").Value(); misses != 2 {
		t.Fatalf("matrix_cache_misses after insert = %d, want 2", misses)
	}
}

// insertAnyTuple inserts one fresh tuple into the first relation of the
// (expanded) database, just to bump its mutation version.
func insertAnyTuple(t *testing.T, db *reldb.Database) {
	t.Helper()
	for _, rs := range db.Schema.Relations() {
		vals := make([]reldb.Value, len(rs.Attrs))
		for i := range vals {
			vals[i] = fmt.Sprintf("version-bump-%d", i)
		}
		if _, err := db.Insert(rs.Name, vals...); err == nil {
			return
		}
	}
	t.Fatal("could not insert a version-bumping tuple into any relation")
}
