package core

import (
	"math"
	"testing"

	"distinct/internal/cluster"
	"distinct/internal/dblp"
	"distinct/internal/eval"
	"distinct/internal/reldb"
	"distinct/internal/trainset"
)

func testWorld(t testing.TB) *dblp.World {
	t.Helper()
	cfg := dblp.DefaultConfig()
	// A seed on which this reduced world is cleanly separable; tiny worlds
	// are noisy, and robustness across scales is exercised elsewhere.
	cfg.Seed = 3
	cfg.Communities = 4
	cfg.AuthorsPerCommunity = 60
	cfg.PapersPerAuthor = 3
	cfg.Ambiguous = []dblp.AmbiguousName{
		{Name: "Wei Wang", RefsPerAuthor: []int{12, 8, 5}},
		{Name: "Bin Yu", RefsPerAuthor: []int{7, 5}},
	}
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func engineConfig(w *dblp.World, supervised bool) Config {
	return Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  supervised,
		Measure:     cluster.Combined,
		// The test world is much smaller and sparser than the default world
		// the DefaultMinSim is tuned for, so similarities run lower.
		MinSim: 0.005,
		Train: trainset.Options{
			NumPositive: 150, NumNegative: 150, Seed: 11,
			Exclude: w.AmbiguousNames(),
		},
	}
}

func newTestEngine(t testing.TB, w *dblp.World, supervised bool) *Engine {
	t.Helper()
	e, err := NewEngine(w.DB, engineConfig(w, supervised))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := NewEngine(w.DB, Config{RefRelation: "Nope", RefAttr: "author"}); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := NewEngine(w.DB, Config{RefRelation: "Publish", RefAttr: "nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := NewEngine(w.DB, Config{RefRelation: "Publications", RefAttr: "title"}); err == nil {
		t.Error("non-FK reference attribute accepted")
	}
}

func TestEnginePathsAndWeights(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	paths := e.Paths()
	if len(paths) == 0 {
		t.Fatal("no join paths")
	}
	for _, p := range paths {
		if err := p.Validate(e.DB().Schema); err != nil {
			t.Fatalf("invalid path %s: %v", p, err)
		}
		if p.Steps[0] == (reldb.Step{Rel: "Publish", Attr: "author", Forward: true}) {
			t.Fatalf("path %s walks through the reference attribute", p)
		}
	}
	r, wk := e.Weights()
	if len(r) != len(paths) || len(wk) != len(paths) {
		t.Fatal("weight lengths mismatch")
	}
	sum := 0.0
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("uniform resem weights sum %v", sum)
	}
}

func TestMapRefs(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	orig := w.Refs("Wei Wang")
	mapped := e.MapRefs(orig)
	for i, id := range mapped {
		if id == reldb.InvalidTuple {
			t.Fatalf("ref %d unmapped", orig[i])
		}
		if got := e.DB().Tuple(id).Val("author"); got != "Wei Wang" {
			t.Fatalf("mapped ref has author %q", got)
		}
	}
	if e.MapRef(reldb.TupleID(1<<30)) != reldb.InvalidTuple {
		t.Error("bogus ID mapped")
	}
}

func TestSetWeights(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	n := len(e.Paths())
	if err := e.SetWeights(make([]float64, n-1), make([]float64, n)); err == nil {
		t.Error("short weight vector accepted")
	}
	wv := make([]float64, n)
	wv[0] = 2
	wv[1] = -5 // must be clipped
	if err := e.SetWeights(wv, wv); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Weights()
	if r[0] != 1 || r[1] != 0 {
		t.Errorf("weights after clip/normalise: %v", r[:2])
	}
	// All-negative weights fall back to uniform.
	for i := range wv {
		wv[i] = -1
	}
	if err := e.SetWeights(wv, wv); err != nil {
		t.Fatal(err)
	}
	r, _ = e.Weights()
	if math.Abs(r[0]-1/float64(n)) > 1e-12 {
		t.Errorf("fallback weights %v", r[:2])
	}
}

func TestTrainProducesUsefulModel(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	rep, err := e.Train()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumPositive != 150 || rep.NumNegative != 150 {
		t.Errorf("training set sizes %d/%d", rep.NumPositive, rep.NumNegative)
	}
	// The features separate equivalent from distinct pairs well; the models
	// should fit the training set far above chance.
	// Some positive pairs genuinely share no linkage within the path-length
	// cap (the paper's recall is 0.836 for the same reason), so training
	// accuracy has a ceiling below 1; far above chance is what matters.
	if rep.ResemAccuracy < 0.75 {
		t.Errorf("resemblance model training accuracy %v", rep.ResemAccuracy)
	}
	if rep.WalkAccuracy < 0.75 {
		t.Errorf("walk model training accuracy %v", rep.WalkAccuracy)
	}
	// Learned weights are installed (supervised config) and normalised.
	rw, ww := e.Weights()
	sum := 0.0
	nonzero := 0
	for _, v := range rw {
		sum += v
		if v > 0 {
			nonzero++
		}
	}
	if math.Abs(sum-1) > 1e-9 || nonzero == 0 {
		t.Errorf("resem weights sum %v nonzero %d", sum, nonzero)
	}
	_ = ww
	if rep.Timings.TotalTrain <= 0 {
		t.Error("timings not recorded")
	}
}

func TestUnsupervisedTrainKeepsUniform(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	before, _ := e.Weights()
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	after, _ := e.Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("unsupervised engine weights changed by Train")
		}
	}
}

func TestDisambiguateRecoversIdentities(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	for _, name := range w.AmbiguousNames() {
		pred, err := e.DisambiguateName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Map gold clusters into the expanded database.
		var gold eval.Clustering
		for _, c := range w.GoldClusters(name) {
			gold = append(gold, e.MapRefs(c))
		}
		m, err := eval.Evaluate(eval.Clustering(pred), gold)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %s (clusters pred=%d gold=%d)", name, m, len(pred), len(gold))
		if m.F1 < 0.6 {
			t.Errorf("%s: f-measure %v too low; pipeline is not separating identities", name, m.F1)
		}
	}
}

func TestDisambiguateEdgeCases(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	if _, err := e.DisambiguateName("No Such Person"); err == nil {
		t.Error("unknown name accepted")
	}
	if got := e.DisambiguateRefs(nil); got != nil {
		t.Errorf("empty refs gave %v", got)
	}
	refs := e.RefsForName("Wei Wang")[:1]
	got := e.DisambiguateRefs(refs)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("single ref clustering = %v", got)
	}
}

func TestSimilaritiesSymmetryAndRange(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")[:10]
	m := e.Similarities(refs)
	for i := range refs {
		for j := range refs {
			if m.R[i][j] != m.R[j][i] {
				t.Fatal("resemblance matrix asymmetric")
			}
			if m.R[i][j] < 0 || m.R[i][j] > 1+1e-9 {
				t.Fatalf("resemblance out of range: %v", m.R[i][j])
			}
			if m.W[i][j] < 0 {
				t.Fatalf("negative walk probability: %v", m.W[i][j])
			}
		}
	}
}

// Same-identity reference pairs should on average be more similar than
// different-identity pairs — the signal DISTINCT relies on.
func TestSignalSeparation(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")
	orig := w.Refs("Wei Wang")
	m := e.Similarities(refs)
	var sameSum, diffSum float64
	var sameN, diffN int
	for i := range refs {
		for j := i + 1; j < len(refs); j++ {
			same := w.RefAuthor[orig[i]] == w.RefAuthor[orig[j]]
			if same {
				sameSum += m.R[i][j]
				sameN++
			} else {
				diffSum += m.R[i][j]
				diffN++
			}
		}
	}
	sameAvg, diffAvg := sameSum/float64(sameN), diffSum/float64(diffN)
	t.Logf("avg resemblance same=%v diff=%v", sameAvg, diffAvg)
	if sameAvg <= diffAvg*2 {
		t.Errorf("same-identity similarity (%v) not clearly above different-identity (%v)", sameAvg, diffAvg)
	}
}
