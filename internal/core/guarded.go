// Guarded single-name disambiguation: the per-name resilience ladder —
// panic isolation, budget timeout, degraded retry, conservative fallback —
// shared by the batch sweep (batch.go) and the serving front end
// (internal/serve). See DESIGN.md §10 for the ladder, §13 for serving.

package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"distinct/internal/fault"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
)

// attemptLadder runs one name's disambiguation under the resilience ladder:
//
//  1. a guarded attempt on the full engine under the per-name budget —
//     or, under opts.ForceDegraded (a serving-layer brownout), directly on
//     the degraded view;
//  2. on a blown budget, one guarded retry on the degraded view (top-k
//     join paths) under a fresh budget — unless the attempt was already
//     degraded, or opts.RetryGate refuses (retry budget exhausted);
//  3. on panic, error, or a second blown budget, the references are kept as
//     one conservative group.
//
// It returns the groups plus an Incident describing any deviation from the
// clean path (nil when clean; Elapsed is left for the caller to stamp). A
// non-nil error is returned only when the parent ctx itself ended — then
// groups and incident are nil and the caller owns the partial-result
// contract. Stage spans parent under nsp (nil = tracing off).
func (e *Engine) attemptLadder(ctx context.Context, nsp *trace.Span, name string, refs []reldb.TupleID, opts BatchOptions) ([][]reldb.TupleID, *Incident, error) {
	// attempt runs one disambiguation under eng (the full engine or its
	// degraded view), converting a panic anywhere in the name's stages into
	// a *fault.PanicError instead of killing the caller.
	attempt := func(eng *Engine, nctx context.Context) (groups [][]reldb.TupleID, err error) {
		err = guard(func() error {
			var aerr error
			groups, aerr = eng.disambiguateRefsCtxAt(nctx, nsp, refs)
			return aerr
		})
		return groups, err
	}
	withBudget := func() (context.Context, context.CancelFunc) {
		if opts.NameTimeout > 0 {
			return context.WithTimeout(ctx, opts.NameTimeout)
		}
		return ctx, func() {}
	}

	// A brownout-forced compute starts on the degraded view: the quality
	// cut the over-budget retry would make, taken up front because the
	// server (not this name) is in trouble. The incident it reports keeps
	// the serving envelope honest (degraded: true, stage "brownout").
	eng := e
	var forced *Incident
	if opts.ForceDegraded {
		if de := e.degraded(opts.DegradedPaths); de != e {
			eng = de
			forced = &Incident{Name: name, Stage: "brownout",
				Reason: IncidentDegraded, Err: "server-forced degraded path"}
		}
	}

	nctx, cancel := withBudget()
	groups, err := attempt(eng, nctx)
	cancel()
	if err == nil {
		return groups, forced, nil
	}
	if ctx.Err() != nil {
		// The parent context ended: not a per-name incident.
		return nil, nil, err
	}
	stage := incidentStage(err)
	var pe *fault.PanicError
	switch {
	case errors.As(err, &pe):
		return singleGroup(refs), &Incident{
			Name: name, Stage: stage, Reason: IncidentPanic, Err: pe.Error()}, nil
	case errors.Is(err, context.DeadlineExceeded):
		// Per-name budget blown: retry once in degraded mode under a fresh
		// budget (when the path set can actually be cut). A forced-degraded
		// attempt was already on the cut path — retrying it would repeat
		// the same work — and the retry gate can refuse when the server's
		// retry budget is spent.
		if de := e.degraded(opts.DegradedPaths); de != e && eng != de &&
			(opts.RetryGate == nil || opts.RetryGate()) {
			nctx, cancel = withBudget()
			g2, derr := attempt(de, nctx)
			cancel()
			if derr == nil {
				return g2, &Incident{
					Name: name, Stage: stage, Reason: IncidentDegraded, Err: err.Error()}, nil
			}
			if ctx.Err() != nil {
				return nil, nil, derr
			}
			if errors.As(derr, &pe) {
				return singleGroup(refs), &Incident{
					Name: name, Stage: incidentStage(derr), Reason: IncidentPanic, Err: pe.Error()}, nil
			}
			err, stage = derr, incidentStage(derr)
		}
		return singleGroup(refs), &Incident{
			Name: name, Stage: stage, Reason: IncidentTimeout, Err: err.Error()}, nil
	default:
		return singleGroup(refs), &Incident{
			Name: name, Stage: stage, Reason: IncidentError, Err: err.Error()}, nil
	}
}

// DisambiguateNameGuarded is the serving-path entry point: DisambiguateName
// under the full per-name resilience ladder. Unlike DisambiguateNameCtx —
// which surfaces panics and budget blowouts as errors — a guarded lookup
// always produces groups unless the parent ctx itself ended: a blown
// NameTimeout degrades (top-k paths) and then falls back to one conservative
// group, a panic is isolated into an incident, and the returned Incident
// (nil on the clean path, Elapsed stamped) tells the caller exactly what
// happened so it can be reported to the requester.
func (e *Engine) DisambiguateNameGuarded(ctx context.Context, name string, opts BatchOptions) ([][]reldb.TupleID, *Incident, error) {
	return e.DisambiguateNameGuardedAt(ctx, nil, name, opts)
}

// DisambiguateNameGuardedAt is DisambiguateNameGuarded with the stage spans
// parented under sp instead of the engine trace's root — the serving layer
// passes a per-request trace's name span here, so a tail-sampled request
// captures the engine's decisions for exactly that request (stages, merges,
// incidents) without the engine holding any global trace. A nil sp falls
// back to the engine trace root (nil when tracing is off, like every span).
func (e *Engine) DisambiguateNameGuardedAt(ctx context.Context, sp *trace.Span, name string, opts BatchOptions) ([][]reldb.TupleID, *Incident, error) {
	refs := e.RefsForName(name)
	if len(refs) == 0 {
		return nil, nil, fmt.Errorf("core: no references named %q", name)
	}
	if sp == nil {
		sp = e.root()
	}
	t0 := time.Now()
	groups, inc, err := e.attemptLadder(ctx, sp, name, refs, opts)
	if inc != nil {
		inc.Elapsed = time.Since(t0)
	}
	return groups, inc, err
}

// NamesWithRefs lists the names carrying at least minRefs references, in
// lexicographic order — the work list a batch sweep examines and the name
// universe the serving API exposes at /v1/names (load generators replay it).
// minRefs below 1 is treated as 1.
func (e *Engine) NamesWithRefs(minRefs int) []string {
	if minRefs < 1 {
		minRefs = 1
	}
	rs := e.db.Schema.Relation(e.cfg.RefRelation)
	ai := rs.AttrIndex(e.cfg.RefAttr)
	target := rs.Attrs[ai].FK
	nameRel := e.db.Relation(target)
	ki := nameRel.Schema.KeyIndex()
	var names []string
	for _, id := range nameRel.TupleIDs() {
		name := e.db.Tuple(id).Vals[ki]
		if len(e.db.Referencing(e.cfg.RefRelation, e.cfg.RefAttr, name)) >= minRefs {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
