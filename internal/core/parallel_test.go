package core

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestWorkersDoNotChangeResults: the engine must produce bit-identical
// similarity matrices and clusterings regardless of the worker count.
func TestWorkersDoNotChangeResults(t *testing.T) {
	w := testWorld(t)

	run := func(workers int) ([][]float64, [][][]int32) {
		cfg := engineConfig(w, false)
		cfg.Workers = workers
		e, err := NewEngine(w.DB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs := e.RefsForName("Wei Wang")
		m := e.Similarities(refs)
		var clusterings [][][]int32
		for _, name := range w.AmbiguousNames() {
			pred, err := e.DisambiguateName(name)
			if err != nil {
				t.Fatal(err)
			}
			var c [][]int32
			for _, g := range pred {
				row := make([]int32, len(g))
				for i, r := range g {
					row[i] = int32(r)
				}
				c = append(c, row)
			}
			clusterings = append(clusterings, c)
		}
		return m.R, clusterings
	}

	r1, c1 := run(1)
	r8, c8 := run(8)
	// Neighborhoods are Go maps, so float accumulation order (and hence the
	// last bits of a similarity) varies run to run regardless of worker
	// count; compare within a tight tolerance.
	for i := range r1 {
		for j := range r1[i] {
			if math.Abs(r1[i][j]-r8[i][j]) > 1e-12 {
				t.Fatalf("similarity [%d][%d] differs: %v vs %v", i, j, r1[i][j], r8[i][j])
			}
		}
	}
	if !reflect.DeepEqual(c1, c8) {
		t.Error("clusterings differ between 1 and 8 workers")
	}
}

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		out := make([]int, n)
		parallelFor(n, workers, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
	// n = 0 must not hang or panic, whatever the worker request.
	parallelFor(0, 4, func(int) { t.Fatal("body called for n=0") })
	parallelFor(0, 0, func(int) { t.Fatal("body called for n=0, workers=0") })
}

// TestParallelForMoreWorkersThanItems: requesting far more workers than
// items must clamp to n (no idle goroutine may re-run or skip an index),
// and every index still runs exactly once.
func TestParallelForMoreWorkersThanItems(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		var calls atomic.Int64
		perIndex := make([]atomic.Int32, n)
		parallelFor(n, 64, func(i int) {
			calls.Add(1)
			perIndex[i].Add(1)
		})
		if got := calls.Load(); got != int64(n) {
			t.Fatalf("n=%d workers=64: body ran %d times", n, got)
		}
		for i := range perIndex {
			if c := perIndex[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}
