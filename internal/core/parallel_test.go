package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"distinct/internal/fault"
)

// TestWorkersDoNotChangeResults: the engine must produce bit-identical
// similarity matrices and clusterings regardless of the worker count.
func TestWorkersDoNotChangeResults(t *testing.T) {
	w := testWorld(t)

	run := func(workers int) ([][]float64, [][][]int32) {
		cfg := engineConfig(w, false)
		cfg.Workers = workers
		e, err := NewEngine(w.DB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refs := e.RefsForName("Wei Wang")
		m := e.Similarities(refs)
		var clusterings [][][]int32
		for _, name := range w.AmbiguousNames() {
			pred, err := e.DisambiguateName(name)
			if err != nil {
				t.Fatal(err)
			}
			var c [][]int32
			for _, g := range pred {
				row := make([]int32, len(g))
				for i, r := range g {
					row[i] = int32(r)
				}
				c = append(c, row)
			}
			clusterings = append(clusterings, c)
		}
		return m.R, clusterings
	}

	r1, c1 := run(1)
	r8, c8 := run(8)
	// Neighborhoods are Go maps, so float accumulation order (and hence the
	// last bits of a similarity) varies run to run regardless of worker
	// count; compare within a tight tolerance.
	for i := range r1 {
		for j := range r1[i] {
			if math.Abs(r1[i][j]-r8[i][j]) > 1e-12 {
				t.Fatalf("similarity [%d][%d] differs: %v vs %v", i, j, r1[i][j], r8[i][j])
			}
		}
	}
	if !reflect.DeepEqual(c1, c8) {
		t.Error("clusterings differ between 1 and 8 workers")
	}
}

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		out := make([]int, n)
		parallelFor(n, workers, func(i int) { out[i] = i * i })
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
	// n = 0 must not hang or panic, whatever the worker request.
	parallelFor(0, 4, func(int) { t.Fatal("body called for n=0") })
	parallelFor(0, 0, func(int) { t.Fatal("body called for n=0, workers=0") })
}

// TestParallelForMoreWorkersThanItems: requesting far more workers than
// items must clamp to n (no idle goroutine may re-run or skip an index),
// and every index still runs exactly once.
func TestParallelForMoreWorkersThanItems(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		var calls atomic.Int64
		perIndex := make([]atomic.Int32, n)
		parallelFor(n, 64, func(i int) {
			calls.Add(1)
			perIndex[i].Add(1)
		})
		if got := calls.Load(); got != int64(n) {
			t.Fatalf("n=%d workers=64: body ran %d times", n, got)
		}
		for i := range perIndex {
			if c := perIndex[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

// TestParallelForCtxExactlyOnceUnderCancel: cancelling mid-iteration must
// never run an index twice — claimed items finish, unclaimed items are
// skipped, and the context error is returned.
func TestParallelForCtxExactlyOnceUnderCancel(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 200
		ctx, cancel := context.WithCancel(context.Background())
		perIndex := make([]atomic.Int32, n)
		err := parallelForCtx(ctx, n, workers, func(i int) error {
			if c := perIndex[i].Add(1); c != 1 {
				t.Errorf("workers=%d: index %d claimed %d times", workers, i, c)
			}
			if i == n/4 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		ran := 0
		for i := range perIndex {
			if c := perIndex[i].Load(); c > 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			} else if c == 1 {
				ran++
			}
		}
		if ran == 0 || ran >= n {
			t.Errorf("workers=%d: %d of %d indices ran; want a proper partial sweep", workers, ran, n)
		}
	}
}

// TestParallelForCtxPanicRecovered: a panicking body must surface as a
// *fault.PanicError with the worker's stack — not kill the process — and
// stop further claims.
func TestParallelForCtxPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 50
		err := parallelForCtx(context.Background(), n, workers, func(i int) error {
			if i == 3 {
				panic("chaos body panic")
			}
			return nil
		})
		var pe *fault.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *fault.PanicError", workers, err)
		}
		if pe.Value != "chaos body panic" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: recovered %+v with %d stack bytes", workers, pe.Value, len(pe.Stack))
		}
	}
	// The non-context wrapper re-raises with the worker stack attached.
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("parallelFor swallowed the panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "recovered worker stack") {
			t.Fatalf("re-raised panic %v lacks the worker stack", v)
		}
	}()
	parallelFor(4, 2, func(i int) {
		if i == 1 {
			panic("rethrown")
		}
	})
}

// TestParallelForCtxBodyErrorStops: the first body error is returned and
// stops further claims without panicking.
func TestParallelForCtxBodyErrorStops(t *testing.T) {
	sentinel := errors.New("boom")
	err := parallelForCtx(context.Background(), 100, 4, func(i int) error {
		if i == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the body's error", err)
	}
}
