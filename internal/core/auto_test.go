package core

import (
	"testing"

	"distinct/internal/cluster"
)

func TestDisambiguateAuto(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	groups, err := e.DisambiguateNameAuto("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(e.RefsForName("Wei Wang")) {
		t.Errorf("auto groups cover %d refs", total)
	}
	if _, err := e.DisambiguateNameAuto("No Such Name"); err == nil {
		t.Error("unknown name accepted")
	}
	if got := e.DisambiguateRefsAuto(nil); got != nil {
		t.Errorf("empty refs gave %v", got)
	}
}

func TestSetMeasureChangesClustering(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	e.SetMeasure(cluster.SingleLink)
	e.SetMinSim(0.15)
	a, err := e.DisambiguateName("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	e.SetMeasure(cluster.Combined)
	b, err := e.DisambiguateName("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	// At a 0.3 threshold, single-link (raw max resemblance) merges far more
	// than the combined geometric measure.
	if len(a) >= len(b) {
		t.Errorf("single-link gave %d groups, combined %d; measure switch had no effect", len(a), len(b))
	}
}
