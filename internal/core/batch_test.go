package core

import (
	"testing"
)

func TestDisambiguateAllFindsInjectedHomonyms(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	res, err := e.DisambiguateAll(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.NamesExamined == 0 {
		t.Fatal("no names examined")
	}
	found := map[string]int{}
	for _, s := range res.Split {
		found[s.Name] = len(s.Groups)
		// Groups partition the name's references.
		total := 0
		for _, g := range s.Groups {
			total += len(g)
		}
		if total != len(e.RefsForName(s.Name)) {
			t.Errorf("%s: groups cover %d of %d refs", s.Name, total, len(e.RefsForName(s.Name)))
		}
	}
	// Both injected homonyms must be detected as split names.
	for _, name := range w.AmbiguousNames() {
		if found[name] < 2 {
			t.Errorf("injected homonym %q not detected (groups=%d)", name, found[name])
		}
	}
	// Sorting: descending group count.
	for i := 1; i < len(res.Split); i++ {
		if len(res.Split[i].Groups) > len(res.Split[i-1].Groups) {
			t.Error("split names not sorted by group count")
		}
	}
	// minRefs below 2 is clamped, not an error.
	if _, err := e.DisambiguateAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestTuneMinSimSelectsSeparatingThreshold(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	res, err := e.TuneMinSim(nil, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases == 0 || len(res.Grid) != len(res.F1ByGrid) {
		t.Fatalf("result %+v malformed", res)
	}
	// The tuned threshold must be installed and its f-measure the maximum.
	if e.MinSim() != res.MinSim {
		t.Error("tuned threshold not installed")
	}
	for gi, f := range res.F1ByGrid {
		if f > res.F1 {
			t.Errorf("grid[%d]=%v has f %v > reported best %v", gi, res.Grid[gi], f, res.F1)
		}
		if f < 0 || f > 1 {
			t.Errorf("f-measure %v out of range", f)
		}
	}
	// On synthetic rare-name pairs the engine should separate well: the
	// best threshold's average f-measure must be high.
	if res.F1 < 0.8 {
		t.Errorf("tuned f-measure %v too low", res.F1)
	}
	// A custom grid is respected.
	res2, err := e.TuneMinSim([]float64{0.5, 1.0}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MinSim != 0.5 && res2.MinSim != 1.0 {
		t.Errorf("tuned min-sim %v not from the custom grid", res2.MinSim)
	}
}

func TestTuneMinSimFailsWithoutRareNames(t *testing.T) {
	w := testWorld(t)
	cfg := engineConfig(w, true)
	cfg.Train.MaxFirstFreq = 1
	cfg.Train.MaxLastFreq = 1
	// Exclude everything by making rarity unsatisfiable for names with refs.
	cfg.Train.MinRefs = 2
	e, err := NewEngine(w.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TuneMinSim(nil, 10, 1); err == nil {
		// Thresholds of 1/1 can still admit names; only fail when truly none.
		t.Skip("world still has ultra-rare names; nothing to assert")
	}
}

func TestSetMeasureAndMinSim(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	e.SetMinSim(0.123)
	if e.MinSim() != 0.123 {
		t.Error("SetMinSim did not stick")
	}
}

func TestNameAffinityAndSampling(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// Affinity of an ambiguous name with itself is positive (its refs share
	// linkage); with a missing name it is zero.
	if got := e.NameAffinity("Wei Wang", "Wei Wang"); got <= 0 {
		t.Errorf("self affinity = %v", got)
	}
	if e.NameAffinity("Wei Wang", "No Such Name") != 0 {
		t.Error("missing-name affinity not zero")
	}
	// strideSample: identity below the cap, even coverage above it.
	refs := e.RefsForName("Wei Wang")
	if got := strideSample(refs, len(refs)+1); len(got) != len(refs) {
		t.Error("sample below cap changed length")
	}
	s := strideSample(refs, 5)
	if len(s) != 5 {
		t.Fatalf("sample = %d", len(s))
	}
	if s[0] != refs[0] {
		t.Error("stride sample does not start at the first reference")
	}
	seen := map[int32]bool{}
	for _, r := range s {
		if seen[int32(r)] {
			t.Error("stride sample repeated a reference")
		}
		seen[int32(r)] = true
	}
}
