package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"distinct/internal/eval"
	"distinct/internal/obs"
	"distinct/internal/reldb"
	"distinct/internal/trainset"
)

func TestDisambiguateAllFindsInjectedHomonyms(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	res, err := e.DisambiguateAll(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.NamesExamined == 0 {
		t.Fatal("no names examined")
	}
	found := map[string]int{}
	for _, s := range res.Split {
		found[s.Name] = len(s.Groups)
		// Groups partition the name's references.
		total := 0
		for _, g := range s.Groups {
			total += len(g)
		}
		if total != len(e.RefsForName(s.Name)) {
			t.Errorf("%s: groups cover %d of %d refs", s.Name, total, len(e.RefsForName(s.Name)))
		}
	}
	// Both injected homonyms must be detected as split names.
	for _, name := range w.AmbiguousNames() {
		if found[name] < 2 {
			t.Errorf("injected homonym %q not detected (groups=%d)", name, found[name])
		}
	}
	// Sorting: descending group count.
	for i := 1; i < len(res.Split); i++ {
		if len(res.Split[i].Groups) > len(res.Split[i-1].Groups) {
			t.Error("split names not sorted by group count")
		}
	}
	// minRefs below 2 is clamped, not an error.
	if _, err := e.DisambiguateAll(0); err != nil {
		t.Fatal(err)
	}
}

func TestTuneMinSimSelectsSeparatingThreshold(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	res, err := e.TuneMinSim(nil, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases == 0 || len(res.Grid) != len(res.F1ByGrid) {
		t.Fatalf("result %+v malformed", res)
	}
	// The tuned threshold must be installed and its f-measure the maximum.
	if e.MinSim() != res.MinSim {
		t.Error("tuned threshold not installed")
	}
	for gi, f := range res.F1ByGrid {
		if f > res.F1 {
			t.Errorf("grid[%d]=%v has f %v > reported best %v", gi, res.Grid[gi], f, res.F1)
		}
		if f < 0 || f > 1 {
			t.Errorf("f-measure %v out of range", f)
		}
	}
	// On synthetic rare-name pairs the engine should separate well: the
	// best threshold's average f-measure must be high.
	if res.F1 < 0.8 {
		t.Errorf("tuned f-measure %v too low", res.F1)
	}
	// A custom grid is respected.
	res2, err := e.TuneMinSim([]float64{0.5, 1.0}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MinSim != 0.5 && res2.MinSim != 1.0 {
		t.Errorf("tuned min-sim %v not from the custom grid", res2.MinSim)
	}
}

// tuneMinSimReference is the pre-dendrogram tuning loop — a full
// agglomeration and a pair-loop evaluation per (case × grid point) — kept
// verbatim so the dendrogram-cut fast path can be asserted bit-identical.
func tuneMinSimReference(e *Engine, grid []float64, maxCases int, seed int64) (*TuneResult, error) {
	if len(grid) == 0 {
		grid = []float64{0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	}
	if maxCases <= 0 {
		maxCases = 50
	}
	rare, err := trainset.RareNames(e.db, e.cfg.RefRelation, e.cfg.RefAttr, e.cfg.Train)
	if err != nil {
		return nil, err
	}
	var usable []string
	for _, name := range rare {
		if len(e.db.Referencing(e.cfg.RefRelation, e.cfg.RefAttr, name)) >= 2 {
			usable = append(usable, name)
		}
	}
	if len(usable) < 2 {
		return nil, fmt.Errorf("core: need at least two rare names to tune, have %d", len(usable))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(usable), func(i, j int) { usable[i], usable[j] = usable[j], usable[i] })
	nCases := len(usable) / 2
	if nCases > maxCases {
		nCases = maxCases
	}
	sums := make([]float64, len(grid))
	for c := 0; c < nCases; c++ {
		a, b := usable[2*c], usable[2*c+1]
		ra := e.RefsForName(a)
		rb := e.RefsForName(b)
		refs := append(append([]reldb.TupleID(nil), ra...), rb...)
		gold := eval.Clustering{ra, rb}
		m := e.Similarities(refs)
		for gi, ms := range grid {
			pred := ClusterMatrix(refs, m, e.cfg.Measure, ms)
			metrics, err := eval.Evaluate(eval.Clustering(pred), gold)
			if err != nil {
				return nil, err
			}
			sums[gi] += metrics.F1
		}
	}
	res := &TuneResult{Cases: nCases, Grid: grid, F1ByGrid: make([]float64, len(grid))}
	best := -1.0
	for gi := range grid {
		f := sums[gi] / float64(nCases)
		res.F1ByGrid[gi] = f
		if f > best {
			best = f
			res.MinSim = grid[gi]
			res.F1 = f
		}
	}
	return res, nil
}

// TestTuneMinSimBitIdenticalToReference pins the dendrogram-once sweep to
// the per-threshold reference: identical TuneResult down to the float bits,
// one recording agglomeration per case (verified by counter), and direct
// reruns only for counted prefix-consistency fallbacks.
func TestTuneMinSimBitIdenticalToReference(t *testing.T) {
	w := testWorld(t)
	cfg := engineConfig(w, true)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	e, err := NewEngine(w.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 3; seed++ {
		want, err := tuneMinSimReference(e, nil, 20, seed)
		if err != nil {
			t.Fatal(err)
		}
		runsBefore := reg.Counter("cluster.runs").Value()
		dendBefore := reg.Counter("cluster.dendrogram_runs").Value()
		fallBefore := reg.Counter("cluster.dendrogram_fallbacks").Value()
		got, err := e.TuneMinSim(nil, 20, seed)
		if err != nil {
			t.Fatal(err)
		}

		if got.Cases != want.Cases || got.MinSim != want.MinSim ||
			math.Float64bits(got.F1) != math.Float64bits(want.F1) {
			t.Fatalf("seed %d: TuneResult mismatch\nwant %+v\ngot  %+v", seed, want, got)
		}
		if len(got.F1ByGrid) != len(want.F1ByGrid) {
			t.Fatalf("seed %d: grid lengths differ", seed)
		}
		for gi := range want.F1ByGrid {
			if math.Float64bits(got.F1ByGrid[gi]) != math.Float64bits(want.F1ByGrid[gi]) {
				t.Fatalf("seed %d grid[%d]: f1 %v != reference %v",
					seed, gi, got.F1ByGrid[gi], want.F1ByGrid[gi])
			}
		}

		dend := reg.Counter("cluster.dendrogram_runs").Value() - dendBefore
		runs := reg.Counter("cluster.runs").Value() - runsBefore
		falls := reg.Counter("cluster.dendrogram_fallbacks").Value() - fallBefore
		if dend != int64(got.Cases) {
			t.Errorf("seed %d: %d dendrogram runs for %d cases (want one per case)",
				seed, dend, got.Cases)
		}
		if runs != falls {
			t.Errorf("seed %d: %d direct runs but %d fallbacks (every rerun must be a counted fallback)",
				seed, runs, falls)
		}
		if maxRuns := int64(got.Cases * len(got.Grid)); falls >= maxRuns {
			t.Errorf("seed %d: %d fallbacks out of %d cuts — the fast path never engaged",
				seed, falls, maxRuns)
		}
	}
}

func TestTuneMinSimFailsWithoutRareNames(t *testing.T) {
	w := testWorld(t)
	cfg := engineConfig(w, true)
	cfg.Train.MaxFirstFreq = 1
	cfg.Train.MaxLastFreq = 1
	// Exclude everything by making rarity unsatisfiable for names with refs.
	cfg.Train.MinRefs = 2
	e, err := NewEngine(w.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TuneMinSim(nil, 10, 1); err == nil {
		// Thresholds of 1/1 can still admit names; only fail when truly none.
		t.Skip("world still has ultra-rare names; nothing to assert")
	}
}

func TestSetMeasureAndMinSim(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	e.SetMinSim(0.123)
	if e.MinSim() != 0.123 {
		t.Error("SetMinSim did not stick")
	}
}

func TestNameAffinityAndSampling(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// Affinity of an ambiguous name with itself is positive (its refs share
	// linkage); with a missing name it is zero.
	if got := e.NameAffinity("Wei Wang", "Wei Wang"); got <= 0 {
		t.Errorf("self affinity = %v", got)
	}
	if e.NameAffinity("Wei Wang", "No Such Name") != 0 {
		t.Error("missing-name affinity not zero")
	}
	// strideSample: identity below the cap, even coverage above it.
	refs := e.RefsForName("Wei Wang")
	if got := strideSample(refs, len(refs)+1); len(got) != len(refs) {
		t.Error("sample below cap changed length")
	}
	s := strideSample(refs, 5)
	if len(s) != 5 {
		t.Fatalf("sample = %d", len(s))
	}
	if s[0] != refs[0] {
		t.Error("stride sample does not start at the first reference")
	}
	seen := map[int32]bool{}
	for _, r := range s {
		if seen[int32(r)] {
			t.Error("stride sample repeated a reference")
		}
		seen[int32(r)] = true
	}
}
