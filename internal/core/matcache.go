package core

import (
	"container/list"
	"sync"

	"distinct/internal/reldb"
)

// Matrix reuse across sweeps: the min-sim grid, SetMinSim re-evaluations,
// and the Figure-4 / expansion ablation variants all re-cluster the same
// reference blocks under different weights or thresholds. The per-path
// matrices (PathMatrices) depend only on (reference list, database
// contents, path set) — never on weights or min-sim — so they can be
// computed once and re-combined cheaply (Combine is O(paths·n²) adds;
// the matrices cost propagation plus the all-pairs kernel).
//
// The cache keys on (refs, db.Version(), path count). The version is the
// database's mutation counter, so an Insert invalidates every prior entry:
// a stale entry's key can never be produced again (versions are monotonic)
// and is dropped eagerly when its bucket is probed. Entries are bounded by
// a byte budget with LRU eviction.
//
// Reuse is opt-in (Engine.EnableMatrixReuse): the one-shot batch path
// computes each block's matrices exactly once already, and caching there
// would only add memory pressure and bookkeeping to the hottest path.

// DefaultMatrixCacheBytes is the byte budget EnableMatrixReuse(0) installs.
// A block of n references over p paths costs 16·p·n² bytes plus row
// headers; 64 MiB holds e.g. ~40 blocks of 100 refs × 20 paths.
const DefaultMatrixCacheBytes = 64 << 20

// matEntry is one cached (refs, version) → PathMatrices binding.
type matEntry struct {
	key      uint64
	refs     []reldb.TupleID // copied: cache keys must not alias caller slices
	version  int64
	numPaths int
	pm       *PathMatrices
	bytes    int64
	elem     *list.Element
}

// matrixCache is a byte-bounded LRU over PathMatrices. Safe for concurrent
// use; the engine may compute blocks from parallel workers.
type matrixCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used; values are *matEntry
	buckets map[uint64][]*matEntry
}

func newMatrixCache(budget int64) *matrixCache {
	return &matrixCache{budget: budget, ll: list.New(), buckets: make(map[uint64][]*matEntry)}
}

// matKey hashes (refs, numPaths) with FNV-1a. The version is deliberately
// left out of the hash so every version of the same block lands in one
// bucket — that is what lets get purge stale versions the moment a newer
// one is requested. Collisions are resolved by full comparison in the
// bucket, so the hash only affects distribution, not correctness.
func matKey(refs []reldb.TupleID, numPaths int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(numPaths))
	for _, r := range refs {
		mix(uint64(uint32(r)))
	}
	return h
}

func (e *matEntry) matches(refs []reldb.TupleID, version int64, numPaths int) bool {
	if e.version != version || e.numPaths != numPaths || len(e.refs) != len(refs) {
		return false
	}
	for i, r := range refs {
		if e.refs[i] != r {
			return false
		}
	}
	return true
}

// get returns the cached matrices for (refs, version), or nil. The probed
// bucket is purged of stale versions on the way: a version older than the
// requested one can never match again (Insert only increments), so this is
// the explicit invalidation point for mutated databases.
func (c *matrixCache) get(refs []reldb.TupleID, version int64, numPaths int) *PathMatrices {
	key := matKey(refs, numPaths)
	c.mu.Lock()
	defer c.mu.Unlock()
	bucket := c.buckets[key]
	kept := bucket[:0]
	var hit *matEntry
	for _, e := range bucket {
		if e.version < version {
			c.used -= e.bytes
			c.ll.Remove(e.elem)
			continue
		}
		kept = append(kept, e)
		if hit == nil && e.matches(refs, version, numPaths) {
			hit = e
		}
	}
	if len(kept) == 0 {
		delete(c.buckets, key)
	} else {
		c.buckets[key] = kept
	}
	if hit == nil {
		return nil
	}
	c.ll.MoveToFront(hit.elem)
	return hit.pm
}

// put stores pm under (refs, version), evicting least-recently-used entries
// beyond the byte budget, and returns how many entries were evicted. An
// entry larger than the whole budget is still kept (alone): the sweeps the
// cache exists for would otherwise never hit.
func (c *matrixCache) put(refs []reldb.TupleID, version int64, pm *PathMatrices) int64 {
	numPaths := len(pm.R)
	key := matKey(refs, numPaths)
	e := &matEntry{
		key:      key,
		refs:     append([]reldb.TupleID(nil), refs...),
		version:  version,
		numPaths: numPaths,
		pm:       pm,
		// Flat backing dominates; row headers are 24 bytes each.
		bytes: int64(16*len(pm.RFlat) + 48*numPaths*pm.NumRefs()),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, prev := range c.buckets[key] {
		if prev.matches(refs, version, numPaths) {
			return 0 // racing compute already stored this block
		}
	}
	e.elem = c.ll.PushFront(e)
	c.buckets[key] = append(c.buckets[key], e)
	c.used += e.bytes
	var evicted int64
	for c.used > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		victim := back.Value.(*matEntry)
		c.ll.Remove(back)
		c.used -= victim.bytes
		bucket := c.buckets[victim.key]
		for i, be := range bucket {
			if be == victim {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(c.buckets, victim.key)
		} else {
			c.buckets[victim.key] = bucket
		}
		evicted++
	}
	return evicted
}

// Len reports how many blocks are cached (for tests and gauges).
func (c *matrixCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// EnableMatrixReuse turns on the per-block PathMatrices cache (maxBytes 0
// means DefaultMatrixCacheBytes). With the cache on, PathSimilarities and
// Similarities reuse matrices computed for the same (refs, database
// version) — across min-sim grid points, SetMinSim re-evaluations, and
// weight ablations — and their path_sims stage span carries reused=true on
// a hit. Enable before sharing the engine between goroutines; the cache
// itself is concurrency-safe.
func (e *Engine) EnableMatrixReuse(maxBytes int64) {
	if maxBytes <= 0 {
		maxBytes = DefaultMatrixCacheBytes
	}
	e.matCache = newMatrixCache(maxBytes)
}

// DisableMatrixReuse drops the matrix cache and returns to always-compute.
func (e *Engine) DisableMatrixReuse() { e.matCache = nil }

// MatrixCacheLen reports how many blocks the matrix cache currently holds
// (0 when reuse is disabled).
func (e *Engine) MatrixCacheLen() int {
	if e.matCache == nil {
		return 0
	}
	return e.matCache.Len()
}
