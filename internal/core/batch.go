package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"distinct/internal/cluster"
	"distinct/internal/eval"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
	"distinct/internal/trainset"
)

// NameGroups is the disambiguation outcome for one name.
type NameGroups struct {
	Name   string
	Groups [][]reldb.TupleID
}

// IncidentReason classifies why a name landed in BatchResult.Incidents.
type IncidentReason string

const (
	// IncidentTimeout: the name blew its per-name budget and could not be
	// completed by the degraded retry either; its references were kept as
	// one conservative group.
	IncidentTimeout IncidentReason = "timeout"
	// IncidentDegraded: the name blew its budget once but completed within
	// a fresh budget in degraded mode (top-k join paths by learned weight).
	// Its groups are real output — just computed under the reduced path set.
	IncidentDegraded IncidentReason = "degraded"
	// IncidentPanic: disambiguating the name panicked; the panic was
	// recovered (stack captured in Err) and the references kept as one
	// conservative group. The process never dies from one bad block.
	IncidentPanic IncidentReason = "panic"
	// IncidentError: a non-cancellation error (e.g. an injected fault)
	// failed the name; its references were kept as one conservative group.
	IncidentError IncidentReason = "error"
)

// Incident records one name the batch sweep could not process normally.
// Nothing is ever dropped silently: a name either disambiguates cleanly,
// or appears here with the stage that failed, why, and how long it ran.
type Incident struct {
	Name    string
	Stage   string // pipeline stage that observed the failure ("" if unknown)
	Reason  IncidentReason
	Err     string // underlying error text
	Elapsed time.Duration
}

// BatchResult summarises a whole-database disambiguation pass.
//
// Partial-results contract: on a clean run Incidents is empty and
// NamesExamined counts every eligible name. When per-name budgets fire,
// every over-budget name still appears — degraded or as a conservative
// single group — with an Incidents entry. When the parent context ends
// mid-batch, DisambiguateAllCtx returns the error alongside a BatchResult
// covering exactly the names that completed before the cut.
type BatchResult struct {
	// NamesExamined counts the names (with at least minRefs references)
	// whose disambiguation completed — all of them on a clean run, fewer
	// when the parent context ended mid-batch.
	NamesExamined int
	// Split lists the names whose references were split into more than one
	// group — the suspected homonyms — sorted by group count descending,
	// then by name.
	Split []NameGroups
	// Incidents lists the names that timed out, degraded, panicked, or
	// failed, in work-list order.
	Incidents []Incident
}

// BatchOptions configures DisambiguateAllCtx.
type BatchOptions struct {
	// MinRefs is the minimum reference count for a name to be examined;
	// below 2 it is treated as 2 (a single reference cannot split).
	MinRefs int
	// NameTimeout, when positive, is the per-name budget. A name that blows
	// it is retried once in degraded mode under a fresh budget, and if
	// still over budget is recorded as an incident with its references kept
	// as one group. Zero means no per-name budget (the parent context still
	// applies).
	NameTimeout time.Duration
	// DegradedPaths is how many of the strongest join paths the degraded
	// retry keeps; 0 means DefaultDegradedPaths.
	DegradedPaths int
	// ForceDegraded runs the FIRST attempt on the degraded (top-k path)
	// view instead of reserving it for the over-budget retry — the serving
	// layer's brownout ladder sets it under sustained overload so every
	// compute sheds quality before the server sheds load. A successful
	// forced attempt carries an IncidentDegraded incident with stage
	// "brownout" so callers (and clients) can tell a server-forced
	// degradation from a budget-driven one. When the engine has no paths to
	// cut the attempt runs clean and no incident is reported.
	ForceDegraded bool
	// RetryGate, when non-nil, is consulted immediately before the degraded
	// retry of a blown budget. Returning false skips the retry — the name
	// goes straight to its conservative single group. The serving layer
	// plugs its retry budget in here so a saturated server does not double
	// its own load with retries; nil always allows the retry.
	RetryGate func() bool
}

// DisambiguateAll runs DISTINCT over every name with at least minRefs
// references — the "clean the whole database" operation a downstream user
// wants. Names whose references all collapse into one group are counted
// but not returned; names that split are reported with their groups.
//
// minRefs below 2 is treated as 2 (a single reference cannot split).
func (e *Engine) DisambiguateAll(minRefs int) (*BatchResult, error) {
	return e.DisambiguateAllCtx(context.Background(), BatchOptions{MinRefs: minRefs})
}

// DisambiguateAllCtx is DisambiguateAll under a context and per-name
// budgets (see BatchOptions and the BatchResult partial-results contract).
// Cancellation of ctx is observed between names and between chunks inside
// each name's stages; the returned error is wrapped with the stage that
// observed it, and the partial BatchResult is still returned.
func (e *Engine) DisambiguateAllCtx(ctx context.Context, opts BatchOptions) (*BatchResult, error) {
	minRefs := opts.MinRefs
	if minRefs < 2 {
		minRefs = 2
	}
	if err := checkStage(ctx, "batch"); err != nil {
		return nil, err
	}
	rs := e.db.Schema.Relation(e.cfg.RefRelation)
	ai := rs.AttrIndex(e.cfg.RefAttr)
	target := rs.Attrs[ai].FK
	nameRel := e.db.Relation(target)
	ki := nameRel.Schema.KeyIndex()

	// Collect the work list, then prefetch every needed neighborhood once;
	// after that the extractor cache is read-only and names can be
	// clustered concurrently.
	type job struct {
		name string
		refs []reldb.TupleID
	}
	var jobs []job
	var allRefs []reldb.TupleID
	for _, id := range nameRel.TupleIDs() {
		name := e.db.Tuple(id).Vals[ki]
		refs := e.RefsForName(name)
		if len(refs) < minRefs {
			continue
		}
		jobs = append(jobs, job{name: name, refs: refs})
		allRefs = append(allRefs, refs...)
	}
	if err := e.ext.PrefetchCtx(ctx, allRefs, e.cfg.Workers, e.root()); err != nil {
		return nil, stageErr("prefetch", err)
	}

	sp := e.obs.StartStage("batch")
	// One "batch" span with one child span per name. Per-name spans are
	// created from worker goroutines, so their ids and sibling order are
	// scheduling-dependent; each is uniquely named "name:<shared name>",
	// which is what the golden trace test sorts on.
	bsp := e.root().Start("batch", trace.Int("names", int64(len(jobs))))
	// Per-name latency lands in a histogram; the clock reads are guarded so
	// a disabled registry costs nothing per name.
	latency := e.obs.Histogram("batch.name_seconds", nil)
	results := make([][][]reldb.TupleID, len(jobs))
	incidents := make([]*Incident, len(jobs))
	// done[i] flips only after results[i]/incidents[i] are final; the
	// exactly-once index ownership of parallelForCtx plus its WaitGroup give
	// the happens-before edge, so no extra locking is needed.
	done := make([]bool, len(jobs))

	batchErr := parallelForCtx(ctx, len(jobs), e.cfg.Workers, func(i int) error {
		name, refs := jobs[i].name, jobs[i].refs
		nsp := bsp.Start(trace.NameSpanPrefix+name, trace.Int("refs", int64(len(refs))))
		t0 := time.Now()
		groups, inc, err := e.attemptLadder(ctx, nsp, name, refs, opts)
		if err != nil {
			// The parent context ended: not a per-name incident. Stop the
			// batch; the caller gets the partial result plus the error.
			nsp.End()
			return err
		}
		results[i] = groups
		if inc != nil {
			inc.Elapsed = time.Since(t0)
			incidents[i] = inc
			nsp.Event("incident",
				trace.String("reason", string(inc.Reason)),
				trace.String("stage", inc.Stage),
				trace.String("err", inc.Err))
		}
		done[i] = true
		if latency != nil {
			latency.ObserveDuration(time.Since(t0))
		}
		nsp.SetAttrs(trace.Int("groups", int64(len(groups))))
		nsp.End()
		return nil
	})

	completed := 0
	for _, d := range done {
		if d {
			completed++
		}
	}
	sp.End(completed)
	bsp.End()

	res := &BatchResult{NamesExamined: completed}
	for i, j := range jobs {
		if !done[i] {
			continue
		}
		if incidents[i] != nil {
			res.Incidents = append(res.Incidents, *incidents[i])
		}
		if len(results[i]) > 1 {
			res.Split = append(res.Split, NameGroups{Name: j.name, Groups: results[i]})
		}
	}
	e.obs.Counter("batch.names_examined").Add(int64(res.NamesExamined))
	e.obs.Counter("batch.names_split").Add(int64(len(res.Split)))
	// Incident counters appear only when incidents happen, so a clean run's
	// counter set stays bit-identical to the pre-resilience goldens.
	if len(res.Incidents) > 0 {
		e.obs.Counter("batch.incidents").Add(int64(len(res.Incidents)))
		for _, inc := range res.Incidents {
			e.obs.Counter("batch.incident_" + string(inc.Reason)).Inc()
		}
	}
	sort.Slice(res.Split, func(i, j int) bool {
		if len(res.Split[i].Groups) != len(res.Split[j].Groups) {
			return len(res.Split[i].Groups) > len(res.Split[j].Groups)
		}
		return res.Split[i].Name < res.Split[j].Name
	})
	if batchErr != nil {
		return res, stageErr("batch", batchErr)
	}
	return res, nil
}

// singleGroup is the conservative fallback for a name the batch could not
// disambiguate: all its references in one group — never listed as split,
// never dropped.
func singleGroup(refs []reldb.TupleID) [][]reldb.TupleID {
	return [][]reldb.TupleID{append([]reldb.TupleID(nil), refs...)}
}

// TuneResult reports a min-sim auto-tuning run.
type TuneResult struct {
	// MinSim is the best threshold found; F1 its average f-measure.
	MinSim float64
	F1     float64
	// Cases is the number of synthetic validation cases used.
	Cases int
	// Grid and F1ByGrid give the full sweep, aligned by index.
	Grid     []float64
	F1ByGrid []float64
}

// TuneMinSim selects the clustering threshold without any labeled data, by
// extending the paper's rare-name trick from training to validation: pairs
// of rare names (each presumed to denote one real object) are synthetically
// merged into pseudo-ambiguous names whose gold clustering is known — all
// references of rare name A form one cluster, those of rare name B the
// other. The threshold that best separates the synthetic cases on average
// is returned and installed on the engine.
//
// maxCases bounds the number of synthetic cases (rare-name pairs); grid is
// the thresholds to sweep (nil means the package default used by the
// experiments harness). Train's rarity options and exclusions apply, so
// evaluation names never leak into tuning.
//
// Each case is agglomerated once: the merge sequence is recorded as a
// dendrogram (cluster.AgglomerateDendrogram, one pooled Scratch reused
// across the sweep) and every grid point's partition is derived by a
// prefix cut, falling back to a direct run only when the cut is not
// prefix-consistent (cluster.dendrogram_fallbacks counts those). Scores
// come from eval.FromCounts over arithmetically derived pair counts, so
// the result is bit-identical to evaluating each grid point's clustering
// directly.
func (e *Engine) TuneMinSim(grid []float64, maxCases int, seed int64) (*TuneResult, error) {
	if len(grid) == 0 {
		grid = []float64{0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	}
	if maxCases <= 0 {
		maxCases = 50
	}
	rare, err := trainset.RareNames(e.db, e.cfg.RefRelation, e.cfg.RefAttr, e.cfg.Train)
	if err != nil {
		return nil, err
	}
	var usable []string
	for _, name := range rare {
		if len(e.db.Referencing(e.cfg.RefRelation, e.cfg.RefAttr, name)) >= 2 {
			usable = append(usable, name)
		}
	}
	if len(usable) < 2 {
		return nil, fmt.Errorf("core: need at least two rare names with 2+ references to tune min-sim, have %d", len(usable))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(usable), func(i, j int) { usable[i], usable[j] = usable[j], usable[i] })
	nCases := len(usable) / 2
	if nCases > maxCases {
		nCases = maxCases
	}

	sums := make([]float64, len(grid))
	scr := cluster.NewScratch()
	for c := 0; c < nCases; c++ {
		a, b := usable[2*c], usable[2*c+1]
		ra := e.RefsForName(a)
		rb := e.RefsForName(b)
		refs := append(append([]reldb.TupleID(nil), ra...), rb...)
		m := e.Similarities(refs)
		// One agglomeration per case: record the dendrogram, then derive
		// each grid point's partition by a prefix cut (direct rerun only on
		// a prefix-consistency violation, counted by the cluster package).
		d := cluster.AgglomerateDendrogram(len(refs), m, cluster.Options{
			Measure: e.cfg.Measure, Obs: e.obs, Scratch: scr,
		})
		na, nb := len(ra), len(rb)
		goldPairs := na*(na-1)/2 + nb*(nb-1)/2
		totalPairs := len(refs) * (len(refs) - 1) / 2
		for gi, ms := range grid {
			pred := cluster.CutOrAgglomerate(d, m, cluster.Options{
				Measure: e.cfg.Measure, MinSim: ms, Obs: e.obs, Scratch: scr,
			})
			// The gold clusters are the index ranges [0,na) and [na,n), so
			// the pairwise confusion counts follow arithmetically from each
			// predicted cluster's split across them — no membership maps,
			// no pair loop. eval.FromCounts keeps the score bit-identical
			// to eval.Evaluate over the materialised clusterings.
			tp, predPairs := 0, 0
			for _, cl := range pred {
				cntA := 0
				for _, x := range cl {
					if x < na {
						cntA++
					}
				}
				cntB := len(cl) - cntA
				tp += cntA*(cntA-1)/2 + cntB*(cntB-1)/2
				predPairs += len(cl) * (len(cl) - 1) / 2
			}
			met := eval.FromCounts(tp, predPairs-tp, goldPairs-tp,
				totalPairs-predPairs-goldPairs+tp)
			sums[gi] += met.F1
		}
	}

	res := &TuneResult{Cases: nCases, Grid: grid, F1ByGrid: make([]float64, len(grid))}
	best := -1.0
	for gi := range grid {
		f := sums[gi] / float64(nCases)
		res.F1ByGrid[gi] = f
		if f > best {
			best = f
			res.MinSim = grid[gi]
			res.F1 = f
		}
	}
	e.cfg.MinSim = res.MinSim
	return res, nil
}

// DisambiguateRefsAuto clusters the references with a per-name threshold:
// each name's dendrogram is cut at its largest similarity collapse
// (cluster.CutAtGap) when a crisp gap exists, and at the engine's
// configured min-sim otherwise — an extension beyond the paper's fixed
// global threshold.
func (e *Engine) DisambiguateRefsAuto(refs []reldb.TupleID) [][]reldb.TupleID {
	if len(refs) == 0 {
		return nil
	}
	m := e.Similarities(refs)
	idx := cluster.AgglomerateAuto(len(refs), m, e.cfg.Measure, cluster.DefaultGapRatio, e.cfg.MinSim)
	out := make([][]reldb.TupleID, len(idx))
	for i, c := range idx {
		out[i] = make([]reldb.TupleID, len(c))
		for j, x := range c {
			out[i][j] = refs[x]
		}
	}
	return out
}

// DisambiguateNameAuto is DisambiguateRefsAuto over every reference
// carrying the name.
func (e *Engine) DisambiguateNameAuto(name string) ([][]reldb.TupleID, error) {
	refs := e.RefsForName(name)
	if len(refs) == 0 {
		return nil, fmt.Errorf("core: no references named %q", name)
	}
	return e.DisambiguateRefsAuto(refs), nil
}

// MergeStep is one step of a merge profile: the similarity at which two
// clusters of the given sizes merged.
type MergeStep struct {
	Sim          float64
	SizeA, SizeB int
}

// MergeProfile clusters the references all the way down to one cluster
// (ignoring min-sim) and returns the similarity of every merge, first merge
// first. The profile is the practical way to choose min-sim by hand: the
// threshold belongs in the gap where the similarity collapses between
// "same object" merges and "different object" merges.
func (e *Engine) MergeProfile(refs []reldb.TupleID) []MergeStep {
	if len(refs) < 2 {
		return nil
	}
	m := e.Similarities(refs)
	d := cluster.AgglomerateDendrogram(len(refs), m, cluster.Options{
		Measure: e.cfg.Measure,
	})
	steps := make([]MergeStep, len(d.Merges))
	for i, mg := range d.Merges {
		steps[i] = MergeStep{Sim: mg.Sim, SizeA: int(mg.SizeA), SizeB: int(mg.SizeB)}
	}
	return steps
}

// NameAffinity returns the relational affinity between two names: the
// composite cluster similarity (geometric mean of average resemblance and
// collective walk probability) between the two names' full reference sets,
// under the engine's current weights. Record linkage uses it to verify
// that two similarly written names really denote one object — two
// spellings of one person share collaborators and venues; two people who
// merely have similar names do not.
func (e *Engine) NameAffinity(a, b string) float64 {
	ra, rb := e.RefsForName(a), e.RefsForName(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	// The affinity is an average over cross pairs, so an evenly strided
	// sample of each side estimates it without the quadratic blow-up on
	// very common names (a 1000-reference "James Smith" would otherwise
	// cost half a million pair computations per candidate).
	ra, rb = strideSample(ra, affinitySampleCap), strideSample(rb, affinitySampleCap)
	refs := append(append([]reldb.TupleID(nil), ra...), rb...)
	m := e.Similarities(refs)
	na := len(ra)
	var sumResem, walkAB, walkBA float64
	for i := 0; i < na; i++ {
		for j := na; j < len(refs); j++ {
			sumResem += m.R[i][j]
			walkAB += m.W[i][j]
			walkBA += m.W[j][i]
		}
	}
	nb := float64(len(rb))
	avgResem := sumResem / (float64(na) * nb)
	collWalk := (walkAB/float64(na) + walkBA/nb) / 2
	return math.Sqrt(avgResem * collWalk)
}

// affinitySampleCap bounds the per-name references NameAffinity compares.
const affinitySampleCap = 48

// strideSample returns up to max elements of refs at an even stride,
// preserving order; deterministic, so affinities are reproducible.
func strideSample(refs []reldb.TupleID, max int) []reldb.TupleID {
	if len(refs) <= max {
		return refs
	}
	out := make([]reldb.TupleID, max)
	for i := 0; i < max; i++ {
		out[i] = refs[i*len(refs)/max]
	}
	return out
}

// SetMinSim overrides the clustering threshold.
func (e *Engine) SetMinSim(v float64) { e.cfg.MinSim = v }

// MinSim returns the current clustering threshold.
func (e *Engine) MinSim() float64 { return e.cfg.MinSim }

// SetMeasure overrides the cluster similarity measure.
func (e *Engine) SetMeasure(m cluster.Measure) { e.cfg.Measure = m }
