package core

import (
	"context"
	"sort"

	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
)

// Blocking: two references have nonzero similarity only if they share at
// least one neighbor tuple along some positively weighted join path — both
// measures (set resemblance and random walk) are sums over the shared
// neighborhood. Grouping references into connected components of the
// "shares a neighbor tuple" relation therefore partitions them into blocks
// with exactly zero similarity across blocks; with any positive min-sim,
// clustering each block independently yields the identical result while
// skipping the quadratic pairwise work between blocks. This is the
// classic inverted-index blocking of the record-linkage literature, made
// exact here by the structure of the measures.

// unionFind is a standard disjoint-set with path halving.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// blocks partitions the references into connected components of the
// shared-neighbor relation, considering only join paths with a positive
// resemblance or walk weight. Each block lists indexes into refs, blocks
// ordered by smallest member, members ascending.
func (e *Engine) blocks(refs []reldb.TupleID) [][]int {
	out, err := e.blocksCtxAt(context.Background(), nil, refs)
	rethrow(err)
	return out
}

// blocksCtxAt is blocks with the stage span parented under parent and
// cancellation observed at the stage boundary and during prefetch.
func (e *Engine) blocksCtxAt(ctx context.Context, parent *trace.Span, refs []reldb.TupleID) ([][]int, error) {
	if err := checkStage(ctx, "blocks"); err != nil {
		return nil, err
	}
	sp := e.obs.StartStage("blocks")
	tsp := parent.Start("blocks", trace.Int("refs", int64(len(refs))))
	defer func() { sp.End(len(refs)) }()
	if err := e.ext.PrefetchCtx(ctx, refs, e.cfg.Workers, tsp); err != nil {
		tsp.End()
		return nil, stageErr("prefetch", err)
	}
	uf := newUnionFind(len(refs))
	nbsAll := e.ext.NeighborhoodsAll(refs, nil)
	// Inverted index: (path, neighbor tuple) -> first reference seen with
	// it; later references union with the first. The pair is packed into
	// one word (TupleID is 32-bit; path counts are far below 2^32) so the
	// map hashes 8 bytes instead of a 16-byte struct.
	first := make(map[uint64]int)
	for i := range refs {
		nbs := nbsAll[i]
		for p := range e.paths {
			if e.resemW[p] == 0 && e.walkW[p] == 0 {
				continue
			}
			pk := uint64(p) << 32
			for _, t := range nbs[p].Keys {
				k := pk | uint64(uint32(t))
				if j, ok := first[k]; ok {
					uf.union(i, j)
				} else {
					first[k] = i
				}
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := range refs {
		root := uf.find(i)
		byRoot[root] = append(byRoot[root], i)
	}
	out := make([][]int, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	if e.obs != nil {
		// Pairs kept is Σ over blocks of b(b-1)/2; pruned is what the
		// naive quadratic pass would have computed across blocks.
		n := int64(len(refs))
		naive := n * (n - 1) / 2
		var kept int64
		for _, b := range out {
			bn := int64(len(b))
			kept += bn * (bn - 1) / 2
		}
		e.obs.Counter("blocks.found").Add(int64(len(out)))
		e.obs.Counter("blocks.pairs_naive").Add(naive)
		e.obs.Counter("blocks.pairs_kept").Add(kept)
		e.obs.Counter("blocks.pairs_pruned").Add(naive - kept)
	}
	tsp.SetAttrs(trace.Int("blocks", int64(len(out))))
	tsp.End()
	return out, nil
}

// disambiguateBlocked clusters each block independently; exact for
// MinSim > 0 (see the comment above). Output clusters are ordered by their
// smallest reference position, matching the unblocked path bit for bit.
func (e *Engine) disambiguateBlocked(refs []reldb.TupleID) [][]reldb.TupleID {
	groups, err := e.disambiguateBlockedCtxAt(context.Background(), nil, refs)
	rethrow(err)
	return groups
}

// disambiguateBlockedCtxAt is disambiguateBlocked with stage spans parented
// under parent and cancellation observed between blocks.
func (e *Engine) disambiguateBlockedCtxAt(ctx context.Context, parent *trace.Span, refs []reldb.TupleID) ([][]reldb.TupleID, error) {
	blocks, err := e.blocksCtxAt(ctx, parent, refs)
	if err != nil {
		return nil, err
	}
	pos := make(map[reldb.TupleID]int, len(refs))
	for i, r := range refs {
		if _, dup := pos[r]; !dup {
			pos[r] = i
		}
	}
	type ordered struct {
		at      int
		cluster []reldb.TupleID
	}
	var all []ordered
	for _, block := range blocks {
		sub := make([]reldb.TupleID, len(block))
		for i, x := range block {
			sub[i] = refs[x]
		}
		var clusters [][]reldb.TupleID
		if len(sub) == 1 {
			clusters = [][]reldb.TupleID{sub}
		} else {
			m, err := e.similaritiesCtxAt(ctx, parent, sub)
			if err != nil {
				return nil, err
			}
			if clusters, err = e.clusterRefsCtxAt(ctx, parent, sub, m); err != nil {
				return nil, err
			}
		}
		for _, c := range clusters {
			all = append(all, ordered{at: pos[c[0]], cluster: c})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].at < all[j].at })
	out := make([][]reldb.TupleID, len(all))
	for i, o := range all {
		out[i] = o.cluster
	}
	return out, nil
}
