package core

import (
	"math"
	"strings"
	"testing"
)

func TestExplainMatchesSimilarities(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	refs := e.RefsForName("Wei Wang")
	m := e.Similarities(refs[:6])
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			ex := e.Explain(refs[i], refs[j])
			if math.Abs(ex.Resem-m.R[i][j]) > 1e-12 {
				t.Fatalf("Explain resem %v != matrix %v", ex.Resem, m.R[i][j])
			}
			symWalk := (m.W[i][j] + m.W[j][i]) / 2
			if math.Abs(ex.Walk-symWalk) > 1e-12 {
				t.Fatalf("Explain walk %v != matrix %v", ex.Walk, symWalk)
			}
		}
	}
}

func TestExplainOrderingAndFormat(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")
	// Two references of the same identity share linkage.
	gold := w.GoldClusters("Wei Wang")
	same := e.MapRefs(gold[0][:2])
	ex := e.Explain(same[0], same[1])
	if len(ex.Contributions) == 0 {
		t.Fatal("no contributions for same-identity pair")
	}
	// Contributions sorted by weighted total descending.
	for i := 1; i < len(ex.Contributions); i++ {
		a := ex.Contributions[i-1]
		b := ex.Contributions[i]
		if a.WeightedResem+a.WeightedWalk < b.WeightedResem+b.WeightedWalk {
			t.Fatal("contributions not sorted")
		}
	}
	out := ex.Format(e.DB().Schema)
	if !strings.Contains(out, "similarity(ref") || !strings.Contains(out, "resem") {
		t.Errorf("Format:\n%s", out)
	}
	_ = refs
}

func TestExplainDisjointPair(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	// Two references of different ambiguous names in different communities
	// can still share publisher/year linkage; construct a guaranteed-empty
	// explanation instead from a pair whose neighborhoods cannot overlap:
	// impossible to guarantee structurally, so just exercise the empty
	// formatting branch directly.
	ex := &Explanation{R1: 1, R2: 2}
	out := ex.Format(e.DB().Schema)
	if !strings.Contains(out, "no shared linkage") {
		t.Errorf("empty explanation format:\n%s", out)
	}
}
