package core

import (
	"reflect"
	"testing"

	"distinct/internal/reldb"
)

func TestBlocksPartition(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")
	blocks := e.blocks(refs)
	seen := make(map[int]bool)
	for _, b := range blocks {
		if len(b) == 0 {
			t.Fatal("empty block")
		}
		for _, x := range b {
			if x < 0 || x >= len(refs) || seen[x] {
				t.Fatalf("bad partition %v", blocks)
			}
			seen[x] = true
		}
	}
	if len(seen) != len(refs) {
		t.Fatalf("blocks cover %d of %d refs", len(seen), len(refs))
	}
	// Cross-block pairs really have zero similarity under current weights.
	if len(blocks) > 1 {
		m := e.Similarities(refs)
		blockOf := make([]int, len(refs))
		for bi, b := range blocks {
			for _, x := range b {
				blockOf[x] = bi
			}
		}
		for i := range refs {
			for j := i + 1; j < len(refs); j++ {
				if blockOf[i] != blockOf[j] {
					if m.R[i][j] != 0 || m.W[i][j] != 0 || m.W[j][i] != 0 {
						t.Fatalf("cross-block pair (%d,%d) has nonzero similarity", i, j)
					}
				}
			}
		}
	}
}

// TestBlockedMatchesUnblocked is the exactness claim: blocking must not
// change the clustering for any positive threshold.
func TestBlockedMatchesUnblocked(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, true)
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	for _, name := range w.AmbiguousNames() {
		refs := e.RefsForName(name)
		for _, minSim := range []float64{0.001, 0.005, 0.05} {
			e.SetMinSim(minSim)
			blocked := e.disambiguateBlocked(refs)
			plain := ClusterMatrix(refs, e.Similarities(refs), e.cfg.Measure, minSim)
			if !reflect.DeepEqual(blocked, plain) {
				t.Fatalf("%s at min-sim %v: blocked %v != plain %v", name, minSim, blocked, plain)
			}
		}
	}
}

// Zero-weight paths must not link blocks.
func TestBlocksIgnoreZeroWeightPaths(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")
	before := len(e.blocks(refs))
	// Zero out every weight except the first path's: components can only
	// grow coarser or stay equal in count.
	n := len(e.Paths())
	wv := make([]float64, n)
	wv[0] = 1
	if err := e.SetWeights(wv, wv); err != nil {
		t.Fatal(err)
	}
	after := len(e.blocks(refs))
	if after < before {
		t.Errorf("restricting paths reduced block count: %d -> %d", before, after)
	}
}

func TestBlocksSingleRef(t *testing.T) {
	w := testWorld(t)
	e := newTestEngine(t, w, false)
	refs := e.RefsForName("Wei Wang")[:1]
	blocks := e.blocks(refs)
	if len(blocks) != 1 || len(blocks[0]) != 1 {
		t.Errorf("blocks = %v", blocks)
	}
	groups := e.DisambiguateRefs(refs)
	if len(groups) != 1 || groups[0][0] != refs[0] {
		t.Errorf("groups = %v", groups)
	}
	_ = reldb.InvalidTuple
}
