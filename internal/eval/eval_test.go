package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distinct/internal/reldb"
)

func ids(xs ...int) []reldb.TupleID {
	out := make([]reldb.TupleID, len(xs))
	for i, x := range xs {
		out[i] = reldb.TupleID(x)
	}
	return out
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestEvaluatePerfect(t *testing.T) {
	gold := Clustering{ids(1, 2, 3), ids(4, 5)}
	m, err := Evaluate(gold, gold)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 || m.Accuracy != 1 {
		t.Errorf("perfect clustering scored %v", m)
	}
	if m.TP != 4 || m.FP != 0 || m.FN != 0 || m.TN != 6 {
		t.Errorf("counts %+v", m)
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	gold := Clustering{ids(1, 2, 3), ids(4, 5)}
	pred := Clustering{ids(1, 2), ids(3, 4, 5)}
	m, err := Evaluate(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	// Pred pairs: (1,2) (3,4) (3,5) (4,5). Gold pairs: (1,2)(1,3)(2,3)(4,5).
	// TP = {(1,2),(4,5)} = 2; FP = {(3,4),(3,5)} = 2; FN = {(1,3),(2,3)} = 2.
	if m.TP != 2 || m.FP != 2 || m.FN != 2 {
		t.Fatalf("counts %+v", m)
	}
	if !approx(m.Precision, 0.5) || !approx(m.Recall, 0.5) || !approx(m.F1, 0.5) {
		t.Errorf("metrics %v", m)
	}
	// 10 pairs total, TN = 4, accuracy = 6/10.
	if !approx(m.Accuracy, 0.6) {
		t.Errorf("accuracy %v", m.Accuracy)
	}
}

func TestEvaluateAllSingletons(t *testing.T) {
	gold := Clustering{ids(1, 2), ids(3)}
	pred := Clustering{ids(1), ids(2), ids(3)}
	m, err := Evaluate(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	// No predicted pair: precision vacuously 1, recall 0.
	if m.Precision != 1 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("singleton metrics %v", m)
	}
}

func TestEvaluateErrors(t *testing.T) {
	gold := Clustering{ids(1, 2)}
	if _, err := Evaluate(Clustering{ids(1)}, gold); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Evaluate(Clustering{ids(1, 1)}, Clustering{ids(1), ids(1)}); err == nil {
		t.Error("duplicate reference accepted")
	}
	if _, err := Evaluate(Clustering{ids(1, 3)}, gold); err == nil {
		t.Error("disjoint reference sets accepted")
	}
	if _, err := Evaluate(Clustering{ids(1, 2)}, Clustering{ids(1, 1)}); err == nil {
		t.Error("duplicate in gold accepted")
	}
}

func TestEvaluateStringAndItems(t *testing.T) {
	c := Clustering{ids(1, 2), ids(3)}
	if c.NumItems() != 3 || len(c.Items()) != 3 {
		t.Error("Items/NumItems wrong")
	}
	m, _ := Evaluate(c, c)
	s := m.String()
	if len(s) == 0 || s[0] != 'p' {
		t.Errorf("String = %q", s)
	}
}

func TestAverage(t *testing.T) {
	ms := []Metrics{
		{Precision: 1, Recall: 0.5, F1: 2.0 / 3, Accuracy: 0.8},
		{Precision: 0.5, Recall: 1, F1: 2.0 / 3, Accuracy: 0.6},
	}
	a := Average(ms)
	if !approx(a.Precision, 0.75) || !approx(a.Recall, 0.75) || !approx(a.Accuracy, 0.7) {
		t.Errorf("Average = %v", a)
	}
	if z := Average(nil); z.Precision != 0 {
		t.Errorf("Average(nil) = %v", z)
	}
}

func TestBCubedPerfectAndHand(t *testing.T) {
	gold := Clustering{ids(1, 2, 3), ids(4, 5)}
	b, err := BCubed(gold, gold)
	if err != nil {
		t.Fatal(err)
	}
	if b.Precision != 1 || b.Recall != 1 || b.F1 != 1 {
		t.Errorf("perfect B-cubed %v", b)
	}
	pred := Clustering{ids(1, 2), ids(3, 4, 5)}
	b, err = BCubed(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	// Precision per ref: 1:1, 2:1, 3:1/3, 4:2/3, 5:2/3 -> mean 11/15.
	if !approx(b.Precision, 11.0/15) {
		t.Errorf("B-cubed precision %v, want %v", b.Precision, 11.0/15)
	}
	// Recall per ref: 1:2/3, 2:2/3, 3:1/3, 4:1, 5:1 -> mean 11/15.
	if !approx(b.Recall, 11.0/15) {
		t.Errorf("B-cubed recall %v", b.Recall)
	}
}

func TestBCubedErrors(t *testing.T) {
	if _, err := BCubed(Clustering{ids(1)}, Clustering{ids(1, 2)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := BCubed(Clustering{ids(1, 1)}, Clustering{ids(1), ids(2)}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := BCubed(Clustering{ids(1, 3)}, Clustering{ids(1, 2)}); err == nil {
		t.Error("disjoint sets accepted")
	}
}

// randomPartition splits 0..n-1 into random clusters.
func randomPartition(rng *rand.Rand, n, k int) Clustering {
	c := make(Clustering, k)
	for i := 0; i < n; i++ {
		j := rng.Intn(k)
		c[j] = append(c[j], reldb.TupleID(i))
	}
	out := c[:0]
	for _, cl := range c {
		if len(cl) > 0 {
			out = append(out, cl)
		}
	}
	return out
}

// Properties: metrics are bounded in [0,1]; evaluating a clustering against
// itself is perfect; pairwise counts sum to n(n-1)/2.
func TestEvaluateProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		gold := randomPartition(rng, n, 1+rng.Intn(5))
		pred := randomPartition(rng, n, 1+rng.Intn(5))
		m, err := Evaluate(pred, gold)
		if err != nil {
			return false
		}
		if m.TP+m.FP+m.FN+m.TN != n*(n-1)/2 {
			return false
		}
		for _, v := range []float64{m.Precision, m.Recall, m.F1, m.Accuracy} {
			if v < 0 || v > 1 {
				return false
			}
		}
		self, err := Evaluate(gold, gold)
		if err != nil || self.F1 != 1 || self.Accuracy != 1 {
			return false
		}
		b, err := BCubed(pred, gold)
		if err != nil || b.Precision < 0 || b.Precision > 1 || b.Recall < 0 || b.Recall > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
