package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdjustedRandIdentical(t *testing.T) {
	c := Clustering{ids(1, 2, 3), ids(4, 5)}
	ari, err := AdjustedRand(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari-1) > 1e-12 {
		t.Errorf("ARI of identical partitions = %v", ari)
	}
}

func TestAdjustedRandHandComputed(t *testing.T) {
	// Classic example: pred {1,2}{3,4,5}, gold {1,2,3}{4,5}.
	pred := Clustering{ids(1, 2), ids(3, 4, 5)}
	gold := Clustering{ids(1, 2, 3), ids(4, 5)}
	ari, err := AdjustedRand(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	// sumJoint: cells {1,2}->2C2=1, {3}->0, {4,5}->1 => 2.
	// sumPred: 1 + 3 = 4; sumGold: 3 + 1 = 4; total = 10.
	// expected = 16/10 = 1.6; max = 4; ARI = (2-1.6)/(4-1.6) = 1/6.
	want := (2.0 - 1.6) / (4.0 - 1.6)
	if math.Abs(ari-want) > 1e-12 {
		t.Errorf("ARI = %v, want %v", ari, want)
	}
}

func TestAdjustedRandDegenerate(t *testing.T) {
	// Both all-singletons: identical partitions, ARI 1 by convention.
	a := Clustering{ids(1), ids(2), ids(3)}
	ari, err := AdjustedRand(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1 {
		t.Errorf("singleton ARI = %v", ari)
	}
	// Single reference.
	one := Clustering{ids(7)}
	if ari, _ := AdjustedRand(one, one); ari != 1 {
		t.Errorf("n=1 ARI = %v", ari)
	}
}

func TestAdjustedRandErrors(t *testing.T) {
	if _, err := AdjustedRand(Clustering{ids(1)}, Clustering{ids(1, 2)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := AdjustedRand(Clustering{ids(1, 1)}, Clustering{ids(1), ids(2)}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := AdjustedRand(Clustering{ids(1, 3)}, Clustering{ids(1, 2)}); err == nil {
		t.Error("disjoint item sets accepted")
	}
}

// Property: ARI is symmetric, at most 1, and near 0 on independent random
// partitions (averaged over trials).
func TestAdjustedRandProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sum float64
	trials := 60
	for i := 0; i < trials; i++ {
		n := 20 + rng.Intn(20)
		a := randomPartition(rng, n, 2+rng.Intn(4))
		b := randomPartition(rng, n, 2+rng.Intn(4))
		x, err := AdjustedRand(a, b)
		if err != nil {
			t.Fatal(err)
		}
		y, err := AdjustedRand(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x-y) > 1e-12 {
			t.Fatalf("ARI asymmetric: %v vs %v", x, y)
		}
		if x > 1+1e-12 {
			t.Fatalf("ARI %v above 1", x)
		}
		sum += x
	}
	mean := sum / float64(trials)
	if math.Abs(mean) > 0.1 {
		t.Errorf("mean ARI of independent partitions = %v, want ~0", mean)
	}
}
