// Package eval scores a predicted clustering of references against the
// gold standard, using the pairwise precision / recall / f-measure of the
// DISTINCT paper (Section 5): TP counts reference pairs co-clustered in both
// the prediction and the gold standard, FP pairs co-clustered only in the
// prediction, FN pairs co-clustered only in the gold standard.
//
// Accuracy — the fraction of all reference pairs classified correctly,
// (TP+TN)/(TP+TN+FP+FN) — is reported as well; the paper's Figure 4 plots
// both accuracy and f-measure. B-cubed metrics are provided as an extension
// beyond the paper for users who prefer per-reference scoring.
package eval

import (
	"fmt"

	"distinct/internal/reldb"
)

// Clustering is a partition of references into clusters.
type Clustering [][]reldb.TupleID

// Items returns all references of the clustering, in cluster order.
func (c Clustering) Items() []reldb.TupleID {
	var out []reldb.TupleID
	for _, cl := range c {
		out = append(out, cl...)
	}
	return out
}

// NumItems returns the total number of references.
func (c Clustering) NumItems() int {
	n := 0
	for _, cl := range c {
		n += len(cl)
	}
	return n
}

// Metrics are the pairwise scores of one predicted clustering.
type Metrics struct {
	TP, FP, FN, TN int
	Precision      float64
	Recall         float64
	F1             float64
	Accuracy       float64
}

// String renders the metrics like the paper's Table 2 rows.
func (m Metrics) String() string {
	return fmt.Sprintf("precision=%.3f recall=%.3f f-measure=%.3f accuracy=%.3f",
		m.Precision, m.Recall, m.F1, m.Accuracy)
}

func membership(c Clustering) (map[reldb.TupleID]int, error) {
	m := make(map[reldb.TupleID]int, c.NumItems())
	for ci, cl := range c {
		for _, r := range cl {
			if _, dup := m[r]; dup {
				return nil, fmt.Errorf("eval: reference %d appears in two clusters", r)
			}
			m[r] = ci
		}
	}
	return m, nil
}

// Evaluate scores pred against gold. Both clusterings must partition the
// same set of references.
func Evaluate(pred, gold Clustering) (Metrics, error) {
	pm, err := membership(pred)
	if err != nil {
		return Metrics{}, fmt.Errorf("eval: predicted clustering: %w", err)
	}
	gm, err := membership(gold)
	if err != nil {
		return Metrics{}, fmt.Errorf("eval: gold clustering: %w", err)
	}
	if len(pm) != len(gm) {
		return Metrics{}, fmt.Errorf("eval: predicted has %d references, gold has %d", len(pm), len(gm))
	}
	items := make([]reldb.TupleID, 0, len(pm))
	for r := range pm {
		if _, ok := gm[r]; !ok {
			return Metrics{}, fmt.Errorf("eval: reference %d missing from gold clustering", r)
		}
		items = append(items, r)
	}

	var m Metrics
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			samePred := pm[items[i]] == pm[items[j]]
			sameGold := gm[items[i]] == gm[items[j]]
			switch {
			case samePred && sameGold:
				m.TP++
			case samePred && !sameGold:
				m.FP++
			case !samePred && sameGold:
				m.FN++
			default:
				m.TN++
			}
		}
	}
	return FromCounts(m.TP, m.FP, m.FN, m.TN), nil
}

// FromCounts derives the pairwise metrics from confusion counts, applying
// the same vacuous-denominator conventions as Evaluate. Fast paths that
// count pairs arithmetically (Engine.TuneMinSim scores synthetic two-name
// cases straight off the index partition) share it with Evaluate, so their
// scores are bit-identical to the pair-loop's.
func FromCounts(tp, fp, fn, tn int) Metrics {
	m := Metrics{TP: tp, FP: fp, FN: fn, TN: tn}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	} else {
		// No pair was co-clustered: precision is vacuously perfect, matching
		// the paper's "no false positive" convention for singleton-heavy
		// predictions.
		m.Precision = 1
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	} else {
		m.Recall = 1
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	total := m.TP + m.FP + m.FN + m.TN
	if total > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(total)
	} else {
		m.Accuracy = 1
	}
	return m
}

// Average returns the unweighted mean of each metric, as the paper's
// "average" row in Table 2 does.
func Average(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var a Metrics
	for _, m := range ms {
		a.Precision += m.Precision
		a.Recall += m.Recall
		a.F1 += m.F1
		a.Accuracy += m.Accuracy
		a.TP += m.TP
		a.FP += m.FP
		a.FN += m.FN
		a.TN += m.TN
	}
	n := float64(len(ms))
	a.Precision /= n
	a.Recall /= n
	a.F1 /= n
	a.Accuracy /= n
	return a
}

// AdjustedRand computes the Adjusted Rand Index of pred against gold: the
// pairwise agreement corrected for chance, 1 for identical partitions,
// ~0 for independent ones, negative for worse-than-chance. An extension
// beyond the paper for users comparing against modern clustering work.
func AdjustedRand(pred, gold Clustering) (float64, error) {
	pm, err := membership(pred)
	if err != nil {
		return 0, err
	}
	gm, err := membership(gold)
	if err != nil {
		return 0, err
	}
	if len(pm) != len(gm) {
		return 0, fmt.Errorf("eval: predicted has %d references, gold has %d", len(pm), len(gm))
	}
	n := len(pm)
	if n < 2 {
		return 1, nil
	}
	// Contingency table counts.
	joint := make(map[[2]int]int)
	for r, pc := range pm {
		gc, ok := gm[r]
		if !ok {
			return 0, fmt.Errorf("eval: reference %d missing from gold clustering", r)
		}
		joint[[2]int{pc, gc}]++
	}
	choose2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }
	var sumJoint, sumPred, sumGold float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, cl := range pred {
		sumPred += choose2(len(cl))
	}
	for _, cl := range gold {
		sumGold += choose2(len(cl))
	}
	total := choose2(n)
	expected := sumPred * sumGold / total
	maxIdx := (sumPred + sumGold) / 2
	if maxIdx == expected {
		// Degenerate partitions (e.g. both all-singletons): identical by
		// construction when the joint sum matches.
		return 1, nil
	}
	return (sumJoint - expected) / (maxIdx - expected), nil
}

// BCubedMetrics are per-reference precision/recall scores.
type BCubedMetrics struct {
	Precision, Recall, F1 float64
}

// BCubed computes B-cubed precision and recall: for each reference, the
// fraction of its predicted cluster (resp. gold cluster) that shares its
// gold (resp. predicted) cluster, averaged over references. This extension
// is not in the paper but is standard in later entity-resolution work.
func BCubed(pred, gold Clustering) (BCubedMetrics, error) {
	pm, err := membership(pred)
	if err != nil {
		return BCubedMetrics{}, err
	}
	gm, err := membership(gold)
	if err != nil {
		return BCubedMetrics{}, err
	}
	if len(pm) != len(gm) {
		return BCubedMetrics{}, fmt.Errorf("eval: predicted has %d references, gold has %d", len(pm), len(gm))
	}
	var b BCubedMetrics
	n := 0
	for _, cl := range pred {
		for _, r := range cl {
			if _, ok := gm[r]; !ok {
				return BCubedMetrics{}, fmt.Errorf("eval: reference %d missing from gold clustering", r)
			}
			// Precision: same-gold fraction of r's predicted cluster.
			same := 0
			for _, o := range cl {
				if gm[o] == gm[r] {
					same++
				}
			}
			b.Precision += float64(same) / float64(len(cl))
			// Recall: same-pred fraction of r's gold cluster.
			gc := gold[gm[r]]
			same = 0
			for _, o := range gc {
				if pm[o] == pm[r] {
					same++
				}
			}
			b.Recall += float64(same) / float64(len(gc))
			n++
		}
	}
	if n > 0 {
		b.Precision /= float64(n)
		b.Recall /= float64(n)
	}
	if b.Precision+b.Recall > 0 {
		b.F1 = 2 * b.Precision * b.Recall / (b.Precision + b.Recall)
	}
	return b, nil
}
