package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// blobs builds a Matrix with two tight groups: indexes [0,mid) and [mid,n).
// Within-group resemblance/walk is high, cross-group is low.
func blobs(n, mid int, within, cross float64) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := cross
			if (i < mid) == (j < mid) {
				v = within
			}
			m.R[i][j] = v
			m.W[i][j] = v / 2
		}
	}
	return m
}

func TestAgglomerateTwoBlobs(t *testing.T) {
	m := blobs(6, 3, 0.9, 0.001)
	got := Agglomerate(6, m, Options{Measure: Combined, MinSim: 0.05})
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clusters = %v, want %v", got, want)
	}
}

func TestAgglomerateMinSimExtremes(t *testing.T) {
	m := blobs(5, 2, 0.9, 0.1)
	// Impossibly high threshold: all singletons.
	got := Agglomerate(5, m, Options{Measure: Combined, MinSim: 10})
	if len(got) != 5 {
		t.Errorf("high min-sim gave %d clusters, want 5", len(got))
	}
	// Zero threshold: everything merges into one cluster.
	got = Agglomerate(5, m, Options{Measure: Combined, MinSim: 0})
	if len(got) != 1 || len(got[0]) != 5 {
		t.Errorf("zero min-sim gave %v", got)
	}
}

func TestAgglomerateTrivialSizes(t *testing.T) {
	if got := Agglomerate(0, Matrix{}, Options{}); got != nil {
		t.Errorf("n=0 gave %v", got)
	}
	got := Agglomerate(1, NewMatrix(1), Options{MinSim: 0.1})
	if len(got) != 1 || got[0][0] != 0 {
		t.Errorf("n=1 gave %v", got)
	}
}

func TestMeasureSelectivity(t *testing.T) {
	// Resemblance links 0-1 strongly; walk links 1-2 strongly.
	m := NewMatrix(3)
	m.R[0][1], m.R[1][0] = 0.9, 0.9
	m.W[1][2], m.W[2][1] = 0.9, 0.9
	r := Agglomerate(3, m, Options{Measure: ResemOnly, MinSim: 0.5})
	if !reflect.DeepEqual(r, [][]int{{0, 1}, {2}}) {
		t.Errorf("ResemOnly = %v", r)
	}
	w := Agglomerate(3, m, Options{Measure: WalkOnly, MinSim: 0.3})
	if !reflect.DeepEqual(w, [][]int{{0}, {1, 2}}) {
		t.Errorf("WalkOnly = %v", w)
	}
	// Combined needs both signals; with each pair missing one, geometric
	// mean is 0 and nothing merges.
	c := Agglomerate(3, m, Options{Measure: Combined, MinSim: 0.01})
	if len(c) != 3 {
		t.Errorf("Combined = %v, want singletons", c)
	}
}

func TestSingleVsCompleteLink(t *testing.T) {
	// A chain: 0-1 and 1-2 similar, 0-2 dissimilar.
	m := NewMatrix(3)
	m.R[0][1], m.R[1][0] = 0.9, 0.9
	m.R[1][2], m.R[2][1] = 0.8, 0.8
	s := Agglomerate(3, m, Options{Measure: SingleLink, MinSim: 0.5})
	if len(s) != 1 {
		t.Errorf("SingleLink chained clustering = %v, want one cluster", s)
	}
	c := Agglomerate(3, m, Options{Measure: CompleteLink, MinSim: 0.5})
	// Complete link merges 0-1 (0.9) but then min(0-2,1-2)=0 blocks.
	if len(c) != 2 {
		t.Errorf("CompleteLink = %v, want two clusters", c)
	}
}

func TestCombinedGeometricVsArithmetic(t *testing.T) {
	// One pair has balanced signals, the other extremely lopsided ones with
	// a higher arithmetic mean. Geometric must prefer balance.
	m := NewMatrix(4)
	set := func(i, j int, r, w float64) {
		m.R[i][j], m.R[j][i] = r, r
		m.W[i][j], m.W[j][i] = w, w
	}
	set(0, 1, 0.4, 0.4)  // geometric 0.4, arithmetic 0.4
	set(2, 3, 0.9, 0.01) // geometric ~0.095, arithmetic ~0.455
	g := Agglomerate(4, m, Options{Measure: Combined, MinSim: 0.2})
	if !reflect.DeepEqual(g, [][]int{{0, 1}, {2}, {3}}) {
		t.Errorf("geometric measure = %v", g)
	}
	a := Agglomerate(4, m, Options{Measure: CombinedArithmetic, MinSim: 0.2})
	if !reflect.DeepEqual(a, [][]int{{0, 1}, {2, 3}}) {
		t.Errorf("arithmetic measure = %v", a)
	}
}

func TestMeasureString(t *testing.T) {
	for m, want := range map[Measure]string{
		Combined: "combined", ResemOnly: "set-resemblance", WalkOnly: "random-walk",
		CombinedArithmetic: "combined-arithmetic", SingleLink: "single-link",
		CompleteLink: "complete-link", Measure(99): "Measure(99)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Measure(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func randomMatrix(rng *rand.Rand, n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := rng.Float64()
			m.R[i][j], m.R[j][i] = r, r
			m.W[i][j] = rng.Float64()
			m.W[j][i] = rng.Float64()
		}
	}
	return m
}

// bruteForce re-implements agglomerative clustering naively: every step
// recomputes each cluster-pair similarity from the raw matrices. It mirrors
// Agglomerate's id-based tie-breaking (lower pair of cluster ids wins).
func bruteForce(n int, m Matrix, opts Options) [][]int {
	type cl struct {
		id      int
		members []int
	}
	var clusters []cl
	for i := 0; i < n; i++ {
		clusters = append(clusters, cl{id: i, members: []int{i}})
	}
	nextID := n
	simOf := func(a, b cl) float64 {
		lo, hi := a, b
		if lo.id > hi.id {
			lo, hi = hi, lo
		}
		var sumR, minR, maxR, wAB, wBA float64
		minR = math.Inf(1)
		maxR = math.Inf(-1)
		for _, x := range lo.members {
			for _, y := range hi.members {
				r := m.R[x][y]
				sumR += r
				minR = math.Min(minR, r)
				maxR = math.Max(maxR, r)
				wAB += m.W[x][y]
				wBA += m.W[y][x]
			}
		}
		pairs := float64(len(lo.members) * len(hi.members))
		avg := sumR / pairs
		coll := (wAB/float64(len(lo.members)) + wBA/float64(len(hi.members))) / 2
		switch opts.Measure {
		case ResemOnly:
			return avg
		case WalkOnly:
			return coll
		case CombinedArithmetic:
			return (avg + coll) / 2
		case SingleLink:
			return maxR
		case CompleteLink:
			return minR
		default:
			return math.Sqrt(avg * coll)
		}
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				a, b := clusters[i], clusters[j]
				lo, hi := a.id, b.id
				if lo > hi {
					lo, hi = hi, lo
				}
				s := simOf(a, b)
				better := s > best
				if !better && s == best && bi >= 0 {
					plo, phi := clusters[bi].id, clusters[bj].id
					if plo > phi {
						plo, phi = phi, plo
					}
					better = lo < plo || (lo == plo && hi < phi)
				}
				if better {
					bi, bj, best = i, j, s
				}
			}
		}
		if best < opts.MinSim {
			break
		}
		merged := cl{id: nextID, members: append(append([]int(nil),
			clusters[bi].members...), clusters[bj].members...)}
		nextID++
		var rest []cl
		for k, c := range clusters {
			if k != bi && k != bj {
				rest = append(rest, c)
			}
		}
		clusters = append(rest, merged)
	}
	var out [][]int
	for _, c := range clusters {
		ms := append([]int(nil), c.members...)
		for i := 1; i < len(ms); i++ {
			for j := i; j > 0 && ms[j] < ms[j-1]; j-- {
				ms[j], ms[j-1] = ms[j-1], ms[j]
			}
		}
		out = append(out, ms)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestIncrementalMatchesBruteForce is the Section 4.2 validation: the
// incremental aggregation must produce exactly the clustering a full
// recomputation produces, for every measure.
func TestIncrementalMatchesBruteForce(t *testing.T) {
	measures := []Measure{Combined, ResemOnly, WalkOnly, CombinedArithmetic, SingleLink, CompleteLink}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		m := randomMatrix(rng, n)
		minSim := rng.Float64() * 0.5
		for _, meas := range measures {
			opts := Options{Measure: meas, MinSim: minSim}
			fast := Agglomerate(n, m, opts)
			slow := bruteForce(n, m, opts)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("seed %d measure %v: incremental %v != brute force %v",
					seed, meas, fast, slow)
			}
		}
	}
}

func TestAgglomerateDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 15)
	opts := Options{Measure: Combined, MinSim: 0.1}
	a := Agglomerate(15, m, opts)
	b := Agglomerate(15, m, opts)
	if !reflect.DeepEqual(a, b) {
		t.Error("clustering is not deterministic")
	}
}

// TestPartitionInvariant: output is always a partition of 0..n-1.
func TestPartitionInvariant(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		m := randomMatrix(rng, n)
		got := Agglomerate(n, m, Options{Measure: Combined, MinSim: rng.Float64()})
		seen := make(map[int]bool)
		for _, c := range got {
			if len(c) == 0 {
				t.Fatal("empty cluster emitted")
			}
			for _, x := range c {
				if x < 0 || x >= n || seen[x] {
					t.Fatalf("seed %d: bad partition %v", seed, got)
				}
				seen[x] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("seed %d: partition misses items: %v", seed, got)
		}
	}
}
