package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestTraceRecordsMerges(t *testing.T) {
	m := blobs(4, 2, 0.9, 0.001)
	out, trace := AgglomerateTrace(4, m, Options{Measure: Combined, MinSim: 0.05}, true)
	if len(out) != 2 {
		t.Fatalf("clusters %v", out)
	}
	// Two merges happen (0+1 and 2+3, in some order).
	if len(trace) != 2 {
		t.Fatalf("trace has %d merges, want 2", len(trace))
	}
	for _, mg := range trace {
		if len(mg.A) != 1 || len(mg.B) != 1 {
			t.Errorf("unexpected merge %v+%v", mg.A, mg.B)
		}
		if mg.Sim < 0.05 {
			t.Errorf("merge below min-sim recorded: %v", mg.Sim)
		}
	}
}

func TestTraceDescendingSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, 12)
	_, trace := AgglomerateTrace(12, m, Options{Measure: Combined, MinSim: 0}, true)
	if len(trace) != 11 {
		t.Fatalf("full merge needs 11 steps, got %d", len(trace))
	}
	// Agglomerative merges are not strictly monotone in general (a merged
	// cluster can form a better pair than any pre-merge pair under
	// average-link-style measures), but the first merge must be the global
	// best pair and every merge must carry a valid similarity.
	for i, mg := range trace {
		if mg.Sim < 0 {
			t.Errorf("merge %d has negative sim", i)
		}
		if len(mg.A)+len(mg.B) < 2 {
			t.Errorf("merge %d malformed", i)
		}
	}
	best := 0.0
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			st := pairStats{sumResem: m.R[i][j], minResem: m.R[i][j], maxResem: m.R[i][j],
				walkAB: m.W[i][j], walkBA: m.W[j][i]}
			if s := similarity(st, 1, 1, Combined); s > best {
				best = s
			}
		}
	}
	if trace[0].Sim != best {
		t.Errorf("first merge sim %v != global best pair %v", trace[0].Sim, best)
	}
}

func TestTraceOffMatchesOn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 10)
	opts := Options{Measure: Combined, MinSim: 0.1}
	a := Agglomerate(10, m, opts)
	b, trace := AgglomerateTrace(10, m, opts, true)
	if !reflect.DeepEqual(a, b) {
		t.Error("tracing changed the clustering")
	}
	c, noTrace := AgglomerateTrace(10, m, opts, false)
	if noTrace != nil {
		t.Error("trace returned despite withTrace=false")
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("withTrace=false changed the clustering")
	}
	// Merge count consistency: n - #clusters merges happened.
	if len(trace) != 10-len(a) {
		t.Errorf("trace %d merges for %d clusters", len(trace), len(a))
	}
}
