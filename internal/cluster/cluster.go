// Package cluster implements the agglomerative hierarchical clustering of
// DISTINCT (Section 4). Each reference starts as its own cluster; the most
// similar pair of clusters is merged repeatedly until the best similarity
// falls below a threshold (min-sim).
//
// Cluster-pair similarity is a composite measure: the geometric average of
//
//   - the Average-Link set resemblance between the clusters (the mean of the
//     learned resemblance over all cross-cluster reference pairs), and
//   - the collective random walk probability between the clusters (walking
//     from a uniformly chosen reference of one cluster to any reference of
//     the other, symmetrised).
//
// The geometric average keeps one measure from drowning out the other when
// their scales differ (Section 4.1). Alternative measures — each measure
// alone, arithmetic combination, single/complete link — are provided for the
// paper's Figure 4 variants and for ablation benchmarks.
//
// All per-pair statistics (sums, minima, maxima of the base similarities)
// are aggregable: merging clusters C1 and C2 derives every (C3, Ci) entry
// from the (C1, Ci) and (C2, Ci) entries in O(1), the incremental
// computation of Section 4.2.
package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"

	"distinct/internal/obs"
	"distinct/internal/obs/trace"
)

// PairSim supplies the base similarities between two references, identified
// by dense indexes 0..n-1.
type PairSim interface {
	// Resem returns the combined set resemblance between references i and j.
	// It must be symmetric.
	Resem(i, j int) float64
	// Walk returns the directed random walk probability from i to j.
	Walk(i, j int) float64
}

// Measure selects how cluster-pair similarity is derived from the base
// similarities.
type Measure int

const (
	// Combined is DISTINCT's measure: geometric mean of Average-Link
	// resemblance and collective walk probability.
	Combined Measure = iota
	// ResemOnly uses Average-Link set resemblance alone (the measure of
	// Bhattacharya & Getoor's relational clustering, reference [1]).
	ResemOnly
	// WalkOnly uses collective random walk probability alone (the measure
	// of Kalashnikov et al., reference [9]).
	WalkOnly
	// CombinedArithmetic replaces the geometric mean with an arithmetic
	// mean; an ablation showing why the paper picked the geometric mean.
	CombinedArithmetic
	// SingleLink and CompleteLink use the maximum/minimum resemblance over
	// cross-cluster pairs; ablations for the Section 4.1 discussion.
	SingleLink
	CompleteLink
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Combined:
		return "combined"
	case ResemOnly:
		return "set-resemblance"
	case WalkOnly:
		return "random-walk"
	case CombinedArithmetic:
		return "combined-arithmetic"
	case SingleLink:
		return "single-link"
	case CompleteLink:
		return "complete-link"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Options configures a clustering run.
type Options struct {
	Measure Measure
	// MinSim stops merging once the best cluster-pair similarity falls
	// below it. The paper runs DISTINCT with min-sim 0.0005.
	MinSim float64
	// Obs, when non-nil, receives the run's counters: cluster.runs,
	// cluster.merges, and cluster.pruned_below_minsim (candidate pairs the
	// stop threshold kept out of the merge heap). Counts accumulate
	// locally and post once per run, so instrumentation stays off the
	// merge loop's hot path.
	Obs *obs.Registry
	// Span, when non-nil, receives decision-level provenance: one "merge"
	// event per agglomeration step (cluster ids, sizes, and the composite
	// similarity it happened at) and one final "cut" event carrying the
	// stop statistics — merges, prunes, surviving clusters, the threshold,
	// the last accepted similarity, the best similarity the threshold
	// rejected, and the gap ratio between the two.
	Span *trace.Span
}

// pairStats aggregates the base similarities between two clusters. All
// fields merge additively or by min/max, so a cluster merge never rescans
// reference pairs.
type pairStats struct {
	sumResem           float64
	minResem, maxResem float64
	walkAB, walkBA     float64 // directed sums, A = lower cluster id
}

func (p pairStats) merge(q pairStats) pairStats {
	return pairStats{
		sumResem: p.sumResem + q.sumResem,
		minResem: math.Min(p.minResem, q.minResem),
		maxResem: math.Max(p.maxResem, q.maxResem),
		walkAB:   p.walkAB + q.walkAB,
		walkBA:   p.walkBA + q.walkBA,
	}
}

type clusterState struct {
	members []int
	alive   bool
}

type candidate struct {
	sim  float64
	a, b int // cluster ids, a < b
}

// candidateHeap is a max-heap of merge candidates under (sim desc, a asc,
// b asc) — a total order, so the pop sequence is a pure function of the
// contents and any correct heap yields the same merge order. Hand-rolled
// instead of container/heap so push/pop stay monomorphic: no interface
// boxing (one small allocation per push) and no indirect Less/Swap calls
// inside the merge loop.
type candidateHeap []candidate

func (h candidateHeap) less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim > h[j].sim
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}

func (h candidateHeap) down(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h candidateHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i, len(h))
	}
}

func (h *candidateHeap) push(c candidate) {
	s := append(*h, c)
	*h = s
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *candidateHeap) pop() candidate {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	s.down(0, n)
	return top
}

// Merge records one agglomeration step: the members of the two clusters
// merged and the similarity at which it happened. Merges arrive in
// descending similarity order, so the trace is the dendrogram profile —
// useful for choosing min-sim by inspecting where similarity collapses.
type Merge struct {
	A, B []int
	Sim  float64
}

// Agglomerate clusters n references under the options and returns the
// resulting partition as lists of reference indexes. Clusters are sorted by
// their smallest member and members ascending, so output is deterministic.
func Agglomerate(n int, ps PairSim, opts Options) [][]int {
	out, _ := AgglomerateTrace(n, ps, opts, false)
	return out
}

// AgglomerateCtx is Agglomerate under a context: cancellation is observed
// between heap-build rows and between merge iterations, so a pathological
// block aborts with latency bounded by one row / one merge step.
func AgglomerateCtx(ctx context.Context, n int, ps PairSim, opts Options) ([][]int, error) {
	out, _, err := AgglomerateTraceCtx(ctx, n, ps, opts, false)
	return out, err
}

// AgglomerateTrace is Agglomerate that also returns the merge trace when
// withTrace is set (tracing copies member slices, so it costs O(n²) extra
// in the worst case).
func AgglomerateTrace(n int, ps PairSim, opts Options, withTrace bool) ([][]int, []Merge) {
	out, mergeLog, _ := AgglomerateTraceCtx(context.Background(), n, ps, opts, withTrace)
	return out, mergeLog
}

// AgglomerateTraceCtx is AgglomerateTrace under a context (see
// AgglomerateCtx for where cancellation is observed).
func AgglomerateTraceCtx(ctx context.Context, n int, ps PairSim, opts Options, withTrace bool) ([][]int, []Merge, error) {
	if n <= 0 {
		return nil, nil, nil
	}
	var merges, pruned int64 // posted to opts.Obs once per run
	var mergeLog []Merge
	// Stop statistics for the final "cut" event: the similarity of the last
	// accepted merge and the best similarity MinSim rejected. Their ratio is
	// the gap the threshold sits in — a large ratio means the cut landed in
	// a crisp same-object/different-object boundary.
	var lastMergeSim, bestRejected float64
	span := opts.Span
	clusters := make([]clusterState, n, 2*n)
	for i := range clusters {
		clusters[i] = clusterState{members: []int{i}, alive: true}
	}
	stats := make(map[uint64]pairStats, n*(n-1)/2)
	h := make(candidateHeap, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		for j := i + 1; j < n; j++ {
			r := ps.Resem(i, j)
			st := pairStats{
				sumResem: r, minResem: r, maxResem: r,
				walkAB: ps.Walk(i, j), walkBA: ps.Walk(j, i),
			}
			stats[pairKey(i, j)] = st
			if s := similarity(st, 1, 1, opts.Measure); s >= opts.MinSim {
				h = append(h, candidate{sim: s, a: i, b: j})
			} else {
				pruned++
				if s > bestRejected {
					bestRejected = s
				}
			}
		}
	}
	h.init()

	for len(h) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		c := h.pop()
		if !clusters[c.a].alive || !clusters[c.b].alive {
			continue // stale entry for a merged-away cluster
		}
		// Cluster ids are never reused and a pair's stats never change while
		// both clusters are alive, so the popped similarity is current.
		merges++
		lastMergeSim = c.sim
		if span != nil {
			span.Event("merge",
				trace.Int("a", int64(c.a)), trace.Int("b", int64(c.b)),
				trace.Int("new", int64(len(clusters))),
				trace.Float("sim", c.sim),
				trace.Int("size_a", int64(len(clusters[c.a].members))),
				trace.Int("size_b", int64(len(clusters[c.b].members))))
		}
		clusters[c.a].alive = false
		clusters[c.b].alive = false
		nid := len(clusters)
		merged := append(append([]int(nil), clusters[c.a].members...), clusters[c.b].members...)
		clusters = append(clusters, clusterState{members: merged, alive: true})
		if withTrace {
			mergeLog = append(mergeLog, Merge{
				A:   append([]int(nil), clusters[c.a].members...),
				B:   append([]int(nil), clusters[c.b].members...),
				Sim: c.sim,
			})
		}

		for oid := range clusters[:nid] {
			if !clusters[oid].alive {
				continue
			}
			sa := takeStats(stats, oid, c.a)
			sb := takeStats(stats, oid, c.b)
			ns := mergeOriented(sa, sb, oid, c.a, c.b)
			stats[pairKey(oid, nid)] = ns
			s := similarity(ns, len(clusters[oid].members), len(merged), opts.Measure)
			if s >= opts.MinSim {
				h.push(candidate{sim: s, a: oid, b: nid})
			} else {
				pruned++
				if s > bestRejected {
					bestRejected = s
				}
			}
		}
		delete(stats, pairKey(c.a, c.b))
	}

	if opts.Obs != nil {
		opts.Obs.Counter("cluster.runs").Inc()
		opts.Obs.Counter("cluster.merges").Add(merges)
		opts.Obs.Counter("cluster.pruned_below_minsim").Add(pruned)
	}

	var out [][]int
	for _, c := range clusters {
		if c.alive {
			m := append([]int(nil), c.members...)
			sort.Ints(m)
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })

	if span != nil {
		// Gap ratio between the last accepted merge and the best rejected
		// candidate; 0 when either side is missing (no merges, or nothing
		// fell below the threshold).
		gap := 0.0
		if lastMergeSim > 0 && bestRejected > 0 {
			gap = lastMergeSim / bestRejected
		}
		span.Event("cut",
			trace.Int("merges", merges), trace.Int("pruned", pruned),
			trace.Int("clusters", int64(len(out))),
			trace.Float("min_sim", opts.MinSim),
			trace.Float("last_merge_sim", lastMergeSim),
			trace.Float("best_rejected_sim", bestRejected),
			trace.Float("gap", gap))
	}
	return out, mergeLog, nil
}

// pairKey packs a cluster pair into one word, low id in the high half.
// Cluster ids stay below 2n (n originals plus at most n-1 merges), so the
// halves never truncate for any clusterable input. An 8-byte key hashes in
// one word operation where the previous [2]int key paid memhash128.
func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// takeStats removes and returns the stats between clusters x and y, oriented
// so walkAB flows from min(x,y) to max(x,y).
func takeStats(stats map[uint64]pairStats, x, y int) pairStats {
	key := pairKey(x, y)
	st := stats[key]
	delete(stats, key)
	return st
}

// mergeOriented combines the (o, a) and (o, b) stats into the stats between
// o and the merged cluster. The merged cluster always receives the highest
// id, so the result's walkAB must flow o -> merged; both inputs are
// normalised to that orientation first (stored walkAB flows low id -> high).
func mergeOriented(sa, sb pairStats, o, a, b int) pairStats {
	if o > a {
		sa.walkAB, sa.walkBA = sa.walkBA, sa.walkAB
	}
	if o > b {
		sb.walkAB, sb.walkBA = sb.walkBA, sb.walkAB
	}
	return sa.merge(sb)
}

// similarity computes the cluster-pair similarity from aggregated stats.
// sizeA is the size of the lower-id cluster (walkAB flows from it).
func similarity(st pairStats, sizeA, sizeB int, m Measure) float64 {
	pairs := float64(sizeA * sizeB)
	avgResem := st.sumResem / pairs
	collWalk := (st.walkAB/float64(sizeA) + st.walkBA/float64(sizeB)) / 2
	switch m {
	case Combined:
		return math.Sqrt(avgResem * collWalk)
	case ResemOnly:
		return avgResem
	case WalkOnly:
		return collWalk
	case CombinedArithmetic:
		return (avgResem + collWalk) / 2
	case SingleLink:
		return st.maxResem
	case CompleteLink:
		return st.minResem
	default:
		return math.Sqrt(avgResem * collWalk)
	}
}

// Matrix is a dense PairSim backed by precomputed similarity matrices.
// NewMatrix backs both matrices with one flat row-major allocation (RFlat
// and WFlat; cell (i,j) at i·n + j); R and W are row views into it, so
// writes through either form are visible in both.
type Matrix struct {
	// R holds symmetric resemblance values; W holds directed walk values.
	R, W [][]float64
	// RFlat and WFlat are the flat backings when built by NewMatrix; nil
	// for matrices assembled from bare row slices.
	RFlat, WFlat []float64
}

// Resem implements PairSim.
func (m Matrix) Resem(i, j int) float64 { return m.R[i][j] }

// Walk implements PairSim.
func (m Matrix) Walk(i, j int) float64 { return m.W[i][j] }

// NewMatrix allocates an n×n zero matrix pair over one flat backing array.
func NewMatrix(n int) Matrix {
	backing := make([]float64, 2*n*n)
	rf := backing[: n*n : n*n]
	wf := backing[n*n:]
	rows := make([][]float64, 2*n)
	r, w := rows[:n:n], rows[n:]
	for i := 0; i < n; i++ {
		r[i] = rf[i*n : (i+1)*n : (i+1)*n]
		w[i] = wf[i*n : (i+1)*n : (i+1)*n]
	}
	return Matrix{R: r, W: w, RFlat: rf, WFlat: wf}
}
