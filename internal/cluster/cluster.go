// Package cluster implements the agglomerative hierarchical clustering of
// DISTINCT (Section 4). Each reference starts as its own cluster; the most
// similar pair of clusters is merged repeatedly until the best similarity
// falls below a threshold (min-sim).
//
// Cluster-pair similarity is a composite measure: the geometric average of
//
//   - the Average-Link set resemblance between the clusters (the mean of the
//     learned resemblance over all cross-cluster reference pairs), and
//   - the collective random walk probability between the clusters (walking
//     from a uniformly chosen reference of one cluster to any reference of
//     the other, symmetrised).
//
// The geometric average keeps one measure from drowning out the other when
// their scales differ (Section 4.1). Alternative measures — each measure
// alone, arithmetic combination, single/complete link — are provided for the
// paper's Figure 4 variants and for ablation benchmarks.
//
// All per-pair statistics (sums, minima, maxima of the base similarities)
// are aggregable: merging clusters C1 and C2 derives every (C3, Ci) entry
// from the (C1, Ci) and (C2, Ci) entries in O(1), the incremental
// computation of Section 4.2.
//
// The engine keeps all pair statistics in flat storage (see Scratch): the
// initial pairs in an arithmetically indexed triangle, post-merge stats in
// per-cluster rows, cluster membership in union-find parent links. Cluster
// ids are dense and never reused — originals are 0..n-1 and the i-th merge
// creates id n+i — so every lookup is array indexing and a warm run's merge
// loop performs no allocation. AgglomerateMapTrace preserves the previous
// map-based implementation as the bit-exactness reference.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"distinct/internal/fault"
	"distinct/internal/obs"
	"distinct/internal/obs/trace"
)

// PairSim supplies the base similarities between two references, identified
// by dense indexes 0..n-1.
type PairSim interface {
	// Resem returns the combined set resemblance between references i and j.
	// It must be symmetric.
	Resem(i, j int) float64
	// Walk returns the directed random walk probability from i to j.
	Walk(i, j int) float64
}

// Measure selects how cluster-pair similarity is derived from the base
// similarities.
type Measure int

const (
	// Combined is DISTINCT's measure: geometric mean of Average-Link
	// resemblance and collective walk probability.
	Combined Measure = iota
	// ResemOnly uses Average-Link set resemblance alone (the measure of
	// Bhattacharya & Getoor's relational clustering, reference [1]).
	ResemOnly
	// WalkOnly uses collective random walk probability alone (the measure
	// of Kalashnikov et al., reference [9]).
	WalkOnly
	// CombinedArithmetic replaces the geometric mean with an arithmetic
	// mean; an ablation showing why the paper picked the geometric mean.
	CombinedArithmetic
	// SingleLink and CompleteLink use the maximum/minimum resemblance over
	// cross-cluster pairs; ablations for the Section 4.1 discussion.
	SingleLink
	CompleteLink
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case Combined:
		return "combined"
	case ResemOnly:
		return "set-resemblance"
	case WalkOnly:
		return "random-walk"
	case CombinedArithmetic:
		return "combined-arithmetic"
	case SingleLink:
		return "single-link"
	case CompleteLink:
		return "complete-link"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Options configures a clustering run.
type Options struct {
	Measure Measure
	// MinSim stops merging once the best cluster-pair similarity falls
	// below it. The paper runs DISTINCT with min-sim 0.0005.
	MinSim float64
	// Obs, when non-nil, receives the run's counters: cluster.runs,
	// cluster.merges, cluster.pruned_below_minsim (candidate pairs the
	// stop threshold kept out of the merge heap), and
	// cluster.heap_stale_pops (heap entries popped after one of their
	// clusters was merged away). Counts accumulate locally and post once
	// per run, so instrumentation stays off the merge loop's hot path.
	Obs *obs.Registry
	// Span, when non-nil, receives decision-level provenance: one "merge"
	// event per agglomeration step (cluster ids, sizes, and the composite
	// similarity it happened at) and one final "cut" event carrying the
	// stop statistics — merges, prunes, surviving clusters, the threshold,
	// the last accepted similarity, the best similarity the threshold
	// rejected, and the gap ratio between the two.
	Span *trace.Span
	// Scratch, when non-nil, supplies the run's working buffers so a sweep
	// can reuse them explicitly (one Scratch per goroutine). When nil, a
	// pooled Scratch is used and returned to the pool on success.
	Scratch *Scratch
}

// pairStats aggregates the base similarities between two clusters. All
// fields merge additively or by min/max, so a cluster merge never rescans
// reference pairs.
type pairStats struct {
	sumResem           float64
	minResem, maxResem float64
	walkAB, walkBA     float64 // directed sums, A = lower cluster id
}

func (p pairStats) merge(q pairStats) pairStats {
	return pairStats{
		sumResem: p.sumResem + q.sumResem,
		minResem: math.Min(p.minResem, q.minResem),
		maxResem: math.Max(p.maxResem, q.maxResem),
		walkAB:   p.walkAB + q.walkAB,
		walkBA:   p.walkBA + q.walkBA,
	}
}

type candidate struct {
	sim  float64
	a, b int32 // cluster ids, a < b
}

// candidateHeap is a max-heap of merge candidates under (sim desc, a asc,
// b asc) — a total order, so the pop sequence is a pure function of the
// contents and any correct heap yields the same merge order. That also
// means removing stale entries (both already popped-and-skipped and
// compacted-away ones) can never change the order the live candidates pop
// in. Hand-rolled instead of container/heap so push/pop stay monomorphic:
// no interface boxing (one small allocation per push) and no indirect
// Less/Swap calls inside the merge loop.
type candidateHeap []candidate

func (h candidateHeap) less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim > h[j].sim
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}

func (h candidateHeap) down(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h candidateHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i, len(h))
	}
}

func (h *candidateHeap) push(c candidate) {
	s := append(*h, c)
	*h = s
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *candidateHeap) pop() candidate {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	s.down(0, n)
	return top
}

// compactMinHeap gates stale-entry compaction: below this size the wasted
// sift work is cheaper than rebuilding, so small blocks never compact.
const compactMinHeap = 1024

// Merge records one agglomeration step: the members of the two clusters
// merged and the similarity at which it happened. Merges arrive in
// descending similarity order, so the trace is the dendrogram profile —
// useful for choosing min-sim by inspecting where similarity collapses.
type Merge struct {
	A, B []int
	Sim  float64
}

// Agglomerate clusters n references under the options and returns the
// resulting partition as lists of reference indexes. Clusters are sorted by
// their smallest member and members ascending, so output is deterministic.
// The member slices share one backing array; append to a cluster only via
// the usual copy-on-grow semantics (they are carved at full capacity).
func Agglomerate(n int, ps PairSim, opts Options) [][]int {
	out, _ := AgglomerateTrace(n, ps, opts, false)
	return out
}

// AgglomerateCtx is Agglomerate under a context: cancellation is observed
// between heap-build rows and between merge iterations, so a pathological
// block aborts with latency bounded by one row / one merge step. The merge
// loop also exposes the "cluster.merge" fault point for chaos testing.
func AgglomerateCtx(ctx context.Context, n int, ps PairSim, opts Options) ([][]int, error) {
	out, _, err := AgglomerateTraceCtx(ctx, n, ps, opts, false)
	return out, err
}

// AgglomerateTrace is Agglomerate that also returns the merge trace when
// withTrace is set (tracing copies member slices, so it costs O(n²) extra
// in the worst case).
func AgglomerateTrace(n int, ps PairSim, opts Options, withTrace bool) ([][]int, []Merge) {
	out, mergeLog, _ := AgglomerateTraceCtx(context.Background(), n, ps, opts, withTrace)
	return out, mergeLog
}

// AgglomerateTraceCtx is AgglomerateTrace under a context (see
// AgglomerateCtx for where cancellation is observed).
func AgglomerateTraceCtx(ctx context.Context, n int, ps PairSim, opts Options, withTrace bool) ([][]int, []Merge, error) {
	return agglomerate(ctx, n, ps, opts, withTrace, nil)
}

// agglomerate is the shared engine behind the public entry points. When rec
// is non-nil it runs in dendrogram mode: MinSim is treated as 0, every
// merge is recorded into rec, and no partition is materialised.
//
// On error the scratch is NOT returned to the pool: a caller observing the
// error may be racing a hook that still holds the buffers, and a dropped
// scratch is cheaper than a torn one.
func agglomerate(ctx context.Context, n int, ps PairSim, opts Options, withTrace bool, rec *Dendrogram) ([][]int, []Merge, error) {
	if n <= 0 {
		return nil, nil, nil
	}
	minSim := opts.MinSim
	if rec != nil {
		minSim = 0
	}
	s := opts.Scratch
	fromPool := false
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		fromPool = true
	}
	s.reset(n)

	var merges, pruned, stalePops int64 // posted to opts.Obs once per run
	var mergeLog []Merge
	// Stop statistics for the final "cut" event: the similarity of the last
	// accepted merge and the best similarity MinSim rejected. Their ratio is
	// the gap the threshold sits in — a large ratio means the cut landed in
	// a crisp same-object/different-object boundary.
	var lastMergeSim, bestRejected float64
	span := opts.Span

	// Seed the triangle and the heap with all original pairs.
	k := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		for j := i + 1; j < n; j++ {
			r := ps.Resem(i, j)
			st := pairStats{
				sumResem: r, minResem: r, maxResem: r,
				walkAB: ps.Walk(i, j), walkBA: ps.Walk(j, i),
			}
			s.tri[k] = st
			k++
			if sim := similarity(st, 1, 1, opts.Measure); sim >= minSim {
				s.heap = append(s.heap, candidate{sim: sim, a: int32(i), b: int32(j)})
				s.nref[i]++
				s.nref[j]++
			} else {
				pruned++
				if sim > bestRejected {
					bestRejected = sim
				}
			}
		}
	}
	s.heap.init()

	// staleApprox tracks (an upper bound on) the stale entries still in the
	// heap: a merge strands every entry referencing the two dead clusters,
	// a stale pop drains one. It can overcount pairs whose endpoints both
	// died — that only triggers compaction a little early.
	staleApprox := int64(0)
	freg := fault.From(ctx)
	nid := int32(n)
	for len(s.heap) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if freg != nil {
			if err := freg.Fire(ctx, "cluster.merge"); err != nil {
				return nil, nil, err
			}
		}
		c := s.heap.pop()
		s.nref[c.a]--
		s.nref[c.b]--
		if !s.isAlive(c.a) || !s.isAlive(c.b) {
			// Stale entry for a merged-away cluster.
			stalePops++
			if staleApprox > 0 {
				staleApprox--
			}
			continue
		}
		// Cluster ids are never reused and a pair's stats never change while
		// both clusters are alive, so the popped similarity is current.
		merges++
		lastMergeSim = c.sim
		if span != nil {
			span.Event("merge",
				trace.Int("a", int64(c.a)), trace.Int("b", int64(c.b)),
				trace.Int("new", int64(nid)),
				trace.Float("sim", c.sim),
				trace.Int("size_a", int64(s.size[c.a])),
				trace.Int("size_b", int64(s.size[c.b])))
		}
		if rec != nil {
			rec.Merges = append(rec.Merges, DendroMerge{
				A: c.a, B: c.b, Sim: c.sim,
				SizeA: s.size[c.a], SizeB: s.size[c.b],
			})
		}
		if withTrace {
			mergeLog = append(mergeLog, Merge{
				A:   s.membersOf(n, c.a),
				B:   s.membersOf(n, c.b),
				Sim: c.sim,
			})
		}
		s.kill(c.a)
		s.kill(c.b)
		staleApprox += int64(s.nref[c.a] + s.nref[c.b])
		mi := int(nid) - n
		s.size[nid] = s.size[c.a] + s.size[c.b]
		s.parent[c.a] = nid
		s.parent[c.b] = nid
		s.parent[nid] = -1
		s.left[mi] = c.a
		s.right[mi] = c.b
		s.nref[nid] = 0

		// Derive the merged cluster's stats against every live cluster by a
		// linear scan over the alive bitmap (ids ascending — and because the
		// heap order is total, push order cannot affect the merge order).
		off := len(s.rows)
		s.rowOff[mi] = off
		if need := off + int(nid); cap(s.rows) >= need {
			s.rows = s.rows[:need]
		} else {
			s.rows = append(s.rows, make([]pairStats, need-len(s.rows))...)
		}
		row := s.rows[off : off+int(nid)]
		newSize := int(s.size[nid])
		for w, word := range s.alive[:(int(nid)+63)/64] {
			for word != 0 {
				oid := int32(w<<6 + bits.TrailingZeros64(word))
				word &= word - 1
				sa := s.statAt(n, oid, c.a)
				sb := s.statAt(n, oid, c.b)
				ns := mergeOriented(sa, sb, int(oid), int(c.a), int(c.b))
				row[oid] = ns
				if sim := similarity(ns, int(s.size[oid]), newSize, opts.Measure); sim >= minSim {
					s.heap.push(candidate{sim: sim, a: oid, b: nid})
					s.nref[oid]++
					s.nref[nid]++
				} else {
					pruned++
					if sim > bestRejected {
						bestRejected = sim
					}
				}
			}
		}
		s.setAlive(nid)
		nid++

		// Compact once stale entries outnumber live ones: drop every entry
		// with a dead endpoint and re-heapify. Safe because the comparator
		// is a total order (removals never reorder the survivors).
		if staleApprox*2 > int64(len(s.heap)) && len(s.heap) >= compactMinHeap {
			kept := s.heap[:0]
			for _, cand := range s.heap {
				if s.isAlive(cand.a) && s.isAlive(cand.b) {
					kept = append(kept, cand)
				}
			}
			s.heap = kept
			s.heap.init()
			for i := int32(0); i < nid; i++ {
				s.nref[i] = 0
			}
			for _, cand := range s.heap {
				s.nref[cand.a]++
				s.nref[cand.b]++
			}
			staleApprox = 0
		}
	}

	if opts.Obs != nil {
		if rec != nil {
			opts.Obs.Counter("cluster.dendrogram_runs").Inc()
		} else {
			opts.Obs.Counter("cluster.runs").Inc()
			opts.Obs.Counter("cluster.pruned_below_minsim").Add(pruned)
		}
		opts.Obs.Counter("cluster.merges").Add(merges)
		opts.Obs.Counter("cluster.heap_stale_pops").Add(stalePops)
	}

	var out [][]int
	if rec == nil {
		out = s.partition(n, n-int(merges))
	}

	if span != nil {
		// Gap ratio between the last accepted merge and the best rejected
		// candidate; 0 when either side is missing (no merges, or nothing
		// fell below the threshold).
		gap := 0.0
		if lastMergeSim > 0 && bestRejected > 0 {
			gap = lastMergeSim / bestRejected
		}
		span.Event("cut",
			trace.Int("merges", merges), trace.Int("pruned", pruned),
			trace.Int("clusters", int64(len(out))),
			trace.Float("min_sim", minSim),
			trace.Float("last_merge_sim", lastMergeSim),
			trace.Float("best_rejected_sim", bestRejected),
			trace.Float("gap", gap))
	}
	if fromPool {
		scratchPool.Put(s)
	}
	return out, mergeLog, nil
}

// partition materialises the final clustering from the parent links:
// clusters appear in order of their smallest member with members ascending
// (references are visited in index order, so both properties fall out of
// first-seen grouping). All member slices are carved from one backing
// array — the whole output is two allocations.
func (s *Scratch) partition(n, nClusters int) [][]int {
	backing := make([]int, n)
	out := make([][]int, 0, nClusters)
	off := 0
	for r := 0; r < n; r++ {
		// Find the root, with path compression for the next lookups.
		root := int32(r)
		for s.parent[root] >= 0 {
			root = s.parent[root]
		}
		for c := int32(r); c != root; {
			nxt := s.parent[c]
			s.parent[c] = root
			c = nxt
		}
		idx := s.outIdx[root]
		if idx == 0 {
			sz := int(s.size[root])
			out = append(out, backing[off:off:off+sz])
			off += sz
			idx = int32(len(out))
			s.outIdx[root] = idx
		}
		out[idx-1] = append(out[idx-1], r)
	}
	return out
}

// mergeOriented combines the (o, a) and (o, b) stats into the stats between
// o and the merged cluster. The merged cluster always receives the highest
// id, so the result's walkAB must flow o -> merged; both inputs are
// normalised to that orientation first (stored walkAB flows low id -> high).
func mergeOriented(sa, sb pairStats, o, a, b int) pairStats {
	if o > a {
		sa.walkAB, sa.walkBA = sa.walkBA, sa.walkAB
	}
	if o > b {
		sb.walkAB, sb.walkBA = sb.walkBA, sb.walkAB
	}
	return sa.merge(sb)
}

// similarity computes the cluster-pair similarity from aggregated stats.
// sizeA is the size of the lower-id cluster (walkAB flows from it).
func similarity(st pairStats, sizeA, sizeB int, m Measure) float64 {
	pairs := float64(sizeA * sizeB)
	avgResem := st.sumResem / pairs
	collWalk := (st.walkAB/float64(sizeA) + st.walkBA/float64(sizeB)) / 2
	switch m {
	case Combined:
		return math.Sqrt(avgResem * collWalk)
	case ResemOnly:
		return avgResem
	case WalkOnly:
		return collWalk
	case CombinedArithmetic:
		return (avgResem + collWalk) / 2
	case SingleLink:
		return st.maxResem
	case CompleteLink:
		return st.minResem
	default:
		return math.Sqrt(avgResem * collWalk)
	}
}

// Matrix is a dense PairSim backed by precomputed similarity matrices.
// NewMatrix backs both matrices with one flat row-major allocation (RFlat
// and WFlat; cell (i,j) at i·n + j); R and W are row views into it, so
// writes through either form are visible in both.
type Matrix struct {
	// R holds symmetric resemblance values; W holds directed walk values.
	R, W [][]float64
	// RFlat and WFlat are the flat backings when built by NewMatrix; nil
	// for matrices assembled from bare row slices.
	RFlat, WFlat []float64
}

// Resem implements PairSim.
func (m Matrix) Resem(i, j int) float64 { return m.R[i][j] }

// Walk implements PairSim.
func (m Matrix) Walk(i, j int) float64 { return m.W[i][j] }

// NewMatrix allocates an n×n zero matrix pair over one flat backing array.
func NewMatrix(n int) Matrix {
	backing := make([]float64, 2*n*n)
	rf := backing[: n*n : n*n]
	wf := backing[n*n:]
	rows := make([][]float64, 2*n)
	r, w := rows[:n:n], rows[n:]
	for i := 0; i < n; i++ {
		r[i] = rf[i*n : (i+1)*n : (i+1)*n]
		w[i] = wf[i*n : (i+1)*n : (i+1)*n]
	}
	return Matrix{R: r, W: w, RFlat: rf, WFlat: wf}
}
