package cluster

import (
	"math"
	"reflect"
	"testing"
)

// FuzzAgglomerate drives the flat engine and the map-based reference with
// matrices, measures, and thresholds decoded from fuzz bytes, asserting
// bit-identical partitions and traces plus the partition invariant. The
// dendrogram cut is checked against the direct run on the same input.
func FuzzAgglomerate(f *testing.F) {
	f.Add([]byte{4, 0, 2, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Add([]byte{7, 3, 0, 255, 1, 254, 2, 253, 3, 252, 4, 251, 5, 250, 6})
	f.Add([]byte{2, 5, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 2 + int(data[0])%11 // 2..12 references
		meas := Measure(int(data[1]) % 6)
		minSim := float64(data[2]) / 255 * 0.2
		data = data[3:]
		byteAt := func(k int) float64 {
			if len(data) == 0 {
				return 0
			}
			return float64(data[k%len(data)]) / 255
		}
		m := NewMatrix(n)
		k := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if j > i {
					r := byteAt(k)
					m.R[i][j], m.R[j][i] = r, r
					k++
				}
				m.W[i][j] = byteAt(k)
				k++
			}
		}

		opts := Options{Measure: meas, MinSim: minSim}
		wantOut, wantTrace := AgglomerateMapTrace(n, m, opts, true)
		gotOut, gotTrace := AgglomerateTrace(n, m, opts, true)
		if !reflect.DeepEqual(wantOut, gotOut) {
			t.Fatalf("partition mismatch (n=%d %v min-sim %v)\nwant %v\ngot  %v",
				n, meas, minSim, wantOut, gotOut)
		}
		if len(wantTrace) != len(gotTrace) {
			t.Fatalf("trace length %d vs %d", len(wantTrace), len(gotTrace))
		}
		for i := range wantTrace {
			if !reflect.DeepEqual(wantTrace[i].A, gotTrace[i].A) ||
				!reflect.DeepEqual(wantTrace[i].B, gotTrace[i].B) ||
				math.Float64bits(wantTrace[i].Sim) != math.Float64bits(gotTrace[i].Sim) {
				t.Fatalf("merge %d differs: %+v vs %+v", i, wantTrace[i], gotTrace[i])
			}
		}

		// Partition invariant: every reference exactly once, members
		// ascending, clusters ordered by smallest member.
		seen := make([]bool, n)
		last := -1
		for _, cl := range gotOut {
			if len(cl) == 0 {
				t.Fatal("empty cluster")
			}
			if cl[0] <= last {
				t.Fatalf("clusters out of order: %v", gotOut)
			}
			last = cl[0]
			for i, x := range cl {
				if x < 0 || x >= n || seen[x] {
					t.Fatalf("bad member %d in %v", x, gotOut)
				}
				if i > 0 && cl[i-1] >= x {
					t.Fatalf("members not ascending: %v", cl)
				}
				seen[x] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("reference %d missing from %v", i, gotOut)
			}
		}

		// Dendrogram cut (with fallback) must match the direct run too.
		d := AgglomerateDendrogram(n, m, Options{Measure: meas})
		if cut := CutOrAgglomerate(d, m, opts); !reflect.DeepEqual(gotOut, cut) {
			t.Fatalf("dendrogram cut mismatch (min-sim %v)\ndirect %v\ncut    %v",
				minSim, gotOut, cut)
		}
	})
}
