package cluster

import "math"

// Threshold-free stopping (an extension beyond the paper): instead of a
// global min-sim, cut each name's dendrogram at its largest similarity
// collapse. Same-object merges happen at similarities orders of magnitude
// above different-object merges (the merge profile of a typical name drops
// from ~1e-2 to ~1e-6 in one step), so the largest ratio between
// consecutive merge similarities marks the boundary.

// gapFloor keeps ratios finite when merge similarities reach zero.
const gapFloor = 1e-12

// DefaultGapRatio is the minimum similarity collapse treated as a real
// object boundary. Within one author the average-link similarity can
// easily step down 10× between consecutive merges (a large group absorbing
// a weakly connected reference), so only collapses of two orders of
// magnitude or more override the global threshold.
const DefaultGapRatio = 100

// relFloor flattens the sub-noise region: similarities below
// maxSim·relFloor are treated as equal, so the detected gap is the drop
// *into* the noise region, not a drop between two negligible values (a
// merge at 5e-6 followed by one at exactly 0 would otherwise always win).
const relFloor = 1e-5

// CutAtGap examines a full merge trace (produced with MinSim 0) and
// returns the threshold implied by the largest similarity gap: the
// geometric mean of the two merge similarities around the largest ratio
// drop, with both values floored at maxSim·relFloor. With fewer than two
// merges there is no interior gap and the returned threshold is 0 (merge
// everything); a second return of false signals that no meaningful gap
// exists (all merges within minRatio of each other), in which case the
// caller should also merge everything.
func CutAtGap(trace []Merge, minRatio float64) (float64, bool) {
	sims := make([]float64, len(trace))
	for i, m := range trace {
		sims[i] = m.Sim
	}
	return cutAtGapSims(sims, minRatio)
}

// cutAtGapSims is CutAtGap over a bare merge-similarity profile; the merge
// traces and dendrograms both reduce to it.
func cutAtGapSims(sims []float64, minRatio float64) (float64, bool) {
	if minRatio <= 1 {
		minRatio = 10
	}
	if len(sims) < 2 {
		return 0, false
	}
	maxSim := gapFloor
	for _, s := range sims {
		if s > maxSim {
			maxSim = s
		}
	}
	floor := maxSim * relFloor
	if floor < gapFloor {
		floor = gapFloor
	}
	clamp := func(v float64) float64 {
		if v < floor {
			return floor
		}
		return v
	}
	bestRatio := 0.0
	cut := 0.0
	for i := 0; i+1 < len(sims); i++ {
		hi := clamp(sims[i])
		lo := clamp(sims[i+1])
		// Merge similarities are not strictly monotone; only downward
		// steps are candidate boundaries.
		if lo > hi {
			continue
		}
		if r := hi / lo; r > bestRatio {
			bestRatio = r
			cut = geomMean(hi, lo)
		}
	}
	if bestRatio < minRatio {
		return 0, false
	}
	return cut, true
}

func geomMean(a, b float64) float64 {
	if a < gapFloor {
		a = gapFloor
	}
	if b < gapFloor {
		b = gapFloor
	}
	return math.Sqrt(a * b)
}

// AgglomerateAuto clusters with a per-instance threshold: it builds the
// full merge profile, and if a crisp similarity gap (at least minRatio
// wide) exists, cuts there; otherwise it falls back to fallbackMinSim.
// Names with a clean same-object/different-object boundary get their own
// threshold; names whose profile decays gradually (large authors whose
// average-link similarity shrinks smoothly) keep the globally tuned one —
// gap detection alone misjudges exactly those, which is why the paper uses
// a tuned global min-sim in the first place.
//
// The profile and the final partition come from one dendrogram-recording
// agglomeration: the gap cut is derived from the recorded similarities and
// the partition by replaying the matching merge prefix, falling back to a
// direct run only when the cut threshold is not prefix-consistent — instead
// of the two full runs this used to take.
func AgglomerateAuto(n int, ps PairSim, measure Measure, minRatio, fallbackMinSim float64) [][]int {
	if n <= 0 {
		return nil
	}
	d := AgglomerateDendrogram(n, ps, Options{Measure: measure})
	cut, ok := d.CutAtGap(minRatio)
	if !ok {
		cut = fallbackMinSim
	}
	return CutOrAgglomerate(d, ps, Options{Measure: measure, MinSim: cut})
}
