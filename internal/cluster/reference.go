package cluster

import "sort"

// This file preserves the pre-flat, map-based agglomeration as the
// bit-exactness reference (the same convention PR 5 kept the DFS
// propagation and PR 6 kept PairKernel): property tests and the fuzz
// target assert that the flat engine reproduces its partitions and merge
// traces bit for bit. It is unoptimised on purpose — no scratch, no
// counters, no spans — so its correctness is easy to audit against the
// paper's Section 4.2.

type refClusterState struct {
	members []int
	alive   bool
}

// AgglomerateMapTrace clusters n references exactly like AgglomerateTrace
// but with the original map-keyed pair-stats storage and eagerly
// materialised member lists. Reference implementation only: quadratic
// allocation behaviour, no observability.
func AgglomerateMapTrace(n int, ps PairSim, opts Options, withTrace bool) ([][]int, []Merge) {
	if n <= 0 {
		return nil, nil
	}
	var mergeLog []Merge
	clusters := make([]refClusterState, n, 2*n)
	for i := range clusters {
		clusters[i] = refClusterState{members: []int{i}, alive: true}
	}
	stats := make(map[uint64]pairStats, n*(n-1)/2)
	h := make(candidateHeap, 0, n*(n-1)/2)
	bestRejected := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := ps.Resem(i, j)
			st := pairStats{
				sumResem: r, minResem: r, maxResem: r,
				walkAB: ps.Walk(i, j), walkBA: ps.Walk(j, i),
			}
			stats[pairKey(i, j)] = st
			if s := similarity(st, 1, 1, opts.Measure); s >= opts.MinSim {
				h = append(h, candidate{sim: s, a: int32(i), b: int32(j)})
			} else if s > bestRejected {
				bestRejected = s
			}
		}
	}
	h.init()

	for len(h) > 0 {
		c := h.pop()
		if !clusters[c.a].alive || !clusters[c.b].alive {
			continue // stale entry for a merged-away cluster
		}
		clusters[c.a].alive = false
		clusters[c.b].alive = false
		nid := len(clusters)
		merged := append(append([]int(nil), clusters[c.a].members...), clusters[c.b].members...)
		clusters = append(clusters, refClusterState{members: merged, alive: true})
		if withTrace {
			mergeLog = append(mergeLog, Merge{
				A:   append([]int(nil), clusters[c.a].members...),
				B:   append([]int(nil), clusters[c.b].members...),
				Sim: c.sim,
			})
		}

		for oid := range clusters[:nid] {
			if !clusters[oid].alive {
				continue
			}
			sa := takeStats(stats, oid, int(c.a))
			sb := takeStats(stats, oid, int(c.b))
			ns := mergeOriented(sa, sb, oid, int(c.a), int(c.b))
			stats[pairKey(oid, nid)] = ns
			s := similarity(ns, len(clusters[oid].members), len(merged), opts.Measure)
			if s >= opts.MinSim {
				h.push(candidate{sim: s, a: int32(oid), b: int32(nid)})
			} else if s > bestRejected {
				bestRejected = s
			}
		}
		delete(stats, pairKey(int(c.a), int(c.b)))
	}

	var out [][]int
	for _, c := range clusters {
		if c.alive {
			m := append([]int(nil), c.members...)
			sort.Ints(m)
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out, mergeLog
}

// pairKey packs a cluster pair into one word, low id in the high half.
// Cluster ids stay below 2n (n originals plus at most n-1 merges), so the
// halves never truncate for any clusterable input.
func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// takeStats removes and returns the stats between clusters x and y, oriented
// so walkAB flows from min(x,y) to max(x,y).
func takeStats(stats map[uint64]pairStats, x, y int) pairStats {
	key := pairKey(x, y)
	st := stats[key]
	delete(stats, key)
	return st
}
