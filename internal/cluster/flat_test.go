package cluster

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"distinct/internal/fault"
	"distinct/internal/obs"
)

// The flat engine must reproduce the map-based reference bit for bit:
// same partitions, same merge traces (member order included), same merge
// similarities down to the float bits.

var allMeasures = []Measure{Combined, ResemOnly, WalkOnly, CombinedArithmetic, SingleLink, CompleteLink}

func requireSamePartition(t *testing.T, want, got [][]int, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: partition mismatch\nwant %v\ngot  %v", label, want, got)
	}
}

func requireSameTrace(t *testing.T, want, got []Merge, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: trace length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].A, got[i].A) || !reflect.DeepEqual(want[i].B, got[i].B) {
			t.Fatalf("%s: merge %d members\nwant A=%v B=%v\ngot  A=%v B=%v",
				label, i, want[i].A, want[i].B, got[i].A, got[i].B)
		}
		if math.Float64bits(want[i].Sim) != math.Float64bits(got[i].Sim) {
			t.Fatalf("%s: merge %d sim %v vs %v", label, i, want[i].Sim, got[i].Sim)
		}
	}
}

func TestFlatMatchesMapReference(t *testing.T) {
	minSims := []float64{0, 0.0005, 0.01, 0.1, 0.3}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := randomMatrix(rng, n)
		for _, meas := range allMeasures {
			for _, ms := range minSims {
				opts := Options{Measure: meas, MinSim: ms}
				wantOut, wantTrace := AgglomerateMapTrace(n, m, opts, true)
				gotOut, gotTrace := AgglomerateTrace(n, m, opts, true)
				label := opts.Measure.String()
				requireSamePartition(t, wantOut, gotOut, label)
				requireSameTrace(t, wantTrace, gotTrace, label)
			}
		}
	}
}

// Single/complete link propagate min/max resemblance through merges whose
// walk stats are asymmetric; a directed check that the flat row layout
// orients takeStats/mergeOriented the same way the map did, on matrices
// built to make every orientation mistake visible (W[i][j] != W[j][i]
// everywhere, R values all distinct).
func TestLinkMeasuresOrientationFlat(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		m := NewMatrix(n)
		v := 0.001
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.R[i][j], m.R[j][i] = v, v
				v += 0.001 // all-distinct resemblances
				m.W[i][j] = rng.Float64()
				m.W[j][i] = m.W[i][j] * (0.1 + rng.Float64()) // asymmetric
			}
		}
		for _, meas := range []Measure{SingleLink, CompleteLink, Combined, WalkOnly} {
			opts := Options{Measure: meas, MinSim: 0.002}
			wantOut, wantTrace := AgglomerateMapTrace(n, m, opts, true)
			gotOut, gotTrace := AgglomerateTrace(n, m, opts, true)
			requireSamePartition(t, wantOut, gotOut, meas.String())
			requireSameTrace(t, wantTrace, gotTrace, meas.String())
		}
	}
}

// An explicitly reused Scratch must not bleed state between runs of
// different sizes, measures, or matrices.
func TestScratchReuseBitIdentical(t *testing.T) {
	scr := NewScratch()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		m := randomMatrix(rng, n)
		meas := allMeasures[trial%len(allMeasures)]
		opts := Options{Measure: meas, MinSim: 0.01, Scratch: scr}
		got := Agglomerate(n, m, opts)
		opts.Scratch = nil
		want := Agglomerate(n, m, opts)
		requireSamePartition(t, want, got, "scratch reuse")
	}
}

// A full MinSim-0 run over a block big enough to cross compactMinHeap
// exercises the stale-entry compaction path; the merge order must not move.
func TestHeapCompactionPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 64 // peak heap ~ n²/2 = 2016 > compactMinHeap
	m := randomMatrix(rng, n)
	for _, meas := range []Measure{Combined, SingleLink} {
		opts := Options{Measure: meas, MinSim: 0}
		wantOut, wantTrace := AgglomerateMapTrace(n, m, opts, true)
		gotOut, gotTrace := AgglomerateTrace(n, m, opts, true)
		requireSamePartition(t, wantOut, gotOut, meas.String())
		requireSameTrace(t, wantTrace, gotTrace, meas.String())
		if len(gotTrace) != n-1 {
			t.Fatalf("MinSim 0 should merge fully: %d merges for n=%d", len(gotTrace), n)
		}
	}
}

func TestHeapStalePopsCounter(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(3))
	n := 32
	m := randomMatrix(rng, n)
	Agglomerate(n, m, Options{Measure: Combined, MinSim: 0, Obs: reg})
	if reg.Counter("cluster.heap_stale_pops").Value() == 0 {
		t.Fatal("a full random-matrix agglomeration should pop stale entries")
	}
	if got, want := reg.Counter("cluster.merges").Value(), int64(n-1); got != want {
		t.Fatalf("cluster.merges = %d, want %d", got, want)
	}
	if got := reg.Counter("cluster.runs").Value(); got != 1 {
		t.Fatalf("cluster.runs = %d, want 1", got)
	}
}

// Cancellation observed inside the merge loop must abort with the context
// error, and the same Scratch must then produce bit-identical clean runs —
// i.e. an aborted run leaves no state behind that reset doesn't clear.
func TestMergeLoopCancelScratchHygiene(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 24
	m := randomMatrix(rng, n)
	opts := Options{Measure: Combined, MinSim: 0}

	want := Agglomerate(n, m, opts)

	scr := NewScratch()
	ctx, cancel := context.WithCancel(context.Background())
	freg := fault.NewRegistry(1)
	freg.Set("cluster.merge", fault.Rule{OnHit: 5, Hook: func() { cancel() }})
	optsScr := opts
	optsScr.Scratch = scr
	out, err := AgglomerateCtx(fault.With(ctx, freg), n, m, optsScr)
	if err == nil || out != nil {
		t.Fatalf("cancelled run returned out=%v err=%v", out, err)
	}
	if ctx.Err() == nil || err != ctx.Err() {
		t.Fatalf("expected the context error, got %v", err)
	}

	// The dirtied scratch must reset cleanly.
	got := Agglomerate(n, m, optsScr)
	requireSamePartition(t, want, got, "post-cancel reuse")
}

// An error inside the merge loop must not return the pooled scratch: a
// subsequent pooled run (which may or may not get a fresh scratch) still
// has to be bit-identical.
func TestMergeLoopErrorPooledRunsStayClean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 20
	m := randomMatrix(rng, n)
	opts := Options{Measure: Combined, MinSim: 0}
	want := Agglomerate(n, m, opts)

	freg := fault.NewRegistry(1)
	freg.Set("cluster.merge", fault.Rule{OnHit: 3, Err: fault.ErrInjected})
	if _, err := AgglomerateCtx(fault.With(context.Background(), freg), n, m, opts); err == nil {
		t.Fatal("expected the injected error")
	}
	for i := 0; i < 4; i++ {
		got := Agglomerate(n, m, opts)
		requireSamePartition(t, want, got, "post-error pooled run")
	}
}

func TestPartitionSlicesAreGrowSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 18
	m := randomMatrix(rng, n)
	out := Agglomerate(n, m, Options{Measure: Combined, MinSim: 0.05})
	if len(out) < 2 {
		t.Skip("need at least two clusters for the aliasing check")
	}
	snapshot := make([][]int, len(out))
	for i, cl := range out {
		snapshot[i] = append([]int(nil), cl...)
	}
	// Appending to one cluster must not clobber its neighbours (the carved
	// slices are at full capacity, so append must copy).
	_ = append(out[0], -1)
	for i := range out {
		if !reflect.DeepEqual(snapshot[i], out[i]) {
			t.Fatalf("cluster %d changed after append: %v -> %v", i, snapshot[i], out[i])
		}
	}
}
