package cluster

import "sync"

// Scratch holds every buffer the flat agglomeration engine needs: the
// all-pairs stats triangle, the per-merged-cluster stat rows, the candidate
// heap backing, the alive bitmap, and the id-indexed bookkeeping arrays
// (sizes, union-find parent links, merge children, heap refcounts, output
// cursors). A warm Scratch makes the merge loop allocation-free: only the
// returned partition (two slices) is allocated per run.
//
// A Scratch is reset at the start of every run, so reuse after an aborted
// run is safe. It is not safe for concurrent use; Agglomerate draws one
// from an internal sync.Pool when Options.Scratch is nil, and returns it
// only when the run succeeds — an errored run drops its scratch rather than
// risk handing a torn buffer to the next caller.
type Scratch struct {
	tri    []pairStats // stats triangle over original pairs i<j<n
	rows   []pairStats // arena of stat rows, one per merged cluster
	rowOff []int       // rowOff[c-n]: offset of merged cluster c's row
	heap   candidateHeap
	alive  []uint64 // bitmap over cluster ids
	size   []int32  // cluster sizes by id
	parent []int32  // id -> merged-into id, -1 while a root
	left   []int32  // merged id -> lower-id child (concat order for traces)
	right  []int32  // merged id -> higher-id child
	nref   []int32  // id -> heap entries referencing it (stale accounting)
	outIdx []int32  // root id -> output cluster index + 1
	stack  []int32  // DFS stack for trace member reconstruction
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// retained across runs. Useful for explicit reuse across a sweep (see
// Engine.TuneMinSim); callers that don't care should leave Options.Scratch
// nil and let the pool provide one.
func NewScratch() *Scratch { return new(Scratch) }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// grow returns s with length n, reusing the backing array when it fits.
// Contents are unspecified; callers initialise what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// reset sizes every buffer for a run over n references (cluster ids
// 0..2n-2) and initialises the per-original state: all originals alive,
// size 1, roots, no heap references. Merged-cluster slots are written at
// merge time before they are read, so they need no up-front clearing —
// except outIdx, whose zero value means "no output cluster yet".
func (s *Scratch) reset(n int) {
	maxID := 2*n - 1
	s.tri = grow(s.tri, n*(n-1)/2)
	s.rows = s.rows[:0]
	s.rowOff = grow(s.rowOff, n-1)
	s.heap = s.heap[:0]
	s.alive = grow(s.alive, (maxID+63)/64)
	s.size = grow(s.size, maxID)
	s.parent = grow(s.parent, maxID)
	s.left = grow(s.left, n-1)
	s.right = grow(s.right, n-1)
	s.nref = grow(s.nref, maxID)
	s.outIdx = grow(s.outIdx, maxID)
	for i := range s.alive {
		s.alive[i] = 0
	}
	for i := 0; i < n; i++ {
		s.alive[i>>6] |= 1 << (uint(i) & 63)
		s.size[i] = 1
		s.parent[i] = -1
		s.nref[i] = 0
	}
	for i := range s.outIdx {
		s.outIdx[i] = 0
	}
}

func (s *Scratch) isAlive(id int32) bool { return s.alive[id>>6]&(1<<(uint(id)&63)) != 0 }
func (s *Scratch) kill(id int32)         { s.alive[id>>6] &^= 1 << (uint(id) & 63) }
func (s *Scratch) setAlive(id int32)     { s.alive[id>>6] |= 1 << (uint(id) & 63) }

// statAt returns the aggregated stats between clusters x and y, oriented so
// walkAB flows from min(x,y) to max(x,y). Original pairs live in the
// triangle; pairs involving a merged cluster live in that cluster's row
// (the higher id always carries the row, because ids are assigned in merge
// order and the row spans every id below it).
func (s *Scratch) statAt(n int, x, y int32) pairStats {
	if x > y {
		x, y = y, x
	}
	if int(y) < n {
		i, j := int(x), int(y)
		return s.tri[i*n-i*(i+1)/2+(j-i-1)]
	}
	return s.rows[s.rowOff[int(y)-n]+int(x)]
}

// membersOf reconstructs the member list of a cluster in historical concat
// order (lower-id child's members first, recursively) — the order the
// map-based implementation materialised eagerly. Used only on the traced
// path; the stack is scratch, the returned slice is fresh.
func (s *Scratch) membersOf(n int, id int32) []int {
	out := make([]int, 0, s.size[id])
	st := append(s.stack[:0], id)
	for len(st) > 0 {
		c := st[len(st)-1]
		st = st[:len(st)-1]
		if int(c) < n {
			out = append(out, int(c))
			continue
		}
		st = append(st, s.right[int(c)-n], s.left[int(c)-n])
	}
	s.stack = st[:0]
	return out
}
