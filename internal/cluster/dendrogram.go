package cluster

import "context"

// Threshold sweeps (TuneMinSim's grid, AgglomerateAuto's gap cut) only vary
// where the merge sequence stops, not the merges themselves — as long as
// every merge a higher threshold would accept happens before every merge it
// would reject. So instead of re-running the agglomeration per threshold,
// run it once with MinSim 0, record the merge sequence (the dendrogram),
// and derive each threshold's partition by replaying a prefix.
//
// Why a prefix replay is exact when the order check passes: a run at
// threshold t maintains a candidate heap that is always the ≥t subset of
// the MinSim-0 run's heap, and while the best candidate is ≥ t both heaps
// agree on it (the comparator is a total order). The two runs therefore
// perform identical merges until the 0-run first accepts a candidate below
// t — if no later merge rises back above t, the t-run stops exactly there
// and its partition is the state after that prefix. The composite measure
// is not monotone in general (a merge can create a *more* similar pair),
// so the rise-back case is real; Cut detects it and refuses, and
// CutOrAgglomerate falls back to a direct run, counted in
// cluster.dendrogram_fallbacks.

// DendroMerge is one recorded agglomeration step: the two cluster ids
// merged, their sizes at merge time, and the similarity it happened at.
// Ids follow the engine's dense scheme — originals 0..n-1, the i-th merge
// creates id n+i.
type DendroMerge struct {
	A, B         int32
	SizeA, SizeB int32
	Sim          float64
}

// Dendrogram is the full merge sequence of a MinSim-0 agglomeration over N
// references, in merge order.
type Dendrogram struct {
	N      int
	Merges []DendroMerge
}

// AgglomerateDendrogram runs the merge loop once with MinSim 0 and records
// every merge. MinSim in opts is ignored; Obs receives
// cluster.dendrogram_runs (instead of cluster.runs), cluster.merges, and
// cluster.heap_stale_pops.
func AgglomerateDendrogram(n int, ps PairSim, opts Options) *Dendrogram {
	d, _ := AgglomerateDendrogramCtx(context.Background(), n, ps, opts)
	return d
}

// AgglomerateDendrogramCtx is AgglomerateDendrogram under a context (see
// AgglomerateCtx for where cancellation is observed).
func AgglomerateDendrogramCtx(ctx context.Context, n int, ps PairSim, opts Options) (*Dendrogram, error) {
	d := &Dendrogram{N: n}
	if n <= 0 {
		return d, nil
	}
	d.Merges = make([]DendroMerge, 0, n-1)
	if _, _, err := agglomerate(ctx, n, ps, opts, false, d); err != nil {
		return nil, err
	}
	return d, nil
}

// cutPrefix returns the length of the leading run of merges with
// similarity ≥ minSim, and whether that prefix is consistent: no later
// merge reaches minSim again. Only a consistent prefix reproduces a direct
// run at that threshold (see the package comment above).
func (d *Dendrogram) cutPrefix(minSim float64) (int, bool) {
	j := 0
	for j < len(d.Merges) && d.Merges[j].Sim >= minSim {
		j++
	}
	for i := j; i < len(d.Merges); i++ {
		if d.Merges[i].Sim >= minSim {
			return j, false
		}
	}
	return j, true
}

// Cut derives the partition a direct Agglomerate run at minSim would
// produce, bit-identically, when the recorded sequence is prefix-consistent
// for that threshold; ok is false (and the partition nil) otherwise. Output
// follows Agglomerate's order: clusters by smallest member, members
// ascending.
func (d *Dendrogram) Cut(minSim float64) ([][]int, bool) {
	if minSim < 0 {
		// The recording run pruned candidates below 0; a negative-threshold
		// run could accept them, so the prefix argument does not apply.
		return nil, false
	}
	j, ok := d.cutPrefix(minSim)
	if !ok {
		return nil, false
	}
	return d.cutAt(j), true
}

// CutDendrogram is Dendrogram.Cut as a package function, mirroring
// Agglomerate's shape.
func CutDendrogram(d *Dendrogram, minSim float64) ([][]int, bool) {
	return d.Cut(minSim)
}

// cutAt replays the first j merges through parent links and groups the
// references by root, first-seen in reference order — the same two
// allocations as the engine's own partition builder.
func (d *Dendrogram) cutAt(j int) [][]int {
	n := d.N
	if n <= 0 {
		return nil
	}
	parent := make([]int32, n+j)
	for i := range parent {
		parent[i] = -1
	}
	size := make([]int32, n+j)
	for i := 0; i < n; i++ {
		size[i] = 1
	}
	for i := 0; i < j; i++ {
		m := d.Merges[i]
		nid := int32(n + i)
		parent[m.A] = nid
		parent[m.B] = nid
		size[nid] = size[m.A] + size[m.B]
	}
	outIdx := make([]int32, n+j) // root id -> output cluster index + 1
	backing := make([]int, n)
	out := make([][]int, 0, n-j)
	off := 0
	for r := 0; r < n; r++ {
		root := int32(r)
		for parent[root] >= 0 {
			root = parent[root]
		}
		for c := int32(r); c != root; {
			nxt := parent[c]
			parent[c] = root
			c = nxt
		}
		idx := outIdx[root]
		if idx == 0 {
			sz := int(size[root])
			out = append(out, backing[off:off:off+sz])
			off += sz
			idx = int32(len(out))
			outIdx[root] = idx
		}
		out[idx-1] = append(out[idx-1], r)
	}
	return out
}

// Sims returns the recorded merge similarities in merge order (the merge
// profile), sharing no storage with the dendrogram.
func (d *Dendrogram) Sims() []float64 {
	sims := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		sims[i] = m.Sim
	}
	return sims
}

// CutAtGap picks the gap-implied threshold from the recorded merge profile;
// same contract as the package-level CutAtGap over a merge trace.
func (d *Dendrogram) CutAtGap(minRatio float64) (float64, bool) {
	return cutAtGapSims(d.Sims(), minRatio)
}

// CutOrAgglomerate derives the partition at opts.MinSim from the
// dendrogram when the cut is prefix-consistent, and falls back to a direct
// run otherwise — bit-identical to Agglomerate(d.N, ps, opts) either way.
// Fallbacks post cluster.dendrogram_fallbacks to opts.Obs (the direct run
// then posts its usual counters).
func CutOrAgglomerate(d *Dendrogram, ps PairSim, opts Options) [][]int {
	if out, ok := d.Cut(opts.MinSim); ok {
		return out
	}
	if opts.Obs != nil {
		opts.Obs.Counter("cluster.dendrogram_fallbacks").Inc()
	}
	return Agglomerate(d.N, ps, opts)
}
