package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"distinct/internal/obs"
)

// The load-bearing property: for any matrix, measure, and threshold,
// cutting the recorded dendrogram (with fallback on inconsistent prefixes)
// is bit-identical to a direct per-threshold run.
func TestDendrogramCutMatchesDirect(t *testing.T) {
	grid := []float64{0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(36)
		m := randomMatrix(rng, n)
		for _, meas := range allMeasures {
			d := AgglomerateDendrogram(n, m, Options{Measure: meas})
			if len(d.Merges) != n-1 {
				t.Fatalf("%v: dendrogram has %d merges for n=%d", meas, len(d.Merges), n)
			}
			for _, ms := range grid {
				opts := Options{Measure: meas, MinSim: ms}
				want := Agglomerate(n, m, opts)
				got := CutOrAgglomerate(d, m, opts)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%v min-sim %v: cut mismatch\nwant %v\ngot  %v",
						meas, ms, want, got)
				}
				// When the prefix is consistent the cut alone must already
				// agree; when it isn't, Cut must refuse rather than guess.
				if cut, ok := d.Cut(ms); ok {
					if !reflect.DeepEqual(want, cut) {
						t.Fatalf("%v min-sim %v: consistent cut differs from direct run", meas, ms)
					}
				}
			}
		}
	}
}

// Thresholds drawn from the recorded similarities themselves (and their
// midpoints) probe the boundaries where >= vs > bugs would hide.
func TestDendrogramCutAtRecordedBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 24
	m := randomMatrix(rng, n)
	for _, meas := range allMeasures {
		d := AgglomerateDendrogram(n, m, Options{Measure: meas})
		var thresholds []float64
		for i, mg := range d.Merges {
			thresholds = append(thresholds, mg.Sim)
			if i+1 < len(d.Merges) {
				thresholds = append(thresholds, (mg.Sim+d.Merges[i+1].Sim)/2)
			}
		}
		for _, ms := range thresholds {
			opts := Options{Measure: meas, MinSim: ms}
			want := Agglomerate(n, m, opts)
			got := CutOrAgglomerate(d, m, opts)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v min-sim %v: boundary cut mismatch", meas, ms)
			}
		}
	}
}

// A handcrafted non-monotone sequence: the prefix check must refuse any
// threshold that splits a rise-back.
func TestCutPrefixConsistency(t *testing.T) {
	d := &Dendrogram{N: 5, Merges: []DendroMerge{
		{A: 0, B: 1, Sim: 0.9, SizeA: 1, SizeB: 1},
		{A: 2, B: 3, Sim: 0.2, SizeA: 1, SizeB: 1},
		{A: 5, B: 6, Sim: 0.8, SizeA: 2, SizeB: 2}, // rises back above 0.2
		{A: 4, B: 7, Sim: 0.1, SizeA: 1, SizeB: 4},
	}}
	for _, tc := range []struct {
		minSim float64
		wantOK bool
		wantJ  int
	}{
		{0.95, true, 0},  // before any merge
		{0.9, true, 1},   // only the 0.9 merge; nothing later reaches 0.9
		{0.5, false, 0},  // prefix {0.9}, but 0.8 rises back above 0.5
		{0.15, true, 3},  // 0.9,0.2,0.8 all >= 0.15; 0.1 below
		{0.05, true, 4},  // everything
		{-0.1, false, 0}, // negative thresholds never cut
	} {
		out, ok := d.Cut(tc.minSim)
		if ok != tc.wantOK {
			t.Fatalf("Cut(%v) ok=%v, want %v", tc.minSim, ok, tc.wantOK)
		}
		if !ok {
			if out != nil {
				t.Fatalf("Cut(%v) refused but returned %v", tc.minSim, out)
			}
			continue
		}
		nClusters := d.N - tc.wantJ
		if len(out) != nClusters {
			t.Fatalf("Cut(%v) gave %d clusters, want %d (prefix %d)",
				tc.minSim, len(out), nClusters, tc.wantJ)
		}
	}
	// The refused threshold must still resolve via fallback, identically to
	// a direct run — exercised with a real matrix in the tests above; here
	// just check the package-level alias agrees with the method.
	if _, ok := CutDendrogram(d, 0.5); ok {
		t.Fatal("CutDendrogram should refuse the inconsistent prefix too")
	}
}

func TestCutPrefixOrderedProfile(t *testing.T) {
	// Blob matrices collapse cleanly between the within-blob region and the
	// cross-blob region: any threshold inside the gap must cut without
	// fallback and find exactly the two blobs. (Thresholds inside the
	// within-blob region may legitimately refuse: the collective walk
	// probability grows with cluster size, so the profile rises as a blob
	// assembles.)
	m := blobs(12, 6, 0.8, 0.001)
	d := AgglomerateDendrogram(12, m, Options{Measure: Combined})
	for _, ms := range []float64{0.01, 0.1, 0.5} {
		out, ok := d.Cut(ms)
		if !ok {
			t.Fatalf("blob dendrogram refused gap min-sim %v", ms)
		}
		if len(out) != 2 {
			t.Fatalf("min-sim %v: want the two blobs, got %v", ms, out)
		}
	}
	if out, ok := d.Cut(0); !ok || len(out) != 1 {
		t.Fatalf("min-sim 0 should merge everything, got %v ok=%v", out, ok)
	}
}

func TestDendrogramCounters(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(5))
	n := 16
	m := randomMatrix(rng, n)
	d := AgglomerateDendrogram(n, m, Options{Measure: Combined, Obs: reg})
	if got := reg.Counter("cluster.dendrogram_runs").Value(); got != 1 {
		t.Fatalf("cluster.dendrogram_runs = %d, want 1", got)
	}
	if got := reg.Counter("cluster.runs").Value(); got != 0 {
		t.Fatalf("dendrogram run must not count as cluster.runs, got %d", got)
	}
	if got, want := reg.Counter("cluster.merges").Value(), int64(n-1); got != want {
		t.Fatalf("cluster.merges = %d, want %d", got, want)
	}

	// Force a fallback with an inconsistent handmade dendrogram and check
	// the counter and that the direct run posts cluster.runs.
	bad := &Dendrogram{N: d.N, Merges: append([]DendroMerge(nil), d.Merges...)}
	for i := range bad.Merges {
		bad.Merges[i].Sim = float64(i % 2) // 0,1,0,1,... never prefix-consistent for t in (0,1]
	}
	CutOrAgglomerate(bad, m, Options{Measure: Combined, MinSim: 0.5, Obs: reg})
	if got := reg.Counter("cluster.dendrogram_fallbacks").Value(); got != 1 {
		t.Fatalf("cluster.dendrogram_fallbacks = %d, want 1", got)
	}
	if got := reg.Counter("cluster.runs").Value(); got != 1 {
		t.Fatalf("fallback direct run should post cluster.runs once, got %d", got)
	}
}

// AgglomerateAuto must behave exactly as its former two-run implementation.
func TestAgglomerateAutoMatchesTwoRunReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		m := randomMatrix(rng, n)
		for _, meas := range []Measure{Combined, ResemOnly} {
			got := AgglomerateAuto(n, m, meas, DefaultGapRatio, 0.01)
			_, trace := AgglomerateTrace(n, m, Options{Measure: meas, MinSim: 0}, true)
			cut, ok := CutAtGap(trace, DefaultGapRatio)
			if !ok {
				cut = 0.01
			}
			want := Agglomerate(n, m, Options{Measure: meas, MinSim: cut})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d %v: auto mismatch\nwant %v\ngot  %v", seed, meas, want, got)
			}
		}
	}
	// Blob worlds have crisp gaps; keep the structured case covered too.
	m := blobs(10, 5, 0.9, 0.0001)
	got := AgglomerateAuto(10, m, Combined, DefaultGapRatio, 0.01)
	if len(got) != 2 {
		t.Fatalf("blob auto cut should find the two blobs, got %v", got)
	}
}

func TestDendrogramTrivialSizes(t *testing.T) {
	if d := AgglomerateDendrogram(0, Matrix{}, Options{}); d.N != 0 || len(d.Merges) != 0 {
		t.Fatalf("n=0 dendrogram: %+v", d)
	}
	m := NewMatrix(1)
	d := AgglomerateDendrogram(1, m, Options{})
	if len(d.Merges) != 0 {
		t.Fatalf("n=1 dendrogram has merges: %+v", d.Merges)
	}
	out, ok := d.Cut(0.5)
	if !ok || !reflect.DeepEqual(out, [][]int{{0}}) {
		t.Fatalf("n=1 cut = %v ok=%v", out, ok)
	}
}
