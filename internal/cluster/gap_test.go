package cluster

import (
	"math"
	"reflect"
	"testing"
)

func TestCutAtGapFindsCollapse(t *testing.T) {
	trace := []Merge{
		{Sim: 0.04}, {Sim: 0.03}, {Sim: 0.02},
		{Sim: 0.00001}, {Sim: 0.000005},
	}
	cut, ok := CutAtGap(trace, 10)
	if !ok {
		t.Fatal("no gap found")
	}
	want := math.Sqrt(0.02 * 0.00001)
	if math.Abs(cut-want) > 1e-12 {
		t.Errorf("cut = %v, want %v", cut, want)
	}
	// The cut separates the same-object merges from the rest.
	if cut >= 0.02 || cut <= 0.00001 {
		t.Errorf("cut %v outside the gap", cut)
	}
}

func TestCutAtGapNoGap(t *testing.T) {
	flat := []Merge{{Sim: 0.03}, {Sim: 0.025}, {Sim: 0.02}}
	if _, ok := CutAtGap(flat, 10); ok {
		t.Error("gap found in flat profile")
	}
	if _, ok := CutAtGap([]Merge{{Sim: 0.5}}, 10); ok {
		t.Error("gap found in single-merge profile")
	}
	if _, ok := CutAtGap(nil, 10); ok {
		t.Error("gap found in empty profile")
	}
}

func TestCutAtGapIgnoresUpwardSteps(t *testing.T) {
	// Non-monotone profile: the upward step 0.001->0.5 must not register.
	trace := []Merge{{Sim: 0.04}, {Sim: 0.001}, {Sim: 0.5}, {Sim: 0.4}}
	cut, ok := CutAtGap(trace, 10)
	if !ok {
		t.Fatal("no gap found")
	}
	if math.Abs(cut-math.Sqrt(0.04*0.001)) > 1e-12 {
		t.Errorf("cut = %v", cut)
	}
}

func TestCutAtGapZeroSims(t *testing.T) {
	trace := []Merge{{Sim: 0.01}, {Sim: 0}}
	cut, ok := CutAtGap(trace, 10)
	if !ok || cut <= 0 {
		t.Errorf("zero-sim tail not handled: cut=%v ok=%v", cut, ok)
	}
}

func TestCutAtGapAllIdenticalSims(t *testing.T) {
	// Every merge at the same similarity: every ratio is exactly 1, so no
	// gap exists at any minRatio — including the floor minRatio<=1, which
	// CutAtGap resets to 10.
	same := []Merge{{Sim: 0.02}, {Sim: 0.02}, {Sim: 0.02}, {Sim: 0.02}}
	if cut, ok := CutAtGap(same, 10); ok {
		t.Errorf("gap found in identical profile: cut=%v", cut)
	}
	if cut, ok := CutAtGap(same, 0); ok {
		t.Errorf("gap found in identical profile at floored minRatio: cut=%v", cut)
	}
	// All-zero similarities clamp to the floor on both sides: still ratio 1.
	zeros := []Merge{{Sim: 0}, {Sim: 0}, {Sim: 0}}
	if cut, ok := CutAtGap(zeros, 10); ok {
		t.Errorf("gap found in all-zero profile: cut=%v", cut)
	}
}

func TestAgglomerateAutoTrivialSizes(t *testing.T) {
	m := blobs(8, 4, 0.8, 0.0003)
	// A single reference has no merges at all: one singleton group.
	got := AgglomerateAuto(1, m, Combined, 10, 0)
	if !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Errorf("n=1 clustering = %v", got)
	}
	// Two references produce one merge — below the two needed for an
	// interior gap — so the fallback threshold decides.
	got = AgglomerateAuto(2, m, Combined, 10, 0)
	if !reflect.DeepEqual(got, [][]int{{0, 1}}) {
		t.Errorf("n=2 fallback-0 clustering = %v", got)
	}
	got = AgglomerateAuto(2, m, Combined, 10, 5)
	if !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Errorf("n=2 high-fallback clustering = %v", got)
	}
}

// constSim is a PairSim whose every similarity is the same constant.
type constSim float64

func (c constSim) Resem(i, j int) float64 { return float64(c) }
func (c constSim) Walk(i, j int) float64  { return float64(c) }

func TestAgglomerateAutoAllIdenticalSims(t *testing.T) {
	// An all-identical similarity matrix has a flat merge profile under
	// single or complete link; average-link chaining keeps it within one
	// order of magnitude, so no spurious gap may fire and the fallback
	// governs: 0 merges everything, above-constant splits everything.
	flat := constSim(0.3)
	got := AgglomerateAuto(5, flat, Combined, 100, 0)
	if len(got) != 1 || len(got[0]) != 5 {
		t.Errorf("identical sims with fallback 0: %v", got)
	}
	got = AgglomerateAuto(5, flat, Combined, 100, 1)
	if len(got) != 5 {
		t.Errorf("identical sims with fallback above the constant: %v", got)
	}
}

func TestAgglomerateAutoOnBlobs(t *testing.T) {
	// Two tight blobs, weak cross links: auto cutting must find 2 clusters
	// without any threshold input.
	m := blobs(8, 4, 0.8, 0.0003)
	got := AgglomerateAuto(8, m, Combined, 10, 0)
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("auto clustering = %v", got)
	}
	// A uniform blob has no gap; with fallback 0 it collapses to one
	// cluster, with a high fallback it stays singletons.
	uni := blobs(6, 3, 0.5, 0.45)
	got = AgglomerateAuto(6, uni, Combined, 10, 0)
	if len(got) != 1 {
		t.Errorf("uniform blob split: %v", got)
	}
	got = AgglomerateAuto(6, uni, Combined, 10, 5)
	if len(got) != 6 {
		t.Errorf("high fallback merged: %v", got)
	}
	if AgglomerateAuto(0, m, Combined, 10, 0) != nil {
		t.Error("n=0 returned clusters")
	}
}
