package cluster

import (
	"math"
	"reflect"
	"testing"
)

func TestCutAtGapFindsCollapse(t *testing.T) {
	trace := []Merge{
		{Sim: 0.04}, {Sim: 0.03}, {Sim: 0.02},
		{Sim: 0.00001}, {Sim: 0.000005},
	}
	cut, ok := CutAtGap(trace, 10)
	if !ok {
		t.Fatal("no gap found")
	}
	want := math.Sqrt(0.02 * 0.00001)
	if math.Abs(cut-want) > 1e-12 {
		t.Errorf("cut = %v, want %v", cut, want)
	}
	// The cut separates the same-object merges from the rest.
	if cut >= 0.02 || cut <= 0.00001 {
		t.Errorf("cut %v outside the gap", cut)
	}
}

func TestCutAtGapNoGap(t *testing.T) {
	flat := []Merge{{Sim: 0.03}, {Sim: 0.025}, {Sim: 0.02}}
	if _, ok := CutAtGap(flat, 10); ok {
		t.Error("gap found in flat profile")
	}
	if _, ok := CutAtGap([]Merge{{Sim: 0.5}}, 10); ok {
		t.Error("gap found in single-merge profile")
	}
	if _, ok := CutAtGap(nil, 10); ok {
		t.Error("gap found in empty profile")
	}
}

func TestCutAtGapIgnoresUpwardSteps(t *testing.T) {
	// Non-monotone profile: the upward step 0.001->0.5 must not register.
	trace := []Merge{{Sim: 0.04}, {Sim: 0.001}, {Sim: 0.5}, {Sim: 0.4}}
	cut, ok := CutAtGap(trace, 10)
	if !ok {
		t.Fatal("no gap found")
	}
	if math.Abs(cut-math.Sqrt(0.04*0.001)) > 1e-12 {
		t.Errorf("cut = %v", cut)
	}
}

func TestCutAtGapZeroSims(t *testing.T) {
	trace := []Merge{{Sim: 0.01}, {Sim: 0}}
	cut, ok := CutAtGap(trace, 10)
	if !ok || cut <= 0 {
		t.Errorf("zero-sim tail not handled: cut=%v ok=%v", cut, ok)
	}
}

func TestAgglomerateAutoOnBlobs(t *testing.T) {
	// Two tight blobs, weak cross links: auto cutting must find 2 clusters
	// without any threshold input.
	m := blobs(8, 4, 0.8, 0.0003)
	got := AgglomerateAuto(8, m, Combined, 10, 0)
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("auto clustering = %v", got)
	}
	// A uniform blob has no gap; with fallback 0 it collapses to one
	// cluster, with a high fallback it stays singletons.
	uni := blobs(6, 3, 0.5, 0.45)
	got = AgglomerateAuto(6, uni, Combined, 10, 0)
	if len(got) != 1 {
		t.Errorf("uniform blob split: %v", got)
	}
	got = AgglomerateAuto(6, uni, Combined, 10, 5)
	if len(got) != 6 {
		t.Errorf("high fallback merged: %v", got)
	}
	if AgglomerateAuto(0, m, Combined, 10, 0) != nil {
		t.Error("n=0 returned clusters")
	}
}
