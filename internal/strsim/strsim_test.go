package strsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQGrams(t *testing.T) {
	g := QGrams("ab", 2)
	// Padded "#ab#": grams #a, ab, b#.
	if len(g) != 3 || g["#a"] != 1 || g["ab"] != 1 || g["b#"] != 1 {
		t.Errorf("QGrams = %v", g)
	}
	// Case folding.
	if QGramJaccard("WANG", "wang", 3) != 1 {
		t.Error("case not folded")
	}
	// q clamped.
	if len(QGrams("abc", 0)) != 3 {
		t.Error("q clamp failed")
	}
	// Repeated grams counted as a multiset.
	g = QGrams("aaa", 1)
	if g["a"] != 3 {
		t.Errorf("multiset count = %d", g["a"])
	}
}

func TestQGramJaccardBasics(t *testing.T) {
	if QGramJaccard("wei wang", "wei wang", 3) != 1 {
		t.Error("identical strings not 1")
	}
	if QGramJaccard("abc", "xyz", 3) != 0 {
		t.Error("disjoint strings not 0")
	}
	if QGramJaccard("", "", 3) != 1 {
		t.Error("two empty strings")
	}
	close := QGramJaccard("wei wang", "wei k. wang", 3)
	far := QGramJaccard("wei wang", "joseph hellerstein", 3)
	if close <= far || close < 0.4 {
		t.Errorf("close %v, far %v", close, far)
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic textbook pairs.
	if got := Jaro("martha", "marhta"); !approx(got, 0.9444444444444445) {
		t.Errorf("Jaro(martha, marhta) = %v", got)
	}
	if got := Jaro("dixon", "dicksonx"); !approx(got, 0.7666666666666666) {
		t.Errorf("Jaro(dixon, dicksonx) = %v", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Error("empty-string edge cases")
	}
	if Jaro("abc", "abc") != 1 {
		t.Error("identical strings")
	}
	if Jaro("ab", "cd") != 0 {
		t.Error("no matches should be 0")
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); !approx(got, 0.9611111111111111) {
		t.Errorf("JW(martha, marhta) = %v", got)
	}
	// The boost never lowers the score and identical strings stay at 1.
	if JaroWinkler("wei wang", "wei wang") != 1 {
		t.Error("identical strings")
	}
	if JaroWinkler("abcd", "abce") < Jaro("abcd", "abce") {
		t.Error("prefix boost lowered the score")
	}
}

// Properties: all measures are symmetric and within [0,1].
func TestSimilarityProperties(t *testing.T) {
	letters := []rune("abcdefg .")
	randStr := func(rng *rand.Rand) string {
		n := rng.Intn(12)
		out := make([]rune, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return string(out)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randStr(rng), randStr(rng)
		for _, fn := range []func(string, string) float64{
			func(x, y string) float64 { return QGramJaccard(x, y, 3) },
			Jaro,
			JaroWinkler,
		} {
			s1, s2 := fn(a, b), fn(b, a)
			if !approx(s1, s2) {
				t.Logf("asymmetric on %q %q: %v vs %v", a, b, s1, s2)
				return false
			}
			if s1 < 0 || s1 > 1+1e-9 {
				t.Logf("out of range on %q %q: %v", a, b, s1)
				return false
			}
			if !approx(fn(a, a), 1) {
				t.Logf("self-similarity != 1 for %q", a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
