// Package music generates synthetic music catalogs shaped like the
// allmusic.com database the DISTINCT paper's introduction motivates with
// ("there are 72 songs and 3 albums named 'Forgotten'"): songs appearing
// on albums by artists under labels, with several distinct songs sharing
// one title. Ground truth is retained, so the catalog serves as a second,
// non-bibliographic evaluation domain for the object-distinction engine —
// the paper presents DISTINCT as a general methodology, and nothing in the
// engine is DBLP-specific.
//
// Schema:
//
//	Titles(title)                                  – the shared names
//	Tracks(title -> Titles, album -> Albums)       – the references
//	Albums(album, artist -> Artists, label -> Labels, year)
//	Artists(artist, genre)
//	Labels(label)
//
// A song is identified by (artist, title); its references are the track
// rows for that title on the artist's albums (original releases,
// compilations, re-releases). The structural signal mirrors the
// bibliographic world's: re-releases share the artist, label, and
// album-mates, while two same-titled songs by different artists share at
// most a label or a year.
package music

import (
	"fmt"
	"math/rand"

	"distinct/internal/reldb"
)

// AmbiguousTitle is one injected title shared by several distinct songs.
type AmbiguousTitle struct {
	// Title is the shared song title, e.g. "Forgotten".
	Title string
	// AppearancesPerSong gives, per distinct song, on how many albums it
	// appears (each appearance is one reference).
	AppearancesPerSong []int
}

// NumSongs returns the number of distinct songs sharing the title.
func (a AmbiguousTitle) NumSongs() int { return len(a.AppearancesPerSong) }

// NumRefs returns the total number of track references to the title.
func (a AmbiguousTitle) NumRefs() int {
	n := 0
	for _, r := range a.AppearancesPerSong {
		n += r
	}
	return n
}

// Config controls catalog generation.
type Config struct {
	Seed int64

	// Genres is the number of genres; artists, labels and most linkage
	// stay inside one genre.
	Genres int
	// ArtistsPerGenre and LabelsPerGenre size the catalog.
	ArtistsPerGenre, LabelsPerGenre int
	// AlbumsPerArtist is the mean number of albums per artist.
	AlbumsPerArtist int
	// TracksPerAlbum is the mean number of tracks per album.
	TracksPerAlbum int
	// SignatureSongs is how many recurring songs an artist re-releases
	// across albums; SignatureProb is the chance a track slot reuses one.
	SignatureSongs int
	SignatureProb  float64
	// YearFrom / YearTo bound album years.
	YearFrom, YearTo int

	// Ambiguous lists the injected shared titles.
	Ambiguous []AmbiguousTitle
}

// DefaultConfig returns a catalog in which four, six and three distinct
// songs share the titles "Forgotten", "Home" and "Rain" respectively.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Genres:          4,
		ArtistsPerGenre: 10,
		LabelsPerGenre:  2,
		AlbumsPerArtist: 4,
		TracksPerAlbum:  10,
		SignatureSongs:  3,
		SignatureProb:   0.3,
		YearFrom:        1980,
		YearTo:          2006,
		Ambiguous: []AmbiguousTitle{
			{Title: "Forgotten", AppearancesPerSong: []int{4, 3, 3, 2}},
			{Title: "Home", AppearancesPerSong: []int{4, 3, 3, 2, 2, 2}},
			{Title: "Rain", AppearancesPerSong: []int{3, 2, 2}},
		},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Genres <= 0:
		return fmt.Errorf("music: Genres must be positive")
	case c.ArtistsPerGenre <= 0 || c.LabelsPerGenre <= 0:
		return fmt.Errorf("music: artists and labels per genre must be positive")
	case c.AlbumsPerArtist < 2:
		return fmt.Errorf("music: AlbumsPerArtist must be at least 2 (re-releases need albums)")
	case c.TracksPerAlbum < 2:
		return fmt.Errorf("music: TracksPerAlbum must be at least 2")
	case c.SignatureSongs < 0 || c.SignatureProb < 0 || c.SignatureProb > 1:
		return fmt.Errorf("music: bad signature parameters")
	case c.YearTo < c.YearFrom:
		return fmt.Errorf("music: YearTo before YearFrom")
	}
	for _, a := range c.Ambiguous {
		if a.Title == "" || a.NumSongs() == 0 {
			return fmt.Errorf("music: malformed ambiguous title %+v", a)
		}
		for _, n := range a.AppearancesPerSong {
			if n < 1 {
				return fmt.Errorf("music: title %q has a song with %d appearances", a.Title, n)
			}
		}
	}
	return nil
}

// SongID identifies a real song (the ground-truth object).
type SongID int

// Catalog is a generated music world with ground truth.
type Catalog struct {
	Config Config
	DB     *reldb.Database

	// RefSong maps each Tracks tuple to its real song.
	RefSong map[reldb.TupleID]SongID
	// SongArtist gives each song's artist.
	SongArtist []string

	refsByTitle map[string][]reldb.TupleID
}

// Schema returns the catalog schema.
func Schema() *reldb.Schema {
	return reldb.MustSchema(
		reldb.MustRelationSchema("Titles", reldb.Attribute{Name: "title", Key: true}),
		reldb.MustRelationSchema("Tracks",
			reldb.Attribute{Name: "title", FK: "Titles"},
			reldb.Attribute{Name: "album", FK: "Albums"},
		),
		reldb.MustRelationSchema("Albums",
			reldb.Attribute{Name: "album", Key: true},
			reldb.Attribute{Name: "artist", FK: "Artists"},
			reldb.Attribute{Name: "label", FK: "Labels"},
			reldb.Attribute{Name: "year"},
		),
		reldb.MustRelationSchema("Artists",
			reldb.Attribute{Name: "artist", Key: true},
			reldb.Attribute{Name: "genre"},
		),
		reldb.MustRelationSchema("Labels", reldb.Attribute{Name: "label", Key: true}),
	)
}

// ReferenceRelation and ReferenceAttr locate the references.
const (
	ReferenceRelation = "Tracks"
	ReferenceAttr     = "title"
)

var genreNames = []string{
	"rock", "jazz", "electronic", "folk", "classical", "hiphop", "country", "metal",
}

var word1 = []string{
	"Midnight", "Silver", "Broken", "Electric", "Golden", "Silent", "Wild",
	"Burning", "Frozen", "Crimson", "Velvet", "Hollow", "Distant", "Neon",
	"Paper", "Iron", "Glass", "Violet", "Echoing", "Fading", "Scarlet",
	"Wandering", "Sleeping", "Rising", "Falling", "Hidden", "Lonely",
	"Restless", "Shattered", "Gentle", "Bitter", "Amber", "Pale", "Last",
	"First", "Endless", "Quiet", "Roaring", "Drifting", "Sacred",
}

var word2 = []string{
	"Rain", "Road", "Heart", "Dream", "River", "Sky", "Fire", "Dance",
	"Shadow", "Mirror", "Train", "Garden", "Letter", "Season", "Harbor",
	"Window", "Circle", "Lantern", "Meadow", "Thunder", "Valley", "Coast",
	"Bridge", "Tower", "Island", "Desert", "Forest", "Ocean", "Canyon",
	"Street", "Morning", "Evening", "Winter", "Summer", "Stranger",
	"Promise", "Secret", "Whisper", "Echo", "Horizon",
}

// Generate builds a catalog deterministically from the configuration.
func Generate(cfg Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{
		Config:      cfg,
		DB:          reldb.NewDatabase(Schema()),
		RefSong:     make(map[reldb.TupleID]SongID),
		refsByTitle: make(map[string][]reldb.TupleID),
	}
	db := cat.DB

	injected := make(map[string]bool, len(cfg.Ambiguous))
	for _, a := range cfg.Ambiguous {
		injected[a.Title] = true
	}
	titles := make(map[string]bool)
	addTitle := func(t string) {
		if !titles[t] {
			db.MustInsert("Titles", t)
			titles[t] = true
		}
	}
	// pickWord skews toward the head of the pool, leaving a rare tail for
	// the automatic training set.
	pickWord := func(pool []string) string {
		u := rng.Float64()
		return pool[int(float64(len(pool))*u*u*u)]
	}
	sampleTitle := func() string {
		for {
			t := pickWord(word1) + " " + pickWord(word2)
			if !injected[t] {
				return t
			}
		}
	}

	// Artists, labels, albums.
	artistAlbums := make(map[string][]string)
	var artists []string
	for g := 0; g < cfg.Genres; g++ {
		genre := genreNames[g%len(genreNames)]
		if g >= len(genreNames) {
			genre = fmt.Sprintf("%s-%d", genre, g/len(genreNames))
		}
		for l := 0; l < cfg.LabelsPerGenre; l++ {
			db.MustInsert("Labels", fmt.Sprintf("%s-label-%d", genre, l))
		}
		for a := 0; a < cfg.ArtistsPerGenre; a++ {
			artist := fmt.Sprintf("%s-artist-%d", genre, a)
			db.MustInsert("Artists", artist, genre)
			artists = append(artists, artist)
			n := cfg.AlbumsPerArtist + rng.Intn(3) - 1
			if n < 2 {
				n = 2
			}
			for al := 0; al < n; al++ {
				album := fmt.Sprintf("%s/album-%d", artist, al)
				label := fmt.Sprintf("%s-label-%d", genre, rng.Intn(cfg.LabelsPerGenre))
				year := fmt.Sprintf("%d", cfg.YearFrom+rng.Intn(cfg.YearTo-cfg.YearFrom+1))
				db.MustInsert("Albums", album, artist, label, year)
				artistAlbums[artist] = append(artistAlbums[artist], album)
			}
		}
	}

	// Ordinary tracks with recurring signature songs.
	for _, artist := range artists {
		signatures := make([]string, cfg.SignatureSongs)
		for i := range signatures {
			signatures[i] = sampleTitle()
		}
		for _, album := range artistAlbums[artist] {
			n := cfg.TracksPerAlbum + rng.Intn(5) - 2
			if n < 2 {
				n = 2
			}
			used := make(map[string]bool)
			for t := 0; t < n; t++ {
				var title string
				if len(signatures) > 0 && rng.Float64() < cfg.SignatureProb {
					title = signatures[rng.Intn(len(signatures))]
				} else {
					title = sampleTitle()
				}
				if used[title] {
					continue
				}
				used[title] = true
				addTitle(title)
				db.MustInsert("Tracks", title, album)
			}
		}
	}

	// Injected ambiguous titles: each distinct song belongs to a different
	// artist (cycling genres) and appears on several of their albums.
	for _, amb := range cfg.Ambiguous {
		addTitle(amb.Title)
		base := rng.Intn(len(artists))
		step := len(artists)/amb.NumSongs() + 1
		used := make(map[string]bool)
		for si, appearances := range amb.AppearancesPerSong {
			// Pick the next artist (cycling) with enough albums for the
			// requested appearance count and not already carrying this
			// title; the scan terminates because appearance counts are
			// validated against AlbumsPerArtist's minimum of 2 and the
			// catalog always has more artists than songs per title.
			var artist string
			for off := 0; off < len(artists); off++ {
				cand := artists[(base+si*step+off)%len(artists)]
				if !used[cand] && len(artistAlbums[cand]) >= appearances {
					artist = cand
					break
				}
			}
			if artist == "" {
				return nil, fmt.Errorf("music: no artist has %d albums for title %q; raise AlbumsPerArtist or ArtistsPerGenre", appearances, amb.Title)
			}
			used[artist] = true
			id := SongID(len(cat.SongArtist))
			cat.SongArtist = append(cat.SongArtist, artist)
			albums := append([]string(nil), artistAlbums[artist]...)
			rng.Shuffle(len(albums), func(i, j int) { albums[i], albums[j] = albums[j], albums[i] })
			for _, album := range albums[:appearances] {
				ref := db.MustInsert("Tracks", amb.Title, album)
				cat.RefSong[ref] = id
				cat.refsByTitle[amb.Title] = append(cat.refsByTitle[amb.Title], ref)
			}
		}
	}
	return cat, nil
}

// AmbiguousTitles returns the injected titles in configuration order.
func (c *Catalog) AmbiguousTitles() []string {
	out := make([]string, len(c.Config.Ambiguous))
	for i, a := range c.Config.Ambiguous {
		out[i] = a.Title
	}
	return out
}

// Refs returns the references to an ambiguous title, in insertion order.
func (c *Catalog) Refs(title string) []reldb.TupleID { return c.refsByTitle[title] }

// GoldClusters groups an ambiguous title's references by real song.
func (c *Catalog) GoldClusters(title string) [][]reldb.TupleID {
	var order []SongID
	byID := make(map[SongID][]reldb.TupleID)
	for _, ref := range c.refsByTitle[title] {
		id := c.RefSong[ref]
		if _, ok := byID[id]; !ok {
			order = append(order, id)
		}
		byID[id] = append(byID[id], ref)
	}
	out := make([][]reldb.TupleID, len(order))
	for i, id := range order {
		out[i] = byID[id]
	}
	return out
}

// NumTracks returns the total number of track references.
func (c *Catalog) NumTracks() int { return c.DB.Relation(ReferenceRelation).Size() }
