package music

import (
	"testing"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/eval"
	"distinct/internal/reldb"
	"distinct/internal/trainset"
)

func testCatalog(t testing.TB) *Catalog {
	t.Helper()
	c, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Genres = 0 },
		func(c *Config) { c.ArtistsPerGenre = 0 },
		func(c *Config) { c.LabelsPerGenre = 0 },
		func(c *Config) { c.AlbumsPerArtist = 1 },
		func(c *Config) { c.TracksPerAlbum = 1 },
		func(c *Config) { c.SignatureProb = 2 },
		func(c *Config) { c.YearTo = c.YearFrom - 1 },
		func(c *Config) { c.Ambiguous = []AmbiguousTitle{{Title: ""}} },
		func(c *Config) { c.Ambiguous = []AmbiguousTitle{{Title: "X", AppearancesPerSong: []int{0}}} },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateGroundTruth(t *testing.T) {
	c := testCatalog(t)
	if c.NumTracks() == 0 {
		t.Fatal("no tracks")
	}
	for _, amb := range c.Config.Ambiguous {
		refs := c.Refs(amb.Title)
		if len(refs) != amb.NumRefs() {
			t.Errorf("%s: %d refs, want %d", amb.Title, len(refs), amb.NumRefs())
		}
		gold := c.GoldClusters(amb.Title)
		if len(gold) != amb.NumSongs() {
			t.Errorf("%s: %d gold songs, want %d", amb.Title, len(gold), amb.NumSongs())
		}
		// Every reference of one song sits on an album of the song's artist.
		for gi, clusterRefs := range gold {
			id := c.RefSong[clusterRefs[0]]
			for _, ref := range clusterRefs {
				album := c.DB.Tuple(ref).Val("album")
				at := c.DB.LookupKey("Albums", album)
				if got := c.DB.Tuple(at).Val("artist"); got != c.SongArtist[id] {
					t.Fatalf("%s song %d: ref on album by %q, song artist %q", amb.Title, gi, got, c.SongArtist[id])
				}
			}
		}
	}
	// Distinct songs of one title belong to distinct artists.
	for _, amb := range c.Config.Ambiguous {
		seen := map[string]bool{}
		for _, g := range c.GoldClusters(amb.Title) {
			artist := c.SongArtist[c.RefSong[g[0]]]
			if seen[artist] {
				t.Errorf("%s: two songs share artist %q", amb.Title, artist)
			}
			seen[artist] = true
		}
	}
	// Referential integrity.
	for _, rs := range c.DB.Schema.Relations() {
		rel := c.DB.Relation(rs.Name)
		for _, fi := range rs.ForeignKeys() {
			for _, id := range rel.TupleIDs() {
				v := c.DB.Tuple(id).Vals[fi]
				if c.DB.LookupKey(rs.Attrs[fi].FK, v) == reldb.InvalidTuple {
					t.Fatalf("dangling %s FK %q", rs.Name, v)
				}
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := testCatalog(t)
	b := testCatalog(t)
	if a.NumTracks() != b.NumTracks() {
		t.Fatal("generation not deterministic")
	}
}

// TestEngineOnCatalog is the cross-domain check: the same engine that
// disambiguates DBLP authors splits the catalog's shared titles, trained
// on the catalog's own rare titles.
func TestEngineOnCatalog(t *testing.T) {
	c := testCatalog(t)
	e, err := core.NewEngine(c.DB, core.Config{
		RefRelation: ReferenceRelation,
		RefAttr:     ReferenceAttr,
		Supervised:  true,
		Measure:     cluster.Combined,
		MinSim:      0.02,
		Train: trainset.Options{
			NumPositive: 300, NumNegative: 300, Seed: 1,
			MaxFirstFreq: 8, MaxLastFreq: 8,
			Exclude: c.AmbiguousTitles(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		t.Fatal(err)
	}
	var ms []eval.Metrics
	for _, title := range c.AmbiguousTitles() {
		refs := e.MapRefs(c.Refs(title))
		pred := e.DisambiguateRefs(refs)
		var gold eval.Clustering
		for _, g := range c.GoldClusters(title) {
			gold = append(gold, e.MapRefs(g))
		}
		m, err := eval.Evaluate(eval.Clustering(pred), gold)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %s", title, m)
		ms = append(ms, m)
	}
	avg := eval.Average(ms)
	if avg.F1 < 0.8 {
		t.Errorf("cross-domain average f-measure %v too low", avg.F1)
	}
}
